(* Compiler-derived error detectors (paper §III): insert the foreach
   loop-invariant checker into the Fig 6 vector-copy kernel, show the
   detector block in the CFG, then measure what it catches.

     dune exec examples/detector_demo.exe *)

let vcopy_src =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[],\n\
  \                       uniform int n) {\n\
  \  foreach (i = 0 ... n) {\n\
  \    a2[i] = a1[i];\n\
  \  }\n\
   }"

let () =
  let target = Vir.Target.Avx in

  (* 1. Show the pass at work: the detector block appears on the exit
     edge of foreach_full_body, exactly as in the paper's Fig 7. *)
  let m = Minispc.Driver.compile target vcopy_src in
  let inserted = Detectors.Foreach_invariants.run m in
  Printf.printf "inserted %d detector block(s)\n\n" inserted;
  let f = Vir.Vmodule.find_func_exn m "vcopy_ispc" in
  List.iter
    (fun b ->
      Printf.printf "  block %%%s -> %s\n" b.Vir.Block.label
        (String.concat ", "
           (List.map (fun l -> "%" ^ l) (Vir.Block.successors b))))
    f.Vir.Func.blocks;

  (* 2. Fault-inject control sites with the detector armed and count
     how many SDCs it flags (Fig 12's SDC-detection rate). *)
  let workload =
    {
      Vulfi.Workload.w_name = "vcopy";
      w_fn = "vcopy_ispc";
      w_inputs = 1;
      w_out_tolerance = 0.0;
      w_build = (fun t -> Minispc.Driver.compile t vcopy_src);
      w_setup =
        (fun ~input:_ st ->
          let n = 100 in
          let mem = Interp.Machine.memory st in
          let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * n) in
          let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * n) in
          Interp.Memory.write_i32_array mem a1 (Array.init n (fun i -> i));
          ( [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
              Interp.Vvalue.of_i32 n ],
            fun () ->
              {
                Vulfi.Outcome.empty_output with
                Vulfi.Outcome.o_i32 =
                  [ Interp.Memory.read_i32_array mem a2 n ];
              } ));
    }
  in
  Printf.printf "\nexhaustive sweep over control-site faults:\n";
  let hooks = Detectors.Runtime.hooks () in
  let p =
    Vulfi.Experiment.prepare
      ~transform:(fun m ->
        ignore (Detectors.Foreach_invariants.run m);
        m)
      workload target Analysis.Sites.Control
  in
  let g = Vulfi.Experiment.golden_run ~hooks p ~input:0 in
  let sdc = ref 0 and detected_sdc = ref 0 and crash = ref 0 in
  let benign = ref 0 in
  for site = 1 to g.Vulfi.Experiment.g_dyn_sites do
    let r =
      Vulfi.Experiment.faulty_run ~hooks p ~golden:g ~dynamic_site:site
        ~seed:(5000 + site)
    in
    match r.Vulfi.Experiment.r_outcome with
    | Vulfi.Outcome.Sdc ->
      incr sdc;
      if r.Vulfi.Experiment.r_detected then incr detected_sdc
    | Vulfi.Outcome.Benign -> incr benign
    | Vulfi.Outcome.Crash _ -> incr crash
  done;
  let n = g.Vulfi.Experiment.g_dyn_sites in
  Printf.printf
    "  %d sites: %d SDC (%d flagged by the detector), %d benign, %d crash\n"
    n !sdc !detected_sdc !benign !crash;
  Printf.printf "  SDC detection rate: %.1f%%\n"
    (100.0 *. float_of_int !detected_sdc /. float_of_int (max 1 !sdc));

  (* 3. Overhead of the detector block (the paper reports ~8%). *)
  let ov =
    Detectors.Overhead.measure ~set:Detectors.Overhead.paper_detectors
      workload target ~input:0
  in
  Printf.printf "\ndetector overhead: %.2f%% dynamic instructions (%d -> %d)\n"
    (100.0 *. Detectors.Overhead.overhead_fraction ov)
    ov.Detectors.Overhead.plain_instrs ov.Detectors.Overhead.detected_instrs

examples/campaign_blackscholes.ml: Analysis Benchmarks List Printf Sys Vir Vulfi

examples/quickstart.mli:

examples/campaign_blackscholes.mli:

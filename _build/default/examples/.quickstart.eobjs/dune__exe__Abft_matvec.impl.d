examples/abft_matvec.ml: Analysis Array Benchmarks Detectors Interp List Minispc Printf Vir Vulfi

examples/detector_demo.mli:

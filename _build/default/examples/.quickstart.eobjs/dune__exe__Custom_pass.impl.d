examples/custom_pass.ml: Analysis Array Block Builder Func Hashtbl Instr Interp Intrinsics List Option Pp Printf Target Verify Vir Vmodule Vtype Vulfi

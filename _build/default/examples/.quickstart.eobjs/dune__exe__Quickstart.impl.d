examples/quickstart.ml: Analysis Array Interp Minispc Printf String Vir Vulfi

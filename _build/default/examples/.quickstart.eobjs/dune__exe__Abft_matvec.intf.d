examples/abft_matvec.mli:

examples/detector_demo.ml: Analysis Array Detectors Interp List Minispc Printf String Vir Vulfi

(* A resiliency study of one real benchmark: run statistically sized
   fault-injection campaigns on Black-Scholes for both vector ISAs and
   all three fault-site categories, reproducing one column group of the
   paper's Fig 11.

     dune exec examples/campaign_blackscholes.exe            (quick)
     VULFI_FULL=1 dune exec examples/campaign_blackscholes.exe *)

let () =
  let full = Sys.getenv_opt "VULFI_FULL" <> None in
  let cfg =
    if full then Vulfi.Campaign.paper_config
    else
      {
        Vulfi.Campaign.experiments_per_campaign = 40;
        min_campaigns = 4;
        max_campaigns = 6;
        margin_target = 0.05;
        seed = 2024;
      }
  in
  let bench = Benchmarks.Blackscholes.benchmark in
  Printf.printf
    "Black-Scholes fault-injection study (%d experiments/campaign, up to \
     %d campaigns per cell)\n\n"
    cfg.Vulfi.Campaign.experiments_per_campaign
    cfg.Vulfi.Campaign.max_campaigns;
  List.iter
    (fun target ->
      List.iter
        (fun category ->
          let r =
            Vulfi.Campaign.run cfg bench.Benchmarks.Harness.bench target
              category
          in
          print_endline (Vulfi.Report.fig11_row r))
        Analysis.Sites.all_categories)
    Vir.Target.all;
  print_newline ();
  print_endline
    "Expected shape (paper Fig 11): high SDC under pure-data and control \
     faults (every option price is data-dependent), crashes dominating \
     the address category."

(* Algorithm-based fault tolerance (ABFT) study: a checksummed
   matrix-vector product.

   The classic Huang-Abraham scheme appends a checksum row to the
   matrix; after y = A x, the checksum row's product must equal the sum
   of y. The mini-ISPC kernel encodes that invariant with a source-level
   assert (the "manually inserted assertions" of the paper's
   introduction), and we measure how much of each fault-site category
   the ABFT check catches — a study the paper's framework enables but
   does not run.

     dune exec examples/abft_matvec.exe *)

let rows = 24

let cols = 24

(* y[r] = sum_c A[r*cols+c] * x[c], vectorized over r; the final assert
   checks the Huang-Abraham column-checksum invariant. *)
let source =
  Printf.sprintf
    "export void matvec_abft(uniform float a[], uniform float x[],\n\
     uniform float y[], uniform float checkrow[], uniform int rows,\n\
     uniform int cols) {\n\
     foreach (r = 0 ... rows) {\n\
     float acc = 0.0;\n\
     for (uniform int c = 0; c < cols; c += 1) {\n\
     acc += a[r * cols + c] * x[c];\n\
     }\n\
     y[r] = acc;\n\
     }\n\
     // checksum: (sum of all rows) . x must equal sum of y\n\
     uniform float expected = 0.0;\n\
     for (uniform int c2 = 0; c2 < cols; c2 += 1) {\n\
     expected = expected + checkrow[c2] * x[c2];\n\
     }\n\
     varying float ysum_acc = 0.0;\n\
     foreach (r2 = 0 ... rows) {\n\
     ysum_acc += y[r2];\n\
     }\n\
     uniform float ysum = reduce_add(ysum_acc);\n\
     assert(abs(ysum - expected) < 0.001 * abs(expected) + 0.01);\n\
     }"

let workload =
  let rng = Benchmarks.Prng.create 424242 in
  let a = Benchmarks.Prng.f32_array rng (rows * cols) (-1.0) 1.0 in
  let x = Benchmarks.Prng.f32_array rng cols (-1.0) 1.0 in
  let checkrow =
    Array.init cols (fun c ->
        let s = ref 0.0 in
        for r = 0 to rows - 1 do
          s := !s +. a.((r * cols) + c)
        done;
        Interp.Bits.round_float Vir.Vtype.F32 !s)
  in
  {
    Vulfi.Workload.w_name = "matvec-abft";
    w_fn = "matvec_abft";
    w_inputs = 1;
    w_out_tolerance = 0.0;
    w_build = (fun t -> Minispc.Driver.compile t source);
    w_setup =
      (fun ~input:_ st ->
        let mem = Interp.Machine.memory st in
        let alloc_f32 data =
          let base =
            Interp.Memory.alloc mem ~name:"arr"
              ~bytes:(4 * Array.length data)
          in
          Interp.Memory.write_f32_array mem base data;
          base
        in
        let pa = alloc_f32 a in
        let px = alloc_f32 x in
        let py = alloc_f32 (Array.make rows 0.0) in
        let pc = alloc_f32 checkrow in
        ( [ Interp.Vvalue.of_ptr pa; Interp.Vvalue.of_ptr px;
            Interp.Vvalue.of_ptr py; Interp.Vvalue.of_ptr pc;
            Interp.Vvalue.of_i32 rows; Interp.Vvalue.of_i32 cols ],
          fun () ->
            {
              Vulfi.Outcome.empty_output with
              Vulfi.Outcome.o_f32 =
                [ Interp.Memory.read_f32_array mem py rows ];
            } ));
  }

let () =
  Printf.printf
    "ABFT checksummed matvec (%dx%d): exhaustive single-bit sweep per \
     fault-site category\n\n" rows cols;
  Printf.printf "%-10s %6s %6s %6s %6s  %s\n" "category" "SDC" "benign"
    "crash" "|" "ABFT detection of SDCs";
  List.iter
    (fun cat ->
      let hooks = Detectors.Runtime.hooks () in
      let p = Vulfi.Experiment.prepare workload Vir.Target.Avx cat in
      let g = Vulfi.Experiment.golden_run ~hooks p ~input:0 in
      let sdc = ref 0 and benign = ref 0 and crash = ref 0 in
      let caught = ref 0 in
      let n = min 400 g.Vulfi.Experiment.g_dyn_sites in
      for k = 1 to n do
        (* spread sampled sites over the whole trace *)
        let site = 1 + (k * g.Vulfi.Experiment.g_dyn_sites / (n + 1)) in
        let r =
          Vulfi.Experiment.faulty_run ~hooks p ~golden:g ~dynamic_site:site
            ~seed:(60000 + k)
        in
        (match r.Vulfi.Experiment.r_outcome with
        | Vulfi.Outcome.Sdc ->
          incr sdc;
          if r.Vulfi.Experiment.r_detected then incr caught
        | Vulfi.Outcome.Benign -> incr benign
        | Vulfi.Outcome.Crash _ -> incr crash)
      done;
      Printf.printf "%-10s %5d %6d %6d %6s  %d/%d = %.1f%%\n"
        (Analysis.Sites.category_name cat)
        !sdc !benign !crash "|" !caught !sdc
        (100.0 *. float_of_int !caught /. float_of_int (max 1 !sdc)))
    Analysis.Sites.all_categories;
  print_newline ();
  print_endline
    "The checksum invariant covers the y-producing dataflow — including \
     pure-data faults, which the paper's foreach-invariant detectors \
     are provably blind to — at the cost of one extra dot product.";
  print_endline
    "Escaping pure-data SDCs are dominated by low-order mantissa flips \
     below the checksum's relative epsilon: ABFT detects errors above \
     its threshold, a knob between false alarms and coverage."

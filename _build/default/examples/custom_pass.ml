(* Using the library as an IR toolkit: build a function with the
   Builder, verify it, write a small custom analysis over the def-use
   graph, and run a what-if study with a custom fault-site selection.

     dune exec examples/custom_pass.exe *)

open Vir

(* A custom analysis: for every masked intrinsic call, report which
   register supplies its execution mask and how many instructions feed
   that mask (its backward cone). *)
let mask_provenance (m : Vmodule.t) =
  List.iter
    (fun f ->
      let def_tbl = Func.def_table f in
      Func.iter_instrs f (fun b i ->
          match i.Instr.op with
          | Instr.Call (name, args) when Intrinsics.is_masked name ->
            let mask_ix = Option.get (Intrinsics.mask_operand name) in
            let rec cone_size seen o =
              match o with
              | Instr.Imm _ -> 0
              | Instr.Reg (r, _) -> (
                if Hashtbl.mem seen r then 0
                else begin
                  Hashtbl.replace seen r ();
                  match Hashtbl.find_opt def_tbl r with
                  | None -> 0 (* parameter *)
                  | Some def ->
                    1
                    + List.fold_left
                        (fun acc o -> acc + cone_size seen o)
                        0 (Instr.operands def)
                end)
            in
            let size = cone_size (Hashtbl.create 8) (List.nth args mask_ix) in
            Printf.printf "  %%%s/%s: mask cone of %d instruction(s)\n"
              f.Func.fname b.Block.label size
          | _ -> ()))
    m.Vmodule.funcs

let () =
  (* 1. Build a masked kernel by hand with the Builder API. *)
  let m = Vmodule.create "custom" in
  let vl = 8 in
  let vty = Vtype.vector vl Vtype.F32 in
  let b =
    Builder.define m ~name:"clamped_store"
      ~params:[ ("src", Vtype.ptr); ("dst", Vtype.ptr); ("limit", Vtype.f32) ]
      ~ret_ty:Vtype.Void
  in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let v = Builder.load b ~name:"v" vty (Builder.param b "src") in
  let lim = Builder.broadcast b (Builder.param b "limit") vl in
  let mask = Builder.fcmp b ~name:"mask" Instr.Folt v lim in
  ignore
    (Builder.call b ~ret:Vtype.Void
       (Intrinsics.maskstore_name Target.Avx Vtype.F32)
       [ Builder.param b "dst"; mask; v ]);
  Builder.ret b None;
  Verify.check_module m;
  Printf.printf "=== hand-built module ===\n%s\n" (Pp.module_to_string m);

  (* 2. Run the custom analysis. *)
  Printf.printf "mask provenance:\n";
  mask_provenance m;

  (* 3. Custom fault-site selection: target ONLY the masked intrinsics'
     values, ignoring the built-in category heuristics, and sweep every
     (lane, bit) with a deterministic harness. *)
  let targets =
    List.filter
      (fun (t : Analysis.Sites.target) ->
        match t.Analysis.Sites.t_instr.Instr.op with
        | Instr.Call (name, _) -> Intrinsics.is_masked name
        | _ -> false)
      (Analysis.Sites.targets_of_module m)
  in
  Printf.printf "\ncustom selection: %d masked-intrinsic target(s), %d sites\n"
    (List.length targets)
    (Analysis.Sites.total_sites targets);
  let instr = Vulfi.Instrument.run m targets in
  let code = Interp.Compile.compile_module instr.Vulfi.Instrument.instrumented in
  let run_once ~site ~seed =
    let rt =
      Vulfi.Runtime.create ~seed
        (Vulfi.Runtime.Inject { dynamic_site = site })
    in
    let st = Interp.Machine.create code in
    Vulfi.Runtime.attach rt st;
    let mem = Interp.Machine.memory st in
    let src = Interp.Memory.alloc mem ~name:"src" ~bytes:(4 * vl) in
    let dst = Interp.Memory.alloc mem ~name:"dst" ~bytes:(4 * vl) in
    Interp.Memory.write_f32_array mem src
      (Array.init vl (fun i -> float_of_int i));
    ignore
      (Interp.Machine.run st "clamped_store"
         [ Interp.Vvalue.of_ptr src; Interp.Vvalue.of_ptr dst;
           Interp.Vvalue.of_f32 4.5 ]);
    (Interp.Memory.read_f32_array mem dst vl, Vulfi.Runtime.injected rt)
  in
  let golden, _ = run_once ~site:0 ~seed:0 in
  let corrupted = ref 0 and total = ref 0 and skipped = ref 0 in
  for site = 1 to Analysis.Sites.total_sites targets do
    for seed = 0 to 9 do
      let out, inj = run_once ~site ~seed in
      if inj <> None then begin
        incr total;
        if out <> golden then incr corrupted
      end
      else incr skipped
    done
  done;
  Printf.printf
    "swept the site space: %d injections landed (%d corrupted the \
     output), %d attempts skipped\n"
    !total !corrupted !skipped;
  Printf.printf
    "(the skipped attempts targeted dynamic sites that never go live: \
     lanes masked off by the store predicate are not fault sites — \
     VULFI's mask-awareness at work)\n"

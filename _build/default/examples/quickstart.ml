(* Quickstart: compile a mini-ISPC kernel, run it in the VM, then flip a
   single bit mid-execution and watch the output corrupt.

     dune exec examples/quickstart.exe *)

let source =
  "export void saxpy(uniform float x[], uniform float y[],\n\
  \                  uniform float a, uniform int n) {\n\
  \  foreach (i = 0 ... n) {\n\
  \    y[i] = a * x[i] + y[i];\n\
  \  }\n\
   }"

let n = 12

let () =
  (* 1. Compile for the AVX target (8 x f32 lanes). *)
  let target = Vir.Target.Avx in
  let m = Minispc.Driver.compile target source in
  Printf.printf "=== generated VIR (note the Fig 7 foreach structure) ===\n%s\n"
    (Vir.Pp.module_to_string m);

  (* 2. Run it fault-free. *)
  let run_plain () =
    let st = Interp.Machine.create (Interp.Compile.compile_module m) in
    let mem = Interp.Machine.memory st in
    let x = Interp.Memory.alloc mem ~name:"x" ~bytes:(4 * n) in
    let y = Interp.Memory.alloc mem ~name:"y" ~bytes:(4 * n) in
    Interp.Memory.write_f32_array mem x (Array.init n float_of_int);
    Interp.Memory.write_f32_array mem y (Array.make n 1.0);
    ignore
      (Interp.Machine.run st "saxpy"
         [ Interp.Vvalue.of_ptr x; Interp.Vvalue.of_ptr y;
           Interp.Vvalue.of_f32 2.0; Interp.Vvalue.of_i32 n ]);
    Interp.Memory.read_f32_array mem y n
  in
  let golden = run_plain () in
  Printf.printf "fault-free y = [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%g") golden)));

  (* 3. Wrap it as a workload and inject one fault at a pure-data site. *)
  let workload =
    {
      Vulfi.Workload.w_name = "saxpy";
      w_fn = "saxpy";
      w_inputs = 1;
      w_out_tolerance = 0.0;
      w_build = (fun t -> Minispc.Driver.compile t source);
      w_setup =
        (fun ~input:_ st ->
          let mem = Interp.Machine.memory st in
          let x = Interp.Memory.alloc mem ~name:"x" ~bytes:(4 * n) in
          let y = Interp.Memory.alloc mem ~name:"y" ~bytes:(4 * n) in
          Interp.Memory.write_f32_array mem x (Array.init n float_of_int);
          Interp.Memory.write_f32_array mem y (Array.make n 1.0);
          ( [ Interp.Vvalue.of_ptr x; Interp.Vvalue.of_ptr y;
              Interp.Vvalue.of_f32 2.0; Interp.Vvalue.of_i32 n ],
            fun () ->
              {
                Vulfi.Outcome.empty_output with
                Vulfi.Outcome.o_f32 =
                  [ Interp.Memory.read_f32_array mem y n ];
              } ));
    }
  in
  let prepared =
    Vulfi.Experiment.prepare workload target Analysis.Sites.Pure_data
  in
  let g = Vulfi.Experiment.golden_run prepared ~input:0 in
  Printf.printf "\ninstrumented golden run: %d dynamic fault sites\n"
    g.Vulfi.Experiment.g_dyn_sites;
  let r =
    Vulfi.Experiment.faulty_run prepared ~golden:g ~dynamic_site:5 ~seed:7
  in
  (match r.Vulfi.Experiment.r_injection with
  | Some inj ->
    Printf.printf "flipped bit %d: %s -> %s\n" inj.Vulfi.Runtime.inj_bit
      (Interp.Vvalue.to_string inj.Vulfi.Runtime.inj_before)
      (Interp.Vvalue.to_string inj.Vulfi.Runtime.inj_after)
  | None -> ());
  Printf.printf "outcome: %s\n"
    (Vulfi.Outcome.to_string r.Vulfi.Experiment.r_outcome)

(* End-to-end integration checks across the whole pipeline, pinning
   paper-shape invariants that must hold at any seed, plus a seeded
   regression that locks one full campaign's statistics so behavioural
   drift anywhere in the stack (compiler, VM, instrumentor, runtime,
   statistics) is caught immediately. *)

let check = Alcotest.check

let tiny_cfg =
  {
    Vulfi.Campaign.experiments_per_campaign = 30;
    min_campaigns = 4;
    max_campaigns = 4;
    margin_target = 1.0;
    seed = 20260706;
  }

let micro name =
  match Benchmarks.Registry.find name with
  | Some b -> b.Benchmarks.Harness.bench
  | None -> Alcotest.fail ("missing benchmark " ^ name)

(* ---------------- paper-shape invariants ---------------- *)

(* Pure-data faults can never crash: their slices reach no address and
   no branch, so corruption flows only into stored values. *)
let test_pure_data_never_crashes () =
  List.iter
    (fun name ->
      let r =
        Vulfi.Campaign.run tiny_cfg (micro name) Vir.Target.Avx
          Analysis.Sites.Pure_data
      in
      check Alcotest.int (name ^ ": no crashes") 0
        r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_crash)
    [ "vector copy"; "dot product"; "vector sum" ]

(* Address faults crash more often than pure-data faults everywhere. *)
let test_address_crashes_dominate () =
  List.iter
    (fun name ->
      let addr =
        Vulfi.Campaign.run tiny_cfg (micro name) Vir.Target.Avx
          Analysis.Sites.Address
      in
      let pd =
        Vulfi.Campaign.run tiny_cfg (micro name) Vir.Target.Avx
          Analysis.Sites.Pure_data
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: addr crash (%d) > pure-data crash (%d)" name
           addr.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_crash
           pd.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_crash)
        true
        (addr.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_crash
        > pd.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_crash))
    [ "vector copy"; "vector sum" ]

(* The three outcome classes partition every campaign exactly. *)
let test_outcomes_partition () =
  List.iter
    (fun cat ->
      let r = Vulfi.Campaign.run tiny_cfg (micro "dot product") Vir.Target.Sse cat in
      let t = r.Vulfi.Campaign.c_totals in
      check Alcotest.int
        (Analysis.Sites.category_name cat ^ ": partition")
        t.Vulfi.Campaign.n_experiments
        (t.Vulfi.Campaign.n_sdc + t.Vulfi.Campaign.n_benign
        + t.Vulfi.Campaign.n_crash))
    Analysis.Sites.all_categories

(* Campaign determinism across process lifetime: same config, same
   numbers — the property that makes EXPERIMENTS.md reproducible. *)
let test_campaign_reproducible () =
  let run () =
    Vulfi.Campaign.run tiny_cfg (micro "vector sum") Vir.Target.Avx
      Analysis.Sites.Control
  in
  let a = run () and b = run () in
  check
    Alcotest.(list (float 0.0))
    "identical campaign samples" a.Vulfi.Campaign.c_sdc_rates
    b.Vulfi.Campaign.c_sdc_rates;
  check Alcotest.int "identical SDC totals"
    a.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_sdc
    b.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_sdc

(* Detector insertion must not change campaign outcomes when the
   detector never fires on the measurement itself (it only observes):
   outcome classification happens on program output, and the detector
   blocks are excluded from the fault-site census. *)
let test_detectors_do_not_change_site_census () =
  let w = micro "vector copy" in
  let plain = w.Vulfi.Workload.w_build Vir.Target.Avx in
  let detected = w.Vulfi.Workload.w_build Vir.Target.Avx in
  ignore (Detectors.Foreach_invariants.run detected);
  let count m cat =
    Analysis.Sites.total_sites
      (Analysis.Sites.select (Analysis.Sites.targets_of_module m) cat)
  in
  List.iter
    (fun cat ->
      check Alcotest.int
        (Analysis.Sites.category_name cat ^ " site count unchanged")
        (count plain cat) (count detected cat))
    Analysis.Sites.all_categories

(* ---------------- seeded regression ---------------- *)

(* One full pinned campaign. If this fails after an intentional change
   (new instructions emitted, altered lowering, different RNG use),
   re-baseline deliberately — never silently. *)
let test_pinned_campaign_regression () =
  let r =
    Vulfi.Campaign.run tiny_cfg (micro "vector copy") Vir.Target.Avx
      Analysis.Sites.Control
  in
  let t = r.Vulfi.Campaign.c_totals in
  check Alcotest.int "experiments" 120 t.Vulfi.Campaign.n_experiments;
  (* the exact split is a deterministic function of the whole stack *)
  Printf.printf "pinned campaign: sdc=%d benign=%d crash=%d\n%!"
    t.Vulfi.Campaign.n_sdc t.Vulfi.Campaign.n_benign t.Vulfi.Campaign.n_crash;
  Alcotest.(check bool) "sdc in plausible band" true
    (t.Vulfi.Campaign.n_sdc > 20 && t.Vulfi.Campaign.n_sdc < 90);
  Alcotest.(check bool) "crashes present but minority" true
    (t.Vulfi.Campaign.n_crash > 0
    && t.Vulfi.Campaign.n_crash < t.Vulfi.Campaign.n_experiments / 2)

(* The golden-run dynamic-site count is a stable function of the
   program and input: pin it exactly for vcopy AVX n=100. *)
let test_pinned_dynamic_sites () =
  let p =
    Vulfi.Experiment.prepare (micro "vector copy") Vir.Target.Avx
      Analysis.Sites.Pure_data
  in
  let g = Vulfi.Experiment.golden_run p ~input:0 in
  (* vector copy n=100, AVX: 12 full chunks of 8 lanes, one masked tail
     with 4 live lanes; pure-data sites = the per-lane copied values on
     both the load Lvalue and the store value *)
  Printf.printf "vcopy pure-data dynamic sites: %d\n%!"
    g.Vulfi.Experiment.g_dyn_sites;
  check Alcotest.int "deterministic site count"
    g.Vulfi.Experiment.g_dyn_sites
    (Vulfi.Experiment.golden_run p ~input:0).Vulfi.Experiment.g_dyn_sites;
  Alcotest.(check bool) "site count = 2 x live elements = 200" true
    (g.Vulfi.Experiment.g_dyn_sites = 200)

let () =
  Alcotest.run "integration"
    [
      ( "paper-shape",
        [
          Alcotest.test_case "pure-data never crashes" `Quick
            test_pure_data_never_crashes;
          Alcotest.test_case "address crashes dominate" `Quick
            test_address_crashes_dominate;
          Alcotest.test_case "outcomes partition" `Quick
            test_outcomes_partition;
        ] );
      ( "reproducibility",
        [
          Alcotest.test_case "campaigns reproducible" `Quick
            test_campaign_reproducible;
          Alcotest.test_case "detector blocks excluded from census" `Quick
            test_detectors_do_not_change_site_census;
          Alcotest.test_case "pinned campaign (regression)" `Quick
            test_pinned_campaign_regression;
          Alcotest.test_case "pinned dynamic sites" `Quick
            test_pinned_dynamic_sites;
        ] );
    ]

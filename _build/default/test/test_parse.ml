(* Round-trip tests for the textual VIR parser: for representative
   modules (hand-built and compiler-generated), print -> parse -> print
   must reach a fixpoint, the re-parsed module must verify, and it must
   execute identically. *)

open Vir

let check = Alcotest.check

let roundtrip name m =
  let s1 = Pp.module_to_string m in
  let m2 =
    try Parse.parse_module s1
    with Parse.Parse_error (msg, line) ->
      Alcotest.failf "%s: parse error at line %d: %s\n%s" name line msg s1
  in
  let s2 = Pp.module_to_string m2 in
  (* module name is not preserved; compare past the header line *)
  let body s =
    match String.index_opt s '\n' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  check Alcotest.string (name ^ " fixpoint") (body s1) (body s2);
  (match Verify.verify_module m2 with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s: reparsed module fails verification: %s" name
      (String.concat "; " (List.map Verify.error_to_string errs)));
  m2

let test_roundtrip_samples () =
  ignore (roundtrip "scale_add" (Ir_samples.scale_add_module ()));
  ignore (roundtrip "vadd8" (Ir_samples.vadd8_module ()));
  List.iter
    (fun t ->
      ignore
        (roundtrip
           ("masked_copy " ^ Target.name t)
           (Ir_samples.masked_copy_module t)))
    Target.all;
  let m, _, _, _, _ = Ir_samples.fig3_foo_module () in
  ignore (roundtrip "fig3" m)

let test_roundtrip_compiled () =
  (* every benchmark kernel, both targets: the printer/parser must cope
     with foreach lowering, masked intrinsics, phis, vector constants *)
  List.iter
    (fun (b : Benchmarks.Harness.benchmark) ->
      List.iter
        (fun target ->
          let w = b.Benchmarks.Harness.bench in
          let m = w.Vulfi.Workload.w_build target in
          ignore
            (roundtrip
               (Printf.sprintf "%s/%s" w.Vulfi.Workload.w_name
                  (Target.name target))
               m))
        Target.all)
    Benchmarks.Registry.all

let test_roundtrip_instrumented () =
  (* instrumented + detector-equipped modules round-trip too *)
  let b = List.hd Benchmarks.Registry.micro_benchmarks in
  let m = b.Benchmarks.Harness.bench.Vulfi.Workload.w_build Target.Avx in
  ignore (Detectors.Foreach_invariants.run m);
  let targets = Analysis.Sites.targets_of_module m in
  ignore (Vulfi.Instrument.run m targets);
  ignore (roundtrip "instrumented vcopy" m)

let test_reparsed_executes_identically () =
  let src =
    "export float dot(uniform float a[], uniform float b[], uniform int \
     n) { varying float s = 0.0; foreach (i = 0 ... n) { s += a[i] * \
     b[i]; } return reduce_add(s); }"
  in
  let m = Minispc.Driver.compile Target.Avx src in
  let m2 = Parse.parse_module (Pp.module_to_string m) in
  let run m =
    let st = Interp.Machine.create (Interp.Compile.compile_module m) in
    let mem = Interp.Machine.memory st in
    let n = 13 in
    let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
    let b = Interp.Memory.alloc mem ~name:"b" ~bytes:(4 * n) in
    Interp.Memory.write_f32_array mem a (Array.init n float_of_int);
    Interp.Memory.write_f32_array mem b (Array.make n 0.5);
    match
      Interp.Machine.run st "dot"
        [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_ptr b;
          Interp.Vvalue.of_i32 n ]
    with
    | Some v -> Interp.Vvalue.as_float v
    | None -> Alcotest.fail "no result"
  in
  check (Alcotest.float 0.0) "identical result" (run m) (run m2)

let test_parse_errors () =
  let bad snippets =
    List.iter
      (fun (snippet, needle) ->
        match Parse.parse_module snippet with
        | _ -> Alcotest.failf "expected parse error for %S" snippet
        | exception Parse.Parse_error (msg, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S mentions %S" msg needle)
            true
            (Astring_contains.contains msg needle))
      snippets
  in
  bad
    [
      ("definee void @f() { }", "define");
      ("define void @f( { }", "type");
      ("define void @f() { entry: frobnicate }", "opcode");
      ("define void @f() { entry: br nowhere }", "unknown");
      ("declare bogus @g()", "unknown scalar type");
    ]

let test_parse_constants () =
  (* scalar and vector constants of each kind survive the trip *)
  let m = Vmodule.create "consts" in
  let b = Builder.define m ~name:"f" ~params:[] ~ret_ty:Vtype.f64 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let v =
    Builder.fadd b
      (Instr.Imm (Const.f64 (-3.25)))
      (Instr.Imm (Const.f64 1.0e-30))
  in
  let iv =
    Builder.add b
      (Instr.Imm (Const.splat 4 (Const.i32 (-7))))
      (Instr.Imm (Const.iota Vtype.I32 4))
  in
  let first = Builder.extractelement b iv (Instr.Imm (Const.i32 0)) in
  let fcast = Builder.cast b Instr.Sitofp first Vtype.f64 in
  let sum = Builder.fadd b v fcast in
  Builder.ret b (Some sum);
  Verify.check_module m;
  let m2 = Parse.parse_module (Pp.module_to_string m) in
  let run m =
    let st = Interp.Machine.create (Interp.Compile.compile_module m) in
    match Interp.Machine.run st "f" [] with
    | Some v -> Interp.Vvalue.as_float v
    | None -> Alcotest.fail "no result"
  in
  check (Alcotest.float 0.0) "constant round trip" (run m) (run m2)

let prop_roundtrip_fixpoint =
  QCheck.Test.make ~name:"pp/parse fixpoint on random kernels" ~count:30
    QCheck.(pair (int_range 2 5) (int_range 0 1))
    (fun (terms, tgt) ->
      (* build a random straight-line float kernel *)
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        "export void k(uniform float a[], uniform int n) { foreach (i = 0 \
         ... n) { float x = a[i];";
      for t = 1 to terms do
        Buffer.add_string buf
          (Printf.sprintf " x = x * %d.5 + %d.0;" t (t * 3))
      done;
      Buffer.add_string buf " a[i] = x; } }";
      let target = if tgt = 0 then Target.Avx else Target.Sse in
      let m = Minispc.Driver.compile target (Buffer.contents buf) in
      let s1 = Pp.module_to_string m in
      let s2 = Pp.module_to_string (Parse.parse_module s1) in
      let body s =
        match String.index_opt s '\n' with
        | Some i -> String.sub s (i + 1) (String.length s - i - 1)
        | None -> s
      in
      body s1 = body s2)

let () =
  Alcotest.run "parse"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "hand-built samples" `Quick
            test_roundtrip_samples;
          Alcotest.test_case "all compiled benchmarks" `Quick
            test_roundtrip_compiled;
          Alcotest.test_case "instrumented module" `Quick
            test_roundtrip_instrumented;
          Alcotest.test_case "re-parsed module executes identically" `Quick
            test_reparsed_executes_identically;
          Alcotest.test_case "constants" `Quick test_parse_constants;
        ] );
      ( "errors",
        [ Alcotest.test_case "rejects bad input" `Quick test_parse_errors ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_roundtrip_fixpoint ] );
    ]

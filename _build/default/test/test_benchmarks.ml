(* Validation of the nine Table I benchmarks and three micro-benchmarks:
   each vectorized kernel is executed on both targets and compared with
   an independent OCaml reference; every benchmark must also survive
   instrumentation and a golden run in every fault-site category. *)

open Benchmarks

let check = Alcotest.check

let run_bench (b : Harness.benchmark) ~target ~input =
  let w = b.Harness.bench in
  let m = w.Vulfi.Workload.w_build target in
  let st = Interp.Machine.create (Interp.Compile.compile_module m) in
  let args, read = w.Vulfi.Workload.w_setup ~input st in
  ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args);
  (read (), Interp.Machine.dyn_count st)

let close ?(atol = 1e-3) ?(rtol = 1e-3) msg expected actual =
  if Array.length expected <> Array.length actual then
    Alcotest.failf "%s: length %d vs %d" msg (Array.length expected)
      (Array.length actual);
  Array.iteri
    (fun i e ->
      let a = actual.(i) in
      let tol = atol +. (rtol *. abs_float e) in
      if abs_float (e -. a) > tol then
        Alcotest.failf "%s[%d]: expected %.6g, got %.6g (tol %.2g)" msg i e a
          tol)
    expected

let each_target_input inputs f =
  List.iter
    (fun target ->
      for input = 0 to inputs - 1 do
        f target input
      done)
    Vir.Target.all

let ctx target input = Printf.sprintf "%s input %d" (Vir.Target.name target) input

(* ---------------- per-benchmark correctness ---------------- *)

let test_blackscholes () =
  each_target_input 3 (fun target input ->
      let out, _ = run_bench Blackscholes.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ result ] ->
        close ~atol:1e-2 ~rtol:1e-3
          ("blackscholes " ^ ctx target input)
          (Blackscholes.reference ~input)
          result
      | _ -> Alcotest.fail "output shape")

let test_sorting () =
  each_target_input 3 (fun target input ->
      let out, _ = run_bench Sorting.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_i32 with
      | [ result ] ->
        check
          Alcotest.(array int)
          ("sorting " ^ ctx target input)
          (Sorting.reference ~input)
          result
      | _ -> Alcotest.fail "output shape")

let test_stencil () =
  each_target_input 3 (fun target input ->
      let out, _ = run_bench Stencil.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ a_final ] ->
        close ~atol:1e-4 ~rtol:1e-4
          ("stencil " ^ ctx target input)
          (Stencil.reference ~input)
          a_final
      | _ -> Alcotest.fail "output shape")

let test_jacobi () =
  each_target_input 3 (fun target input ->
      let out, _ = run_bench Jacobi.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ u_final ] ->
        close ~atol:1e-4 ~rtol:1e-4
          ("jacobi " ^ ctx target input)
          (Jacobi.reference ~input)
          u_final
      | _ -> Alcotest.fail "output shape")

let test_chebyshev () =
  each_target_input 4 (fun target input ->
      let out, _ = run_bench Chebyshev.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ c ] ->
        close ~atol:2e-3 ~rtol:1e-3
          ("chebyshev " ^ ctx target input)
          (Chebyshev.reference ~input)
          c
      | _ -> Alcotest.fail "output shape")

let test_conjugate_gradient () =
  each_target_input 3 (fun target input ->
      let out, _ = run_bench Conjugate_gradient.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ x ] ->
        close ~atol:5e-3 ~rtol:5e-3
          ("cg " ^ ctx target input)
          (Conjugate_gradient.reference ~input)
          x
      | _ -> Alcotest.fail "output shape")

let test_raytracing () =
  each_target_input 3 (fun target input ->
      let out, _ = run_bench Raytracing.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ img ] ->
        close ~atol:2e-3 ~rtol:1e-3
          ("raytracing " ^ ctx target input)
          (Raytracing.reference ~input)
          img
      | _ -> Alcotest.fail "output shape")

let test_raytracing_hits_something () =
  (* sanity: the synthetic scenes actually produce non-trivial images *)
  for input = 0 to 2 do
    let img = Raytracing.reference ~input in
    let nonzero = Array.fold_left (fun n x -> if x > 0.0 then n + 1 else n) 0 img in
    Alcotest.(check bool)
      (Printf.sprintf "scene %d has hits and misses" input)
      true
      (nonzero > 0 && nonzero < Array.length img)
  done

let test_fluidanimate () =
  each_target_input 2 (fun target input ->
      let out, _ = run_bench Fluidanimate.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ px; py; pz; density ] ->
        let epx, epy, epz, edens = Fluidanimate.reference ~input in
        close ~atol:1e-3 ~rtol:1e-3 ("fluid px " ^ ctx target input) epx px;
        close ~atol:1e-3 ~rtol:1e-3 ("fluid py " ^ ctx target input) epy py;
        close ~atol:1e-3 ~rtol:1e-3 ("fluid pz " ^ ctx target input) epz pz;
        close ~atol:1e-2 ~rtol:1e-2
          ("fluid density " ^ ctx target input)
          edens density
      | _ -> Alcotest.fail "output shape")

let test_swaptions () =
  each_target_input 2 (fun target input ->
      let out, _ = run_bench Swaptions.benchmark ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ prices ] ->
        close ~atol:1e-4 ~rtol:1e-3
          ("swaptions " ^ ctx target input)
          (Swaptions.reference ~input)
          prices
      | _ -> Alcotest.fail "output shape")

let test_micro () =
  each_target_input 2 (fun target input ->
      let out, _ = run_bench Micro.vcopy ~target ~input in
      (match out.Vulfi.Outcome.o_i32 with
      | [ a2 ] ->
        check
          Alcotest.(array int)
          ("vcopy " ^ ctx target input)
          (Micro.vcopy_reference ~input)
          a2
      | _ -> Alcotest.fail "vcopy shape");
      let out, _ = run_bench Micro.dot_product ~target ~input in
      (match out.Vulfi.Outcome.o_f32 with
      | [ [| d |] ] ->
        let expected = Micro.dot_reference ~input in
        Alcotest.(check bool)
          ("dot " ^ ctx target input)
          true
          (abs_float (d -. expected) < 1e-2 +. (1e-3 *. abs_float expected))
      | _ -> Alcotest.fail "dot shape");
      let out, _ = run_bench Micro.vsum ~target ~input in
      match out.Vulfi.Outcome.o_f32 with
      | [ [| s |] ] ->
        let expected = Micro.vsum_reference ~input in
        Alcotest.(check bool)
          ("vsum " ^ ctx target input)
          true
          (abs_float (s -. expected) < 1e-2 +. (1e-3 *. abs_float expected))
      | _ -> Alcotest.fail "vsum shape")

(* ---------------- registry ---------------- *)

let test_registry () =
  check Alcotest.int "nine paper benchmarks" 9
    (List.length Registry.paper_benchmarks);
  check Alcotest.int "three micro-benchmarks" 3
    (List.length Registry.micro_benchmarks);
  check Alcotest.int "twelve total" 12 (List.length Registry.all);
  Alcotest.(check bool) "find by name" true
    (Option.is_some (Registry.find "blackscholes"));
  Alcotest.(check bool) "find is case-insensitive" true
    (Option.is_some (Registry.find "SORTING"));
  Alcotest.(check bool) "unknown name" true (Registry.find "nope" = None);
  (* Table I metadata present *)
  List.iter
    (fun (b : Harness.benchmark) ->
      Alcotest.(check bool)
        (b.Harness.bench.Vulfi.Workload.w_name ^ " has metadata")
        true
        (String.length b.Harness.language > 0
        && String.length b.Harness.input_desc > 0))
    Registry.all

(* ---------------- instrumentation compatibility ---------------- *)

(* Every benchmark must survive site selection, instrumentation,
   verification and a golden profiling run in every category. *)
let test_all_benchmarks_instrument_and_profile () =
  List.iter
    (fun (b : Harness.benchmark) ->
      List.iter
        (fun target ->
          List.iter
            (fun cat ->
              let p =
                Vulfi.Experiment.prepare b.Harness.bench target cat
              in
              let g = Vulfi.Experiment.golden_run p ~input:0 in
              Alcotest.(check bool)
                (Printf.sprintf "%s %s %s has dynamic sites"
                   b.Harness.bench.Vulfi.Workload.w_name
                   (Vir.Target.name target)
                   (Analysis.Sites.category_name cat))
                true
                (g.Vulfi.Experiment.g_dyn_sites > 0))
            Analysis.Sites.all_categories)
        Vir.Target.all)
    Registry.all

(* A small end-to-end injection smoke per paper benchmark. *)
let test_benchmark_injection_smoke () =
  List.iter
    (fun (b : Harness.benchmark) ->
      let p =
        Vulfi.Experiment.prepare b.Harness.bench Vir.Target.Avx
          Analysis.Sites.Pure_data
      in
      let g = Vulfi.Experiment.golden_run p ~input:0 in
      let r =
        Vulfi.Experiment.faulty_run p ~golden:g
          ~dynamic_site:(1 + (g.Vulfi.Experiment.g_dyn_sites / 2))
          ~seed:31337
      in
      Alcotest.(check bool)
        (b.Harness.bench.Vulfi.Workload.w_name ^ " injection ran")
        true
        (r.Vulfi.Experiment.r_injection <> None))
    Registry.paper_benchmarks

(* Dynamic instruction counts vary across benchmarks and grow with
   input size (Table I pattern). *)
let test_dynamic_counts () =
  let counts =
    List.map
      (fun (b : Harness.benchmark) ->
        let _, dyn = run_bench b ~target:Vir.Target.Avx ~input:0 in
        (b.Harness.bench.Vulfi.Workload.w_name, dyn))
      Registry.paper_benchmarks
  in
  List.iter
    (fun (name, dyn) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s executes >100 instructions (%d)" name dyn)
        true (dyn > 100))
    counts;
  (* larger inputs execute more instructions *)
  let _, d0 = run_bench Sorting.benchmark ~target:Vir.Target.Avx ~input:0 in
  let _, d2 = run_bench Sorting.benchmark ~target:Vir.Target.Avx ~input:2 in
  Alcotest.(check bool) "sorting count grows" true (d2 > d0)

(* AVX runs fewer-or-similar dynamic vector iterations than SSE for the
   same work (wider lanes), visible on a big contiguous kernel. *)
let test_avx_vs_sse_dynamic () =
  let _, avx = run_bench Stencil.benchmark ~target:Vir.Target.Avx ~input:2 in
  let _, sse = run_bench Stencil.benchmark ~target:Vir.Target.Sse ~input:2 in
  Alcotest.(check bool)
    (Printf.sprintf "avx (%d) < sse (%d)" avx sse)
    true (avx < sse)

let () =
  Alcotest.run "benchmarks"
    [
      ( "correctness",
        [
          Alcotest.test_case "blackscholes" `Quick test_blackscholes;
          Alcotest.test_case "sorting" `Quick test_sorting;
          Alcotest.test_case "stencil" `Quick test_stencil;
          Alcotest.test_case "jacobi" `Quick test_jacobi;
          Alcotest.test_case "chebyshev" `Quick test_chebyshev;
          Alcotest.test_case "conjugate gradient" `Quick
            test_conjugate_gradient;
          Alcotest.test_case "raytracing" `Quick test_raytracing;
          Alcotest.test_case "raytracing scene sanity" `Quick
            test_raytracing_hits_something;
          Alcotest.test_case "fluidanimate" `Quick test_fluidanimate;
          Alcotest.test_case "swaptions" `Quick test_swaptions;
          Alcotest.test_case "micro-benchmarks" `Quick test_micro;
        ] );
      ( "registry",
        [ Alcotest.test_case "paper inventory" `Quick test_registry ] );
      ( "fault-injection-compat",
        [
          Alcotest.test_case "instrument + profile all" `Slow
            test_all_benchmarks_instrument_and_profile;
          Alcotest.test_case "injection smoke" `Slow
            test_benchmark_injection_smoke;
          Alcotest.test_case "dynamic counts" `Quick test_dynamic_counts;
          Alcotest.test_case "AVX vs SSE" `Quick test_avx_vs_sse_dynamic;
        ] );
    ]

(* End-to-end helper: compile mini-ISPC source and execute an exported
   function in the VM. Used by the minispc, vulfi and detector suites. *)

open Interp

type arg =
  | Arr_f32 of float array
  | Arr_i32 of int array
  | Int of int
  | Float of float

type result = {
  ret : Vvalue.t option;
  arrays_f32 : float array list;  (* post-run contents, in arg order *)
  arrays_i32 : int array list;
  dyn : int;
}

let run ?budget ~(target : Vir.Target.t) ~fn src (args : arg list) : result =
  let m = Minispc.Driver.compile target src in
  let st = Machine.create ?budget (Compile.compile_module m) in
  let mem = Machine.memory st in
  let prepared =
    List.map
      (fun a ->
        match a with
        | Arr_f32 xs ->
          let base =
            Memory.alloc mem ~name:"arr" ~bytes:(4 * Array.length xs)
          in
          Memory.write_f32_array mem base xs;
          (Vvalue.of_ptr base, Some (`F32 (base, Array.length xs)))
        | Arr_i32 xs ->
          let base =
            Memory.alloc mem ~name:"arr" ~bytes:(4 * Array.length xs)
          in
          Memory.write_i32_array mem base xs;
          (Vvalue.of_ptr base, Some (`I32 (base, Array.length xs)))
        | Int n -> (Vvalue.of_i32 n, None)
        | Float x -> (Vvalue.of_f32 x, None))
      args
  in
  let ret = Machine.run st fn (List.map fst prepared) in
  let arrays_f32 =
    List.filter_map
      (function
        | _, Some (`F32 (base, n)) -> Some (Memory.read_f32_array mem base n)
        | _ -> None)
      prepared
  in
  let arrays_i32 =
    List.filter_map
      (function
        | _, Some (`I32 (base, n)) -> Some (Memory.read_i32_array mem base n)
        | _ -> None)
      prepared
  in
  { ret; arrays_f32; arrays_i32; dyn = Machine.dyn_count st }

let ret_f32 r =
  match r.ret with
  | Some v -> Vvalue.as_float v
  | None -> Alcotest.fail "expected a float return value"

let ret_i32 r =
  match r.ret with
  | Some v -> Int64.to_int (Vvalue.as_int v)
  | None -> Alcotest.fail "expected an int return value"

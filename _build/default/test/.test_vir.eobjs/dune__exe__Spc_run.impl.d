test/spc_run.ml: Alcotest Array Compile Int64 Interp List Machine Memory Minispc Vir Vvalue

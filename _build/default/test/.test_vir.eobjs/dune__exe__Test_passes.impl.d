test/test_passes.ml: Alcotest Analysis Array Benchmarks Builder Const Dce Func Instr Interp Intrinsics Ir_samples List Minispc Passes QCheck QCheck_alcotest Target Verify Vir Vmodule Vtype Vulfi

test/spmd_ref.ml: Array Ast Fun Hashtbl Int64 Interp List Minispc Vir

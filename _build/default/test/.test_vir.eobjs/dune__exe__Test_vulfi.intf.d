test/test_vulfi.mli:

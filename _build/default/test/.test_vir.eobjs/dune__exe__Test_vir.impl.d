test/test_vir.ml: Alcotest Astring_contains Block Builder Const Func Instr Int32 Intrinsics Ir_samples List Option Pp Printf QCheck QCheck_alcotest String Target Verify Vir Vmodule Vtype

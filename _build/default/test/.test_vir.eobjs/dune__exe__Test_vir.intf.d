test/test_vir.mli:

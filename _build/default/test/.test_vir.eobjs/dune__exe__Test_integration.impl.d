test/test_integration.ml: Alcotest Analysis Benchmarks Detectors List Printf Vir Vulfi

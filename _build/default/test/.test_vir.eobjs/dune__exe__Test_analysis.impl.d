test/test_analysis.ml: Alcotest Analysis Defuse Instmix Ir_samples List Minispc Option Printf QCheck QCheck_alcotest Sites Slice Vir

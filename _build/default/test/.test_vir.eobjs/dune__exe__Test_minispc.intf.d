test/test_minispc.mli:

test/ir_samples.ml: Builder Const Instr Intrinsics Target Vir Vmodule Vtype

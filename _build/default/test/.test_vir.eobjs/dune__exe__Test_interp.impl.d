test/test_interp.ml: Alcotest Array Bits Builder Compile Const Float Int32 Int64 Interp Ir_samples List Machine Memory Printf QCheck QCheck_alcotest Target Trap Verify Vir Vmodule Vtype Vvalue

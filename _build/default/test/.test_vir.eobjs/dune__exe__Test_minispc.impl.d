test/test_minispc.ml: Alcotest Array Ast Astring_contains Driver Interp Lexer List Minispc Option Parser Printf QCheck QCheck_alcotest Spc_run String Typecheck Vir

test/test_fuzz.ml: Alcotest Analysis Array Benchmarks Buffer Gen Int64 Interp List Minispc Passes Printf QCheck QCheck_alcotest Spmd_ref Test Vir Vulfi

(* Tests for the mini-ISPC compiler: lexer, parser, typechecker, and
   end-to-end codegen semantics on both vector targets. *)

open Minispc

let check = Alcotest.check

let both_targets f = List.iter f Vir.Target.all

(* ---------------- Lexer ---------------- *)

let lex_all src =
  let lx = Lexer.create src in
  let rec go acc =
    match Lexer.next lx with
    | Lexer.EOF, _ -> List.rev acc
    | tok, _ -> go (tok :: acc)
  in
  go []

let test_lexer_basic () =
  check Alcotest.int "token count" 6 (List.length (lex_all "x = a + 1;"));
  (match lex_all "foreach (i = 0 ... n)" with
  | [ Lexer.KW_foreach; Lexer.LPAREN; Lexer.IDENT "i"; Lexer.ASSIGN;
      Lexer.INT 0; Lexer.ELLIPSIS; Lexer.IDENT "n"; Lexer.RPAREN ] -> ()
  | _ -> Alcotest.fail "foreach token stream");
  match lex_all "a <= b << 2 >= c >> 1" with
  | [ Lexer.IDENT "a"; Lexer.LE; Lexer.IDENT "b"; Lexer.SHL; Lexer.INT 2;
      Lexer.GE; Lexer.IDENT "c"; Lexer.SHR; Lexer.INT 1 ] -> ()
  | _ -> Alcotest.fail "shift/compare disambiguation"

let test_lexer_numbers () =
  (match lex_all "42 3.5 1e3 2.5e-2 7f" with
  | [ Lexer.INT 42; Lexer.FLOAT 3.5; Lexer.FLOAT 1000.0; Lexer.FLOAT 0.025;
      Lexer.FLOAT 7.0 ] -> ()
  | toks ->
    Alcotest.failf "numbers: got %s"
      (String.concat " " (List.map Lexer.token_name toks)))

let test_lexer_comments () =
  check Alcotest.int "line comment" 2
    (List.length (lex_all "a // comment ;;;\nb"));
  check Alcotest.int "block comment" 2
    (List.length (lex_all "a /* x\ny */ b"))

let test_lexer_errors () =
  Alcotest.(check bool) "unterminated comment" true
    (try
       ignore (lex_all "/* never ends");
       false
     with Lexer.Lex_error _ -> true);
  Alcotest.(check bool) "bad char" true
    (try
       ignore (lex_all "a $ b");
       false
     with Lexer.Lex_error _ -> true)

let test_lexer_positions () =
  let lx = Lexer.create "a\n  b" in
  let _, p1 = Lexer.next lx in
  let _, p2 = Lexer.next lx in
  check Alcotest.int "line 1" 1 p1.Ast.line;
  check Alcotest.int "line 2" 2 p2.Ast.line;
  check Alcotest.int "col 3" 3 p2.Ast.col

(* ---------------- Parser ---------------- *)

let parse src = Parser.parse_program src

let test_parse_function_shape () =
  let prog =
    parse
      "export void f(uniform float a[], uniform int n) { foreach (i = 0 \
       ... n) { a[i] = a[i] + 1.0; } }"
  in
  match prog with
  | [ f ] ->
    Alcotest.(check bool) "export" true f.Ast.f_export;
    check Alcotest.(option string) "void return" None
      (Option.map Ast.ty_name f.Ast.f_ret);
    check Alcotest.int "2 params" 2 (List.length f.Ast.f_params);
    Alcotest.(check bool) "first param is array" true
      (List.hd f.Ast.f_params).Ast.p_is_array
  | _ -> Alcotest.fail "expected one function"

let test_parse_precedence () =
  let prog = parse "int f() { uniform int x = 1 + 2 * 3; return x; }" in
  match prog with
  | [ { Ast.f_body = [ { Ast.s = Ast.Decl (_, _, e); _ }; _ ]; _ } ] -> (
    match e.Ast.e with
    | Ast.Binop (Ast.Add, { Ast.e = Ast.Int_lit 1; _ },
                 { Ast.e = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
    | _ -> Alcotest.fail "precedence: * binds tighter than +")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parse_compound_assign () =
  let prog = parse "void f(uniform float a[]) { a[0] += 2.0; }" in
  match prog with
  | [ { Ast.f_body = [ { Ast.s = Ast.Store (_, _, e); _ } ]; _ } ] -> (
    match e.Ast.e with
    | Ast.Binop (Ast.Add, { Ast.e = Ast.Index _; _ }, _) -> ()
    | _ -> Alcotest.fail "compound store desugaring")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parse_cast_vs_paren () =
  let prog = parse "int f() { uniform int x = (int) 3.5; uniform int y = (x); return y; }" in
  match prog with
  | [ { Ast.f_body =
          [ { Ast.s = Ast.Decl (_, _, e1); _ }; { Ast.s = Ast.Decl (_, _, e2); _ }; _ ]; _ } ] ->
    (match e1.Ast.e with
    | Ast.Cast (Ast.Tint, _) -> ()
    | _ -> Alcotest.fail "cast parsed");
    (match e2.Ast.e with
    | Ast.Var "x" -> ()
    | _ -> Alcotest.fail "paren expr parsed")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parse_if_else_chain () =
  let prog =
    parse
      "void f(uniform int n) { uniform int x = 0; if (n > 0) { x = 1; } \
       else if (n < 0) { x = 2; } else { x = 3; } }"
  in
  match prog with
  | [ { Ast.f_body = [ _; { Ast.s = Ast.If (_, _, [ { Ast.s = Ast.If (_, _, _); _ } ]); _ } ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "else-if chains"

let test_parse_errors () =
  let bad srcs =
    List.iter
      (fun src ->
        Alcotest.(check bool)
          ("rejects: " ^ src)
          true
          (try
             ignore (parse src);
             false
           with Parser.Parse_error _ | Lexer.Lex_error _ -> true))
      srcs
  in
  bad
    [
      "void f( {";
      "void f() { return }";
      "void f() { foreach (i = 0 .. n) {} }";
      "void f() { x +; }";
      "void";
    ]

(* ---------------- Typecheck ---------------- *)

let typecheck src = Typecheck.check_program (parse src)

let expect_type_error src needle =
  match typecheck src with
  | () -> Alcotest.failf "expected type error (%s) for: %s" needle src
  | exception Typecheck.Type_error (msg, _) ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S mentions %S" msg needle)
      true
      (Astring_contains.contains msg needle)

let test_typecheck_accepts_vcopy () =
  typecheck
    "export void vcopy(uniform int a1[], uniform int a2[], uniform int n) \
     { foreach (i = 0 ... n) { a2[i] = a1[i]; } }"

let test_typecheck_rejects_mixed_arith () =
  expect_type_error "void f() { uniform int x = 1 + 1.5; }" "cast"

let test_typecheck_rejects_varying_to_uniform () =
  expect_type_error
    "void f(uniform int a[], uniform int n) { foreach (i = 0 ... n) { \
     uniform int x = i; } }"
    "varying"

let test_typecheck_rejects_varying_while () =
  expect_type_error
    "void f(uniform int a[], uniform int n) { foreach (i = 0 ... n) { \
     while (i < 4) { i = i + 1; } } }"
    "uniform bool"

let test_typecheck_rejects_nested_foreach () =
  expect_type_error
    "void f(uniform int n) { foreach (i = 0 ... n) { foreach (j = 0 ... \
     n) { } } }"
    "nested foreach"

let test_typecheck_rejects_uniform_assign_in_foreach () =
  expect_type_error
    "void f(uniform int n) { uniform int s = 0; foreach (i = 0 ... n) { s \
     = s + 1; } }"
    "foreach"

let test_typecheck_rejects_loop_under_varying_mask () =
  expect_type_error
    "void f(uniform int n) { foreach (i = 0 ... n) { if (i > 2) { while \
     (true) { } } } }"
    "varying mask"

let test_typecheck_rejects_return_mid_body () =
  expect_type_error
    "int f(uniform int n) { if (n > 0) { return 1; } return 0; }"
    "return"

let test_typecheck_rejects_unknown_var () =
  expect_type_error "void f() { uniform int x = y; }" "unbound"

let test_typecheck_rejects_bad_call () =
  expect_type_error "void f() { uniform float x = sqrt(1); }" "float";
  expect_type_error "void f() { uniform float x = sqrt(1.0, 2.0); }"
    "1 argument";
  expect_type_error "void f() { g(); }" "unknown function"

let test_typecheck_reduce_type () =
  typecheck
    "float f(uniform float a[], uniform int n) { varying float s = 0.0; \
     foreach (i = 0 ... n) { s += a[i]; } return reduce_add(s); }"

let test_typecheck_rejects_array_as_scalar () =
  expect_type_error
    "void f(uniform float a[]) { uniform float x = a + 1.0; }" "array"

let test_typecheck_rejects_duplicate_funcs () =
  expect_type_error "void f() { } void f() { }" "duplicate"

let test_typecheck_rejects_varying_store_uniform_index () =
  expect_type_error
    "void f(uniform float a[], uniform int n) { foreach (i = 0 ... n) { \
     a[0] = (float) i; } }"
    "uniform index"


let test_parse_assert () =
  let prog = parse "void f(uniform int n) { assert(n > 0); }" in
  match prog with
  | [ { Ast.f_body = [ { Ast.s = Ast.Assert _; _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "assert statement parsed"

let test_typecheck_assert () =
  typecheck
    "void f(uniform int a[], uniform int n) { foreach (i = 0 ... n) { \
     assert(a[i] >= 0); } }";
  expect_type_error "void f() { assert(1 + 1); }" "bool"

let test_e2e_assert_codegen () =
  (* assert lowers to a call to the detector runtime and does not
     change program results *)
  both_targets (fun target ->
      let m =
        Driver.compile target
          "export void f(uniform int a[], uniform int n) { foreach (i = 0 \
           ... n) { assert(a[i] == a[i]); a[i] = a[i] + 1; } }"
      in
      let s = Vir.Pp.module_to_string m in
      Alcotest.(check bool) "calls __vulfi_assert" true
        (Astring_contains.contains s "__vulfi_assert"))


let test_e2e_break () =
  let src =
    "export int first_negative(uniform int a[], uniform int n) { uniform \
     int found = 0 - 1; for (uniform int i = 0; i < n; i += 1) { if (a[i] \
     < 0) { found = i; break; } } return found; }"
  in
  both_targets (fun target ->
      let a = [| 3; 7; 2; -5; 9; -1 |] in
      let r =
        Spc_run.run ~target ~fn:"first_negative" src
          [ Spc_run.Arr_i32 a; Spc_run.Int 6 ]
      in
      check Alcotest.int (Vir.Target.name target) 3 (Spc_run.ret_i32 r));
  (* no negative element: loop runs to completion *)
  let r =
    Spc_run.run ~target:Vir.Target.Avx ~fn:"first_negative" src
      [ Spc_run.Arr_i32 [| 1; 2; 3 |]; Spc_run.Int 3 ]
  in
  check Alcotest.int "not found" (-1) (Spc_run.ret_i32 r)

let test_e2e_continue () =
  let src =
    "export int sum_odds(uniform int a[], uniform int n) { uniform int s \
     = 0; for (uniform int i = 0; i < n; i += 1) { if (a[i] % 2 == 0) { \
     continue; } s = s + a[i]; } return s; }"
  in
  both_targets (fun target ->
      let a = [| 1; 2; 3; 4; 5; 6; 7 |] in
      let r =
        Spc_run.run ~target ~fn:"sum_odds" src
          [ Spc_run.Arr_i32 a; Spc_run.Int 7 ]
      in
      check Alcotest.int (Vir.Target.name target) 16 (Spc_run.ret_i32 r))

let test_e2e_while_break () =
  let src =
    "export int collatz_capped(uniform int start, uniform int cap) { \
     uniform int x = start; uniform int steps = 0; while (true) { if (x \
     == 1) { break; } if (steps >= cap) { break; } if (x % 2 == 0) { x = \
     x / 2; } else { x = 3 * x + 1; } steps = steps + 1; } return steps; \
     }"
  in
  both_targets (fun target ->
      let r =
        Spc_run.run ~target ~fn:"collatz_capped" src
          [ Spc_run.Int 6; Spc_run.Int 100 ]
      in
      check Alcotest.int "collatz(6)" 8 (Spc_run.ret_i32 r);
      let r =
        Spc_run.run ~target ~fn:"collatz_capped" src
          [ Spc_run.Int 27; Spc_run.Int 5 ]
      in
      check Alcotest.int "capped" 5 (Spc_run.ret_i32 r))

let test_e2e_break_in_foreach_inner_loop () =
  (* a uniform loop with break INSIDE a foreach body *)
  let src =
    "export void count_below(uniform int limit[], uniform int out[], \
     uniform int n, uniform int m) { foreach (i = 0 ... n) { int c = 0; \
     for (uniform int j = 0; j < m; j += 1) { if (j >= 4) { break; } c = \
     c + 1; } out[i] = c; } }"
  in
  both_targets (fun target ->
      let n = 11 in
      let r =
        Spc_run.run ~target ~fn:"count_below" src
          [ Spc_run.Arr_i32 (Array.make n 0);
            Spc_run.Arr_i32 (Array.make n 0); Spc_run.Int n; Spc_run.Int 9 ]
      in
      match r.Spc_run.arrays_i32 with
      | [ _; out ] ->
        check Alcotest.(array int) (Vir.Target.name target)
          (Array.make n 4) out
      | _ -> Alcotest.fail "arrays")

let test_typecheck_break_restrictions () =
  expect_type_error "void f() { break; }" "uniform while/for";
  expect_type_error
    "void f(uniform int n) { foreach (i = 0 ... n) { break; } }"
    "uniform while/for";
  expect_type_error
    "void f(uniform int n) { while (n > 0) { break; n = n - 1; } }"
    "last statement";
  expect_type_error
    "void f(uniform int a[], uniform int n) { while (n > 0) { foreach (i \
     = 0 ... n) { if (i > 2) { continue; } } n = n - 1; } }"
    "varying mask"

(* ---------------- Codegen: structure ---------------- *)

let vcopy_src =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int \
   n) { foreach (i = 0 ... n) { a2[i] = a1[i]; } }"

let test_codegen_foreach_blocks () =
  both_targets (fun tgt ->
      let m = Driver.compile tgt vcopy_src in
      let f = Vir.Vmodule.find_func_exn m "vcopy_ispc" in
      let labels = List.map (fun b -> b.Vir.Block.label) f.Vir.Func.blocks in
      let has prefix =
        List.exists
          (fun l ->
            String.length l >= String.length prefix
            && String.sub l 0 (String.length prefix) = prefix)
          labels
      in
      Alcotest.(check bool) "allocas entry" true (List.hd labels = "allocas");
      Alcotest.(check bool) "lr.ph block" true (has "foreach_full_body.lr.ph");
      Alcotest.(check bool) "full body block" true (has "foreach_full_body");
      Alcotest.(check bool) "partial_inner_all_outer" true
        (has "partial_inner_all_outer");
      Alcotest.(check bool) "partial_inner_only" true
        (has "partial_inner_only");
      Alcotest.(check bool) "foreach_reset" true (has "foreach_reset"))

let test_codegen_foreach_meta () =
  both_targets (fun tgt ->
      let m = Driver.compile tgt vcopy_src in
      let f = Vir.Vmodule.find_func_exn m "vcopy_ispc" in
      match f.Vir.Func.foreach_meta with
      | [ meta ] ->
        check Alcotest.int "vl" (Vir.Target.vl tgt) meta.Vir.Func.fm_vl;
        Alcotest.(check bool) "full body label" true
          (String.length meta.Vir.Func.fm_full_body >= 17);
        (* the recorded registers must exist with type i32 *)
        (match Vir.Func.reg_ty f meta.Vir.Func.fm_new_counter with
        | Some t -> check Alcotest.string "new_counter ty" "i32" (Vir.Vtype.to_string t)
        | None -> Alcotest.fail "new_counter register missing");
        (match Vir.Func.reg_ty f meta.Vir.Func.fm_aligned_end with
        | Some t -> check Alcotest.string "aligned_end ty" "i32" (Vir.Vtype.to_string t)
        | None -> Alcotest.fail "aligned_end register missing")
      | l -> Alcotest.failf "expected 1 foreach_meta, got %d" (List.length l))

let test_codegen_nextras_shape () =
  (* The entry block computes nextras = srem n, Vl and
     aligned_end = sub n, nextras — the invariant source of §III-A. *)
  both_targets (fun tgt ->
      let m = Driver.compile tgt vcopy_src in
      let f = Vir.Vmodule.find_func_exn m "vcopy_ispc" in
      let entry = Vir.Func.entry f in
      let srems =
        List.filter
          (fun (i : Vir.Instr.t) ->
            match i.Vir.Instr.op with
            | Vir.Instr.Ibinop (Vir.Instr.Srem, _, Vir.Instr.Imm c) ->
              Vir.Const.equal c (Vir.Const.i32 (Vir.Target.vl tgt))
            | _ -> false)
          entry.Vir.Block.instrs
      in
      check Alcotest.int "one srem by Vl" 1 (List.length srems))

let test_codegen_masked_intrinsics_in_partial () =
  both_targets (fun tgt ->
      let m = Driver.compile tgt vcopy_src in
      let s = Vir.Pp.module_to_string m in
      let expect_load = Vir.Intrinsics.maskload_name tgt Vir.Vtype.I32 in
      let expect_store = Vir.Intrinsics.maskstore_name tgt Vir.Vtype.I32 in
      Alcotest.(check bool) ("maskload used " ^ Vir.Target.name tgt) true
        (Astring_contains.contains s expect_load);
      Alcotest.(check bool) ("maskstore used " ^ Vir.Target.name tgt) true
        (Astring_contains.contains s expect_store))

let test_codegen_verified () =
  (* Driver.compile runs the verifier; also check a program that uses
     every statement form. *)
  both_targets (fun tgt ->
      ignore
        (Driver.compile tgt
           "float kitchen(uniform float a[], uniform int n) {\n\
            varying float acc = 0.0;\n\
            uniform int outer = 0;\n\
            while (outer < 2) {\n\
            foreach (i = 0 ... n) {\n\
            float x = a[i];\n\
            if (x > 0.5) { acc += x * 2.0; } else { acc += x; }\n\
            }\n\
            outer = outer + 1;\n\
            }\n\
            for (uniform int k = 0; k < 3; k += 1) { outer = outer + k; }\n\
            return reduce_add(acc) + (float) outer;\n\
            }"))

(* ---------------- Codegen: end-to-end semantics ---------------- *)

let test_e2e_vcopy () =
  both_targets (fun target ->
      (* n chosen to exercise both the full body and the partial block *)
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i * 3 - 7) in
          let r =
            Spc_run.run ~target ~fn:"vcopy_ispc" vcopy_src
              [ Spc_run.Arr_i32 input; Spc_run.Arr_i32 (Array.make n 0);
                Spc_run.Int n ]
          in
          match r.Spc_run.arrays_i32 with
          | [ _; out ] ->
            check Alcotest.(array int)
              (Printf.sprintf "%s n=%d" (Vir.Target.name target) n)
              input out
          | _ -> Alcotest.fail "arrays")
        [ 0; 1; 7; 8; 16; 19 ])

let test_e2e_saxpy () =
  let src =
    "export void saxpy(uniform float x[], uniform float y[], uniform \
     float a, uniform int n) { foreach (i = 0 ... n) { y[i] = a * x[i] + \
     y[i]; } }"
  in
  both_targets (fun target ->
      let n = 13 in
      let x = Array.init n (fun i -> float_of_int i) in
      let y = Array.make n 1.0 in
      let r =
        Spc_run.run ~target ~fn:"saxpy" src
          [ Spc_run.Arr_f32 x; Spc_run.Arr_f32 y; Spc_run.Float 2.0;
            Spc_run.Int n ]
      in
      match r.Spc_run.arrays_f32 with
      | [ _; out ] ->
        Array.iteri
          (fun i v ->
            check (Alcotest.float 1e-6)
              (Printf.sprintf "y[%d]" i)
              ((2.0 *. float_of_int i) +. 1.0)
              v)
          out
      | _ -> Alcotest.fail "arrays")

let test_e2e_dot_product () =
  let src =
    "export float dot(uniform float a[], uniform float b[], uniform int \
     n) { varying float partial = 0.0; foreach (i = 0 ... n) { partial += \
     a[i] * b[i]; } return reduce_add(partial); }"
  in
  both_targets (fun target ->
      List.iter
        (fun n ->
          let a = Array.init n (fun i -> float_of_int (i + 1)) in
          let b = Array.make n 2.0 in
          let expected = 2.0 *. float_of_int (n * (n + 1) / 2) in
          let r =
            Spc_run.run ~target ~fn:"dot" src
              [ Spc_run.Arr_f32 a; Spc_run.Arr_f32 b; Spc_run.Int n ]
          in
          check (Alcotest.float 1e-3)
            (Printf.sprintf "%s dot n=%d" (Vir.Target.name target) n)
            expected (Spc_run.ret_f32 r))
        [ 1; 4; 8; 9; 31 ])

let test_e2e_varying_if () =
  let src =
    "export void clamp_neg(uniform float a[], uniform int n) { foreach (i \
     = 0 ... n) { float x = a[i]; if (x < 0.0) { x = 0.0; } a[i] = x; } }"
  in
  both_targets (fun target ->
      let n = 11 in
      let input = Array.init n (fun i -> float_of_int (i - 5)) in
      let r =
        Spc_run.run ~target ~fn:"clamp_neg" src
          [ Spc_run.Arr_f32 input; Spc_run.Int n ]
      in
      match r.Spc_run.arrays_f32 with
      | [ out ] ->
        Array.iteri
          (fun i v ->
            check (Alcotest.float 0.0)
              (Printf.sprintf "a[%d]" i)
              (max 0.0 (float_of_int (i - 5)))
              v)
          out
      | _ -> Alcotest.fail "arrays")

let test_e2e_varying_if_else_nested () =
  let src =
    "export void tri(uniform int a[], uniform int n) { foreach (i = 0 ... \
     n) { int x = a[i]; int y = 0; if (x > 0) { if (x > 10) { y = 2; } \
     else { y = 1; } } else { y = -1; } a[i] = y; } }"
  in
  both_targets (fun target ->
      let n = 9 in
      let input = [| -3; 0; 1; 5; 10; 11; 20; -1; 7 |] in
      let expected = [| -1; -1; 1; 1; 1; 2; 2; -1; 1 |] in
      let r =
        Spc_run.run ~target ~fn:"tri" src
          [ Spc_run.Arr_i32 (Array.copy input); Spc_run.Int n ]
      in
      match r.Spc_run.arrays_i32 with
      | [ out ] ->
        check Alcotest.(array int) (Vir.Target.name target) expected out
      | _ -> Alcotest.fail "arrays")

let test_e2e_gather () =
  let src =
    "export void permute(uniform int idx[], uniform float src[], uniform \
     float dst[], uniform int n) { foreach (i = 0 ... n) { dst[i] = \
     src[idx[i]]; } }"
  in
  both_targets (fun target ->
      let n = 10 in
      let idx = Array.init n (fun i -> (i * 3) mod n) in
      let src_arr = Array.init n (fun i -> float_of_int (100 + i)) in
      let r =
        Spc_run.run ~target ~fn:"permute" src
          [ Spc_run.Arr_i32 idx; Spc_run.Arr_f32 src_arr;
            Spc_run.Arr_f32 (Array.make n 0.0); Spc_run.Int n ]
      in
      match r.Spc_run.arrays_f32 with
      | [ _; dst ] ->
        Array.iteri
          (fun i v ->
            check (Alcotest.float 0.0)
              (Printf.sprintf "dst[%d]" i)
              (float_of_int (100 + ((i * 3) mod n)))
              v)
          dst
      | _ -> Alcotest.fail "arrays")

let test_e2e_scatter () =
  let src =
    "export void scatter(uniform int idx[], uniform int src[], uniform \
     int dst[], uniform int n) { foreach (i = 0 ... n) { dst[idx[i]] = \
     src[i]; } }"
  in
  both_targets (fun target ->
      let n = 9 in
      let idx = Array.init n (fun i -> n - 1 - i) in
      let src_arr = Array.init n (fun i -> i * 7) in
      let r =
        Spc_run.run ~target ~fn:"scatter" src
          [ Spc_run.Arr_i32 idx; Spc_run.Arr_i32 src_arr;
            Spc_run.Arr_i32 (Array.make n 0); Spc_run.Int n ]
      in
      match r.Spc_run.arrays_i32 with
      | [ _; _; dst ] ->
        check Alcotest.(array int) (Vir.Target.name target)
          (Array.init n (fun i -> (n - 1 - i) * 7))
          dst
      | _ -> Alcotest.fail "arrays")

let test_e2e_uniform_control_flow () =
  let src =
    "export int collatz_steps(uniform int start) { uniform int x = start; \
     uniform int steps = 0; while (x != 1) { if (x % 2 == 0) { x = x / 2; \
     } else { x = 3 * x + 1; } steps = steps + 1; } return steps; }"
  in
  both_targets (fun target ->
      let r = Spc_run.run ~target ~fn:"collatz_steps" src [ Spc_run.Int 6 ] in
      check Alcotest.int (Vir.Target.name target) 8 (Spc_run.ret_i32 r))

let test_e2e_for_loop () =
  let src =
    "export int sum_to(uniform int n) { uniform int s = 0; for (uniform \
     int i = 1; i <= n; i += 1) { s = s + i; } return s; }"
  in
  both_targets (fun target ->
      let r = Spc_run.run ~target ~fn:"sum_to" src [ Spc_run.Int 10 ] in
      check Alcotest.int "1+..+10" 55 (Spc_run.ret_i32 r))

let test_e2e_math_builtins () =
  let src =
    "export void m(uniform float a[], uniform int n) { foreach (i = 0 ... \
     n) { a[i] = sqrt(a[i]) + min(a[i], 2.0) + abs(0.0 - 1.0); } }"
  in
  both_targets (fun target ->
      let n = 5 in
      let input = [| 0.0; 1.0; 4.0; 9.0; 16.0 |] in
      let r =
        Spc_run.run ~target ~fn:"m" src
          [ Spc_run.Arr_f32 (Array.copy input); Spc_run.Int n ]
      in
      match r.Spc_run.arrays_f32 with
      | [ out ] ->
        Array.iteri
          (fun i v ->
            check (Alcotest.float 1e-5)
              (Printf.sprintf "a[%d]" i)
              (sqrt input.(i) +. min input.(i) 2.0 +. 1.0)
              v)
          out
      | _ -> Alcotest.fail "arrays")

let test_e2e_function_calls () =
  let src =
    "float helper(uniform float x) { return x * x; }\n\
     export float sum_squares(uniform float a[], uniform int n) { uniform \
     float s = 0.0; for (uniform int i = 0; i < n; i += 1) { s = s + \
     helper(a[i]); } return s; }"
  in
  both_targets (fun target ->
      let a = [| 1.0; 2.0; 3.0 |] in
      let r =
        Spc_run.run ~target ~fn:"sum_squares" src
          [ Spc_run.Arr_f32 a; Spc_run.Int 3 ]
      in
      check (Alcotest.float 1e-5) "1+4+9" 14.0 (Spc_run.ret_f32 r))

let test_e2e_select () =
  let src =
    "export void s(uniform int a[], uniform int n) { foreach (i = 0 ... \
     n) { a[i] = select(a[i] > 0, a[i], 0 - a[i]); } }"
  in
  both_targets (fun target ->
      let n = 7 in
      let input = [| -3; 5; -1; 0; 2; -8; 9 |] in
      let r =
        Spc_run.run ~target ~fn:"s" src
          [ Spc_run.Arr_i32 (Array.copy input); Spc_run.Int n ]
      in
      match r.Spc_run.arrays_i32 with
      | [ out ] ->
        check Alcotest.(array int) "abs via select"
          (Array.map abs input) out
      | _ -> Alcotest.fail "arrays")

let test_e2e_foreach_nonzero_start () =
  let src =
    "export void fill(uniform int a[], uniform int lo, uniform int hi) { \
     foreach (i = lo ... hi) { a[i] = i; } }"
  in
  both_targets (fun target ->
      let n = 20 in
      let r =
        Spc_run.run ~target ~fn:"fill" src
          [ Spc_run.Arr_i32 (Array.make n (-1)); Spc_run.Int 3;
            Spc_run.Int 17 ]
      in
      match r.Spc_run.arrays_i32 with
      | [ out ] ->
        Array.iteri
          (fun i v ->
            check Alcotest.int
              (Printf.sprintf "a[%d]" i)
              (if i >= 3 && i < 17 then i else -1)
              v)
          out
      | _ -> Alcotest.fail "arrays")

(* Masked integer division must not trap on lanes that are off. *)
let test_e2e_masked_division_guard () =
  let src =
    "export void divide(uniform int a[], uniform int b[], uniform int \
     n) { foreach (i = 0 ... n) { if (b[i] != 0) { a[i] = a[i] / b[i]; } \
     } }"
  in
  both_targets (fun target ->
      let n = 8 in
      let a = [| 10; 20; 30; 40; 50; 60; 70; 80 |] in
      let b = [| 2; 0; 3; 0; 5; 0; 7; 0 |] in
      let r =
        Spc_run.run ~target ~fn:"divide" src
          [ Spc_run.Arr_i32 (Array.copy a); Spc_run.Arr_i32 b; Spc_run.Int n ]
      in
      match r.Spc_run.arrays_i32 with
      | [ out; _ ] ->
        check Alcotest.(array int) "guarded division"
          [| 5; 20; 10; 40; 10; 60; 10; 80 |]
          out
      | _ -> Alcotest.fail "arrays")

(* AVX and SSE must produce identical results on the same program. *)
let prop_targets_agree =
  QCheck.Test.make ~name:"AVX and SSE agree on saxpy" ~count:50
    QCheck.(pair (int_range 0 40) (list_of_size (QCheck.Gen.return 40) (float_range (-100.) 100.)))
    (fun (n, xs) ->
      let src =
        "export void saxpy(uniform float x[], uniform float y[], uniform \
         float a, uniform int n) { foreach (i = 0 ... n) { y[i] = a * \
         x[i] + y[i]; } }"
      in
      let xs = Array.of_list xs in
      let run target =
        let r =
          Spc_run.run ~target ~fn:"saxpy" src
            [ Spc_run.Arr_f32 (Array.copy xs);
              Spc_run.Arr_f32 (Array.make 40 1.0); Spc_run.Float 3.0;
              Spc_run.Int n ]
        in
        List.nth r.Spc_run.arrays_f32 1
      in
      run Vir.Target.Avx = run Vir.Target.Sse)

let prop_foreach_matches_scalar_loop =
  QCheck.Test.make ~name:"foreach sum matches OCaml reference" ~count:50
    QCheck.(int_range 0 50)
    (fun n ->
      let src =
        "export float vsum(uniform float a[], uniform int n) { varying \
         float s = 0.0; foreach (i = 0 ... n) { s += a[i]; } return \
         reduce_add(s); }"
      in
      let a =
        Array.init 50 (fun i ->
            Interp.Bits.round_float Vir.Vtype.F32 (float_of_int (i mod 7) *. 0.5))
      in
      let r =
        Spc_run.run ~target:Vir.Target.Avx ~fn:"vsum" src
          [ Spc_run.Arr_f32 a; Spc_run.Int n ]
      in
      let expected = ref 0.0 in
      for i = 0 to n - 1 do
        expected := !expected +. a.(i)
      done;
      abs_float (Spc_run.ret_f32 r -. !expected) < 1e-3)

let () =
  Alcotest.run "minispc"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "function shape" `Quick test_parse_function_shape;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "compound assignment" `Quick
            test_parse_compound_assign;
          Alcotest.test_case "cast vs paren" `Quick test_parse_cast_vs_paren;
          Alcotest.test_case "else-if chain" `Quick test_parse_if_else_chain;
          Alcotest.test_case "rejects bad input" `Quick test_parse_errors;
          Alcotest.test_case "assert statement" `Quick test_parse_assert;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts vcopy" `Quick test_typecheck_accepts_vcopy;
          Alcotest.test_case "rejects mixed arithmetic" `Quick
            test_typecheck_rejects_mixed_arith;
          Alcotest.test_case "rejects varying->uniform" `Quick
            test_typecheck_rejects_varying_to_uniform;
          Alcotest.test_case "rejects varying while" `Quick
            test_typecheck_rejects_varying_while;
          Alcotest.test_case "rejects nested foreach" `Quick
            test_typecheck_rejects_nested_foreach;
          Alcotest.test_case "rejects uniform assign in foreach" `Quick
            test_typecheck_rejects_uniform_assign_in_foreach;
          Alcotest.test_case "rejects loop under varying mask" `Quick
            test_typecheck_rejects_loop_under_varying_mask;
          Alcotest.test_case "rejects early return" `Quick
            test_typecheck_rejects_return_mid_body;
          Alcotest.test_case "rejects unknown variable" `Quick
            test_typecheck_rejects_unknown_var;
          Alcotest.test_case "rejects bad calls" `Quick
            test_typecheck_rejects_bad_call;
          Alcotest.test_case "reduce returns uniform" `Quick
            test_typecheck_reduce_type;
          Alcotest.test_case "rejects array as scalar" `Quick
            test_typecheck_rejects_array_as_scalar;
          Alcotest.test_case "rejects duplicate functions" `Quick
            test_typecheck_rejects_duplicate_funcs;
          Alcotest.test_case "rejects varying store via uniform index" `Quick
            test_typecheck_rejects_varying_store_uniform_index;
          Alcotest.test_case "assert typing" `Quick test_typecheck_assert;
          Alcotest.test_case "break/continue restrictions" `Quick
            test_typecheck_break_restrictions;
        ] );
      ( "codegen-structure",
        [
          Alcotest.test_case "foreach block names (Fig 7)" `Quick
            test_codegen_foreach_blocks;
          Alcotest.test_case "foreach metadata" `Quick test_codegen_foreach_meta;
          Alcotest.test_case "nextras/aligned_end shape" `Quick
            test_codegen_nextras_shape;
          Alcotest.test_case "masked intrinsics in partial block" `Quick
            test_codegen_masked_intrinsics_in_partial;
          Alcotest.test_case "kitchen sink verifies" `Quick
            test_codegen_verified;
          Alcotest.test_case "assert lowering" `Quick test_e2e_assert_codegen;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "vcopy" `Quick test_e2e_vcopy;
          Alcotest.test_case "saxpy" `Quick test_e2e_saxpy;
          Alcotest.test_case "dot product" `Quick test_e2e_dot_product;
          Alcotest.test_case "varying if" `Quick test_e2e_varying_if;
          Alcotest.test_case "nested varying if/else" `Quick
            test_e2e_varying_if_else_nested;
          Alcotest.test_case "gather" `Quick test_e2e_gather;
          Alcotest.test_case "scatter" `Quick test_e2e_scatter;
          Alcotest.test_case "uniform control flow" `Quick
            test_e2e_uniform_control_flow;
          Alcotest.test_case "for loop" `Quick test_e2e_for_loop;
          Alcotest.test_case "math builtins" `Quick test_e2e_math_builtins;
          Alcotest.test_case "function calls" `Quick test_e2e_function_calls;
          Alcotest.test_case "select" `Quick test_e2e_select;
          Alcotest.test_case "foreach nonzero start" `Quick
            test_e2e_foreach_nonzero_start;
          Alcotest.test_case "masked division guard" `Quick
            test_e2e_masked_division_guard;
          Alcotest.test_case "break in for" `Quick test_e2e_break;
          Alcotest.test_case "continue in for" `Quick test_e2e_continue;
          Alcotest.test_case "break in while(true)" `Quick
            test_e2e_while_break;
          Alcotest.test_case "break inside foreach inner loop" `Quick
            test_e2e_break_in_foreach_inner_loop;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_targets_agree; prop_foreach_matches_scalar_loop ] );
    ]

(* Unit and property tests for the VIR substrate: types, constants,
   instructions, builder, verifier, printer, intrinsics table. *)

open Vir

let check = Alcotest.check
let ty_testable = Alcotest.testable Vtype.pp Vtype.equal

(* ---------------- Vtype ---------------- *)

let test_lanes () =
  check Alcotest.int "scalar has 1 lane" 1 (Vtype.lanes Vtype.f32);
  check Alcotest.int "vector lanes" 8 (Vtype.lanes (Vtype.vector 8 Vtype.F32));
  check Alcotest.int "void has 0 lanes" 0 (Vtype.lanes Vtype.Void)

let test_with_lanes () =
  check ty_testable "widen scalar" (Vtype.vector 4 Vtype.I32)
    (Vtype.with_lanes 4 Vtype.i32);
  check ty_testable "narrow to scalar" Vtype.i32
    (Vtype.with_lanes 1 (Vtype.vector 8 Vtype.I32));
  check ty_testable "rewiden" (Vtype.vector 8 Vtype.F64)
    (Vtype.with_lanes 8 (Vtype.vector 4 Vtype.F64))

let test_sizes () =
  check Alcotest.int "i1 bits" 1 (Vtype.scalar_bits Vtype.I1);
  check Alcotest.int "f32 bits" 32 (Vtype.scalar_bits Vtype.F32);
  check Alcotest.int "ptr bytes" 8 (Vtype.scalar_bytes Vtype.Ptr);
  check Alcotest.int "<8 x f32> bytes" 32
    (Vtype.size_bytes (Vtype.vector 8 Vtype.F32));
  check Alcotest.int "void bytes" 0 (Vtype.size_bytes Vtype.Void)

let test_predicates () =
  Alcotest.(check bool) "f32 is float" true (Vtype.is_float Vtype.f32);
  Alcotest.(check bool) "<4 x i32> is int" true
    (Vtype.is_int (Vtype.vector 4 Vtype.I32));
  Alcotest.(check bool) "ptr is not int" false (Vtype.is_int Vtype.ptr);
  Alcotest.(check bool) "ptr is ptr" true (Vtype.is_ptr Vtype.ptr);
  Alcotest.(check bool) "vector detected" true
    (Vtype.is_vector (Vtype.vector 2 Vtype.I64))

let test_to_string () =
  check Alcotest.string "vector syntax" "<8 x float>"
    (Vtype.to_string (Vtype.vector 8 Vtype.F32));
  check Alcotest.string "scalar" "i32" (Vtype.to_string Vtype.i32);
  check Alcotest.string "void" "void" (Vtype.to_string Vtype.Void)

(* ---------------- Const ---------------- *)

let test_const_ty () =
  check ty_testable "i32 const" Vtype.i32 (Const.ty (Const.i32 42));
  check ty_testable "splat" (Vtype.vector 4 Vtype.F32)
    (Const.ty (Const.splat 4 (Const.f32 1.0)));
  check ty_testable "iota" (Vtype.vector 8 Vtype.I32)
    (Const.ty (Const.iota Vtype.I32 8))

let test_const_f32_rounding () =
  match Const.f32 1.1 with
  | Const.Cfloat (_, x) ->
    Alcotest.(check bool) "pre-rounded to f32" true
      (Int32.float_of_bits (Int32.bits_of_float x) = x && x <> 1.1)
  | _ -> Alcotest.fail "expected Cfloat"

let test_const_equal () =
  Alcotest.(check bool) "equal splats" true
    (Const.equal (Const.splat 4 (Const.i32 7)) (Const.splat 4 (Const.i32 7)));
  Alcotest.(check bool) "different lanes" false
    (Const.equal (Const.splat 4 (Const.i32 7)) (Const.splat 8 (Const.i32 7)));
  Alcotest.(check bool) "int vs float" false
    (Const.equal (Const.i32 0) (Const.f32 0.0))

let test_const_zero () =
  check ty_testable "zero of vector type" (Vtype.vector 4 Vtype.F64)
    (Const.ty (Const.zero_of_ty (Vtype.vector 4 Vtype.F64)))

(* ---------------- Instr ---------------- *)

let dummy_add =
  {
    Instr.id = 10;
    name = "t10";
    ty = Vtype.i32;
    op =
      Instr.Ibinop
        (Instr.Add, Instr.Reg (1, Vtype.i32), Instr.Reg (2, Vtype.i32));
  }

let test_instr_uses () =
  check Alcotest.(list int) "uses" [ 1; 2 ] (Instr.uses dummy_add);
  let st =
    {
      Instr.id = -1;
      name = "";
      ty = Vtype.Void;
      op = Instr.Store (Instr.Reg (3, Vtype.f32), Instr.Reg (4, Vtype.ptr));
    }
  in
  check Alcotest.(list int) "store uses" [ 3; 4 ] (Instr.uses st);
  Alcotest.(check bool) "store defines nothing" false (Instr.defines st)

let test_instr_replace () =
  let replaced =
    Instr.replace_reg ~reg:2 ~by:(Instr.Imm (Const.i32 5)) dummy_add
  in
  check Alcotest.(list int) "reg 2 replaced" [ 1 ] (Instr.uses replaced)

let test_instr_classify () =
  Alcotest.(check bool) "condbr is control flow" true
    (Instr.is_control_flow
       {
         Instr.id = -1;
         name = "";
         ty = Vtype.Void;
         op = Instr.Condbr (Instr.Imm (Const.i1 true), "a", "b");
       });
  Alcotest.(check bool) "br is not a control site source" false
    (Instr.is_control_flow
       { Instr.id = -1; name = ""; ty = Vtype.Void; op = Instr.Br "a" });
  Alcotest.(check bool) "vector result means vector instr" true
    (Instr.is_vector_instr
       {
         Instr.id = 0;
         name = "v";
         ty = Vtype.vector 4 Vtype.F32;
         op = Instr.Load (Instr.Reg (1, Vtype.ptr));
       });
  Alcotest.(check bool) "vector operand means vector instr" true
    (Instr.is_vector_instr
       {
         Instr.id = 0;
         name = "v";
         ty = Vtype.f32;
         op =
           Instr.Extractelement
             ( Instr.Reg (1, Vtype.vector 4 Vtype.F32),
               Instr.Imm (Const.i32 0) );
       })

let test_successors () =
  let cb =
    {
      Instr.id = -1;
      name = "";
      ty = Vtype.Void;
      op = Instr.Condbr (Instr.Imm (Const.i1 true), "x", "y");
    }
  in
  check Alcotest.(list string) "condbr successors" [ "x"; "y" ]
    (Instr.successors cb)

(* ---------------- Builder & Verify ---------------- *)

let test_builder_scale_add_verifies () =
  let m = Ir_samples.scale_add_module () in
  check Alcotest.(list string) "no verifier errors" []
    (List.map Verify.error_to_string (Verify.verify_module m))

let test_builder_vadd8_verifies () =
  let m = Ir_samples.vadd8_module () in
  check Alcotest.(list string) "no verifier errors" []
    (List.map Verify.error_to_string (Verify.verify_module m))

let test_builder_masked_copy_verifies () =
  List.iter
    (fun tgt ->
      let m = Ir_samples.masked_copy_module tgt in
      check Alcotest.(list string)
        ("no verifier errors " ^ Target.name tgt)
        []
        (List.map Verify.error_to_string (Verify.verify_module m)))
    Target.all

let test_builder_fig3_verifies () =
  let m, _, _, _, _ = Ir_samples.fig3_foo_module () in
  check Alcotest.(list string) "no verifier errors" []
    (List.map Verify.error_to_string (Verify.verify_module m))

let test_broadcast_shape () =
  (* Broadcast must lower to insertelement + shufflevector (Fig 9). *)
  let m = Vmodule.create "bc" in
  let b =
    Builder.define m ~name:"bc" ~params:[ ("x", Vtype.f32) ]
      ~ret_ty:(Vtype.vector 8 Vtype.F32)
  in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let v = Builder.broadcast b (Builder.param b "x") 8 in
  Builder.ret b (Some v);
  Verify.check_module m;
  let f = Vmodule.find_func_exn m "bc" in
  let ops =
    List.filter_map
      (fun (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Insertelement _ -> Some "insertelement"
        | Instr.Shufflevector _ -> Some "shufflevector"
        | _ -> None)
      (Func.all_instrs f)
  in
  check Alcotest.(list string) "ISPC broadcast shape"
    [ "insertelement"; "shufflevector" ] ops

let expect_errors m expected_substring =
  let errs = Verify.verify_module m in
  let all = String.concat "\n" (List.map Verify.error_to_string errs) in
  Alcotest.(check bool)
    (Printf.sprintf "expected error mentioning %S, got: %s" expected_substring
       all)
    true
    (errs <> [] && Astring_contains.contains all expected_substring)

let test_verify_rejects_double_def () =
  let m = Vmodule.create "bad" in
  let b = Builder.define m ~name:"bad" ~params:[] ~ret_ty:Vtype.i32 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let x = Builder.add b (Ir_samples.imm_i32 1) (Ir_samples.imm_i32 2) in
  let r = Ir_samples.reg_of x in
  entry.Block.instrs <-
    entry.Block.instrs
    @ [
        {
          Instr.id = r;
          name = "dup";
          ty = Vtype.i32;
          op = Instr.Ibinop (Instr.Add, x, x);
        };
      ];
  Builder.ret b (Some x);
  expect_errors m "defined twice"

let test_verify_rejects_type_mismatch () =
  let m = Vmodule.create "bad" in
  let b = Builder.define m ~name:"bad" ~params:[] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  ignore
    (Builder.emit b Vtype.i32
       (Instr.Ibinop (Instr.Add, Ir_samples.imm_i32 1, Ir_samples.imm_f32 1.0)));
  Builder.ret b None;
  expect_errors m "mismatch"

let test_verify_rejects_float_binop_on_int () =
  let m = Vmodule.create "bad" in
  let b = Builder.define m ~name:"bad" ~params:[] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  ignore
    (Builder.emit b Vtype.i32
       (Instr.Fbinop (Instr.Fadd, Ir_samples.imm_i32 1, Ir_samples.imm_i32 2)));
  Builder.ret b None;
  expect_errors m "float binop on non-float"

let test_verify_rejects_unknown_label () =
  let m = Vmodule.create "bad" in
  let b = Builder.define m ~name:"bad" ~params:[] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  Builder.br b "nowhere";
  expect_errors m "unknown label"

let test_verify_rejects_missing_terminator () =
  let m = Vmodule.create "bad" in
  let b = Builder.define m ~name:"bad" ~params:[] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  ignore (Builder.add b (Ir_samples.imm_i32 1) (Ir_samples.imm_i32 2));
  expect_errors m "terminator"

let test_verify_rejects_use_before_def () =
  let m = Vmodule.create "bad" in
  let b = Builder.define m ~name:"bad" ~params:[] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  ignore
    (Builder.emit b Vtype.i32
       (Instr.Ibinop
          (Instr.Add, Instr.Reg (99, Vtype.i32), Ir_samples.imm_i32 1)));
  Builder.ret b None;
  expect_errors m "undefined register"

let test_verify_rejects_dominance_violation () =
  let m = Vmodule.create "bad" in
  let b =
    Builder.define m ~name:"bad"
      ~params:[ ("c", Vtype.bool_ty) ]
      ~ret_ty:Vtype.Void
  in
  let entry = Builder.new_block b "entry" in
  let left = Builder.new_block b "left" in
  let right = Builder.new_block b "right" in
  let join = Builder.new_block b "join" in
  ignore (entry, left, right, join);
  Builder.position_at_end b entry;
  Builder.condbr b (Builder.param b "c") "left" "right";
  Builder.position_at_end b left;
  let x = Builder.add b (Ir_samples.imm_i32 1) (Ir_samples.imm_i32 2) in
  Builder.br b "join";
  Builder.position_at_end b right;
  Builder.br b "join";
  Builder.position_at_end b join;
  ignore (Builder.add b x (Ir_samples.imm_i32 1));
  Builder.ret b None;
  expect_errors m "not dominated"

let test_verify_rejects_bad_phi_preds () =
  let m = Vmodule.create "bad" in
  let b = Builder.define m ~name:"bad" ~params:[] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  let next = Builder.new_block b "next" in
  ignore (entry, next);
  Builder.position_at_end b entry;
  Builder.br b "next";
  Builder.position_at_end b next;
  ignore
    (Builder.phi b Vtype.i32
       [ ("entry", Ir_samples.imm_i32 0); ("ghost", Ir_samples.imm_i32 1) ]);
  Builder.ret b None;
  expect_errors m "phi"

let test_verify_rejects_condbr_on_vector () =
  let m = Vmodule.create "bad" in
  let b =
    Builder.define m ~name:"bad"
      ~params:[ ("c", Vtype.vector 4 Vtype.I1) ]
      ~ret_ty:Vtype.Void
  in
  let entry = Builder.new_block b "entry" in
  let t = Builder.new_block b "t" in
  ignore (entry, t);
  Builder.position_at_end b entry;
  Builder.condbr b (Builder.param b "c") "t" "t";
  Builder.position_at_end b t;
  Builder.ret b None;
  expect_errors m "scalar i1"

let test_verify_rejects_call_arity () =
  let m = Ir_samples.vadd8_module () in
  let b = Builder.define m ~name:"caller" ~params:[] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  ignore (entry);
  ignore (Builder.call b ~ret:Vtype.Void "vadd8" [ Ir_samples.imm_i32 0 ]);
  Builder.ret b None;
  expect_errors m "arity"

(* ---------------- Pp ---------------- *)

let test_pp_function () =
  let m = Ir_samples.vadd8_module () in
  let s = Pp.module_to_string m in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "printout contains %S" needle)
        true
        (Astring_contains.contains s needle))
    [
      "define void @vadd8";
      "load <8 x float>";
      "fadd <8 x float>";
      "store";
      "ret void";
      "entry:";
    ]

let test_pp_masked_intrinsics () =
  let m = Ir_samples.masked_copy_module Target.Avx in
  let s = Pp.module_to_string m in
  Alcotest.(check bool) "maskload printed" true
    (Astring_contains.contains s "llvm.x86.avx.maskload.ps.256");
  Alcotest.(check bool) "maskstore printed" true
    (Astring_contains.contains s "llvm.x86.avx.maskstore.ps.256")

(* ---------------- Intrinsics ---------------- *)

let test_intrinsics_masked () =
  Alcotest.(check bool) "avx maskload is masked" true
    (Intrinsics.is_masked "llvm.x86.avx.maskload.ps.256");
  Alcotest.(check bool) "sqrt not masked" false
    (Intrinsics.is_masked "llvm.sqrt.v8f32");
  check
    Alcotest.(option int)
    "mask operand index" (Some 1)
    (Intrinsics.mask_operand "llvm.x86.avx.maskstore.ps.256");
  check
    Alcotest.(option int)
    "value operand index" (Some 2)
    (Intrinsics.value_operand "llvm.x86.avx.maskstore.ps.256")

let test_intrinsics_prefix_lookup () =
  Alcotest.(check bool) "suffixed sqrt resolves" true
    (Option.is_some (Intrinsics.lookup "llvm.sqrt.v8f32"));
  Alcotest.(check bool) "exact sqrt resolves" true
    (Option.is_some (Intrinsics.lookup "llvm.sqrt"));
  Alcotest.(check bool) "sqrtx does not resolve" false
    (Option.is_some (Intrinsics.lookup "llvm.sqrtx"));
  Alcotest.(check bool) "unknown" false
    (Option.is_some (Intrinsics.lookup "llvm.x86.avx2.gather"))

let test_intrinsics_names_by_target () =
  check Alcotest.string "avx f32 store" "llvm.x86.avx.maskstore.ps.256"
    (Intrinsics.maskstore_name Target.Avx Vtype.F32);
  check Alcotest.string "sse f32 load" "llvm.x86.avx.maskload.ps"
    (Intrinsics.maskload_name Target.Sse Vtype.F32);
  check Alcotest.string "avx i32 load" "llvm.x86.avx.maskload.d.256"
    (Intrinsics.maskload_name Target.Avx Vtype.I32)

let test_target () =
  check Alcotest.int "avx vl" 8 (Target.vl Target.Avx);
  check Alcotest.int "sse vl" 4 (Target.vl Target.Sse);
  check Alcotest.int "avx f64 lanes" 4 (Target.vl_for Target.Avx Vtype.F64);
  check Alcotest.int "sse i64 lanes" 2 (Target.vl_for Target.Sse Vtype.I64);
  check
    Alcotest.(option string)
    "parse avx" (Some "AVX")
    (Option.map Target.name (Target.of_string "avx"));
  check
    Alcotest.(option string)
    "parse junk" None
    (Option.map Target.name (Target.of_string "mmx"))

(* ---------------- qcheck properties ---------------- *)

let scalar_gen =
  QCheck.Gen.oneofl
    [ Vtype.I1; Vtype.I8; Vtype.I32; Vtype.I64; Vtype.F32; Vtype.F64; Vtype.Ptr ]

let ty_gen =
  QCheck.Gen.(
    oneof
      [
        map Vtype.scalar scalar_gen;
        map2 (fun n s -> Vtype.vector n s) (oneofl [ 2; 4; 8; 16 ]) scalar_gen;
      ])

let prop_with_lanes_roundtrip =
  QCheck.Test.make ~name:"with_lanes preserves element scalar" ~count:200
    (QCheck.make ty_gen) (fun t ->
      let t' = Vtype.with_lanes 4 t in
      Vtype.elem t' = Vtype.elem t && Vtype.lanes t' = 4)

let prop_size_lanes =
  QCheck.Test.make ~name:"size = lanes * elem size" ~count:200
    (QCheck.make ty_gen) (fun t ->
      Vtype.size_bytes t = Vtype.lanes t * Vtype.scalar_bytes (Vtype.elem t))

let prop_const_splat_ty =
  QCheck.Test.make ~name:"splat type has requested lanes" ~count:200
    QCheck.(pair (int_range 2 16) int)
    (fun (n, x) -> Vtype.lanes (Const.ty (Const.splat n (Const.i32 x))) = n)

let () =
  Alcotest.run "vir"
    [
      ( "vtype",
        [
          Alcotest.test_case "lanes" `Quick test_lanes;
          Alcotest.test_case "with_lanes" `Quick test_with_lanes;
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "const",
        [
          Alcotest.test_case "ty" `Quick test_const_ty;
          Alcotest.test_case "f32 rounding" `Quick test_const_f32_rounding;
          Alcotest.test_case "equal" `Quick test_const_equal;
          Alcotest.test_case "zero_of_ty" `Quick test_const_zero;
        ] );
      ( "instr",
        [
          Alcotest.test_case "uses" `Quick test_instr_uses;
          Alcotest.test_case "replace_reg" `Quick test_instr_replace;
          Alcotest.test_case "classification" `Quick test_instr_classify;
          Alcotest.test_case "successors" `Quick test_successors;
        ] );
      ( "builder+verify",
        [
          Alcotest.test_case "scale_add verifies" `Quick
            test_builder_scale_add_verifies;
          Alcotest.test_case "vadd8 verifies" `Quick
            test_builder_vadd8_verifies;
          Alcotest.test_case "masked copy verifies" `Quick
            test_builder_masked_copy_verifies;
          Alcotest.test_case "fig3 foo verifies" `Quick
            test_builder_fig3_verifies;
          Alcotest.test_case "broadcast shape" `Quick test_broadcast_shape;
          Alcotest.test_case "rejects double def" `Quick
            test_verify_rejects_double_def;
          Alcotest.test_case "rejects type mismatch" `Quick
            test_verify_rejects_type_mismatch;
          Alcotest.test_case "rejects fbinop on int" `Quick
            test_verify_rejects_float_binop_on_int;
          Alcotest.test_case "rejects unknown label" `Quick
            test_verify_rejects_unknown_label;
          Alcotest.test_case "rejects missing terminator" `Quick
            test_verify_rejects_missing_terminator;
          Alcotest.test_case "rejects use before def" `Quick
            test_verify_rejects_use_before_def;
          Alcotest.test_case "rejects dominance violation" `Quick
            test_verify_rejects_dominance_violation;
          Alcotest.test_case "rejects bad phi preds" `Quick
            test_verify_rejects_bad_phi_preds;
          Alcotest.test_case "rejects vector condbr" `Quick
            test_verify_rejects_condbr_on_vector;
          Alcotest.test_case "rejects call arity" `Quick
            test_verify_rejects_call_arity;
        ] );
      ( "pp",
        [
          Alcotest.test_case "function printing" `Quick test_pp_function;
          Alcotest.test_case "masked intrinsics printing" `Quick
            test_pp_masked_intrinsics;
        ] );
      ( "intrinsics",
        [
          Alcotest.test_case "masked classification" `Quick
            test_intrinsics_masked;
          Alcotest.test_case "prefix lookup" `Quick
            test_intrinsics_prefix_lookup;
          Alcotest.test_case "names by target" `Quick
            test_intrinsics_names_by_target;
          Alcotest.test_case "targets" `Quick test_target;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_with_lanes_roundtrip; prop_size_lanes; prop_const_splat_ty ]
      );
    ]

(* Shared IR construction helpers for the test suites. *)

open Vir

let imm_i32 n = Instr.Imm (Const.i32 n)
let imm_f32 x = Instr.Imm (Const.f32 x)
let imm_bool b = Instr.Imm (Const.i1 b)

(* @scale_add(ptr a, ptr out, i32 n, f32 s):
   for i in 0..n-1: out[i] = a[i] * s + i   (scalar loop) *)
let scale_add_module () =
  let m = Vmodule.create "scale_add" in
  let b =
    Builder.define m ~name:"scale_add"
      ~params:
        [ ("a", Vtype.ptr); ("out", Vtype.ptr); ("n", Vtype.i32);
          ("s", Vtype.f32) ]
      ~ret_ty:Vtype.Void
  in
  let entry = Builder.new_block b "entry" in
  let loop = Builder.new_block b "loop" in
  let body = Builder.new_block b "body" in
  let exit = Builder.new_block b "exit" in
  Builder.position_at_end b entry;
  Builder.br b "loop";
  Builder.position_at_end b loop;
  let i = Builder.phi b Vtype.i32 [ ("entry", imm_i32 0) ] in
  let cond = Builder.icmp b Instr.Islt i (Builder.param b "n") in
  Builder.condbr b cond "body" "exit";
  Builder.position_at_end b body;
  let addr_a = Builder.gep b (Builder.param b "a") i ~elem_bytes:4 in
  let av = Builder.load b Vtype.f32 addr_a in
  let prod = Builder.fmul b av (Builder.param b "s") in
  let fi = Builder.cast b Instr.Sitofp i Vtype.f32 in
  let sum = Builder.fadd b prod fi in
  let addr_o = Builder.gep b (Builder.param b "out") i ~elem_bytes:4 in
  Builder.store b sum addr_o;
  let inext = Builder.add b i (imm_i32 1) in
  Builder.br b "loop";
  Builder.position_at_end b loop;
  (match (i, inext) with
  | Instr.Reg (r, _), _ ->
    Builder.add_phi_incoming b r ~from:"body" ~value:inext
  | _ -> assert false);
  Builder.position_at_end b exit;
  Builder.ret b None;
  m

(* @vadd8(ptr a, ptr b, ptr out): one 8-wide vector add. *)
let vadd8_module () =
  let m = Vmodule.create "vadd8" in
  let vty = Vtype.vector 8 Vtype.F32 in
  let b =
    Builder.define m ~name:"vadd8"
      ~params:[ ("a", Vtype.ptr); ("b", Vtype.ptr); ("out", Vtype.ptr) ]
      ~ret_ty:Vtype.Void
  in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let va = Builder.load b vty (Builder.param b "a") in
  let vb = Builder.load b vty (Builder.param b "b") in
  let sum = Builder.fadd b va vb in
  Builder.store b sum (Builder.param b "out");
  Builder.ret b None;
  m

(* Masked vector copy through AVX maskload/maskstore intrinsics,
   mirroring the paper's Fig 5 example. *)
let masked_copy_module target =
  let m = Vmodule.create "masked_copy" in
  let vl = Target.vl target in
  let vty = Vtype.vector vl Vtype.F32 in
  let mty = Vtype.vector vl Vtype.I1 in
  let b =
    Builder.define m ~name:"masked_copy"
      ~params:[ ("src", Vtype.ptr); ("dst", Vtype.ptr); ("mask", mty) ]
      ~ret_ty:Vtype.Void
  in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let loaded =
    Builder.call b ~ret:vty
      (Intrinsics.maskload_name target Vtype.F32)
      [ Builder.param b "src"; Builder.param b "mask" ]
  in
  ignore
    (Builder.call b ~ret:Vtype.Void
       (Intrinsics.maskstore_name target Vtype.F32)
       [ Builder.param b "dst"; Builder.param b "mask"; loaded ]);
  Builder.ret b None;
  m

(* The paper's Fig 3 function:
     void foo(int a[], int n, int x) {
       int s = x;
       for (int i = 0; i < n; i++) { a[i] = a[i] * s; s = s + i; }
     }
   Used to validate the fault-site taxonomy: i is control+address,
   s is pure-data. Returns (module, i_reg, s_reg). *)
let fig3_foo_module () =
  let m = Vmodule.create "fig3" in
  let b =
    Builder.define m ~name:"foo"
      ~params:[ ("a", Vtype.ptr); ("n", Vtype.i32); ("x", Vtype.i32) ]
      ~ret_ty:Vtype.Void
  in
  let entry = Builder.new_block b "entry" in
  let loop = Builder.new_block b "loop" in
  let body = Builder.new_block b "body" in
  let exit = Builder.new_block b "exit" in
  Builder.position_at_end b entry;
  Builder.br b "loop";
  Builder.position_at_end b loop;
  let i = Builder.phi b ~name:"i" Vtype.i32 [ ("entry", imm_i32 0) ] in
  let s =
    Builder.phi b ~name:"s" Vtype.i32 [ ("entry", Builder.param b "x") ]
  in
  let cond = Builder.icmp b Instr.Islt i (Builder.param b "n") in
  Builder.condbr b cond "body" "exit";
  Builder.position_at_end b body;
  let addr = Builder.gep b (Builder.param b "a") i ~elem_bytes:4 in
  let av = Builder.load b Vtype.i32 addr in
  let prod = Builder.mul b av s in
  Builder.store b prod addr;
  let snext = Builder.add b s i in
  let inext = Builder.add b i (imm_i32 1) in
  Builder.br b "loop";
  Builder.position_at_end b exit;
  Builder.ret b None;
  Builder.position_at_end b loop;
  (match (i, s) with
  | Instr.Reg (ri, _), Instr.Reg (rs, _) ->
    Builder.add_phi_incoming b ri ~from:"body" ~value:inext;
    Builder.add_phi_incoming b rs ~from:"body" ~value:snext;
    (m, ri, rs, inext, snext)
  | _ -> assert false)

let reg_of = function
  | Instr.Reg (r, _) -> r
  | Instr.Imm _ -> invalid_arg "reg_of: immediate"

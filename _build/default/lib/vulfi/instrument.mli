(** The VULFI instrumentor (paper §II-D, Figs 4 and 5): splices calls to
    the runtime injection API into the IR, one per (fault target, lane),
    exactly following the clone / extract / inject / insert / redirect
    workflow of Fig 4, with execution-mask lanes threaded through for
    masked intrinsics as in Fig 5. *)

(** One static scalar fault site. *)
type site_info = {
  si_id : int;  (** static site id, as passed to the runtime *)
  si_target : Analysis.Sites.target;
  si_lane : int;  (** lane within the target's (vector) value *)
}

type t = {
  instrumented : Vir.Vmodule.t;
      (** the same module value, rewritten in place and re-verified *)
  site_table : site_info array;  (** indexed by static site id *)
}

(** [run m targets] instruments [m] in place for the given fault
    targets (normally {!Analysis.Sites.select}'s output for one
    category) and returns the site table.
    @raise Invalid_argument if the rewritten module fails verification. *)
val run : Vir.Vmodule.t -> Analysis.Sites.target list -> t

(** Number of static scalar fault sites created. *)
val static_site_count : t -> int

lib/vulfi/campaign.ml: Analysis Experiment Hashtbl Instrument List Outcome Random Stats Vir Workload

lib/vulfi/campaign.mli: Analysis Experiment Runtime Vir Workload

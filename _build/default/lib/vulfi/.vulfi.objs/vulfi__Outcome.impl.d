lib/vulfi/outcome.ml: Array Int64 Interp List Printf

lib/vulfi/report.ml: Analysis Campaign List Printf String Vir

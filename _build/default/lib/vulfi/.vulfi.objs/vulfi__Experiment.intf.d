lib/vulfi/experiment.mli: Analysis Instrument Interp Outcome Runtime Vir Workload

lib/vulfi/experiment.ml: Analysis Instrument Interp Outcome Printf Runtime Vir Workload

lib/vulfi/workload.ml: Interp Outcome Vir

lib/vulfi/runtime.ml: Fault_model Hashtbl Int64 Interp List Printf Random Vir

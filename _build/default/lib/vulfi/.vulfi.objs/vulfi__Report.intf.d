lib/vulfi/report.mli: Analysis Campaign Vir

lib/vulfi/stats.ml: Array List

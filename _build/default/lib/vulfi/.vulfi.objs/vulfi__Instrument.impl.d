lib/vulfi/instrument.ml: Analysis Array Block Const Fault_model Func Instr Intrinsics List Option Printf Verify Vir Vmodule Vtype

lib/vulfi/stats.mli:

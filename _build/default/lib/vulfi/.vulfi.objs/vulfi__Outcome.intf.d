lib/vulfi/outcome.mli: Interp

lib/vulfi/workload.mli: Interp Outcome Vir

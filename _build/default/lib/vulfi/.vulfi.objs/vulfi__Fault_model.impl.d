lib/vulfi/fault_model.ml: List Vir

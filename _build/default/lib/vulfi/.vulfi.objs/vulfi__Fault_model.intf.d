lib/vulfi/fault_model.mli: Vir

lib/vulfi/runtime.mli: Interp

lib/vulfi/instrument.mli: Analysis Vir

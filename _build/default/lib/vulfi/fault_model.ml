(** The paper's fault model (§II-B): exactly one single-bit flip per
    program execution, at a uniformly chosen dynamic fault site, in a
    uniformly chosen bit of the affected scalar register. *)

type t = {
  (* 1-based index into the dynamic fault-site sequence of the run. *)
  dynamic_site : int;
  (* Bit position is drawn lazily at injection time because the bit
     width depends on the register the chosen site turns out to be. *)
  seed : int;
}

(* Names of the runtime injection API, one per scalar register class.
   These are the functions the instrumentor splices calls to — the
   OCaml counterparts of the paper's injectFaultFloatTy() etc. *)
let inject_fn_name (s : Vir.Vtype.scalar) =
  match s with
  | Vir.Vtype.I1 -> "__vulfi_inject_i1"
  | Vir.Vtype.I8 -> "__vulfi_inject_i8"
  | Vir.Vtype.I32 -> "__vulfi_inject_i32"
  | Vir.Vtype.I64 -> "__vulfi_inject_i64"
  | Vir.Vtype.Ptr -> "__vulfi_inject_ptr"
  | Vir.Vtype.F32 -> "__vulfi_inject_f32"
  | Vir.Vtype.F64 -> "__vulfi_inject_f64"

let all_inject_fns =
  List.map
    (fun s -> (inject_fn_name s, s))
    [
      Vir.Vtype.I1; Vir.Vtype.I8; Vir.Vtype.I32; Vir.Vtype.I64;
      Vir.Vtype.Ptr; Vir.Vtype.F32; Vir.Vtype.F64;
    ]

let is_inject_fn name = List.mem_assoc name all_inject_fns

(** Plain-text rendering of campaign results in the shape of the
    paper's tables and figures. *)

let pct x = Printf.sprintf "%5.1f%%" (100.0 *. x)

(* One Fig 11-style row: SDC / Benign / Crash per campaign cell. *)
let fig11_row (r : Campaign.result) =
  Printf.sprintf "%-16s %-4s %-9s  SDC %s  Benign %s  Crash %s  (±%.1f%%, %d campaigns)"
    r.Campaign.c_workload
    (Vir.Target.name r.Campaign.c_target)
    (Analysis.Sites.category_name r.Campaign.c_category)
    (pct (Campaign.sdc_rate r))
    (pct (Campaign.benign_rate r))
    (pct (Campaign.crash_rate r))
    (100.0 *. r.Campaign.c_margin)
    r.Campaign.c_campaigns

(* One Fig 12-style row: SDC rate and detection rate. *)
let fig12_row (r : Campaign.result) =
  Printf.sprintf "%-16s %-9s  SDC %s  SDC-detection %s  (detected %d / sdc %d)"
    r.Campaign.c_workload
    (Analysis.Sites.category_name r.Campaign.c_category)
    (pct (Campaign.sdc_rate r))
    (pct (Campaign.sdc_detection_rate r))
    r.Campaign.c_totals.Campaign.n_detected_sdc
    r.Campaign.c_totals.Campaign.n_sdc

(* One Fig 10-style row: scalar/vector composition per category. *)
let fig10_row ~workload ~target (census : (Analysis.Sites.category * Analysis.Instmix.mix) list) =
  let cell (cat, mix) =
    Printf.sprintf "%s: %s vector (%d/%d)"
      (Analysis.Sites.category_name cat)
      (pct (Analysis.Instmix.vector_fraction mix))
      mix.Analysis.Instmix.vector_count
      (Analysis.Instmix.total mix)
  in
  Printf.sprintf "%-16s %-4s  %s" workload (Vir.Target.name target)
    (String.concat "  " (List.map cell census))

(* One Table I-style row. *)
let table1_row ~workload ~language ~input ~target ~dyn_instrs =
  Printf.sprintf "%-16s %-6s %-28s %-4s %12.3f M" workload language input
    (Vir.Target.name target)
    (float_of_int dyn_instrs /. 1.0e6)

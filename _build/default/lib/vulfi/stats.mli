(** Campaign statistics (paper §IV-D): sample mean/deviation, Student-t
    95% margins, and a crude normality screen. *)

(** Arithmetic mean; 0 for the empty list. *)
val mean : float list -> float

(** Sample standard deviation (n-1 denominator); 0 for n < 2. *)
val stddev : float list -> float

(** Two-sided 95% critical value of Student's t with [df] degrees of
    freedom (tabulated to 30, stepped beyond, 1.96 asymptote). *)
val t95 : df:int -> float

(** 95% margin of error of the sample mean: t * s / sqrt(n).
    [infinity] for fewer than two samples. *)
val margin_of_error : float list -> float

(** Sample skewness (g1). *)
val skewness : float list -> float

(** Sample excess kurtosis (g2). *)
val excess_kurtosis : float list -> float

(** "Normal or near normal" screen used by the campaign stop rule:
    at least 3 samples, |skewness| <= 1, |excess kurtosis| <= 2. *)
val near_normal : float list -> bool

(** Fault-injection campaigns (paper §IV-D).

    A campaign is [experiments_per_campaign] independent experiments
    (100 in the paper); its SDC rate is one statistical sample.
    Campaigns repeat until the sample distribution is near normal and
    the 95% margin of error drops below the target (±3%), bounded by
    [min_campaigns]/[max_campaigns]. *)

type config = {
  experiments_per_campaign : int;
  min_campaigns : int;
  max_campaigns : int;
  margin_target : float;  (** e.g. 0.03 *)
  seed : int;
}

(* The paper's configuration: 100-experiment campaigns, at least 20 of
   them, ±3% margin at 95% confidence. *)
let paper_config =
  {
    experiments_per_campaign = 100;
    min_campaigns = 20;
    max_campaigns = 40;
    margin_target = 0.03;
    seed = 0xC0FFEE;
  }

(* A scaled-down configuration for quick runs of the harness. *)
let quick_config =
  {
    experiments_per_campaign = 25;
    min_campaigns = 4;
    max_campaigns = 8;
    margin_target = 0.10;
    seed = 0xC0FFEE;
  }

type totals = {
  n_experiments : int;
  n_sdc : int;
  n_benign : int;
  n_crash : int;
  n_detected : int;      (** runs flagged by a detector *)
  n_detected_sdc : int;  (** SDC runs flagged by a detector *)
}

let empty_totals =
  {
    n_experiments = 0;
    n_sdc = 0;
    n_benign = 0;
    n_crash = 0;
    n_detected = 0;
    n_detected_sdc = 0;
  }

let add_outcome t (r : Experiment.run_result) =
  {
    n_experiments = t.n_experiments + 1;
    n_sdc = (t.n_sdc + match r.Experiment.r_outcome with Outcome.Sdc -> 1 | _ -> 0);
    n_benign =
      (t.n_benign + match r.Experiment.r_outcome with Outcome.Benign -> 1 | _ -> 0);
    n_crash =
      (t.n_crash + match r.Experiment.r_outcome with Outcome.Crash _ -> 1 | _ -> 0);
    n_detected = (t.n_detected + if r.Experiment.r_detected then 1 else 0);
    n_detected_sdc =
      (t.n_detected_sdc
      +
      if r.Experiment.r_detected && r.Experiment.r_outcome = Outcome.Sdc then 1
      else 0);
  }

type result = {
  c_workload : string;
  c_target : Vir.Target.t;
  c_category : Analysis.Sites.category;
  c_campaigns : int;
  c_sdc_rates : float list;  (** one sample per campaign *)
  c_totals : totals;
  c_margin : float;
  c_near_normal : bool;
  c_static_sites : int;
  c_avg_dynamic_sites : float;
  c_avg_dynamic_instrs : float;
}

let rate part total =
  if total = 0 then 0.0 else float_of_int part /. float_of_int total

let sdc_rate r = rate r.c_totals.n_sdc r.c_totals.n_experiments
let benign_rate r = rate r.c_totals.n_benign r.c_totals.n_experiments
let crash_rate r = rate r.c_totals.n_crash r.c_totals.n_experiments

(* Fraction of SDC-producing experiments that a detector flagged —
   the paper's "SDC detection rate" (Fig 12). *)
let sdc_detection_rate r = rate r.c_totals.n_detected_sdc r.c_totals.n_sdc

(* Run the full campaign protocol for one
   (workload, target, site-category) cell.
   [transform] pre-processes the module (e.g. detector insertion);
   [hooks] attaches extra runtime (e.g. the detector API). *)
let run ?transform ?hooks ?(respect_masks = true) ?fault_kind (cfg : config)
    (w : Workload.t) (target : Vir.Target.t)
    (category : Analysis.Sites.category) : result =
  let prepared = Experiment.prepare ?transform w target category in
  let rng = Random.State.make [| cfg.seed; Hashtbl.hash w.Workload.w_name |] in
  (* Golden runs are deterministic per input: cache them. *)
  let golden_cache = Hashtbl.create 8 in
  let golden input =
    match Hashtbl.find_opt golden_cache input with
    | Some g -> g
    | None ->
      let g = Experiment.golden_run ?hooks ~respect_masks prepared ~input in
      Hashtbl.add golden_cache input g;
      g
  in
  let totals = ref empty_totals in
  let sdc_rates = ref [] in
  let campaigns = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let campaign_totals = ref empty_totals in
    for _ = 1 to cfg.experiments_per_campaign do
      let input = Random.State.int rng w.Workload.w_inputs in
      let g = golden input in
      let r =
        if g.Experiment.g_dyn_sites = 0 then
          (* no live fault site: vacuously benign *)
          {
            Experiment.r_outcome = Outcome.Benign;
            r_injection = None;
            r_detected = false;
          }
        else
          let dynamic_site =
            1 + Random.State.int rng g.Experiment.g_dyn_sites
          in
          Experiment.faulty_run ?hooks ~respect_masks ?fault_kind prepared
            ~golden:g ~dynamic_site ~seed:(Random.State.bits rng)
      in
      campaign_totals := add_outcome !campaign_totals r;
      totals := add_outcome !totals r
    done;
    incr campaigns;
    sdc_rates :=
      rate !campaign_totals.n_sdc !campaign_totals.n_experiments
      :: !sdc_rates;
    let margin = Stats.margin_of_error !sdc_rates in
    let normal = Stats.near_normal !sdc_rates in
    if
      !campaigns >= cfg.max_campaigns
      || (!campaigns >= cfg.min_campaigns
         && margin <= cfg.margin_target
         && normal)
    then continue_ := false
  done;
  let goldens = Hashtbl.fold (fun _ g acc -> g :: acc) golden_cache [] in
  let avg f =
    match goldens with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun a g -> a +. float_of_int (f g)) 0.0 goldens
      /. float_of_int (List.length goldens)
  in
  {
    c_workload = w.Workload.w_name;
    c_target = target;
    c_category = category;
    c_campaigns = !campaigns;
    c_sdc_rates = List.rev !sdc_rates;
    c_totals = !totals;
    c_margin = Stats.margin_of_error !sdc_rates;
    c_near_normal = Stats.near_normal !sdc_rates;
    c_static_sites = Instrument.static_site_count prepared.Experiment.p_instr;
    c_avg_dynamic_sites = avg (fun g -> g.Experiment.g_dyn_sites);
    c_avg_dynamic_instrs = avg (fun g -> g.Experiment.g_dyn_instrs);
  }

(** The paper's fault model (§II-B) and the runtime API surface the
    instrumentor targets. *)

(** Specification of one planned fault. *)
type t = {
  dynamic_site : int;  (** 1-based index into the dynamic site stream *)
  seed : int;  (** fixes the (lazily drawn) bit position *)
}

(** Name of the runtime injection function for one scalar register
    class — the OCaml counterpart of the paper's [injectFaultFloatTy]. *)
val inject_fn_name : Vir.Vtype.scalar -> string

(** All (name, scalar class) pairs of the injection API. *)
val all_inject_fns : (string * Vir.Vtype.scalar) list

(** Is [name] one of the runtime injection functions? *)
val is_inject_fn : string -> bool

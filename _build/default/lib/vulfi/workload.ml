(** A fault-injection workload: a program, an entry point, and a family
    of predefined inputs (Table I's "Test Input" column). The setup
    function materialises one input in a fresh machine and returns the
    entry arguments plus a closure that reads the observable output
    back after the run. *)

type t = {
  w_name : string;
  w_fn : string;  (** entry function to execute *)
  w_inputs : int;  (** number of predefined inputs; experiments draw
                       uniformly from [0 .. w_inputs-1] *)
  w_build : Vir.Target.t -> Vir.Vmodule.t;
      (** fresh uninstrumented module; called per campaign setup *)
  w_setup :
    input:int ->
    Interp.Machine.state ->
    Interp.Vvalue.t list * (unit -> Outcome.output);
  w_out_tolerance : float;
      (** relative tolerance for float-output comparison; [0.0] =
          bit-exact. The paper compares recorded (printed) program
          outputs, which rounds to a few significant digits — a small
          tolerance models that for the application benchmarks, while
          the micro study stays bit-exact. *)
}

(** Plain-text rendering of campaign results in the shape of the paper's
    tables and figures. *)

(** ["42.0%"]-style percentage. *)
val pct : float -> string

(** One Fig 11-style row: SDC / Benign / Crash rates with the margin of
    error and campaign count. *)
val fig11_row : Campaign.result -> string

(** One Fig 12-style row: SDC rate and SDC-detection rate. *)
val fig12_row : Campaign.result -> string

(** One Fig 10-style row: scalar/vector composition per category. *)
val fig10_row :
  workload:string ->
  target:Vir.Target.t ->
  (Analysis.Sites.category * Analysis.Instmix.mix) list ->
  string

(** One Table I-style row. *)
val table1_row :
  workload:string ->
  language:string ->
  input:string ->
  target:Vir.Target.t ->
  dyn_instrs:int ->
  string

(** The VULFI instrumentor (paper §II-D, Figs 4 and 5).

    For every selected fault target the pass splices calls to the
    runtime injection API into the IR:

    - a scalar Lvalue [%r] becomes
      [%c = call @__vulfi_inject_T(%r, mask, site_id)] with every other
      use of [%r] redirected to [%c];
    - a vector Lvalue is processed lane by lane exactly as in Fig 4:
      extract the scalar element, pass it (with its execution-mask lane,
      if the producing instruction is a masked intrinsic) to the runtime
      API, insert the result back, and finally redirect all users of the
      original register to the fully instrumented clone;
    - a store's value operand is instrumented immediately before the
      store; a masked store's value operand receives the store's
      execution-mask lanes (Fig 5 lines L5-L8).

    Each (target, lane) pair receives a unique static site id, passed to
    the runtime as a constant third argument. *)

open Vir

type site_info = {
  si_id : int;
  si_target : Analysis.Sites.target;
  si_lane : int;
}

type t = {
  instrumented : Vmodule.t;     (** same module value, rewritten in place *)
  site_table : site_info array; (** indexed by static site id *)
}

let true_imm = Instr.Imm (Const.i1 true)

let site_imm id = Instr.Imm (Const.i32 id)

(* Declare the runtime API in the module. *)
let declare_runtime (m : Vmodule.t) =
  List.iter
    (fun (name, s) ->
      Vmodule.declare_extern m ~name
        ~arg_tys:[ Vtype.Scalar s; Vtype.bool_ty; Vtype.i32 ]
        ~ret:(Vtype.Scalar s))
    Fault_model.all_inject_fns

(* The execution mask operand governing a target's lanes, if any. *)
let mask_operand_of (t : Analysis.Sites.target) : Instr.operand option =
  match t.Analysis.Sites.t_instr.Instr.op with
  | Instr.Call (name, args) -> (
    match Intrinsics.mask_operand name with
    | Some ix -> Some (List.nth args ix)
    | None -> None)
  | _ -> None

(* Build the per-lane instrumentation chain for a value [src] of type
   [ty]. Returns (new instructions, final operand). Fresh registers come
   from [f]. [mask] is the vector execution mask, if any. *)
let build_chain (f : Func.t) ~next_site ~(sites : site_info list ref)
    ~(target : Analysis.Sites.target) ~(mask : Instr.operand option)
    (src : Instr.operand) (ty : Vtype.t) :
    Instr.t list * Instr.operand =
  let mk id name ty op = { Instr.id; name; ty; op } in
  match ty with
  | Vtype.Void -> invalid_arg "Instrument.build_chain: void"
  | Vtype.Scalar s ->
    let site = !next_site () in
    sites := { si_id = site; si_target = target; si_lane = 0 } :: !sites;
    let id = Func.fresh_reg f in
    let call =
      mk id
        (Printf.sprintf "inj%d" id)
        ty
        (Instr.Call
           (Fault_model.inject_fn_name s, [ src; true_imm; site_imm site ]))
    in
    ([ call ], Instr.Reg (id, ty))
  | Vtype.Vector (n, s) ->
    let instrs = ref [] in
    let cur = ref src in
    for lane = 0 to n - 1 do
      let lane_imm = Instr.Imm (Const.i32 lane) in
      let site = !next_site () in
      sites := { si_id = site; si_target = target; si_lane = lane } :: !sites;
      (* L1/L5: extract the scalar element *)
      let ext_id = Func.fresh_reg f in
      let ext =
        mk ext_id
          (Printf.sprintf "ext%d" ext_id)
          (Vtype.Scalar s)
          (Instr.Extractelement (!cur, lane_imm))
      in
      (* L2/L6: extract the execution-mask lane, if masked *)
      let mask_op, mask_instr =
        match mask with
        | None -> (true_imm, [])
        | Some mvec ->
          let mid = Func.fresh_reg f in
          let mi =
            mk mid
              (Printf.sprintf "extmask%d" mid)
              Vtype.bool_ty
              (Instr.Extractelement (mvec, lane_imm))
          in
          (Instr.Reg (mid, Vtype.bool_ty), [ mi ])
      in
      (* L3/L7: the runtime injection call *)
      let call_id = Func.fresh_reg f in
      let call =
        mk call_id
          (Printf.sprintf "inj%d" call_id)
          (Vtype.Scalar s)
          (Instr.Call
             ( Fault_model.inject_fn_name s,
               [
                 Instr.Reg (ext_id, Vtype.Scalar s); mask_op; site_imm site;
               ] ))
      in
      (* L4/L8: insert the (possibly corrupted) element back *)
      let ins_id = Func.fresh_reg f in
      let ins =
        mk ins_id
          (Printf.sprintf "ins%d" ins_id)
          ty
          (Instr.Insertelement
             (!cur, Instr.Reg (call_id, Vtype.Scalar s), lane_imm))
      in
      instrs := !instrs @ [ ext ] @ mask_instr @ [ call; ins ];
      cur := Instr.Reg (ins_id, ty)
    done;
    (!instrs, !cur)

(* Instrument one Lvalue target in place. *)
let instrument_lvalue (f : Func.t) ~next_site ~sites
    (target : Analysis.Sites.target) =
  let i = target.Analysis.Sites.t_instr in
  let block = Func.find_block f target.Analysis.Sites.t_block in
  let reg = i.Instr.id in
  let ty = i.Instr.ty in
  let mask = mask_operand_of target in
  let chain, final =
    build_chain f ~next_site ~sites ~target ~mask (Instr.Reg (reg, ty)) ty
  in
  if Instr.is_phi i then Block.insert_after_phis block chain
  else Block.insert_after block ~after:reg chain;
  let chain_ids = List.map (fun (c : Instr.t) -> c.Instr.id) chain in
  Func.replace_uses f ~except:chain_ids ~reg ~by:final

(* Instrument the value operand of a (masked) store, just before it. *)
let instrument_store_value (f : Func.t) ~next_site ~sites
    (target : Analysis.Sites.target) =
  let i = target.Analysis.Sites.t_instr in
  let block = Func.find_block f target.Analysis.Sites.t_block in
  match target.Analysis.Sites.t_kind with
  | Analysis.Sites.Store_value ->
    (match i.Instr.op with
    | Instr.Store (v, p) ->
      let ty = Instr.operand_ty v in
      let chain, final =
        build_chain f ~next_site ~sites ~target ~mask:None v ty
      in
      Block.insert_before_phys block ~before:i chain;
      Block.replace_phys block ~old_i:i
        ~new_i:{ i with Instr.op = Instr.Store (final, p) }
    | _ -> assert false)
  | Analysis.Sites.Maskstore_value ->
    (match i.Instr.op with
    | Instr.Call (name, args) ->
      let vix = Option.get (Intrinsics.value_operand name) in
      let v = List.nth args vix in
      let mask =
        Option.map (List.nth args) (Intrinsics.mask_operand name)
      in
      let ty = Instr.operand_ty v in
      let chain, final =
        build_chain f ~next_site ~sites ~target ~mask v ty
      in
      Block.insert_before_phys block ~before:i chain;
      let args' = List.mapi (fun k a -> if k = vix then final else a) args in
      Block.replace_phys block ~old_i:i
        ~new_i:{ i with Instr.op = Instr.Call (name, args') }
    | _ -> assert false)
  | Analysis.Sites.Lvalue -> assert false

(* Instrument [m] in place for the given fault targets. The target list
   normally comes from {!Analysis.Sites.select} for one site category.
   Returns the static site table mapping site ids back to targets. *)
let run (m : Vmodule.t) (targets : Analysis.Sites.target list) : t =
  declare_runtime m;
  let counter = ref 0 in
  let next_site =
    ref (fun () ->
        let s = !counter in
        counter := s + 1;
        s)
  in
  let sites = ref [] in
  (* Store-value targets are located by physical identity, which Lvalue
     instrumentation invalidates (redirecting uses rebuilds instruction
     records); Lvalue targets are located by their stable register id.
     Hence stores are instrumented first. *)
  let stores, lvalues =
    List.partition
      (fun (t : Analysis.Sites.target) ->
        t.Analysis.Sites.t_kind <> Analysis.Sites.Lvalue)
      targets
  in
  List.iter
    (fun (target : Analysis.Sites.target) ->
      let f = Vmodule.find_func_exn m target.Analysis.Sites.t_func in
      instrument_store_value f ~next_site ~sites target)
    stores;
  List.iter
    (fun (target : Analysis.Sites.target) ->
      let f = Vmodule.find_func_exn m target.Analysis.Sites.t_func in
      instrument_lvalue f ~next_site ~sites target)
    lvalues;
  Verify.check_module m;
  let table = Array.of_list (List.rev !sites) in
  Array.iteri (fun k si -> assert (si.si_id = k)) table;
  { instrumented = m; site_table = table }

(* Count of static scalar fault sites created. *)
let static_site_count t = Array.length t.site_table

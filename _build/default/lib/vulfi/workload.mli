(** A fault-injection workload: a program, an entry point, and a family
    of predefined inputs (Table I's "Test Input" column). *)

type t = {
  w_name : string;  (** display name *)
  w_fn : string;  (** entry function to execute *)
  w_inputs : int;
      (** number of predefined inputs; experiments draw uniformly from
          [0 .. w_inputs-1] *)
  w_build : Vir.Target.t -> Vir.Vmodule.t;
      (** fresh uninstrumented module; called once per campaign setup
          (passes mutate modules in place, so this must not cache) *)
  w_setup :
    input:int ->
    Interp.Machine.state ->
    Interp.Vvalue.t list * (unit -> Outcome.output);
      (** materialise input [input] in the machine's memory; returns the
          entry arguments and a closure reading the observable output
          back after the run *)
  w_out_tolerance : float;
      (** relative tolerance for float-output comparison; [0.0] =
          bit-exact (see {!Outcome.output_equal}) *)
}

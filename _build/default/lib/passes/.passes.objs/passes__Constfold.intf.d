lib/passes/constfold.mli: Vir

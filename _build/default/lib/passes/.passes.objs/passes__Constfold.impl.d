lib/passes/constfold.ml: Array Block Const Dce Func Instr Int64 Interp List Machine Trap Verify Vir Vmodule Vtype Vvalue Vvalue_const

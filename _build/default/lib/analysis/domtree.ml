(** Dominator analysis over a function's CFG.

    Iterative dataflow (Cooper-Harvey-Kennedy style over bitsets kept
    simple): computes the full dominator sets, immediate dominators and
    dominance frontiers. The verifier keeps its own minimal copy to stay
    dependency-free; this module is the general, tested facility used by
    loop detection and available to custom passes. *)

type t = {
  func : Vir.Func.t;
  labels : string array;  (** block index -> label; entry is 0 *)
  index : (string, int) Hashtbl.t;
  dom : bool array array;  (** dom.(i).(j): j dominates i *)
  idom : int array;  (** immediate dominator; -1 for entry/unreachable *)
  preds : int list array;
  succs : int list array;
}

let block_count t = Array.length t.labels

let index_of t label = Hashtbl.find_opt t.index label

let label_of t i = t.labels.(i)

let compute (f : Vir.Func.t) : t =
  let blocks = Array.of_list f.Vir.Func.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create n in
  Array.iteri (fun i b -> Hashtbl.replace index b.Vir.Block.label i) blocks;
  let succs =
    Array.map
      (fun b ->
        List.filter_map
          (fun l -> Hashtbl.find_opt index l)
          (Vir.Block.successors b))
      blocks
  in
  let preds = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  (* dom.(0) = {0}; others start full and shrink. *)
  let dom = Array.init n (fun i -> Array.make n (i <> 0)) in
  if n > 0 then dom.(0).(0) <- true;
  for i = 1 to n - 1 do
    Array.fill dom.(i) 0 n true
  done;
  let changed = ref (n > 1) in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let inter = Array.make n (preds.(i) <> []) in
      List.iter
        (fun p ->
          Array.iteri (fun j v -> inter.(j) <- v && dom.(p).(j)) inter)
        preds.(i);
      inter.(i) <- true;
      if inter <> dom.(i) then begin
        dom.(i) <- inter;
        changed := true
      end
    done
  done;
  (* idom: the unique strict dominator dominated by all other strict
     dominators. *)
  let idom = Array.make n (-1) in
  for i = 1 to n - 1 do
    let strict =
      List.filter (fun j -> j <> i && dom.(i).(j)) (List.init n Fun.id)
    in
    let is_idom c = List.for_all (fun j -> j = c || dom.(c).(j)) strict in
    match List.find_opt is_idom strict with
    | Some c -> idom.(i) <- c
    | None -> ()
  done;
  {
    func = f;
    labels = Array.map (fun b -> b.Vir.Block.label) blocks;
    index;
    dom;
    idom;
    preds;
    succs;
  }

(* Does block [a] dominate block [b] (labels)? Unknown labels: false. *)
let dominates t a b =
  match (index_of t a, index_of t b) with
  | Some ia, Some ib -> t.dom.(ib).(ia)
  | _ -> false

let idom_of t label =
  match index_of t label with
  | Some i when t.idom.(i) >= 0 -> Some t.labels.(t.idom.(i))
  | _ -> None

(* Dominance frontier of each block: DF(x) = blocks y with a predecessor
   dominated by x (or = x) where x does not strictly dominate y. *)
let dominance_frontier t : (string * string list) list =
  let n = block_count t in
  let df = Array.make n [] in
  for y = 0 to n - 1 do
    if List.length t.preds.(y) >= 2 then
      List.iter
        (fun p ->
          (* walk up from p to idom(y), adding y to each DF *)
          let rec walk x =
            if x >= 0 && x <> t.idom.(y) then begin
              if not (List.mem y df.(x)) then df.(x) <- y :: df.(x);
              walk t.idom.(x)
            end
          in
          walk p)
        t.preds.(y)
  done;
  Array.to_list
    (Array.mapi
       (fun i f -> (t.labels.(i), List.map (fun j -> t.labels.(j)) f))
       df)

let preds_of t i = t.preds.(i)

let succs_of t i = t.succs.(i)

(* Back edges: edges u -> v where v dominates u. *)
let back_edges t : (string * string) list =
  let acc = ref [] in
  Array.iteri
    (fun u ss ->
      List.iter
        (fun v -> if t.dom.(u).(v) then acc := (t.labels.(u), t.labels.(v)) :: !acc)
        ss)
    t.succs;
  List.rev !acc

(** Forward slices over def-use chains — the basis of the VULFI
    fault-site taxonomy (paper §II-C). *)

(** [forward_slice du r] is every instruction transitively consuming
    register [r], including its defining instruction. *)
val forward_slice : Defuse.t -> Vir.Instr.reg -> Vir.Instr.t list

(** Slice seeded at an instruction: the Lvalue's slice for definitions,
    just the store itself for stores (memory is not tracked). *)
val forward_slice_of_instr : Defuse.t -> Vir.Instr.t -> Vir.Instr.t list

val contains_gep : Vir.Instr.t list -> bool

val contains_control_flow : Vir.Instr.t list -> bool

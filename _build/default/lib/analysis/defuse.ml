(** Def-use chains over a VIR function. *)

type use_site = {
  u_block : string;
  u_instr : Vir.Instr.t;
}

type t = {
  func : Vir.Func.t;
  defs : (Vir.Instr.reg, Vir.Instr.t) Hashtbl.t;
  uses : (Vir.Instr.reg, use_site list) Hashtbl.t;
}

let build (f : Vir.Func.t) : t =
  let defs = Hashtbl.create 64 in
  let uses = Hashtbl.create 64 in
  Vir.Func.iter_instrs f (fun b i ->
      if Vir.Instr.defines i then Hashtbl.replace defs i.Vir.Instr.id i;
      List.iter
        (fun r ->
          let site = { u_block = b.Vir.Block.label; u_instr = i } in
          let old = try Hashtbl.find uses r with Not_found -> [] in
          Hashtbl.replace uses r (site :: old))
        (Vir.Instr.uses i));
  { func = f; defs; uses }

let def t r = Hashtbl.find_opt t.defs r

let uses_of t r = try Hashtbl.find t.uses r with Not_found -> []

(* Registers with no uses (dead definitions). *)
let dead_defs t =
  Hashtbl.fold
    (fun r i acc -> if uses_of t r = [] then (r, i) :: acc else acc)
    t.defs []

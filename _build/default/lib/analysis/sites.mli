(** Fault-site enumeration and classification (paper §II-B and §II-C).

    A fault {e target} is the Lvalue of a defining instruction, or the
    value operand of a (possibly masked) store. A vector target of
    length Vl contributes Vl scalar fault {e sites}, one per lane.
    Targets are classified by their forward slices: pure-data sites
    reach neither address computation nor control flow; control sites
    reach a conditional branch; address sites reach a [getelementptr].
    Control and address overlap (paper Fig 2). *)

type category = Pure_data | Control | Address

val category_name : category -> string

(** Parse ["pure-data"], ["control"], ["address"] (and common aliases). *)
val category_of_string : string -> category option

val all_categories : category list

type target_kind =
  | Lvalue  (** result register of a defining instruction *)
  | Store_value  (** value operand of a [store] *)
  | Maskstore_value  (** value operand of a masked-store intrinsic *)

type target = {
  t_func : string;
  t_block : string;
  t_instr : Vir.Instr.t;
  t_kind : target_kind;
  t_lanes : int;  (** scalar fault sites contributed *)
  t_is_vector : bool;  (** vector instruction per the paper's defn *)
  t_is_control : bool;
  t_is_address : bool;
}

val is_pure_data : target -> bool

val in_category : target -> category -> bool

(** The type whose lanes are perturbed for a target. *)
val target_value_ty : target -> Vir.Vtype.t

(** Enumerate all fault targets of a function/module, excluding VULFI
    runtime calls and detector-synthesised instructions. *)
val targets_of_func : Vir.Func.t -> target list

val targets_of_module : Vir.Vmodule.t -> target list

(** Restrict to one category, optionally to a set of functions. *)
val select : ?funcs:string list -> target list -> category -> target list

(** Total scalar fault sites across a target list. *)
val total_sites : target list -> int

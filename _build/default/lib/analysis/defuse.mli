(** Def-use chains over a VIR function. *)

type use_site = {
  u_block : string;  (** label of the block containing the use *)
  u_instr : Vir.Instr.t;
}

type t

(** Build the chains for one function. *)
val build : Vir.Func.t -> t

(** Defining instruction of a register ([None] for parameters). *)
val def : t -> Vir.Instr.reg -> Vir.Instr.t option

(** All instructions using a register. *)
val uses_of : t -> Vir.Instr.reg -> use_site list

(** Registers with no uses (dead definitions). *)
val dead_defs : t -> (Vir.Instr.reg * Vir.Instr.t) list

lib/analysis/domtree.ml: Array Fun Hashtbl List Vir

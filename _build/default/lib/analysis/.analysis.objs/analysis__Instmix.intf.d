lib/analysis/instmix.mli: Sites Vir

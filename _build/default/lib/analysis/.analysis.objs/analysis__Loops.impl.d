lib/analysis/loops.ml: Domtree Fun Hashtbl List Option String Vir

lib/analysis/sites.mli: Vir

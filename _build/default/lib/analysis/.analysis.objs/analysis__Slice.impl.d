lib/analysis/slice.ml: Defuse Hashtbl List Vir

lib/analysis/defuse.ml: Hashtbl List Vir

lib/analysis/defuse.mli: Vir

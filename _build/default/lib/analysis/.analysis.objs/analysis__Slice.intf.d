lib/analysis/slice.mli: Defuse Vir

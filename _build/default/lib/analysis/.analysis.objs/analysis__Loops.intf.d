lib/analysis/loops.mli: Domtree Vir

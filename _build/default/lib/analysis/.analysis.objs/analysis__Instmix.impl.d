lib/analysis/instmix.ml: List Sites Vir

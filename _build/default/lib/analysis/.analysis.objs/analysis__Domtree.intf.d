lib/analysis/domtree.mli: Vir

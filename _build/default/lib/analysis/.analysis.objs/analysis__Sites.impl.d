lib/analysis/sites.ml: Defuse List Option Slice String Vir

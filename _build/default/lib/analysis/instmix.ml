(** Scalar/vector instruction composition per fault-site category —
    the census behind the paper's Fig 10. *)

type mix = {
  scalar_count : int;
  vector_count : int;
}

let empty = { scalar_count = 0; vector_count = 0 }

let total m = m.scalar_count + m.vector_count

let vector_fraction m =
  let t = total m in
  if t = 0 then 0.0 else float_of_int m.vector_count /. float_of_int t

(* Mix of target instructions falling into [cat]. *)
let of_targets (targets : Sites.target list) (cat : Sites.category) : mix =
  List.fold_left
    (fun m (t : Sites.target) ->
      if Sites.in_category t cat then
        if t.Sites.t_is_vector then
          { m with vector_count = m.vector_count + 1 }
        else { m with scalar_count = m.scalar_count + 1 }
      else m)
    empty targets

(* Full Fig 10 row for a module: mix per category. *)
let census ?funcs (m : Vir.Vmodule.t) : (Sites.category * mix) list =
  let targets = Sites.targets_of_module m in
  let targets =
    match funcs with
    | None -> targets
    | Some fs -> List.filter (fun t -> List.mem t.Sites.t_func fs) targets
  in
  List.map (fun c -> (c, of_targets targets c)) Sites.all_categories

(** Fault-site enumeration and classification (paper §II-B, §II-C).

    A fault *target* is the Lvalue of a defining instruction, or the
    value operand of a (possibly masked) store. A vector target of
    length Vl contributes Vl scalar fault *sites*, one per lane.

    Each target is classified by its forward slice:
    - pure-data: no [getelementptr] and no control-flow instruction;
    - control: at least one control-flow instruction;
    - address: at least one [getelementptr].
    Control and address overlap (Fig 2); pure-data excludes both. *)

type category = Pure_data | Control | Address

let category_name = function
  | Pure_data -> "pure-data"
  | Control -> "control"
  | Address -> "address"

let category_of_string s =
  match String.lowercase_ascii s with
  | "pure-data" | "puredata" | "data" -> Some Pure_data
  | "control" | "ctrl" -> Some Control
  | "address" | "addr" -> Some Address
  | _ -> None

let all_categories = [ Pure_data; Control; Address ]

type target_kind =
  | Lvalue            (** result register of a defining instruction *)
  | Store_value       (** value operand of a [store] *)
  | Maskstore_value   (** value operand of a masked-store intrinsic *)

type target = {
  t_func : string;
  t_block : string;
  t_instr : Vir.Instr.t;
  t_kind : target_kind;
  t_lanes : int;          (** scalar fault sites contributed *)
  t_is_vector : bool;     (** vector instruction per the paper's defn *)
  t_is_control : bool;
  t_is_address : bool;
}

let is_pure_data t = (not t.t_is_control) && not t.t_is_address

let in_category t = function
  | Pure_data -> is_pure_data t
  | Control -> t.t_is_control
  | Address -> t.t_is_address

(* The type whose lanes are perturbed for a target. *)
let target_value_ty (t : target) =
  match t.t_kind with
  | Lvalue -> t.t_instr.Vir.Instr.ty
  | Store_value -> (
    match t.t_instr.Vir.Instr.op with
    | Vir.Instr.Store (v, _) -> Vir.Instr.operand_ty v
    | _ -> assert false)
  | Maskstore_value -> (
    match t.t_instr.Vir.Instr.op with
    | Vir.Instr.Call (name, args) -> (
      match Vir.Intrinsics.value_operand name with
      | Some ix -> Vir.Instr.operand_ty (List.nth args ix)
      | None -> assert false)
    | _ -> assert false)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Runtime functions injected by the instrumentor, and instructions
   synthesised by the detector passes (named "__det_*"), are not
   themselves fault targets: they are measurement/protection machinery,
   not program state. *)
let is_vulfi_runtime_call (i : Vir.Instr.t) =
  has_prefix "__det_" i.Vir.Instr.name
  ||
  match i.Vir.Instr.op with
  | Vir.Instr.Call (name, _) -> has_prefix "__vulfi_" name
  | _ -> false

(* Enumerate all fault targets of [f] with slice-based classification. *)
let targets_of_func (f : Vir.Func.t) : target list =
  let du = Defuse.build f in
  let classify_instr i =
    let slice = Slice.forward_slice_of_instr du i in
    (Slice.contains_control_flow slice, Slice.contains_gep slice)
  in
  (* Classification of a store's value: the slice of the value's
     defining registers' *own* flow already happened upstream; the store
     itself pins the value, so we classify by the store's address use:
     the paper treats stored values as data flowing to memory. *)
  let acc = ref [] in
  Vir.Func.iter_instrs f (fun b i ->
      if not (is_vulfi_runtime_call i) then begin
        if Vir.Instr.defines i then begin
          let is_control, is_address = classify_instr i in
          let lanes = max 1 (Vir.Vtype.lanes i.Vir.Instr.ty) in
          acc :=
            {
              t_func = f.Vir.Func.fname;
              t_block = b.Vir.Block.label;
              t_instr = i;
              t_kind = Lvalue;
              t_lanes = lanes;
              t_is_vector = Vir.Instr.is_vector_instr i;
              t_is_control = is_control;
              t_is_address = is_address;
            }
            :: !acc
        end;
        match i.Vir.Instr.op with
        | Vir.Instr.Store (v, _) ->
          let lanes = max 1 (Vir.Vtype.lanes (Vir.Instr.operand_ty v)) in
          acc :=
            {
              t_func = f.Vir.Func.fname;
              t_block = b.Vir.Block.label;
              t_instr = i;
              t_kind = Store_value;
              t_lanes = lanes;
              t_is_vector = Vir.Instr.is_vector_instr i;
              t_is_control = false;
              t_is_address = false;
            }
            :: !acc
        | Vir.Instr.Call (name, args)
          when Vir.Intrinsics.value_operand name <> None ->
          let ix = Option.get (Vir.Intrinsics.value_operand name) in
          let vty = Vir.Instr.operand_ty (List.nth args ix) in
          acc :=
            {
              t_func = f.Vir.Func.fname;
              t_block = b.Vir.Block.label;
              t_instr = i;
              t_kind = Maskstore_value;
              t_lanes = max 1 (Vir.Vtype.lanes vty);
              t_is_vector = true;
              t_is_control = false;
              t_is_address = false;
            }
            :: !acc
        | _ -> ()
      end);
  List.rev !acc

let targets_of_module (m : Vir.Vmodule.t) : target list =
  List.concat_map targets_of_func m.Vir.Vmodule.funcs

(* Restrict to one category, optionally to a set of functions. *)
let select ?(funcs : string list option) (targets : target list)
    (cat : category) =
  List.filter
    (fun t ->
      in_category t cat
      && match funcs with None -> true | Some fs -> List.mem t.t_func fs)
    targets

(* Total scalar fault sites in a target list. *)
let total_sites targets =
  List.fold_left (fun n t -> n + t.t_lanes) 0 targets

(** Natural-loop detection from back edges.

    A back edge [latch -> header] (where the header dominates the
    latch) defines a natural loop: the header plus every block that can
    reach the latch without passing through the header. *)

type loop = {
  l_header : string;
  l_latch : string;
  l_blocks : string list;  (** including header and latch *)
  l_depth : int;  (** 1 = outermost *)
}

let natural_loop (dt : Domtree.t) ~header ~latch : string list =
  let hi = Option.get (Domtree.index_of dt header) in
  let li = Option.get (Domtree.index_of dt latch) in
  let in_loop = Hashtbl.create 8 in
  Hashtbl.replace in_loop hi ();
  let rec add b =
    if not (Hashtbl.mem in_loop b) then begin
      Hashtbl.replace in_loop b ();
      List.iter add (Domtree.preds_of dt b)
    end
  in
  add li;
  List.filter_map
    (fun i ->
      if Hashtbl.mem in_loop i then Some (Domtree.label_of dt i) else None)
    (List.init (Domtree.block_count dt) Fun.id)

(* All natural loops of a function, with nesting depth. *)
let find (f : Vir.Func.t) : loop list =
  let dt = Domtree.compute f in
  let raw =
    List.map
      (fun (latch, header) ->
        (header, latch, natural_loop dt ~header ~latch))
      (Domtree.back_edges dt)
  in
  (* depth of a loop = 1 + number of other loops strictly containing
     its header *)
  List.map
    (fun (header, latch, blocks) ->
      let depth =
        1
        + List.length
            (List.filter
               (fun (h', _, blocks') ->
                 h' <> header && List.mem header blocks')
               raw)
      in
      { l_header = header; l_latch = latch; l_blocks = blocks; l_depth = depth })
    raw

(* Loops whose header matches the foreach naming convention. *)
let foreach_loops (f : Vir.Func.t) : loop list =
  List.filter
    (fun l ->
      String.length l.l_header >= 17
      && String.sub l.l_header 0 17 = "foreach_full_body"
      && not
           (String.length l.l_header >= 23
           && String.sub l.l_header 17 6 = ".lr.ph"))
    (find f)

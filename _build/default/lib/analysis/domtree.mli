(** Dominator analysis over a function's CFG: dominator sets, immediate
    dominators, dominance frontiers and back edges. *)

type t

val compute : Vir.Func.t -> t

val block_count : t -> int

(** Block index of a label, if the label exists. *)
val index_of : t -> string -> int option

val label_of : t -> int -> string

(** Does block [a] dominate block [b] (by label)? Unknown labels are
    never dominators. *)
val dominates : t -> string -> string -> bool

(** Immediate dominator label; [None] for the entry block. *)
val idom_of : t -> string -> string option

(** Dominance frontier per block label. *)
val dominance_frontier : t -> (string * string list) list

val preds_of : t -> int -> int list
val succs_of : t -> int -> int list

(** Edges [u -> v] where [v] dominates [u] (loop back edges). *)
val back_edges : t -> (string * string) list

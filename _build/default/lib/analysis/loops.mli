(** Natural-loop detection from back edges. *)

type loop = {
  l_header : string;
  l_latch : string;  (** source of the back edge *)
  l_blocks : string list;  (** including header and latch *)
  l_depth : int;  (** 1 = outermost *)
}

(** Blocks of the natural loop of one back edge. *)
val natural_loop : Domtree.t -> header:string -> latch:string -> string list

(** All natural loops of a function, with nesting depth. *)
val find : Vir.Func.t -> loop list

(** Loops whose header follows the [foreach_full_body] naming
    convention of the mini-ISPC lowering. *)
val foreach_loops : Vir.Func.t -> loop list

(** Scalar/vector instruction composition per fault-site category — the
    census behind the paper's Fig 10. *)

type mix = {
  scalar_count : int;
  vector_count : int;
}

val empty : mix

val total : mix -> int

(** Fraction of instructions that are vector instructions; 0 if empty. *)
val vector_fraction : mix -> float

(** Mix of the target instructions falling into one category. *)
val of_targets : Sites.target list -> Sites.category -> mix

(** Full Fig 10 row for a module: the mix per category, optionally
    restricted to named functions. *)
val census :
  ?funcs:string list -> Vir.Vmodule.t -> (Sites.category * mix) list

(** Detector overhead measurement (Fig 12's "Avg. Overhead" series).

    Runs a workload with and without detector blocks inserted and
    reports the dynamic-instruction overhead. Wall-clock overhead is
    measured by the Bechamel benches in [bench/main.ml] on the same
    pair of modules; dynamic instruction count is the deterministic
    proxy used in tests. *)

type measurement = {
  plain_instrs : int;
  detected_instrs : int;
  detectors_inserted : int;
}

let overhead_fraction m =
  if m.plain_instrs = 0 then 0.0
  else
    float_of_int (m.detected_instrs - m.plain_instrs)
    /. float_of_int m.plain_instrs

type detector_set = {
  with_foreach : bool;
  with_uniform : bool;
  placement : Foreach_invariants.placement;
  strengthen : bool;  (** add the exit-equality check (extension) *)
}

let paper_detectors =
  { with_foreach = true; with_uniform = false; placement = `Exit_only;
    strengthen = false }

let all_detectors =
  { with_foreach = true; with_uniform = true; placement = `Exit_only;
    strengthen = false }

let strengthened_detectors =
  { with_foreach = true; with_uniform = false; placement = `Exit_only;
    strengthen = true }

(* Apply the selected detector passes to [m] (in place); returns the
   number of insertion points. *)
let apply (set : detector_set) (m : Vir.Vmodule.t) : int =
  let n1 =
    if set.with_foreach then
      Foreach_invariants.run ~placement:set.placement
        ~strengthen:set.strengthen m
    else 0
  in
  let n2 = if set.with_uniform then Uniform_xor.run m else 0 in
  n1 + n2

(* A module transform suitable for {!Vulfi.Experiment.prepare}. *)
let transform (set : detector_set) (m : Vir.Vmodule.t) : Vir.Vmodule.t =
  ignore (apply set m);
  m

let run_once (w : Vulfi.Workload.t) (m : Vir.Vmodule.t) ~input : int =
  let st = Interp.Machine.create (Interp.Compile.compile_module m) in
  let det = Runtime.create () in
  Runtime.attach det st;
  let args, _ = w.Vulfi.Workload.w_setup ~input st in
  ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args);
  Interp.Machine.dyn_count st

(* Dynamic-instruction overhead of [set] on workload [w]. *)
let measure ?(set = paper_detectors) (w : Vulfi.Workload.t)
    (target : Vir.Target.t) ~input : measurement =
  let plain = w.Vulfi.Workload.w_build target in
  let plain_instrs = run_once w plain ~input in
  let detected = w.Vulfi.Workload.w_build target in
  let inserted = apply set detected in
  let detected_instrs = run_once w detected ~input in
  { plain_instrs; detected_instrs; detectors_inserted = inserted }

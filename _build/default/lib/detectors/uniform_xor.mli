(** Protection of uniform broadcast values (paper §III-B, Fig 9),
    implemented here although the paper defers it to future work.

    After every [insertelement]+[shufflevector] broadcast the pass
    emits a rotate/XOR/OR-reduce chain and a call to the uniform
    checker, which flags any lane diverging from its neighbour. *)

(** [run m] protects every broadcast in [m] (in place, re-verified);
    returns how many were protected. *)
val run : Vir.Vmodule.t -> int

lib/detectors/foreach_invariants.mli: Vir

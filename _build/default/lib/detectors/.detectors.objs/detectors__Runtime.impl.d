lib/detectors/runtime.ml: Int64 Interp Vulfi

lib/detectors/overhead.mli: Foreach_invariants Vir Vulfi

lib/detectors/uniform_xor.mli: Vir

lib/detectors/overhead.ml: Foreach_invariants Interp Runtime Uniform_xor Vir Vulfi

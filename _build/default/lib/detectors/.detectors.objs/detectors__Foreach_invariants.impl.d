lib/detectors/foreach_invariants.ml: Block Const Func Hashtbl Instr Int64 List Runtime String Verify Vir Vmodule Vtype

lib/detectors/uniform_xor.ml: Array Block Const Func Hashtbl Instr List Printf Runtime Verify Vir Vmodule Vtype

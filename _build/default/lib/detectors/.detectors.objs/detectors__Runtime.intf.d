lib/detectors/runtime.mli: Interp Vulfi

(** Detector overhead measurement (Fig 12's "Avg. Overhead" series) and
    detector-set plumbing for campaigns. *)

type measurement = {
  plain_instrs : int;  (** dynamic instructions without detectors *)
  detected_instrs : int;  (** with detectors *)
  detectors_inserted : int;
}

(** Relative overhead: (detected - plain) / plain. *)
val overhead_fraction : measurement -> float

(** Which detector passes to apply. *)
type detector_set = {
  with_foreach : bool;
  with_uniform : bool;
  placement : Foreach_invariants.placement;
  strengthen : bool;  (** add the exit-equality check (extension) *)
}

(** The paper's configuration: foreach invariants, exit-only. *)
val paper_detectors : detector_set

(** Everything: foreach invariants plus uniform-broadcast XOR checks. *)
val all_detectors : detector_set

(** Foreach invariants with the strengthened exit-equality check. *)
val strengthened_detectors : detector_set

(** Apply the selected passes to a module (in place); returns the
    number of insertion points. *)
val apply : detector_set -> Vir.Vmodule.t -> int

(** [transform set] as a module transform for
    {!Vulfi.Experiment.prepare}. *)
val transform : detector_set -> Vir.Vmodule.t -> Vir.Vmodule.t

(** Measure the dynamic-instruction overhead of [set] on one workload
    input (wall-clock overhead is measured by the Bechamel benches). *)
val measure :
  ?set:detector_set ->
  Vulfi.Workload.t ->
  Vir.Target.t ->
  input:int ->
  measurement

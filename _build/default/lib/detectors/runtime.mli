(** Runtime side of the compiler-derived error detectors. Detection is
    recorded rather than aborting, so an experiment reports both the
    outcome and whether a detector flagged it (as Fig 12 measures). *)

(** Extern name of the Fig 8 foreach-invariant check. *)
val check_foreach_name : string

(** Extern name of the strengthened exit-equality check (extension). *)
val check_foreach_exact_name : string

(** Extern name of the uniform-broadcast lane-equality check (§III-B). *)
val check_uniform_name : string

(** Extern name of the source-level [assert] lowering. *)
val assert_name : string

type t = {
  mutable foreach_violations : int;
  mutable uniform_violations : int;
  mutable assert_violations : int;
}

val create : unit -> t

(** Did any detector fire since the last {!reset}? *)
val flagged : t -> bool

val reset : t -> unit

(** [checkInvariantsForeachFullBody(new_counter, aligned_end, Vl)]:
    Fig 8's three loop invariants, validated on loop exit. *)
val handle_check_foreach :
  t -> Interp.Machine.state -> Interp.Vvalue.t list ->
  Interp.Vvalue.t option

(** Strengthened exit invariant: [new_counter == aligned_end]. *)
val handle_check_foreach_exact :
  t -> Interp.Machine.state -> Interp.Vvalue.t list ->
  Interp.Vvalue.t option

(** Uniform-broadcast check: a non-zero OR-reduced XOR means some lane
    differed. *)
val handle_check_uniform :
  t -> Interp.Machine.state -> Interp.Vvalue.t list ->
  Interp.Vvalue.t option

(** Source-level assert: the argument is an all-lanes-ok flag. *)
val handle_assert :
  t -> Interp.Machine.state -> Interp.Vvalue.t list ->
  Interp.Vvalue.t option

(** Register all detector externs on a machine. *)
val attach : t -> Interp.Machine.state -> unit

(** Fresh detector state packaged as experiment hooks. *)
val hooks : unit -> Vulfi.Experiment.hooks

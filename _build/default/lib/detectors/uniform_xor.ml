(** Protection of uniform broadcast values (§III-B, Fig 9).

    ISPC shares a uniform value across lanes by storing it in a scalar
    register and broadcasting it ([insertelement] into lane 0 of undef
    followed by a zero [shufflevector]). A bit flip in any lane of the
    broadcast register breaks the all-lanes-equal invariant, which can
    be checked cheaply by XORing each lane with its neighbour and
    OR-reducing the differences.

    The paper describes this detector and defers implementation to
    future work; this pass implements it: after every broadcast pattern
    it inserts

      rot  = shufflevector v, undef, <1, 2, ..., n-1, 0>
      diff = xor v_bits, rot_bits
      or   = llvm.vector.reduce.or(diff)
      ne   = icmp ne or, 0
      call @__vulfi_check_uniform(zext ne)

    and the runtime flags any non-zero result. *)

open Vir

(* Recognise the Fig 9 idiom: shufflevector whose first operand is an
   insertelement into lane 0 of undef and whose mask is all zeros. *)
let is_broadcast (def_tbl : (Instr.reg, Instr.t) Hashtbl.t) (i : Instr.t) =
  match i.Instr.op with
  | Instr.Shufflevector (Instr.Reg (src, _), Instr.Imm (Const.Cundef _), mask)
    when Array.for_all (( = ) 0) mask -> (
    match Hashtbl.find_opt def_tbl src with
    | Some
        {
          Instr.op =
            Instr.Insertelement
              (Instr.Imm (Const.Cundef _), _, Instr.Imm (Const.Cint (_, 0L)));
          _;
        } ->
      true
    | _ -> false)
  | _ -> false

(* Build the checker chain for broadcast register [reg] of type [ty]. *)
let build_check (f : Func.t) (reg : Instr.reg) (ty : Vtype.t) :
    Instr.t list =
  let n = Vtype.lanes ty in
  let s = Vtype.elem ty in
  let mk name ty op =
    let id = if Vtype.is_void ty then -1 else Func.fresh_reg f in
    ({ Instr.id; name = Printf.sprintf "__det_%s%d" name (max id 0); ty; op }, id)
  in
  let int_s =
    match s with
    | Vtype.F32 -> Vtype.I32
    | Vtype.F64 -> Vtype.I64
    | other -> other
  in
  let int_ty = Vtype.Vector (n, int_s) in
  let src = Instr.Reg (reg, ty) in
  let as_int, cast_instrs =
    if int_s = s then (src, [])
    else
      let c, cid = mk "bits" int_ty (Instr.Cast (Instr.Bitcast, src)) in
      (Instr.Reg (cid, int_ty), [ c ])
  in
  let rot_mask = Array.init n (fun k -> (k + 1) mod n) in
  let rot, rot_id =
    mk "rot" int_ty
      (Instr.Shufflevector (as_int, Instr.Imm (Const.Cundef int_ty), rot_mask))
  in
  let diff, diff_id =
    mk "diff" int_ty
      (Instr.Ibinop (Instr.Xor, as_int, Instr.Reg (rot_id, int_ty)))
  in
  ignore diff_id;
  let orred, or_id =
    mk "or"
      (Vtype.Scalar int_s)
      (Instr.Call
         ( Printf.sprintf "llvm.vector.reduce.or.v%d%s" n
             (Vtype.scalar_name int_s),
           [ Instr.Reg (diff.Instr.id, int_ty) ] ))
  in
  ignore or_id;
  let ne, ne_id =
    mk "ne" Vtype.bool_ty
      (Instr.Icmp
         ( Instr.Ine,
           Instr.Reg (orred.Instr.id, Vtype.Scalar int_s),
           Instr.Imm (Const.zero int_s) ))
  in
  let z, z_id =
    mk "z" Vtype.i32
      (Instr.Cast (Instr.Zext, Instr.Reg (ne_id, Vtype.bool_ty)))
  in
  ignore z_id;
  let call, _ =
    mk "call" Vtype.Void
      (Instr.Call
         (Runtime.check_uniform_name, [ Instr.Reg (z.Instr.id, Vtype.i32) ]))
  in
  cast_instrs @ [ rot; diff; orred; ne; z; call ]

(* Insert a checker after every broadcast in [m]; returns how many were
   protected. *)
let run (m : Vmodule.t) : int =
  Vmodule.declare_extern m ~name:Runtime.check_uniform_name
    ~arg_tys:[ Vtype.i32 ] ~ret:Vtype.Void;
  let count = ref 0 in
  List.iter
    (fun f ->
      let def_tbl = Func.def_table f in
      List.iter
        (fun b ->
          (* Collect first: insertion invalidates the iteration. *)
          let broadcasts =
            List.filter_map
              (fun (i : Instr.t) ->
                if Instr.defines i && is_broadcast def_tbl i then
                  Some (i.Instr.id, i.Instr.ty)
                else None)
              b.Block.instrs
          in
          List.iter
            (fun (reg, ty) ->
              let chain = build_check f reg ty in
              Block.insert_after b ~after:reg chain;
              incr count)
            broadcasts)
        f.Func.blocks)
    m.Vmodule.funcs;
  Verify.check_module m;
  !count

(** Automatic insertion of foreach loop-invariant detectors (§III-A).

    For every lowered [foreach] loop, insert a
    [foreach_fullbody_check_invariants] block on the exit edge of
    [foreach_full_body] (Fig 7). The block calls
    [__vulfi_check_foreach(new_counter, aligned_end, Vl)], whose runtime
    validates Fig 8's invariants:

      1. new_counter >= 0
      2. new_counter <= aligned_end
      3. new_counter % Vl == 0

    The paper checks only on loop exit to keep the overhead low; the
    pass optionally checks on every iteration for the ablation study
    ([~placement:`Every_iteration]). *)

open Vir

type found_foreach = {
  ff_header : string;        (** label of foreach_full_body *)
  ff_latch : string;         (** block carrying the backedge + exit edge *)
  ff_exit : string;          (** exit successor (partial_inner_all_outer) *)
  ff_new_counter : Instr.reg;
  ff_aligned_end : Instr.reg;
  ff_vl : int;
}

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let is_full_body_label l =
  has_prefix "foreach_full_body" l
  && not
       (let rec contains i =
          i + 6 <= String.length l
          && (String.sub l i 6 = ".lr.ph" || contains (i + 1))
        in
        String.length l >= 6 && contains 0)

(* Pattern-match the code generator's output, the way the prototype pass
   in the paper recognises ISPC's lowering: find blocks named
   foreach_full_body*, locate the conditional backedge, and recover
   new_counter (the add feeding the exit compare) and aligned_end (the
   compare's other operand). The structured {!Func.foreach_meta}
   recorded by codegen is used only as a cross-check in tests. *)
let detect (f : Func.t) : found_foreach list =
  let def_tbl = Func.def_table f in
  List.filter_map
    (fun header_blk ->
      let header = header_blk.Block.label in
      if not (is_full_body_label header) then None
      else
        (* Find the latch: a block whose condbr targets the header. *)
        let latch_opt =
          List.find_opt
            (fun b ->
              match Block.terminator b with
              | Some { Instr.op = Instr.Condbr (_, l1, l2); _ } ->
                l1 = header || l2 = header
              | _ -> false)
            f.Func.blocks
        in
        match latch_opt with
        | None -> None
        | Some latch -> (
          match Block.terminator latch with
          | Some
              {
                Instr.op = Instr.Condbr (Instr.Reg (cond_reg, _), l1, l2);
                _;
              } -> (
            let exit = if l1 = header then l2 else l1 in
            match Hashtbl.find_opt def_tbl cond_reg with
            | Some
                {
                  Instr.op =
                    Instr.Icmp
                      ( Instr.Islt,
                        Instr.Reg (nc, _),
                        Instr.Reg (ae, _) );
                  _;
                } -> (
              (* new_counter = add counter, Vl *)
              match Hashtbl.find_opt def_tbl nc with
              | Some
                  {
                    Instr.op =
                      Instr.Ibinop
                        ( Instr.Add,
                          _,
                          Instr.Imm (Const.Cint (_, vl)) );
                    _;
                  } ->
                Some
                  {
                    ff_header = header;
                    ff_latch = latch.Block.label;
                    ff_exit = exit;
                    ff_new_counter = nc;
                    ff_aligned_end = ae;
                    ff_vl = Int64.to_int vl;
                  }
              | _ -> None)
            | _ -> None)
          | _ -> None))
    f.Func.blocks

(* Split the latch->exit edge with a detector block. With [strengthen]
   an additional exit-equality check (new_counter == aligned_end) is
   emitted — an extension beyond the paper's Fig 8 that also traps
   fault-induced early exits. *)
let insert_check_block ?(strengthen = false) (f : Func.t)
    (ff : found_foreach) =
  let check_label =
    Func.fresh_label f "foreach_fullbody_check_invariants"
  in
  let call =
    {
      Instr.id = -1;
      name = "__det_check";
      ty = Vtype.Void;
      op =
        Instr.Call
          ( Runtime.check_foreach_name,
            [
              Instr.Reg (ff.ff_new_counter, Vtype.i32);
              Instr.Reg (ff.ff_aligned_end, Vtype.i32);
              Instr.Imm (Const.i32 ff.ff_vl);
            ] );
    }
  in
  let exact_calls =
    if strengthen then
      [
        {
          Instr.id = -1;
          name = "__det_check_exact";
          ty = Vtype.Void;
          op =
            Instr.Call
              ( Runtime.check_foreach_exact_name,
                [
                  Instr.Reg (ff.ff_new_counter, Vtype.i32);
                  Instr.Reg (ff.ff_aligned_end, Vtype.i32);
                ] );
        };
      ]
    else []
  in
  let br =
    { Instr.id = -1; name = ""; ty = Vtype.Void; op = Instr.Br ff.ff_exit }
  in
  let check_blk =
    Block.create ~instrs:((call :: exact_calls) @ [ br ]) check_label
  in
  (* Retarget the latch's exit edge. *)
  let latch = Func.find_block f ff.ff_latch in
  Block.retarget latch (fun l ->
      if l = ff.ff_exit then check_label else l);
  (* Fix incoming labels of phis in the exit block. *)
  let exit_blk = Func.find_block f ff.ff_exit in
  Block.map_instrs exit_blk (fun i ->
      match i.Instr.op with
      | Instr.Phi incoming ->
        {
          i with
          Instr.op =
            Instr.Phi
              (List.map
                 (fun (l, v) ->
                   ((if l = ff.ff_latch then check_label else l), v))
                 incoming);
        }
      | _ -> i);
  Func.add_block f check_blk;
  check_label

(* Additionally check the invariants on every iteration (ablation). *)
let insert_per_iteration_check (f : Func.t) (ff : found_foreach) =
  let latch = Func.find_block f ff.ff_latch in
  let call =
    {
      Instr.id = -1;
      name = "__det_check_iter";
      ty = Vtype.Void;
      op =
        Instr.Call
          ( Runtime.check_foreach_name,
            [
              Instr.Reg (ff.ff_new_counter, Vtype.i32);
              Instr.Reg (ff.ff_aligned_end, Vtype.i32);
              Instr.Imm (Const.i32 ff.ff_vl);
            ] );
    }
  in
  (* new_counter <= aligned_end fails on the final iteration where
     new_counter = aligned_end exactly — that is still <=, fine. *)
  Block.insert_before_terminator latch [ call ]

type placement = [ `Exit_only | `Every_iteration ]

(* Run the pass over a module. Returns the number of detector blocks
   inserted. The module is modified in place and re-verified.
   [strengthen] adds the exit-equality check (extension). *)
let run ?(placement : placement = `Exit_only) ?(strengthen = false)
    (m : Vmodule.t) : int =
  Vmodule.declare_extern m ~name:Runtime.check_foreach_name
    ~arg_tys:[ Vtype.i32; Vtype.i32; Vtype.i32 ]
    ~ret:Vtype.Void;
  if strengthen then
    Vmodule.declare_extern m ~name:Runtime.check_foreach_exact_name
      ~arg_tys:[ Vtype.i32; Vtype.i32 ] ~ret:Vtype.Void;
  let count = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun ff ->
          (match placement with
          | `Exit_only -> ignore (insert_check_block ~strengthen f ff)
          | `Every_iteration ->
            insert_per_iteration_check f ff;
            ignore (insert_check_block ~strengthen f ff));
          incr count)
        (detect f))
    m.Vmodule.funcs;
  Verify.check_module m;
  !count

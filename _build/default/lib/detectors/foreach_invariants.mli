(** Automatic insertion of foreach loop-invariant detectors (paper
    §III-A, Figs 7 and 8). *)

(** A recognised foreach lowering, recovered by pattern-matching the
    code generator's output (the structured metadata in
    {!Vir.Func.foreach_meta} is only a cross-check). *)
type found_foreach = {
  ff_header : string;  (** label of foreach_full_body *)
  ff_latch : string;  (** block carrying the backedge + exit edge *)
  ff_exit : string;  (** exit successor (partial_inner_all_outer) *)
  ff_new_counter : Vir.Instr.reg;
  ff_aligned_end : Vir.Instr.reg;
  ff_vl : int;
}

(** Recognise every lowered foreach loop in a function. *)
val detect : Vir.Func.t -> found_foreach list

type placement =
  [ `Exit_only  (** the paper's choice: check once, on loop exit *)
  | `Every_iteration  (** ablation: also check on every iteration *) ]

(** [run ?placement ?strengthen m] inserts a
    [foreach_fullbody_check_invariants] block on the exit edge of every
    recognised foreach loop (splitting the edge and fixing phis), plus
    per-iteration checks when requested. [strengthen] adds the
    exit-equality check [new_counter == aligned_end] — an extension
    beyond Fig 8 that also traps fault-induced early exits. The module
    is modified in place and re-verified; returns the number of loops
    protected. *)
val run : ?placement:placement -> ?strengthen:bool -> Vir.Vmodule.t -> int

(** The benchmark registry: the nine Table I programs plus the three
    §IV-E micro-benchmarks, in the paper's order. *)

(* Table I order: Parvec, ISPC-distribution, SCL. *)
let paper_benchmarks : Harness.benchmark list =
  [
    Fluidanimate.benchmark;
    Swaptions.benchmark;
    Blackscholes.benchmark;
    Sorting.benchmark;
    Stencil.benchmark;
    Raytracing.benchmark;
    Chebyshev.benchmark;
    Jacobi.benchmark;
    Conjugate_gradient.benchmark;
  ]

let micro_benchmarks : Harness.benchmark list = Micro.all

let all = paper_benchmarks @ micro_benchmarks

let find name =
  List.find_opt
    (fun (b : Harness.benchmark) ->
      String.lowercase_ascii b.Harness.bench.Vulfi.Workload.w_name
      = String.lowercase_ascii name)
    all

let names =
  List.map
    (fun (b : Harness.benchmark) -> b.Harness.bench.Vulfi.Workload.w_name)
    all

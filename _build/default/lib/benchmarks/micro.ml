(** The paper's three micro-benchmarks for the detector study (§IV-E):
    vector copy (Fig 6's vcopy_ispc), vector dot product, vector sum. *)

let vcopy_source =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[],\n\
   uniform int n) {\n\
   foreach (i = 0 ... n) {\n\
   a2[i] = a1[i];\n\
   }\n\
   }"

let dot_source =
  "export void dot_ispc(uniform float a[], uniform float b[],\n\
   uniform float out[], uniform int n) {\n\
   varying float partial = 0.0;\n\
   foreach (i = 0 ... n) {\n\
   partial += a[i] * b[i];\n\
   }\n\
   out[0] = reduce_add(partial);\n\
   }"

let vsum_source =
  "export void vsum_ispc(uniform float a[], uniform float out[],\n\
   uniform int n) {\n\
   varying float partial = 0.0;\n\
   foreach (i = 0 ... n) {\n\
   partial += a[i];\n\
   }\n\
   out[0] = reduce_add(partial);\n\
   }"

(* The micro study uses modest lengths so that 2000-experiment sweeps
   stay fast; both lengths exercise full and partial foreach blocks. *)
let sizes = [| 100; 1000 |]

let int_data input =
  Prng.i32_array (Prng.create (801 + input)) sizes.(input) 100000

let f32_data seed input =
  Prng.f32_array (Prng.create (seed + input)) sizes.(input) (-1.0) 1.0

let vcopy =
  Harness.make ~name:"vector copy" ~fn:"vcopy_ispc"
    ~inputs:(Array.length sizes) ~language:"ISPC" ~suite:"Micro"
    ~input_desc:"1D array length: [100, 1000]" ~source:vcopy_source
    [
      Harness.In_i32 int_data;
      Harness.Out_i32 (fun input -> sizes.(input));
      Harness.Scalar_i (fun input -> sizes.(input));
    ]

let dot_product =
  Harness.make ~name:"dot product" ~fn:"dot_ispc"
    ~inputs:(Array.length sizes) ~language:"ISPC" ~suite:"Micro"
    ~input_desc:"1D array length: [100, 1000]" ~source:dot_source
    [
      Harness.In_f32 (f32_data 811);
      Harness.In_f32 (f32_data 821);
      Harness.Out_f32 (fun _ -> 1);
      Harness.Scalar_i (fun input -> sizes.(input));
    ]

let vsum =
  Harness.make ~name:"vector sum" ~fn:"vsum_ispc"
    ~inputs:(Array.length sizes) ~language:"ISPC" ~suite:"Micro"
    ~input_desc:"1D array length: [100, 1000]" ~source:vsum_source
    [
      Harness.In_f32 (f32_data 831);
      Harness.Out_f32 (fun _ -> 1);
      Harness.Scalar_i (fun input -> sizes.(input));
    ]

let all = [ vcopy; dot_product; vsum ]

(* OCaml references for the test suite. *)
let vcopy_reference ~input = int_data input

let dot_reference ~input =
  let a = f32_data 811 input and b = f32_data 821 input in
  let s = ref 0.0 in
  Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
  !s

let vsum_reference ~input =
  Array.fold_left ( +. ) 0.0 (f32_data 831 input)

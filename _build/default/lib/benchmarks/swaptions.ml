(** Swaptions — the PARVEC benchmark (vectorized PARSEC HJM Monte
    Carlo). Reproduced as a short-rate Monte-Carlo pricer: paths are
    vectorized across lanes, each path evolves a rate with an integer
    LCG driving the shocks (the integer/float mix is what distinguishes
    this kernel in Fig 10), discounts, and the payoff is averaged with
    a cross-lane reduction. *)

let source =
  "export void swaptions_ispc(uniform float strikes[],\n\
   uniform float prices[], uniform int nswaptions, uniform int nsims,\n\
   uniform int nsteps) {\n\
   for (uniform int s = 0; s < nswaptions; s += 1) {\n\
   uniform float strike = strikes[s];\n\
   varying float payoff_acc = 0.0;\n\
   foreach (path = 0 ... nsims) {\n\
   int seed = path * 747796405 + s * 12345 + 1013904223;\n\
   float rate = 0.05;\n\
   float disc = 1.0;\n\
   for (uniform int t = 0; t < nsteps; t += 1) {\n\
   seed = seed * 747796405 + 1013904223;\n\
   int bits = (seed >> 8) & 65535;\n\
   float u = (float) bits * 0.0000152587890625;\n\
   rate = rate + 0.01 * (u - 0.5);\n\
   if (rate < 0.001) { rate = 0.001; }\n\
   disc = disc * (1.0 - rate * 0.1);\n\
   }\n\
   float payoff = rate - strike;\n\
   if (payoff < 0.0) { payoff = 0.0; }\n\
   payoff_acc += payoff * disc;\n\
   }\n\
   prices[s] = reduce_add(payoff_acc) / (float) nsims;\n\
   }\n\
   }"

(* Paper input: swaptions [16,64] x simulations [100,200] (scaled). *)
let configs = [| (4, 16); (6, 32) |]

let nsteps = 12

let strikes input =
  let ns, _ = configs.(input) in
  Prng.f32_array (Prng.create (701 + input)) ns 0.01 0.09

(* Bit-faithful reference: 32-bit LCG via Int32, f32 rounding on every
   float step so that the expected prices match the kernel closely. *)
let reference ~input =
  let ns, nsims = configs.(input) in
  let ks = strikes input in
  let r32 = Interp.Bits.round_float Vir.Vtype.F32 in
  let lcg seed = Int32.add (Int32.mul seed 747796405l) 1013904223l in
  Array.init ns (fun s ->
      let acc = Array.make nsims 0.0 in
      for path = 0 to nsims - 1 do
        let seed =
          ref
            (Int32.add
               (Int32.add
                  (Int32.mul (Int32.of_int path) 747796405l)
                  (Int32.mul (Int32.of_int s) 12345l))
               1013904223l)
        in
        let rate = ref (r32 0.05) and disc = ref 1.0 in
        for _ = 1 to nsteps do
          seed := lcg !seed;
          let bits =
            Int32.to_int (Int32.logand (Int32.shift_right !seed 8) 65535l)
          in
          let u = r32 (r32 (float_of_int bits) *. r32 0.0000152587890625) in
          rate := r32 (!rate +. r32 (r32 0.01 *. r32 (u -. 0.5)));
          if !rate < 0.001 then rate := r32 0.001;
          disc := r32 (!disc *. r32 (1.0 -. r32 (!rate *. 0.1)))
        done;
        let payoff = max 0.0 (r32 (!rate -. ks.(s))) in
        acc.(path) <- r32 (payoff *. !disc)
      done;
      (* reduce_add folds lane-major; a plain sum is close enough for
         the tolerance-based tests *)
      Array.fold_left ( +. ) 0.0 acc /. float_of_int nsims)

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"Swaptions" ~fn:"swaptions_ispc"
    ~inputs:(Array.length configs) ~language:"C++" ~suite:"Parvec"
    ~input_desc:"Swaptions [4,6] x Simulations [16,32]" ~source
    [
      Harness.In_f32 strikes;
      Harness.Out_f32 (fun input -> fst configs.(input));
      Harness.Scalar_i (fun input -> fst configs.(input));
      Harness.Scalar_i (fun input -> snd configs.(input));
      Harness.Scalar_i (fun _ -> nsteps);
    ]

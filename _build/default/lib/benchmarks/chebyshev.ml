(** Chebyshev interpolation coefficients — from Burkardt's SCL, as in
    the paper. For sampled function values f(x_i) at the Chebyshev
    points, computes c_j = (2/n) * sum_i f_i * cos(pi*j*(i+1/2)/n),
    vectorized over the coefficient index j. *)

let source =
  "export void chebyshev_coef(uniform float fx[], uniform float c[],\n\
   uniform int n) {\n\
   uniform float pi = 3.14159265358979;\n\
   foreach (j = 0 ... n) {\n\
   float total = 0.0;\n\
   float fj = (float) j;\n\
   for (uniform int i = 0; i < n; i += 1) {\n\
   uniform float fi = (float) i + 0.5;\n\
   total += fx[i] * cos(fj * fi * pi / (float) n);\n\
   }\n\
   c[j] = total * 2.0 / (float) n;\n\
   }\n\
   }"

(* Paper input: degree 1..256 (scaled). *)
let degrees = [| 8; 16; 32; 64 |]

let samples input =
  let n = degrees.(input) in
  (* f(x) = exp(x) sampled at Chebyshev points on [-1, 1] *)
  Array.init n (fun i ->
      let x = cos (Float.pi *. (float_of_int i +. 0.5) /. float_of_int n) in
      Interp.Bits.round_float Vir.Vtype.F32 (exp x))

let reference ~input =
  let n = degrees.(input) in
  let fx = samples input in
  Array.init n (fun j ->
      let total = ref 0.0 in
      for i = 0 to n - 1 do
        total :=
          !total
          +. fx.(i)
             *. cos
                  (float_of_int j
                  *. (float_of_int i +. 0.5)
                  *. 3.14159265358979 /. float_of_int n)
      done;
      !total *. 2.0 /. float_of_int n)

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"Chebyshev" ~fn:"chebyshev_coef"
    ~inputs:(Array.length degrees) ~language:"ISPC" ~suite:"SCL"
    ~input_desc:"Degree: [8, 64]" ~source
    [
      Harness.In_f32 samples;
      Harness.Out_f32 (fun input -> degrees.(input));
      Harness.Scalar_i (fun input -> degrees.(input));
    ]

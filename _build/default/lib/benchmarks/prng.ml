(** Deterministic input generation for benchmark workloads.

    A small splitmix64 generator, independent of OCaml's [Random], so
    that benchmark inputs are stable across OCaml versions and runs —
    campaign results must be reproducible bit for bit. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_i64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  Int64.to_int (Int64.unsigned_rem (next_i64 t) (Int64.of_int bound))

(* Uniform float in [0, 1), rounded to f32 so VM inputs are exact. *)
let f32 t =
  let mant = Int64.to_float (Int64.shift_right_logical (next_i64 t) 40) in
  Interp.Bits.round_float Vir.Vtype.F32 (mant /. 16777216.0)

(* Uniform f32 in [lo, hi). *)
let f32_range t lo hi =
  Interp.Bits.round_float Vir.Vtype.F32 (lo +. (f32 t *. (hi -. lo)))

let f32_array t n lo hi = Array.init n (fun _ -> f32_range t lo hi)

let i32_array t n bound = Array.init n (fun _ -> int t bound)

(** Stencil — the ISPC-distribution benchmark: an iterated 2D 5-point
    stencil. Inner rows are vectorized with contiguous (masked in the
    remainder) vector loads/stores; the paper reports the highest SDC
    rates for this kernel, consistent with every loaded value flowing
    straight into the output. *)

let source =
  "export void stencil_ispc(uniform float a[], uniform float b[],\n\
   uniform int w, uniform int h, uniform int steps) {\n\
   for (uniform int t = 0; t < steps; t += 1) {\n\
   for (uniform int y = 1; y < h - 1; y += 1) {\n\
   uniform int row = y * w;\n\
   uniform int xhi = w - 1;\n\
   foreach (x = 1 ... xhi) {\n\
   b[row + x] = 0.2 * (a[row + x] + a[row + x - 1] + a[row + x + 1]\n\
   + a[row - w + x] + a[row + w + x]);\n\
   }\n\
   }\n\
   for (uniform int y2 = 1; y2 < h - 1; y2 += 1) {\n\
   uniform int row2 = y2 * w;\n\
   uniform int xhi2 = w - 1;\n\
   foreach (x2 = 1 ... xhi2) {\n\
   a[row2 + x2] = b[row2 + x2];\n\
   }\n\
   }\n\
   }\n\
   }"

(* Paper input: 2D array 16x16 .. 64x64. *)
let dims = [| (16, 16); (24, 24); (32, 32) |]

let steps = 4

let grid input =
  let w, h = dims.(input) in
  Prng.f32_array (Prng.create (211 + input)) (w * h) 0.0 1.0

let reference ~input =
  let w, h = dims.(input) in
  let a = Array.map (fun x -> x) (grid input) in
  let b = Array.make (w * h) 0.0 in
  for _ = 1 to steps do
    for y = 1 to h - 2 do
      for x = 1 to w - 2 do
        b.((y * w) + x) <-
          0.2
          *. (a.((y * w) + x) +. a.((y * w) + x - 1)
             +. a.((y * w) + x + 1)
             +. a.(((y - 1) * w) + x)
             +. a.(((y + 1) * w) + x))
      done
    done;
    for y = 1 to h - 2 do
      for x = 1 to w - 2 do
        a.((y * w) + x) <- b.((y * w) + x)
      done
    done
  done;
  a

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"Stencil" ~fn:"stencil_ispc"
    ~inputs:(Array.length dims) ~language:"ISPC" ~suite:"ISPC"
    ~input_desc:"2D array: 16x16 .. 32x32" ~source
    [
      Harness.Inout_f32 grid;
      Harness.Scratch_f32 (fun input -> let w, h = dims.(input) in w * h);
      Harness.Scalar_i (fun input -> fst dims.(input));
      Harness.Scalar_i (fun input -> snd dims.(input));
      Harness.Scalar_i (fun _ -> steps);
    ]

(** Declarative construction of {!Vulfi.Workload.t} values.

    A benchmark declares its entry-point arguments as a [spec] list;
    the harness materialises them in the machine's memory per input
    index and wires output readback for the SDC comparison. *)

type arg =
  | In_f32 of (int -> float array)   (** input data, not compared *)
  | In_i32 of (int -> int array)
  | Out_f32 of (int -> int)          (** zero-initialised output of length *)
  | Out_i32 of (int -> int)
  | Inout_f32 of (int -> float array)  (** initial data, compared after *)
  | Inout_i32 of (int -> int array)
  | Scratch_f32 of (int -> int)
      (** zero-initialised workspace of length, NOT part of the
          compared output (the paper compares recorded program output,
          not intermediate buffers) *)
  | Scratch_i32 of (int -> int)
  | Scalar_i of (int -> int)
  | Scalar_f of (int -> float)

type benchmark = {
  bench : Vulfi.Workload.t;
  language : string;      (** Table I's "Language" column *)
  suite : string;         (** Parvec / ISPC / SCL / Micro *)
  input_desc : string;    (** Table I's "Test Input" column *)
}

let make_workload ?(tolerance = 0.0) ~name ~fn ~inputs (spec : arg list) :
    Vulfi.Workload.t =
  let setup ~input st =
    let mem = Interp.Machine.memory st in
    let readers = ref [] in
    let args =
      List.map
        (fun a ->
          let alloc_f32 data compare =
            let n = Array.length data in
            let base =
              Interp.Memory.alloc mem ~name:"arg" ~bytes:(4 * max n 1)
            in
            Interp.Memory.write_f32_array mem base data;
            if compare then
              readers := `F32 (base, n) :: !readers;
            Interp.Vvalue.of_ptr base
          in
          let alloc_i32 data compare =
            let n = Array.length data in
            let base =
              Interp.Memory.alloc mem ~name:"arg" ~bytes:(4 * max n 1)
            in
            Interp.Memory.write_i32_array mem base data;
            if compare then readers := `I32 (base, n) :: !readers;
            Interp.Vvalue.of_ptr base
          in
          match a with
          | In_f32 f -> alloc_f32 (f input) false
          | In_i32 f -> alloc_i32 (f input) false
          | Out_f32 f -> alloc_f32 (Array.make (max (f input) 1) 0.0) true
          | Out_i32 f -> alloc_i32 (Array.make (max (f input) 1) 0) true
          | Scratch_f32 f -> alloc_f32 (Array.make (max (f input) 1) 0.0) false
          | Scratch_i32 f -> alloc_i32 (Array.make (max (f input) 1) 0) false
          | Inout_f32 f -> alloc_f32 (f input) true
          | Inout_i32 f -> alloc_i32 (f input) true
          | Scalar_i f -> Interp.Vvalue.of_i32 (f input)
          | Scalar_f f -> Interp.Vvalue.of_f32 (f input))
        spec
    in
    let readers = List.rev !readers in
    let read_output () =
      {
        Vulfi.Outcome.o_f32 =
          List.filter_map
            (function
              | `F32 (b, n) -> Some (Interp.Memory.read_f32_array mem b n)
              | `I32 _ -> None)
            readers;
        o_i32 =
          List.filter_map
            (function
              | `I32 (b, n) -> Some (Interp.Memory.read_i32_array mem b n)
              | `F32 _ -> None)
            readers;
        o_ret = None;
      }
    in
    (args, read_output)
  in
  { Vulfi.Workload.w_name = name; w_fn = fn; w_inputs = inputs;
    w_setup = setup; w_out_tolerance = tolerance;
    w_build = (fun _ -> invalid_arg "harness: w_build unset") }

(* Note: passes mutate modules in place, so w_build always compiles a
   fresh module from source rather than caching. *)
let make ?tolerance ~name ~fn ~inputs ~language ~suite ~input_desc ~source
    spec : benchmark =
  let w = make_workload ?tolerance ~name ~fn ~inputs spec in
  {
    bench =
      { w with Vulfi.Workload.w_build = (fun t -> Minispc.Driver.compile ~module_name:name t source) };
    language;
    suite;
    input_desc;
  }

(** Black-Scholes European option pricing — the ISPC-distribution
    benchmark from Table I. Vectorized over options; exercises float
    math intrinsics ([log]/[exp]/[sqrt]) and a varying branch in the
    cumulative-normal-distribution approximation. *)

let source =
  "export void blackscholes(uniform float S[], uniform float X[],\n\
   uniform float T[], uniform float result[],\n\
   uniform float r, uniform float v, uniform int n) {\n\
   foreach (i = 0 ... n) {\n\
   float Sv = S[i];\n\
   float Xv = X[i];\n\
   float Tv = T[i];\n\
   float sqt = sqrt(Tv);\n\
   float d1 = (log(Sv / Xv) + (r + v * v * 0.5) * Tv) / (v * sqt);\n\
   float d2 = d1 - v * sqt;\n\
   // CND(d1) via the Abramowitz-Stegun polynomial\n\
   float L1 = abs(d1);\n\
   float k1 = 1.0 / (1.0 + 0.2316419 * L1);\n\
   float p1 = ((((1.330274429 * k1 - 1.821255978) * k1 + 1.781477937)\n\
   * k1 - 0.356563782) * k1 + 0.31938153) * k1;\n\
   float w1 = 1.0 - 0.39894228 * exp(0.0 - L1 * L1 * 0.5) * p1;\n\
   if (d1 < 0.0) { w1 = 1.0 - w1; }\n\
   float L2 = abs(d2);\n\
   float k2 = 1.0 / (1.0 + 0.2316419 * L2);\n\
   float p2 = ((((1.330274429 * k2 - 1.821255978) * k2 + 1.781477937)\n\
   * k2 - 0.356563782) * k2 + 0.31938153) * k2;\n\
   float w2 = 1.0 - 0.39894228 * exp(0.0 - L2 * L2 * 0.5) * p2;\n\
   if (d2 < 0.0) { w2 = 1.0 - w2; }\n\
   result[i] = Sv * w1 - Xv * exp(0.0 - r * Tv) * w2;\n\
   }\n\
   }"

(* Paper input: "sim small / sim medium / sim large". *)
let sizes = [| 64; 128; 256 |]

let rate = 0.02

let volatility = 0.30

let spots input =
  Prng.f32_array (Prng.create (11 + input)) sizes.(input) 20.0 120.0

let strikes input =
  Prng.f32_array (Prng.create (23 + input)) sizes.(input) 20.0 120.0

let expiries input =
  Prng.f32_array (Prng.create (37 + input)) sizes.(input) 0.25 4.0

(* Double-precision reference implementation. *)
let reference ~input =
  let s = spots input and x = strikes input and t = expiries input in
  let cnd d =
    let l = abs_float d in
    let k = 1.0 /. (1.0 +. (0.2316419 *. l)) in
    let p =
      ((((((1.330274429 *. k) -. 1.821255978) *. k) +. 1.781477937) *. k
        -. 0.356563782)
       *. k
      +. 0.31938153)
      *. k
    in
    let w = 1.0 -. (0.39894228 *. exp (-.l *. l *. 0.5) *. p) in
    if d < 0.0 then 1.0 -. w else w
  in
  Array.init sizes.(input) (fun i ->
      let sv = s.(i) and xv = x.(i) and tv = t.(i) in
      let sqt = sqrt tv in
      let d1 =
        (log (sv /. xv) +. ((rate +. (volatility *. volatility *. 0.5)) *. tv))
        /. (volatility *. sqt)
      in
      let d2 = d1 -. (volatility *. sqt) in
      (sv *. cnd d1) -. (xv *. exp (-.rate *. tv) *. cnd d2))

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"Blackscholes" ~fn:"blackscholes"
    ~inputs:(Array.length sizes) ~language:"ISPC" ~suite:"ISPC"
    ~input_desc:"sim_small / sim_medium / sim_large" ~source
    [
      Harness.In_f32 spots;
      Harness.In_f32 strikes;
      Harness.In_f32 expiries;
      Harness.Out_f32 (fun input -> sizes.(input));
      Harness.Scalar_f (fun _ -> rate);
      Harness.Scalar_f (fun _ -> volatility);
      Harness.Scalar_i (fun input -> sizes.(input));
    ]

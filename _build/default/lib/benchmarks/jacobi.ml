(** Jacobi iteration for the 2D Poisson equation — from Burkardt's
    scientific computing library (SCL), re-implemented in mini-ISPC as
    in the paper. Structurally similar to Stencil but with a source
    term and quarter-weighting. *)

let source =
  "export void jacobi_ispc(uniform float u[], uniform float unew[],\n\
   uniform float f[], uniform int n, uniform int iters) {\n\
   for (uniform int t = 0; t < iters; t += 1) {\n\
   for (uniform int y = 1; y < n - 1; y += 1) {\n\
   uniform int row = y * n;\n\
   uniform int hi = n - 1;\n\
   foreach (x = 1 ... hi) {\n\
   unew[row + x] = 0.25 * (u[row + x - 1] + u[row + x + 1]\n\
   + u[row - n + x] + u[row + n + x] + f[row + x]);\n\
   }\n\
   }\n\
   for (uniform int y2 = 1; y2 < n - 1; y2 += 1) {\n\
   uniform int row2 = y2 * n;\n\
   uniform int hi2 = n - 1;\n\
   foreach (x2 = 1 ... hi2) {\n\
   u[row2 + x2] = unew[row2 + x2];\n\
   }\n\
   }\n\
   }\n\
   }"

(* Paper input: 2D array 32x32 .. 192x192 (scaled). *)
let sizes = [| 16; 24; 32 |]

let iters = 6

let rhs input =
  let n = sizes.(input) in
  Prng.f32_array (Prng.create (307 + input)) (n * n) (-1.0) 1.0

let initial input =
  let n = sizes.(input) in
  Prng.f32_array (Prng.create (311 + input)) (n * n) 0.0 1.0

let reference ~input =
  let n = sizes.(input) in
  let u = Array.map (fun x -> x) (initial input) in
  let f = rhs input in
  let unew = Array.make (n * n) 0.0 in
  for _ = 1 to iters do
    for y = 1 to n - 2 do
      for x = 1 to n - 2 do
        unew.((y * n) + x) <-
          0.25
          *. (u.((y * n) + x - 1) +. u.((y * n) + x + 1)
             +. u.(((y - 1) * n) + x)
             +. u.(((y + 1) * n) + x)
             +. f.((y * n) + x))
      done
    done;
    for y = 1 to n - 2 do
      for x = 1 to n - 2 do
        u.((y * n) + x) <- unew.((y * n) + x)
      done
    done
  done;
  u

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"Jacobi" ~fn:"jacobi_ispc" ~inputs:(Array.length sizes)
    ~language:"ISPC" ~suite:"SCL"
    ~input_desc:"2D array: 16x16 .. 32x32" ~source
    [
      Harness.Inout_f32 initial;
      Harness.Scratch_f32 (fun input -> sizes.(input) * sizes.(input));
      Harness.In_f32 rhs;
      Harness.Scalar_i (fun input -> sizes.(input));
      Harness.Scalar_i (fun _ -> iters);
    ]

(** Ray tracing — the ISPC-distribution benchmark. A compact
    sphere-scene tracer: rays are vectorized across the pixels of each
    scanline; each ray tests every sphere, keeps the nearest hit and a
    distance-attenuated shade. The three paper camera inputs (Sponza /
    Teapot / Cornell) become three synthetic scene+camera configs. *)

let source =
  "export void raytrace(uniform float spheres[], uniform int nspheres,\n\
   uniform float img[], uniform int width, uniform int height,\n\
   uniform float cam_x, uniform float cam_y, uniform float cam_z) {\n\
   for (uniform int y = 0; y < height; y += 1) {\n\
   uniform float py = ((float) y + 0.5) / (float) height - 0.5;\n\
   uniform int row = y * width;\n\
   foreach (x = 0 ... width) {\n\
   float px = ((float) x + 0.5) / (float) width - 0.5;\n\
   float dx = px;\n\
   float dy = py;\n\
   float dz = 1.0;\n\
   float inv = rsqrt(dx * dx + dy * dy + dz * dz);\n\
   dx = dx * inv;\n\
   dy = dy * inv;\n\
   dz = dz * inv;\n\
   float tmin = 100000000.0;\n\
   float shade = 0.0;\n\
   for (uniform int s = 0; s < nspheres; s += 1) {\n\
   uniform float sx = spheres[s * 5 + 0];\n\
   uniform float sy = spheres[s * 5 + 1];\n\
   uniform float sz = spheres[s * 5 + 2];\n\
   uniform float sr = spheres[s * 5 + 3];\n\
   uniform float sshade = spheres[s * 5 + 4];\n\
   float ocx = sx - cam_x;\n\
   float ocy = sy - cam_y;\n\
   float ocz = sz - cam_z;\n\
   float bq = ocx * dx + ocy * dy + ocz * dz;\n\
   float cq = ocx * ocx + ocy * ocy + ocz * ocz - sr * sr;\n\
   float disc = bq * bq - cq;\n\
   if (disc > 0.0) {\n\
   float tq = bq - sqrt(disc);\n\
   if (tq > 0.001 && tq < tmin) {\n\
   tmin = tq;\n\
   shade = sshade / (1.0 + 0.1 * tq);\n\
   }\n\
   }\n\
   }\n\
   img[row + x] = shade;\n\
   }\n\
   }\n\
   }"

type scene = {
  scene_name : string;
  cam : float * float * float;
  spheres : float array;  (* packed x,y,z,r,shade records *)
}

let mk_scene name seed cam nspheres =
  let rng = Prng.create seed in
  let spheres =
    Array.concat
      (List.init nspheres (fun _ ->
           [|
             Prng.f32_range rng (-2.0) 2.0;
             Prng.f32_range rng (-2.0) 2.0;
             Prng.f32_range rng 3.0 9.0;
             Prng.f32_range rng 0.3 1.2;
             Prng.f32_range rng 0.2 1.0;
           |]))
  in
  { scene_name = name; cam; spheres }

(* The paper's camera inputs. *)
let scenes =
  [|
    mk_scene "Sponza" 501 (0.0, 0.0, 0.0) 8;
    mk_scene "Teapot" 503 (0.3, -0.2, 0.0) 5;
    mk_scene "Cornell" 507 (-0.3, 0.1, -0.5) 6;
  |]

let width = 16

let height = 16

let f32 = Interp.Bits.round_float Vir.Vtype.F32

(* Reference tracer in double precision. *)
let reference ~input =
  let sc = scenes.(input) in
  let cx, cy, cz = sc.cam in
  let nspheres = Array.length sc.spheres / 5 in
  Array.init (width * height) (fun pix ->
      let x = pix mod width and y = pix / width in
      let px = ((float_of_int x +. 0.5) /. float_of_int width) -. 0.5 in
      let py = ((float_of_int y +. 0.5) /. float_of_int height) -. 0.5 in
      let norm = sqrt ((px *. px) +. (py *. py) +. 1.0) in
      let dx = px /. norm and dy = py /. norm and dz = 1.0 /. norm in
      let tmin = ref 1.0e8 and shade = ref 0.0 in
      for s = 0 to nspheres - 1 do
        let sx = sc.spheres.((s * 5) + 0) -. cx in
        let sy = sc.spheres.((s * 5) + 1) -. cy in
        let sz = sc.spheres.((s * 5) + 2) -. cz in
        let sr = sc.spheres.((s * 5) + 3) in
        let ss = sc.spheres.((s * 5) + 4) in
        let bq = (sx *. dx) +. (sy *. dy) +. (sz *. dz) in
        let cq = (sx *. sx) +. (sy *. sy) +. (sz *. sz) -. (sr *. sr) in
        let disc = (bq *. bq) -. cq in
        if disc > 0.0 then begin
          let t = bq -. sqrt disc in
          if t > 0.001 && t < !tmin then begin
            tmin := t;
            shade := ss /. (1.0 +. (0.1 *. t))
          end
        end
      done;
      !shade)

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"Raytracing" ~fn:"raytrace"
    ~inputs:(Array.length scenes) ~language:"ISPC" ~suite:"ISPC"
    ~input_desc:"Camera: Sponza / Teapot / Cornell" ~source
    [
      Harness.In_f32 (fun input -> scenes.(input).spheres);
      Harness.Scalar_i
        (fun input -> Array.length scenes.(input).spheres / 5);
      Harness.Out_f32 (fun _ -> width * height);
      Harness.Scalar_i (fun _ -> width);
      Harness.Scalar_i (fun _ -> height);
      Harness.Scalar_f (fun input -> f32 (let x, _, _ = scenes.(input).cam in x));
      Harness.Scalar_f (fun input -> f32 (let _, y, _ = scenes.(input).cam in y));
      Harness.Scalar_f (fun input -> f32 (let _, _, z = scenes.(input).cam in z));
    ]

(** Fluidanimate — the PARVEC benchmark (vectorized PARSEC SPH fluid
    simulation). Reproduced as the SPH core: an O(n^2) smoothed-particle
    density kernel followed by a symplectic-Euler integration step,
    vectorized over particles. The density kernel's distance test is a
    varying branch, as in the PARVEC cell-neighborhood loops. *)

let source =
  "void density_pass(uniform float px[], uniform float py[],\n\
   uniform float pz[], uniform float density[], uniform int n,\n\
   uniform float h2) {\n\
   foreach (i = 0 ... n) {\n\
   float xi = px[i];\n\
   float yi = py[i];\n\
   float zi = pz[i];\n\
   float rho = 0.0;\n\
   for (uniform int j = 0; j < n; j += 1) {\n\
   uniform float xj = px[j];\n\
   uniform float yj = py[j];\n\
   uniform float zj = pz[j];\n\
   float dx = xi - xj;\n\
   float dy = yi - yj;\n\
   float dz = zi - zj;\n\
   float d2 = dx * dx + dy * dy + dz * dz;\n\
   if (d2 < h2) {\n\
   float diff = h2 - d2;\n\
   rho += diff * diff * diff;\n\
   }\n\
   }\n\
   density[i] = rho;\n\
   }\n\
   }\n\
   void integrate_pass(uniform float p[], uniform float v[],\n\
   uniform float density[], uniform int n, uniform float dt) {\n\
   foreach (i = 0 ... n) {\n\
   float accel = 0.01 - 0.001 * density[i];\n\
   v[i] = v[i] + accel * dt;\n\
   p[i] = p[i] + v[i] * dt;\n\
   }\n\
   }\n\
   export void fluid_step(uniform float px[], uniform float py[],\n\
   uniform float pz[], uniform float vx[], uniform float vy[],\n\
   uniform float vz[], uniform float density[], uniform int n,\n\
   uniform float h2, uniform float dt) {\n\
   density_pass(px, py, pz, density, n, h2);\n\
   integrate_pass(px, vx, density, n, dt);\n\
   integrate_pass(py, vy, density, n, dt);\n\
   integrate_pass(pz, vz, density, n, dt);\n\
   }"

(* Paper input: simsmall / simmedium (particle counts, scaled). *)
let sizes = [| 48; 96 |]

let h2 = 0.5

let dt = 0.05

let coords seed input =
  Prng.f32_array (Prng.create (seed + input)) sizes.(input) (-1.0) 1.0

let vels seed input =
  Prng.f32_array (Prng.create (seed + input)) sizes.(input) (-0.1) 0.1

(* Reference SPH step in double precision. *)
let reference ~input =
  let n = sizes.(input) in
  let px = Array.map (fun x -> x) (coords 601 input) in
  let py = Array.map (fun x -> x) (coords 607 input) in
  let pz = Array.map (fun x -> x) (coords 613 input) in
  let vx = Array.map (fun x -> x) (vels 617 input) in
  let vy = Array.map (fun x -> x) (vels 619 input) in
  let vz = Array.map (fun x -> x) (vels 623 input) in
  let density = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let rho = ref 0.0 in
    for j = 0 to n - 1 do
      let dx = px.(i) -. px.(j)
      and dy = py.(i) -. py.(j)
      and dz = pz.(i) -. pz.(j) in
      let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      if d2 < h2 then begin
        let diff = h2 -. d2 in
        rho := !rho +. (diff *. diff *. diff)
      end
    done;
    density.(i) <- !rho
  done;
  let integrate p v =
    for i = 0 to n - 1 do
      let accel = 0.01 -. (0.001 *. density.(i)) in
      v.(i) <- v.(i) +. (accel *. dt);
      p.(i) <- p.(i) +. (v.(i) *. dt)
    done
  in
  integrate px vx;
  integrate py vy;
  integrate pz vz;
  (px, py, pz, density)

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"Fluidanimate" ~fn:"fluid_step"
    ~inputs:(Array.length sizes) ~language:"C++" ~suite:"Parvec"
    ~input_desc:"sim_small / sim_medium" ~source
    [
      Harness.Inout_f32 (coords 601);
      Harness.Inout_f32 (coords 607);
      Harness.Inout_f32 (coords 613);
      Harness.In_f32 (vels 617);
      Harness.In_f32 (vels 619);
      Harness.In_f32 (vels 623);
      Harness.Out_f32 (fun input -> sizes.(input));
      Harness.Scalar_i (fun input -> sizes.(input));
      Harness.Scalar_f (fun _ -> h2);
      Harness.Scalar_f (fun _ -> dt);
    ]

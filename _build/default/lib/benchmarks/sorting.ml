(** Sorting — the ISPC-distribution benchmark. Implemented as a fully
    data-parallel rank ("enumeration") sort: each lane computes the
    final position of one element, then scatters it. Gather/scatter
    heavy, so address-category faults dominate (cf. the paper's
    observation that Sorting's address faults produce many SDCs). *)

let source =
  "export void sort_ispc(uniform int input[], uniform int output[],\n\
   uniform int n) {\n\
   foreach (i = 0 ... n) {\n\
   int key = input[i];\n\
   int rank = 0;\n\
   for (uniform int j = 0; j < n; j += 1) {\n\
   int other = input[j];\n\
   if (other < key) { rank += 1; }\n\
   if (other == key && j < i) { rank += 1; }\n\
   }\n\
   output[rank] = key;\n\
   }\n\
   }"

(* Paper input: 1D array length 1000..100000 (scaled for the VM). *)
let sizes = [| 48; 96; 160 |]

let data input =
  Prng.i32_array (Prng.create (101 + input)) sizes.(input) 1000

let reference ~input =
  let a = Array.copy (data input) in
  Array.sort compare a;
  a

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"Sorting" ~fn:"sort_ispc" ~inputs:(Array.length sizes)
    ~language:"ISPC" ~suite:"ISPC"
    ~input_desc:"1D array length: [48, 160]" ~source
    [
      Harness.In_i32 data;
      Harness.Out_i32 (fun input -> sizes.(input));
      Harness.Scalar_i (fun input -> sizes.(input));
    ]

lib/benchmarks/conjugate_gradient.ml: Array Harness Prng

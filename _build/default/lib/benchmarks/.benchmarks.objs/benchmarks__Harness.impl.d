lib/benchmarks/harness.ml: Array Interp List Minispc Vulfi

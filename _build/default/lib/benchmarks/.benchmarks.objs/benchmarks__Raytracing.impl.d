lib/benchmarks/raytracing.ml: Array Harness Interp List Prng Vir

lib/benchmarks/sorting.ml: Array Harness Prng

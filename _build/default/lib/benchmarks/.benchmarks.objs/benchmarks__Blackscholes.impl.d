lib/benchmarks/blackscholes.ml: Array Harness Prng

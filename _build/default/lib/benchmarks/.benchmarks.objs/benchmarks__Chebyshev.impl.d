lib/benchmarks/chebyshev.ml: Array Float Harness Interp Vir

lib/benchmarks/fluidanimate.ml: Array Harness Prng

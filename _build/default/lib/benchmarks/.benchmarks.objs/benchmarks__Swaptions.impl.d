lib/benchmarks/swaptions.ml: Array Harness Int32 Interp Prng Vir

lib/benchmarks/prng.ml: Array Int64 Interp Vir

lib/benchmarks/jacobi.ml: Array Harness Prng

lib/benchmarks/registry.ml: Blackscholes Chebyshev Conjugate_gradient Fluidanimate Harness Jacobi List Micro Raytracing Sorting Stencil String Swaptions Vulfi

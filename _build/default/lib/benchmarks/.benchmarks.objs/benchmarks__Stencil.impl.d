lib/benchmarks/stencil.ml: Array Harness Prng

lib/benchmarks/micro.ml: Array Harness Prng

(** Conjugate gradient for the 1D Poisson system (tridiagonal
    [-1, 2, -1]) — from Burkardt's SCL, as in the paper. Exercises the
    full CG loop: matvec, two dot products (cross-lane reductions),
    axpy updates and the direction update, all vectorized with
    [foreach]. Arrays are padded by one element on each side so the
    matvec needs no boundary branches. *)

let source =
  "export void cg_ispc(uniform float b[], uniform float x[],\n\
   uniform float r[], uniform float p[], uniform float ap[],\n\
   uniform int n, uniform int iters) {\n\
   uniform int hi = n + 1;\n\
   foreach (i = 1 ... hi) {\n\
   x[i] = 0.0;\n\
   r[i] = b[i];\n\
   p[i] = b[i];\n\
   }\n\
   varying float acc = 0.0;\n\
   foreach (i2 = 1 ... hi) { acc += r[i2] * r[i2]; }\n\
   uniform float rsold = reduce_add(acc);\n\
   for (uniform int it = 0; it < iters; it += 1) {\n\
   foreach (j = 1 ... hi) {\n\
   ap[j] = 2.0 * p[j] - p[j - 1] - p[j + 1];\n\
   }\n\
   varying float pap_acc = 0.0;\n\
   foreach (j2 = 1 ... hi) { pap_acc += p[j2] * ap[j2]; }\n\
   uniform float alpha = rsold / reduce_add(pap_acc);\n\
   foreach (j3 = 1 ... hi) {\n\
   x[j3] += alpha * p[j3];\n\
   r[j3] -= alpha * ap[j3];\n\
   }\n\
   varying float rs_acc = 0.0;\n\
   foreach (j4 = 1 ... hi) { rs_acc += r[j4] * r[j4]; }\n\
   uniform float rsnew = reduce_add(rs_acc);\n\
   if (rsnew < 0.0000001) { break; }\n\
   uniform float beta = rsnew / rsold;\n\
   foreach (j5 = 1 ... hi) { p[j5] = r[j5] + beta * p[j5]; }\n\
   rsold = rsnew;\n\
   }\n\
   }"

(* Paper input: 2D array 32x32 .. 256x256 (scaled to 1D Poisson). *)
let sizes = [| 16; 32; 48 |]

(* CG on an n-point system converges within n iterations in exact
   arithmetic; running the full n lets perturbed runs re-converge, the
   self-correction behind the paper's finding that CG is among the most
   resilient benchmarks. *)
let iters input = 2 * sizes.(input)

(* Padded right-hand side: length n+2, zero at both ends. *)
let rhs input =
  let n = sizes.(input) in
  let core = Prng.f32_array (Prng.create (401 + input)) n (-1.0) 1.0 in
  Array.concat [ [| 0.0 |]; core; [| 0.0 |] ]

let reference ~input =
  let n = sizes.(input) in
  let b = rhs input in
  let iters = iters input in
  let x = Array.make (n + 2) 0.0 in
  let r = Array.make (n + 2) 0.0 in
  let p = Array.make (n + 2) 0.0 in
  let ap = Array.make (n + 2) 0.0 in
  for i = 1 to n do
    r.(i) <- b.(i);
    p.(i) <- b.(i)
  done;
  let dot a c =
    let s = ref 0.0 in
    for i = 1 to n do
      s := !s +. (a.(i) *. c.(i))
    done;
    !s
  in
  let rsold = ref (dot r r) in
  let converged = ref false in
  for _ = 1 to iters do
    if not !converged then begin
      for j = 1 to n do
        ap.(j) <- (2.0 *. p.(j)) -. p.(j - 1) -. p.(j + 1)
      done;
      let alpha = !rsold /. dot p ap in
      for j = 1 to n do
        x.(j) <- x.(j) +. (alpha *. p.(j));
        r.(j) <- r.(j) -. (alpha *. ap.(j))
      done;
      let rsnew = dot r r in
      if rsnew < 1e-7 then converged := true
      else begin
        let beta = rsnew /. !rsold in
        for j = 1 to n do
          p.(j) <- r.(j) +. (beta *. p.(j))
        done;
        rsold := rsnew
      end
    end
  done;
  x

let benchmark =
  Harness.make ~tolerance:1e-5 ~name:"ConjugateGradient" ~fn:"cg_ispc"
    ~inputs:(Array.length sizes) ~language:"ISPC" ~suite:"SCL"
    ~input_desc:"1D Poisson system: n in [16, 48]" ~source
    [
      Harness.In_f32 rhs;
      Harness.Out_f32 (fun input -> sizes.(input) + 2);
      Harness.Scratch_f32 (fun input -> sizes.(input) + 2);
      Harness.Scratch_f32 (fun input -> sizes.(input) + 2);
      Harness.Scratch_f32 (fun input -> sizes.(input) + 2);
      Harness.Scalar_i (fun input -> sizes.(input));
      Harness.Scalar_i (fun input -> iters input);
    ]

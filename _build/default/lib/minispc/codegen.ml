(** Lowering mini-ISPC to VIR.

    The lowering reproduces the ISPC code-generation conventions that the
    paper's detector synthesis depends on (§III, Figs 6-9):

    - each [foreach] loop becomes the block structure of Fig 7: the entry
      block computes [nextras = n % Vl] and [aligned_end = n - nextras];
      [foreach_full_body] runs the aligned iterations with all lanes on,
      carrying [counter]/[new_counter] through a phi; the leftover
      [n % Vl] iterations run masked in [partial_inner_only];
    - uniform values are broadcast with [insertelement] + [shufflevector]
      (Fig 9);
    - masked contiguous loads/stores use the AVX/SSE mask intrinsics
      (Fig 5); non-contiguous varying accesses become per-lane
      gather/scatter sequences;
    - a varying [if] is compiled to execution masks: assignments blend
      with [select], stores go through masked stores.

    Every lowered [foreach] is recorded in {!Vir.Func.foreach_meta} so
    the detector pass can cross-check its pattern matching. *)

open Vir

module SMap = Map.Make (String)

type cval = {
  op : Instr.operand;  (** scalar for uniform, Vl-lane vector for varying *)
  cty : Ast.ty;
  linear : Instr.operand option;
      (** [Some base]: op = broadcast(base) + <0..Vl-1>; enables
          contiguous vector load/store instead of gather/scatter *)
}

type array_binding = { base_ptr : Instr.operand; elem : Ast.base_ty }

type binding =
  | Val of cval
  | Arr of array_binding

(* An active uniform loop during lowering. break/continue record the
   label and environment of the jumping block so the loop can build the
   right phi incomings at its exit / continue-target blocks. *)
type loop_frame = {
  lf_break : string;     (** label break jumps to *)
  lf_continue : string;  (** label continue jumps to *)
  mutable lf_breaks : (string * binding SMap.t) list;
  mutable lf_continues : (string * binding SMap.t) list;
}

type ctx = {
  m : Vmodule.t;
  b : Builder.t;
  target : Target.t;
  vl : int;
  prog : Ast.program;  (** for callee signatures *)
  mutable loops : loop_frame list;  (** innermost first *)
}

exception Codegen_error of string * Ast.pos

let error pos fmt =
  Printf.ksprintf (fun s -> raise (Codegen_error (s, pos))) fmt

let scalar_of_base = function
  | Ast.Tint -> Vtype.I32
  | Ast.Tfloat -> Vtype.F32
  | Ast.Tbool -> Vtype.I1

let vir_ty ctx (t : Ast.ty) =
  let s = scalar_of_base t.Ast.base in
  match t.Ast.q with
  | Ast.Uniform -> Vtype.Scalar s
  | Ast.Varying -> Vtype.Vector (ctx.vl, s)

let elem_bytes base = Vtype.scalar_bytes (scalar_of_base base)

let current_label ctx = (Builder.current_block ctx.b).Block.label

(* Has the current block already been sealed (e.g. by a break)? *)
let block_terminated ctx =
  Block.terminator (Builder.current_block ctx.b) <> None

(* Keep [domain]'s variable set, taking the (possibly updated) bindings
   from [src]. Locals declared inside a nested scope do not escape. *)
let restrict_to ~domain src =
  SMap.mapi
    (fun name b ->
      match SMap.find_opt name src with Some b' -> b' | None -> b)
    domain

(* Broadcast a uniform operand to Vl lanes. Immediates become splat
   constants; registers go through the ISPC insert+shuffle idiom. *)
let broadcast_op ctx (o : Instr.operand) =
  match o with
  | Instr.Imm c -> Instr.Imm (Const.splat ctx.vl c)
  | Instr.Reg _ -> Builder.broadcast ctx.b o ctx.vl

let to_varying ctx (v : cval) : cval =
  match v.cty.Ast.q with
  | Ast.Varying -> v
  | Ast.Uniform ->
    {
      op = broadcast_op ctx v.op;
      cty = { v.cty with Ast.q = Ast.Varying };
      linear = None;
    }

let iota_imm ctx = Instr.Imm (Const.iota Vtype.I32 ctx.vl)

(* Varying i32 whose lane L holds [base + L]. *)
let linear_vector ctx (base : Instr.operand) : cval =
  let bvec = broadcast_op ctx base in
  let v = Builder.add ctx.b ~name:"lin" bvec (iota_imm ctx) in
  { op = v; cty = Ast.varying Ast.Tint; linear = Some base }

let all_true_mask ctx =
  Instr.Imm (Const.splat ctx.vl (Const.i1 true))

let lookup env pos name =
  match SMap.find_opt name env with
  | Some b -> b
  | None -> error pos "codegen: unbound %s" name

let lookup_val env pos name =
  match lookup env pos name with
  | Val v -> v
  | Arr _ -> error pos "codegen: %s is an array" name

let lookup_arr env pos name =
  match lookup env pos name with
  | Arr a -> a
  | Val _ -> error pos "codegen: %s is not an array" name

(* ------------------------------------------------------------------ *)
(* Gather / scatter expansion                                          *)

(* Per-lane gather: load one scalar per active lane of [index] from
   [base_ptr], assembling a vector. Under a mask each lane gets a
   branch diamond so disabled lanes never touch memory. *)
let gen_gather ctx ~(mask : Instr.operand option) base_ptr ebytes result_ty
    (index : cval) : Instr.operand =
  let acc = ref (Instr.Imm (Const.zero_of_ty result_ty)) in
  for lane = 0 to ctx.vl - 1 do
    let lane_ix = Instr.Imm (Const.i32 lane) in
    match mask with
    | None ->
      let idx = Builder.extractelement ctx.b ~name:"gix" index.op lane_ix in
      let addr = Builder.gep ctx.b ~name:"gaddr" base_ptr idx ~elem_bytes:ebytes in
      let v =
        Builder.load ctx.b ~name:"gld" (Vtype.scalar_of result_ty) addr
      in
      acc := Builder.insertelement ctx.b ~name:"gins" !acc v lane_ix
    | Some mk ->
      let ml = Builder.extractelement ctx.b ~name:"gm" mk lane_ix in
      let do_blk = Builder.fresh_block ctx.b "gather_do" in
      let join_blk = Builder.fresh_block ctx.b "gather_join" in
      let from_label = current_label ctx in
      Builder.condbr ctx.b ml do_blk.Block.label join_blk.Block.label;
      Builder.position_at_end ctx.b do_blk;
      let idx = Builder.extractelement ctx.b ~name:"gix" index.op lane_ix in
      let addr = Builder.gep ctx.b ~name:"gaddr" base_ptr idx ~elem_bytes:ebytes in
      let v =
        Builder.load ctx.b ~name:"gld" (Vtype.scalar_of result_ty) addr
      in
      let ins = Builder.insertelement ctx.b ~name:"gins" !acc v lane_ix in
      Builder.br ctx.b join_blk.Block.label;
      Builder.position_at_end ctx.b join_blk;
      acc :=
        Builder.phi ctx.b ~name:"gphi" result_ty
          [ (from_label, !acc); (do_blk.Block.label, ins) ]
  done;
  !acc

(* Per-lane scatter of [value] through [index]. *)
let gen_scatter ctx ~(mask : Instr.operand option) base_ptr ebytes
    (index : cval) (value : Instr.operand) =
  for lane = 0 to ctx.vl - 1 do
    let lane_ix = Instr.Imm (Const.i32 lane) in
    match mask with
    | None ->
      let idx = Builder.extractelement ctx.b ~name:"six" index.op lane_ix in
      let addr = Builder.gep ctx.b ~name:"saddr" base_ptr idx ~elem_bytes:ebytes in
      let v = Builder.extractelement ctx.b ~name:"sval" value lane_ix in
      Builder.store ctx.b v addr
    | Some mk ->
      let ml = Builder.extractelement ctx.b ~name:"sm" mk lane_ix in
      let do_blk = Builder.fresh_block ctx.b "scatter_do" in
      let join_blk = Builder.fresh_block ctx.b "scatter_join" in
      Builder.condbr ctx.b ml do_blk.Block.label join_blk.Block.label;
      Builder.position_at_end ctx.b do_blk;
      let idx = Builder.extractelement ctx.b ~name:"six" index.op lane_ix in
      let addr = Builder.gep ctx.b ~name:"saddr" base_ptr idx ~elem_bytes:ebytes in
      let v = Builder.extractelement ctx.b ~name:"sval" value lane_ix in
      Builder.store ctx.b v addr;
      Builder.br ctx.b join_blk.Block.label;
      Builder.position_at_end ctx.b join_blk
  done

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let ibinop_of = function
  | Ast.Add -> Instr.Add
  | Ast.Sub -> Instr.Sub
  | Ast.Mul -> Instr.Mul
  | Ast.Div -> Instr.Sdiv
  | Ast.Mod -> Instr.Srem
  | Ast.Band -> Instr.And
  | Ast.Bor -> Instr.Or
  | Ast.Bxor -> Instr.Xor
  | Ast.Shl -> Instr.Shl
  | Ast.Shr -> Instr.Ashr
  | _ -> invalid_arg "ibinop_of"

let fbinop_of = function
  | Ast.Add -> Instr.Fadd
  | Ast.Sub -> Instr.Fsub
  | Ast.Mul -> Instr.Fmul
  | Ast.Div -> Instr.Fdiv
  | _ -> invalid_arg "fbinop_of"

let icmp_of = function
  | Ast.Lt -> Instr.Islt
  | Ast.Le -> Instr.Isle
  | Ast.Gt -> Instr.Isgt
  | Ast.Ge -> Instr.Isge
  | Ast.Eq -> Instr.Ieq
  | Ast.Ne -> Instr.Ine
  | _ -> invalid_arg "icmp_of"

let fcmp_of = function
  | Ast.Lt -> Instr.Folt
  | Ast.Le -> Instr.Fole
  | Ast.Gt -> Instr.Fogt
  | Ast.Ge -> Instr.Foge
  | Ast.Eq -> Instr.Foeq
  | Ast.Ne -> Instr.Fone
  | _ -> invalid_arg "fcmp_of"

(* Mangled intrinsic name for a math builtin at type [ty]. *)
let math_intrinsic_name base ctx (q : Ast.qual) =
  let suffix =
    match q with Ast.Uniform -> "f32" | Ast.Varying -> Printf.sprintf "v%df32" ctx.vl
  in
  Printf.sprintf "llvm.%s.%s" base suffix

let rec gen_expr ctx env ~(mask : Instr.operand option) (e : Ast.expr) : cval
    =
  match e.Ast.e with
  | Ast.Int_lit n ->
    { op = Instr.Imm (Const.i32 n); cty = Ast.uniform Ast.Tint; linear = None }
  | Ast.Float_lit x ->
    {
      op = Instr.Imm (Const.f32 x);
      cty = Ast.uniform Ast.Tfloat;
      linear = None;
    }
  | Ast.Bool_lit b ->
    { op = Instr.Imm (Const.i1 b); cty = Ast.uniform Ast.Tbool; linear = None }
  | Ast.Var x -> lookup_val env e.Ast.epos x
  | Ast.Index (a, ix) -> gen_load ctx env ~mask e.Ast.epos a ix
  | Ast.Unop (Ast.Neg, a) ->
    let v = gen_expr ctx env ~mask a in
    let zero =
      match v.cty.Ast.base with
      | Ast.Tint -> Instr.Imm (Const.i32 0)
      | Ast.Tfloat -> Instr.Imm (Const.f32 (-0.0))
      | Ast.Tbool -> error e.Ast.epos "negating bool"
    in
    let zero =
      if v.cty.Ast.q = Ast.Varying then
        match zero with
        | Instr.Imm c -> Instr.Imm (Const.splat ctx.vl c)
        | _ -> assert false
      else zero
    in
    let op =
      if v.cty.Ast.base = Ast.Tint then Builder.sub ctx.b zero v.op
      else Builder.fsub ctx.b zero v.op
    in
    { op; cty = v.cty; linear = None }
  | Ast.Unop (Ast.Not, a) ->
    let v = gen_expr ctx env ~mask a in
    let one =
      if v.cty.Ast.q = Ast.Varying then
        Instr.Imm (Const.splat ctx.vl (Const.i1 true))
      else Instr.Imm (Const.i1 true)
    in
    { op = Builder.xor ctx.b v.op one; cty = v.cty; linear = None }
  | Ast.Binop (op, a, b) -> gen_binop ctx env ~mask e.Ast.epos op a b
  | Ast.Cast (base, a) ->
    let v = gen_expr ctx env ~mask a in
    if v.cty.Ast.base = base then { v with linear = v.linear }
    else
      let dst_ty = vir_ty ctx { v.cty with Ast.base } in
      let op =
        match (v.cty.Ast.base, base) with
        | Ast.Tint, Ast.Tfloat -> Builder.cast ctx.b Instr.Sitofp v.op dst_ty
        | Ast.Tfloat, Ast.Tint -> Builder.cast ctx.b Instr.Fptosi v.op dst_ty
        | _ -> error e.Ast.epos "unsupported cast"
      in
      { op; cty = { v.cty with Ast.base }; linear = None }
  | Ast.Select (c, a, b) ->
    let vc = gen_expr ctx env ~mask c in
    let va = gen_expr ctx env ~mask a in
    let vb = gen_expr ctx env ~mask b in
    let q =
      if
        vc.cty.Ast.q = Ast.Varying || va.cty.Ast.q = Ast.Varying
        || vb.cty.Ast.q = Ast.Varying
      then Ast.Varying
      else Ast.Uniform
    in
    let vc = if q = Ast.Varying then to_varying ctx vc else vc in
    let va = if q = Ast.Varying then to_varying ctx va else va in
    let vb = if q = Ast.Varying then to_varying ctx vb else vb in
    {
      op = Builder.select ctx.b vc.op va.op vb.op;
      cty = { va.cty with Ast.q = q };
      linear = None;
    }
  | Ast.Call (name, args) -> gen_call ctx env ~mask e.Ast.epos name args

and gen_binop ctx env ~mask pos op a b =
  let va = gen_expr ctx env ~mask a in
  let vb = gen_expr ctx env ~mask b in
  let q =
    if va.cty.Ast.q = Ast.Varying || vb.cty.Ast.q = Ast.Varying then
      Ast.Varying
    else Ast.Uniform
  in
  (* Linearity tracking for contiguous access detection. *)
  let linear =
    match (op, va.cty.Ast.q, vb.cty.Ast.q, va.linear, vb.linear) with
    | Ast.Add, Ast.Varying, Ast.Uniform, Some base, _ ->
      Some (`Off (base, vb.op, `Add))
    | Ast.Add, Ast.Uniform, Ast.Varying, _, Some base ->
      Some (`Off (base, va.op, `Add))
    | Ast.Sub, Ast.Varying, Ast.Uniform, Some base, _ ->
      Some (`Off (base, vb.op, `Sub))
    | _ -> None
  in
  let va' = if q = Ast.Varying then to_varying ctx va else va in
  let vb' = if q = Ast.Varying then to_varying ctx vb else vb in
  let base = va.cty.Ast.base in
  let mk_result op_res result_base linear_op =
    { op = op_res; cty = { Ast.q; base = result_base }; linear = linear_op }
  in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div when base = Ast.Tfloat ->
    mk_result (Builder.fbinop ctx.b (fbinop_of op) va'.op vb'.op) Ast.Tfloat
      None
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor | Ast.Shl | Ast.Shr ->
    if base <> Ast.Tint && not (op = Ast.Band || op = Ast.Bor || op = Ast.Bxor)
    then error pos "integer binop on non-int";
    (* Protect masked-off lanes from trapping integer division. *)
    let vb_op =
      match (op, mask, q) with
      | (Ast.Div | Ast.Mod), Some mk, Ast.Varying ->
        Builder.select ctx.b ~name:"divguard" mk vb'.op
          (Instr.Imm (Const.splat ctx.vl (Const.i32 1)))
      | _ -> vb'.op
    in
    let res = Builder.ibinop ctx.b (ibinop_of op) va'.op vb_op in
    let lin =
      match linear with
      | Some (`Off (lbase, off, dir)) when q = Ast.Varying ->
        (* new base = lbase +/- off, computed as a scalar *)
        let nb =
          match dir with
          | `Add -> Builder.add ctx.b ~name:"linbase" lbase off
          | `Sub -> Builder.sub ctx.b ~name:"linbase" lbase off
        in
        Some nb
      | _ -> None
    in
    mk_result res base lin
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    let res =
      if base = Ast.Tfloat then
        Builder.fcmp ctx.b (fcmp_of op) va'.op vb'.op
      else Builder.icmp ctx.b (icmp_of op) va'.op vb'.op
    in
    mk_result res Ast.Tbool None
  | Ast.And_and ->
    mk_result (Builder.and_ ctx.b va'.op vb'.op) Ast.Tbool None
  | Ast.Or_or -> mk_result (Builder.or_ ctx.b va'.op vb'.op) Ast.Tbool None

and gen_load ctx env ~mask pos a ix =
  let arr = lookup_arr env pos a in
  let vix = gen_expr ctx env ~mask ix in
  let ebytes = elem_bytes arr.elem in
  let s = scalar_of_base arr.elem in
  match vix.cty.Ast.q with
  | Ast.Uniform ->
    let addr =
      Builder.gep ctx.b ~name:"addr" arr.base_ptr vix.op ~elem_bytes:ebytes
    in
    let v = Builder.load ctx.b ~name:"ld" (Vtype.Scalar s) addr in
    { op = v; cty = Ast.uniform arr.elem; linear = None }
  | Ast.Varying -> (
    let vty = Vtype.Vector (ctx.vl, s) in
    match vix.linear with
    | Some base -> (
      let addr =
        Builder.gep ctx.b ~name:"vaddr" arr.base_ptr base ~elem_bytes:ebytes
      in
      match mask with
      | None ->
        let v = Builder.load ctx.b ~name:"vld" vty addr in
        { op = v; cty = Ast.varying arr.elem; linear = None }
      | Some mk ->
        if s = Vtype.I1 then
          error pos "masked load of bool arrays is not supported";
        let v =
          Builder.call ctx.b ~name:"mld" ~ret:vty
            (Intrinsics.maskload_name ctx.target s)
            [ addr; mk ]
        in
        { op = v; cty = Ast.varying arr.elem; linear = None })
    | None ->
      let v = gen_gather ctx ~mask arr.base_ptr ebytes vty vix in
      { op = v; cty = Ast.varying arr.elem; linear = None })

and gen_call ctx env ~mask pos name args =
  match gen_call_opt ctx env ~mask pos name args with
  | Some v -> v
  | None -> error pos "void call %s used as a value" name

and gen_call_opt ctx env ~mask pos name args : cval option =
  match (name, args) with
  | ("sqrt" | "exp" | "log" | "sin" | "cos"), [ a ] ->
    let v = gen_expr ctx env ~mask a in
    let iname = math_intrinsic_name name ctx v.cty.Ast.q in
    let ret = vir_ty ctx v.cty in
    Some
      { op = Builder.call ctx.b ~ret iname [ v.op ]; cty = v.cty; linear = None }
  | "abs", [ a ] ->
    let v = gen_expr ctx env ~mask a in
    let iname = math_intrinsic_name "fabs" ctx v.cty.Ast.q in
    let ret = vir_ty ctx v.cty in
    Some
      { op = Builder.call ctx.b ~ret iname [ v.op ]; cty = v.cty; linear = None }
  | "floor", [ a ] ->
    let v = gen_expr ctx env ~mask a in
    let iname = math_intrinsic_name "floor" ctx v.cty.Ast.q in
    let ret = vir_ty ctx v.cty in
    Some
      { op = Builder.call ctx.b ~ret iname [ v.op ]; cty = v.cty; linear = None }
  | "rsqrt", [ a ] ->
    let v = gen_expr ctx env ~mask a in
    let iname = math_intrinsic_name "sqrt" ctx v.cty.Ast.q in
    let ret = vir_ty ctx v.cty in
    let s = Builder.call ctx.b ~ret iname [ v.op ] in
    let one =
      if v.cty.Ast.q = Ast.Varying then
        Instr.Imm (Const.splat ctx.vl (Const.f32 1.0))
      else Instr.Imm (Const.f32 1.0)
    in
    Some { op = Builder.fdiv ctx.b one s; cty = v.cty; linear = None }
  | ("pow" | "min" | "max"), [ a; b ] ->
    let va = gen_expr ctx env ~mask a in
    let vb = gen_expr ctx env ~mask b in
    let q =
      if va.cty.Ast.q = Ast.Varying || vb.cty.Ast.q = Ast.Varying then
        Ast.Varying
      else Ast.Uniform
    in
    let va = if q = Ast.Varying then to_varying ctx va else va in
    let vb = if q = Ast.Varying then to_varying ctx vb else vb in
    let base = match name with "pow" -> "pow" | "min" -> "minnum" | _ -> "maxnum" in
    let iname = math_intrinsic_name base ctx q in
    let cty = { Ast.q; base = Ast.Tfloat } in
    let ret = vir_ty ctx cty in
    Some
      {
        op = Builder.call ctx.b ~ret iname [ va.op; vb.op ];
        cty;
        linear = None;
      }
  | ("reduce_add" | "reduce_min" | "reduce_max"), [ a ] ->
    let v = to_varying ctx (gen_expr ctx env ~mask a) in
    let is_float = v.cty.Ast.base = Ast.Tfloat in
    let kind =
      match name with
      | "reduce_add" -> if is_float then "fadd" else "add"
      | "reduce_min" -> if is_float then "fmin" else "min"
      | _ -> if is_float then "fmax" else "max"
    in
    let suffix =
      Printf.sprintf "v%d%s" ctx.vl (if is_float then "f32" else "i32")
    in
    let iname = Printf.sprintf "llvm.vector.reduce.%s.%s" kind suffix in
    let cty = Ast.uniform v.cty.Ast.base in
    Some
      {
        op = Builder.call ctx.b ~ret:(vir_ty ctx cty) iname [ v.op ];
        cty;
        linear = None;
      }
  | _ -> (
    match List.find_opt (fun (f : Ast.func) -> f.Ast.f_name = name) ctx.prog with
    | None -> error pos "codegen: unknown function %s" name
    | Some callee ->
      let vargs =
        List.map2
          (fun (prm : Ast.param) arg ->
            if prm.Ast.p_is_array then
              match arg.Ast.e with
              | Ast.Var a -> (lookup_arr env pos a).base_ptr
              | _ -> error pos "array argument must be a name"
            else (gen_expr ctx env ~mask arg).op)
          callee.Ast.f_params args
      in
      let ret_ty =
        match callee.Ast.f_ret with
        | None -> Vtype.Void
        | Some t -> vir_ty ctx t
      in
      let r = Builder.call ctx.b ~ret:ret_ty name vargs in
      (match callee.Ast.f_ret with
      | None -> None
      | Some t -> Some { op = r; cty = t; linear = None }))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

(* Merge two environments at a CFG join: any variable whose operand
   differs gets a phi. Only names present in [domain] survive. *)
let merge_envs ctx ~domain ~(from_a : string) env_a ~(from_b : string) env_b
    =
  SMap.mapi
    (fun name binding ->
      match binding with
      | Arr _ -> binding
      | Val _ -> (
        match (SMap.find_opt name env_a, SMap.find_opt name env_b) with
        | Some (Val va), Some (Val vb) ->
          if va.op = vb.op then Val va
          else
            let ty = vir_ty ctx va.cty in
            let p =
              Builder.phi ctx.b ~name ty
                [ (from_a, va.op); (from_b, vb.op) ]
            in
            Val { op = p; cty = va.cty; linear = None }
        | _ -> binding))
    domain

let coerce_to ctx (target : Ast.ty) (v : cval) : cval =
  if v.cty.Ast.q = target.Ast.q then v
  else if target.Ast.q = Ast.Varying then to_varying ctx v
  else
    invalid_arg "Codegen.coerce_to: varying to uniform"

let rec gen_stmts ctx env ~mask (stmts : Ast.stmt list) =
  (* a break/continue seals the block; anything after is unreachable *)
  List.fold_left
    (fun env st ->
      if block_terminated ctx then env else gen_stmt ctx env ~mask st)
    env stmts

and gen_stmt ctx env ~(mask : Instr.operand option) (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Decl (ty, x, e) ->
    let v = coerce_to ctx ty (gen_expr ctx env ~mask e) in
    SMap.add x (Val v) env
  | Ast.Assign (x, e) ->
    let old = lookup_val env st.Ast.spos x in
    let v = coerce_to ctx old.cty (gen_expr ctx env ~mask e) in
    let v =
      match (mask, old.cty.Ast.q) with
      | Some mk, Ast.Varying ->
        (* Blend: lanes outside the mask keep their old value. *)
        {
          op = Builder.select ctx.b ~name:(x ^ "_blend") mk v.op old.op;
          cty = old.cty;
          linear = None;
        }
      | _ -> v
    in
    SMap.add x (Val v) env
  | Ast.Store (a, ix, e) ->
    let arr = lookup_arr env st.Ast.spos a in
    let vix = gen_expr ctx env ~mask ix in
    let v = gen_expr ctx env ~mask e in
    let ebytes = elem_bytes arr.elem in
    let s = scalar_of_base arr.elem in
    (match vix.cty.Ast.q with
    | Ast.Uniform ->
      let addr =
        Builder.gep ctx.b ~name:"addr" arr.base_ptr vix.op ~elem_bytes:ebytes
      in
      Builder.store ctx.b v.op addr
    | Ast.Varying -> (
      let v = to_varying ctx v in
      match vix.linear with
      | Some base -> (
        let addr =
          Builder.gep ctx.b ~name:"vaddr" arr.base_ptr base
            ~elem_bytes:ebytes
        in
        match mask with
        | None -> Builder.store ctx.b v.op addr
        | Some mk ->
          if s = Vtype.I1 then
            error st.Ast.spos "masked store of bool arrays is not supported";
          ignore
            (Builder.call ctx.b ~ret:Vtype.Void
               (Intrinsics.maskstore_name ctx.target s)
               [ addr; mk; v.op ]))
      | None -> gen_scatter ctx ~mask arr.base_ptr ebytes vix v.op));
    env
  | Ast.If (cond, then_body, else_body) ->
    let vc = gen_expr ctx env ~mask cond in
    if vc.cty.Ast.q = Ast.Uniform then
      gen_uniform_if ctx env ~mask vc then_body else_body
    else gen_varying_if ctx env ~mask vc then_body else_body
  | Ast.While (cond, body) ->
    gen_loop ctx env ~mask ~cond ~body ~step:None
  | Ast.For (init, cond, step, body) ->
    let env' = gen_stmt ctx env ~mask init in
    let env_after = gen_loop ctx env' ~mask ~cond ~body ~step:(Some step) in
    (* Bindings introduced by the init statement go out of scope. *)
    restrict_to ~domain:env env_after
  | Ast.Foreach (dim, start, stop, body) ->
    gen_foreach ctx env dim start stop body
  | Ast.Return _ ->
    error st.Ast.spos "codegen: return must be handled at function level"
  | Ast.Expr_stmt e -> (
    match e.Ast.e with
    | Ast.Call (name, args) ->
      ignore (gen_call_opt ctx env ~mask e.Ast.epos name args);
      env
    | _ -> error st.Ast.spos "codegen: bad expression statement")
  | Ast.Assert e ->
    (* Lower to a call into the detector runtime: a false condition on
       any active lane flags the run (it does not abort, so the fault
       study can report detection and outcome independently). *)
    let v = gen_expr ctx env ~mask e in
    Vmodule.declare_extern ctx.m ~name:"__vulfi_assert"
      ~arg_tys:[ Vtype.bool_ty ] ~ret:Vtype.Void;
    let ok =
      match v.cty.Ast.q with
      | Ast.Uniform -> v.op
      | Ast.Varying ->
        let not_cond =
          Builder.xor ctx.b ~name:"assert_not" v.op (all_true_mask ctx)
        in
        let violated_vec =
          match mask with
          | None -> not_cond
          | Some m -> Builder.and_ ctx.b ~name:"assert_viol" m not_cond
        in
        let any = any_of_mask ctx violated_vec in
        Builder.xor ctx.b ~name:"assert_ok" any
          (Instr.Imm (Const.i1 true))
    in
    ignore (Builder.call ctx.b ~ret:Vtype.Void "__vulfi_assert" [ ok ]);
    env
  | Ast.Break -> (
    match ctx.loops with
    | frame :: _ ->
      frame.lf_breaks <- (current_label ctx, env) :: frame.lf_breaks;
      Builder.br ctx.b frame.lf_break;
      env
    | [] -> error st.Ast.spos "codegen: break outside a loop")
  | Ast.Continue -> (
    match ctx.loops with
    | frame :: _ ->
      frame.lf_continues <- (current_label ctx, env) :: frame.lf_continues;
      Builder.br ctx.b frame.lf_continue;
      env
    | [] -> error st.Ast.spos "codegen: continue outside a loop")

and gen_uniform_if ctx env ~mask vc then_body else_body =
  let then_blk = Builder.fresh_block ctx.b "if_then" in
  let else_blk = Builder.fresh_block ctx.b "if_else" in
  let join_blk = Builder.fresh_block ctx.b "if_join" in
  Builder.condbr ctx.b vc.op then_blk.Block.label else_blk.Block.label;
  Builder.position_at_end ctx.b then_blk;
  let env_t = gen_stmts ctx env ~mask then_body in
  let end_t = current_label ctx in
  let term_t = block_terminated ctx in
  if not term_t then Builder.br ctx.b join_blk.Block.label;
  Builder.position_at_end ctx.b else_blk;
  let env_e = gen_stmts ctx env ~mask else_body in
  let end_e = current_label ctx in
  let term_e = block_terminated ctx in
  if not term_e then Builder.br ctx.b join_blk.Block.label;
  Builder.position_at_end ctx.b join_blk;
  match (term_t, term_e) with
  | false, false ->
    merge_envs ctx ~domain:env ~from_a:end_t env_t ~from_b:end_e env_e
  | false, true -> restrict_to ~domain:env env_t
  | true, false -> restrict_to ~domain:env env_e
  | true, true ->
    (* both sides broke out: the join is unreachable *)
    Builder.unreachable ctx.b;
    env

(* "any lane active?" — the IR-level equivalent of ISPC's movmsk test
   that gates every masked region. This is what routes vector execution
   masks into control-flow slices (making them control fault sites, as
   in the paper's Fig 10 census). *)
and any_of_mask ctx mask =
  Builder.call ctx.b ~name:"anymask" ~ret:Vtype.bool_ty
    (Printf.sprintf "llvm.vector.reduce.or.v%di1" ctx.vl)
    [ mask ]

(* Execute [body] under [region_mask], skipping it entirely when every
   lane is off (ISPC's all-off fast path). Returns the merged env. *)
and gen_masked_region ctx env ~(region_mask : Instr.operand) body =
  if body = [] then env
  else begin
    let any = any_of_mask ctx region_mask in
    let body_blk = Builder.fresh_block ctx.b "masked_body" in
    let join_blk = Builder.fresh_block ctx.b "masked_join" in
    let from_label = current_label ctx in
    Builder.condbr ctx.b any body_blk.Block.label join_blk.Block.label;
    Builder.position_at_end ctx.b body_blk;
    let env_b = gen_stmts ctx env ~mask:(Some region_mask) body in
    let end_b = current_label ctx in
    Builder.br ctx.b join_blk.Block.label;
    Builder.position_at_end ctx.b join_blk;
    merge_envs ctx ~domain:env ~from_a:from_label env ~from_b:end_b env_b
  end

and gen_varying_if ctx env ~mask vc then_body else_body =
  let vcond = vc.op in
  let parent = mask in
  let then_mask =
    match parent with
    | None -> vcond
    | Some p -> Builder.and_ ctx.b ~name:"mask_then" p vcond
  in
  let not_cond =
    Builder.xor ctx.b ~name:"mask_not" vcond (all_true_mask ctx)
  in
  let else_mask =
    match parent with
    | None -> not_cond
    | Some p -> Builder.and_ ctx.b ~name:"mask_else" p not_cond
  in
  let env_t = gen_masked_region ctx env ~region_mask:then_mask then_body in
  gen_masked_region ctx env_t ~region_mask:else_mask else_body

(* Uniform-condition loop (while / for): a header block with phis for
   every variable assigned in the body, a body, for [for]-loops a step
   block (the target of [continue]), and an exit block that merges the
   normal exit with any [break] edges. *)
and gen_loop ctx env ~mask ~cond ~body ~(step : Ast.stmt option) =
  let assigned =
    Ast.escaping_assigned_vars
      (body @ match step with Some s -> [ s ] | None -> [])
  in
  let assigned = List.filter (fun x -> SMap.mem x env) assigned in
  let header = Builder.fresh_block ctx.b "loop_header" in
  let body_blk = Builder.fresh_block ctx.b "loop_body" in
  let step_blk =
    match step with
    | Some _ -> Some (Builder.fresh_block ctx.b "loop_step")
    | None -> None
  in
  let exit_blk = Builder.fresh_block ctx.b "loop_exit" in
  let continue_label =
    match step_blk with
    | Some blk -> blk.Block.label
    | None -> header.Block.label
  in
  let pre_label = current_label ctx in
  Builder.br ctx.b header.Block.label;
  Builder.position_at_end ctx.b header;
  let phi_regs =
    List.map
      (fun x ->
        let v = lookup_val env Ast.no_pos x in
        let p =
          Builder.phi ctx.b ~name:x (vir_ty ctx v.cty) [ (pre_label, v.op) ]
        in
        (x, p, v.cty))
      assigned
  in
  let env_header =
    List.fold_left
      (fun env (x, p, cty) ->
        SMap.add x (Val { op = p; cty; linear = None }) env)
      env phi_regs
  in
  let vcond = gen_expr ctx env_header ~mask cond in
  let cond_end = current_label ctx in
  Builder.condbr ctx.b vcond.op body_blk.Block.label exit_blk.Block.label;
  (* body, with an active loop frame *)
  let frame =
    {
      lf_break = exit_blk.Block.label;
      lf_continue = continue_label;
      lf_breaks = [];
      lf_continues = [];
    }
  in
  ctx.loops <- frame :: ctx.loops;
  Builder.position_at_end ctx.b body_blk;
  let env_body = gen_stmts ctx env_header ~mask body in
  let body_fallthrough =
    if block_terminated ctx then []
    else begin
      let l = current_label ctx in
      Builder.br ctx.b continue_label;
      [ (l, env_body) ]
    end
  in
  ctx.loops <- List.tl ctx.loops;
  (* edges reaching the continue target *)
  let to_continue = frame.lf_continues @ body_fallthrough in
  (* the backedge environments that feed the header phis *)
  let to_header =
    match (step, step_blk) with
    | Some step_stmt, Some blk ->
      (* step block: merge all continue-target edges with phis, run the
         step, branch back to the header *)
      Builder.position_at_end ctx.b blk;
      if to_continue = [] then begin
        (* body always breaks: the step is unreachable *)
        Builder.unreachable ctx.b;
        []
      end
      else begin
        let env_step_in =
          SMap.mapi
            (fun name b ->
              match b with
              | Arr _ -> b
              | Val v -> (
                let values =
                  List.map
                    (fun (l, e) ->
                      ( l,
                        (match SMap.find_opt name e with
                        | Some (Val v') -> v'.op
                        | _ -> v.op) ))
                    to_continue
                in
                match values with
                | [ (_, single) ] -> Val { v with op = single; linear = None }
                | _ ->
                  let distinct =
                    List.sort_uniq compare (List.map snd values)
                  in
                  if List.length distinct = 1 then
                    Val { v with op = List.hd distinct; linear = None }
                  else
                    let p =
                      Builder.phi ctx.b ~name (vir_ty ctx v.cty) values
                    in
                    Val { op = p; cty = v.cty; linear = None }))
            env_header
        in
        let env_step_end = gen_stmt ctx env_step_in ~mask step_stmt in
        let step_end = current_label ctx in
        Builder.br ctx.b header.Block.label;
        [ (step_end, env_step_end) ]
      end
    | _ -> to_continue
  in
  (* Patch the backedge values into the header phis. *)
  Builder.position_at_end ctx.b header;
  List.iter
    (fun (x, p, _) ->
      List.iter
        (fun (from, envx) ->
          let v = lookup_val envx Ast.no_pos x in
          match p with
          | Instr.Reg (r, _) ->
            Builder.add_phi_incoming ctx.b r ~from ~value:v.op
          | Instr.Imm _ -> assert false)
        to_header)
    phi_regs;
  (* Exit block: merge the normal (condition-false) exit with breaks. *)
  Builder.position_at_end ctx.b exit_blk;
  let exit_edges = (cond_end, env_header) :: frame.lf_breaks in
  if List.length exit_edges = 1 then env_header
  else
    SMap.mapi
      (fun name b ->
        match b with
        | Arr _ -> b
        | Val v -> (
          let values =
            List.map
              (fun (l, e) ->
                ( l,
                  (match SMap.find_opt name e with
                  | Some (Val v') -> v'.op
                  | _ -> v.op) ))
              exit_edges
          in
          let distinct = List.sort_uniq compare (List.map snd values) in
          if List.length distinct = 1 then
            Val { v with op = List.hd distinct; linear = None }
          else
            let p = Builder.phi ctx.b ~name (vir_ty ctx v.cty) values in
            Val { op = p; cty = v.cty; linear = None }))
      env_header

(* The paper-faithful foreach lowering (Fig 7). *)
and gen_foreach ctx env dim start stop body =
  let vl = ctx.vl in
  let vstart = gen_expr ctx env ~mask:None start in
  let vstop = gen_expr ctx env ~mask:None stop in
  let n = Builder.sub ctx.b ~name:"n" vstop.op vstart.op in
  let nextras =
    Builder.srem ctx.b ~name:"nextras" n (Instr.Imm (Const.i32 vl))
  in
  let aligned_end = Builder.sub ctx.b ~name:"aligned_end" n nextras in
  let lr_ph = Builder.fresh_block ctx.b "foreach_full_body.lr.ph" in
  let full = Builder.fresh_block ctx.b "foreach_full_body" in
  let pia = Builder.fresh_block ctx.b "partial_inner_all_outer" in
  let pio = Builder.fresh_block ctx.b "partial_inner_only" in
  let reset = Builder.fresh_block ctx.b "foreach_reset" in
  let assigned =
    List.filter (fun x -> SMap.mem x env) (Ast.escaping_assigned_vars body)
  in
  let entry_label = current_label ctx in
  let have_full =
    Builder.icmp ctx.b ~name:"have_full" Instr.Isgt aligned_end
      (Instr.Imm (Const.i32 0))
  in
  Builder.condbr ctx.b have_full lr_ph.Block.label pia.Block.label;
  (* lr.ph: loop pre-header *)
  Builder.position_at_end ctx.b lr_ph;
  Builder.br ctx.b full.Block.label;
  (* full body *)
  Builder.position_at_end ctx.b full;
  let counter =
    Builder.phi ctx.b ~name:"counter" Vtype.i32
      [ (lr_ph.Block.label, Instr.Imm (Const.i32 0)) ]
  in
  let acc_phis =
    List.map
      (fun x ->
        let v = lookup_val env Ast.no_pos x in
        let p =
          Builder.phi ctx.b ~name:x (vir_ty ctx v.cty)
            [ (lr_ph.Block.label, v.op) ]
        in
        (x, p, v.cty))
      assigned
  in
  let env_full0 =
    List.fold_left
      (fun env (x, p, cty) ->
        SMap.add x (Val { op = p; cty; linear = None }) env)
      env acc_phis
  in
  let i_base = Builder.add ctx.b ~name:"i_base" vstart.op counter in
  let dim_val = linear_vector ctx i_base in
  let env_full = SMap.add dim (Val dim_val) env_full0 in
  let env_full_end = gen_stmts ctx env_full ~mask:None body in
  let full_end = current_label ctx in
  let new_counter =
    Builder.add ctx.b ~name:"new_counter" counter (Instr.Imm (Const.i32 vl))
  in
  let continue_full =
    Builder.icmp ctx.b ~name:"continue_full" Instr.Islt new_counter
      aligned_end
  in
  Builder.condbr ctx.b continue_full full.Block.label pia.Block.label;
  (* Patch loop-carried phis. *)
  Builder.position_at_end ctx.b full;
  (match counter with
  | Instr.Reg (r, _) ->
    Builder.add_phi_incoming ctx.b r ~from:full_end ~value:new_counter
  | Instr.Imm _ -> assert false);
  List.iter
    (fun (x, p, _) ->
      let v = lookup_val env_full_end Ast.no_pos x in
      match p with
      | Instr.Reg (r, _) ->
        Builder.add_phi_incoming ctx.b r ~from:full_end ~value:v.op
      | Instr.Imm _ -> assert false)
    acc_phis;
  (* partial_inner_all_outer: merge accumulators from entry / full body *)
  Builder.position_at_end ctx.b pia;
  let env_pia =
    List.fold_left
      (fun envacc (x, p, cty) ->
        let pre = lookup_val env Ast.no_pos x in
        let post = lookup_val env_full_end Ast.no_pos x in
        ignore p;
        let merged =
          Builder.phi ctx.b ~name:(x ^ "_m") (vir_ty ctx cty)
            [ (entry_label, pre.op); (full_end, post.op) ]
        in
        SMap.add x (Val { op = merged; cty; linear = None }) envacc)
      env acc_phis
  in
  let have_extras =
    Builder.icmp ctx.b ~name:"have_extras" Instr.Ine nextras
      (Instr.Imm (Const.i32 0))
  in
  Builder.condbr ctx.b have_extras pio.Block.label reset.Block.label;
  (* partial_inner_only: the n % Vl leftover iterations, masked *)
  Builder.position_at_end ctx.b pio;
  let p_base = Builder.add ctx.b ~name:"p_base" vstart.op aligned_end in
  let p_dim = linear_vector ctx p_base in
  let stop_vec = broadcast_op ctx vstop.op in
  let pmask =
    Builder.icmp ctx.b ~name:"pmask" Instr.Islt p_dim.op stop_vec
  in
  let env_pio = SMap.add dim (Val p_dim) env_pia in
  (* ISPC gates the masked leftover iterations on "any lane active". *)
  let env_pio_end = gen_masked_region ctx env_pio ~region_mask:pmask body in
  let pio_end = current_label ctx in
  Builder.br ctx.b reset.Block.label;
  (* foreach_reset: merge accumulators from pia / pio *)
  Builder.position_at_end ctx.b reset;
  let env_reset =
    List.fold_left
      (fun envacc (x, _, cty) ->
        let via_pia = lookup_val env_pia Ast.no_pos x in
        let via_pio = lookup_val env_pio_end Ast.no_pos x in
        let merged =
          if via_pia.op = via_pio.op then via_pia.op
          else
            Builder.phi ctx.b ~name:(x ^ "_r") (vir_ty ctx cty)
              [ (pia.Block.label, via_pia.op); (pio_end, via_pio.op) ]
        in
        SMap.add x (Val { op = merged; cty; linear = None }) envacc)
      env acc_phis
  in
  (* Record the lowering for the detector synthesis pass. *)
  let func = Builder.func ctx.b in
  (match (new_counter, aligned_end) with
  | Instr.Reg (nc, _), Instr.Reg (ae, _) ->
    func.Func.foreach_meta <-
      func.Func.foreach_meta
      @ [
          {
            Func.fm_full_body = full.Block.label;
            fm_exit = pia.Block.label;
            fm_new_counter = nc;
            fm_aligned_end = ae;
            fm_vl = vl;
          };
        ]
  | _ -> ());
  env_reset

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)

let gen_func ctx_proto (f : Ast.func) =
  let params =
    List.map
      (fun (prm : Ast.param) ->
        let ty =
          if prm.Ast.p_is_array then Vtype.ptr
          else Vtype.Scalar (scalar_of_base prm.Ast.p_base)
        in
        (prm.Ast.p_name, ty))
      f.Ast.f_params
  in
  let ret_ty =
    match f.Ast.f_ret with
    | None -> Vtype.Void
    | Some t -> vir_ty ctx_proto t
  in
  let b = Builder.define ctx_proto.m ~name:f.Ast.f_name ~params ~ret_ty in
  let ctx = { ctx_proto with b; loops = [] } in
  let entry = Builder.new_block ctx.b "allocas" in
  Builder.position_at_end ctx.b entry;
  let env =
    List.fold_left
      (fun env (prm : Ast.param) ->
        let op = Builder.param ctx.b prm.Ast.p_name in
        let binding =
          if prm.Ast.p_is_array then
            Arr { base_ptr = op; elem = prm.Ast.p_base }
          else
            Val
              { op; cty = Ast.uniform prm.Ast.p_base; linear = None }
        in
        SMap.add prm.Ast.p_name binding env)
      SMap.empty f.Ast.f_params
  in
  let body, final_return =
    match List.rev f.Ast.f_body with
    | { Ast.s = Ast.Return r; _ } :: rev_rest -> (List.rev rev_rest, r)
    | _ -> (f.Ast.f_body, None)
  in
  let env_end = gen_stmts ctx env ~mask:None body in
  (match (f.Ast.f_ret, final_return) with
  | None, _ -> Builder.ret ctx.b None
  | Some rt, Some e ->
    let v = coerce_to ctx rt (gen_expr ctx env_end ~mask:None e) in
    Builder.ret ctx.b (Some v.op)
  | Some _, None ->
    error f.Ast.f_pos "codegen: missing return in %s" f.Ast.f_name)

(* Compile a checked program to a fresh VIR module for [target]. *)
let gen_program ?(module_name = "minispc") (target : Target.t)
    (prog : Ast.program) : Vmodule.t =
  let m = Vmodule.create module_name in
  let ctx_proto =
    {
      m;
      b = Builder.create (Func.create ~name:"<proto>" ~params:[] ~ret_ty:Vtype.Void);
      target;
      vl = Target.vl target;
      prog;
      loops = [];
    }
  in
  List.iter (gen_func ctx_proto) prog;
  m

lib/minispc/driver.ml: Ast Codegen Lexer List Parser Printf String Typecheck Vir

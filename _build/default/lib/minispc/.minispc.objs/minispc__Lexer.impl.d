lib/minispc/lexer.ml: Ast Printf String

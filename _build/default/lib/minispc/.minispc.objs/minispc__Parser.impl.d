lib/minispc/parser.ml: Ast Lexer List Option Printf

lib/minispc/typecheck.ml: Ast List Printf

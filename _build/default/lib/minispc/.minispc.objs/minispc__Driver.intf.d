lib/minispc/driver.mli: Ast Vir

lib/minispc/ast.ml: List

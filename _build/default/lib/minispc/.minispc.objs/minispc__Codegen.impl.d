lib/minispc/codegen.ml: Ast Block Builder Const Func Instr Intrinsics List Map Printf String Target Vir Vmodule Vtype

(** Front-to-back mini-ISPC compilation: source text -> verified VIR. *)

type error = {
  stage : [ `Lex | `Parse | `Type | `Codegen | `Verify ];
  message : string;
  pos : Ast.pos;
}

val error_to_string : error -> string

exception Error of error

(** Lex, parse and typecheck only (no code generation). *)
val frontend : string -> Ast.program

(** Compile [src] for one vector target. The result has been through
    dead-code elimination (the paper's toolchain runs at -O3) and the
    verifier.
    @raise Error on any front-end, codegen or verification failure. *)
val compile :
  ?module_name:string -> Vir.Target.t -> string -> Vir.Vmodule.t

(** Compile for both paper targets (AVX and SSE). *)
val compile_both :
  ?module_name:string -> string -> (Vir.Target.t * Vir.Vmodule.t) list

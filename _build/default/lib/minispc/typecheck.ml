(** Static semantics of mini-ISPC.

    Beyond ordinary typing, the checker enforces the SPMD restrictions
    that make the mask-based lowering sound:
    - [while]/[for] conditions and [foreach] bounds must be uniform;
    - a varying [if] body is straight-line (declarations, assignments,
      stores, calls, nested varying [if]s) — no loops or returns under a
      divergent mask;
    - uniform variables cannot be assigned under a varying mask or from
      inside a [foreach] body (lanes would race);
    - [foreach] must not nest inside another [foreach] (as in ISPC);
    - [return] appears only as the final top-level statement. *)

exception Type_error of string * Ast.pos

let error pos fmt = Printf.ksprintf (fun s -> raise (Type_error (s, pos))) fmt

type var_info =
  | Scalar_var of Ast.ty
  | Array_var of Ast.base_ty  (** array parameter *)

type func_sig = {
  sig_params : Ast.param list;
  sig_ret : Ast.ty option;
}

type env = {
  vars : (string * var_info) list;
  funcs : (string * func_sig) list;
  (* context flags *)
  in_foreach : bool;
  under_varying_mask : bool;
  in_uniform_loop : bool;
  (* names bound outside the innermost foreach body *)
  outer_uniforms : string list;
}

let lookup_var env name = List.assoc_opt name env.vars

let bind env name info = { env with vars = (name, info) :: env.vars }

(* ---------------- builtins ---------------- *)

type builtin =
  | Math1  (** (float) -> float, qualifier-preserving *)
  | Math2  (** (float, float) -> float, qualifier join *)
  | Reduce (** (varying T) -> uniform T *)

let builtin_of = function
  | "sqrt" | "rsqrt" | "exp" | "log" | "sin" | "cos" | "abs" | "floor" ->
    Some Math1
  | "pow" | "min" | "max" -> Some Math2
  | "reduce_add" | "reduce_min" | "reduce_max" -> Some Reduce
  | _ -> None

(* ---------------- expressions ---------------- *)

let join_qual a b =
  match (a, b) with
  | Ast.Uniform, Ast.Uniform -> Ast.Uniform
  | _ -> Ast.Varying

let rec infer_expr env (e : Ast.expr) : Ast.ty =
  match e.Ast.e with
  | Ast.Int_lit _ -> Ast.uniform Ast.Tint
  | Ast.Float_lit _ -> Ast.uniform Ast.Tfloat
  | Ast.Bool_lit _ -> Ast.uniform Ast.Tbool
  | Ast.Var x -> (
    match lookup_var env x with
    | Some (Scalar_var t) -> t
    | Some (Array_var _) ->
      error e.Ast.epos "array %s used as a scalar value" x
    | None -> error e.Ast.epos "unbound variable %s" x)
  | Ast.Index (a, ix) -> (
    match lookup_var env a with
    | Some (Array_var base) ->
      let ixt = infer_expr env ix in
      if ixt.Ast.base <> Ast.Tint then
        error ix.Ast.epos "array index must be int, got %s" (Ast.ty_name ixt);
      { Ast.q = ixt.Ast.q; base }
    | Some (Scalar_var _) -> error e.Ast.epos "%s is not an array" a
    | None -> error e.Ast.epos "unbound array %s" a)
  | Ast.Unop (Ast.Neg, a) ->
    let t = infer_expr env a in
    if t.Ast.base = Ast.Tbool then
      error e.Ast.epos "cannot negate a bool";
    t
  | Ast.Unop (Ast.Not, a) ->
    let t = infer_expr env a in
    if t.Ast.base <> Ast.Tbool then
      error e.Ast.epos "'!' expects bool, got %s" (Ast.ty_name t);
    t
  | Ast.Binop (op, a, b) -> (
    let ta = infer_expr env a and tb = infer_expr env b in
    if ta.Ast.base <> tb.Ast.base then
      error e.Ast.epos "operand type mismatch: %s vs %s (insert a cast)"
        (Ast.ty_name ta) (Ast.ty_name tb);
    let q = join_qual ta.Ast.q tb.Ast.q in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
      if ta.Ast.base = Ast.Tbool then
        error e.Ast.epos "arithmetic on bool";
      { Ast.q; base = ta.Ast.base }
    | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
      if ta.Ast.base <> Ast.Tint then
        error e.Ast.epos "integer operator on %s" (Ast.base_ty_name ta.Ast.base);
      { Ast.q; base = Ast.Tint }
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if ta.Ast.base = Ast.Tbool then
        error e.Ast.epos "ordering comparison on bool";
      { Ast.q; base = Ast.Tbool }
    | Ast.Eq | Ast.Ne -> { Ast.q; base = Ast.Tbool }
    | Ast.And_and | Ast.Or_or ->
      if ta.Ast.base <> Ast.Tbool then
        error e.Ast.epos "logical operator on %s" (Ast.base_ty_name ta.Ast.base);
      { Ast.q; base = Ast.Tbool })
  | Ast.Cast (base, a) ->
    let t = infer_expr env a in
    if t.Ast.base = Ast.Tbool || base = Ast.Tbool then
      error e.Ast.epos "casts between bool and numeric types are not supported";
    { Ast.q = t.Ast.q; base }
  | Ast.Select (c, a, b) ->
    let tc = infer_expr env c in
    if tc.Ast.base <> Ast.Tbool then
      error c.Ast.epos "select condition must be bool";
    let ta = infer_expr env a and tb = infer_expr env b in
    if ta.Ast.base <> tb.Ast.base then
      error e.Ast.epos "select arms differ: %s vs %s" (Ast.ty_name ta)
        (Ast.ty_name tb);
    { Ast.q = join_qual tc.Ast.q (join_qual ta.Ast.q tb.Ast.q);
      base = ta.Ast.base }
  | Ast.Call (name, args) -> infer_call env e.Ast.epos name args

and infer_call env pos name args =
  match infer_call_opt env pos name args with
  | Some t -> t
  | None -> error pos "void function %s used as a value" name

(* Returns None for a well-typed call to a void function. *)
and infer_call_opt env pos name args : Ast.ty option =
  match builtin_of name with
  | Some Math1 -> (
    match args with
    | [ a ] ->
      let t = infer_expr env a in
      if t.Ast.base <> Ast.Tfloat then
        error pos "%s expects float, got %s" name (Ast.ty_name t);
      Some t
    | _ -> error pos "%s expects 1 argument" name)
  | Some Math2 -> (
    match args with
    | [ a; b ] ->
      let ta = infer_expr env a and tb = infer_expr env b in
      if ta.Ast.base <> Ast.Tfloat || tb.Ast.base <> Ast.Tfloat then
        error pos "%s expects floats" name;
      Some { Ast.q = join_qual ta.Ast.q tb.Ast.q; base = Ast.Tfloat }
    | _ -> error pos "%s expects 2 arguments" name)
  | Some Reduce -> (
    match args with
    | [ a ] ->
      let t = infer_expr env a in
      if t.Ast.base = Ast.Tbool then error pos "%s on bool" name;
      Some { Ast.q = Ast.Uniform; base = t.Ast.base }
    | _ -> error pos "%s expects 1 argument" name)
  | None -> (
    match List.assoc_opt name env.funcs with
    | None -> error pos "unknown function %s" name
    | Some fsig ->
      if List.length args <> List.length fsig.sig_params then
        error pos "%s expects %d arguments, got %d" name
          (List.length fsig.sig_params)
          (List.length args);
      List.iter2
        (fun (prm : Ast.param) arg ->
          if prm.Ast.p_is_array then begin
            match arg.Ast.e with
            | Ast.Var a -> (
              match lookup_var env a with
              | Some (Array_var b) when b = prm.Ast.p_base -> ()
              | Some (Array_var _) ->
                error arg.Ast.epos "array element type mismatch for %s"
                  prm.Ast.p_name
              | _ ->
                error arg.Ast.epos "argument %s must be an array"
                  prm.Ast.p_name)
            | _ ->
              error arg.Ast.epos "argument %s must be an array name"
                prm.Ast.p_name
          end
          else begin
            let t = infer_expr env arg in
            if t.Ast.base <> prm.Ast.p_base || t.Ast.q <> Ast.Uniform then
              error arg.Ast.epos
                "argument %s must be uniform %s, got %s" prm.Ast.p_name
                (Ast.base_ty_name prm.Ast.p_base)
                (Ast.ty_name t)
          end)
        fsig.sig_params args;
      fsig.sig_ret)

(* ---------------- statements ---------------- *)

(* Statements allowed under a divergent (varying-if) mask. *)
let rec check_straight_line env (stmts : Ast.stmt list) =
  ignore
    (List.fold_left
       (fun env st ->
         match st.Ast.s with
         | Ast.Decl _ | Ast.Assign _ | Ast.Store _ | Ast.Expr_stmt _
         | Ast.Assert _ ->
           check_stmt env st
         | Ast.If (cond, _, _) ->
           let t = infer_expr env cond in
           if t.Ast.q = Ast.Uniform then
             error st.Ast.spos
               "uniform control flow under a varying mask is not supported";
           check_stmt env st
         | Ast.While _ | Ast.For _ | Ast.Foreach _ ->
           error st.Ast.spos "loops are not allowed under a varying mask"
         | Ast.Break | Ast.Continue ->
           error st.Ast.spos
             "break/continue are not allowed under a varying mask"
         | Ast.Return _ ->
           error st.Ast.spos "return is not allowed under a varying mask")
       env stmts)

and check_stmt env (st : Ast.stmt) : env =
  match st.Ast.s with
  | Ast.Decl (ty, name, e) ->
    let te = infer_expr env e in
    if te.Ast.base <> ty.Ast.base then
      error st.Ast.spos "initialiser for %s has type %s, expected %s" name
        (Ast.ty_name te) (Ast.ty_name ty);
    if ty.Ast.q = Ast.Uniform && te.Ast.q = Ast.Varying then
      error st.Ast.spos "cannot initialise uniform %s from a varying value"
        name;
    if ty.Ast.q = Ast.Uniform && env.under_varying_mask then
      error st.Ast.spos
        "cannot declare uniform %s under a varying mask" name;
    bind env name (Scalar_var ty)
  | Ast.Assign (name, e) -> (
    match lookup_var env name with
    | None -> error st.Ast.spos "assignment to unbound variable %s" name
    | Some (Array_var _) ->
      error st.Ast.spos "cannot assign to array %s" name
    | Some (Scalar_var ty) ->
      let te = infer_expr env e in
      if te.Ast.base <> ty.Ast.base then
        error st.Ast.spos "assigning %s to %s %s" (Ast.ty_name te)
          (Ast.ty_name ty) name;
      if ty.Ast.q = Ast.Uniform then begin
        if te.Ast.q = Ast.Varying then
          error st.Ast.spos "cannot assign varying value to uniform %s" name;
        if env.under_varying_mask then
          error st.Ast.spos "cannot assign uniform %s under a varying mask"
            name;
        if env.in_foreach && List.mem name env.outer_uniforms then
          error st.Ast.spos
            "cannot assign uniform %s from inside a foreach body" name
      end;
      env)
  | Ast.Store (a, ix, e) -> (
    match lookup_var env a with
    | Some (Array_var base) ->
      let ixt = infer_expr env ix in
      if ixt.Ast.base <> Ast.Tint then
        error ix.Ast.epos "array index must be int";
      let te = infer_expr env e in
      if te.Ast.base <> base then
        error st.Ast.spos "storing %s into %s array" (Ast.ty_name te)
          (Ast.base_ty_name base);
      if ixt.Ast.q = Ast.Uniform && te.Ast.q = Ast.Varying then
        error st.Ast.spos
          "cannot store a varying value through a uniform index";
      if ixt.Ast.q = Ast.Uniform && env.under_varying_mask then
        error st.Ast.spos
          "cannot store through a uniform index under a varying mask";
      env
    | Some (Scalar_var _) -> error st.Ast.spos "%s is not an array" a
    | None -> error st.Ast.spos "unbound array %s" a)
  | Ast.If (cond, then_body, else_body) ->
    let tc = infer_expr env cond in
    if tc.Ast.base <> Ast.Tbool then
      error cond.Ast.epos "if condition must be bool";
    if tc.Ast.q = Ast.Varying then begin
      let env' = { env with under_varying_mask = true } in
      check_straight_line env' then_body;
      check_straight_line env' else_body;
      env
    end
    else begin
      check_body env then_body;
      check_body env else_body;
      env
    end
  | Ast.While (cond, body) ->
    let tc = infer_expr env cond in
    if tc.Ast.base <> Ast.Tbool || tc.Ast.q <> Ast.Uniform then
      error cond.Ast.epos "while condition must be uniform bool";
    check_body { env with in_uniform_loop = true } body;
    env
  | Ast.For (init, cond, step, body) ->
    let env' = check_stmt env init in
    let tc = infer_expr env' cond in
    if tc.Ast.base <> Ast.Tbool || tc.Ast.q <> Ast.Uniform then
      error cond.Ast.epos "for condition must be uniform bool";
    (match step.Ast.s with
    | Ast.Assign _ | Ast.Expr_stmt _ | Ast.Store _ -> ()
    | _ -> error step.Ast.spos "for step must be an assignment");
    check_body { env' with in_uniform_loop = true } (body @ [ step ]);
    env
  | Ast.Foreach (dim, start, stop, body) ->
    if env.in_foreach then
      error st.Ast.spos "nested foreach loops are not supported";
    if env.under_varying_mask then
      error st.Ast.spos "foreach under a varying mask is not supported";
    let ts = infer_expr env start and te = infer_expr env stop in
    if ts.Ast.base <> Ast.Tint || ts.Ast.q <> Ast.Uniform then
      error start.Ast.epos "foreach start bound must be uniform int";
    if te.Ast.base <> Ast.Tint || te.Ast.q <> Ast.Uniform then
      error stop.Ast.epos "foreach end bound must be uniform int";
    let outer_uniforms =
      List.filter_map
        (fun (name, info) ->
          match info with
          | Scalar_var { Ast.q = Ast.Uniform; _ } -> Some name
          | _ -> None)
        env.vars
    in
    let env' =
      bind
        (* a break/continue may not cross the foreach boundary: the
           chunked iterations are parallel, not sequential *)
        { env with in_foreach = true; outer_uniforms;
          in_uniform_loop = false }
        dim
        (Scalar_var (Ast.varying Ast.Tint))
    in
    check_body env' body;
    env
  | Ast.Return _ ->
    error st.Ast.spos
      "return is only allowed as the final top-level statement"
  | Ast.Expr_stmt e -> (
    match e.Ast.e with
    | Ast.Call (name, args) ->
      ignore (infer_call_opt env e.Ast.epos name args);
      env
    | _ -> error st.Ast.spos "expression statement must be a call")
  | Ast.Assert e ->
    let t = infer_expr env e in
    if t.Ast.base <> Ast.Tbool then
      error e.Ast.epos "assert expects a bool condition, got %s"
        (Ast.ty_name t);
    env
  | Ast.Break | Ast.Continue ->
    if not env.in_uniform_loop then
      error st.Ast.spos
        "break/continue are only allowed inside a uniform while/for loop";
    env

(* break/continue (like return) must be the last statement of their
   enclosing block: anything after them would be unreachable. *)
and check_body env stmts =
  let n = List.length stmts in
  ignore
    (List.fold_left
       (fun (env, k) st ->
         (match st.Ast.s with
         | (Ast.Break | Ast.Continue) when k < n - 1 ->
           error st.Ast.spos
             "break/continue must be the last statement of its block"
         | _ -> ());
         (check_stmt env st, k + 1))
       (env, 0) stmts)

(* ---------------- functions ---------------- *)

let check_func funcs (f : Ast.func) =
  let env =
    {
      vars =
        List.map
          (fun (prm : Ast.param) ->
            ( prm.Ast.p_name,
              if prm.Ast.p_is_array then Array_var prm.Ast.p_base
              else Scalar_var (Ast.uniform prm.Ast.p_base) ))
          f.Ast.f_params;
      funcs;
      in_foreach = false;
      under_varying_mask = false;
      in_uniform_loop = false;
      outer_uniforms = [];
    }
  in
  (* Split the trailing return (if any) from the body proper. *)
  let body, final_return =
    match List.rev f.Ast.f_body with
    | { Ast.s = Ast.Return r; spos } :: rev_rest ->
      (List.rev rev_rest, Some (r, spos))
    | _ -> (f.Ast.f_body, None)
  in
  let env' = List.fold_left check_stmt env body in
  match (f.Ast.f_ret, final_return) with
  | None, None -> ()
  | None, Some (Some _, pos) ->
    error pos "void function %s returns a value" f.Ast.f_name
  | None, Some (None, _) -> ()
  | Some _, (None | Some (None, _)) ->
    error f.Ast.f_pos "function %s must end with 'return <expr>;'"
      f.Ast.f_name
  | Some rt, Some (Some e, pos) ->
    let t = infer_expr env' e in
    if t.Ast.base <> rt.Ast.base then
      error pos "return type mismatch in %s: %s vs %s" f.Ast.f_name
        (Ast.ty_name t) (Ast.ty_name rt);
    if rt.Ast.q = Ast.Uniform && t.Ast.q = Ast.Varying then
      error pos "function %s returns varying value but declares uniform"
        f.Ast.f_name

let check_program (prog : Ast.program) =
  let sigs =
    List.map
      (fun (f : Ast.func) ->
        (f.Ast.f_name, { sig_params = f.Ast.f_params; sig_ret = f.Ast.f_ret }))
      prog
  in
  let names = List.map fst sigs in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup names with
  | Some x ->
    raise (Type_error ("duplicate function " ^ x, Ast.no_pos))
  | None -> ());
  List.iter (check_func sigs) prog

(** Recursive-descent parser for mini-ISPC with precedence climbing. *)

exception Parse_error of string * Ast.pos

let error pos fmt = Printf.ksprintf (fun s -> raise (Parse_error (s, pos))) fmt

type t = { lx : Lexer.t }

let create src = { lx = Lexer.create src }

let peek p = Lexer.peek p.lx

let next p = Lexer.next p.lx

let expect p tok =
  let got, pos = next p in
  if got <> tok then
    error pos "expected %s but found %s" (Lexer.token_name tok)
      (Lexer.token_name got)

let accept p tok =
  let got, _ = peek p in
  if got = tok then begin
    ignore (next p);
    true
  end
  else false

let expect_ident p =
  match next p with
  | Lexer.IDENT s, _ -> s
  | got, pos ->
    error pos "expected identifier but found %s" (Lexer.token_name got)

(* ---------------- types ---------------- *)

let parse_base_ty p =
  match next p with
  | Lexer.KW_int, _ -> Ast.Tint
  | Lexer.KW_float, _ -> Ast.Tfloat
  | Lexer.KW_bool, _ -> Ast.Tbool
  | got, pos -> error pos "expected a type but found %s" (Lexer.token_name got)

(* Optional qualifier; ISPC's default for locals is varying. *)
let parse_qual_opt p =
  if accept p Lexer.KW_uniform then Some Ast.Uniform
  else if accept p Lexer.KW_varying then Some Ast.Varying
  else None

let starts_type (tok : Lexer.token) =
  match tok with
  | Lexer.KW_uniform | Lexer.KW_varying | Lexer.KW_int | Lexer.KW_float
  | Lexer.KW_bool -> true
  | _ -> false

(* ---------------- expressions ---------------- *)

let binop_of_token (tok : Lexer.token) : (Ast.binop * int) option =
  (* (operator, precedence); higher binds tighter *)
  match tok with
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Mod, 10)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.EQEQ -> Some (Ast.Eq, 6)
  | Lexer.NEQ -> Some (Ast.Ne, 6)
  | Lexer.AMP -> Some (Ast.Band, 5)
  | Lexer.CARET -> Some (Ast.Bxor, 4)
  | Lexer.PIPE -> Some (Ast.Bor, 3)
  | Lexer.ANDAND -> Some (Ast.And_and, 2)
  | Lexer.OROR -> Some (Ast.Or_or, 1)
  | _ -> None

let rec parse_expr p = parse_binop p 0

and parse_binop p min_prec =
  let lhs = ref (parse_unary p) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (fst (peek p)) with
    | Some (op, prec) when prec >= min_prec ->
      let _, pos = next p in
      let rhs = parse_binop p (prec + 1) in
      lhs := { Ast.e = Ast.Binop (op, !lhs, rhs); epos = pos }
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary p =
  let tok, pos = peek p in
  match tok with
  | Lexer.MINUS ->
    ignore (next p);
    let e = parse_unary p in
    { Ast.e = Ast.Unop (Ast.Neg, e); epos = pos }
  | Lexer.NOT ->
    ignore (next p);
    let e = parse_unary p in
    { Ast.e = Ast.Unop (Ast.Not, e); epos = pos }
  | _ -> parse_postfix p

and parse_postfix p = parse_primary p

and parse_primary p =
  let tok, pos = next p in
  match tok with
  | Lexer.INT n -> { Ast.e = Ast.Int_lit n; epos = pos }
  | Lexer.FLOAT f -> { Ast.e = Ast.Float_lit f; epos = pos }
  | Lexer.KW_true -> { Ast.e = Ast.Bool_lit true; epos = pos }
  | Lexer.KW_false -> { Ast.e = Ast.Bool_lit false; epos = pos }
  | Lexer.LPAREN -> (
    (* either a cast "(int) e" or a parenthesised expression *)
    match fst (peek p) with
    | Lexer.KW_int | Lexer.KW_float | Lexer.KW_bool ->
      let base = parse_base_ty p in
      expect p Lexer.RPAREN;
      let e = parse_unary p in
      { Ast.e = Ast.Cast (base, e); epos = pos }
    | _ ->
      let e = parse_expr p in
      expect p Lexer.RPAREN;
      e)
  | Lexer.IDENT name -> (
    match fst (peek p) with
    | Lexer.LPAREN ->
      ignore (next p);
      let args = parse_call_args p in
      if name = "select" then
        match args with
        | [ c; a; b ] -> { Ast.e = Ast.Select (c, a, b); epos = pos }
        | _ -> error pos "select expects exactly 3 arguments"
      else { Ast.e = Ast.Call (name, args); epos = pos }
    | Lexer.LBRACKET ->
      ignore (next p);
      let ix = parse_expr p in
      expect p Lexer.RBRACKET;
      { Ast.e = Ast.Index (name, ix); epos = pos }
    | _ -> { Ast.e = Ast.Var name; epos = pos })
  | got -> error pos "expected an expression but found %s" (Lexer.token_name got)

and parse_call_args p =
  if accept p Lexer.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr p in
      if accept p Lexer.COMMA then go (e :: acc)
      else begin
        expect p Lexer.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []

(* ---------------- statements ---------------- *)

let desugar_compound pos (target : [ `Var of string | `Idx of string * Ast.expr ])
    (op : Ast.binop option) (rhs : Ast.expr) : Ast.stmt_kind =
  let read =
    match target with
    | `Var x -> { Ast.e = Ast.Var x; epos = pos }
    | `Idx (a, i) -> { Ast.e = Ast.Index (a, i); epos = pos }
  in
  let value =
    match op with
    | None -> rhs
    | Some op -> { Ast.e = Ast.Binop (op, read, rhs); epos = pos }
  in
  match target with
  | `Var x -> Ast.Assign (x, value)
  | `Idx (a, i) -> Ast.Store (a, i, value)

let rec parse_stmt p : Ast.stmt =
  let tok, pos = peek p in
  match tok with
  | Lexer.KW_break ->
    ignore (next p);
    expect p Lexer.SEMI;
    { Ast.s = Ast.Break; spos = pos }
  | Lexer.KW_continue ->
    ignore (next p);
    expect p Lexer.SEMI;
    { Ast.s = Ast.Continue; spos = pos }
  | Lexer.KW_assert ->
    ignore (next p);
    expect p Lexer.LPAREN;
    let e = parse_expr p in
    expect p Lexer.RPAREN;
    expect p Lexer.SEMI;
    { Ast.s = Ast.Assert e; spos = pos }
  | Lexer.KW_return ->
    ignore (next p);
    if accept p Lexer.SEMI then { Ast.s = Ast.Return None; spos = pos }
    else
      let e = parse_expr p in
      expect p Lexer.SEMI;
      { Ast.s = Ast.Return (Some e); spos = pos }
  | Lexer.KW_if ->
    ignore (next p);
    expect p Lexer.LPAREN;
    let cond = parse_expr p in
    expect p Lexer.RPAREN;
    let then_body = parse_block_or_stmt p in
    let else_body =
      if accept p Lexer.KW_else then parse_block_or_stmt p else []
    in
    { Ast.s = Ast.If (cond, then_body, else_body); spos = pos }
  | Lexer.KW_while ->
    ignore (next p);
    expect p Lexer.LPAREN;
    let cond = parse_expr p in
    expect p Lexer.RPAREN;
    let body = parse_block_or_stmt p in
    { Ast.s = Ast.While (cond, body); spos = pos }
  | Lexer.KW_for ->
    ignore (next p);
    expect p Lexer.LPAREN;
    let init = parse_simple_stmt p in
    expect p Lexer.SEMI;
    let cond = parse_expr p in
    expect p Lexer.SEMI;
    let step = parse_simple_stmt p in
    expect p Lexer.RPAREN;
    let body = parse_block_or_stmt p in
    { Ast.s = Ast.For (init, cond, step, body); spos = pos }
  | Lexer.KW_foreach ->
    ignore (next p);
    expect p Lexer.LPAREN;
    let dim = expect_ident p in
    expect p Lexer.ASSIGN;
    let start = parse_expr p in
    expect p Lexer.ELLIPSIS;
    let stop = parse_expr p in
    expect p Lexer.RPAREN;
    let body = parse_block_or_stmt p in
    { Ast.s = Ast.Foreach (dim, start, stop, body); spos = pos }
  | _ ->
    let st = parse_simple_stmt p in
    expect p Lexer.SEMI;
    st

(* Statements legal in a 'for' header: declaration, assignment, call. *)
and parse_simple_stmt p : Ast.stmt =
  let tok, pos = peek p in
  if starts_type tok then begin
    let q = parse_qual_opt p in
    let base = parse_base_ty p in
    let name = expect_ident p in
    expect p Lexer.ASSIGN;
    let e = parse_expr p in
    let ty = { Ast.q = Option.value q ~default:Ast.Varying; base } in
    { Ast.s = Ast.Decl (ty, name, e); spos = pos }
  end
  else
    match tok with
    | Lexer.IDENT name -> (
      ignore (next p);
      match fst (peek p) with
      | Lexer.LBRACKET ->
        ignore (next p);
        let ix = parse_expr p in
        expect p Lexer.RBRACKET;
        let op_tok, _ = next p in
        let op =
          match op_tok with
          | Lexer.ASSIGN -> None
          | Lexer.PLUS_ASSIGN -> Some Ast.Add
          | Lexer.MINUS_ASSIGN -> Some Ast.Sub
          | Lexer.STAR_ASSIGN -> Some Ast.Mul
          | Lexer.SLASH_ASSIGN -> Some Ast.Div
          | got -> error pos "expected assignment, found %s" (Lexer.token_name got)
        in
        let rhs = parse_expr p in
        { Ast.s = desugar_compound pos (`Idx (name, ix)) op rhs; spos = pos }
      | Lexer.ASSIGN | Lexer.PLUS_ASSIGN | Lexer.MINUS_ASSIGN
      | Lexer.STAR_ASSIGN | Lexer.SLASH_ASSIGN ->
        let op_tok, _ = next p in
        let op =
          match op_tok with
          | Lexer.ASSIGN -> None
          | Lexer.PLUS_ASSIGN -> Some Ast.Add
          | Lexer.MINUS_ASSIGN -> Some Ast.Sub
          | Lexer.STAR_ASSIGN -> Some Ast.Mul
          | Lexer.SLASH_ASSIGN -> Some Ast.Div
          | _ -> assert false
        in
        let rhs = parse_expr p in
        { Ast.s = desugar_compound pos (`Var name) op rhs; spos = pos }
      | Lexer.LPAREN ->
        ignore (next p);
        let args = parse_call_args p in
        {
          Ast.s = Ast.Expr_stmt { Ast.e = Ast.Call (name, args); epos = pos };
          spos = pos;
        }
      | got ->
        error pos "expected assignment or call, found %s"
          (Lexer.token_name got))
    | got -> error pos "expected a statement but found %s" (Lexer.token_name got)

and parse_block_or_stmt p : Ast.stmt list =
  if accept p Lexer.LBRACE then begin
    let rec go acc =
      if accept p Lexer.RBRACE then List.rev acc else go (parse_stmt p :: acc)
    in
    go []
  end
  else [ parse_stmt p ]

(* ---------------- functions and programs ---------------- *)

let parse_param p : Ast.param =
  (* "uniform T name[]" for arrays, "uniform T name" / "T name" for
     scalars; scalar parameters are always uniform (ABI boundary). *)
  let _ = accept p Lexer.KW_uniform in
  let base = parse_base_ty p in
  let name = expect_ident p in
  let is_array =
    if accept p Lexer.LBRACKET then begin
      expect p Lexer.RBRACKET;
      true
    end
    else false
  in
  { Ast.p_name = name; p_base = base; p_is_array = is_array }

let parse_func p : Ast.func =
  let _, pos = peek p in
  let export = accept p Lexer.KW_export in
  let ret =
    if accept p Lexer.KW_void then None
    else begin
      let q = parse_qual_opt p in
      let base = parse_base_ty p in
      Some { Ast.q = Option.value q ~default:Ast.Uniform; base }
    end
  in
  let name = expect_ident p in
  expect p Lexer.LPAREN;
  let params =
    if accept p Lexer.RPAREN then []
    else
      let rec go acc =
        let prm = parse_param p in
        if accept p Lexer.COMMA then go (prm :: acc)
        else begin
          expect p Lexer.RPAREN;
          List.rev (prm :: acc)
        end
      in
      go []
  in
  expect p Lexer.LBRACE;
  let rec go acc =
    if accept p Lexer.RBRACE then List.rev acc else go (parse_stmt p :: acc)
  in
  let body = go [] in
  {
    Ast.f_name = name;
    f_export = export;
    f_ret = ret;
    f_params = params;
    f_body = body;
    f_pos = pos;
  }

let parse_program src : Ast.program =
  let p = create src in
  let rec go acc =
    if fst (peek p) = Lexer.EOF then List.rev acc
    else go (parse_func p :: acc)
  in
  go []

(** Abstract syntax of mini-ISPC.

    The language is the subset of Intel ISPC that the paper's benchmarks
    and detector study exercise: [uniform]/[varying] qualifiers,
    [foreach] loops over one dimension variable, varying [if] lowered to
    execution masks, uniform structured control flow, arrays passed as
    [uniform T name[]] parameters, lane-wise math builtins and cross-lane
    reductions. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

type base_ty = Tint | Tfloat | Tbool

type qual = Uniform | Varying

type ty = { q : qual; base : base_ty }

let uniform b = { q = Uniform; base = b }

let varying b = { q = Varying; base = b }

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And_and | Or_or
  | Band | Bor | Bxor | Shl | Shr

type expr = { e : expr_kind; epos : pos }

and expr_kind =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Index of string * expr          (** [a\[i\]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list      (** builtin or program function *)
  | Cast of base_ty * expr          (** [(int)e], [(float)e] *)
  | Select of expr * expr * expr    (** [select(c, a, b)] *)

type stmt = { s : stmt_kind; spos : pos }

and stmt_kind =
  | Decl of ty * string * expr        (** [uniform int x = e;] *)
  | Assign of string * expr           (** [x = e;] *)
  | Store of string * expr * expr     (** [a\[i\] = e;] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt * expr * stmt * stmt list
  | Foreach of string * expr * expr * stmt list
      (** [foreach (i = e0 ... e1) body] *)
  | Return of expr option
  | Expr_stmt of expr                 (** call for effect *)
  | Assert of expr
      (** [assert(cond);] — a manually inserted source-level error
          detector (cf. the paper's introduction); lowered to a call to
          the detector runtime, flagging rather than aborting *)
  | Break  (** exit the innermost uniform loop *)
  | Continue  (** next iteration of the innermost uniform loop *)

type param = {
  p_name : string;
  p_base : base_ty;
  p_is_array : bool;  (** [uniform T name\[\]]: pointer to elements *)
}

type func = {
  f_name : string;
  f_export : bool;
  f_ret : ty option;  (** None = void *)
  f_params : param list;
  f_body : stmt list;
  f_pos : pos;
}

type program = func list

(* Variables assigned in a statement list that are declared outside it:
   the set that needs loop-carried phis when the list is a loop body.
   Declarations shadow — an assignment to a name declared earlier in the
   same list (or an enclosing nested list) does not escape. *)
let escaping_assigned_vars (stmts : stmt list) : string list =
  let rec of_stmts locals stmts =
    let escaped, _ =
      List.fold_left
        (fun (acc, locals) st ->
          match st.s with
          | Decl (_, x, _) -> (acc, x :: locals)
          | Assign (x, _) ->
            ((if List.mem x locals then acc else x :: acc), locals)
          | Store _ | Return _ | Expr_stmt _ | Assert _ | Break | Continue ->
            (acc, locals)
          | If (_, a, b) ->
            (of_stmts locals a @ of_stmts locals b @ acc, locals)
          | While (_, body) -> (of_stmts locals body @ acc, locals)
          | For (init, _, step, body) ->
            let locals', init_esc =
              match init.s with
              | Decl (_, x, _) -> (x :: locals, [])
              | Assign (x, _) ->
                (locals, if List.mem x locals then [] else [ x ])
              | _ -> (locals, [])
            in
            let step_esc =
              match step.s with
              | Assign (x, _) when not (List.mem x locals') -> [ x ]
              | _ -> []
            in
            (init_esc @ step_esc @ of_stmts locals' body @ acc, locals)
          | Foreach (dim, _, _, body) ->
            (of_stmts (dim :: locals) body @ acc, locals))
        ([], locals) stmts
    in
    escaped
  in
  List.sort_uniq compare (of_stmts [] stmts)

let base_ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"

let qual_name = function Uniform -> "uniform" | Varying -> "varying"

let ty_name t = qual_name t.q ^ " " ^ base_ty_name t.base

(** Hand-written lexer for mini-ISPC. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  (* keywords *)
  | KW_export | KW_void | KW_uniform | KW_varying
  | KW_int | KW_float | KW_bool
  | KW_true | KW_false
  | KW_if | KW_else | KW_while | KW_for | KW_foreach | KW_return
  | KW_assert | KW_break | KW_continue
  (* punctuation / operators *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ELLIPSIS                (* ... *)
  | ASSIGN                  (* = *)
  | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR | NOT
  | AMP | PIPE | CARET | SHL | SHR
  | EOF

exception Lex_error of string * Ast.pos

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable peeked : (token * Ast.pos) option;
}

let create src = { src; pos = 0; line = 1; col = 1; peeked = None }

let current_pos lx = { Ast.line = lx.line; Ast.col = lx.col }

let is_eof lx = lx.pos >= String.length lx.src

let peek_char lx = if is_eof lx then '\000' else lx.src.[lx.pos]

let peek_char2 lx =
  if lx.pos + 1 >= String.length lx.src then '\000' else lx.src.[lx.pos + 1]

let advance lx =
  if not (is_eof lx) then begin
    if lx.src.[lx.pos] = '\n' then begin
      lx.line <- lx.line + 1;
      lx.col <- 1
    end
    else lx.col <- lx.col + 1;
    lx.pos <- lx.pos + 1
  end

let rec skip_trivia lx =
  match peek_char lx with
  | ' ' | '\t' | '\r' | '\n' ->
    advance lx;
    skip_trivia lx
  | '/' when peek_char2 lx = '/' ->
    while (not (is_eof lx)) && peek_char lx <> '\n' do
      advance lx
    done;
    skip_trivia lx
  | '/' when peek_char2 lx = '*' ->
    let start = current_pos lx in
    advance lx;
    advance lx;
    let rec go () =
      if is_eof lx then
        raise (Lex_error ("unterminated block comment", start))
      else if peek_char lx = '*' && peek_char2 lx = '/' then begin
        advance lx;
        advance lx
      end
      else begin
        advance lx;
        go ()
      end
    in
    go ();
    skip_trivia lx
  | _ -> ()

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let keyword_of = function
  | "export" -> Some KW_export
  | "void" -> Some KW_void
  | "uniform" -> Some KW_uniform
  | "varying" -> Some KW_varying
  | "int" -> Some KW_int
  | "float" -> Some KW_float
  | "bool" -> Some KW_bool
  | "true" -> Some KW_true
  | "false" -> Some KW_false
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "while" -> Some KW_while
  | "for" -> Some KW_for
  | "foreach" -> Some KW_foreach
  | "return" -> Some KW_return
  | "assert" -> Some KW_assert
  | "break" -> Some KW_break
  | "continue" -> Some KW_continue
  | _ -> None

let lex_number lx pos =
  let start = lx.pos in
  while is_digit (peek_char lx) do
    advance lx
  done;
  let is_float = ref false in
  if peek_char lx = '.' && peek_char2 lx <> '.' then begin
    is_float := true;
    advance lx;
    while is_digit (peek_char lx) do
      advance lx
    done
  end;
  (match peek_char lx with
  | 'e' | 'E' ->
    is_float := true;
    advance lx;
    (match peek_char lx with '+' | '-' -> advance lx | _ -> ());
    while is_digit (peek_char lx) do
      advance lx
    done
  | _ -> ());
  (match peek_char lx with 'f' | 'F' -> (is_float := true; advance lx) | _ -> ());
  let text = String.sub lx.src start (lx.pos - start) in
  let text =
    if String.length text > 0 && (text.[String.length text - 1] = 'f' || text.[String.length text - 1] = 'F')
    then String.sub text 0 (String.length text - 1)
    else text
  in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> FLOAT f
    | None -> raise (Lex_error ("bad float literal " ^ text, pos))
  else
    match int_of_string_opt text with
    | Some i -> INT i
    | None -> raise (Lex_error ("bad int literal " ^ text, pos))

let lex_token lx : token * Ast.pos =
  skip_trivia lx;
  let pos = current_pos lx in
  if is_eof lx then (EOF, pos)
  else
    let c = peek_char lx in
    if is_ident_start c then begin
      let start = lx.pos in
      while is_ident_char (peek_char lx) do
        advance lx
      done;
      let text = String.sub lx.src start (lx.pos - start) in
      match keyword_of text with
      | Some kw -> (kw, pos)
      | None -> (IDENT text, pos)
    end
    else if is_digit c then (lex_number lx pos, pos)
    else begin
      advance lx;
      let two target result =
        if peek_char lx = target then begin
          advance lx;
          Some result
        end
        else None
      in
      let tok =
        match c with
        | '(' -> LPAREN
        | ')' -> RPAREN
        | '{' -> LBRACE
        | '}' -> RBRACE
        | '[' -> LBRACKET
        | ']' -> RBRACKET
        | ',' -> COMMA
        | ';' -> SEMI
        | '.' ->
          if peek_char lx = '.' && peek_char2 lx = '.' then begin
            advance lx;
            advance lx;
            ELLIPSIS
          end
          else raise (Lex_error ("unexpected '.'", pos))
        | '+' -> ( match two '=' PLUS_ASSIGN with Some t -> t | None -> PLUS)
        | '-' -> ( match two '=' MINUS_ASSIGN with Some t -> t | None -> MINUS)
        | '*' -> ( match two '=' STAR_ASSIGN with Some t -> t | None -> STAR)
        | '/' -> ( match two '=' SLASH_ASSIGN with Some t -> t | None -> SLASH)
        | '%' -> PERCENT
        | '<' -> (
          match two '=' LE with
          | Some t -> t
          | None -> ( match two '<' SHL with Some t -> t | None -> LT))
        | '>' -> (
          match two '=' GE with
          | Some t -> t
          | None -> ( match two '>' SHR with Some t -> t | None -> GT))
        | '=' -> ( match two '=' EQEQ with Some t -> t | None -> ASSIGN)
        | '!' -> ( match two '=' NEQ with Some t -> t | None -> NOT)
        | '&' -> ( match two '&' ANDAND with Some t -> t | None -> AMP)
        | '|' -> ( match two '|' OROR with Some t -> t | None -> PIPE)
        | '^' -> CARET
        | _ ->
          raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos))
      in
      (tok, pos)
    end

let next lx =
  match lx.peeked with
  | Some tp ->
    lx.peeked <- None;
    tp
  | None -> lex_token lx

let peek lx =
  match lx.peeked with
  | Some tp -> tp
  | None ->
    let tp = lex_token lx in
    lx.peeked <- Some tp;
    tp

let token_name = function
  | INT n -> Printf.sprintf "int literal %d" n
  | FLOAT f -> Printf.sprintf "float literal %g" f
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_export -> "'export'" | KW_void -> "'void'"
  | KW_uniform -> "'uniform'" | KW_varying -> "'varying'"
  | KW_int -> "'int'" | KW_float -> "'float'" | KW_bool -> "'bool'"
  | KW_true -> "'true'" | KW_false -> "'false'"
  | KW_if -> "'if'" | KW_else -> "'else'" | KW_while -> "'while'"
  | KW_for -> "'for'" | KW_foreach -> "'foreach'" | KW_return -> "'return'"
  | KW_assert -> "'assert'"
  | KW_break -> "'break'" | KW_continue -> "'continue'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'" | COMMA -> "','" | SEMI -> "';'"
  | ELLIPSIS -> "'...'" | ASSIGN -> "'='"
  | PLUS_ASSIGN -> "'+='" | MINUS_ASSIGN -> "'-='"
  | STAR_ASSIGN -> "'*='" | SLASH_ASSIGN -> "'/='"
  | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'" | SLASH -> "'/'"
  | PERCENT -> "'%'" | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | EQEQ -> "'=='" | NEQ -> "'!='" | ANDAND -> "'&&'" | OROR -> "'||'"
  | NOT -> "'!'" | AMP -> "'&'" | PIPE -> "'|'" | CARET -> "'^'"
  | SHL -> "'<<'" | SHR -> "'>>'" | EOF -> "end of input"

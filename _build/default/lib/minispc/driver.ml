(** Front-to-back compilation driver: source text -> verified VIR. *)

type error = {
  stage : [ `Lex | `Parse | `Type | `Codegen | `Verify ];
  message : string;
  pos : Ast.pos;
}

let error_to_string e =
  let stage =
    match e.stage with
    | `Lex -> "lexical error"
    | `Parse -> "syntax error"
    | `Type -> "type error"
    | `Codegen -> "codegen error"
    | `Verify -> "verifier error"
  in
  if e.pos = Ast.no_pos then Printf.sprintf "%s: %s" stage e.message
  else
    Printf.sprintf "%d:%d: %s: %s" e.pos.Ast.line e.pos.Ast.col stage
      e.message

exception Error of error

let fail stage message pos = raise (Error { stage; message; pos })

(* Parse and typecheck only. *)
let frontend (src : string) : Ast.program =
  let prog =
    try Parser.parse_program src with
    | Lexer.Lex_error (m, p) -> fail `Lex m p
    | Parser.Parse_error (m, p) -> fail `Parse m p
  in
  (try Typecheck.check_program prog
   with Typecheck.Type_error (m, p) -> fail `Type m p);
  prog

(* Compile [src] for [target]; the resulting module is verified. *)
let compile ?(module_name = "minispc") (target : Vir.Target.t) (src : string)
    : Vir.Vmodule.t =
  let prog = frontend src in
  let m =
    try Codegen.gen_program ~module_name target prog
    with Codegen.Codegen_error (msg, p) -> fail `Codegen msg p
  in
  (* The paper's toolchain compiles at -O3: dead definitions never reach
     the fault-site census, so eliminate them here too. *)
  ignore (Vir.Dce.run_module m);
  (match Vir.Verify.verify_module m with
  | [] -> ()
  | errs ->
    fail `Verify
      (String.concat "; " (List.map Vir.Verify.error_to_string errs))
      Ast.no_pos);
  m

(* Compile for both paper targets. *)
let compile_both ?(module_name = "minispc") (src : string) =
  [
    (Vir.Target.Avx, compile ~module_name Vir.Target.Avx src);
    (Vir.Target.Sse, compile ~module_name Vir.Target.Sse src);
  ]

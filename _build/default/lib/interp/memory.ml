(** Bounds-checked flat memory.

    Each allocation lives at a distinct base address with large guard
    gaps between allocations, so a bit flip in an address register most
    often lands outside every allocation and traps — reproducing the
    paper's observation that address-site faults predominantly crash.
    Flips of low-order bits can stay inside the allocation and silently
    corrupt data instead, which is equally faithful. *)

type region = {
  base : int64;
  size : int;        (** bytes *)
  data : Bytes.t;
  rname : string;    (** for debugging *)
}

type t = {
  mutable regions : region list;  (** most recent first *)
  mutable next_base : int64;
}

(* Bases start high and advance by the allocation size rounded up to a
   page plus a guard page, mimicking a sparse address space. *)
let create () = { regions = []; next_base = 0x1000_0000L }

let page = 4096

let round_up n k = (n + k - 1) / k * k

let alloc m ~name ~bytes =
  if bytes < 0 then invalid_arg "Memory.alloc: negative size";
  let size = max bytes 1 in
  let base = m.next_base in
  let region = { base; size; data = Bytes.make size '\000'; rname = name } in
  m.regions <- region :: m.regions;
  m.next_base <-
    Int64.add base (Int64.of_int (round_up size page + page));
  base

let find m addr =
  let rec go = function
    | [] -> None
    | r :: rest ->
      if addr >= r.base && Int64.sub addr r.base < Int64.of_int r.size then
        Some r
      else go rest
  in
  go m.regions

let region_for m addr ~bytes =
  match find m addr with
  | None -> Trap.raise_ (Trap.Out_of_bounds addr)
  | Some r ->
    let off = Int64.to_int (Int64.sub addr r.base) in
    if off + bytes > r.size then Trap.raise_ (Trap.Out_of_bounds addr)
    else (r, off)

(* Scalar loads/stores by element kind. i1 occupies one byte. *)
let load_scalar m (s : Vir.Vtype.scalar) addr : Vvalue.t =
  let bytes = Vir.Vtype.scalar_bytes s in
  let r, off = region_for m addr ~bytes in
  match s with
  | I1 ->
    Vvalue.I (I1, [| (if Bytes.get r.data off = '\000' then 0L else 1L) |])
  | I8 ->
    Vvalue.I (I8, [| Int64.of_int (Char.code (Bytes.get r.data off) lsl 56 asr 56) |])
  | I32 ->
    Vvalue.I (I32, [| Int64.of_int32 (Bytes.get_int32_le r.data off) |])
  | I64 -> Vvalue.I (I64, [| Bytes.get_int64_le r.data off |])
  | Ptr -> Vvalue.I (Ptr, [| Bytes.get_int64_le r.data off |])
  | F32 ->
    Vvalue.F
      (F32, [| Int32.float_of_bits (Bytes.get_int32_le r.data off) |])
  | F64 ->
    Vvalue.F (F64, [| Int64.float_of_bits (Bytes.get_int64_le r.data off) |])

let store_scalar m (s : Vir.Vtype.scalar) addr (lane_int : int64)
    (lane_float : float) =
  let bytes = Vir.Vtype.scalar_bytes s in
  let r, off = region_for m addr ~bytes in
  match s with
  | I1 -> Bytes.set r.data off (if lane_int = 0L then '\000' else '\001')
  | I8 -> Bytes.set r.data off (Char.chr (Int64.to_int lane_int land 0xFF))
  | I32 -> Bytes.set_int32_le r.data off (Int64.to_int32 lane_int)
  | I64 | Ptr -> Bytes.set_int64_le r.data off lane_int
  | F32 -> Bytes.set_int32_le r.data off (Int32.bits_of_float lane_float)
  | F64 -> Bytes.set_int64_le r.data off (Int64.bits_of_float lane_float)

(* Load a (possibly vector) value of type [ty] from contiguous memory. *)
let load m (ty : Vir.Vtype.t) addr : Vvalue.t =
  match ty with
  | Vir.Vtype.Void -> invalid_arg "Memory.load: void"
  | Vir.Vtype.Scalar s -> load_scalar m s addr
  | Vir.Vtype.Vector (n, s) ->
    let step = Int64.of_int (Vir.Vtype.scalar_bytes s) in
    if Vir.Vtype.is_float_scalar s then
      Vvalue.F
        ( s,
          Array.init n (fun i ->
              match
                load_scalar m s (Int64.add addr (Int64.mul step (Int64.of_int i)))
              with
              | Vvalue.F (_, [| x |]) -> x
              | _ -> assert false) )
    else
      Vvalue.I
        ( s,
          Array.init n (fun i ->
              match
                load_scalar m s (Int64.add addr (Int64.mul step (Int64.of_int i)))
              with
              | Vvalue.I (_, [| x |]) -> x
              | _ -> assert false) )

(* Store a value to contiguous memory; [mask] (if given) disables lanes. *)
let store ?mask m (v : Vvalue.t) addr =
  let n = Vvalue.lanes v in
  let s = Vvalue.scalar_kind v in
  let step = Int64.of_int (Vir.Vtype.scalar_bytes s) in
  for i = 0 to n - 1 do
    let enabled =
      match mask with None -> true | Some mk -> Vvalue.is_true_lane mk i
    in
    if enabled then
      let a = Int64.add addr (Int64.mul step (Int64.of_int i)) in
      match v with
      | Vvalue.I (_, lanes) -> store_scalar m s a lanes.(i) 0.0
      | Vvalue.F (_, lanes) -> store_scalar m s a 0L lanes.(i)
  done

(* Masked load: disabled lanes read as zero without touching memory
   (matching AVX maskload semantics). *)
let masked_load m (ty : Vir.Vtype.t) addr ~mask : Vvalue.t =
  match ty with
  | Vir.Vtype.Vector (n, s) ->
    let step = Int64.of_int (Vir.Vtype.scalar_bytes s) in
    let lane_addr i = Int64.add addr (Int64.mul step (Int64.of_int i)) in
    if Vir.Vtype.is_float_scalar s then
      Vvalue.F
        ( s,
          Array.init n (fun i ->
              if Vvalue.is_true_lane mask i then
                match load_scalar m s (lane_addr i) with
                | Vvalue.F (_, [| x |]) -> x
                | _ -> assert false
              else 0.0) )
    else
      Vvalue.I
        ( s,
          Array.init n (fun i ->
              if Vvalue.is_true_lane mask i then
                match load_scalar m s (lane_addr i) with
                | Vvalue.I (_, [| x |]) -> x
                | _ -> assert false
              else 0L) )
  | _ -> invalid_arg "Memory.masked_load: scalar type"

(* Typed bulk accessors used by the benchmark harness. *)

let write_i32_array m base (xs : int array) =
  Array.iteri
    (fun i x ->
      store_scalar m I32 (Int64.add base (Int64.of_int (4 * i)))
        (Int64.of_int x) 0.0)
    xs

let read_i32_array m base n =
  Array.init n (fun i ->
      match load_scalar m I32 (Int64.add base (Int64.of_int (4 * i))) with
      | Vvalue.I (_, [| x |]) -> Int64.to_int x
      | _ -> assert false)

let write_f32_array m base (xs : float array) =
  Array.iteri
    (fun i x ->
      store_scalar m F32 (Int64.add base (Int64.of_int (4 * i))) 0L x)
    xs

let read_f32_array m base n =
  Array.init n (fun i ->
      match load_scalar m F32 (Int64.add base (Int64.of_int (4 * i))) with
      | Vvalue.F (_, [| x |]) -> x
      | _ -> assert false)

let write_f64_array m base (xs : float array) =
  Array.iteri
    (fun i x ->
      store_scalar m F64 (Int64.add base (Int64.of_int (8 * i))) 0L x)
    xs

let read_f64_array m base n =
  Array.init n (fun i ->
      match load_scalar m F64 (Int64.add base (Int64.of_int (8 * i))) with
      | Vvalue.F (_, [| x |]) -> x
      | _ -> assert false)

lib/interp/vvalue.ml: Array Bits Int64 Printf String Vir

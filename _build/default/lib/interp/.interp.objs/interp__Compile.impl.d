lib/interp/compile.ml: Array Hashtbl List Option Printf Vir Vvalue

lib/interp/trap.mli:

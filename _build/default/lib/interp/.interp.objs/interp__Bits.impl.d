lib/interp/bits.ml: Int32 Int64 Printf Vir

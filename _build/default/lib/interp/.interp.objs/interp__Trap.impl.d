lib/interp/trap.ml: Printf

lib/interp/machine.ml: Array Bits Compile Float Hashtbl Int64 List Memory Option Printf Trap Vir Vvalue

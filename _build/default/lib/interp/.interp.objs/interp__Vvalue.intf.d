lib/interp/vvalue.mli: Vir

lib/interp/vvalue_const.ml: Array Vir Vvalue

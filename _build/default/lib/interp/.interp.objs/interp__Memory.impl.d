lib/interp/memory.ml: Array Bytes Char Int32 Int64 Trap Vir Vvalue

lib/interp/memory.mli: Vir Vvalue

lib/interp/machine.mli: Compile Memory Vir Vvalue

(** Runtime traps. A trap during a fault-injection run is what the
    paper classifies as a {e crash}; hangs become {!Budget_exhausted}
    via the machine's execution budget. *)

type kind =
  | Out_of_bounds of int64  (** access outside any allocation *)
  | Misaligned of int64
  | Division_by_zero
  | Budget_exhausted  (** dynamic instruction budget exceeded: hang *)
  | Unreachable_executed
  | Invalid_lane of int  (** extract/insert with out-of-range index *)
  | Unknown_function of string
  | Stack_overflow_vm  (** call-depth limit *)

exception Trap of kind

val to_string : kind -> string

(** [raise_ k] raises {!Trap}. *)
val raise_ : kind -> 'a

(** The VIR virtual machine.

    Executes a compiled module with bounds-checked memory, a dynamic
    instruction budget (so a fault-induced endless loop is observed as a
    hang-crash rather than hanging the host), and a pluggable extern
    mechanism through which the VULFI runtime (fault injection, error
    detectors) and benchmark I/O are wired in. *)

type state = {
  code : Compile.cmodule;
  mem : Memory.t;
  mutable fuel : int;  (** remaining dynamic instructions; <0 = trap *)
  mutable dyn_count : int;  (** executed dynamic instructions *)
  mutable dyn_vector : int;  (** executed vector instructions *)
  externs : (string, state -> Vvalue.t list -> Vvalue.t option) Hashtbl.t;
  max_depth : int;
}

let default_budget = 200_000_000

let create ?(budget = default_budget) ?(max_depth = 512) code =
  {
    code;
    mem = Memory.create ();
    fuel = budget;
    dyn_count = 0;
    dyn_vector = 0;
    externs = Hashtbl.create 16;
    max_depth;
  }

let register_extern st name handler = Hashtbl.replace st.externs name handler

let memory st = st.mem

let dyn_count st = st.dyn_count

(* Executed vector instructions (per the paper's definition: at least
   one vector operand or result); the dynamic counterpart of Fig 10. *)
let dyn_vector_count st = st.dyn_vector

(* ------------------------------------------------------------------ *)
(* Scalar/lane arithmetic                                              *)

let eval_ibinop_lane (k : Vir.Instr.ibinop) (s : Vir.Vtype.scalar) a b =
  let bits = Vir.Vtype.scalar_bits s in
  let shift_mask = bits - 1 in
  let t x = Bits.truncate s x in
  match k with
  | Vir.Instr.Add -> t (Int64.add a b)
  | Vir.Instr.Sub -> t (Int64.sub a b)
  | Vir.Instr.Mul -> t (Int64.mul a b)
  | Vir.Instr.Sdiv ->
    if b = 0L then Trap.raise_ Trap.Division_by_zero
    else if s = Vir.Vtype.I64 && a = Int64.min_int && b = -1L then
      (* x86 idiv overflow raises #DE: a crash. *)
      Trap.raise_ Trap.Division_by_zero
    else t (Int64.div a b)
  | Vir.Instr.Srem ->
    if b = 0L then Trap.raise_ Trap.Division_by_zero
    else if s = Vir.Vtype.I64 && a = Int64.min_int && b = -1L then
      Trap.raise_ Trap.Division_by_zero
    else t (Int64.rem a b)
  | Vir.Instr.Udiv ->
    if b = 0L then Trap.raise_ Trap.Division_by_zero
    else t (Int64.unsigned_div (Bits.to_unsigned s a) (Bits.to_unsigned s b))
  | Vir.Instr.Urem ->
    if b = 0L then Trap.raise_ Trap.Division_by_zero
    else t (Int64.unsigned_rem (Bits.to_unsigned s a) (Bits.to_unsigned s b))
  | Vir.Instr.And -> t (Int64.logand a b)
  | Vir.Instr.Or -> t (Int64.logor a b)
  | Vir.Instr.Xor -> t (Int64.logxor a b)
  | Vir.Instr.Shl ->
    (* x86 semantics: shift amount masked to the operand width. *)
    t (Int64.shift_left a (Int64.to_int b land shift_mask))
  | Vir.Instr.Lshr ->
    t
      (Int64.shift_right_logical (Bits.to_unsigned s a)
         (Int64.to_int b land shift_mask))
  | Vir.Instr.Ashr -> t (Int64.shift_right a (Int64.to_int b land shift_mask))

let eval_fbinop_lane (k : Vir.Instr.fbinop) (s : Vir.Vtype.scalar) a b =
  let r =
    match k with
    | Vir.Instr.Fadd -> a +. b
    | Vir.Instr.Fsub -> a -. b
    | Vir.Instr.Fmul -> a *. b
    | Vir.Instr.Fdiv -> a /. b  (* IEEE: yields inf/nan, no trap *)
    | Vir.Instr.Frem -> Float.rem a b
  in
  Bits.round_float s r

let eval_icmp_lane (p : Vir.Instr.icmp_pred) (s : Vir.Vtype.scalar) a b =
  let u x = Bits.to_unsigned s x in
  let r =
    match p with
    | Vir.Instr.Ieq -> Int64.equal a b
    | Vir.Instr.Ine -> not (Int64.equal a b)
    | Vir.Instr.Islt -> Int64.compare a b < 0
    | Vir.Instr.Isle -> Int64.compare a b <= 0
    | Vir.Instr.Isgt -> Int64.compare a b > 0
    | Vir.Instr.Isge -> Int64.compare a b >= 0
    | Vir.Instr.Iult -> Int64.unsigned_compare (u a) (u b) < 0
    | Vir.Instr.Iule -> Int64.unsigned_compare (u a) (u b) <= 0
    | Vir.Instr.Iugt -> Int64.unsigned_compare (u a) (u b) > 0
    | Vir.Instr.Iuge -> Int64.unsigned_compare (u a) (u b) >= 0
  in
  if r then 1L else 0L

let eval_fcmp_lane (p : Vir.Instr.fcmp_pred) a b =
  let ord = not (Float.is_nan a || Float.is_nan b) in
  let r =
    match p with
    | Vir.Instr.Foeq -> ord && a = b
    | Vir.Instr.Fone -> ord && a <> b
    | Vir.Instr.Folt -> ord && a < b
    | Vir.Instr.Fole -> ord && a <= b
    | Vir.Instr.Fogt -> ord && a > b
    | Vir.Instr.Foge -> ord && a >= b
    | Vir.Instr.Ford -> ord
    | Vir.Instr.Funo -> not ord
  in
  if r then 1L else 0L

let map2_int f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let eval_cast (k : Vir.Instr.cast_op) (dst_ty : Vir.Vtype.t) (v : Vvalue.t) =
  let ds = Vir.Vtype.elem dst_ty in
  let n = Vvalue.lanes v in
  let fail () =
    invalid_arg
      (Printf.sprintf "Machine: unsupported cast %s" (Vir.Instr.cast_name k))
  in
  match (k, v) with
  | (Vir.Instr.Trunc | Vir.Instr.Sext | Vir.Instr.Ptrtoint
    | Vir.Instr.Inttoptr), Vvalue.I (_, lanes) ->
    Vvalue.I (ds, Array.map (Bits.truncate ds) lanes)
  | Vir.Instr.Zext, Vvalue.I (ss, lanes) ->
    Vvalue.I (ds, Array.map (fun x -> Bits.truncate ds (Bits.to_unsigned ss x)) lanes)
  | Vir.Instr.Fptosi, Vvalue.F (_, lanes) ->
    (* Out-of-range/NaN produce the x86 "integer indefinite" value. *)
    let bits = Vir.Vtype.scalar_bits ds in
    let indefinite = Int64.shift_left 1L (bits - 1) in
    Vvalue.I
      ( ds,
        Array.map
          (fun x ->
            if Float.is_nan x then Bits.truncate ds indefinite
            else
              let lo = Int64.to_float Int64.min_int
              and hi = Int64.to_float Int64.max_int in
              if x < lo || x > hi then Bits.truncate ds indefinite
              else
                let i = Int64.of_float x in
                let tr = Bits.truncate ds i in
                if bits < 64 && tr <> i then Bits.truncate ds indefinite
                else tr)
          lanes )
  | Vir.Instr.Sitofp, Vvalue.I (_, lanes) ->
    Vvalue.F
      (ds, Array.map (fun x -> Bits.round_float ds (Int64.to_float x)) lanes)
  | (Vir.Instr.Fptrunc | Vir.Instr.Fpext), Vvalue.F (_, lanes) ->
    Vvalue.F (ds, Array.map (Bits.round_float ds) lanes)
  | Vir.Instr.Bitcast, Vvalue.I (ss, lanes)
    when Vir.Vtype.is_float_scalar ds
         && Vir.Vtype.scalar_bits ss = Vir.Vtype.scalar_bits ds ->
    Vvalue.F (ds, Array.map (Bits.float_of_bits ds) lanes)
  | Vir.Instr.Bitcast, Vvalue.F (ss, lanes)
    when Vir.Vtype.is_int_scalar ds
         && Vir.Vtype.scalar_bits ss = Vir.Vtype.scalar_bits ds ->
    Vvalue.I (ds, Array.map (Bits.bits_of_float ss) lanes)
  | Vir.Instr.Bitcast, Vvalue.I (ss, lanes)
    when Vir.Vtype.is_int_scalar ds
         && Vir.Vtype.scalar_bits ss = Vir.Vtype.scalar_bits ds ->
    Vvalue.I (ds, Array.map (Bits.truncate ds) lanes)
  | _ ->
    ignore n;
    fail ()

let eval_math name (args : Vvalue.t list) =
  let unary f =
    match args with
    | [ Vvalue.F (s, lanes) ] ->
      Vvalue.F (s, Array.map (fun x -> Bits.round_float s (f x)) lanes)
    | _ -> invalid_arg ("Machine: bad math intrinsic args for " ^ name)
  in
  let binary f =
    match args with
    | [ Vvalue.F (s, a); Vvalue.F (_, b) ] ->
      Vvalue.F (s, Array.init (Array.length a) (fun i -> Bits.round_float s (f a.(i) b.(i))))
    | _ -> invalid_arg ("Machine: bad math intrinsic args for " ^ name)
  in
  match name with
  | "sqrt" -> unary sqrt
  | "exp" -> unary exp
  | "log" -> unary log
  | "sin" -> unary sin
  | "cos" -> unary cos
  | "fabs" -> unary abs_float
  | "floor" -> unary floor
  | "pow" -> binary ( ** )
  | "min" -> binary min
  | "max" -> binary max
  | _ -> invalid_arg ("Machine: unknown math intrinsic " ^ name)

let eval_reduce name (args : Vvalue.t list) =
  match (name, args) with
  | "add", [ Vvalue.F (s, lanes) ] ->
    Vvalue.F (s, [| Array.fold_left (fun acc x -> Bits.round_float s (acc +. x)) 0.0 lanes |])
  | "add", [ Vvalue.I (s, lanes) ] ->
    Vvalue.I (s, [| Array.fold_left (fun acc x -> Bits.truncate s (Int64.add acc x)) 0L lanes |])
  | "or", [ Vvalue.I (s, lanes) ] ->
    Vvalue.I (s, [| Array.fold_left Int64.logor 0L lanes |])
  | "min", [ Vvalue.F (s, lanes) ] ->
    Vvalue.F (s, [| Array.fold_left min lanes.(0) lanes |])
  | "max", [ Vvalue.F (s, lanes) ] ->
    Vvalue.F (s, [| Array.fold_left max lanes.(0) lanes |])
  | "min", [ Vvalue.I (s, lanes) ] ->
    Vvalue.I (s, [| Array.fold_left min lanes.(0) lanes |])
  | "max", [ Vvalue.I (s, lanes) ] ->
    Vvalue.I (s, [| Array.fold_left max lanes.(0) lanes |])
  | _ -> invalid_arg ("Machine: bad reduce intrinsic " ^ name)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)

let charge st =
  st.dyn_count <- st.dyn_count + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted

let rec call_function st depth (cf : Compile.cfunc) (args : Vvalue.t list) :
    Vvalue.t option =
  if depth > st.max_depth then Trap.raise_ Trap.Stack_overflow_vm;
  let regs = Array.make (max cf.Compile.nregs 1) (Vvalue.of_i32 0) in
  List.iteri (fun i v -> if i < Array.length regs then regs.(i) <- v) args;
  let operand = function
    | Compile.Creg r -> regs.(r)
    | Compile.Cimm v -> v
  in
  let exec_instr (ci : Compile.cinstr) =
    charge st;
    if ci.Compile.cvec then st.dyn_vector <- st.dyn_vector + 1;
    let i = ci.Compile.src in
    let ops = ci.Compile.ops in
    let result =
      match i.Vir.Instr.op with
      | Vir.Instr.Ibinop (k, _, _) -> (
        match (operand ops.(0), operand ops.(1)) with
        | Vvalue.I (s, a), Vvalue.I (_, b) ->
          Some (Vvalue.I (s, map2_int (eval_ibinop_lane k s) a b))
        | _ -> invalid_arg "Machine: ibinop on floats")
      | Vir.Instr.Fbinop (k, _, _) -> (
        match (operand ops.(0), operand ops.(1)) with
        | Vvalue.F (s, a), Vvalue.F (_, b) ->
          Some (Vvalue.F (s, map2_int (eval_fbinop_lane k s) a b))
        | _ -> invalid_arg "Machine: fbinop on ints")
      | Vir.Instr.Icmp (p, _, _) -> (
        match (operand ops.(0), operand ops.(1)) with
        | Vvalue.I (s, a), Vvalue.I (_, b) ->
          Some (Vvalue.I (Vir.Vtype.I1, map2_int (eval_icmp_lane p s) a b))
        | _ -> invalid_arg "Machine: icmp on floats")
      | Vir.Instr.Fcmp (p, _, _) -> (
        match (operand ops.(0), operand ops.(1)) with
        | Vvalue.F (_, a), Vvalue.F (_, b) ->
          Some
            (Vvalue.I
               ( Vir.Vtype.I1,
                 Array.init (Array.length a) (fun ix ->
                     eval_fcmp_lane p a.(ix) b.(ix)) ))
        | _ -> invalid_arg "Machine: fcmp on ints")
      | Vir.Instr.Select _ -> (
        let c = operand ops.(0)
        and x = operand ops.(1)
        and y = operand ops.(2) in
        if Vvalue.lanes c = 1 then
          Some (if Vvalue.as_bool c then x else y)
        else
          match (x, y) with
          | Vvalue.I (s, a), Vvalue.I (_, b) ->
            Some
              (Vvalue.I
                 ( s,
                   Array.init (Array.length a) (fun ix ->
                       if Vvalue.is_true_lane c ix then a.(ix) else b.(ix)) ))
          | Vvalue.F (s, a), Vvalue.F (_, b) ->
            Some
              (Vvalue.F
                 ( s,
                   Array.init (Array.length a) (fun ix ->
                       if Vvalue.is_true_lane c ix then a.(ix) else b.(ix)) ))
          | _ -> invalid_arg "Machine: select arm kind mismatch")
      | Vir.Instr.Cast (k, _) ->
        Some (eval_cast k i.Vir.Instr.ty (operand ops.(0)))
      | Vir.Instr.Alloca (elt, count) ->
        let bytes = Vir.Vtype.size_bytes elt * count in
        let base =
          Memory.alloc st.mem ~name:(cf.Compile.cf.Vir.Func.fname ^ ".alloca")
            ~bytes
        in
        Some (Vvalue.of_ptr base)
      | Vir.Instr.Load _ ->
        let addr = Vvalue.as_int (operand ops.(0)) in
        Some (Memory.load st.mem i.Vir.Instr.ty addr)
      | Vir.Instr.Store _ ->
        let v = operand ops.(0) in
        let addr = Vvalue.as_int (operand ops.(1)) in
        Memory.store st.mem v addr;
        None
      | Vir.Instr.Gep (_, _, elem_bytes) ->
        let base = Vvalue.as_int (operand ops.(0)) in
        let index = Vvalue.as_int (operand ops.(1)) in
        Some
          (Vvalue.of_ptr
             (Int64.add base (Int64.mul index (Int64.of_int elem_bytes))))
      | Vir.Instr.Extractelement _ ->
        let v = operand ops.(0) in
        let ix = Int64.to_int (Vvalue.as_int (operand ops.(1))) in
        if ix < 0 || ix >= Vvalue.lanes v then
          Trap.raise_ (Trap.Invalid_lane ix)
        else Some (Vvalue.extract v ix)
      | Vir.Instr.Insertelement _ ->
        let v = operand ops.(0) in
        let e = operand ops.(1) in
        let ix = Int64.to_int (Vvalue.as_int (operand ops.(2))) in
        if ix < 0 || ix >= Vvalue.lanes v then
          Trap.raise_ (Trap.Invalid_lane ix)
        else Some (Vvalue.insert v ix e)
      | Vir.Instr.Shufflevector (_, _, mask) -> (
        let a = operand ops.(0) and b = operand ops.(1) in
        let n = Vvalue.lanes a in
        let pick ix = if ix < n then Vvalue.extract a ix else Vvalue.extract b (ix - n) in
        match a with
        | Vvalue.I (s, _) ->
          Some
            (Vvalue.I
               ( s,
                 Array.map
                   (fun ix ->
                     match pick ix with
                     | Vvalue.I (_, [| x |]) -> x
                     | _ -> assert false)
                   mask ))
        | Vvalue.F (s, _) ->
          Some
            (Vvalue.F
               ( s,
                 Array.map
                   (fun ix ->
                     match pick ix with
                     | Vvalue.F (_, [| x |]) -> x
                     | _ -> assert false)
                   mask )))
      | Vir.Instr.Call (callee, _) ->
        let args = Array.to_list (Array.map operand ops) in
        exec_call st depth callee args i.Vir.Instr.ty
      | Vir.Instr.Phi _ | Vir.Instr.Br _ | Vir.Instr.Condbr _
      | Vir.Instr.Ret _ | Vir.Instr.Unreachable ->
        assert false (* handled by the block loop *)
    in
    match result with
    | Some v when ci.Compile.dst >= 0 -> regs.(ci.Compile.dst) <- v
    | Some _ | None -> ()
  in
  (* Block interpretation loop with standard parallel phi evaluation. *)
  let rec run_block prev_idx cur_idx =
    let blk = cf.Compile.cblocks.(cur_idx) in
    let phi_vals =
      Array.map
        (fun (p : Compile.cphi) ->
          charge st;
          let _, v =
            try
              Array.to_list p.Compile.incoming
              |> List.find (fun (pred, _) -> pred = prev_idx)
            with Not_found ->
              invalid_arg
                (Printf.sprintf "Machine: phi in %%%s has no edge from #%d"
                   blk.Compile.clabel prev_idx)
          in
          operand v)
        blk.Compile.cphis
    in
    Array.iteri
      (fun k (p : Compile.cphi) -> regs.(p.Compile.pdst) <- phi_vals.(k))
      blk.Compile.cphis;
    Array.iter exec_instr blk.Compile.body;
    charge st;
    match blk.Compile.term with
    | Compile.Tbr next -> run_block cur_idx next
    | Compile.Tcondbr (c, l1, l2) ->
      if Vvalue.as_bool (operand c) then run_block cur_idx l1
      else run_block cur_idx l2
    | Compile.Tret v -> Option.map operand v
    | Compile.Tunreachable -> Trap.raise_ Trap.Unreachable_executed
  in
  run_block (-1) 0

and exec_call st depth callee (args : Vvalue.t list) ret_ty :
    Vvalue.t option =
  match Hashtbl.find_opt st.code.Compile.cfuncs callee with
  | Some cf -> call_function st (depth + 1) cf args
  | None -> (
    match Vir.Intrinsics.lookup callee with
    | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Math m; _ } ->
      Some (eval_math m args)
    | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Reduce r; _ } ->
      Some (eval_reduce r args)
    | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Maskload; _ } -> (
      match args with
      | [ ptr; mask ] ->
        Some
          (Memory.masked_load st.mem ret_ty (Vvalue.as_int ptr) ~mask)
      | _ -> invalid_arg ("Machine: maskload arity @" ^ callee))
    | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Maskstore; _ } -> (
      match args with
      | [ ptr; mask; v ] ->
        Memory.store ~mask st.mem v (Vvalue.as_int ptr);
        None
      | _ -> invalid_arg ("Machine: maskstore arity @" ^ callee))
    | None -> (
      match Hashtbl.find_opt st.externs callee with
      | Some handler -> handler st args
      | None -> Trap.raise_ (Trap.Unknown_function callee)))

(* Run function [name] with [args]; returns its value (None for void).
   Raises {!Trap.Trap} on a crash. *)
let run st name (args : Vvalue.t list) : Vvalue.t option =
  match Hashtbl.find_opt st.code.Compile.cfuncs name with
  | Some cf -> call_function st 0 cf args
  | None -> Trap.raise_ (Trap.Unknown_function name)

(** Lowering VIR functions into a dense register-VM form.

    The interpreter executes millions of dynamic instructions per
    campaign, so operand lookups must be O(1): register operands become
    indices into a per-frame register file, constants become
    pre-evaluated {!Vvalue.t}s, and block labels become indices. *)

type coperand =
  | Creg of int
  | Cimm of Vvalue.t

type cinstr = {
  src : Vir.Instr.t;  (** original instruction, for dispatch/reporting *)
  dst : int;          (** destination register slot; [-1] if void *)
  ops : coperand array;
  cvec : bool;        (** vector instruction (pre-computed for dynamic
                          instruction-mix profiling) *)
}

type cphi = {
  pdst : int;
  (* incoming value per predecessor block index *)
  incoming : (int * coperand) array;
}

type cterm =
  | Tbr of int
  | Tcondbr of coperand * int * int
  | Tret of coperand option
  | Tunreachable

type cblock = {
  clabel : string;
  cphis : cphi array;
  body : cinstr array;  (** non-phi, non-terminator instructions *)
  term : cterm;
  term_src : Vir.Instr.t;
}

type cfunc = {
  cf : Vir.Func.t;
  cblocks : cblock array;
  nregs : int;
}

type cmodule = {
  cm : Vir.Vmodule.t;
  cfuncs : (string, cfunc) Hashtbl.t;
}

let compile_operand (o : Vir.Instr.operand) =
  match o with
  | Vir.Instr.Reg (r, _) -> Creg r
  | Vir.Instr.Imm c -> Cimm (Vvalue.of_const c)

let compile_func (f : Vir.Func.t) : cfunc =
  let blocks = Array.of_list f.Vir.Func.blocks in
  let index_of = Hashtbl.create (Array.length blocks) in
  Array.iteri
    (fun i b -> Hashtbl.replace index_of b.Vir.Block.label i)
    blocks;
  let block_index label =
    match Hashtbl.find_opt index_of label with
    | Some i -> i
    | None -> invalid_arg ("Compile: unknown label %" ^ label)
  in
  let compile_block (b : Vir.Block.t) : cblock =
    let phis = ref [] and body = ref [] and term = ref None in
    List.iter
      (fun (i : Vir.Instr.t) ->
        match i.Vir.Instr.op with
        | Vir.Instr.Phi incoming ->
          phis :=
            {
              pdst = i.Vir.Instr.id;
              incoming =
                Array.of_list
                  (List.map
                     (fun (l, v) -> (block_index l, compile_operand v))
                     incoming);
            }
            :: !phis
        | Vir.Instr.Br l -> term := Some (Tbr (block_index l), i)
        | Vir.Instr.Condbr (c, l1, l2) ->
          term :=
            Some
              ( Tcondbr (compile_operand c, block_index l1, block_index l2),
                i )
        | Vir.Instr.Ret v ->
          term := Some (Tret (Option.map compile_operand v), i)
        | Vir.Instr.Unreachable -> term := Some (Tunreachable, i)
        | _ ->
          body :=
            {
              src = i;
              dst = (if Vir.Instr.defines i then i.Vir.Instr.id else -1);
              ops =
                Array.of_list
                  (List.map compile_operand (Vir.Instr.operands i));
              cvec = Vir.Instr.is_vector_instr i;
            }
            :: !body)
      b.Vir.Block.instrs;
    let term, term_src =
      match !term with
      | Some (t, i) -> (t, i)
      | None ->
        invalid_arg
          (Printf.sprintf "Compile: block %%%s has no terminator"
             b.Vir.Block.label)
    in
    {
      clabel = b.Vir.Block.label;
      cphis = Array.of_list (List.rev !phis);
      body = Array.of_list (List.rev !body);
      term;
      term_src;
    }
  in
  {
    cf = f;
    cblocks = Array.map compile_block blocks;
    nregs = f.Vir.Func.next_reg;
  }

let compile_module (m : Vir.Vmodule.t) : cmodule =
  let cfuncs = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace cfuncs f.Vir.Func.fname (compile_func f))
    m.Vir.Vmodule.funcs;
  { cm = m; cfuncs }

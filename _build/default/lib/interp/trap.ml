(** Runtime traps. A trap during a fault-injection run is what the paper
    classifies as a *crash*: "a system failure, a program crash, or any
    other issue that could easily be detected by the end user" — we fold
    hangs (exhausted execution budget) into the same bucket. *)

type kind =
  | Out_of_bounds of int64  (** memory access outside any allocation *)
  | Misaligned of int64     (** access not aligned to element size *)
  | Division_by_zero
  | Budget_exhausted        (** dynamic instruction budget exceeded: hang *)
  | Unreachable_executed
  | Invalid_lane of int     (** extract/insert with out-of-range index *)
  | Unknown_function of string
  | Stack_overflow_vm       (** call depth limit *)

exception Trap of kind

let to_string = function
  | Out_of_bounds a -> Printf.sprintf "out-of-bounds access at 0x%Lx" a
  | Misaligned a -> Printf.sprintf "misaligned access at 0x%Lx" a
  | Division_by_zero -> "division by zero"
  | Budget_exhausted -> "execution budget exhausted (hang)"
  | Unreachable_executed -> "unreachable executed"
  | Invalid_lane i -> Printf.sprintf "vector lane %d out of range" i
  | Unknown_function f -> "call to unknown function @" ^ f
  | Stack_overflow_vm -> "VM call stack overflow"

let raise_ k = raise (Trap k)

(** Vector instruction-set targets.

    The paper evaluates Intel AVX (256-bit) and SSE4 (128-bit). At IR
    level the distinction VULFI cares about is the vector length for
    32-bit lanes and which masked intrinsics the code generator emits. *)

type t = Avx | Sse

let all = [ Avx; Sse ]

let name = function Avx -> "AVX" | Sse -> "SSE"

let of_string s =
  match String.lowercase_ascii s with
  | "avx" -> Some Avx
  | "sse" | "sse4" -> Some Sse
  | _ -> None

(* Register width in bits. *)
let bits = function Avx -> 256 | Sse -> 128

(* Lanes for 32-bit elements (f32/i32), the unit the paper's benchmarks
   are vectorized over. *)
let vl = function Avx -> 8 | Sse -> 4

(* Lanes for a given scalar element type. *)
let vl_for t s = bits t / Vtype.scalar_bits s

(** Basic blocks: a label plus an instruction sequence ending in exactly
    one terminator. The instruction list is mutable so that passes
    (instrumentation, detector insertion) can rewrite it in place. *)

type t = {
  label : string;
  mutable instrs : Instr.t list;
}

let create ?(instrs = []) label = { label; instrs }

let terminator b =
  match List.rev b.instrs with
  | last :: _ when Instr.is_terminator last -> Some last
  | _ -> None

let successors b =
  match terminator b with
  | Some t -> Instr.successors t
  | None -> []

let phis b = List.filter Instr.is_phi b.instrs

let non_phi_instrs b =
  List.filter (fun i -> not (Instr.is_phi i)) b.instrs

(* Insert [news] immediately after the instruction with id [after]. *)
let insert_after b ~after news =
  let rec go = function
    | [] -> []
    | i :: rest when i.Instr.id = after && Instr.defines i ->
      i :: (news @ rest)
    | i :: rest -> i :: go rest
  in
  b.instrs <- go b.instrs

(* Insert [news] immediately before the physically-identical instruction
   [before] (distinguishes duplicate instructions, e.g. two equal
   stores). *)
let insert_before_phys b ~before news =
  let rec go = function
    | [] -> []
    | i :: rest when i == before -> news @ (i :: rest)
    | i :: rest -> i :: go rest
  in
  b.instrs <- go b.instrs

(* Replace the physically-identical instruction [old_i] with [new_i]. *)
let replace_phys b ~old_i ~new_i =
  b.instrs <- List.map (fun i -> if i == old_i then new_i else i) b.instrs

(* Insert [news] just before the block terminator. *)
let insert_before_terminator b news =
  match List.rev b.instrs with
  | last :: rev_rest when Instr.is_terminator last ->
    b.instrs <- List.rev rev_rest @ news @ [ last ]
  | _ -> b.instrs <- b.instrs @ news

(* Insert [news] after the phi cluster at the top of the block. *)
let insert_after_phis b news =
  let phis, rest = List.partition Instr.is_phi b.instrs in
  b.instrs <- phis @ news @ rest

(* Apply [f] to every instruction, in place. *)
let map_instrs b f = b.instrs <- List.map f b.instrs

(* Retarget branch labels with [f] (used when splitting edges). *)
let retarget b f =
  let rewrite i =
    match i.Instr.op with
    | Instr.Br l -> { i with Instr.op = Instr.Br (f l) }
    | Instr.Condbr (c, l1, l2) ->
      { i with Instr.op = Instr.Condbr (c, f l1, f l2) }
    | _ -> i
  in
  map_instrs b rewrite

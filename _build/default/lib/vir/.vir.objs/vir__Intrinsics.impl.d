lib/vir/intrinsics.ml: List Printf String Target Vtype

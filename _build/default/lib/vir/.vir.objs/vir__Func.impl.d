lib/vir/func.ml: Block Hashtbl Instr List Printf Vtype

lib/vir/builder.ml: Array Block Const Func Instr List Printf Vmodule Vtype

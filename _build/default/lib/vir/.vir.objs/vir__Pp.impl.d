lib/vir/pp.ml: Array Block Buffer Const Func Instr List Printf String Vmodule Vtype

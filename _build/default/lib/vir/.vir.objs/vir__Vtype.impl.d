lib/vir/vtype.ml: Format Printf

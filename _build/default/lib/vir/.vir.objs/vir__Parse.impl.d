lib/vir/parse.ml: Array Block Const Float Func Instr Int64 List Option Printf String Vmodule Vtype

lib/vir/intrinsics.mli: Target Vtype

lib/vir/target.ml: String Vtype

lib/vir/dce.ml: Block Func Hashtbl Instr Intrinsics List Vmodule

lib/vir/vmodule.ml: Func List Vtype

lib/vir/dce.mli: Func Vmodule

lib/vir/builder.mli: Block Func Instr Vmodule Vtype

lib/vir/verify.mli: Func Vmodule

lib/vir/instr.ml: Const List Vtype

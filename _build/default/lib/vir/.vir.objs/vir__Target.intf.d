lib/vir/target.mli: Vtype

lib/vir/parse.mli: Vmodule

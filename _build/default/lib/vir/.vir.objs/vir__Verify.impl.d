lib/vir/verify.ml: Array Block Func Hashtbl Instr Intrinsics List Pp Printf String Vmodule Vtype

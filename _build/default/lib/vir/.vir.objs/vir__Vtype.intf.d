lib/vir/vtype.mli: Format

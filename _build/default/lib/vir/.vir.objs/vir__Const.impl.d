lib/vir/const.ml: Array Int32 Int64 Printf String Vtype

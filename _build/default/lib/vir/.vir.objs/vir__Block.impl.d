lib/vir/block.ml: Instr List

(** Textual VIR parser — the inverse of {!Pp}. Accepts exactly the
    syntax the printer emits, so [parse_module (Pp.module_to_string m)]
    reconstructs [m] up to register names; used by the opt-style CLI
    and the print/parse round-trip property tests. *)

exception Parse_error of string * int  (** message, line number *)

(** Parse a printed module. [name] defaults to ["parsed"].
    @raise Parse_error on malformed input. *)
val parse_module : ?name:string -> string -> Vmodule.t

(** IRBuilder-style construction API: a builder owns a function under
    construction and an insertion point; every [ins] helper allocates a
    fresh register, appends the instruction, and returns the result
    operand. *)

type t

val create : Func.t -> t

(** Create a function, register it in the module, and return a builder
    for it (no entry block yet — create one with {!new_block}). *)
val define :
  Vmodule.t ->
  name:string ->
  params:(string * Vtype.t) list ->
  ret_ty:Vtype.t ->
  t

val func : t -> Func.t

(** Operand for a named parameter.
    @raise Invalid_argument for unknown names. *)
val param : t -> string -> Instr.operand

(** Append a new block with the given label to the function. *)
val new_block : t -> string -> Block.t

(** Append a new block with a fresh label derived from [base]. *)
val fresh_block : t -> string -> Block.t

val position_at_end : t -> Block.t -> unit

(** The insertion block.
    @raise Invalid_argument if none was set. *)
val current_block : t -> Block.t

(** Low-level append of a pre-built instruction. *)
val append : t -> Instr.t -> unit

(** Emit an instruction with result type [ty]; returns the result
    operand (an undef immediate for void). [name] prefixes the textual
    register name. *)
val emit : t -> ?name:string -> Vtype.t -> Instr.op -> Instr.operand

(** Integer/float binary operations (result type follows the left
    operand). *)

val ibinop : t -> ?name:string -> Instr.ibinop -> Instr.operand -> Instr.operand -> Instr.operand
val fbinop : t -> ?name:string -> Instr.fbinop -> Instr.operand -> Instr.operand -> Instr.operand
val add : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val sub : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val mul : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val sdiv : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val srem : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val and_ : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val or_ : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val xor : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val shl : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val lshr : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val ashr : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val fadd : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val fsub : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val fmul : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val fdiv : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand

(** Comparisons (result: i1 with the operands' lane count). *)

val icmp : t -> ?name:string -> Instr.icmp_pred -> Instr.operand -> Instr.operand -> Instr.operand
val fcmp : t -> ?name:string -> Instr.fcmp_pred -> Instr.operand -> Instr.operand -> Instr.operand

val select : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand -> Instr.operand
val cast : t -> ?name:string -> Instr.cast_op -> Instr.operand -> Vtype.t -> Instr.operand

(** [alloca b elt count] reserves [count] elements of [elt]. *)
val alloca : t -> ?name:string -> Vtype.t -> int -> Instr.operand

val load : t -> ?name:string -> Vtype.t -> Instr.operand -> Instr.operand
val store : t -> Instr.operand -> Instr.operand -> unit

(** Address arithmetic: [base + index * elem_bytes]. *)
val gep : t -> ?name:string -> Instr.operand -> Instr.operand -> elem_bytes:int -> Instr.operand

val extractelement : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand
val insertelement : t -> ?name:string -> Instr.operand -> Instr.operand -> Instr.operand -> Instr.operand
val shufflevector : t -> ?name:string -> Instr.operand -> Instr.operand -> int array -> Instr.operand

(** Broadcast a scalar to an n-lane vector the way ISPC does it:
    [insertelement] into lane 0 of undef followed by a zero
    [shufflevector] (paper Fig 9). *)
val broadcast : t -> ?name:string -> Instr.operand -> int -> Instr.operand

val call : t -> ?name:string -> ret:Vtype.t -> string -> Instr.operand list -> Instr.operand

val phi : t -> ?name:string -> Vtype.t -> (string * Instr.operand) list -> Instr.operand

(** Patch an extra incoming edge onto a phi in the current block. *)
val add_phi_incoming : t -> Instr.reg -> from:string -> value:Instr.operand -> unit

val br : t -> string -> unit
val condbr : t -> Instr.operand -> string -> string -> unit
val ret : t -> Instr.operand option -> unit
val unreachable : t -> unit

(** VIR modules: a set of functions plus declared externals.

    Externals cover the VULFI runtime API ([__vulfi_inject_*],
    [__vulfi_check_foreach], ...) and are resolved by the interpreter's
    extern mechanism at run time. *)

type extern_decl = {
  ename : string;
  arg_tys : Vtype.t list;
  ret : Vtype.t;
}

type t = {
  mname : string;
  mutable funcs : Func.t list;
  mutable externs : extern_decl list;
}

let create name = { mname = name; funcs = []; externs = [] }

let add_func m f = m.funcs <- m.funcs @ [ f ]

let find_func m name =
  List.find_opt (fun f -> f.Func.fname = name) m.funcs

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg ("Vmodule.find_func_exn: @" ^ name)

let declare_extern m ~name ~arg_tys ~ret =
  if not (List.exists (fun e -> e.ename = name) m.externs) then
    m.externs <- m.externs @ [ { ename = name; arg_tys; ret } ]

let find_extern m name =
  List.find_opt (fun e -> e.ename = name) m.externs

(** VULFI's inbuilt table of x86 vector intrinsics.

    The paper (§II-D) notes that VULFI "maintains an inbuilt list of x86
    intrinsics, which classifies whether any given intrinsic performs a
    masked vector operation", and uses the mask operand to decide whether
    a vector lane is eligible for fault injection. This module is that
    table, plus the generic [llvm.*] math intrinsics the code generator
    emits. *)

type kind =
  | Maskload   (** masked vector load: [(ptr, mask) -> vec] *)
  | Maskstore  (** masked vector store: [(ptr, mask, value) -> void] *)
  | Math of string  (** pure lane-wise math function, e.g. "sqrt" *)
  | Reduce of string  (** cross-lane reduction: "add" | "min" | "max" *)

type info = {
  iname : string;
  kind : kind;
  (* Operand index of the execution mask, if the intrinsic is masked. *)
  mask_operand : int option;
  (* Operand index of the stored value, for store-like intrinsics. *)
  value_operand : int option;
  target : Target.t option;  (** None: target-independent *)
}

let mk ?(mask = None) ?(value = None) ?(target = None) iname kind =
  { iname; kind; mask_operand = mask; value_operand = value; target }

(* Masked load/store intrinsics modelled on LLVM 3.2's x86 AVX/SSE
   surface (cf. paper Fig 5). Signatures:
     maskload : (ptr, <n x i1>) -> <n x elt>
     maskstore: (ptr, <n x i1>, <n x elt>) -> void *)
let table =
  [
    mk "llvm.x86.avx.maskload.ps.256" Maskload ~mask:(Some 1)
      ~target:(Some Target.Avx);
    mk "llvm.x86.avx.maskstore.ps.256" Maskstore ~mask:(Some 1)
      ~value:(Some 2) ~target:(Some Target.Avx);
    mk "llvm.x86.avx.maskload.pd.256" Maskload ~mask:(Some 1)
      ~target:(Some Target.Avx);
    mk "llvm.x86.avx.maskstore.pd.256" Maskstore ~mask:(Some 1)
      ~value:(Some 2) ~target:(Some Target.Avx);
    mk "llvm.x86.avx.maskload.d.256" Maskload ~mask:(Some 1)
      ~target:(Some Target.Avx);
    mk "llvm.x86.avx.maskstore.d.256" Maskstore ~mask:(Some 1)
      ~value:(Some 2) ~target:(Some Target.Avx);
    mk "llvm.x86.avx.maskload.ps" Maskload ~mask:(Some 1)
      ~target:(Some Target.Sse);
    mk "llvm.x86.avx.maskstore.ps" Maskstore ~mask:(Some 1)
      ~value:(Some 2) ~target:(Some Target.Sse);
    mk "llvm.x86.avx.maskload.d" Maskload ~mask:(Some 1)
      ~target:(Some Target.Sse);
    mk "llvm.x86.avx.maskstore.d" Maskstore ~mask:(Some 1)
      ~value:(Some 2) ~target:(Some Target.Sse);
    (* Lane-wise math, lowered from mini-ISPC builtins. *)
    mk "llvm.sqrt" (Math "sqrt");
    mk "llvm.exp" (Math "exp");
    mk "llvm.log" (Math "log");
    mk "llvm.sin" (Math "sin");
    mk "llvm.cos" (Math "cos");
    mk "llvm.pow" (Math "pow");
    mk "llvm.fabs" (Math "fabs");
    mk "llvm.floor" (Math "floor");
    mk "llvm.minnum" (Math "min");
    mk "llvm.maxnum" (Math "max");
    (* Cross-lane reductions (ISPC's reduce_add / reduce_min / ...). *)
    mk "llvm.vector.reduce.add" (Reduce "add");
    mk "llvm.vector.reduce.or" (Reduce "or");
    mk "llvm.vector.reduce.fadd" (Reduce "add");
    mk "llvm.vector.reduce.min" (Reduce "min");
    mk "llvm.vector.reduce.max" (Reduce "max");
    mk "llvm.vector.reduce.fmin" (Reduce "min");
    mk "llvm.vector.reduce.fmax" (Reduce "max");
  ]

let is_intrinsic_name name =
  String.length name >= 5 && String.sub name 0 5 = "llvm."

(* Lookup is by prefix for the suffixed generic intrinsics
   (e.g. "llvm.sqrt.v8f32" matches the "llvm.sqrt" entry) and exact for
   the x86 ones. *)
let lookup name =
  let matches info =
    String.equal info.iname name
    || (String.length name > String.length info.iname
        && String.sub name 0 (String.length info.iname + 1)
           = info.iname ^ ".")
  in
  List.find_opt matches table

let is_masked name =
  match lookup name with
  | Some { mask_operand = Some _; _ } -> true
  | _ -> false

let mask_operand name =
  match lookup name with Some i -> i.mask_operand | None -> None

let value_operand name =
  match lookup name with Some i -> i.value_operand | None -> None

(* Name of the masked load intrinsic for element type [s] on [target]. *)
let maskload_name target s =
  let suffix =
    match (s : Vtype.scalar) with
    | F32 -> "ps"
    | F64 -> "pd"
    | I32 -> "d"
    | _ -> invalid_arg "Intrinsics.maskload_name: unsupported element"
  in
  match target with
  | Target.Avx -> Printf.sprintf "llvm.x86.avx.maskload.%s.256" suffix
  | Target.Sse -> Printf.sprintf "llvm.x86.avx.maskload.%s" suffix

let maskstore_name target s =
  let suffix =
    match (s : Vtype.scalar) with
    | F32 -> "ps"
    | F64 -> "pd"
    | I32 -> "d"
    | _ -> invalid_arg "Intrinsics.maskstore_name: unsupported element"
  in
  match target with
  | Target.Avx -> Printf.sprintf "llvm.x86.avx.maskstore.%s.256" suffix
  | Target.Sse -> Printf.sprintf "llvm.x86.avx.maskstore.%s" suffix

(** Types of the VIR intermediate representation: the slice of the LLVM
    type system the VULFI paper manipulates — scalar integers, IEEE
    floats, opaque byte pointers, and fixed-length vectors thereof. *)

type scalar =
  | I1   (** 1-bit boolean / mask lane *)
  | I8   (** 8-bit integer *)
  | I32  (** 32-bit integer *)
  | I64  (** 64-bit integer *)
  | F32  (** single-precision float *)
  | F64  (** double-precision float *)
  | Ptr  (** byte pointer, 64-bit in the VM *)

type t =
  | Void  (** no value; type of stores and terminators *)
  | Scalar of scalar
  | Vector of int * scalar  (** [<n x s>] *)

val scalar : scalar -> t
val vector : int -> scalar -> t

val bool_ty : t
val i8 : t
val i32 : t
val i64 : t
val f32 : t
val f64 : t
val ptr : t

(** Number of lanes: 1 for scalars, n for vectors, 0 for void. *)
val lanes : t -> int

(** Element scalar of a scalar or vector type.
    @raise Invalid_argument on [Void]. *)
val elem : t -> scalar

val is_vector : t -> bool
val is_scalar : t -> bool
val is_void : t -> bool
val is_int_scalar : scalar -> bool
val is_float_scalar : scalar -> bool

(** Integer-elemented (i1/i8/i32/i64), non-void. *)
val is_int : t -> bool

(** Float-elemented (f32/f64), non-void. *)
val is_float : t -> bool

val is_ptr : t -> bool

(** Bit width of one scalar element (i1 = 1). *)
val scalar_bits : scalar -> int

(** Storage footprint in bytes of one element (i1 stored as a byte). *)
val scalar_bytes : scalar -> int

(** Total storage of the type in bytes. *)
val size_bytes : t -> int

(** Replace the lane count ([with_lanes 1] yields the scalar type).
    @raise Invalid_argument on [Void]. *)
val with_lanes : int -> t -> t

(** The element type as a scalar type. *)
val scalar_of : t -> t

val scalar_name : scalar -> string

(** LLVM-style rendering: ["<8 x float>"], ["i32"], ["void"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Module verifier: structural SSA checks (single definitions, block
    shape, phi/predecessor agreement, dominance of uses) plus a full
    instruction-typing pass. Every IR-rewriting pass in the repository
    re-verifies its output. *)

type error = { in_func : string; in_block : string; msg : string }

val error_to_string : error -> string

(** All verification errors of one function (empty = well-formed). *)
val verify_func : Vmodule.t -> Func.t -> error list

(** All verification errors of a module. *)
val verify_module : Vmodule.t -> error list

(** @raise Invalid_argument with a readable report on any error. *)
val check_module : Vmodule.t -> unit

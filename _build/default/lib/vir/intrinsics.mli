(** VULFI's inbuilt table of x86 vector intrinsics (paper §II-D): masked
    load/store classification with mask-operand positions, plus the
    generic math/reduction intrinsics the code generator emits. *)

type kind =
  | Maskload   (** masked vector load: [(ptr, mask) -> vec] *)
  | Maskstore  (** masked vector store: [(ptr, mask, value) -> void] *)
  | Math of string  (** pure lane-wise math, e.g. ["sqrt"] *)
  | Reduce of string  (** cross-lane reduction: "add"/"or"/"min"/"max" *)

type info = {
  iname : string;
  kind : kind;
  mask_operand : int option;  (** operand index of the execution mask *)
  value_operand : int option;  (** operand index of the stored value *)
  target : Target.t option;  (** [None]: target-independent *)
}

(** The full table. *)
val table : info list

(** Does [name] start with ["llvm."]? *)
val is_intrinsic_name : string -> bool

(** Resolve by exact name or generic prefix (e.g. ["llvm.sqrt.v8f32"]
    matches the ["llvm.sqrt"] entry). *)
val lookup : string -> info option

(** Does the named intrinsic carry an execution mask? *)
val is_masked : string -> bool

val mask_operand : string -> int option
val value_operand : string -> int option

(** Name of the masked load/store intrinsic for an element type on a
    target, e.g. ["llvm.x86.avx.maskload.ps.256"].
    @raise Invalid_argument for unsupported element types. *)
val maskload_name : Target.t -> Vtype.scalar -> string

val maskstore_name : Target.t -> Vtype.scalar -> string

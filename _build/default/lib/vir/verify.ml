(** Module verifier: structural SSA checks plus an instruction typing
    pass. Passes run the verifier after rewriting IR; tests assert both
    acceptance of well-formed IR and rejection of malformed IR. *)

type error = { in_func : string; in_block : string; msg : string }

let error_to_string e =
  Printf.sprintf "%s/%%%s: %s" e.in_func e.in_block e.msg

(* Immediate dominators by iterative dataflow over block indices;
   returns dom.(i) = set of blocks dominating block i (as bool array). *)
let dominators (f : Func.t) =
  let blocks = Array.of_list f.Func.blocks in
  let n = Array.length blocks in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i b -> Hashtbl.replace index_of b.Block.label i) blocks;
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt index_of s with
          | Some j -> preds.(j) <- i :: preds.(j)
          | None -> ())
        (Block.successors b))
    blocks;
  let dom = Array.init n (fun i -> Array.make n (i <> 0 || true)) in
  (* entry dominated only by itself; others start as full set *)
  Array.iteri (fun i row -> if i = 0 then Array.iteri (fun j _ -> row.(j) <- j = 0) row) dom;
  for i = 1 to n - 1 do
    Array.fill dom.(i) 0 n true
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let inter = Array.make n (preds.(i) <> []) in
      List.iter
        (fun p -> Array.iteri (fun j v -> inter.(j) <- v && dom.(p).(j)) inter)
        preds.(i);
      inter.(i) <- true;
      if inter <> dom.(i) then (
        dom.(i) <- inter;
        changed := true)
    done
  done;
  (dom, index_of)

let verify_func (m : Vmodule.t) (f : Func.t) : error list =
  let errors = ref [] in
  let err block msg =
    errors := { in_func = f.Func.fname; in_block = block; msg } :: !errors
  in
  if f.Func.blocks = [] then err "" "function has no blocks";
  let labels = Hashtbl.create 16 in
  List.iter
    (fun b ->
      if Hashtbl.mem labels b.Block.label then
        err b.Block.label "duplicate block label";
      Hashtbl.replace labels b.Block.label ())
    f.Func.blocks;
  (* Definitions: params then instruction results, each exactly once. *)
  let def_site = Hashtbl.create 64 in
  List.iter
    (fun p -> Hashtbl.replace def_site p.Func.preg ("<param>", p.Func.pty))
    f.Func.params;
  List.iter
    (fun b ->
      List.iter
        (fun (i : Instr.t) ->
          if Instr.defines i then begin
            if Hashtbl.mem def_site i.Instr.id then
              err b.Block.label
                (Printf.sprintf "register %%r%d defined twice" i.Instr.id);
            Hashtbl.replace def_site i.Instr.id (b.Block.label, i.Instr.ty)
          end)
        b.Block.instrs)
    f.Func.blocks;
  (* Block shape: exactly one terminator, at the end; phis first. *)
  List.iter
    (fun b ->
      (match List.rev b.Block.instrs with
      | [] -> err b.Block.label "empty block"
      | last :: rest ->
        if not (Instr.is_terminator last) then
          err b.Block.label "block does not end in a terminator";
        List.iter
          (fun i ->
            if Instr.is_terminator i then
              err b.Block.label "terminator in the middle of a block")
          rest);
      let seen_non_phi = ref false in
      List.iter
        (fun i ->
          if Instr.is_phi i then begin
            if !seen_non_phi then
              err b.Block.label "phi after non-phi instruction"
          end
          else seen_non_phi := true)
        b.Block.instrs)
    f.Func.blocks;
  (* Branch targets exist. *)
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem labels s) then
            err b.Block.label ("branch to unknown label %" ^ s))
        (Block.successors b))
    f.Func.blocks;
  (* Operand typing: register operands must match their definition. *)
  List.iter
    (fun b ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun o ->
              match o with
              | Instr.Reg (r, ty) -> (
                match Hashtbl.find_opt def_site r with
                | None ->
                  err b.Block.label
                    (Printf.sprintf "use of undefined register %%r%d" r)
                | Some (_, dty) ->
                  if not (Vtype.equal dty ty) then
                    err b.Block.label
                      (Printf.sprintf
                         "register %%r%d used at type %s but defined at %s" r
                         (Vtype.to_string ty) (Vtype.to_string dty)))
              | Instr.Imm _ -> ())
            (Instr.operands i))
        b.Block.instrs)
    f.Func.blocks;
  (* Instruction-specific typing rules. *)
  let check_instr b (i : Instr.t) =
    let ity = i.Instr.ty in
    let e msg = err b.Block.label (Pp.instr_to_string i ^ ": " ^ msg) in
    let ty_of = Instr.operand_ty in
    match i.Instr.op with
    | Instr.Ibinop (_, a, bb) ->
      if not (Vtype.is_int (ty_of a)) then e "integer binop on non-int";
      if not (Vtype.equal (ty_of a) (ty_of bb)) then e "operand type mismatch";
      if not (Vtype.equal ity (ty_of a)) then e "result type mismatch"
    | Instr.Fbinop (_, a, bb) ->
      if not (Vtype.is_float (ty_of a)) then e "float binop on non-float";
      if not (Vtype.equal (ty_of a) (ty_of bb)) then e "operand type mismatch";
      if not (Vtype.equal ity (ty_of a)) then e "result type mismatch"
    | Instr.Icmp (_, a, bb) ->
      if not (Vtype.is_int (ty_of a) || Vtype.is_ptr (ty_of a)) then
        e "icmp on non-int";
      if not (Vtype.equal (ty_of a) (ty_of bb)) then e "operand type mismatch";
      if not
           (Vtype.equal ity
              (Vtype.with_lanes (Vtype.lanes (ty_of a)) Vtype.bool_ty))
      then e "icmp result must be i1 with matching lanes"
    | Instr.Fcmp (_, a, bb) ->
      if not (Vtype.is_float (ty_of a)) then e "fcmp on non-float";
      if not (Vtype.equal (ty_of a) (ty_of bb)) then e "operand type mismatch";
      if not
           (Vtype.equal ity
              (Vtype.with_lanes (Vtype.lanes (ty_of a)) Vtype.bool_ty))
      then e "fcmp result must be i1 with matching lanes"
    | Instr.Select (c, a, bb) ->
      let cty = ty_of c in
      if Vtype.elem cty <> Vtype.I1 then e "select condition must be i1";
      if
        Vtype.is_vector cty
        && Vtype.lanes cty <> Vtype.lanes (ty_of a)
      then e "select mask lane mismatch";
      if not (Vtype.equal (ty_of a) (ty_of bb)) then e "select arm mismatch";
      if not (Vtype.equal ity (ty_of a)) then e "select result mismatch"
    | Instr.Cast (k, a) -> (
      let aty = ty_of a in
      if Vtype.lanes aty <> Vtype.lanes ity then e "cast changes lane count";
      match k with
      | Instr.Trunc | Instr.Zext | Instr.Sext ->
        if not (Vtype.is_int aty && Vtype.is_int ity) then
          e "int cast on non-int"
      | Instr.Fptosi ->
        if not (Vtype.is_float aty && Vtype.is_int ity) then
          e "fptosi type error"
      | Instr.Sitofp ->
        if not (Vtype.is_int aty && Vtype.is_float ity) then
          e "sitofp type error"
      | Instr.Fptrunc | Instr.Fpext ->
        if not (Vtype.is_float aty && Vtype.is_float ity) then
          e "float cast on non-float"
      | Instr.Ptrtoint ->
        if not (Vtype.is_ptr aty && Vtype.is_int ity) then
          e "ptrtoint type error"
      | Instr.Inttoptr ->
        if not (Vtype.is_int aty && Vtype.is_ptr ity) then
          e "inttoptr type error"
      | Instr.Bitcast ->
        if
          Vtype.size_bytes aty <> Vtype.size_bytes ity
          || Vtype.is_void aty || Vtype.is_void ity
        then e "bitcast size mismatch")
    | Instr.Alloca _ ->
      if not (Vtype.is_ptr ity) then e "alloca must yield ptr"
    | Instr.Load p ->
      if not (Vtype.is_ptr (ty_of p)) then e "load from non-ptr";
      if Vtype.is_void ity then e "load of void"
    | Instr.Store (v, p) ->
      if not (Vtype.is_ptr (ty_of p)) then e "store to non-ptr";
      if Vtype.is_void (ty_of v) then e "store of void";
      if not (Vtype.is_void ity) then e "store has a result"
    | Instr.Gep (base, ix, sz) ->
      if not (Vtype.is_ptr (ty_of base)) then e "gep base must be ptr";
      if not (Vtype.is_int (ty_of ix)) then e "gep index must be int";
      if Vtype.is_vector (ty_of ix) then e "gep index must be scalar";
      if sz <= 0 then e "gep element size must be positive";
      if not (Vtype.is_ptr ity) then e "gep must yield ptr"
    | Instr.Extractelement (v, ix) ->
      if not (Vtype.is_vector (ty_of v)) then e "extractelement on scalar";
      if not (Vtype.is_int (ty_of ix)) then e "lane index must be int";
      if not (Vtype.equal ity (Vtype.scalar_of (ty_of v))) then
        e "extractelement result type mismatch"
    | Instr.Insertelement (v, el, ix) ->
      if not (Vtype.is_vector (ty_of v)) then e "insertelement on scalar";
      if not (Vtype.is_int (ty_of ix)) then e "lane index must be int";
      if not (Vtype.equal (ty_of el) (Vtype.scalar_of (ty_of v))) then
        e "inserted element type mismatch";
      if not (Vtype.equal ity (ty_of v)) then
        e "insertelement result type mismatch"
    | Instr.Shufflevector (a, bb, mask) ->
      if not (Vtype.is_vector (ty_of a)) then e "shuffle of scalar";
      if not (Vtype.equal (ty_of a) (ty_of bb)) then
        e "shuffle operand mismatch";
      let lanes = Vtype.lanes (ty_of a) in
      Array.iter
        (fun ix ->
          if ix < 0 || ix >= 2 * lanes then e "shuffle mask out of range")
        mask;
      if
        not
          (Vtype.equal ity
             (Vtype.with_lanes (Array.length mask)
                (Vtype.scalar_of (ty_of a))))
      then e "shuffle result type mismatch"
    | Instr.Call (callee, args) -> (
      let check_sig arg_tys ret =
        if List.length arg_tys <> List.length args then
          e "call arity mismatch"
        else
          List.iter2
            (fun want got ->
              if not (Vtype.equal want (Instr.operand_ty got)) then
                e
                  (Printf.sprintf "call argument type mismatch (%s vs %s)"
                     (Vtype.to_string want)
                     (Vtype.to_string (Instr.operand_ty got))))
            arg_tys args;
        if not (Vtype.equal ret ity) then e "call result type mismatch"
      in
      match Vmodule.find_func m callee with
      | Some g ->
        check_sig (List.map (fun p -> p.Func.pty) g.Func.params) g.Func.ret_ty
      | None -> (
        match Vmodule.find_extern m callee with
        | Some ext -> check_sig ext.Vmodule.arg_tys ext.Vmodule.ret
        | None ->
          if not (Intrinsics.is_intrinsic_name callee) then
            e ("call to unknown function @" ^ callee)))
    | Instr.Phi incoming ->
      List.iter
        (fun (_, v) ->
          if not (Vtype.equal (Instr.operand_ty v) ity) then
            e "phi incoming type mismatch")
        incoming
    | Instr.Condbr (c, _, _) ->
      if not (Vtype.equal (ty_of c) Vtype.bool_ty) then
        e "condbr condition must be scalar i1"
    | Instr.Ret v -> (
      match (v, f.Func.ret_ty) with
      | None, rt when Vtype.is_void rt -> ()
      | None, _ -> e "ret void in non-void function"
      | Some _, rt when Vtype.is_void rt -> e "ret value in void function"
      | Some v, rt ->
        if not (Vtype.equal (Instr.operand_ty v) rt) then
          e "ret type mismatch")
    | Instr.Br _ | Instr.Unreachable -> ()
  in
  List.iter
    (fun b -> List.iter (check_instr b) b.Block.instrs)
    f.Func.blocks;
  (* Phi incoming labels must exactly cover the block's predecessors. *)
  let preds = Func.predecessors f in
  List.iter
    (fun b ->
      let ps =
        try List.sort_uniq compare (Hashtbl.find preds b.Block.label)
        with Not_found -> []
      in
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.op with
          | Instr.Phi incoming ->
            let labels = List.sort_uniq compare (List.map fst incoming) in
            if labels <> ps then
              err b.Block.label
                (Printf.sprintf "phi %%r%d incoming {%s} != preds {%s}"
                   i.Instr.id (String.concat "," labels)
                   (String.concat "," ps))
          | _ -> ())
        b.Block.instrs)
    f.Func.blocks;
  (* Dominance: every use is dominated by its definition. Uses in phi
     operands are checked at the end of the incoming block instead. *)
  if f.Func.blocks <> [] && !errors = [] then begin
    let dom, index_of = dominators f in
    let block_index label = Hashtbl.find_opt index_of label in
    let def_block = Hashtbl.create 64 in
    List.iter
      (fun p -> Hashtbl.replace def_block p.Func.preg "<entry>")
      f.Func.params;
    List.iter
      (fun b ->
        List.iter
          (fun (i : Instr.t) ->
            if Instr.defines i then
              Hashtbl.replace def_block i.Instr.id b.Block.label)
          b.Block.instrs)
      f.Func.blocks;
    let dominates dlabel ulabel =
      if dlabel = "<entry>" then true
      else
        match (block_index dlabel, block_index ulabel) with
        | Some di, Some ui -> dom.(ui).(di)
        | _ -> false
    in
    List.iter
      (fun b ->
        let seen_here = Hashtbl.create 16 in
        List.iter
          (fun (i : Instr.t) ->
            (match i.Instr.op with
            | Instr.Phi incoming ->
              List.iter
                (fun (from, v) ->
                  match v with
                  | Instr.Reg (r, _) -> (
                    match Hashtbl.find_opt def_block r with
                    | Some dl ->
                      if not (dominates dl from) then
                        err b.Block.label
                          (Printf.sprintf
                             "phi use of %%r%d not dominated via %%%s" r from)
                    | None -> ())
                  | Instr.Imm _ -> ())
                incoming
            | _ ->
              List.iter
                (fun r ->
                  match Hashtbl.find_opt def_block r with
                  | Some dl ->
                    let ok =
                      if dl = b.Block.label then Hashtbl.mem seen_here r
                      else dominates dl b.Block.label
                    in
                    if not ok then
                      err b.Block.label
                        (Printf.sprintf
                           "use of %%r%d not dominated by its definition" r)
                  | None -> ())
                (Instr.uses i));
            if Instr.defines i then Hashtbl.replace seen_here i.Instr.id ())
          b.Block.instrs)
      f.Func.blocks
  end;
  List.rev !errors

let verify_module (m : Vmodule.t) : error list =
  List.concat_map (verify_func m) m.Vmodule.funcs

(* Raise [Invalid_argument] with a readable report if verification
   fails; convenience for pass pipelines. *)
let check_module m =
  match verify_module m with
  | [] -> ()
  | errs ->
    let report = String.concat "\n" (List.map error_to_string errs) in
    invalid_arg ("Verify.check_module:\n" ^ report)

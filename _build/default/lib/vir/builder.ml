(** IRBuilder-style construction API.

    A builder owns a function under construction and an insertion point
    (the current block). Every [ins_*] helper allocates a fresh register,
    appends the instruction, and returns the result operand. *)

type t = {
  func : Func.t;
  mutable cur : Block.t option;
}

let create func = { func; cur = None }

(* Create a function, register it in [m], and return a builder
   positioned in a fresh entry block. *)
let define m ~name ~params ~ret_ty =
  let func = Func.create ~name ~params ~ret_ty in
  Vmodule.add_func m func;
  let b = { func; cur = None } in
  b

let func b = b.func

let param b name =
  match List.find_opt (fun p -> p.Func.pname = name) b.func.Func.params with
  | Some p -> Instr.Reg (p.Func.preg, p.Func.pty)
  | None -> invalid_arg ("Builder.param: " ^ name)

let new_block b label =
  let blk = Block.create label in
  Func.add_block b.func blk;
  blk

let fresh_block b base = new_block b (Func.fresh_label b.func base)

let position_at_end b blk = b.cur <- Some blk

let current_block b =
  match b.cur with
  | Some blk -> blk
  | None -> invalid_arg "Builder: no insertion point"

let append b instr =
  let blk = current_block b in
  blk.Block.instrs <- blk.Block.instrs @ [ instr ]

let emit b ?(name = "t") ty op =
  if Vtype.is_void ty then (
    append b { Instr.id = -1; name = ""; ty; op };
    Instr.Imm (Const.Cundef Vtype.Void))
  else
    let id = Func.fresh_reg b.func in
    let iname = Printf.sprintf "%s%d" name id in
    append b { Instr.id = id; name = iname; ty; op };
    Instr.Reg (id, ty)

(* Arithmetic; result type follows the left operand. *)
let ibinop b ?name k x y = emit b ?name (Instr.operand_ty x) (Instr.Ibinop (k, x, y))
let fbinop b ?name k x y = emit b ?name (Instr.operand_ty x) (Instr.Fbinop (k, x, y))

let add b ?name x y = ibinop b ?name Instr.Add x y
let sub b ?name x y = ibinop b ?name Instr.Sub x y
let mul b ?name x y = ibinop b ?name Instr.Mul x y
let sdiv b ?name x y = ibinop b ?name Instr.Sdiv x y
let srem b ?name x y = ibinop b ?name Instr.Srem x y
let and_ b ?name x y = ibinop b ?name Instr.And x y
let or_ b ?name x y = ibinop b ?name Instr.Or x y
let xor b ?name x y = ibinop b ?name Instr.Xor x y
let shl b ?name x y = ibinop b ?name Instr.Shl x y
let lshr b ?name x y = ibinop b ?name Instr.Lshr x y
let ashr b ?name x y = ibinop b ?name Instr.Ashr x y

let fadd b ?name x y = fbinop b ?name Instr.Fadd x y
let fsub b ?name x y = fbinop b ?name Instr.Fsub x y
let fmul b ?name x y = fbinop b ?name Instr.Fmul x y
let fdiv b ?name x y = fbinop b ?name Instr.Fdiv x y

let cmp_result_ty x =
  Vtype.with_lanes (Vtype.lanes (Instr.operand_ty x)) Vtype.bool_ty

let icmp b ?name pred x y =
  emit b ?name (cmp_result_ty x) (Instr.Icmp (pred, x, y))

let fcmp b ?name pred x y =
  emit b ?name (cmp_result_ty x) (Instr.Fcmp (pred, x, y))

let select b ?name c x y =
  emit b ?name (Instr.operand_ty x) (Instr.Select (c, x, y))

let cast b ?name k x ty = emit b ?name ty (Instr.Cast (k, x))

let alloca b ?name elt count =
  emit b ?name Vtype.ptr (Instr.Alloca (elt, count))

let load b ?name ty ptr = emit b ?name ty (Instr.Load ptr)

let store b v ptr = ignore (emit b Vtype.Void (Instr.Store (v, ptr)))

let gep b ?name base index ~elem_bytes =
  emit b ?name Vtype.ptr (Instr.Gep (base, index, elem_bytes))

let extractelement b ?name v ix =
  let ty = Vtype.scalar_of (Instr.operand_ty v) in
  emit b ?name ty (Instr.Extractelement (v, ix))

let insertelement b ?name v e ix =
  emit b ?name (Instr.operand_ty v) (Instr.Insertelement (v, e, ix))

let shufflevector b ?name v1 v2 mask =
  let ty =
    Vtype.with_lanes (Array.length mask)
      (Vtype.scalar_of (Instr.operand_ty v1))
  in
  emit b ?name ty (Instr.Shufflevector (v1, v2, mask))

(* Broadcast a scalar to an [n]-lane vector the way ISPC does it:
   insertelement into lane 0 of undef, then a zero shufflevector
   (paper Fig 9). *)
let broadcast b ?name scalar n =
  let sty = Instr.operand_ty scalar in
  let vty = Vtype.with_lanes n sty in
  let init =
    insertelement b ~name:"broadcast_init"
      (Instr.Imm (Const.Cundef vty))
      scalar
      (Instr.Imm (Const.i32 0))
  in
  shufflevector b ?name init
    (Instr.Imm (Const.Cundef vty))
    (Array.make n 0)

let call b ?name ~ret callee args =
  emit b ?name ret (Instr.Call (callee, args))

let phi b ?name ty incoming = emit b ?name ty (Instr.Phi incoming)

(* Patch an extra incoming edge onto an existing phi instruction. *)
let add_phi_incoming b reg ~from ~value =
  let blk = current_block b in
  Block.map_instrs blk (fun i ->
      if i.Instr.id = reg then
        match i.Instr.op with
        | Instr.Phi inc -> { i with Instr.op = Instr.Phi (inc @ [ (from, value) ]) }
        | _ -> invalid_arg "add_phi_incoming: not a phi"
      else i)

let br b label = ignore (emit b Vtype.Void (Instr.Br label))

let condbr b c l1 l2 = ignore (emit b Vtype.Void (Instr.Condbr (c, l1, l2)))

let ret b v = ignore (emit b Vtype.Void (Instr.Ret v))

let unreachable b = ignore (emit b Vtype.Void Instr.Unreachable)

(** Compile-time constants appearing as instruction operands. *)

type t =
  | Cint of Vtype.scalar * int64
      (** Integer (or pointer) constant; the payload is truncated to the
          scalar's width when evaluated. *)
  | Cfloat of Vtype.scalar * float  (** [F32] payloads are pre-rounded. *)
  | Cvec of t array                 (** Vector of scalar constants. *)
  | Cundef of Vtype.t               (** LLVM-style [undef]. *)

let rec ty = function
  | Cint (s, _) -> Vtype.Scalar s
  | Cfloat (s, _) -> Vtype.Scalar s
  | Cundef t -> t
  | Cvec elems ->
    let n = Array.length elems in
    if n = 0 then invalid_arg "Const.ty: empty vector"
    else Vtype.with_lanes n (ty elems.(0))

(* Round a float to its storable precision. *)
let round_float s x =
  match s with
  | Vtype.F32 -> Int32.float_of_bits (Int32.bits_of_float x)
  | _ -> x

let i1 b = Cint (I1, if b then 1L else 0L)

let i8 x = Cint (I8, Int64.of_int x)

let i32 x = Cint (I32, Int64.of_int x)

let i64 x = Cint (I64, x)

let f32 x = Cfloat (F32, round_float F32 x)

let f64 x = Cfloat (F64, x)

let null_ptr = Cint (Ptr, 0L)

(* Vector whose lanes are all [c]. *)
let splat n c = Cvec (Array.make n c)

(* The <0, 1, ..., n-1> index vector used by foreach lowering. *)
let iota s n = Cvec (Array.init n (fun i -> Cint (s, Int64.of_int i)))

let zero s =
  if Vtype.is_float_scalar s then Cfloat (s, 0.0) else Cint (s, 0L)

let zero_of_ty t =
  match t with
  | Vtype.Void -> invalid_arg "Const.zero_of_ty: void"
  | Vtype.Scalar s -> zero s
  | Vtype.Vector (n, s) -> splat n (zero s)

let rec to_string = function
  | Cint (I1, v) -> if v = 0L then "false" else "true"
  | Cint (_, v) -> Int64.to_string v
  | Cfloat (_, x) -> Printf.sprintf "%h" x
  | Cundef _ -> "undef"
  | Cvec elems ->
    let parts = Array.to_list (Array.map to_string elems) in
    "<" ^ String.concat ", " parts ^ ">"

let rec equal a b =
  match (a, b) with
  | Cint (sa, va), Cint (sb, vb) -> sa = sb && Int64.equal va vb
  | Cfloat (sa, xa), Cfloat (sb, xb) ->
    sa = sb && Int64.equal (Int64.bits_of_float xa) (Int64.bits_of_float xb)
  | Cundef ta, Cundef tb -> Vtype.equal ta tb
  | Cvec ea, Cvec eb ->
    Array.length ea = Array.length eb
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (equal x eb.(i)) then ok := false) ea;
        !ok)
  | (Cint _ | Cfloat _ | Cundef _ | Cvec _), _ -> false

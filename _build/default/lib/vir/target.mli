(** Vector instruction-set targets: Intel AVX (256-bit) and SSE4
    (128-bit), the two ISAs of the paper's study. At IR level the
    distinction VULFI cares about is the lane count for 32-bit elements
    and which masked intrinsics the code generator emits. *)

type t = Avx | Sse

val all : t list

val name : t -> string

(** Parse ["avx"] / ["sse"] (case-insensitive, ["sse4"] accepted). *)
val of_string : string -> t option

(** Register width in bits: 256 / 128. *)
val bits : t -> int

(** Lanes for 32-bit elements (f32/i32): 8 / 4. *)
val vl : t -> int

(** Lanes for an arbitrary element type. *)
val vl_for : t -> Vtype.scalar -> int

(** Dead-code elimination.

    The mini-ISPC code generator, like any syntax-directed lowering,
    emits values that turn out unused (e.g. the else-branch mask of a
    one-armed varying [if], or the materialised dimension vector of a
    [foreach] whose body only uses contiguous accesses). The paper's
    toolchain compiles with [-O3], so dead definitions never reach
    VULFI's site enumeration; this pass provides the same guarantee.

    Classic mark-and-sweep over SSA: roots are side-effecting
    instructions (stores, terminators, impure calls, allocas); every
    register transitively reachable from a root operand is live; dead
    pure definitions are deleted. *)

let is_pure_call name =
  match Intrinsics.lookup name with
  | Some { Intrinsics.kind = Intrinsics.Math _ | Intrinsics.Reduce _; _ } ->
    true
  | Some { Intrinsics.kind = Intrinsics.Maskload; _ } ->
    true (* a dead load would be removed by -O3 as well *)
  | Some { Intrinsics.kind = Intrinsics.Maskstore; _ } -> false
  | None -> false (* module functions and externs: assume effects *)

let is_root (i : Instr.t) =
  match i.Instr.op with
  | Instr.Store _ | Instr.Br _ | Instr.Condbr _ | Instr.Ret _
  | Instr.Unreachable | Instr.Alloca _ ->
    true
  | Instr.Call (name, _) -> not (is_pure_call name)
  | _ -> false

(* Is a dead definition of this kind deletable? *)
let is_removable (i : Instr.t) =
  Instr.defines i
  &&
  match i.Instr.op with
  | Instr.Ibinop _ | Instr.Fbinop _ | Instr.Icmp _ | Instr.Fcmp _
  | Instr.Select _ | Instr.Cast _ | Instr.Load _ | Instr.Gep _
  | Instr.Extractelement _ | Instr.Insertelement _ | Instr.Shufflevector _
  | Instr.Phi _ ->
    true
  | Instr.Call (name, _) -> is_pure_call name
  | Instr.Store _ | Instr.Alloca _ | Instr.Br _ | Instr.Condbr _
  | Instr.Ret _ | Instr.Unreachable ->
    false

(* Remove dead definitions from [f]; returns how many were deleted. *)
let run_func (f : Func.t) : int =
  let def_tbl = Func.def_table f in
  let live = Hashtbl.create 64 in
  let worklist = ref [] in
  let mark r =
    if not (Hashtbl.mem live r) then begin
      Hashtbl.replace live r ();
      worklist := r :: !worklist
    end
  in
  Func.iter_instrs f (fun _ i -> if is_root i then List.iter mark (Instr.uses i));
  let rec drain () =
    match !worklist with
    | [] -> ()
    | r :: rest ->
      worklist := rest;
      (match Hashtbl.find_opt def_tbl r with
      | Some i -> List.iter mark (Instr.uses i)
      | None -> () (* parameter *));
      drain ()
  in
  drain ();
  let removed = ref 0 in
  List.iter
    (fun b ->
      let keep, dead =
        List.partition
          (fun (i : Instr.t) ->
            (not (is_removable i)) || Hashtbl.mem live i.Instr.id)
          b.Block.instrs
      in
      removed := !removed + List.length dead;
      b.Block.instrs <- keep)
    f.Func.blocks;
  !removed

let run_module (m : Vmodule.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 m.Vmodule.funcs

(** Textual VIR parser — the inverse of {!Pp}.

    Accepts exactly the syntax the printer emits, so that
    [parse (Pp.module_to_string m)] reconstructs [m] up to register
    names. This enables opt-style tooling (dump, edit, re-ingest) and
    powers the print/parse round-trip property tests. *)

exception Parse_error of string * int  (** message, line *)

(* ---------------- lexer ---------------- *)

type token =
  | Tint of int64
  | Tfloat of float
  | Tident of string   (* keywords, type names, labels *)
  | Treg of int        (* %rN *)
  | Tlabelref of string  (* %name (non-register) *)
  | Tglobal of string  (* @name *)
  | Tlparen | Trparen | Tlbrace | Trbrace | Tlangle | Trangle
  | Tlbracket | Trbracket
  | Tcomma | Tcolon | Teq
  | Teof

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : token option;
}

let mk_lexer src = { src; pos = 0; line = 1; peeked = None }

let error lx fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (m, lx.line))) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  if lx.pos < String.length lx.src then
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
      lx.pos <- lx.pos + 1;
      skip_ws lx
    | '\n' ->
      lx.pos <- lx.pos + 1;
      lx.line <- lx.line + 1;
      skip_ws lx
    | ';' ->
      (* comment to end of line *)
      while
        lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n'
      do
        lx.pos <- lx.pos + 1
      done;
      skip_ws lx
    | _ -> ()

(* Scan a number starting at [lx.pos]; handles 0x hex floats ("%h"
   output), decimal floats, and int64 decimals, with optional sign. *)
let rec lex_number lx =
  let start = lx.pos in
  if lx.src.[lx.pos] = '-' then lx.pos <- lx.pos + 1;
  (* negative specials: -infinity, -nan *)
  if
    lx.pos < String.length lx.src
    && (lx.src.[lx.pos] = 'i' || lx.src.[lx.pos] = 'n')
  then begin
    while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
      lx.pos <- lx.pos + 1
    done;
    match float_of_string_opt (String.sub lx.src start (lx.pos - start)) with
    | Some f -> Tfloat f
    | None -> error lx "bad numeric literal"
  end
  else lex_number_body lx start

and lex_number_body lx start =
  let is_hex =
    lx.pos + 1 < String.length lx.src
    && lx.src.[lx.pos] = '0'
    && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
  in
  let num_char c =
    is_digit c
    || (is_hex
        && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c = 'x'
           || c = 'X'))
    || c = '.' || c = 'p' || c = 'P'
    || (not is_hex && (c = 'e' || c = 'E'))
  in
  let rec go () =
    if lx.pos < String.length lx.src then begin
      let c = lx.src.[lx.pos] in
      if num_char c then begin
        lx.pos <- lx.pos + 1;
        (* exponent sign *)
        (if
           (c = 'p' || c = 'P' || ((not is_hex) && (c = 'e' || c = 'E')))
           && lx.pos < String.length lx.src
           && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-')
         then lx.pos <- lx.pos + 1);
        go ()
      end
    end
  in
  go ();
  let text = String.sub lx.src start (lx.pos - start) in
  if
    String.contains text '.'
    || String.contains text 'p'
    || String.contains text 'P'
    || ((not is_hex) && (String.contains text 'e' || String.contains text 'E'))
  then
    match float_of_string_opt text with
    | Some f -> Tfloat f
    | None -> error lx "bad float literal %S" text
  else
    match Int64.of_string_opt text with
    | Some n -> Tint n
    | None -> error lx "bad int literal %S" text

let lex_token lx =
  skip_ws lx;
  if lx.pos >= String.length lx.src then Teof
  else
    let c = lx.src.[lx.pos] in
    match c with
    | '(' -> lx.pos <- lx.pos + 1; Tlparen
    | ')' -> lx.pos <- lx.pos + 1; Trparen
    | '{' -> lx.pos <- lx.pos + 1; Tlbrace
    | '}' -> lx.pos <- lx.pos + 1; Trbrace
    | '<' -> lx.pos <- lx.pos + 1; Tlangle
    | '>' -> lx.pos <- lx.pos + 1; Trangle
    | '[' -> lx.pos <- lx.pos + 1; Tlbracket
    | ']' -> lx.pos <- lx.pos + 1; Trbracket
    | ',' -> lx.pos <- lx.pos + 1; Tcomma
    | ':' -> lx.pos <- lx.pos + 1; Tcolon
    | '=' -> lx.pos <- lx.pos + 1; Teq
    | '%' ->
      lx.pos <- lx.pos + 1;
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      let name = String.sub lx.src start (lx.pos - start) in
      if
        String.length name >= 2
        && name.[0] = 'r'
        && String.for_all is_digit (String.sub name 1 (String.length name - 1))
      then Treg (int_of_string (String.sub name 1 (String.length name - 1)))
      else Tlabelref name
    | '@' ->
      lx.pos <- lx.pos + 1;
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      Tglobal (String.sub lx.src start (lx.pos - start))
    | '-' -> lex_number lx
    | c when is_digit c -> lex_number lx
    | c when is_ident_char c ->
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      Tident (String.sub lx.src start (lx.pos - start))
    | c -> error lx "unexpected character %C" c

let next lx =
  match lx.peeked with
  | Some t ->
    lx.peeked <- None;
    t
  | None -> lex_token lx

let peek lx =
  match lx.peeked with
  | Some t -> t
  | None ->
    let t = lex_token lx in
    lx.peeked <- Some t;
    t

let token_name = function
  | Tint n -> Printf.sprintf "int %Ld" n
  | Tfloat f -> Printf.sprintf "float %h" f
  | Tident s -> Printf.sprintf "%S" s
  | Treg r -> Printf.sprintf "%%r%d" r
  | Tlabelref l -> "%" ^ l
  | Tglobal g -> "@" ^ g
  | Tlparen -> "'('" | Trparen -> "')'" | Tlbrace -> "'{'"
  | Trbrace -> "'}'" | Tlangle -> "'<'" | Trangle -> "'>'"
  | Tlbracket -> "'['" | Trbracket -> "']'"
  | Tcomma -> "','" | Tcolon -> "':'" | Teq -> "'='"
  | Teof -> "end of input"

let expect lx tok =
  let got = next lx in
  if got <> tok then
    error lx "expected %s, found %s" (token_name tok) (token_name got)

let expect_ident lx =
  match next lx with
  | Tident s -> s
  | got -> error lx "expected identifier, found %s" (token_name got)

let accept_ident lx kw =
  match peek lx with
  | Tident s when s = kw ->
    ignore (next lx);
    true
  | _ -> false

(* ---------------- types ---------------- *)

let scalar_of_name lx = function
  | "i1" -> Vtype.I1
  | "i8" -> Vtype.I8
  | "i32" -> Vtype.I32
  | "i64" -> Vtype.I64
  | "float" -> Vtype.F32
  | "double" -> Vtype.F64
  | "ptr" -> Vtype.Ptr
  | other -> error lx "unknown scalar type %S" other

(* Parse a type where a '<' unambiguously starts a vector type. *)
let parse_ty lx =
  match peek lx with
  | Tident "void" ->
    ignore (next lx);
    Vtype.Void
  | Tident name ->
    ignore (next lx);
    Vtype.Scalar (scalar_of_name lx name)
  | Tlangle ->
    ignore (next lx);
    let n =
      match next lx with
      | Tint n -> Int64.to_int n
      | got -> error lx "expected lane count, found %s" (token_name got)
    in
    if not (accept_ident lx "x") then error lx "expected 'x' in vector type";
    let s = scalar_of_name lx (expect_ident lx) in
    expect lx Trangle;
    Vtype.Vector (n, s)
  | got -> error lx "expected a type, found %s" (token_name got)

(* ---------------- constants ---------------- *)

(* A short (untyped) constant of known type [ty]. *)
let rec parse_const lx (ty : Vtype.t) : Const.t =
  match ty with
  | Vtype.Void -> error lx "void constant"
  | Vtype.Scalar s -> parse_scalar_const lx s
  | Vtype.Vector (n, s) -> (
    match peek lx with
    | Tident "undef" ->
      ignore (next lx);
      Const.Cundef ty
    | Tlangle ->
      ignore (next lx);
      let elems =
        Array.init n (fun i ->
            if i > 0 then expect lx Tcomma;
            parse_scalar_const lx s)
      in
      expect lx Trangle;
      Const.Cvec elems
    | got -> error lx "expected vector constant, found %s" (token_name got))

and parse_scalar_const lx (s : Vtype.scalar) : Const.t =
  match next lx with
  | Tident "undef" -> Const.Cundef (Vtype.Scalar s)
  | Tident "true" -> Const.i1 true
  | Tident "false" -> Const.i1 false
  | Tint n ->
    if Vtype.is_float_scalar s then Const.Cfloat (s, Int64.to_float n)
    else Const.Cint (s, n)
  | Tfloat f ->
    if Vtype.is_float_scalar s then
      Const.Cfloat (s, Const.round_float s f)
    else error lx "float constant for integer type"
  | Tident "nan" -> Const.Cfloat (s, Float.nan)
  | Tident "infinity" -> Const.Cfloat (s, Float.infinity)
  | got -> error lx "expected scalar constant, found %s" (token_name got)

(* ---------------- operands ---------------- *)

(* Typed operand: TYPE (reg | const). *)
let parse_operand lx : Instr.operand =
  let ty = parse_ty lx in
  match peek lx with
  | Treg r ->
    ignore (next lx);
    Instr.Reg (r, ty)
  | _ -> Instr.Imm (parse_const lx ty)

(* Short operand (no type): a register or constant of known type. *)
let parse_short_operand lx (ty : Vtype.t) : Instr.operand =
  match peek lx with
  | Treg r ->
    ignore (next lx);
    Instr.Reg (r, ty)
  | _ -> Instr.Imm (parse_const lx ty)

(* ---------------- instructions ---------------- *)

let ibinop_of_name = function
  | "add" -> Some Instr.Add | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul | "sdiv" -> Some Instr.Sdiv
  | "srem" -> Some Instr.Srem | "udiv" -> Some Instr.Udiv
  | "urem" -> Some Instr.Urem | "and" -> Some Instr.And
  | "or" -> Some Instr.Or | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl | "lshr" -> Some Instr.Lshr
  | "ashr" -> Some Instr.Ashr
  | _ -> None

let fbinop_of_name = function
  | "fadd" -> Some Instr.Fadd | "fsub" -> Some Instr.Fsub
  | "fmul" -> Some Instr.Fmul | "fdiv" -> Some Instr.Fdiv
  | "frem" -> Some Instr.Frem
  | _ -> None

let icmp_of_name lx = function
  | "eq" -> Instr.Ieq | "ne" -> Instr.Ine | "slt" -> Instr.Islt
  | "sle" -> Instr.Isle | "sgt" -> Instr.Isgt | "sge" -> Instr.Isge
  | "ult" -> Instr.Iult | "ule" -> Instr.Iule | "ugt" -> Instr.Iugt
  | "uge" -> Instr.Iuge
  | other -> error lx "unknown icmp predicate %S" other

let fcmp_of_name lx = function
  | "oeq" -> Instr.Foeq | "one" -> Instr.Fone | "olt" -> Instr.Folt
  | "ole" -> Instr.Fole | "ogt" -> Instr.Fogt | "oge" -> Instr.Foge
  | "ord" -> Instr.Ford | "uno" -> Instr.Funo
  | other -> error lx "unknown fcmp predicate %S" other

let cast_of_name = function
  | "trunc" -> Some Instr.Trunc | "zext" -> Some Instr.Zext
  | "sext" -> Some Instr.Sext | "fptosi" -> Some Instr.Fptosi
  | "sitofp" -> Some Instr.Sitofp | "fptrunc" -> Some Instr.Fptrunc
  | "fpext" -> Some Instr.Fpext | "bitcast" -> Some Instr.Bitcast
  | "ptrtoint" -> Some Instr.Ptrtoint | "inttoptr" -> Some Instr.Inttoptr
  | _ -> None

let parse_label_ref lx =
  if not (accept_ident lx "label") then error lx "expected 'label'";
  match next lx with
  | Tlabelref l -> l
  | Treg r -> Printf.sprintf "r%d" r  (* labels that look like registers *)
  | got -> error lx "expected a label, found %s" (token_name got)

(* Parse one instruction body; [dst] is Some (reg) for definitions. *)
let parse_instr lx ~(dst : int option) : Instr.t =
  let mk ty op =
    match dst with
    | Some id -> { Instr.id; name = Printf.sprintf "r%d" id; ty; op }
    | None -> { Instr.id = -1; name = ""; ty; op }
  in
  let opcode = expect_ident lx in
  match opcode with
  | _ when ibinop_of_name opcode <> None ->
    let k = Option.get (ibinop_of_name opcode) in
    let a = parse_operand lx in
    expect lx Tcomma;
    let b = parse_short_operand lx (Instr.operand_ty a) in
    mk (Instr.operand_ty a) (Instr.Ibinop (k, a, b))
  | _ when fbinop_of_name opcode <> None ->
    let k = Option.get (fbinop_of_name opcode) in
    let a = parse_operand lx in
    expect lx Tcomma;
    let b = parse_short_operand lx (Instr.operand_ty a) in
    mk (Instr.operand_ty a) (Instr.Fbinop (k, a, b))
  | "icmp" ->
    let pred = icmp_of_name lx (expect_ident lx) in
    let a = parse_operand lx in
    expect lx Tcomma;
    let b = parse_short_operand lx (Instr.operand_ty a) in
    mk
      (Vtype.with_lanes (Vtype.lanes (Instr.operand_ty a)) Vtype.bool_ty)
      (Instr.Icmp (pred, a, b))
  | "fcmp" ->
    let pred = fcmp_of_name lx (expect_ident lx) in
    let a = parse_operand lx in
    expect lx Tcomma;
    let b = parse_short_operand lx (Instr.operand_ty a) in
    mk
      (Vtype.with_lanes (Vtype.lanes (Instr.operand_ty a)) Vtype.bool_ty)
      (Instr.Fcmp (pred, a, b))
  | "select" ->
    let c = parse_operand lx in
    expect lx Tcomma;
    let a = parse_operand lx in
    expect lx Tcomma;
    let b = parse_operand lx in
    mk (Instr.operand_ty a) (Instr.Select (c, a, b))
  | _ when cast_of_name opcode <> None ->
    let k = Option.get (cast_of_name opcode) in
    let a = parse_operand lx in
    if not (accept_ident lx "to") then error lx "expected 'to' in cast";
    let ty = parse_ty lx in
    mk ty (Instr.Cast (k, a))
  | "alloca" ->
    let ty = parse_ty lx in
    expect lx Tcomma;
    let n =
      match next lx with
      | Tint n -> Int64.to_int n
      | got -> error lx "expected alloca count, found %s" (token_name got)
    in
    mk Vtype.ptr (Instr.Alloca (ty, n))
  | "load" ->
    let ty = parse_ty lx in
    expect lx Tcomma;
    let p = parse_operand lx in
    mk ty (Instr.Load p)
  | "store" ->
    let v = parse_operand lx in
    expect lx Tcomma;
    let p = parse_operand lx in
    mk Vtype.Void (Instr.Store (v, p))
  | "getelementptr" ->
    let base = parse_operand lx in
    expect lx Tcomma;
    let ix = parse_operand lx in
    expect lx Tcomma;
    if not (accept_ident lx "elem_bytes") then
      error lx "expected 'elem_bytes'";
    let sz =
      match next lx with
      | Tint n -> Int64.to_int n
      | got -> error lx "expected element size, found %s" (token_name got)
    in
    mk Vtype.ptr (Instr.Gep (base, ix, sz))
  | "extractelement" ->
    let v = parse_operand lx in
    expect lx Tcomma;
    let ix = parse_operand lx in
    mk (Vtype.scalar_of (Instr.operand_ty v)) (Instr.Extractelement (v, ix))
  | "insertelement" ->
    let v = parse_operand lx in
    expect lx Tcomma;
    let e = parse_operand lx in
    expect lx Tcomma;
    let ix = parse_operand lx in
    mk (Instr.operand_ty v) (Instr.Insertelement (v, e, ix))
  | "shufflevector" ->
    let a = parse_operand lx in
    expect lx Tcomma;
    let b = parse_operand lx in
    expect lx Tcomma;
    expect lx Tlangle;
    let mask = ref [] in
    let rec go first =
      match peek lx with
      | Trangle -> ignore (next lx)
      | _ ->
        if not first then expect lx Tcomma;
        (match next lx with
        | Tint n -> mask := Int64.to_int n :: !mask
        | got -> error lx "expected mask lane, found %s" (token_name got));
        go false
    in
    go true;
    let mask = Array.of_list (List.rev !mask) in
    mk
      (Vtype.with_lanes (Array.length mask)
         (Vtype.scalar_of (Instr.operand_ty a)))
      (Instr.Shufflevector (a, b, mask))
  | "call" ->
    let ret = parse_ty lx in
    let callee =
      match next lx with
      | Tglobal g -> g
      | got -> error lx "expected @callee, found %s" (token_name got)
    in
    expect lx Tlparen;
    let args = ref [] in
    let rec go first =
      match peek lx with
      | Trparen -> ignore (next lx)
      | _ ->
        if not first then expect lx Tcomma;
        args := parse_operand lx :: !args;
        go false
    in
    go true;
    mk ret (Instr.Call (callee, List.rev !args))
  | "phi" ->
    let ty = parse_ty lx in
    let incoming = ref [] in
    let rec go first =
      match peek lx with
      | Tlbracket ->
        if not first then () ;
        ignore (next lx);
        let v = parse_short_operand lx ty in
        expect lx Tcomma;
        let l =
          match next lx with
          | Tlabelref l -> l
          | got -> error lx "expected %%label, found %s" (token_name got)
        in
        expect lx Trbracket;
        incoming := (l, v) :: !incoming;
        (match peek lx with
        | Tcomma ->
          ignore (next lx);
          go false
        | _ -> ())
      | got -> error lx "expected phi incoming, found %s" (token_name got)
    in
    go true;
    mk ty (Instr.Phi (List.rev !incoming))
  | "br" -> (
    match peek lx with
    | Tident "label" ->
      let l = parse_label_ref lx in
      mk Vtype.Void (Instr.Br l)
    | _ ->
      let c = parse_operand lx in
      expect lx Tcomma;
      let l1 = parse_label_ref lx in
      expect lx Tcomma;
      let l2 = parse_label_ref lx in
      mk Vtype.Void (Instr.Condbr (c, l1, l2)))
  | "ret" -> (
    match peek lx with
    | Tident "void" ->
      ignore (next lx);
      mk Vtype.Void (Instr.Ret None)
    | _ ->
      let v = parse_operand lx in
      mk Vtype.Void (Instr.Ret (Some v)))
  | "unreachable" -> mk Vtype.Void Instr.Unreachable
  | other -> error lx "unknown opcode %S" other

(* ---------------- functions and modules ---------------- *)

let parse_func lx : Func.t =
  (* "define" consumed by the caller *)
  let ret_ty = parse_ty lx in
  let name =
    match next lx with
    | Tglobal g -> g
    | got -> error lx "expected @name, found %s" (token_name got)
  in
  expect lx Tlparen;
  let params = ref [] in
  let rec go first =
    match peek lx with
    | Trparen -> ignore (next lx)
    | _ ->
      if not first then expect lx Tcomma;
      let ty = parse_ty lx in
      (match next lx with
      | Treg r -> params := (Printf.sprintf "p%d" r, ty, r) :: !params
      | got -> error lx "expected parameter register, found %s" (token_name got));
      go false
  in
  go true;
  let params = List.rev !params in
  expect lx Tlbrace;
  (* Blocks: LABEL ':' instr* *)
  let blocks = ref [] in
  let max_reg = ref (List.length params - 1) in
  let rec parse_blocks () =
    match peek lx with
    | Trbrace -> ignore (next lx)
    | Tident label ->
      ignore (next lx);
      expect lx Tcolon;
      let instrs = ref [] in
      let rec parse_body () =
        match peek lx with
        | Treg r ->
          ignore (next lx);
          expect lx Teq;
          let i = parse_instr lx ~dst:(Some r) in
          if r > !max_reg then max_reg := r;
          instrs := i :: !instrs;
          parse_body ()
        | Tident _ ->
          (* either an opcode or the next block label: look ahead *)
          let save_pos = lx.pos and save_line = lx.line and save_peek = lx.peeked in
          let id = expect_ident lx in
          (match peek lx with
          | Tcolon ->
            (* next block: rewind *)
            lx.pos <- save_pos;
            lx.line <- save_line;
            lx.peeked <- save_peek;
            ()
          | _ ->
            (* opcode: rewind and parse as instruction *)
            ignore id;
            lx.pos <- save_pos;
            lx.line <- save_line;
            lx.peeked <- save_peek;
            let i = parse_instr lx ~dst:None in
            instrs := i :: !instrs;
            parse_body ())
        | _ -> ()
      in
      parse_body ();
      blocks := Block.create ~instrs:(List.rev !instrs) label :: !blocks;
      parse_blocks ()
    | got -> error lx "expected block label or '}', found %s" (token_name got)
  in
  parse_blocks ();
  let f =
    Func.create ~name
      ~params:(List.map (fun (n, t, _) -> (n, t)) params)
      ~ret_ty
  in
  (* parameter registers are positional 0..n-1 in printed form *)
  List.iteri
    (fun i (_, _, r) ->
      if r <> i then
        error lx "parameter register %%r%d out of order (expected %%r%d)" r i)
    params;
  f.Func.blocks <- List.rev !blocks;
  f.Func.next_reg <- !max_reg + 1;
  f

let parse_module ?(name = "parsed") (src : string) : Vmodule.t =
  let lx = mk_lexer src in
  let m = Vmodule.create name in
  let rec go () =
    match peek lx with
    | Teof -> ()
    | Tident "declare" ->
      ignore (next lx);
      let ret = parse_ty lx in
      let ename =
        match next lx with
        | Tglobal g -> g
        | got -> error lx "expected @name, found %s" (token_name got)
      in
      expect lx Tlparen;
      let args = ref [] in
      let rec args_go first =
        match peek lx with
        | Trparen -> ignore (next lx)
        | _ ->
          if not first then expect lx Tcomma;
          args := parse_ty lx :: !args;
          args_go false
      in
      args_go true;
      Vmodule.declare_extern m ~name:ename ~arg_tys:(List.rev !args) ~ret;
      go ()
    | Tident "define" ->
      ignore (next lx);
      Vmodule.add_func m (parse_func lx);
      go ()
    | got -> error lx "expected 'define' or 'declare', found %s" (token_name got)
  in
  go ();
  m

(** Types of the VIR intermediate representation.

    VIR mirrors the slice of the LLVM type system that the VULFI paper
    manipulates: scalar integers ([i1], [i8], [i32], [i64]), IEEE floats
    ([f32], [f64]), opaque byte pointers, and fixed-length vectors of
    those scalars. *)

type scalar =
  | I1   (** 1-bit boolean / mask lane *)
  | I8   (** 8-bit integer *)
  | I32  (** 32-bit integer *)
  | I64  (** 64-bit integer *)
  | F32  (** single-precision float *)
  | F64  (** double-precision float *)
  | Ptr  (** byte pointer, 64-bit in the VM *)

type t =
  | Void                  (** no value; type of stores and terminators *)
  | Scalar of scalar
  | Vector of int * scalar
      (** [Vector (n, s)] is [<n x s>]; [n >= 2] in verified IR *)

let scalar s = Scalar s

let vector n s = Vector (n, s)

let bool_ty = Scalar I1

let i8 = Scalar I8

let i32 = Scalar I32

let i64 = Scalar I64

let f32 = Scalar F32

let f64 = Scalar F64

let ptr = Scalar Ptr

(* Number of lanes: 1 for scalars, n for vectors. *)
let lanes = function
  | Void -> 0
  | Scalar _ -> 1
  | Vector (n, _) -> n

let elem = function
  | Void -> invalid_arg "Vtype.elem: void"
  | Scalar s | Vector (_, s) -> s

let is_vector = function Vector _ -> true | Void | Scalar _ -> false

let is_scalar = function Scalar _ -> true | Void | Vector _ -> false

let is_void = function Void -> true | Scalar _ | Vector _ -> false

let is_int_scalar = function
  | I1 | I8 | I32 | I64 -> true
  | F32 | F64 | Ptr -> false

let is_float_scalar = function
  | F32 | F64 -> true
  | I1 | I8 | I32 | I64 | Ptr -> false

let is_int t = (not (is_void t)) && is_int_scalar (elem t)

let is_float t = (not (is_void t)) && is_float_scalar (elem t)

let is_ptr t = (not (is_void t)) && elem t = Ptr

(* Bit width of one scalar element. *)
let scalar_bits = function
  | I1 -> 1
  | I8 -> 8
  | I32 | F32 -> 32
  | I64 | F64 | Ptr -> 64

(* Storage footprint in bytes of one scalar element (i1 stored as a byte). *)
let scalar_bytes = function
  | I1 | I8 -> 1
  | I32 | F32 -> 4
  | I64 | F64 | Ptr -> 8

let size_bytes = function
  | Void -> 0
  | Scalar s -> scalar_bytes s
  | Vector (n, s) -> n * scalar_bytes s

(* Replace the lane count, turning a scalar into itself. *)
let with_lanes n t =
  match t with
  | Void -> invalid_arg "Vtype.with_lanes: void"
  | Scalar s | Vector (_, s) -> if n = 1 then Scalar s else Vector (n, s)

let scalar_of t =
  match t with
  | Void -> invalid_arg "Vtype.scalar_of: void"
  | Scalar s | Vector (_, s) -> Scalar s

let scalar_name = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "float"
  | F64 -> "double"
  | Ptr -> "ptr"

let to_string = function
  | Void -> "void"
  | Scalar s -> scalar_name s
  | Vector (n, s) -> Printf.sprintf "<%d x %s>" n (scalar_name s)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let equal (a : t) (b : t) = a = b

(** LLVM-flavoured textual printing of VIR. *)

let operand_to_string = function
  | Instr.Reg (r, ty) -> Printf.sprintf "%s %%r%d" (Vtype.to_string ty) r
  | Instr.Imm c ->
    Printf.sprintf "%s %s" (Vtype.to_string (Const.ty c)) (Const.to_string c)

let short_operand = function
  | Instr.Reg (r, _) -> Printf.sprintf "%%r%d" r
  | Instr.Imm c -> Const.to_string c

let instr_to_string (i : Instr.t) =
  let lhs =
    if Instr.defines i then Printf.sprintf "%%r%d = " i.Instr.id else ""
  in
  let body =
    match i.Instr.op with
    | Instr.Ibinop (k, a, b) ->
      Printf.sprintf "%s %s, %s" (Instr.ibinop_name k) (operand_to_string a)
        (short_operand b)
    | Instr.Fbinop (k, a, b) ->
      Printf.sprintf "%s %s, %s" (Instr.fbinop_name k) (operand_to_string a)
        (short_operand b)
    | Instr.Icmp (p, a, b) ->
      Printf.sprintf "icmp %s %s, %s" (Instr.icmp_name p)
        (operand_to_string a) (short_operand b)
    | Instr.Fcmp (p, a, b) ->
      Printf.sprintf "fcmp %s %s, %s" (Instr.fcmp_name p)
        (operand_to_string a) (short_operand b)
    | Instr.Select (c, a, b) ->
      Printf.sprintf "select %s, %s, %s" (operand_to_string c)
        (operand_to_string a) (operand_to_string b)
    | Instr.Cast (k, a) ->
      Printf.sprintf "%s %s to %s" (Instr.cast_name k) (operand_to_string a)
        (Vtype.to_string i.Instr.ty)
    | Instr.Alloca (t, n) ->
      Printf.sprintf "alloca %s, %d" (Vtype.to_string t) n
    | Instr.Load p ->
      Printf.sprintf "load %s, %s" (Vtype.to_string i.Instr.ty)
        (operand_to_string p)
    | Instr.Store (v, p) ->
      Printf.sprintf "store %s, %s" (operand_to_string v)
        (operand_to_string p)
    | Instr.Gep (b, ix, sz) ->
      Printf.sprintf "getelementptr %s, %s, elem_bytes %d"
        (operand_to_string b) (operand_to_string ix) sz
    | Instr.Extractelement (v, ix) ->
      Printf.sprintf "extractelement %s, %s" (operand_to_string v)
        (operand_to_string ix)
    | Instr.Insertelement (v, e, ix) ->
      Printf.sprintf "insertelement %s, %s, %s" (operand_to_string v)
        (operand_to_string e) (operand_to_string ix)
    | Instr.Shufflevector (a, b, m) ->
      let mask =
        String.concat ", " (Array.to_list (Array.map string_of_int m))
      in
      Printf.sprintf "shufflevector %s, %s, <%s>" (operand_to_string a)
        (operand_to_string b) mask
    | Instr.Call (callee, args) ->
      Printf.sprintf "call %s @%s(%s)"
        (Vtype.to_string i.Instr.ty)
        callee
        (String.concat ", " (List.map operand_to_string args))
    | Instr.Phi incoming ->
      let inc =
        List.map
          (fun (l, v) -> Printf.sprintf "[ %s, %%%s ]" (short_operand v) l)
          incoming
      in
      Printf.sprintf "phi %s %s"
        (Vtype.to_string i.Instr.ty)
        (String.concat ", " inc)
    | Instr.Br l -> Printf.sprintf "br label %%%s" l
    | Instr.Condbr (c, l1, l2) ->
      Printf.sprintf "br %s, label %%%s, label %%%s" (operand_to_string c) l1
        l2
    | Instr.Ret None -> "ret void"
    | Instr.Ret (Some v) -> Printf.sprintf "ret %s" (operand_to_string v)
    | Instr.Unreachable -> "unreachable"
  in
  lhs ^ body

let block_to_string (b : Block.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (b.Block.label ^ ":\n");
  List.iter
    (fun i ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (instr_to_string i);
      Buffer.add_char buf '\n')
    b.Block.instrs;
  Buffer.contents buf

let func_to_string (f : Func.t) =
  let buf = Buffer.create 1024 in
  let params =
    String.concat ", "
      (List.map
         (fun p ->
           Printf.sprintf "%s %%r%d" (Vtype.to_string p.Func.pty) p.Func.preg)
         f.Func.params)
  in
  Buffer.add_string buf
    (Printf.sprintf "define %s @%s(%s) {\n"
       (Vtype.to_string f.Func.ret_ty)
       f.Func.fname params);
  List.iter
    (fun b -> Buffer.add_string buf (block_to_string b))
    f.Func.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let module_to_string (m : Vmodule.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "; module %s\n" m.Vmodule.mname);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "declare %s @%s(%s)\n"
           (Vtype.to_string e.Vmodule.ret)
           e.Vmodule.ename
           (String.concat ", "
              (List.map Vtype.to_string e.Vmodule.arg_tys))))
    m.Vmodule.externs;
  List.iter
    (fun f ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (func_to_string f))
    m.Vmodule.funcs;
  Buffer.contents buf

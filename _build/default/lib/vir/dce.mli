(** Dead-code elimination: mark-and-sweep from side-effecting roots.
    Run after code generation so that — as with the paper's [-O3]
    toolchain — dead definitions never reach VULFI's fault-site
    census. *)

(** Is a call to this function free of observable effects (math and
    reduction intrinsics, masked loads)? *)
val is_pure_call : string -> bool

(** Remove dead definitions from one function; returns the count. *)
val run_func : Func.t -> int

(** Remove dead definitions module-wide; returns the total count. *)
val run_module : Vmodule.t -> int

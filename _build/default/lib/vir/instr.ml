(** VIR instructions.

    Instructions form an SSA register machine: every non-void instruction
    defines a fresh register identified by an integer id. Operands are
    either registers or constants. Registers carry their type inline so
    that passes can query operand types without an environment; the
    verifier checks consistency against the defining instruction. *)

type reg = int

type operand =
  | Reg of reg * Vtype.t
  | Imm of Const.t

let operand_ty = function
  | Reg (_, t) -> t
  | Imm c -> Const.ty c

type ibinop =
  | Add | Sub | Mul | Sdiv | Srem | Udiv | Urem
  | And | Or | Xor | Shl | Lshr | Ashr

type fbinop = Fadd | Fsub | Fmul | Fdiv | Frem

type icmp_pred = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge

type fcmp_pred = Foeq | Fone | Folt | Fole | Fogt | Foge | Ford | Funo

type cast_op =
  | Trunc | Zext | Sext
  | Fptosi | Sitofp | Fptrunc | Fpext
  | Bitcast | Ptrtoint | Inttoptr

type op =
  | Ibinop of ibinop * operand * operand
  | Fbinop of fbinop * operand * operand
  | Icmp of icmp_pred * operand * operand
  | Fcmp of fcmp_pred * operand * operand
  | Select of operand * operand * operand
      (** [Select (cond, a, b)]: cond is i1 (scalar select) or
          <n x i1> (lane-wise blend). *)
  | Cast of cast_op * operand
  | Alloca of Vtype.t * int
      (** [Alloca (elt, count)] reserves [count] elements of [elt] and
          yields their base pointer. *)
  | Load of operand
      (** Load this instruction's result type from a [ptr] operand. *)
  | Store of operand * operand  (** [Store (value, ptr)]; void. *)
  | Gep of operand * operand * int
      (** [Gep (base, index, elem_bytes)]: address arithmetic
          [base + index * elem_bytes]. Index may be any int scalar. *)
  | Extractelement of operand * operand  (** vector, i32 index *)
  | Insertelement of operand * operand * operand
      (** vector, scalar value, i32 index *)
  | Shufflevector of operand * operand * int array
      (** two vectors and a constant lane-selection mask, as in LLVM *)
  | Call of string * operand list
      (** Direct call to a module function, an extern, or an intrinsic
          (names starting with ["llvm."]). *)
  | Phi of (string * operand) list  (** [(incoming block label, value)] *)
  | Br of string
  | Condbr of operand * string * string  (** cond, then-label, else-label *)
  | Ret of operand option
  | Unreachable

type t = {
  id : reg;         (** SSA register defined; [-1] when [ty] is void *)
  name : string;    (** textual register name, for printing/debugging *)
  ty : Vtype.t;     (** result type; [Void] for stores and terminators *)
  op : op;
}

let defines i = not (Vtype.is_void i.ty)

let operands i =
  match i.op with
  | Ibinop (_, a, b) | Fbinop (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) ->
    [ a; b ]
  | Select (c, a, b) -> [ c; a; b ]
  | Cast (_, a) | Load a -> [ a ]
  | Store (v, p) -> [ v; p ]
  | Gep (b, i', _) -> [ b; i' ]
  | Extractelement (v, i') -> [ v; i' ]
  | Insertelement (v, e, i') -> [ v; e; i' ]
  | Shufflevector (a, b, _) -> [ a; b ]
  | Call (_, args) -> args
  | Phi incoming -> List.map snd incoming
  | Condbr (c, _, _) -> [ c ]
  | Ret (Some v) -> [ v ]
  | Alloca _ | Br _ | Ret None | Unreachable -> []

(* Registers read by this instruction. *)
let uses i =
  List.filter_map
    (function Reg (r, _) -> Some r | Imm _ -> None)
    (operands i)

let is_terminator i =
  match i.op with
  | Br _ | Condbr _ | Ret _ | Unreachable -> true
  | Ibinop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Cast _ | Alloca _
  | Load _ | Store _ | Gep _ | Extractelement _ | Insertelement _
  | Shufflevector _ | Call _ | Phi _ -> false

let is_phi i = match i.op with Phi _ -> true | _ -> false

(* Successor labels of a terminator (empty for non-terminators). *)
let successors i =
  match i.op with
  | Br l -> [ l ]
  | Condbr (_, l1, l2) -> [ l1; l2 ]
  | Ret _ | Unreachable -> []
  | _ -> []

(* Is this a control-flow instruction in the sense of the VULFI
   fault-site taxonomy (conditional transfer of control)? *)
let is_control_flow i =
  match i.op with
  | Condbr _ -> true
  | Br _ | Ret _ | Unreachable -> false
  | _ -> false

let is_gep i = match i.op with Gep _ -> true | _ -> false

(* A vector instruction per the paper's definition: at least one vector
   type operand, or a vector result. *)
let is_vector_instr i =
  Vtype.is_vector i.ty
  || List.exists (fun o -> Vtype.is_vector (operand_ty o)) (operands i)

(* Rewrite every operand with [f]. *)
let map_operands f i =
  let op =
    match i.op with
    | Ibinop (k, a, b) -> Ibinop (k, f a, f b)
    | Fbinop (k, a, b) -> Fbinop (k, f a, f b)
    | Icmp (k, a, b) -> Icmp (k, f a, f b)
    | Fcmp (k, a, b) -> Fcmp (k, f a, f b)
    | Select (c, a, b) -> Select (f c, f a, f b)
    | Cast (k, a) -> Cast (k, f a)
    | Alloca _ as o -> o
    | Load a -> Load (f a)
    | Store (v, p) -> Store (f v, f p)
    | Gep (b, ix, sz) -> Gep (f b, f ix, sz)
    | Extractelement (v, ix) -> Extractelement (f v, f ix)
    | Insertelement (v, e, ix) -> Insertelement (f v, f e, f ix)
    | Shufflevector (a, b, m) -> Shufflevector (f a, f b, m)
    | Call (callee, args) -> Call (callee, List.map f args)
    | Phi incoming -> Phi (List.map (fun (l, v) -> (l, f v)) incoming)
    | Br _ as o -> o
    | Condbr (c, l1, l2) -> Condbr (f c, l1, l2)
    | Ret (Some v) -> Ret (Some (f v))
    | Ret None as o -> o
    | Unreachable as o -> o
  in
  { i with op }

(* Substitute register [r] with operand [by] in all operand positions. *)
let replace_reg ~reg:r ~by i =
  map_operands (function Reg (r', _) when r' = r -> by | o -> o) i

let ibinop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | Udiv -> "udiv" | Urem -> "urem" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr"
  | Ashr -> "ashr"

let fbinop_name = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Frem -> "frem"

let icmp_name = function
  | Ieq -> "eq" | Ine -> "ne" | Islt -> "slt" | Isle -> "sle"
  | Isgt -> "sgt" | Isge -> "sge" | Iult -> "ult" | Iule -> "ule"
  | Iugt -> "ugt" | Iuge -> "uge"

let fcmp_name = function
  | Foeq -> "oeq" | Fone -> "one" | Folt -> "olt" | Fole -> "ole"
  | Fogt -> "ogt" | Foge -> "oge" | Ford -> "ord" | Funo -> "uno"

let cast_name = function
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext"
  | Fptosi -> "fptosi" | Sitofp -> "sitofp" | Fptrunc -> "fptrunc"
  | Fpext -> "fpext" | Bitcast -> "bitcast" | Ptrtoint -> "ptrtoint"
  | Inttoptr -> "inttoptr"

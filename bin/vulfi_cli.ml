(* vulfi — command-line front end to the fault injector.

   Subcommands:
     list       benchmarks in the registry
     compile    compile a mini-ISPC file and print the VIR
     sites      enumerate fault sites of a benchmark or file
     mix        Fig 10-style instruction composition
     inject     run one fault-injection experiment
     campaign   run a full campaign for one benchmark cell
     report     re-aggregate a --trace JSONL file into the tables
     detect     insert error detectors into a file and print the VIR *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let target_conv =
  let parse s =
    match Vir.Target.of_string s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown target %S (avx|sse)" s))
  in
  Arg.conv (parse, fun fmt t -> Format.pp_print_string fmt (Vir.Target.name t))

let category_conv =
  let parse s =
    match Analysis.Sites.category_of_string s with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown category %S (pure-data|control|address)" s))
  in
  Arg.conv
    ( parse,
      fun fmt c ->
        Format.pp_print_string fmt (Analysis.Sites.category_name c) )

let target_arg =
  Arg.(value & opt target_conv Vir.Target.Avx & info [ "t"; "target" ]
         ~docv:"ISA" ~doc:"Vector target: avx (8 x f32) or sse (4 x f32).")

let category_arg =
  Arg.(value & opt category_conv Analysis.Sites.Pure_data
       & info [ "c"; "category" ] ~docv:"CAT"
           ~doc:"Fault-site category: pure-data, control or address.")

let bench_arg =
  Arg.(required & opt (some string) None & info [ "b"; "bench" ]
         ~docv:"NAME" ~doc:"Benchmark name (see $(b,vulfi list)).")

(* sites/mix accept either a registered benchmark or a source file *)
let bench_or_file_arg =
  Arg.(value & opt (some string) None & info [ "b"; "bench" ]
         ~docv:"NAME" ~doc:"Benchmark name (see $(b,vulfi list)).")

let opt_file_arg =
  Arg.(value & opt (some file) None & info [ "f"; "file" ]
         ~docv:"FILE" ~doc:"mini-ISPC source file to analyse instead.")

let find_bench name =
  match Benchmarks.Registry.find name with
  | Some b -> b
  | None ->
    Printf.eprintf "unknown benchmark %S; try: %s\n" name
      (String.concat ", " Benchmarks.Registry.names);
    exit 2

(* ---------------- list ---------------- *)

let list_cmd =
  let run () =
    Printf.printf "%-18s %-6s %-8s %s\n" "Name" "Lang" "Suite" "Test input";
    List.iter
      (fun (b : Benchmarks.Harness.benchmark) ->
        Printf.printf "%-18s %-6s %-8s %s\n"
          b.Benchmarks.Harness.bench.Vulfi.Workload.w_name
          b.Benchmarks.Harness.language b.Benchmarks.Harness.suite
          b.Benchmarks.Harness.input_desc)
      Benchmarks.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the registered benchmarks")
    Term.(const run $ const ())

(* ---------------- compile ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"mini-ISPC source file.")

let compile_cmd =
  let run target file =
    match Minispc.Driver.compile target (read_file file) with
    | m -> print_string (Vir.Pp.module_to_string m)
    | exception Minispc.Driver.Error e ->
      Printf.eprintf "%s: %s\n" file (Minispc.Driver.error_to_string e);
      exit 1
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile a mini-ISPC file and print the generated VIR")
    Term.(const run $ target_arg $ file_arg)

(* ---------------- sites ---------------- *)

let module_of_bench_or_file target name file =
  match (name, file) with
  | Some n, None ->
    (find_bench n).Benchmarks.Harness.bench.Vulfi.Workload.w_build target
  | None, Some f -> (
    match Minispc.Driver.compile target (read_file f) with
    | m -> m
    | exception Minispc.Driver.Error e ->
      Printf.eprintf "%s: %s\n" f (Minispc.Driver.error_to_string e);
      exit 1)
  | _ ->
    Printf.eprintf "pass exactly one of --bench or --file\n";
    exit 2

let sites_cmd =
  let run target name file verbose =
    let m = module_of_bench_or_file target name file in
    let targets = Analysis.Sites.targets_of_module m in
    List.iter
      (fun cat ->
        let sel = Analysis.Sites.select targets cat in
        Printf.printf "%-10s %5d target instructions, %6d scalar fault sites\n"
          (Analysis.Sites.category_name cat)
          (List.length sel)
          (Analysis.Sites.total_sites sel);
        if verbose then
          List.iter
            (fun (t : Analysis.Sites.target) ->
              Printf.printf "    [%s/%s] lanes=%d %s\n"
                t.Analysis.Sites.t_func t.Analysis.Sites.t_block
                t.Analysis.Sites.t_lanes
                (Vir.Pp.instr_to_string t.Analysis.Sites.t_instr))
            sel)
      Analysis.Sites.all_categories
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ]
           ~doc:"Print every fault target instruction.")
  in
  Cmd.v
    (Cmd.info "sites"
       ~doc:"Enumerate and classify the fault sites of a benchmark or file")
    Term.(const run $ target_arg $ bench_or_file_arg $ opt_file_arg
          $ verbose)

(* ---------------- mix ---------------- *)

let mix_cmd =
  let run target name file =
    let m = module_of_bench_or_file target name file in
    let census = Analysis.Instmix.census m in
    List.iter
      (fun (cat, mix) ->
        Printf.printf "%-10s %5.1f%% vector (%d vector / %d total)\n"
          (Analysis.Sites.category_name cat)
          (100.0 *. Analysis.Instmix.vector_fraction mix)
          mix.Analysis.Instmix.vector_count
          (Analysis.Instmix.total mix))
      census;
    (* dynamic mix on input 0 when a registered benchmark was given *)
    match name with
    | None -> ()
    | Some n ->
      let w = (find_bench n).Benchmarks.Harness.bench in
      let m2 = w.Vulfi.Workload.w_build target in
      let st = Interp.Machine.create (Interp.Compile.compile_module m2) in
      let args, _ = w.Vulfi.Workload.w_setup ~input:0 st in
      ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args);
      Printf.printf "%-10s %5.1f%% vector (%d of %d executed)\n" "dynamic"
        (100.0
        *. float_of_int (Interp.Machine.dyn_vector_count st)
        /. float_of_int (max 1 (Interp.Machine.dyn_count st)))
        (Interp.Machine.dyn_vector_count st)
        (Interp.Machine.dyn_count st)
  in
  Cmd.v
    (Cmd.info "mix"
       ~doc:"Scalar/vector instruction composition per category (Fig 10)")
    Term.(const run $ target_arg $ bench_or_file_arg $ opt_file_arg)

(* ---------------- inject ---------------- *)

let inject_cmd =
  let run target category name input site seed =
    let b = find_bench name in
    let w = b.Benchmarks.Harness.bench in
    let p = Vulfi.Experiment.prepare w target category in
    let g = Vulfi.Experiment.golden_run p ~input in
    Printf.printf "golden run: %d dynamic fault sites, %d instructions\n"
      g.Vulfi.Experiment.g_dyn_sites g.Vulfi.Experiment.g_dyn_instrs;
    let site =
      match site with
      | Some s -> s
      | None -> 1 + Random.int (max 1 g.Vulfi.Experiment.g_dyn_sites)
    in
    let r = Vulfi.Experiment.faulty_run p ~golden:g ~dynamic_site:site ~seed in
    (match r.Vulfi.Experiment.r_injection with
    | Some inj ->
      let t = p.Vulfi.Experiment.p_instr.Vulfi.Instrument.site_table.(inj.Vulfi.Runtime.inj_static_site) in
      Printf.printf
        "injected: dynamic site %d = static site %d (lane %d of %s), bit %d\n"
        site inj.Vulfi.Runtime.inj_static_site
        t.Vulfi.Instrument.si_lane
        (Vir.Pp.instr_to_string
           t.Vulfi.Instrument.si_target.Analysis.Sites.t_instr)
        inj.Vulfi.Runtime.inj_bit;
      Printf.printf "value: %s -> %s\n"
        (Interp.Vvalue.to_string inj.Vulfi.Runtime.inj_before)
        (Interp.Vvalue.to_string inj.Vulfi.Runtime.inj_after)
    | None -> Printf.printf "no injection occurred (site beyond trace)\n");
    Printf.printf "outcome: %s\n"
      (Vulfi.Outcome.to_string r.Vulfi.Experiment.r_outcome)
  in
  let input_arg =
    Arg.(value & opt int 0 & info [ "i"; "input" ] ~docv:"N"
           ~doc:"Input index from the benchmark's predefined set.")
  in
  let site_arg =
    Arg.(value & opt (some int) None & info [ "s"; "site" ] ~docv:"N"
           ~doc:"1-based dynamic fault site (default: random).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for the bit-position choice.")
  in
  Cmd.v
    (Cmd.info "inject" ~doc:"Run a single fault-injection experiment")
    Term.(const run $ target_arg $ category_arg $ bench_arg $ input_arg
          $ site_arg $ seed_arg)

(* ---------------- campaign ---------------- *)

let fault_kind_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "single" | "single-bit" | "bitflip" -> Ok Vulfi.Runtime.Single_bit_flip
    | "random" | "random-value" -> Ok Vulfi.Runtime.Random_value
    | "zero" | "stuck-at-zero" -> Ok Vulfi.Runtime.Stuck_at_zero
    | other -> (
      (* "Nbit" multi-bit flips, e.g. "2bit" *)
      try
        Scanf.sscanf other "%dbit%!" (fun k ->
            Ok (Vulfi.Runtime.Multi_bit_flip k))
      with _ ->
        Error
          (`Msg
            (Printf.sprintf "unknown fault kind %S (single|Nbit|random|zero)"
               other)))
  in
  Arg.conv
    ( parse,
      fun fmt k ->
        Format.pp_print_string fmt (Vulfi.Runtime.fault_kind_name k) )

(* Print one campaign cell the way `campaign` does; `report` replays the
   same lines from a trace, so the two outputs diff clean. *)
let print_cell ~detectors (r : Vulfi.Campaign.result) =
  print_endline (Vulfi.Report.fig11_row r);
  if detectors then print_endline (Vulfi.Report.fig12_row r);
  Printf.printf
    "static sites: %d; avg dynamic sites: %.0f; avg dynamic instrs: %.0f\n"
    r.Vulfi.Campaign.c_static_sites r.Vulfi.Campaign.c_avg_dynamic_sites
    r.Vulfi.Campaign.c_avg_dynamic_instrs

let campaign_cmd =
  let run target category name experiments campaigns with_detectors
      fault_kind jobs trace trace_timings legacy ff prune no_fusion
      no_schedule =
    if no_fusion then Vulfi.Experiment.fusion_enabled := false;
    if no_schedule then Vulfi.Experiment.schedule_enabled := false;
    (* executor flags are mutually exclusive, pairwise *)
    List.iter
      (fun (a, b, msg) ->
        if a && b then begin
          prerr_endline ("vulfi campaign: " ^ msg ^ " are mutually exclusive");
          exit 2
        end)
      [
        (legacy, ff, "--legacy-executor and --ff-executor");
        (legacy, prune, "--legacy-executor and --prune-executor");
        (ff, prune, "--ff-executor and --prune-executor");
      ];
    let b = find_bench name in
    let cfg =
      {
        Vulfi.Campaign.experiments_per_campaign = experiments;
        min_campaigns = min 3 campaigns;
        max_campaigns = campaigns;
        margin_target = 0.03;
        seed = 0xC0FFEE;
      }
    in
    (* The seed schedule makes -j N bit-identical to a sequential run. *)
    let requested =
      if legacy then Vulfi.Campaign.Legacy
      else if ff then Vulfi.Campaign.Fast_forward
      else if prune then Vulfi.Campaign.Converge_pruned
      else Vulfi.Campaign.Checkpointed
    in
    let effective =
      Vulfi.Campaign.effective_executor ~detectors:with_detectors requested
    in
    (* the header records the executor only when detectors degraded it,
       so non-degraded traces stay byte-identical across executors *)
    let header_executor =
      if effective <> requested then
        Some (Vulfi.Campaign.executor_name effective)
      else None
    in
    let sink =
      Option.map
        (fun f ->
          Vulfi.Trace.to_file ~timings:trace_timings ?executor:header_executor
            f)
        trace
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Vulfi.Trace.close sink)
      (fun () ->
        let executor = requested in
        let campaign_run ?transform ?hooks cfg w target category =
          if jobs > 1 then
            Vulfi.Campaign.run_parallel ?transform ?hooks ~fault_kind ?sink
              ~executor ~jobs cfg w target category
          else
            Vulfi.Campaign.run ?transform ?hooks ~fault_kind ?sink
              ~executor cfg w target category
        in
        let r =
          if with_detectors then
            campaign_run
              ~transform:
                (Detectors.Overhead.transform
                   Detectors.Overhead.paper_detectors)
              ~hooks:Detectors.Runtime.hooks cfg
              b.Benchmarks.Harness.bench target category
          else campaign_run cfg b.Benchmarks.Harness.bench target category
        in
        print_cell ~detectors:with_detectors r)
  in
  let experiments_arg =
    Arg.(value & opt int 100 & info [ "n"; "experiments" ] ~docv:"N"
           ~doc:"Experiments per campaign (paper: 100).")
  in
  let campaigns_arg =
    Arg.(value & opt int 20 & info [ "campaigns" ] ~docv:"N"
           ~doc:"Maximum campaigns (paper: 20).")
  in
  let detectors_arg =
    Arg.(value & flag & info [ "detectors" ]
           ~doc:"Insert the foreach loop-invariant detectors first.")
  in
  let fault_kind_arg =
    Arg.(value & opt fault_kind_conv Vulfi.Runtime.Single_bit_flip
         & info [ "fault-kind" ] ~docv:"KIND"
             ~doc:"Fault model: single (paper), Nbit, random, zero.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Fan experiments out across $(docv) domains \
                 (deterministic: results are identical to -j 1).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write one JSONL telemetry record per experiment (plus a \
                 per-cell summary) to $(docv); replay with \
                 $(b,vulfi report).")
  in
  let trace_timings_arg =
    Arg.(value & flag & info [ "trace-timings" ]
           ~doc:"Record per-experiment wall times in the trace (makes the \
                 trace machine-dependent, so sequential and -j N traces \
                 no longer compare byte-for-byte).")
  in
  let legacy_arg =
    Arg.(value & flag & info [ "legacy-executor" ]
           ~doc:"Run the paper's literal two-runs-per-experiment \
                 protocol (a fresh profiling run and machine before \
                 every faulty run) instead of the checkpointed executor \
                 (memoized golden runs + post-setup memory snapshots). \
                 Bit-identical output; exists for cross-checking and \
                 timing comparisons.")
  in
  let ff_arg =
    Arg.(value & flag & info [ "ff-executor" ]
           ~doc:"Run the fast-forward executor: full machine-state \
                 checkpoints (memory, register frames, call stack, \
                 counters) laid at the scheduled injection sites during \
                 one golden replay per input; each faulty run resumes \
                 from the nearest checkpoint at or before its site and \
                 executes only the suffix. Bit-identical output; with \
                 --detectors it degrades to the checkpointed executor \
                 (detector state lives outside the machine), with a \
                 stderr notice and the effective executor recorded in \
                 the trace header.")
  in
  let prune_arg =
    Arg.(value & flag & info [ "prune-executor" ]
           ~doc:"Run the converge-pruned executor: fast-forward resume \
                 plus convergence checks at every later checkpoint site \
                 (counters, call stack, live registers, dirty-span \
                 memory); a faulty run that re-converges with the \
                 golden run terminates immediately and splices the \
                 golden outcome. Bit-identical output \
                 (VULFI_NO_PRUNE=1 degrades it to plain fast-forward \
                 for cross-checks); with --detectors it degrades to \
                 the checkpointed executor like --ff-executor.")
  in
  let no_fusion_arg =
    Arg.(value & flag & info [ "no-fusion" ]
           ~doc:"Disable the peephole fusion annotation pass before \
                 threading (equivalent to VULFI_NO_FUSION=1). Fusion \
                 only changes how the hot path is lowered, never what \
                 it computes, so results and traces are byte-identical \
                 either way; the flag exists for cross-checking and \
                 timing comparisons.")
  in
  let no_schedule_arg =
    Arg.(value & flag & info [ "no-schedule" ]
           ~doc:"Disable the list-scheduling pass before fusion \
                 (equivalent to VULFI_NO_SCHEDULE=1). The scheduler \
                 only permutes pure instructions between fences \
                 (injection calls, memory ops, trap points), so results \
                 and traces are byte-identical either way; the flag \
                 exists for cross-checking and timing comparisons.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run a statistically sized fault-injection campaign")
    Term.(const run $ target_arg $ category_arg $ bench_arg
          $ experiments_arg $ campaigns_arg $ detectors_arg
          $ fault_kind_arg $ jobs_arg $ trace_arg $ trace_timings_arg
          $ legacy_arg $ ff_arg $ prune_arg $ no_fusion_arg
          $ no_schedule_arg)

(* ---------------- report ---------------- *)

let report_cmd =
  let run file =
    let records =
      let ic = open_in file in
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go acc (lineno + 1)
        | line -> (
          match Vulfi.Json.of_string line with
          | j -> go (j :: acc) (lineno + 1)
          | exception Vulfi.Json.Parse_error msg ->
            close_in ic;
            Printf.eprintf "%s:%d: %s\n" file lineno msg;
            exit 1)
      in
      let r = go [] 1 in
      close_in ic;
      r
    in
    match Vulfi.Report.replay_of_trace records with
    | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
    | Ok replays ->
      (match Vulfi.Report.header_executor records with
      | Some e ->
        Printf.printf "effective executor: %s (degraded by detectors)\n" e
      | None -> ());
      let ok = ref true in
      List.iter
        (fun (rp : Vulfi.Report.replay) ->
          let r = rp.Vulfi.Report.rp_result in
          print_cell ~detectors:rp.Vulfi.Report.rp_detectors r;
          match rp.Vulfi.Report.rp_summary with
          | `Match -> ()
          | `Missing ->
            Printf.eprintf "%s: cell %s has no summary record\n" file
              r.Vulfi.Campaign.c_workload;
            ok := false
          | `Mismatch fields ->
            Printf.eprintf
              "%s: cell %s summary disagrees with the replay on: %s\n" file
              r.Vulfi.Campaign.c_workload fields;
            ok := false)
        replays;
      if not !ok then exit 1
  in
  let trace_file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
           ~doc:"JSONL trace written by $(b,--trace).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Re-aggregate a JSONL telemetry trace into the Fig 11/12 tables \
          (byte-identical to the live campaign output)")
    Term.(const run $ trace_file_arg)

(* ---------------- detect ---------------- *)

let detect_cmd =
  let run target file with_uniform =
    match Minispc.Driver.compile target (read_file file) with
    | m ->
      let n = Detectors.Foreach_invariants.run m in
      let n2 = if with_uniform then Detectors.Uniform_xor.run m else 0 in
      Printf.eprintf "; inserted %d foreach detector(s), %d uniform check(s)\n"
        n n2;
      print_string (Vir.Pp.module_to_string m)
    | exception Minispc.Driver.Error e ->
      Printf.eprintf "%s: %s\n" file (Minispc.Driver.error_to_string e);
      exit 1
  in
  let uniform_arg =
    Arg.(value & flag & info [ "uniform" ]
           ~doc:"Also insert the uniform-broadcast XOR detectors.")
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Insert compiler-derived error detectors and print the VIR")
    Term.(const run $ target_arg $ file_arg $ uniform_arg)

(* ---------------- opt ---------------- *)

(* Load a module from either mini-ISPC source (.ispc) or textual VIR
   (.vir / anything starting with "define"/"declare"/";"). *)
let load_module target file =
  let src = read_file file in
  let looks_like_vir =
    let trimmed = String.trim src in
    List.exists
      (fun p ->
        String.length trimmed >= String.length p
        && String.sub trimmed 0 (String.length p) = p)
      [ "define"; "declare"; ";" ]
  in
  if looks_like_vir || Filename.check_suffix file ".vir" then
    try Vir.Parse.parse_module src
    with Vir.Parse.Parse_error (msg, line) ->
      Printf.eprintf "%s:%d: %s\n" file line msg;
      exit 1
  else
    try Minispc.Driver.compile target src
    with Minispc.Driver.Error e ->
      Printf.eprintf "%s: %s\n" file (Minispc.Driver.error_to_string e);
      exit 1

let opt_cmd =
  let run target file do_pipeline do_constfold do_dce do_verify =
    let m = load_module target file in
    if do_pipeline then begin
      List.iter
        (fun (name, n) -> Printf.eprintf "; %s: %d\n" name n)
        (Passes.Pipeline.run ~passes:Passes.Pipeline.optimizing m);
      List.iter
        (fun (rule, n) -> Printf.eprintf ";   fuse %s: %d\n" rule n)
        (Passes.Fuse.rule_stats m);
      List.iter
        (fun (len, n) -> Printf.eprintf ";   chain length %d: %d\n" len n)
        (Passes.Fuse.length_hist m)
    end;
    if do_constfold then
      Printf.eprintf "; constfold: %d folds\n" (Passes.Constfold.run_module m);
    if do_dce then
      Printf.eprintf "; dce: %d removed\n" (Vir.Dce.run_module m);
    if do_verify then begin
      match Vir.Verify.verify_module m with
      | [] -> Printf.eprintf "; verify: ok\n"
      | errs ->
        List.iter
          (fun e -> Printf.eprintf "%s\n" (Vir.Verify.error_to_string e))
          errs;
        exit 1
    end;
    print_string (Vir.Pp.module_to_string m)
  in
  let pipeline_arg =
    Arg.(value & flag & info [ "O"; "pipeline" ]
           ~doc:"Run the optimizing pass pipeline (constfold, the list \
                 scheduler, then the fusion annotator) with per-pass \
                 statistics (scheduler moves, per-rule chain counts, \
                 chain-length histogram) and post-pass verification.")
  in
  let constfold_arg =
    Arg.(value & flag & info [ "constfold" ] ~doc:"Run constant folding.")
  in
  let dce_arg =
    Arg.(value & flag & info [ "dce" ] ~doc:"Run dead-code elimination.")
  in
  let verify_arg =
    Arg.(value & flag & info [ "verify" ] ~doc:"Verify and report.")
  in
  Cmd.v
    (Cmd.info "opt"
       ~doc:
         "Load mini-ISPC source or textual VIR, run passes, print the VIR \
          (an opt-style pipeline)")
    Term.(const run $ target_arg $ file_arg $ pipeline_arg $ constfold_arg
          $ dce_arg $ verify_arg)

let () =
  let doc = "vector-oriented LLVM-style fault injector (VULFI reproduction)" in
  let info = Cmd.info "vulfi" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; compile_cmd; sites_cmd; mix_cmd; inject_cmd;
            campaign_cmd; report_cmd; detect_cmd; opt_cmd ]))

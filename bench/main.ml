(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (§IV).

     table1   Table I  — benchmark inventory + avg dynamic instructions
     fig10    Fig 10   — scalar/vector mix per fault-site category
     fig11    Fig 11   — SDC/Benign/Crash rates per benchmark/ISA/category
     fig12    Fig 12   — detector SDC-detection rates + overhead (micro)
     ablation          — design-choice ablations from DESIGN.md
     speedup           — sequential vs parallel campaign wall-clock
     timing            — Bechamel wall-clock benches

     campaign          legacy vs checkpointed vs fast-forward throughput

   Default (no argument): everything at "quick" scale. Flags:
     -j N                     run campaigns on N domains (default 1)
     --trace FILE             JSONL telemetry for every campaign run
     --legacy-executor        paper-literal two-runs-per-experiment protocol
     --ff-executor            fast-forward executor (checkpoint + resume)
     --prune-executor         converge-pruned executor (fast-forward + early
                              termination at golden-state re-convergence);
                              conflicts with --legacy-executor
   Environment:
     VULFI_SCALE=paper        paper-scale campaigns (hours)
     VULFI_EXPERIMENTS=N      experiments per campaign override
     VULFI_CAMPAIGNS=N        max campaigns override

   fig11 and fig12 also export their cells to RESULTS_fig11.json /
   RESULTS_fig12.json for machine consumption. *)

let scale_is_paper =
  match Sys.getenv_opt "VULFI_SCALE" with
  | Some s -> String.lowercase_ascii s = "paper"
  | None -> false

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default)
  | None -> default

let campaign_config () =
  let base =
    if scale_is_paper then Vulfi.Campaign.paper_config
    else Vulfi.Campaign.quick_config
  in
  let experiments =
    getenv_int "VULFI_EXPERIMENTS" base.Vulfi.Campaign.experiments_per_campaign
  in
  let campaigns = getenv_int "VULFI_CAMPAIGNS" base.Vulfi.Campaign.max_campaigns in
  {
    base with
    Vulfi.Campaign.experiments_per_campaign = experiments;
    max_campaigns = campaigns;
    min_campaigns = min base.Vulfi.Campaign.min_campaigns campaigns;
  }

(* In quick mode restrict each workload to its smallest input so the
   default bench run completes in minutes. *)
let scale_workload (w : Vulfi.Workload.t) =
  if scale_is_paper then w else { w with Vulfi.Workload.w_inputs = 1 }

(* Worker-domain count (-j N); the seed schedule makes the parallel
   results bit-identical to the sequential ones. *)
let jobs = ref 1

(* Executor selection: --legacy-executor is the paper's literal
   two-runs-per-experiment protocol (fresh profiling run + machine
   before every faulty run); --ff-executor resumes each faulty run from
   a full machine-state checkpoint at its injection site;
   --prune-executor additionally terminates a faulty run at the first
   later checkpoint site whose machine state matches the golden run's;
   the default is the checkpointed executor. Output is bit-identical
   across all four; the flags exist for cross-checks and the `campaign`
   throughput comparison. *)
let executor = ref Vulfi.Campaign.Checkpointed

(* Shared telemetry sink (--trace FILE), threaded through every
   campaign the harness runs. *)
let the_sink : Vulfi.Trace.sink option ref = ref None

let campaign_run ?transform ?hooks cfg w target category =
  if !jobs > 1 then
    Vulfi.Campaign.run_parallel ?transform ?hooks ?sink:!the_sink
      ~executor:!executor ~jobs:!jobs cfg w target category
  else
    Vulfi.Campaign.run ?transform ?hooks ?sink:!the_sink
      ~executor:!executor cfg w target category

(* Machine-readable export of a figure's campaign cells. *)
let write_results_json path ~figure (cfg : Vulfi.Campaign.config)
    (cells : (bool * Vulfi.Campaign.result) list) =
  let json =
    Vulfi.Json.Obj
      [
        ("schema", Vulfi.Json.String "vulfi-results-v1");
        ("figure", Vulfi.Json.String figure);
        ( "config",
          Vulfi.Json.Obj
            [
              ( "experiments_per_campaign",
                Vulfi.Json.Int cfg.Vulfi.Campaign.experiments_per_campaign );
              ("min_campaigns", Vulfi.Json.Int cfg.Vulfi.Campaign.min_campaigns);
              ("max_campaigns", Vulfi.Json.Int cfg.Vulfi.Campaign.max_campaigns);
              ( "margin_target",
                Vulfi.Json.Float cfg.Vulfi.Campaign.margin_target );
              ("seed", Vulfi.Json.Int cfg.Vulfi.Campaign.seed);
              ( "scale",
                Vulfi.Json.String (if scale_is_paper then "paper" else "quick")
              );
              ("jobs", Vulfi.Json.Int !jobs);
            ] );
        ( "cells",
          Vulfi.Json.List
            (List.map
               (fun (detectors, r) ->
                 Vulfi.Campaign.result_json ~detectors r)
               cells) );
      ]
  in
  let oc = open_out path in
  output_string oc (Vulfi.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let header title =
  let line = String.make 72 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)

let run_uninstrumented (b : Benchmarks.Harness.benchmark) target input =
  let w = b.Benchmarks.Harness.bench in
  let m = w.Vulfi.Workload.w_build target in
  let st = Interp.Machine.create (Interp.Compile.compile_module m) in
  let args, _ = w.Vulfi.Workload.w_setup ~input st in
  ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args);
  Interp.Machine.dyn_count st

let table1 () =
  header
    "Table I: benchmarks and average dynamic instruction count (VM \
     instructions; paper ran native x86, so magnitudes differ — the \
     per-benchmark ordering is the comparable shape)";
  Printf.printf "%-18s %-6s %-34s %-4s %14s\n" "Benchmark" "Lang"
    "Test input" "ISA" "Avg dyn instrs";
  List.iter
    (fun (b : Benchmarks.Harness.benchmark) ->
      let w = scale_workload b.Benchmarks.Harness.bench in
      List.iter
        (fun target ->
          let total = ref 0 in
          for input = 0 to w.Vulfi.Workload.w_inputs - 1 do
            total := !total + run_uninstrumented b target input
          done;
          let avg = !total / w.Vulfi.Workload.w_inputs in
          Printf.printf "%-18s %-6s %-34s %-4s %14d\n"
            w.Vulfi.Workload.w_name b.Benchmarks.Harness.language
            b.Benchmarks.Harness.input_desc (Vir.Target.name target) avg)
        Vir.Target.all)
    Benchmarks.Registry.paper_benchmarks

(* ------------------------------------------------------------------ *)
(* Fig 10                                                              *)

let fig10 () =
  header
    "Fig 10: composition of vector and scalar instructions per fault-site \
     category (fraction of fault-target instructions that are vector)";
  Printf.printf "%-18s %-4s %12s %12s %12s\n" "Benchmark" "ISA" "pure-data"
    "control" "address";
  let grand = Hashtbl.create 3 in
  List.iter
    (fun (b : Benchmarks.Harness.benchmark) ->
      let w = b.Benchmarks.Harness.bench in
      List.iter
        (fun target ->
          let m = w.Vulfi.Workload.w_build target in
          let census = Analysis.Instmix.census m in
          let cell cat =
            let mix = List.assoc cat census in
            let old =
              try Hashtbl.find grand cat
              with Not_found -> Analysis.Instmix.empty
            in
            Hashtbl.replace grand cat
              {
                Analysis.Instmix.scalar_count =
                  old.Analysis.Instmix.scalar_count
                  + mix.Analysis.Instmix.scalar_count;
                vector_count =
                  old.Analysis.Instmix.vector_count
                  + mix.Analysis.Instmix.vector_count;
              };
            Printf.sprintf "%5.1f%% vec"
              (100.0 *. Analysis.Instmix.vector_fraction mix)
          in
          Printf.printf "%-18s %-4s %12s %12s %12s\n"
            w.Vulfi.Workload.w_name (Vir.Target.name target)
            (cell Analysis.Sites.Pure_data)
            (cell Analysis.Sites.Control)
            (cell Analysis.Sites.Address))
        Vir.Target.all)
    Benchmarks.Registry.paper_benchmarks;
  (* dynamic counterpart: executed vector-instruction fraction *)
  Printf.printf "\nDynamic vector-instruction fraction (executed, input 0, AVX):\n";
  List.iter
    (fun (b : Benchmarks.Harness.benchmark) ->
      let w = b.Benchmarks.Harness.bench in
      let m = w.Vulfi.Workload.w_build Vir.Target.Avx in
      let st = Interp.Machine.create (Interp.Compile.compile_module m) in
      let args, _ = w.Vulfi.Workload.w_setup ~input:0 st in
      ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args);
      Printf.printf "  %-18s %5.1f%% (%d of %d)\n" w.Vulfi.Workload.w_name
        (100.0
        *. float_of_int (Interp.Machine.dyn_vector_count st)
        /. float_of_int (max 1 (Interp.Machine.dyn_count st)))
        (Interp.Machine.dyn_vector_count st)
        (Interp.Machine.dyn_count st))
    Benchmarks.Registry.paper_benchmarks;
  Printf.printf
    "\nAverages across benchmarks (paper reports 67%% pure-data and 43%% \
     control vector instructions):\n";
  List.iter
    (fun cat ->
      let mix =
        try Hashtbl.find grand cat
        with Not_found -> Analysis.Instmix.empty
      in
      Printf.printf "  %-10s %5.1f%% vector\n"
        (Analysis.Sites.category_name cat)
        (100.0 *. Analysis.Instmix.vector_fraction mix))
    Analysis.Sites.all_categories

(* ------------------------------------------------------------------ *)
(* Fig 11                                                              *)

let fig11 () =
  let cfg = campaign_config () in
  header
    (Printf.sprintf
       "Fig 11: fault-injection outcomes (%d experiments/campaign, <=%d \
        campaigns/cell%s)"
       cfg.Vulfi.Campaign.experiments_per_campaign
       cfg.Vulfi.Campaign.max_campaigns
       (if scale_is_paper then ", paper scale" else ", quick scale"));
  let cells =
    List.concat_map
      (fun (b : Benchmarks.Harness.benchmark) ->
        let w = scale_workload b.Benchmarks.Harness.bench in
        List.concat_map
          (fun target ->
            List.map (fun cat -> (w, target, cat))
              Analysis.Sites.all_categories)
          Vir.Target.all)
      Benchmarks.Registry.paper_benchmarks
  in
  (* Live progress on stderr; the table itself still goes to stdout one
     row per finished cell, so sequential and -j N outputs diff clean. *)
  let total = List.length cells in
  let t0 = Unix.gettimeofday () in
  let done_cells = ref 0 in
  let done_exps = ref 0 in
  let progress (r : Vulfi.Campaign.result) =
    incr done_cells;
    done_exps :=
      !done_exps + r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_experiments;
    let dt = Unix.gettimeofday () -. t0 in
    (* Report.progress_line clamps the degenerate ticks (zero cells
       done, zero elapsed) instead of printing inf/nan. *)
    Printf.eprintf "%s\n%!"
      (Vulfi.Report.progress_line ~label:"fig11" ~done_cells:!done_cells
         ~total_cells:total ~done_exps:!done_exps ~elapsed_s:dt)
  in
  let run_cell pool (w, t, c) =
    let r =
      match pool with
      | Some pool ->
        (* cell-level parallel driver: one shared domain pool *)
        Vulfi.Campaign.run_parallel ?sink:!the_sink ~executor:!executor
          ~pool ~jobs:!jobs cfg w t c
      | None ->
        Vulfi.Campaign.run ?sink:!the_sink ~executor:!executor cfg w t c
    in
    print_endline (Vulfi.Report.fig11_row r);
    progress r;
    r
  in
  let results =
    if !jobs > 1 then
      Vulfi.Pool.with_pool ~jobs:!jobs (fun pool ->
          List.map (run_cell (Some pool)) cells)
    else List.map (run_cell None) cells
  in
  write_results_json "RESULTS_fig11.json" ~figure:"fig11" cfg
    (List.map (fun r -> (false, r)) results)

(* ------------------------------------------------------------------ *)
(* Fig 12                                                              *)

let fig12 () =
  let cfg = campaign_config () in
  header
    "Fig 12: detector efficacy + overhead on the micro-benchmarks \
     (foreach loop-invariant detectors, checked on loop exit)";
  let results = ref [] in
  List.iter
    (fun (b : Benchmarks.Harness.benchmark) ->
      let w = scale_workload b.Benchmarks.Harness.bench in
      let ov =
        Detectors.Overhead.measure ~set:Detectors.Overhead.paper_detectors
          b.Benchmarks.Harness.bench Vir.Target.Avx ~input:0
      in
      Printf.printf
        "%-16s avg overhead %5.2f%% (dynamic instructions, %d detectors)\n"
        w.Vulfi.Workload.w_name
        (100.0 *. Detectors.Overhead.overhead_fraction ov)
        ov.Detectors.Overhead.detectors_inserted;
      List.iter
        (fun cat ->
          let r =
            campaign_run
              ~transform:
                (Detectors.Overhead.transform Detectors.Overhead.paper_detectors)
              ~hooks:Detectors.Runtime.hooks cfg w Vir.Target.Avx cat
          in
          results := r :: !results;
          print_endline ("  " ^ Vulfi.Report.fig12_row r))
        Analysis.Sites.all_categories)
    Benchmarks.Registry.micro_benchmarks;
  write_results_json "RESULTS_fig12.json" ~figure:"fig12" cfg
    (List.map (fun r -> (true, r)) (List.rev !results))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation () =
  let cfg = campaign_config () in
  header "Ablation 1: detector placement (exit-only vs every-iteration)";
  List.iter
    (fun (b : Benchmarks.Harness.benchmark) ->
      let w = scale_workload b.Benchmarks.Harness.bench in
      List.iter
        (fun (label, set) ->
          let ov =
            Detectors.Overhead.measure ~set b.Benchmarks.Harness.bench
              Vir.Target.Avx ~input:0
          in
          let r =
            campaign_run
              ~transform:(Detectors.Overhead.transform set)
              ~hooks:Detectors.Runtime.hooks cfg w Vir.Target.Avx
              Analysis.Sites.Control
          in
          Printf.printf
            "%-16s %-16s overhead %6.2f%%  SDC-detection %5.1f%%\n"
            w.Vulfi.Workload.w_name label
            (100.0 *. Detectors.Overhead.overhead_fraction ov)
            (100.0 *. Vulfi.Campaign.sdc_detection_rate r))
        [
          ("exit-only", Detectors.Overhead.paper_detectors);
          ( "every-iteration",
            {
              Detectors.Overhead.with_foreach = true;
              with_uniform = false;
              placement = `Every_iteration;
              strengthen = false;
            } );
        ])
    Benchmarks.Registry.micro_benchmarks;
  header
    "Ablation 2: masked-lane awareness (VULFI skips masked-off lanes; a \
     mask-oblivious injector wastes injections on dead lanes). Workload: \
     vcopy with n = 9, so 7 of 8 partial-block lanes are masked off.";
  let tiny_vcopy =
    {
      Vulfi.Workload.w_name = "vcopy-n9";
      w_fn = "vcopy_ispc";
      w_inputs = 1;
      w_out_tolerance = 0.0;
      w_build =
        (fun t ->
          Minispc.Driver.compile t
            "export void vcopy_ispc(uniform int a1[], uniform int a2[], \
             uniform int n) { foreach (i = 0 ... n) { a2[i] = a1[i]; } }");
      w_setup =
        (fun ~input:_ st ->
          let n = 9 in
          let mem = Interp.Machine.memory st in
          let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * n) in
          let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * n) in
          Interp.Memory.write_i32_array mem a1 (Array.init n (fun i -> i));
          ( [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
              Interp.Vvalue.of_i32 n ],
            fun () ->
              {
                Vulfi.Outcome.empty_output with
                Vulfi.Outcome.o_i32 =
                  [ Interp.Memory.read_i32_array mem a2 n ];
              } ));
    }
  in
  List.iter
    (fun (label, respect) ->
      let r =
        Vulfi.Campaign.run ~respect_masks:respect cfg tiny_vcopy
          Vir.Target.Avx Analysis.Sites.Pure_data
      in
      Printf.printf "%-24s SDC %5.1f%%  benign %5.1f%%  crash %5.1f%%\n"
        label
        (100.0 *. Vulfi.Campaign.sdc_rate r)
        (100.0 *. Vulfi.Campaign.benign_rate r)
        (100.0 *. Vulfi.Campaign.crash_rate r))
    [ ("mask-aware (VULFI)", true); ("mask-oblivious", false) ];
  header
    "Ablation 3: uniform-broadcast XOR detector (§III-B — future work in \
     the paper, implemented here). Workload: a scale kernel whose \
     broadcast multiplier feeds every lane (pure-data faults can land in \
     the broadcast register).";
  let scale_w =
    {
      Vulfi.Workload.w_name = "scale";
      w_fn = "scale";
      w_inputs = 1;
      w_out_tolerance = 0.0;
      w_build =
        (fun t ->
          Minispc.Driver.compile t
            "export void scale(uniform float a[], uniform float s, \
             uniform int n) { foreach (i = 0 ... n) { a[i] = a[i] * s; } \
             }");
      w_setup =
        (fun ~input:_ st ->
          let n = 64 in
          let mem = Interp.Machine.memory st in
          let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
          Interp.Memory.write_f32_array mem a
            (Array.init n (fun i -> float_of_int i *. 0.5));
          ( [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_f32 2.5;
              Interp.Vvalue.of_i32 n ],
            fun () ->
              {
                Vulfi.Outcome.empty_output with
                Vulfi.Outcome.o_f32 =
                  [ Interp.Memory.read_f32_array mem a n ];
              } ));
    }
  in
  List.iter
    (fun (label, set) ->
      let r =
        campaign_run
          ~transform:(Detectors.Overhead.transform set)
          ~hooks:Detectors.Runtime.hooks cfg scale_w Vir.Target.Avx
          Analysis.Sites.Pure_data
      in
      Printf.printf
        "%-24s flagged %d of %d experiments (SDC-detection %5.1f%%)\n"
        label r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected
        r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_experiments
        (100.0 *. Vulfi.Campaign.sdc_detection_rate r))
    [
      ("foreach only", Detectors.Overhead.paper_detectors);
      ("foreach + uniform-xor", Detectors.Overhead.all_detectors);
    ];
  header
    "Ablation 4: fault models beyond the paper's single bit flip \
     (Blackscholes, AVX, pure-data)";
  let bs = List.nth Benchmarks.Registry.paper_benchmarks 2 in
  let wbs = scale_workload bs.Benchmarks.Harness.bench in
  List.iter
    (fun kind ->
      let r =
        Vulfi.Campaign.run ~fault_kind:kind cfg wbs Vir.Target.Avx
          Analysis.Sites.Pure_data
      in
      Printf.printf "%-16s SDC %5.1f%%  benign %5.1f%%  crash %5.1f%%\n"
        (Vulfi.Runtime.fault_kind_name kind)
        (100.0 *. Vulfi.Campaign.sdc_rate r)
        (100.0 *. Vulfi.Campaign.benign_rate r)
        (100.0 *. Vulfi.Campaign.crash_rate r))
    [
      Vulfi.Runtime.Single_bit_flip;
      Vulfi.Runtime.Multi_bit_flip 2;
      Vulfi.Runtime.Multi_bit_flip 4;
      Vulfi.Runtime.Random_value;
      Vulfi.Runtime.Stuck_at_zero;
    ];
  header
    "Ablation 5: strengthened exit invariant (new_counter == aligned_end \
     on exit, extension) vs the paper's Fig 8 invariants";
  List.iter
    (fun (b : Benchmarks.Harness.benchmark) ->
      let w = scale_workload b.Benchmarks.Harness.bench in
      List.iter
        (fun (label, set) ->
          let r =
            campaign_run
              ~transform:(Detectors.Overhead.transform set)
              ~hooks:Detectors.Runtime.hooks cfg w Vir.Target.Avx
              Analysis.Sites.Control
          in
          Printf.printf "%-16s %-22s SDC-detection %5.1f%% (%d / %d)\n"
            w.Vulfi.Workload.w_name label
            (100.0 *. Vulfi.Campaign.sdc_detection_rate r)
            r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected_sdc
            r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_sdc)
        [
          ("Fig 8 invariants", Detectors.Overhead.paper_detectors);
          ("strengthened (==)", Detectors.Overhead.strengthened_detectors);
        ])
    Benchmarks.Registry.micro_benchmarks;
  header
    "Ablation 6: manually inserted source-level asserts (the paper's \
     introduction motif) — equality asserts in a checked vector copy \
     catch pure-data faults that no compiler-derived detector sees";
  let checked_src =
    "export void checked_copy(uniform int a1[], uniform int a2[], uniform \
     int n) { foreach (i = 0 ... n) { int v = a1[i]; a2[i] = v; \
     assert(a2[i] == v); } }"
  in
  let plain_src =
    "export void checked_copy(uniform int a1[], uniform int a2[], uniform \
     int n) { foreach (i = 0 ... n) { int v = a1[i]; a2[i] = v; } }"
  in
  let mk_workload src =
    {
      Vulfi.Workload.w_name = "checked_copy";
      w_fn = "checked_copy";
      w_inputs = 1;
      w_out_tolerance = 0.0;
      w_build = (fun t -> Minispc.Driver.compile t src);
      w_setup =
        (fun ~input:_ st ->
          let n = 64 in
          let mem = Interp.Machine.memory st in
          let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * n) in
          let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * n) in
          Interp.Memory.write_i32_array mem a1 (Array.init n (fun i -> i * 3));
          ( [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
              Interp.Vvalue.of_i32 n ],
            fun () ->
              {
                Vulfi.Outcome.empty_output with
                Vulfi.Outcome.o_i32 =
                  [ Interp.Memory.read_i32_array mem a2 n ];
              } ));
    }
  in
  List.iter
    (fun (label, src) ->
      let r =
        campaign_run ~hooks:Detectors.Runtime.hooks cfg
          (mk_workload src) Vir.Target.Avx Analysis.Sites.Pure_data
      in
      Printf.printf "%-24s SDC %5.1f%%  SDC-detection %5.1f%% (%d / %d)\n"
        label
        (100.0 *. Vulfi.Campaign.sdc_rate r)
        (100.0 *. Vulfi.Campaign.sdc_detection_rate r)
        r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected_sdc
        r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_sdc)
    [ ("with asserts", checked_src); ("without asserts", plain_src) ]

(* ------------------------------------------------------------------ *)
(* Sequential vs parallel campaign wall-clock                          *)

let speedup () =
  let cfg = campaign_config () in
  let par_jobs = max 4 !jobs in
  header
    (Printf.sprintf
       "Campaign speedup: sequential vs -j %d on %d domain(s) of hardware \
        (blackscholes, AVX, pure-data)"
       par_jobs
       (Domain.recommended_domain_count ()));
  let bs = List.nth Benchmarks.Registry.paper_benchmarks 2 in
  let w = scale_workload bs.Benchmarks.Harness.bench in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let r_seq, t_seq =
    time (fun () ->
        Vulfi.Campaign.run cfg w Vir.Target.Avx Analysis.Sites.Pure_data)
  in
  let r_par, t_par =
    time (fun () ->
        Vulfi.Campaign.run_parallel ~jobs:par_jobs cfg w Vir.Target.Avx
          Analysis.Sites.Pure_data)
  in
  Printf.printf "sequential: %7.2f s   (%d campaigns, SDC %5.1f%%)\n" t_seq
    r_seq.Vulfi.Campaign.c_campaigns
    (100.0 *. Vulfi.Campaign.sdc_rate r_seq);
  Printf.printf "-j %-2d     : %7.2f s   (%d campaigns, SDC %5.1f%%)\n"
    par_jobs t_par r_par.Vulfi.Campaign.c_campaigns
    (100.0 *. Vulfi.Campaign.sdc_rate r_par);
  Printf.printf "speedup   : %6.2fx   results bit-identical: %b\n"
    (t_seq /. t_par) (r_seq = r_par)

(* ------------------------------------------------------------------ *)
(* VM throughput: dynamic instructions per second                      *)

(* Measures raw interpreter throughput per benchmark (uninstrumented,
   input 0, AVX) and writes BENCH_interp.json so successive PRs can
   track the perf trajectory. VULFI_INTERP_REPS overrides the
   repetition count (CI smoke runs use 1). *)
(* Aggregate bytes allocated per dynamic instruction of the PR 4
   (pre-destination-passing) interpreter, measured with this harness on
   the same workloads right before the rewrite landed. *)
let baseline_pre_dps_bpi = "78.62"

let interp_bench () =
  header
    (Printf.sprintf
       "VM throughput: dynamic instructions / second per benchmark \
        (uninstrumented, input 0, AVX, schedule %s, fusion %s)"
       (if !Vulfi.Experiment.schedule_enabled then "on" else "off")
       (if !Vulfi.Experiment.fusion_enabled then "on" else "off"));
  let reps = getenv_int "VULFI_INTERP_REPS" 5 in
  (* VULFI_BENCH_ONLY=substr restricts the table to matching rows: used
     by the profiling recipe in EXPERIMENTS.md to isolate one workload. *)
  let benches =
    match Sys.getenv_opt "VULFI_BENCH_ONLY" with
    | None -> Benchmarks.Registry.all
    | Some pat ->
      List.filter
        (fun (b : Benchmarks.Harness.benchmark) ->
          let name =
            String.lowercase_ascii b.Benchmarks.Harness.bench.Vulfi.Workload.w_name
          in
          let pat = String.lowercase_ascii pat in
          let n = String.length name and p = String.length pat in
          let rec at i = i + p <= n && (String.sub name i p = pat || at (i + 1)) in
          at 0)
        Benchmarks.Registry.all
  in
  let chains_annotated = ref 0 and chains_fused = ref 0 in
  let sched_moves = ref 0 in
  let fused_hist : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rows =
    List.map
      (fun (b : Benchmarks.Harness.benchmark) ->
        let w = (scale_workload b.Benchmarks.Harness.bench) in
        let m = w.Vulfi.Workload.w_build Vir.Target.Avx in
        (* Same pass order as Experiment.prepare: schedule, then fuse. *)
        let moves =
          if !Vulfi.Experiment.schedule_enabled then
            Passes.Schedule.run_module m
          else 0
        in
        sched_moves := !sched_moves + moves;
        if !Vulfi.Experiment.fusion_enabled then begin
          chains_annotated := !chains_annotated + Passes.Fuse.run_module m;
          if Sys.getenv_opt "VULFI_FUSION_STATS" <> None then begin
            Printf.printf "%s: sched_moves=%d" w.Vulfi.Workload.w_name moves;
            List.iter
              (fun (k, n) -> Printf.printf " %s=%d" k n)
              (Passes.Fuse.rule_stats m);
            List.iter
              (fun (l, n) -> Printf.printf " len%d=%d" l n)
              (Passes.Fuse.length_hist m);
            print_newline ()
          end
        end;
        let code = Interp.Compile.compile_module m in
        chains_fused := !chains_fused + Interp.Compile.fused_chain_count code;
        List.iter
          (fun (l, n) ->
            Hashtbl.replace fused_hist l
              (n + Option.value ~default:0 (Hashtbl.find_opt fused_hist l)))
          (Interp.Compile.fused_length_hist code);
        (* Timed region = Machine.run only: the metric is VM execution
           throughput; per-experiment state construction and input
           generation are excluded (identically for every interpreter
           under comparison). Each run still gets a fresh state, like a
           campaign experiment does. *)
        let prepare () =
          let st = Interp.Machine.create code in
          let args, _ = w.Vulfi.Workload.w_setup ~input:0 st in
          (st, args)
        in
        let dyn =
          let st, args = prepare () in
          ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args);
          Interp.Machine.dyn_count st
        in
        (* Warm-up done. Tiny kernels are batched so a measurement spans
           well above timer resolution; the *fastest* batch is kept: on
           a shared/noisy host the minimum is the only robust estimator
           of the true cost (preemption only ever adds time). *)
        let batch =
          max 1 (min 512 (1 + (20_000 / max 1 dyn)))
        in
        let fn = w.Vulfi.Workload.w_fn in
        let best = ref infinity in
        let best_bytes = ref infinity in
        for _ = 1 to reps do
          let prepared = Array.init batch (fun _ -> prepare ()) in
          (* drain the allocation debt of the untimed construction above
             so its minor-GC work cannot land inside the timed window *)
          Gc.minor ();
          let a0 = Gc.allocated_bytes () in
          let t0 = Unix.gettimeofday () in
          Array.iter
            (fun (st, args) -> ignore (Interp.Machine.run st fn args))
            prepared;
          let t1 = Unix.gettimeofday () in
          (* Allocation across the same timed window. The count is
             deterministic per run; the minimum across reps simply
             rejects any stray allocation from a signal/GC hook. *)
          let db = (Gc.allocated_bytes () -. a0) /. float_of_int batch in
          let dt = (t1 -. t0) /. float_of_int batch in
          if dt < !best then best := dt;
          if db < !best_bytes then best_bytes := db
        done;
        let mips =
          if !best > 0.0 then float_of_int dyn /. !best /. 1.0e6 else 0.0
        in
        let bpi =
          if dyn > 0 then !best_bytes /. float_of_int dyn else 0.0
        in
        Printf.printf
          "%-18s %10d dyn instrs  %8.3f ms/run  %8.2f M instr/s  %7.2f B/instr\n"
          w.Vulfi.Workload.w_name dyn (!best *. 1000.0) mips bpi;
        (w.Vulfi.Workload.w_name, dyn, reps, !best, mips, bpi))
      benches
  in
  let total_dyn =
    List.fold_left (fun acc (_, d, _, _, _, _) -> acc + d) 0 rows
  in
  let total_dt =
    List.fold_left (fun acc (_, _, _, t, _, _) -> acc +. t) 0.0 rows
  in
  let total_bytes =
    List.fold_left
      (fun acc (_, d, _, _, _, b) -> acc +. (b *. float_of_int d))
      0.0 rows
  in
  let agg_mips =
    if total_dt > 0.0 then float_of_int total_dyn /. total_dt /. 1.0e6 else 0.0
  in
  let agg_bpi =
    if total_dyn > 0 then total_bytes /. float_of_int total_dyn else 0.0
  in
  Printf.printf "%-18s %33s  %8.2f M instr/s  %7.2f B/instr\n" "AGGREGATE" ""
    agg_mips agg_bpi;
  Printf.printf "fused chains: %d of %d annotated; scheduler moves: %d\n"
    !chains_fused !chains_annotated !sched_moves;
  (* Allocation-regression tripwire for the one workload that used to
     blow the aggregate gate (23 B/instr before the memory fast paths):
     fail loudly right here rather than letting CI bisect the
     aggregate. *)
  List.iter
    (fun (name, _, _, _, _, bpi) ->
      if name = "ConjugateGradient" && bpi > 12.0 then begin
        Printf.eprintf
          "FAIL: ConjugateGradient allocates %.2f B/instr (> 12.0 \
           regression gate)\n"
          bpi;
        exit 1
      end)
    rows;
  let hist_rows =
    Hashtbl.fold (fun l n acc -> (l, n) :: acc) fused_hist []
    |> List.sort compare
  in
  let oc = open_out "BENCH_interp.json" in
  Printf.fprintf oc "{\n  \"schema\": \"vulfi-interp-bench-v4\",\n";
  Printf.fprintf oc "  \"reps\": %d,\n" reps;
  Printf.fprintf oc "  \"schedule\": %b,\n" !Vulfi.Experiment.schedule_enabled;
  Printf.fprintf oc "  \"fusion\": %b,\n" !Vulfi.Experiment.fusion_enabled;
  Printf.fprintf oc "  \"sched_moves\": %d,\n" !sched_moves;
  Printf.fprintf oc "  \"chains_annotated\": %d,\n" !chains_annotated;
  Printf.fprintf oc "  \"chains_fused\": %d,\n" !chains_fused;
  Printf.fprintf oc "  \"chain_length_hist\": [%s],\n"
    (String.concat ", "
       (List.map (fun (l, n) -> Printf.sprintf "[%d, %d]" l n) hist_rows));
  Printf.fprintf oc "  \"aggregate_minstr_per_s\": %.3f,\n" agg_mips;
  Printf.fprintf oc "  \"aggregate_bytes_per_instr\": %.3f,\n" agg_bpi;
  (* Pre-DPS reference point (PR 4 tree, measured with this very
     harness before the destination-passing rewrite) so the before/after
     of the allocation work stays in the artifact. *)
  Printf.fprintf oc
    "  \"baseline_pre_dps\": {\"aggregate_minstr_per_s\": 26.114, \
     \"aggregate_bytes_per_instr\": %s},\n"
    baseline_pre_dps_bpi;
  (* Pre-fusion reference point (PR 6 tree, same harness, right before
     the peephole fusion backend landed). *)
  Printf.fprintf oc
    "  \"baseline_pre_fusion\": {\"aggregate_minstr_per_s\": 50.095, \
     \"aggregate_bytes_per_instr\": 6.129},\n";
  (* Pre-superblock reference point (PR 8 tree, same harness, right
     before the list scheduler and whole-superblock kernels landed). *)
  Printf.fprintf oc
    "  \"baseline_pre_superblock\": {\"aggregate_minstr_per_s\": 70.325, \
     \"aggregate_bytes_per_instr\": 4.275},\n";
  Printf.fprintf oc "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, dyn, r, dt, mips, bpi) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"dyn_instrs\": %d, \"reps\": %d, \
         \"best_seconds_per_run\": %.9f, \"minstr_per_s\": %.3f, \
         \"bytes_per_instr\": %.3f}%s\n"
        name dyn r dt mips bpi
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_interp.json\n"

(* ------------------------------------------------------------------ *)
(* Campaign throughput: the four executors head to head                *)

(* Runs the fig11 cell sweep four times — once per executor — over the
   same shared pool settings, cross-checks that results and traces are
   byte-identical across all four, and writes BENCH_campaign.json so
   successive PRs can track end-to-end campaign throughput the way
   BENCH_interp.json tracks raw VM throughput. *)
let campaign_bench () =
  let cfg = campaign_config () in
  header
    (Printf.sprintf
       "Campaign throughput: legacy vs checkpointed vs fast-forward vs \
        converge-pruned executor over the fig11 cell sweep (-j %d)"
       !jobs);
  let cells =
    List.concat_map
      (fun (b : Benchmarks.Harness.benchmark) ->
        let w = scale_workload b.Benchmarks.Harness.bench in
        List.concat_map
          (fun target ->
            List.map (fun cat -> (w, target, cat))
              Analysis.Sites.all_categories)
          Vir.Target.all)
      Benchmarks.Registry.paper_benchmarks
  in
  let sweep executor =
    let buf = Buffer.create (1 lsl 16) in
    let sink = Vulfi.Trace.to_buffer buf in
    let t0 = Unix.gettimeofday () in
    let results =
      Vulfi.Campaign.run_cells ~sink ~executor ~jobs:!jobs cfg cells
    in
    let dt = Unix.gettimeofday () -. t0 in
    Vulfi.Trace.close sink;
    (results, Buffer.contents buf, dt)
  in
  let r_leg, tr_leg, t_leg = sweep Vulfi.Campaign.Legacy in
  let r_ckpt, tr_ckpt, t_ckpt = sweep Vulfi.Campaign.Checkpointed in
  let r_ff, tr_ff, t_ff = sweep Vulfi.Campaign.Fast_forward in
  Vulfi.Experiment.reset_prune_stats ();
  let r_pr, tr_pr, t_pr = sweep Vulfi.Campaign.Converge_pruned in
  let prunes_performed, prune_checks_performed =
    Vulfi.Experiment.prune_stats ()
  in
  let sum f = List.fold_left (fun a r -> a + f r) 0 r_ckpt in
  let n_exps =
    sum (fun (r : Vulfi.Campaign.result) ->
        r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_experiments)
  in
  let golden_runs =
    sum (fun (r : Vulfi.Campaign.result) -> r.Vulfi.Campaign.c_golden_runs)
  in
  let golden_reused =
    sum (fun (r : Vulfi.Campaign.result) -> r.Vulfi.Campaign.c_golden_reused)
  in
  let checkpoints =
    sum (fun (r : Vulfi.Campaign.result) -> r.Vulfi.Campaign.c_checkpoints)
  in
  let ff_resumed =
    sum (fun (r : Vulfi.Campaign.result) -> r.Vulfi.Campaign.c_ff_resumed)
  in
  let pruned =
    sum (fun (r : Vulfi.Campaign.result) -> r.Vulfi.Campaign.c_pruned)
  in
  let prune_checks =
    sum (fun (r : Vulfi.Campaign.result) -> r.Vulfi.Campaign.c_prune_checks)
  in
  let rate dt = if dt > 0.0 then float_of_int n_exps /. dt else 0.0 in
  let speedup = if t_ckpt > 0.0 then t_leg /. t_ckpt else 0.0 in
  let speedup_ff = if t_ff > 0.0 then t_ckpt /. t_ff else 0.0 in
  let speedup_pruned = if t_pr > 0.0 then t_ff /. t_pr else 0.0 in
  let results_identical =
    r_leg = r_ckpt && r_ckpt = r_ff && r_ff = r_pr
  in
  let traces_identical =
    String.equal tr_leg tr_ckpt
    && String.equal tr_ckpt tr_ff
    && String.equal tr_ff tr_pr
  in
  Printf.printf "cells: %d   experiments: %d\n" (List.length cells) n_exps;
  Printf.printf "legacy         : %7.2f s  %8.1f experiments/s\n" t_leg
    (rate t_leg);
  Printf.printf "checkpointed   : %7.2f s  %8.1f experiments/s\n" t_ckpt
    (rate t_ckpt);
  Printf.printf "fast-forward   : %7.2f s  %8.1f experiments/s\n" t_ff
    (rate t_ff);
  Printf.printf "converge-pruned: %7.2f s  %8.1f experiments/s\n" t_pr
    (rate t_pr);
  Printf.printf
    "speedup        : %6.2fx (ckpt/legacy)  %6.2fx (ff/ckpt)  %6.2fx \
     (pruned/ff)\n"
    speedup speedup_ff speedup_pruned;
  Printf.printf
    "golden runs %d (reused %d)   checkpoints %d (resumed %d)   prunable \
     %d (pruned %d, %d of %d checks)\n"
    golden_runs golden_reused checkpoints ff_resumed pruned
    prunes_performed prune_checks_performed prune_checks;
  Printf.printf "results identical: %b   traces identical: %b\n"
    results_identical traces_identical;
  let oc = open_out "BENCH_campaign.json" in
  Printf.fprintf oc "{\n  \"schema\": \"vulfi-campaign-bench-v3\",\n";
  Printf.fprintf oc "  \"scale\": %S,\n"
    (if scale_is_paper then "paper" else "quick");
  Printf.fprintf oc "  \"jobs\": %d,\n" !jobs;
  Printf.fprintf oc "  \"cells\": %d,\n" (List.length cells);
  Printf.fprintf oc "  \"experiments\": %d,\n" n_exps;
  Printf.fprintf oc "  \"golden_runs\": %d,\n" golden_runs;
  Printf.fprintf oc "  \"golden_runs_eliminated\": %d,\n" golden_reused;
  Printf.fprintf oc "  \"checkpoints\": %d,\n" checkpoints;
  Printf.fprintf oc "  \"ff_resumed\": %d,\n" ff_resumed;
  (* schedule-derived pruning opportunity vs what physically pruned *)
  Printf.fprintf oc "  \"prunable_experiments\": %d,\n" pruned;
  Printf.fprintf oc "  \"prune_checks_possible\": %d,\n" prune_checks;
  Printf.fprintf oc "  \"prunes_performed\": %d,\n" prunes_performed;
  Printf.fprintf oc "  \"prune_checks_performed\": %d,\n"
    prune_checks_performed;
  Printf.fprintf oc "  \"legacy_seconds\": %.3f,\n" t_leg;
  Printf.fprintf oc "  \"checkpointed_seconds\": %.3f,\n" t_ckpt;
  Printf.fprintf oc "  \"fastforward_seconds\": %.3f,\n" t_ff;
  Printf.fprintf oc "  \"pruned_seconds\": %.3f,\n" t_pr;
  Printf.fprintf oc "  \"legacy_experiments_per_s\": %.1f,\n" (rate t_leg);
  Printf.fprintf oc "  \"checkpointed_experiments_per_s\": %.1f,\n"
    (rate t_ckpt);
  Printf.fprintf oc "  \"fastforward_experiments_per_s\": %.1f,\n"
    (rate t_ff);
  Printf.fprintf oc "  \"pruned_experiments_per_s\": %.1f,\n" (rate t_pr);
  Printf.fprintf oc "  \"speedup\": %.3f,\n" speedup;
  Printf.fprintf oc "  \"speedup_fastforward\": %.3f,\n" speedup_ff;
  Printf.fprintf oc "  \"speedup_pruned\": %.3f,\n" speedup_pruned;
  (* Pre-pruning reference point (PR 8 tree, this harness, quick scale,
     right before the converge-pruned executor landed) so the pruning
     before/after stays in the artifact. *)
  Printf.fprintf oc
    "  \"baseline_pre_prune\": {\"legacy_seconds\": 12.022, \
     \"checkpointed_seconds\": 5.524, \"fastforward_seconds\": 3.694, \
     \"speedup_fastforward\": 1.495},\n";
  Printf.fprintf oc "  \"results_identical\": %b,\n" results_identical;
  Printf.fprintf oc "  \"traces_identical\": %b\n" traces_identical;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "\nwrote BENCH_campaign.json\n";
  if not (results_identical && traces_identical) then begin
    Printf.eprintf
      "campaign bench: executor outputs diverge (results %b, traces %b)\n"
      results_identical traces_identical;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock timing                                          *)

let timing () =
  let open Bechamel in
  let open Toolkit in
  header
    "Wall-clock timing (Bechamel): detector overhead corroboration + VM \
     throughput";
  let run_workload (b : Benchmarks.Harness.benchmark) transform =
    let w = b.Benchmarks.Harness.bench in
    let m = transform (w.Vulfi.Workload.w_build Vir.Target.Avx) in
    let code = Interp.Compile.compile_module m in
    fun () ->
      let st = Interp.Machine.create code in
      let det = Detectors.Runtime.create () in
      Detectors.Runtime.attach det st;
      let args, _ = w.Vulfi.Workload.w_setup ~input:0 st in
      ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args)
  in
  let id_transform m = m in
  let with_detectors m =
    ignore (Detectors.Foreach_invariants.run m);
    m
  in
  let micro = Benchmarks.Registry.micro_benchmarks in
  let tests =
    List.concat_map
      (fun (b : Benchmarks.Harness.benchmark) ->
        let name = b.Benchmarks.Harness.bench.Vulfi.Workload.w_name in
        [
          Test.make ~name:(name ^ " plain")
            (Staged.stage (run_workload b id_transform));
          Test.make
            ~name:(name ^ " +detector")
            (Staged.stage (run_workload b with_detectors));
        ])
      micro
    @ [
        Test.make ~name:"stencil VM throughput"
          (Staged.stage
             (run_workload
                (List.nth Benchmarks.Registry.paper_benchmarks 4)
                id_transform));
      ]
  in
  let test = Test.make_grouped ~name:"vulfi" tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg_b =
    Benchmark.cfg ~limit:5000 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let raw = Benchmark.all cfg_b [ Instance.monotonic_clock ] test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> (name, ns) :: acc
        | _ -> acc)
      results []
  in
  List.iter
    (fun (name, ns) -> Printf.printf "%-44s %14.1f ns/run\n" name ns)
    (List.sort compare rows);
  List.iter
    (fun (b : Benchmarks.Harness.benchmark) ->
      let name = b.Benchmarks.Harness.bench.Vulfi.Workload.w_name in
      let find suffix = List.assoc_opt ("vulfi/" ^ name ^ suffix) rows in
      match (find " plain", find " +detector") with
      | Some p, Some d when p > 0.0 ->
        Printf.printf "%-16s wall-clock detector overhead: %5.2f%%\n" name
          (100.0 *. ((d -. p) /. p))
      | _ -> ())
    micro;
  (* VM throughput: dynamic instructions per second on the stencil *)
  (match List.assoc_opt "vulfi/stencil VM throughput" rows with
  | Some ns when ns > 0.0 ->
    let stencil = List.nth Benchmarks.Registry.paper_benchmarks 4 in
    let dyn =
      run_uninstrumented stencil Vir.Target.Avx 0
    in
    Printf.printf
      "\nVM throughput: %.1f M dynamic instructions / second (stencil, \
       %d instrs in %.2f ms)\n"
      (float_of_int dyn /. ns *. 1000.0)
      dyn (ns /. 1.0e6)
  | _ -> ())

(* ------------------------------------------------------------------ *)

let () =
  (* peel "-j N" / "--trace FILE" off the argument list; the rest are
     experiment names *)
  let trace_path = ref None in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse_args acc rest
      | _ ->
        Printf.eprintf "-j expects a positive integer, got %S\n" n;
        exit 2)
    | "-j" :: [] ->
      Printf.eprintf "-j expects a worker count\n";
      exit 2
    | "--trace" :: f :: rest ->
      trace_path := Some f;
      parse_args acc rest
    | "--trace" :: [] ->
      Printf.eprintf "--trace expects a file name\n";
      exit 2
    | "--legacy-executor" :: rest ->
      if !executor = Vulfi.Campaign.Converge_pruned then begin
        Printf.eprintf
          "--legacy-executor and --prune-executor are mutually exclusive\n";
        exit 2
      end;
      executor := Vulfi.Campaign.Legacy;
      parse_args acc rest
    | "--ff-executor" :: rest ->
      executor := Vulfi.Campaign.Fast_forward;
      parse_args acc rest
    | "--prune-executor" :: rest ->
      if !executor = Vulfi.Campaign.Legacy then begin
        Printf.eprintf
          "--legacy-executor and --prune-executor are mutually exclusive\n";
        exit 2
      end;
      executor := Vulfi.Campaign.Converge_pruned;
      parse_args acc rest
    | "--no-fusion" :: rest ->
      Vulfi.Experiment.fusion_enabled := false;
      parse_args acc rest
    | "--no-schedule" :: rest ->
      Vulfi.Experiment.schedule_enabled := false;
      parse_args acc rest
    | cmd :: rest -> parse_args (cmd :: acc) rest
  in
  let what =
    match
      parse_args []
        (Array.to_list (Array.sub Sys.argv 1 (Array.length Sys.argv - 1)))
    with
    | [] -> [ "table1"; "fig10"; "fig11"; "fig12"; "ablation"; "timing" ]
    | cmds -> cmds
  in
  the_sink := Option.map Vulfi.Trace.to_file !trace_path;
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> Option.iter Vulfi.Trace.close !the_sink)
    (fun () ->
      List.iter
        (fun cmd ->
          match cmd with
          | "table1" -> table1 ()
          | "fig10" -> fig10 ()
          | "fig11" -> fig11 ()
          | "fig12" -> fig12 ()
          | "ablation" -> ablation ()
          | "speedup" -> speedup ()
          | "timing" -> timing ()
          | "interp" -> interp_bench ()
          | "campaign" -> campaign_bench ()
          | other ->
            Printf.eprintf
              "unknown experiment %S (try table1 fig10 fig11 fig12 ablation \
               speedup timing interp campaign)\n"
              other;
            exit 2)
        what);
  Printf.printf "\ntotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0)

(* Tests for the closure-threading stage: call-arity enforcement, the
   extern-slot contract, the pinned NaN semantics of the float
   reductions, and a differential property checking the threaded VM
   against the exposed lane evaluators on random straight-line
   programs. *)

open Vir
open Interp

let check = Alcotest.check

(* ---------------- call arity ---------------- *)

(* Machine.run with the wrong argument count must raise, not silently
   zero-fill or drop arguments. *)
let test_run_arity () =
  let m = Ir_samples.vadd8_module () in
  let st = Machine.create (Compile.compile_module m) in
  Alcotest.(check bool) "run arity raises" true
    (try
       ignore (Machine.run st "vadd8" [ Vvalue.of_ptr 0L ]);
       false
     with Invalid_argument msg ->
       check Alcotest.string "message names the function"
         "Machine: call to @vadd8 with 1 argument(s), expects 3" msg;
       true)

(* An in-module call with the wrong arity raises when the call executes.
   The module deliberately skips Verify — the threading stage must hold
   the line on its own. *)
let test_call_arity () =
  let m = Vmodule.create "arity" in
  let callee =
    Builder.define m ~name:"callee"
      ~params:[ ("x", Vtype.i32) ]
      ~ret_ty:Vtype.i32
  in
  let e = Builder.new_block callee "entry" in
  Builder.position_at_end callee e;
  Builder.ret callee (Some (Builder.param callee "x"));
  let caller = Builder.define m ~name:"caller" ~params:[] ~ret_ty:Vtype.i32 in
  let e = Builder.new_block caller "entry" in
  Builder.position_at_end caller e;
  let r =
    Builder.call caller ~ret:Vtype.i32 "callee"
      [ Ir_samples.imm_i32 1; Ir_samples.imm_i32 2 ]
  in
  Builder.ret caller (Some r);
  (* compilation itself succeeds; only executing the bad call raises *)
  let st = Machine.create (Compile.compile_module m) in
  Alcotest.(check bool) "in-module call arity raises" true
    (try
       ignore (Machine.run st "caller" []);
       false
     with Invalid_argument _ -> true)

(* ---------------- extern slots ---------------- *)

let test_extern_slots () =
  let m = Vmodule.create "ext" in
  Vmodule.declare_extern m ~name:"host_id" ~arg_tys:[ Vtype.i32 ]
    ~ret:Vtype.i32;
  let b = Builder.define m ~name:"go" ~params:[] ~ret_ty:Vtype.i32 in
  let e = Builder.new_block b "entry" in
  Builder.position_at_end b e;
  let r = Builder.call b ~ret:Vtype.i32 "host_id" [ Ir_samples.imm_i32 7 ] in
  Builder.ret b (Some r);
  Verify.check_module m;
  let st = Machine.create (Compile.compile_module m) in
  (* registering a name the module never calls is a silent no-op *)
  Machine.register_extern st "never_called" (fun _ _ -> None);
  (* an unfilled slot traps with the callee's name *)
  Alcotest.(check bool) "empty slot traps" true
    (try
       ignore (Machine.run st "go" []);
       false
     with Trap.Trap (Trap.Unknown_function "host_id") -> true);
  (* filling the slot after compilation takes effect *)
  Machine.register_extern st "host_id" (fun _ args ->
      match args with [ v ] -> Some v | _ -> assert false);
  (match Machine.run st "go" [] with
  | Some v -> check Alcotest.int64 "slot filled" 7L (Vvalue.as_int v)
  | None -> Alcotest.fail "expected value")

(* ---------------- NaN semantics of reduce.min / reduce.max -------- *)

(* Pinned behavior (documented in eval.ml): the float reductions use
   Float.compare's total order, which places NaN below every number.
   Hence reduce.min returns NaN if any lane is NaN, while reduce.max
   ignores NaN lanes (unless all lanes are NaN). This is deliberate and
   deterministic — fault-injected NaNs classify reproducibly. *)
let test_reduce_nan_direct () =
  let nan2 = [| 2.0; Float.nan |] and nan2' = [| Float.nan; 2.0 |] in
  Alcotest.(check bool) "fmin [2;nan] = nan" true
    (Float.is_nan (Eval.reduce_fmin nan2));
  Alcotest.(check bool) "fmin [nan;2] = nan" true
    (Float.is_nan (Eval.reduce_fmin nan2'));
  check (Alcotest.float 0.0) "fmax [2;nan] = 2" 2.0 (Eval.reduce_fmax nan2);
  check (Alcotest.float 0.0) "fmax [nan;2] = 2" 2.0 (Eval.reduce_fmax nan2');
  Alcotest.(check bool) "fmax all-nan = nan" true
    (Float.is_nan (Eval.reduce_fmax [| Float.nan; Float.nan |]))

(* Same property end-to-end through the threaded reduce intrinsics. *)
let reduce_module ~intr =
  let m = Vmodule.create "red" in
  let vty = Vtype.vector 4 Vtype.F32 in
  let b = Builder.define m ~name:"go" ~params:[ ("v", vty) ] ~ret_ty:Vtype.f32 in
  let e = Builder.new_block b "entry" in
  Builder.position_at_end b e;
  let r = Builder.call b ~ret:Vtype.f32 intr [ Builder.param b "v" ] in
  Builder.ret b (Some r);
  Verify.check_module m;
  m

let test_reduce_nan_threaded () =
  let v = Vvalue.F (Vtype.F32, [| 1.0; Float.nan; 3.0; 2.0 |]) in
  let run intr =
    let st =
      Machine.create (Compile.compile_module (reduce_module ~intr))
    in
    match Machine.run st "go" [ v ] with
    | Some r -> Vvalue.as_float r
    | None -> Alcotest.fail "expected value"
  in
  Alcotest.(check bool) "threaded reduce.fmin propagates nan" true
    (Float.is_nan (run "llvm.vector.reduce.fmin"));
  check (Alcotest.float 0.0) "threaded reduce.fmax skips nan" 3.0
    (run "llvm.vector.reduce.fmax")

(* ---------------- differential property ---------------- *)

(* Random straight-line programs, executed both by the threaded VM and
   by folding the exposed lane evaluators (the constant-folding /
   reference semantics). Results — including trap behavior for
   division — must agree exactly. *)

let int_ops =
  [
    Instr.Add; Instr.Sub; Instr.Mul; Instr.Sdiv; Instr.Srem; Instr.Udiv;
    Instr.Urem; Instr.And; Instr.Or; Instr.Xor; Instr.Shl; Instr.Lshr;
    Instr.Ashr;
  ]

let float_ops = [ Instr.Fadd; Instr.Fsub; Instr.Fmul; Instr.Fdiv ]

let int_chain_module ops =
  let m = Vmodule.create "chain" in
  let b = Builder.define m ~name:"go" ~params:[ ("x", Vtype.i32) ] ~ret_ty:Vtype.i32 in
  let e = Builder.new_block b "entry" in
  Builder.position_at_end b e;
  let acc =
    List.fold_left
      (fun acc (k, c) -> Builder.ibinop b k acc (Ir_samples.imm_i32 c))
      (Builder.param b "x") ops
  in
  Builder.ret b (Some acc);
  Verify.check_module m;
  m

let float_chain_module ops =
  let m = Vmodule.create "fchain" in
  let b = Builder.define m ~name:"go" ~params:[ ("x", Vtype.f32) ] ~ret_ty:Vtype.f32 in
  let e = Builder.new_block b "entry" in
  Builder.position_at_end b e;
  let acc =
    List.fold_left
      (fun acc (k, c) -> Builder.fbinop b k acc (Ir_samples.imm_f32 c))
      (Builder.param b "x") ops
  in
  Builder.ret b (Some acc);
  Verify.check_module m;
  m

(* Both sides either produce a value or trap; compare whichever. *)
let outcome f =
  try Ok (f ()) with Trap.Trap t -> Error t

let prop_int_chain =
  QCheck.Test.make ~name:"threaded VM matches lane evaluator (i32 chains)"
    ~count:300
    QCheck.(
      pair int
        (small_list (pair (oneofl int_ops) (int_range (-100) 100))))
    (fun (x0, ops) ->
      let m = int_chain_module ops in
      let x0 = Interp.Bits.truncate Vtype.I32 (Int64.of_int x0) in
      let vm =
        outcome (fun () ->
            let st = Machine.create (Compile.compile_module m) in
            match
              Machine.run st "go"
                [ Vvalue.I (Vtype.I32, Interp.Ilanes.make 1 x0) ]
            with
            | Some v -> Vvalue.as_int v
            | None -> Alcotest.fail "expected value")
      in
      let reference =
        outcome (fun () ->
            List.fold_left
              (fun acc (k, c) ->
                Machine.eval_ibinop_lane k Vtype.I32 acc
                  (Interp.Bits.truncate Vtype.I32 (Int64.of_int c)))
              x0 ops)
      in
      vm = reference)

let prop_float_chain =
  QCheck.Test.make ~name:"threaded VM matches lane evaluator (f32 chains)"
    ~count:300
    QCheck.(
      pair (float_range (-1e6) 1e6)
        (small_list
           (pair (oneofl float_ops) (float_range (-1e3) 1e3))))
    (fun (x0, ops) ->
      let m = float_chain_module ops in
      (* round inputs to f32 like the VM's storage does *)
      let r32 x = Int32.float_of_bits (Int32.bits_of_float x) in
      let x0 = r32 x0 in
      let vm =
        let st = Machine.create (Compile.compile_module m) in
        match Machine.run st "go" [ Vvalue.F (Vtype.F32, [| x0 |]) ] with
        | Some v -> Int64.bits_of_float (Vvalue.as_float v)
        | None -> Alcotest.fail "expected value"
      in
      let reference =
        List.fold_left
          (fun acc (k, c) -> Machine.eval_fbinop_lane k Vtype.F32 acc (r32 c))
          x0 ops
      in
      vm = Int64.bits_of_float reference)

let () =
  Alcotest.run "threaded"
    [
      ( "arity",
        [
          Alcotest.test_case "Machine.run arity" `Quick test_run_arity;
          Alcotest.test_case "in-module call arity" `Quick test_call_arity;
        ] );
      ( "externs",
        [ Alcotest.test_case "slot contract" `Quick test_extern_slots ] );
      ( "reduce-nan",
        [
          Alcotest.test_case "direct" `Quick test_reduce_nan_direct;
          Alcotest.test_case "threaded" `Quick test_reduce_nan_threaded;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_int_chain;
          QCheck_alcotest.to_alcotest prop_float_chain;
        ] );
    ]

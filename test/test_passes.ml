(* Tests for the optimisation passes: DCE (mark/sweep correctness) and
   constant folding (semantic preservation, fold coverage), plus the
   dominator-tree and natural-loop analyses they lean on. *)

open Vir

let check = Alcotest.check

(* ---------------- DCE ---------------- *)

let test_dce_removes_dead_chain () =
  let m = Vmodule.create "dce" in
  let b = Builder.define m ~name:"f" ~params:[ ("x", Vtype.i32) ] ~ret_ty:Vtype.i32 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  (* dead chain: d1 -> d2, never used *)
  let d1 = Builder.add b (Builder.param b "x") (Ir_samples.imm_i32 1) in
  let _d2 = Builder.mul b d1 (Ir_samples.imm_i32 2) in
  (* live value *)
  let live = Builder.add b (Builder.param b "x") (Ir_samples.imm_i32 10) in
  Builder.ret b (Some live);
  let removed = Dce.run_module m in
  check Alcotest.int "two dead instructions removed" 2 removed;
  Verify.check_module m;
  let f = Vmodule.find_func_exn m "f" in
  check Alcotest.int "two instructions left" 2
    (List.length (Func.all_instrs f))

let test_dce_keeps_effects () =
  let m = Ir_samples.vadd8_module () in
  let before = List.length (Func.all_instrs (Vmodule.find_func_exn m "vadd8")) in
  let removed = Dce.run_module m in
  check Alcotest.int "nothing removed from live code" 0 removed;
  check Alcotest.int "instruction count unchanged" before
    (List.length (Func.all_instrs (Vmodule.find_func_exn m "vadd8")))

let test_dce_removes_dead_phi_cycle () =
  (* A phi that only feeds its own backedge increment is dead. *)
  let m = Vmodule.create "cycle" in
  let b = Builder.define m ~name:"f" ~params:[ ("n", Vtype.i32) ] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  let loop = Builder.new_block b "loop" in
  let exit = Builder.new_block b "exit" in
  ignore exit;
  Builder.position_at_end b entry;
  Builder.br b "loop";
  Builder.position_at_end b loop;
  let i = Builder.phi b Vtype.i32 [ ("entry", Ir_samples.imm_i32 0) ] in
  let dead = Builder.phi b Vtype.i32 [ ("entry", Ir_samples.imm_i32 0) ] in
  let inext = Builder.add b i (Ir_samples.imm_i32 1) in
  let deadnext = Builder.add b dead (Ir_samples.imm_i32 7) in
  let cond = Builder.icmp b Instr.Islt inext (Builder.param b "n") in
  Builder.condbr b cond "loop" "exit";
  Builder.add_phi_incoming b (Ir_samples.reg_of i) ~from:"loop" ~value:inext;
  Builder.add_phi_incoming b (Ir_samples.reg_of dead) ~from:"loop"
    ~value:deadnext;
  Builder.position_at_end b exit;
  Builder.ret b None;
  Verify.check_module m;
  let removed = Dce.run_module m in
  check Alcotest.int "dead phi cycle removed" 2 removed;
  Verify.check_module m

let test_dce_removes_dead_maskload () =
  let m = Vmodule.create "deadload" in
  let vty = Vtype.vector 8 Vtype.F32 in
  let b = Builder.define m ~name:"f" ~params:[ ("p", Vtype.ptr) ] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let _dead_load = Builder.load b vty (Builder.param b "p") in
  let _dead_masked =
    Builder.call b ~ret:vty
      (Intrinsics.maskload_name Target.Avx Vtype.F32)
      [ Builder.param b "p";
        Instr.Imm (Const.splat 8 (Const.i1 true)) ]
  in
  Builder.ret b None;
  check Alcotest.int "dead loads removed" 2 (Dce.run_module m)

(* ---------------- Constfold ---------------- *)

let run_f m fn args =
  let st = Interp.Machine.create (Interp.Compile.compile_module m) in
  match Interp.Machine.run st fn args with
  | Some v -> v
  | None -> Alcotest.fail "expected a value"

let test_constfold_arith () =
  let m = Vmodule.create "cf" in
  let b = Builder.define m ~name:"f" ~params:[] ~ret_ty:Vtype.i32 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let x = Builder.add b (Ir_samples.imm_i32 20) (Ir_samples.imm_i32 22) in
  let y = Builder.mul b x (Ir_samples.imm_i32 2) in
  Builder.ret b (Some y);
  let before = Interp.Vvalue.as_int (run_f m "f" []) in
  let folds = Passes.Constfold.run_module m in
  Alcotest.(check bool) "folded something" true (folds >= 2);
  let f = Vmodule.find_func_exn m "f" in
  check Alcotest.int "only ret remains" 1 (List.length (Func.all_instrs f));
  check Alcotest.int64 "same result" before
    (Interp.Vvalue.as_int (run_f m "f" []))

let test_constfold_skips_trapping_div () =
  let m = Vmodule.create "cf" in
  let b = Builder.define m ~name:"f" ~params:[] ~ret_ty:Vtype.i32 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let x = Builder.sdiv b (Ir_samples.imm_i32 1) (Ir_samples.imm_i32 0) in
  Builder.ret b (Some x);
  check Alcotest.int "div by zero not folded" 0 (Passes.Constfold.run_module m);
  (* the trap must still happen at run time *)
  Alcotest.(check bool) "still traps" true
    (try
       ignore (run_f m "f" []);
       false
     with Interp.Trap.Trap Interp.Trap.Division_by_zero -> true)

let test_constfold_vector_ops () =
  let m = Vmodule.create "cf" in
  let b = Builder.define m ~name:"f" ~params:[] ~ret_ty:Vtype.i32 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let v =
    Builder.add b
      (Instr.Imm (Const.iota Vtype.I32 4))
      (Instr.Imm (Const.splat 4 (Const.i32 10)))
  in
  let e = Builder.extractelement b v (Ir_samples.imm_i32 2) in
  Builder.ret b (Some e);
  let before = Interp.Vvalue.as_int (run_f m "f" []) in
  check Alcotest.int64 "sanity" 12L before;
  Alcotest.(check bool) "folded" true (Passes.Constfold.run_module m > 0);
  check Alcotest.int64 "same result" 12L (Interp.Vvalue.as_int (run_f m "f" []))

let test_constfold_preserves_benchmarks () =
  (* Folding must never change observable behaviour of real kernels. *)
  List.iter
    (fun (bch : Benchmarks.Harness.benchmark) ->
      let w = bch.Benchmarks.Harness.bench in
      let plain = w.Vulfi.Workload.w_build Target.Avx in
      let folded = w.Vulfi.Workload.w_build Target.Avx in
      ignore (Passes.Constfold.run_module folded);
      let outputs m =
        let st = Interp.Machine.create (Interp.Compile.compile_module m) in
        let args, read = w.Vulfi.Workload.w_setup ~input:0 st in
        ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args);
        read ()
      in
      Alcotest.(check bool)
        (w.Vulfi.Workload.w_name ^ " unchanged by folding")
        true
        (Vulfi.Outcome.output_equal (outputs plain) (outputs folded)))
    Benchmarks.Registry.all

let prop_constfold_equivalent =
  QCheck.Test.make ~name:"folding preserves saxpy outputs" ~count:25
    QCheck.(pair (int_range 0 24) (float_range (-10.) 10.))
    (fun (n, a) ->
      let src =
        "export void saxpy(uniform float x[], uniform float y[], uniform \
         float a, uniform int n) { foreach (i = 0 ... n) { y[i] = (2.0 * \
         3.0) * a * x[i] + y[i] * (1.0 + 0.0); } }"
      in
      let run fold =
        let m = Minispc.Driver.compile Target.Avx src in
        if fold then ignore (Passes.Constfold.run_module m);
        let st = Interp.Machine.create (Interp.Compile.compile_module m) in
        let mem = Interp.Machine.memory st in
        let x = Interp.Memory.alloc mem ~name:"x" ~bytes:(4 * 24) in
        let y = Interp.Memory.alloc mem ~name:"y" ~bytes:(4 * 24) in
        Interp.Memory.write_f32_array mem x (Array.init 24 float_of_int);
        Interp.Memory.write_f32_array mem y (Array.make 24 1.0);
        ignore
          (Interp.Machine.run st "saxpy"
             [ Interp.Vvalue.of_ptr x; Interp.Vvalue.of_ptr y;
               Interp.Vvalue.of_f32 (Interp.Bits.round_float Vtype.F32 a);
               Interp.Vvalue.of_i32 n ]);
        Interp.Memory.read_f32_array mem y 24
      in
      run false = run true)

let test_constfold_shuffle_bad_mask () =
  (* Regression: a shufflevector whose mask indexes outside [0, 2n)
     must not be folded (the extract would die), and the threading
     stage must reject it loudly instead of reading out of bounds. *)
  let m = Vmodule.create "cf" in
  let b = Builder.define m ~name:"f" ~params:[] ~ret_ty:Vtype.i32 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let va = Instr.Imm (Const.iota Vtype.I32 4) in
  let vb = Instr.Imm (Const.splat 4 (Const.i32 9)) in
  let s = Builder.shufflevector b va vb [| 0; 99; 2; 3 |] in
  let e = Builder.extractelement b s (Ir_samples.imm_i32 0) in
  Builder.ret b (Some e);
  check Alcotest.int "bad mask not folded" 0
    (Passes.Constfold.run_module m);
  Alcotest.(check bool) "threading rejects the bad mask" true
    (try
       ignore (Interp.Compile.compile_module m);
       false
     with Invalid_argument _ -> true)

let test_constfold_fold_counts_pinned () =
  (* Pins the exact per-sweep and total fold counts of a three-step
     constant chain, so a rewrite of the sweep (e.g. the hash-based
     dead filter) that accidentally changes fixpoint behaviour fails
     loudly rather than just running a different number of passes. *)
  let mk () =
    let m = Vmodule.create "cf" in
    let b = Builder.define m ~name:"f" ~params:[] ~ret_ty:Vtype.i32 in
    let entry = Builder.new_block b "entry" in
    Builder.position_at_end b entry;
    let x1 = Builder.add b (Ir_samples.imm_i32 1) (Ir_samples.imm_i32 2) in
    let x2 = Builder.mul b x1 (Ir_samples.imm_i32 3) in
    let x3 = Builder.sub b x2 (Ir_samples.imm_i32 4) in
    Builder.ret b (Some x3);
    m
  in
  (* One sweep folds only the head of the chain: downstream members
     still read the (now-replaced) register from the snapshot the
     sweep iterates over. *)
  let m1 = mk () in
  let f1 = Vmodule.find_func_exn m1 "f" in
  check Alcotest.int "one fold per sweep" 1 (Passes.Constfold.fold_func_once f1);
  (* The fixpoint driver folds all three and reports exactly three. *)
  let m = mk () in
  check Alcotest.int "three folds to fixpoint" 3 (Passes.Constfold.run_module m);
  check Alcotest.int64 "value preserved" 5L (Interp.Vvalue.as_int (run_f m "f" []))

let test_replace_uses_except () =
  let m = Vmodule.create "ru" in
  let b = Builder.define m ~name:"f" ~params:[ ("x", Vtype.i32) ] ~ret_ty:Vtype.i32 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let d = Builder.add b (Builder.param b "x") (Ir_samples.imm_i32 1) in
  let u1 = Builder.mul b d (Ir_samples.imm_i32 2) in
  let u2 = Builder.sub b d (Ir_samples.imm_i32 3) in
  Builder.ret b (Some (Builder.add b u1 u2));
  let f = Vmodule.find_func_exn m "f" in
  let reg_of = function Instr.Reg (r, _) -> r | _ -> Alcotest.fail "not a reg" in
  let instr_of op =
    List.find
      (fun (i : Instr.t) -> Instr.defines i && i.Instr.id = reg_of op)
      (Func.all_instrs f)
  in
  Func.replace_uses f ~reg:(reg_of d)
    ~by:(Ir_samples.imm_i32 42)
    ~except:[ reg_of u2 ];
  let uses_d i = List.mem d (Instr.operands i) in
  Alcotest.(check bool) "u1 redirected" false (uses_d (instr_of u1));
  Alcotest.(check bool) "u2 kept (except)" true (uses_d (instr_of u2))

(* ---------------- Domtree ---------------- *)

let test_domtree_diamond () =
  let m = Vmodule.create "d" in
  let b = Builder.define m ~name:"f" ~params:[ ("c", Vtype.bool_ty) ] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  let l = Builder.new_block b "l" in
  let r = Builder.new_block b "r" in
  let join = Builder.new_block b "join" in
  ignore (l, r, join);
  Builder.position_at_end b entry;
  Builder.condbr b (Builder.param b "c") "l" "r";
  Builder.position_at_end b l;
  Builder.br b "join";
  Builder.position_at_end b r;
  Builder.br b "join";
  Builder.position_at_end b join;
  Builder.ret b None;
  let f = Vmodule.find_func_exn m "f" in
  let dt = Analysis.Domtree.compute f in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all
       (fun x -> Analysis.Domtree.dominates dt "entry" x)
       [ "entry"; "l"; "r"; "join" ]);
  Alcotest.(check bool) "l does not dominate join" false
    (Analysis.Domtree.dominates dt "l" "join");
  check Alcotest.(option string) "idom(join) = entry" (Some "entry")
    (Analysis.Domtree.idom_of dt "join");
  check Alcotest.(option string) "idom(l) = entry" (Some "entry")
    (Analysis.Domtree.idom_of dt "l");
  (* dominance frontier: DF(l) = DF(r) = {join} *)
  let df = Analysis.Domtree.dominance_frontier dt in
  check Alcotest.(list string) "DF(l)" [ "join" ] (List.assoc "l" df);
  check Alcotest.(list string) "DF(r)" [ "join" ] (List.assoc "r" df)

let test_domtree_back_edges () =
  let m = Ir_samples.scale_add_module () in
  let f = Vmodule.find_func_exn m "scale_add" in
  let dt = Analysis.Domtree.compute f in
  check
    Alcotest.(list (pair string string))
    "one back edge to the loop header"
    [ ("body", "loop") ]
    (Analysis.Domtree.back_edges dt)

(* ---------------- Loops ---------------- *)

let test_loops_scale_add () =
  let m = Ir_samples.scale_add_module () in
  let f = Vmodule.find_func_exn m "scale_add" in
  match Analysis.Loops.find f with
  | [ l ] ->
    check Alcotest.string "header" "loop" l.Analysis.Loops.l_header;
    check Alcotest.string "latch" "body" l.Analysis.Loops.l_latch;
    Alcotest.(check bool) "blocks include header and latch" true
      (List.mem "loop" l.Analysis.Loops.l_blocks
      && List.mem "body" l.Analysis.Loops.l_blocks);
    check Alcotest.int "depth 1" 1 l.Analysis.Loops.l_depth
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_loops_foreach_detection () =
  let src =
    "export void f(uniform float a[], uniform int n) { for (uniform int \
     t = 0; t < 3; t += 1) { foreach (i = 0 ... n) { a[i] = a[i] + 1.0; \
     } } }"
  in
  let m = Minispc.Driver.compile Target.Avx src in
  let f = Vmodule.find_func_exn m "f" in
  let all = Analysis.Loops.find f in
  let fe = Analysis.Loops.foreach_loops f in
  check Alcotest.int "two loops total" 2 (List.length all);
  check Alcotest.int "one foreach loop" 1 (List.length fe);
  (* foreach is nested inside the uniform for: depth 2 *)
  check Alcotest.int "foreach depth" 2
    (List.hd fe).Analysis.Loops.l_depth

let () =
  Alcotest.run "passes"
    [
      ( "dce",
        [
          Alcotest.test_case "removes dead chain" `Quick
            test_dce_removes_dead_chain;
          Alcotest.test_case "keeps effectful code" `Quick
            test_dce_keeps_effects;
          Alcotest.test_case "removes dead phi cycle" `Quick
            test_dce_removes_dead_phi_cycle;
          Alcotest.test_case "removes dead loads" `Quick
            test_dce_removes_dead_maskload;
        ] );
      ( "constfold",
        [
          Alcotest.test_case "folds arithmetic chains" `Quick
            test_constfold_arith;
          Alcotest.test_case "keeps trapping division" `Quick
            test_constfold_skips_trapping_div;
          Alcotest.test_case "folds vector ops" `Quick
            test_constfold_vector_ops;
          Alcotest.test_case "preserves all benchmarks" `Slow
            test_constfold_preserves_benchmarks;
          Alcotest.test_case "rejects bad shuffle mask" `Quick
            test_constfold_shuffle_bad_mask;
          Alcotest.test_case "fold counts pinned" `Quick
            test_constfold_fold_counts_pinned;
          Alcotest.test_case "replace_uses honours except" `Quick
            test_replace_uses_except;
        ] );
      ( "domtree",
        [
          Alcotest.test_case "diamond" `Quick test_domtree_diamond;
          Alcotest.test_case "back edges" `Quick test_domtree_back_edges;
        ] );
      ( "loops",
        [
          Alcotest.test_case "scale_add" `Quick test_loops_scale_add;
          Alcotest.test_case "foreach + nesting" `Quick
            test_loops_foreach_detection;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_constfold_equivalent ] );
    ]

(* Tests for the telemetry layer: the dependency-free JSON
   encoder/parser, the trace schema, sequential-vs-parallel trace
   byte-identity, and replaying a trace back into campaign results. *)

open Vulfi

let check = Alcotest.check

(* ---------------- helpers ---------------- *)

let vcopy_src =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int \
   n) { foreach (i = 0 ... n) { a2[i] = a1[i]; } }"

let vcopy_workload lengths =
  {
    Workload.w_name = "vcopy";
    w_fn = "vcopy_ispc";
    w_out_tolerance = 0.0;
    w_inputs = List.length lengths;
    w_build = (fun target -> Minispc.Driver.compile target vcopy_src);
    w_setup =
      (fun ~input st ->
        let n = List.nth lengths input in
        let mem = Interp.Machine.memory st in
        let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
        let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
        Interp.Memory.write_i32_array mem a1
          (Array.init n (fun i -> (i * 37) - 11));
        ( [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
            Interp.Vvalue.of_i32 n ],
          fun () ->
            {
              Outcome.empty_output with
              Outcome.o_i32 = [ Interp.Memory.read_i32_array mem a2 n ];
            } ));
  }

let tiny_config =
  {
    Campaign.experiments_per_campaign = 10;
    min_campaigns = 3;
    max_campaigns = 4;
    margin_target = 1.0;
    seed = 99;
  }

(* Run a traced sequential campaign; return (result, trace text). *)
let traced_run ?(timings = false) cfg w target category =
  let buf = Buffer.create 4096 in
  let sink = Trace.to_buffer ~timings buf in
  let r = Campaign.run ~sink cfg w target category in
  Trace.close sink;
  (r, Buffer.contents buf)

let parse_trace text =
  List.filter_map
    (fun line -> if line = "" then None else Some (Json.of_string line))
    (String.split_on_char '\n' text)

(* ---------------- Json: encoding ---------------- *)

let test_json_to_string () =
  check Alcotest.string "null" "null" (Json.to_string Json.Null);
  check Alcotest.string "true" "true" (Json.to_string (Json.Bool true));
  check Alcotest.string "int" "-42" (Json.to_string (Json.Int (-42)));
  check Alcotest.string "float" "1.5" (Json.to_string (Json.Float 1.5));
  check Alcotest.string "integral float keeps point" "3.0"
    (Json.to_string (Json.Float 3.0));
  check Alcotest.string "string escapes" "\"a\\\"b\\\\c\\n\\u0001\""
    (Json.to_string (Json.String "a\"b\\c\n\001"));
  check Alcotest.string "list" "[1,\"x\",null]"
    (Json.to_string (Json.List [ Json.Int 1; Json.String "x"; Json.Null ]));
  check Alcotest.string "object" "{\"a\":1,\"b\":[true]}"
    (Json.to_string
       (Json.Obj
          [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true ]) ]))

(* Every float must survive print -> parse exactly (the trace
   byte-identity and replay guarantees both rest on this). *)
let test_json_float_round_trip () =
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Json.Float f' ->
        Alcotest.(check bool)
          (Printf.sprintf "%h round-trips" f)
          true (f = f')
      | _ -> Alcotest.fail "float did not parse back as a float")
    [
      0.0; 1.5; -1.5; 0.1; 1.0 /. 3.0; 1e-300; 1e300; 4.9e-324;
      0.30000000000000004; 1234567890.123456;
    ]

let test_json_round_trip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "hi \"there\"\tok");
        ("i", Json.Int 123);
        ("f", Json.Float 0.1);
        ("n", Json.Null);
        ("b", Json.Bool false);
        ("l", Json.List [ Json.Int 1; Json.Obj [ ("x", Json.Null) ] ]);
      ]
  in
  Alcotest.(check bool) "round-trips structurally" true
    (Json.of_string (Json.to_string j) = j)

(* ---------------- Json: parsing ---------------- *)

let test_json_parse_extras () =
  Alcotest.(check bool) "whitespace tolerated" true
    (Json.of_string "  { \"a\" : [ 1 , 2 ] }  "
    = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
  Alcotest.(check bool) "unicode escape" true
    (Json.of_string "\"\\u0041\\u00e9\"" = Json.String "A\xc3\xa9");
  Alcotest.(check bool) "surrogate pair" true
    (Json.of_string "\"\\ud83d\\ude00\"" = Json.String "\xf0\x9f\x98\x80");
  Alcotest.(check bool) "exponent is a float" true
    (Json.of_string "1e2" = Json.Float 100.0);
  Alcotest.(check bool) "plain integer stays an int" true
    (Json.of_string "-7" = Json.Int (-7))

let test_json_parse_errors () =
  List.iter
    (fun src ->
      match Json.of_string src with
      | exception Json.Parse_error _ -> ()
      | j ->
        Alcotest.fail
          (Printf.sprintf "%S parsed as %s" src (Json.to_string j)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "nul" ]

(* ---------------- trace schema ---------------- *)

let test_trace_schema () =
  let w = vcopy_workload [ 8; 19 ] in
  let _, text =
    traced_run tiny_config w Vir.Target.Avx Analysis.Sites.Pure_data
  in
  let records = parse_trace text in
  (match records with
  | header :: _ ->
    Alcotest.(check bool) "header first" true
      (Json.member "type" header = Some (Json.String "header"));
    Alcotest.(check bool) "schema stamped" true
      (Json.member "schema" header = Some (Json.String Trace.schema))
  | [] -> Alcotest.fail "empty trace");
  let experiments =
    List.filter
      (fun j -> Json.member "type" j = Some (Json.String "experiment"))
      records
  in
  let summaries =
    List.filter
      (fun j -> Json.member "type" j = Some (Json.String "summary"))
      records
  in
  check Alcotest.int "one summary" 1 (List.length summaries);
  Alcotest.(check bool) "experiments present" true (experiments <> []);
  (* every experiment record carries the full field set *)
  List.iter
    (fun j ->
      List.iter
        (fun field ->
          Alcotest.(check bool)
            (Printf.sprintf "field %S present" field)
            true
            (Json.member field j <> None))
        [
          "workload"; "target"; "category"; "campaign"; "experiment";
          "input"; "golden_sites"; "outcome"; "static_site"; "dynamic_site";
          "bit"; "detected"; "dyn_instrs";
        ];
      (* deterministic trace: no wall times *)
      Alcotest.(check bool) "no wall_s by default" true
        (Json.member "wall_s" j = None))
    experiments;
  (* experiment records arrive in (campaign, experiment) order *)
  let keys =
    List.map
      (fun j ->
        match (Json.member "campaign" j, Json.member "experiment" j) with
        | Some (Json.Int c), Some (Json.Int e) -> (c, e)
        | _ -> Alcotest.fail "campaign/experiment missing")
      experiments
  in
  Alcotest.(check bool) "records ordered" true (List.sort compare keys = keys)

let test_trace_timings_adds_wall () =
  let w = vcopy_workload [ 8 ] in
  let _, text =
    traced_run ~timings:true tiny_config w Vir.Target.Avx
      Analysis.Sites.Pure_data
  in
  List.iter
    (fun j ->
      if Json.member "type" j = Some (Json.String "experiment") then
        match Json.member "wall_s" j with
        | Some (Json.Float f) ->
          Alcotest.(check bool) "wall time non-negative" true (f >= 0.0)
        | Some (Json.Int _) | Some Json.Null -> ()
        | _ -> Alcotest.fail "wall_s missing with timings on")
    (parse_trace text)

(* The headline determinism guarantee: a parallel run's trace is
   byte-identical to the sequential run's. *)
let test_trace_parallel_byte_identical () =
  let w = vcopy_workload [ 8; 19 ] in
  let _, seq_text =
    traced_run tiny_config w Vir.Target.Avx Analysis.Sites.Control
  in
  let buf = Buffer.create 4096 in
  let sink = Trace.to_buffer buf in
  let _ =
    Campaign.run_parallel ~sink ~jobs:4 tiny_config w Vir.Target.Avx
      Analysis.Sites.Control
  in
  Trace.close sink;
  check Alcotest.string "trace bytes identical" seq_text
    (Buffer.contents buf)

(* ---------------- replay ---------------- *)

let test_replay_matches_live () =
  let w = vcopy_workload [ 8; 19 ] in
  List.iter
    (fun category ->
      let live, text =
        traced_run tiny_config w Vir.Target.Avx category
      in
      match Report.replay_of_trace (parse_trace text) with
      | Error msg -> Alcotest.fail msg
      | Ok [ rp ] ->
        let r = rp.Report.rp_result in
        (* the replayed cell reproduces the live rows byte-for-byte *)
        check Alcotest.string "fig11 row identical"
          (Report.fig11_row live) (Report.fig11_row r);
        check Alcotest.string "fig12 row identical"
          (Report.fig12_row live) (Report.fig12_row r);
        Alcotest.(check bool) "full result equal" true (live = r);
        Alcotest.(check bool) "summary cross-check passed" true
          (rp.Report.rp_summary = `Match);
        Alcotest.(check bool) "no detectors recorded" false
          rp.Report.rp_detectors
      | Ok l ->
        Alcotest.fail (Printf.sprintf "expected 1 cell, got %d"
                         (List.length l)))
    Analysis.Sites.all_categories

let test_replay_rejects_bad_traces () =
  let exp j = Json.member "type" j = Some (Json.String "experiment") in
  let w = vcopy_workload [ 8 ] in
  let _, text =
    traced_run tiny_config w Vir.Target.Avx Analysis.Sites.Pure_data
  in
  let records = parse_trace text in
  let is_err = function Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty trace rejected" true
    (is_err (Report.replay_of_trace []));
  Alcotest.(check bool) "missing header rejected" true
    (is_err (Report.replay_of_trace (List.tl records)));
  Alcotest.(check bool) "wrong schema rejected" true
    (is_err
       (Report.replay_of_trace
          (Json.Obj
             [
               ("type", Json.String "header");
               ("schema", Json.String "not-a-vulfi-trace");
             ]
          :: List.tl records)));
  (* corrupt one experiment record's outcome *)
  let corrupted =
    List.map
      (fun j ->
        if exp j then
          match j with
          | Json.Obj fields ->
            Json.Obj
              (List.map
                 (fun (k, v) ->
                   if k = "outcome" then (k, Json.String "mystery")
                   else (k, v))
                 fields)
          | _ -> j
        else j)
      records
  in
  Alcotest.(check bool) "unknown outcome rejected" true
    (is_err (Report.replay_of_trace corrupted))

(* Older traces must keep replaying: a v3 trace (no pruning counters in
   the summary), a v2 trace (no fast-forward counters either) and a v1
   trace (no golden counters either) are all accepted, with the missing
   counters defaulting to zero and everything the version does carry
   still adopted. *)
let test_replay_accepts_older_schemas () =
  let w = vcopy_workload [ 8 ] in
  let live, text =
    traced_run tiny_config w Vir.Target.Avx Analysis.Sites.Pure_data
  in
  let records = parse_trace text in
  let strip_fields drop = function
    | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> not (List.mem k drop)) fields)
    | j -> j
  in
  let downgrade schema drop =
    Json.Obj [ ("type", Json.String "header"); ("schema", Json.String schema) ]
    :: List.map (strip_fields drop) (List.tl records)
  in
  let check_downgraded ?(keeps_ff = false) name trace =
    match Report.replay_of_trace trace with
    | Error msg -> Alcotest.fail (name ^ ": " ^ msg)
    | Ok [ rp ] ->
      let r = rp.Report.rp_result in
      check Alcotest.string (name ^ ": fig11 row identical")
        (Report.fig11_row live) (Report.fig11_row r);
      Alcotest.(check bool)
        (name ^ ": summary cross-check passed")
        true
        (rp.Report.rp_summary = `Match);
      check Alcotest.int (name ^ ": prune counters default to 0") 0
        (r.Campaign.c_pruned + r.Campaign.c_prune_checks);
      if keeps_ff then begin
        check Alcotest.int (name ^ ": ff counters survive")
          live.Campaign.c_checkpoints r.Campaign.c_checkpoints;
        check Alcotest.int (name ^ ": ff_resumed survives")
          live.Campaign.c_ff_resumed r.Campaign.c_ff_resumed
      end
      else
        check Alcotest.int (name ^ ": ff counters default to 0") 0
          (r.Campaign.c_checkpoints + r.Campaign.c_ff_resumed)
    | Ok l ->
      Alcotest.fail
        (Printf.sprintf "%s: expected 1 cell, got %d" name (List.length l))
  in
  check_downgraded ~keeps_ff:true "v3"
    (downgrade "vulfi-trace-v3" [ "pruned"; "prune_checks" ]);
  check_downgraded "v2"
    (downgrade "vulfi-trace-v2"
       [ "pruned"; "prune_checks"; "checkpoints"; "ff_resumed" ]);
  check_downgraded "v1"
    (downgrade "vulfi-trace-v1"
       [
         "pruned"; "prune_checks"; "checkpoints"; "ff_resumed";
         "golden_runs"; "golden_reused";
       ])

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [
          Alcotest.test_case "to_string" `Quick test_json_to_string;
          Alcotest.test_case "float round-trip" `Quick
            test_json_float_round_trip;
          Alcotest.test_case "structural round-trip" `Quick
            test_json_round_trip;
          Alcotest.test_case "parse extras" `Quick test_json_parse_extras;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "schema" `Quick test_trace_schema;
          Alcotest.test_case "timings add wall_s" `Quick
            test_trace_timings_adds_wall;
          Alcotest.test_case "parallel trace byte-identical" `Quick
            test_trace_parallel_byte_identical;
        ] );
      ( "replay",
        [
          Alcotest.test_case "matches live result" `Quick
            test_replay_matches_live;
          Alcotest.test_case "rejects bad traces" `Quick
            test_replay_rejects_bad_traces;
          Alcotest.test_case "accepts older schemas" `Quick
            test_replay_accepts_older_schemas;
        ] );
    ]

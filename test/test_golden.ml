(* Golden-output regression: a 64-bit digest of every benchmark's
   fault-free output (all nine Table I programs plus the three micro
   benchmarks) at a fixed input, on both targets, together with the
   dynamic instruction and vector-instruction counts. Any semantic
   drift in the interpreter — evaluation order, rounding, lane
   handling, fuel accounting — shows up here as a changed digest.

   The expected values were produced by the closure-threaded
   interpreter and cross-checked bit-identical against the pre-threading
   interpretive dispatcher, so they pin the shared semantics, not one
   implementation. If a digest changes, that is a semantics change and
   needs the same before/after cross-check — do not just refresh the
   number. *)

open Benchmarks

(* FNV-1a-style 64-bit fold; mixes array lengths so layout changes
   cannot alias with content changes. *)
let mix h x = Int64.mul (Int64.logxor h x) 0x100000001b3L

let digest (out : Vulfi.Outcome.output) ~dyn ~dynv =
  let h = ref 0xcbf29ce484222325L in
  let add x = h := mix !h x in
  List.iter
    (fun a ->
      add (Int64.of_int (Array.length a));
      Array.iter (fun f -> add (Int64.bits_of_float f)) a)
    out.Vulfi.Outcome.o_f32;
  List.iter
    (fun a ->
      add (Int64.of_int (Array.length a));
      Array.iter (fun i -> add (Int64.of_int i)) a)
    out.Vulfi.Outcome.o_i32;
  (match out.Vulfi.Outcome.o_ret with
  | None -> add 1L
  | Some (Interp.Vvalue.I (_, l)) -> Array.iter add (Interp.Ilanes.to_array l)
  | Some (Interp.Vvalue.F (_, l)) ->
    Array.iter (fun f -> add (Int64.bits_of_float f)) l);
  add (Int64.of_int dyn);
  add (Int64.of_int dynv);
  !h

let golden_run (b : Harness.benchmark) ~target ~input =
  let w = b.Harness.bench in
  let m = w.Vulfi.Workload.w_build target in
  let st = Interp.Machine.create (Interp.Compile.compile_module m) in
  let args, read = w.Vulfi.Workload.w_setup ~input st in
  ignore (Interp.Machine.run st w.Vulfi.Workload.w_fn args);
  digest (read ()) ~dyn:(Interp.Machine.dyn_count st)
    ~dynv:(Interp.Machine.dyn_vector_count st)

(* (name, target, digest) at input 0. Regenerate with
   GOLDEN_PRINT=1 dune exec test/test_golden.exe — but see the header:
   a changed digest is a semantics change, not a refresh. *)
let expected : (string * string * int64) list =
  [
    ("Fluidanimate", "AVX", 0x3529b08bd517a969L);
    ("Fluidanimate", "SSE", 0x79d7fc8c0f935bd3L);
    ("Swaptions", "AVX", 0x279b79b608036dbaL);
    ("Swaptions", "SSE", 0xe2f8a070c02fb97bL);
    ("Blackscholes", "AVX", 0x3cde1bf618aeba1bL);
    ("Blackscholes", "SSE", 0x25a34bf604efc1c8L);
    ("Sorting", "AVX", 0x78e26a1ec228fd08L);
    ("Sorting", "SSE", 0x190d461e70c35459L);
    ("Stencil", "AVX", 0x3002547bc05f3137L);
    ("Stencil", "SSE", 0x2cac47b99f9d957L);
    ("Raytracing", "AVX", 0x397d118d8a81373aL);
    ("Raytracing", "SSE", 0x6227f88cd3a08d9aL);
    ("Chebyshev", "AVX", 0xd9d9ebcef10fe207L);
    ("Chebyshev", "SSE", 0xdbd46ecef2be57c3L);
    ("Jacobi", "AVX", 0xfd426d2aed973687L);
    ("Jacobi", "SSE", 0xba4de52ab4c103e7L);
    ("ConjugateGradient", "AVX", 0x597e422a9528e405L);
    ("ConjugateGradient", "SSE", 0x577995c3558f259L);
    ("vector copy", "AVX", 0xd724ff5d332a286dL);
    ("vector copy", "SSE", 0xd856ec5d342e21baL);
    ("dot product", "AVX", 0x1c06caa00ac5bab5L);
    ("dot product", "SSE", 0x2100a2a00eff83aeL);
    ("vector sum", "AVX", 0x7c19c7824b363ac4L);
    ("vector sum", "SSE", 0x71ae87f02b83b259L);
  ]

let print_mode = Sys.getenv_opt "GOLDEN_PRINT" = Some "1"

let test_digests () =
  List.iter
    (fun (b : Harness.benchmark) ->
      List.iter
        (fun target ->
          let name = b.Harness.bench.Vulfi.Workload.w_name in
          let tname = Vir.Target.name target in
          let d = golden_run b ~target ~input:0 in
          if print_mode then
            Printf.eprintf "    (%S, %S, 0x%LxL);\n" name tname d
          else
            match
              List.find_opt
                (fun (n, t, _) -> n = name && t = tname)
                expected
            with
            | Some (_, _, e) ->
              Alcotest.check Alcotest.int64
                (Printf.sprintf "%s on %s" name tname)
                e d
            | None ->
              Alcotest.failf "no golden digest recorded for %s on %s" name
                tname)
        Vir.Target.all)
    Registry.all

let () =
  if print_mode then test_digests ()
  else
    Alcotest.run "golden"
      [ ("digests", [ Alcotest.test_case "all benchmarks" `Quick test_digests ]) ]

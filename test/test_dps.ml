(* Tests for the destination-passing (pinned-buffer) interpreter: the
   three aliasing hazards the buffer discipline must survive —

   - a phi swap cycle across a loop back edge (parallel-copy semantics:
     naive in-order copies would collapse the two registers);
   - values escaping the register file (the injection record must be a
     snapshot, not an alias the continuing run overwrites);
   - shared constant buffers ([Cimm] values live in the compiled module
     and are shared by every machine — an injected flip must never leak
     into them);

   plus a differential property running random *vector* programs through
   the DPS kernels against the exposed lane evaluators (test_threaded
   covers the scalar chains). *)

open Vir
open Interp

let check = Alcotest.check

(* ---------------- phi parallel copy ---------------- *)

(* a and b swap on every back edge; with pinned buffers a sequential
   copy would make both registers equal after the first iteration. The
   loop runs [iters - 1] back edges, so the result alternates. *)
let swap_module () =
  let m = Vmodule.create "swap" in
  let b =
    Builder.define m ~name:"go" ~params:[ ("iters", Vtype.i32) ]
      ~ret_ty:Vtype.i32
  in
  let entry = Builder.new_block b "entry" in
  let loop = Builder.new_block b "loop" in
  let exit = Builder.new_block b "exit" in
  Builder.position_at_end b entry;
  Builder.br b "loop";
  Builder.position_at_end b loop;
  let a = Builder.phi b Vtype.i32 [ ("entry", Ir_samples.imm_i32 1) ] in
  let bv = Builder.phi b Vtype.i32 [ ("entry", Ir_samples.imm_i32 2) ] in
  let n = Builder.phi b Vtype.i32 [ ("entry", Ir_samples.imm_i32 0) ] in
  let n1 = Builder.add b n (Ir_samples.imm_i32 1) in
  let c = Builder.icmp b Instr.Islt n1 (Builder.param b "iters") in
  Builder.condbr b c "loop" "exit";
  (match (a, bv, n) with
  | Instr.Reg (ra, _), Instr.Reg (rb, _), Instr.Reg (rn, _) ->
    Builder.add_phi_incoming b ra ~from:"loop" ~value:bv;
    Builder.add_phi_incoming b rb ~from:"loop" ~value:a;
    Builder.add_phi_incoming b rn ~from:"loop" ~value:n1
  | _ -> assert false);
  Builder.position_at_end b exit;
  let t = Builder.mul b a (Ir_samples.imm_i32 10) in
  let r = Builder.add b t bv in
  Builder.ret b (Some r);
  Verify.check_module m;
  m

let test_phi_swap () =
  let st = Machine.create (Compile.compile_module (swap_module ())) in
  let run iters =
    Machine.reset st;
    match Machine.run st "go" [ Vvalue.of_i32 iters ] with
    | Some v -> Int64.to_int (Vvalue.as_int v)
    | None -> Alcotest.fail "expected value"
  in
  (* iters=1: no back edge, (a,b) = (1,2) *)
  check Alcotest.int "0 swaps" 12 (run 1);
  check Alcotest.int "1 swap" 21 (run 2);
  check Alcotest.int "4 swaps" 12 (run 5);
  check Alcotest.int "5 swaps" 21 (run 6)

(* ---------------- vector differential property ---------------- *)

(* Random vector chains through the DPS kernels (including the
   broadcast lowering: insertelement + shufflevector) versus a per-lane
   fold of the exposed lane evaluators. Both sides either produce the
   same lanes bit-for-bit or trap identically. *)

let int_ops =
  [
    Instr.Add; Instr.Sub; Instr.Mul; Instr.Sdiv; Instr.Srem; Instr.Udiv;
    Instr.Urem; Instr.And; Instr.Or; Instr.Xor; Instr.Shl; Instr.Lshr;
    Instr.Ashr;
  ]

let float_ops = [ Instr.Fadd; Instr.Fsub; Instr.Fmul; Instr.Fdiv ]

let vec_chain_module ~vty ~mk_imm ~emit ops =
  let m = Vmodule.create "vchain" in
  let b = Builder.define m ~name:"go" ~params:[ ("v", vty) ] ~ret_ty:vty in
  let e = Builder.new_block b "entry" in
  Builder.position_at_end b e;
  let lanes = Vtype.lanes vty in
  let acc =
    List.fold_left
      (fun acc (k, c) -> emit b k acc (Builder.broadcast b (mk_imm c) lanes))
      (Builder.param b "v") ops
  in
  Builder.ret b (Some acc);
  Verify.check_module m;
  m

let outcome f = try Ok (f ()) with Trap.Trap t -> Error t

let prop_vec_int_chain =
  QCheck.Test.make ~name:"DPS vector kernels match lane evaluator (i32x4)"
    ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.return 4) int)
        (small_list (pair (oneofl int_ops) (int_range (-100) 100))))
    (fun (xs, ops) ->
      let m =
        vec_chain_module
          ~vty:(Vtype.vector 4 Vtype.I32)
          ~mk_imm:Ir_samples.imm_i32
          ~emit:(fun b k x y -> Builder.ibinop b k x y)
          ops
      in
      let lanes0 =
        Array.of_list
          (List.map (fun x -> Bits.truncate Vtype.I32 (Int64.of_int x)) xs)
      in
      let vm =
        outcome (fun () ->
            let st = Machine.create (Compile.compile_module m) in
            match
              Machine.run st "go"
                [ Vvalue.I (Vtype.I32, Interp.Ilanes.of_array lanes0) ]
            with
            | Some v -> List.init 4 (Vvalue.int_lane v)
            | None -> Alcotest.fail "expected value")
      in
      let reference =
        outcome (fun () ->
            List.init 4 (fun j ->
                List.fold_left
                  (fun acc (k, c) ->
                    Machine.eval_ibinop_lane k Vtype.I32 acc
                      (Bits.truncate Vtype.I32 (Int64.of_int c)))
                  lanes0.(j) ops))
      in
      vm = reference)

let prop_vec_float_chain =
  QCheck.Test.make ~name:"DPS vector kernels match lane evaluator (f32x8)"
    ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.return 8) (float_range (-1e6) 1e6))
        (small_list (pair (oneofl float_ops) (float_range (-1e3) 1e3))))
    (fun (xs, ops) ->
      let m =
        vec_chain_module
          ~vty:(Vtype.vector 8 Vtype.F32)
          ~mk_imm:Ir_samples.imm_f32
          ~emit:(fun b k x y -> Builder.fbinop b k x y)
          ops
      in
      let r32 x = Int32.float_of_bits (Int32.bits_of_float x) in
      let lanes0 = Array.of_list (List.map r32 xs) in
      let vm =
        let st = Machine.create (Compile.compile_module m) in
        match Machine.run st "go" [ Vvalue.F (Vtype.F32, lanes0) ] with
        | Some v ->
          List.init 8 (fun j -> Int64.bits_of_float (Vvalue.float_lane v j))
        | None -> Alcotest.fail "expected value"
      in
      let reference =
        List.init 8 (fun j ->
            Int64.bits_of_float
              (List.fold_left
                 (fun acc (k, c) ->
                   Machine.eval_fbinop_lane k Vtype.F32 acc (r32 c))
                 lanes0.(j) ops))
      in
      vm = reference)

(* ---------------- escaped values: the injection record ---------------- *)

let vcopy_src =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int \
   n) { foreach (i = 0 ... n) { a2[i] = a1[i]; } }"

let vcopy_workload lengths =
  {
    Vulfi.Workload.w_name = "vcopy";
    w_fn = "vcopy_ispc";
    w_out_tolerance = 0.0;
    w_inputs = List.length lengths;
    w_build = (fun target -> Minispc.Driver.compile target vcopy_src);
    w_setup =
      (fun ~input st ->
        let n = List.nth lengths input in
        let mem = Machine.memory st in
        let a1 = Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
        let a2 = Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
        Memory.write_i32_array mem a1 (Array.init n (fun i -> (i * 37) - 11));
        ( [ Vvalue.of_ptr a1; Vvalue.of_ptr a2; Vvalue.of_i32 n ],
          fun () ->
            {
              Vulfi.Outcome.empty_output with
              Vulfi.Outcome.o_i32 = [ Memory.read_i32_array mem a2 n ];
            } ));
  }

(* The injected value is handed to the runtime as a borrowed alias of a
   register buffer the continuing run keeps rewriting. The record's
   before/after snapshots must still satisfy the single-bit-flip
   relation once the run has finished — if either were an alias it
   would have been overwritten by later instructions. *)
let check_flip_relation what (r : Vulfi.Experiment.run_result) =
  match r.Vulfi.Experiment.r_injection with
  | None -> ()
  | Some inj ->
    let open Vulfi.Runtime in
    Alcotest.(check bool)
      (Printf.sprintf "%s: after = flip(before, bit %d)" what inj.inj_bit)
      true
      (Vvalue.equal inj.inj_after
         (Vvalue.flip_bit inj.inj_before ~lane:0 ~bit:inj.inj_bit));
    Alcotest.(check bool)
      (what ^ ": injection changed the value")
      false
      (Vvalue.equal inj.inj_before inj.inj_after)

let test_injection_record_snapshot () =
  let w = vcopy_workload [ 23 ] in
  let p =
    Vulfi.Experiment.prepare w Target.Avx Analysis.Sites.Pure_data
  in
  let g = Vulfi.Experiment.golden_run p ~input:0 in
  Alcotest.(check bool) "sites exist" true (g.Vulfi.Experiment.g_dyn_sites > 0);
  let pi = Vulfi.Experiment.prepare_input p ~input:0 in
  for site = 1 to min 25 g.Vulfi.Experiment.g_dyn_sites do
    check_flip_relation
      (Printf.sprintf "site %d (rebuild)" site)
      (Vulfi.Experiment.faulty_run p ~golden:g ~dynamic_site:site ~seed:site);
    check_flip_relation
      (Printf.sprintf "site %d (checkpointed)" site)
      (Vulfi.Experiment.faulty_run_checkpointed p ~pi ~dynamic_site:site
         ~seed:site)
  done

(* ---------------- constant buffers stay immutable ---------------- *)

(* [Cimm] values live in the compiled module and are shared by every
   machine built from it. Interleave faulty runs (across every fault
   kind, so every corruption path runs) with golden runs on the same
   compiled module: if any injection leaked into a shared constant
   buffer, the second golden run would diverge. *)
let test_constants_survive_injection () =
  let w = vcopy_workload [ 19 ] in
  let p =
    Vulfi.Experiment.prepare w Target.Avx Analysis.Sites.Pure_data
  in
  let g1 = Vulfi.Experiment.golden_run p ~input:0 in
  let kinds =
    [
      Vulfi.Runtime.Single_bit_flip;
      Vulfi.Runtime.Multi_bit_flip 3;
      Vulfi.Runtime.Random_value;
      Vulfi.Runtime.Stuck_at_zero;
    ]
  in
  List.iteri
    (fun ki fault_kind ->
      for site = 1 to min 10 g1.Vulfi.Experiment.g_dyn_sites do
        ignore
          (Vulfi.Experiment.faulty_run ~fault_kind p ~golden:g1
             ~dynamic_site:site
             ~seed:((ki * 100) + site))
      done)
    kinds;
  let g2 = Vulfi.Experiment.golden_run p ~input:0 in
  Alcotest.(check bool)
    "golden output identical after injections" true
    (g1.Vulfi.Experiment.g_output = g2.Vulfi.Experiment.g_output);
  check Alcotest.int "dynamic sites identical"
    g1.Vulfi.Experiment.g_dyn_sites g2.Vulfi.Experiment.g_dyn_sites;
  check Alcotest.int "dynamic instructions identical"
    g1.Vulfi.Experiment.g_dyn_instrs g2.Vulfi.Experiment.g_dyn_instrs

let () =
  Alcotest.run "dps"
    [
      ( "phi",
        [ Alcotest.test_case "swap cycle across back edge" `Quick
            test_phi_swap ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_vec_int_chain;
          QCheck_alcotest.to_alcotest prop_vec_float_chain;
        ] );
      ( "escapes",
        [
          Alcotest.test_case "injection record is a snapshot" `Quick
            test_injection_record_snapshot;
        ] );
      ( "constants",
        [
          Alcotest.test_case "shared constants survive injection" `Quick
            test_constants_survive_injection;
        ] );
    ]

(* Reference SPMD evaluator over the mini-ISPC AST.

   Mirrors the language semantics directly — chunked foreach execution
   (Vl lanes per step plus a masked tail), select-blended assignment
   under divergence — while reusing the interpreter's lane arithmetic
   (Interp.Bits, Machine eval functions) so scalar semantics cannot drift.
   What it does NOT share with the production path is the lowering:
   no VIR, no codegen, no passes. Differential fuzzing compares this
   evaluator against compiled execution on both targets. *)

open Minispc

type rvalue =
  | Ui of int64  (* uniform int, I32-normalised *)
  | Uf of float  (* uniform float, f32-rounded *)
  | Ub of bool
  | Vi of int64 array
  | Vf of float array
  | Vb of bool array

type arr = Farr of float array | Iarr of int array

type env = {
  vl : int;
  vars : (string, rvalue) Hashtbl.t;
  arrays : (string, arr) Hashtbl.t;
}

exception Unsupported of string

exception Break_exc

exception Continue_exc

let r32 = Interp.Bits.round_float Vir.Vtype.F32

let t32 = Interp.Bits.truncate Vir.Vtype.I32

let splat env v =
  match v with
  | Ui x -> Vi (Array.make env.vl x)
  | Uf x -> Vf (Array.make env.vl x)
  | Ub x -> Vb (Array.make env.vl x)
  | Vi _ | Vf _ | Vb _ -> v

let ibin k a b = Interp.Machine.eval_ibinop_lane k Vir.Vtype.I32 a b

let fbin k a b = Interp.Machine.eval_fbinop_lane k Vir.Vtype.F32 a b

let map2v f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let rec eval env (mask : bool array option) (e : Ast.expr) : rvalue =
  match e.Ast.e with
  | Ast.Int_lit n -> Ui (t32 (Int64.of_int n))
  | Ast.Float_lit x -> Uf (r32 x)
  | Ast.Bool_lit b -> Ub b
  | Ast.Var x -> (
    match Hashtbl.find_opt env.vars x with
    | Some v -> v
    | None -> raise (Unsupported ("unbound " ^ x)))
  | Ast.Index (a, ix) -> (
    let arr =
      match Hashtbl.find_opt env.arrays a with
      | Some arr -> arr
      | None -> raise (Unsupported ("unbound array " ^ a))
    in
    match eval env mask ix with
    | Ui i -> (
      let i = Int64.to_int i in
      match arr with
      | Farr f -> Uf f.(i)
      | Iarr f -> Ui (Int64.of_int f.(i)))
    | Vi ixs -> (
      (* lane-wise load; masked-off lanes read as 0 like maskload *)
      let live l =
        match mask with None -> true | Some m -> m.(l)
      in
      match arr with
      | Farr f ->
        Vf
          (Array.init env.vl (fun l ->
               if live l then f.(Int64.to_int ixs.(l)) else 0.0))
      | Iarr f ->
        Vi
          (Array.init env.vl (fun l ->
               if live l then Int64.of_int f.(Int64.to_int ixs.(l)) else 0L)))
    | _ -> raise (Unsupported "index type"))
  | Ast.Unop (Ast.Neg, a) -> (
    match eval env mask a with
    | Ui x -> Ui (ibin Vir.Instr.Sub 0L x)
    | Uf x -> Uf (fbin Vir.Instr.Fsub (-0.0) x)
    | Vi x -> Vi (Array.map (fun v -> ibin Vir.Instr.Sub 0L v) x)
    | Vf x -> Vf (Array.map (fun v -> fbin Vir.Instr.Fsub (-0.0) v) x)
    | _ -> raise (Unsupported "neg"))
  | Ast.Unop (Ast.Not, a) -> (
    match eval env mask a with
    | Ub x -> Ub (not x)
    | Vb x -> Vb (Array.map not x)
    | _ -> raise (Unsupported "not"))
  | Ast.Binop (op, a, b) -> eval_binop env mask op a b
  | Ast.Cast (Ast.Tfloat, a) -> (
    match eval env mask a with
    | Ui x -> Uf (r32 (Int64.to_float x))
    | Vi x -> Vf (Array.map (fun v -> r32 (Int64.to_float v)) x)
    | (Uf _ | Vf _) as v -> v
    | _ -> raise (Unsupported "cast"))
  | Ast.Cast (Ast.Tint, a) -> (
    let f2i x =
      match Interp.Machine.eval_cast Vir.Instr.Fptosi Vir.Vtype.i32
              (Interp.Vvalue.F (Vir.Vtype.F32, [| x |]))
      with
      | Interp.Vvalue.I (_, v) when Interp.Ilanes.length v = 1 ->
        Interp.Ilanes.unsafe_get v 0
      | _ -> assert false
    in
    match eval env mask a with
    | Uf x -> Ui (f2i x)
    | Vf x -> Vi (Array.map f2i x)
    | (Ui _ | Vi _) as v -> v
    | _ -> raise (Unsupported "cast"))
  | Ast.Cast (Ast.Tbool, _) -> raise (Unsupported "bool cast")
  | Ast.Select (c, a, b) -> (
    let vc = eval env mask c and va = eval env mask a and vb = eval env mask b in
    match vc with
    | Ub true -> va
    | Ub false -> vb
    | Vb cs -> (
      match (splat env va, splat env vb) with
      | Vi xa, Vi xb -> Vi (Array.init env.vl (fun l -> if cs.(l) then xa.(l) else xb.(l)))
      | Vf xa, Vf xb -> Vf (Array.init env.vl (fun l -> if cs.(l) then xa.(l) else xb.(l)))
      | Vb xa, Vb xb -> Vb (Array.init env.vl (fun l -> if cs.(l) then xa.(l) else xb.(l)))
      | _ -> raise (Unsupported "select arms"))
    | _ -> raise (Unsupported "select cond"))
  | Ast.Call (name, args) -> eval_call env mask name args

and eval_binop env mask op a b =
  let va = eval env mask a and vb = eval env mask b in
  let vectorish =
    match (va, vb) with
    | (Vi _ | Vf _ | Vb _), _ | _, (Vi _ | Vf _ | Vb _) -> true
    | _ -> false
  in
  let va = if vectorish then splat env va else va in
  let vb = if vectorish then splat env vb else vb in
  let iop k =
    match (va, vb) with
    | Ui x, Ui y -> Ui (ibin k x y)
    | Vi x, Vi y -> Vi (map2v (ibin k) x y)
    | _ -> raise (Unsupported "int binop")
  in
  let fop k =
    match (va, vb) with
    | Uf x, Uf y -> Uf (fbin k x y)
    | Vf x, Vf y -> Vf (map2v (fbin k) x y)
    | _ -> raise (Unsupported "float binop")
  in
  let cmp fi ff =
    match (va, vb) with
    | Ui x, Ui y -> Ub (fi (Int64.compare x y) 0)
    | Uf x, Uf y -> Ub (ff x y)
    | Vi x, Vi y -> Vb (map2v (fun p q -> fi (Int64.compare p q) 0) x y)
    | Vf x, Vf y -> Vb (map2v ff x y)
    | _ -> raise (Unsupported "cmp")
  in
  match op with
  | Ast.Add -> ( match va with Uf _ | Vf _ -> fop Vir.Instr.Fadd | _ -> iop Vir.Instr.Add)
  | Ast.Sub -> ( match va with Uf _ | Vf _ -> fop Vir.Instr.Fsub | _ -> iop Vir.Instr.Sub)
  | Ast.Mul -> ( match va with Uf _ | Vf _ -> fop Vir.Instr.Fmul | _ -> iop Vir.Instr.Mul)
  | Ast.Div -> (
    match va with
    | Uf _ | Vf _ -> fop Vir.Instr.Fdiv
    | _ ->
      (* masked-lane divisor guard, as codegen emits *)
      (match (va, vb, mask) with
      | Vi x, Vi y, Some m ->
        Vi
          (Array.init env.vl (fun l ->
               let d = if m.(l) then y.(l) else 1L in
               ibin Vir.Instr.Sdiv x.(l) d))
      | _ -> iop Vir.Instr.Sdiv))
  | Ast.Mod -> (
    match (va, vb, mask) with
    | Vi x, Vi y, Some m ->
      Vi
        (Array.init env.vl (fun l ->
             let d = if m.(l) then y.(l) else 1L in
             ibin Vir.Instr.Srem x.(l) d))
    | _ -> iop Vir.Instr.Srem)
  | Ast.Band -> iop Vir.Instr.And
  | Ast.Bor -> iop Vir.Instr.Or
  | Ast.Bxor -> iop Vir.Instr.Xor
  | Ast.Shl -> iop Vir.Instr.Shl
  | Ast.Shr -> iop Vir.Instr.Ashr
  | Ast.Lt -> cmp (fun c z -> c < z) (fun x y -> x < y)
  | Ast.Le -> cmp (fun c z -> c <= z) (fun x y -> x <= y)
  | Ast.Gt -> cmp (fun c z -> c > z) (fun x y -> x > y)
  | Ast.Ge -> cmp (fun c z -> c >= z) (fun x y -> x >= y)
  | Ast.Eq -> cmp (fun c z -> c = z) (fun x y -> x = y)
  | Ast.Ne -> cmp (fun c z -> c <> z) (fun x y -> x <> y)
  | Ast.And_and -> (
    match (va, vb) with
    | Ub x, Ub y -> Ub (x && y)
    | Vb x, Vb y -> Vb (map2v ( && ) x y)
    | _ -> raise (Unsupported "&&"))
  | Ast.Or_or -> (
    match (va, vb) with
    | Ub x, Ub y -> Ub (x || y)
    | Vb x, Vb y -> Vb (map2v ( || ) x y)
    | _ -> raise (Unsupported "||"))

and eval_call env mask name args =
  let unary f =
    match args with
    | [ a ] -> (
      match eval env mask a with
      | Uf x -> Uf (r32 (f x))
      | Vf x -> Vf (Array.map (fun v -> r32 (f v)) x)
      | _ -> raise (Unsupported name))
    | _ -> raise (Unsupported name)
  in
  let binary f =
    match args with
    | [ a; b ] -> (
      let va = eval env mask a and vb = eval env mask b in
      let vectorish =
        match (va, vb) with Vf _, _ | _, Vf _ -> true | _ -> false
      in
      let va = if vectorish then splat env va else va in
      let vb = if vectorish then splat env vb else vb in
      match (va, vb) with
      | Uf x, Uf y -> Uf (r32 (f x y))
      | Vf x, Vf y -> Vf (map2v (fun p q -> r32 (f p q)) x y)
      | _ -> raise (Unsupported name))
    | _ -> raise (Unsupported name)
  in
  match name with
  | "sqrt" -> unary sqrt
  | "exp" -> unary exp
  | "log" -> unary log
  | "sin" -> unary sin
  | "cos" -> unary cos
  | "abs" -> unary abs_float
  | "floor" -> unary floor
  | "rsqrt" ->
    (match args with
    | [ a ] -> (
      match eval env mask a with
      | Uf x -> Uf (fbin Vir.Instr.Fdiv 1.0 (r32 (sqrt x)))
      | Vf x -> Vf (Array.map (fun v -> fbin Vir.Instr.Fdiv 1.0 (r32 (sqrt v))) x)
      | _ -> raise (Unsupported name))
    | _ -> raise (Unsupported name))
  | "pow" -> binary ( ** )
  | "min" -> binary min
  | "max" -> binary max
  | "reduce_add" -> (
    match args with
    | [ a ] -> (
      match eval env mask a with
      | Vf x -> Uf (Array.fold_left (fun acc v -> r32 (acc +. v)) 0.0 x)
      | Vi x -> Ui (Array.fold_left (fun acc v -> t32 (Int64.add acc v)) 0L x)
      | Uf x -> Uf x
      | Ui x -> Ui x
      | _ -> raise (Unsupported name))
    | _ -> raise (Unsupported name))
  | "reduce_min" | "reduce_max" -> (
    let pick = if name = "reduce_min" then min else max in
    match args with
    | [ a ] -> (
      match eval env mask a with
      | Vf x -> Uf (Array.fold_left pick x.(0) x)
      | Vi x -> Ui (Array.fold_left pick x.(0) x)
      | v -> v)
    | _ -> raise (Unsupported name))
  | other -> raise (Unsupported ("call " ^ other))

(* Blend an assignment under a divergence mask, as codegen does. *)
let blend env mask old_v new_v =
  match mask with
  | None -> new_v
  | Some m -> (
    match (splat env old_v, splat env new_v) with
    | Vi o, Vi n -> Vi (Array.init env.vl (fun l -> if m.(l) then n.(l) else o.(l)))
    | Vf o, Vf n -> Vf (Array.init env.vl (fun l -> if m.(l) then n.(l) else o.(l)))
    | Vb o, Vb n -> Vb (Array.init env.vl (fun l -> if m.(l) then n.(l) else o.(l)))
    | _ -> raise (Unsupported "blend"))

let rec exec env (mask : bool array option) (st : Ast.stmt) : unit =
  match st.Ast.s with
  | Ast.Decl (ty, x, e) ->
    let v = eval env mask e in
    let v =
      if ty.Ast.q = Ast.Varying then splat env v else v
    in
    Hashtbl.replace env.vars x v
  | Ast.Assign (x, e) ->
    let old_v = Hashtbl.find env.vars x in
    let v = eval env mask e in
    let v =
      match old_v with
      | Vi _ | Vf _ | Vb _ -> blend env mask old_v (splat env v)
      | _ -> v
    in
    Hashtbl.replace env.vars x v
  | Ast.Store (a, ix, e) -> (
    let arr = Hashtbl.find env.arrays a in
    let v = eval env mask e in
    match eval env mask ix with
    | Ui i -> (
      let i = Int64.to_int i in
      match (arr, v) with
      | Farr f, Uf x -> f.(i) <- x
      | Iarr f, Ui x -> f.(i) <- Int64.to_int x
      | _ -> raise (Unsupported "store"))
    | Vi ixs ->
      let live l = match mask with None -> true | Some m -> m.(l) in
      (match (arr, splat env v) with
      | Farr f, Vf xs ->
        Array.iteri
          (fun l i -> if live l then f.(Int64.to_int i) <- xs.(l))
          ixs
      | Iarr f, Vi xs ->
        Array.iteri
          (fun l i -> if live l then f.(Int64.to_int i) <- Int64.to_int xs.(l))
          ixs
      | _ -> raise (Unsupported "store"))
    | _ -> raise (Unsupported "store index"))
  | Ast.If (c, then_b, else_b) -> (
    match eval env mask c with
    | Ub true -> List.iter (exec env mask) then_b
    | Ub false -> List.iter (exec env mask) else_b
    | Vb cond ->
      let parent = match mask with None -> Array.make env.vl true | Some m -> m in
      let then_mask = Array.init env.vl (fun l -> parent.(l) && cond.(l)) in
      let else_mask = Array.init env.vl (fun l -> parent.(l) && not cond.(l)) in
      if Array.exists Fun.id then_mask then
        List.iter (exec env (Some then_mask)) then_b;
      if Array.exists Fun.id else_mask then
        List.iter (exec env (Some else_mask)) else_b
    | _ -> raise (Unsupported "if cond"))
  | Ast.While (c, body) -> (
    let rec go () =
      match eval env mask c with
      | Ub true ->
        (try List.iter (exec env mask) body with Continue_exc -> ());
        go ()
      | Ub false -> ()
      | _ -> raise (Unsupported "while cond")
    in
    try go () with Break_exc -> ())
  | Ast.For (init, c, step, body) -> (
    exec env mask init;
    let rec go () =
      match eval env mask c with
      | Ub true ->
        (try List.iter (exec env mask) body with Continue_exc -> ());
        exec env mask step;
        go ()
      | Ub false -> ()
      | _ -> raise (Unsupported "for cond")
    in
    try go () with Break_exc -> ())
  | Ast.Foreach (dim, start, stop, body) ->
    (* chunked execution matching the lowering: aligned full chunks,
       then one masked tail chunk *)
    let s =
      match eval env mask start with
      | Ui x -> Int64.to_int x
      | _ -> raise (Unsupported "foreach start")
    in
    let e =
      match eval env mask stop with
      | Ui x -> Int64.to_int x
      | _ -> raise (Unsupported "foreach stop")
    in
    let n = e - s in
    let vl = env.vl in
    let aligned = n - (((n mod vl) + vl) mod vl) in
    let chunk base m =
      Hashtbl.replace env.vars dim
        (Vi (Array.init vl (fun l -> t32 (Int64.of_int (base + l)))));
      List.iter (exec env m) body
    in
    let c = ref 0 in
    while !c < aligned do
      chunk (s + !c) None;
      c := !c + vl
    done;
    if n > aligned then begin
      let m = Array.init vl (fun l -> s + aligned + l < e) in
      chunk (s + aligned) (Some m)
    end;
    Hashtbl.remove env.vars dim
  | Ast.Return _ -> ()
  | Ast.Expr_stmt e -> ignore (eval env mask e)
  | Ast.Assert e -> ignore (eval env mask e)
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc

(* Run [fn] of a parsed program with the given arrays and scalars. *)
let run_func ~vl (prog : Ast.program) ~fn
    ~(arrays : (string * arr) list) ~(scalars : (string * rvalue) list) :
    unit =
  let f = List.find (fun (f : Ast.func) -> f.Ast.f_name = fn) prog in
  let env = { vl; vars = Hashtbl.create 16; arrays = Hashtbl.create 4 } in
  List.iter (fun (n, a) -> Hashtbl.replace env.arrays n a) arrays;
  List.iter (fun (n, v) -> Hashtbl.replace env.vars n v) scalars;
  List.iter (exec env None) f.Ast.f_body

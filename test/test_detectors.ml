(* Tests for the compiler-derived error detectors: the foreach
   loop-invariant pass (§III-A, Figs 7/8), the uniform-broadcast XOR
   pass (§III-B, Fig 9), their runtime, and overhead measurement. *)

open Detectors

let check = Alcotest.check

let vcopy_src =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int \
   n) { foreach (i = 0 ... n) { a2[i] = a1[i]; } }"

let vcopy_workload lengths =
  {
    Vulfi.Workload.w_name = "vcopy";
    w_fn = "vcopy_ispc";
    w_out_tolerance = 0.0;
    w_inputs = List.length lengths;
    w_build = (fun target -> Minispc.Driver.compile target vcopy_src);
    w_setup =
      (fun ~input st ->
        let n = List.nth lengths input in
        let mem = Interp.Machine.memory st in
        let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
        let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
        Interp.Memory.write_i32_array mem a1
          (Array.init n (fun i -> (i * 13) - 7));
        ( [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
            Interp.Vvalue.of_i32 n ],
          fun () ->
            {
              Vulfi.Outcome.empty_output with
              Vulfi.Outcome.o_i32 = [ Interp.Memory.read_i32_array mem a2 n ];
            } ));
  }

(* ---------------- detection of the foreach pattern ---------------- *)

let test_detect_matches_codegen_meta () =
  List.iter
    (fun target ->
      let m = Minispc.Driver.compile target vcopy_src in
      let f = Vir.Vmodule.find_func_exn m "vcopy_ispc" in
      let found = Foreach_invariants.detect f in
      match (found, f.Vir.Func.foreach_meta) with
      | [ ff ], [ meta ] ->
        check Alcotest.string "header label" meta.Vir.Func.fm_full_body
          ff.Foreach_invariants.ff_header;
        check Alcotest.string "exit label" meta.Vir.Func.fm_exit
          ff.Foreach_invariants.ff_exit;
        check Alcotest.int "new_counter" meta.Vir.Func.fm_new_counter
          ff.Foreach_invariants.ff_new_counter;
        check Alcotest.int "aligned_end" meta.Vir.Func.fm_aligned_end
          ff.Foreach_invariants.ff_aligned_end;
        check Alcotest.int "vl" meta.Vir.Func.fm_vl
          ff.Foreach_invariants.ff_vl
      | _ ->
        Alcotest.failf "expected one foreach (found %d, meta %d)"
          (List.length found)
          (List.length f.Vir.Func.foreach_meta))
    Vir.Target.all

let test_detect_ignores_plain_loops () =
  let m = Ir_samples.scale_add_module () in
  let f = Vir.Vmodule.find_func_exn m "scale_add" in
  check Alcotest.int "no foreach found" 0
    (List.length (Foreach_invariants.detect f))

let test_detect_multiple_foreach () =
  let src =
    "export void two(uniform float a[], uniform int n) { foreach (i = 0 \
     ... n) { a[i] = a[i] + 1.0; } foreach (j = 0 ... n) { a[j] = a[j] * \
     2.0; } }"
  in
  let m = Minispc.Driver.compile Vir.Target.Avx src in
  let f = Vir.Vmodule.find_func_exn m "two" in
  check Alcotest.int "two foreach loops" 2
    (List.length (Foreach_invariants.detect f))

(* ---------------- pass insertion ---------------- *)

let test_pass_inserts_block () =
  List.iter
    (fun target ->
      let m = Minispc.Driver.compile target vcopy_src in
      let n = Foreach_invariants.run m in
      check Alcotest.int "one detector inserted" 1 n;
      let f = Vir.Vmodule.find_func_exn m "vcopy_ispc" in
      let labels = List.map (fun b -> b.Vir.Block.label) f.Vir.Func.blocks in
      Alcotest.(check bool) "check block exists" true
        (List.exists
           (fun l ->
             String.length l >= 33
             && String.sub l 0 33 = "foreach_fullbody_check_invariants")
           labels);
      let s = Vir.Pp.module_to_string m in
      Alcotest.(check bool) "calls the detector runtime" true
        (Astring_contains.contains s Runtime.check_foreach_name))
    Vir.Target.all

let test_pass_preserves_semantics () =
  List.iter
    (fun target ->
      List.iter
        (fun n ->
          let m = Minispc.Driver.compile target vcopy_src in
          ignore (Foreach_invariants.run m);
          let st = Interp.Machine.create (Interp.Compile.compile_module m) in
          let det = Runtime.create () in
          Runtime.attach det st;
          let mem = Interp.Machine.memory st in
          let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
          let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
          let input = Array.init n (fun i -> i - 3) in
          Interp.Memory.write_i32_array mem a1 input;
          let _ =
            Interp.Machine.run st "vcopy_ispc"
              [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
                Interp.Vvalue.of_i32 n ]
          in
          check
            Alcotest.(array int)
            (Printf.sprintf "%s n=%d output" (Vir.Target.name target) n)
            input
            (Interp.Memory.read_i32_array mem a2 n);
          Alcotest.(check bool)
            (Printf.sprintf "no false positive (n=%d)" n)
            false (Runtime.flagged det))
        [ 0; 1; 5; 8; 16; 23 ])
    Vir.Target.all

(* ---------------- runtime invariant checks ---------------- *)

let test_runtime_invariants () =
  let det = Runtime.create () in
  let call nc ae vl =
    Runtime.reset det;
    ignore
      (Runtime.handle_check_foreach det
         (Obj.magic ())  (* state unused by the handler *)
         [ Interp.Vvalue.of_i32 nc; Interp.Vvalue.of_i32 ae;
           Interp.Vvalue.of_i32 vl ]);
    Runtime.flagged det
  in
  Alcotest.(check bool) "clean exit ok" false (call 16 16 8);
  Alcotest.(check bool) "mid-loop value ok" false (call 8 16 8);
  Alcotest.(check bool) "invariant 1: negative" true (call (-8) 16 8);
  Alcotest.(check bool) "invariant 2: beyond aligned_end" true (call 24 16 8);
  Alcotest.(check bool) "invariant 3: not multiple of Vl" true (call 13 16 8)

(* ---------------- fault injection with detectors ---------------- *)

let detector_campaign category =
  let cfg =
    {
      Vulfi.Campaign.experiments_per_campaign = 30;
      min_campaigns = 3;
      max_campaigns = 3;
      margin_target = 1.0;
      seed = 4242;
    }
  in
  Vulfi.Campaign.run
    ~transform:(Overhead.transform Overhead.paper_detectors)
    ~hooks:Runtime.hooks cfg
    (vcopy_workload [ 19; 37 ])
    Vir.Target.Avx category

let test_detectors_fire_on_control_faults () =
  let r = detector_campaign Analysis.Sites.Control in
  Alcotest.(check bool) "control faults produce SDCs" true
    (r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_sdc > 0);
  Alcotest.(check bool)
    (Printf.sprintf "detector flags some runs (%d flagged)"
       r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected)
    true
    (r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected > 0)

let test_detectors_silent_on_pure_data () =
  (* Paper Fig 12: pure-data faults cannot touch the loop iterator, so
     the foreach detector must stay silent. *)
  let r = detector_campaign Analysis.Sites.Pure_data in
  check Alcotest.int "no detections on pure-data faults" 0
    r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected


let test_strengthened_detector_catches_more () =
  (* The exit-equality extension must dominate the Fig 8 invariants on
     control faults (it subsumes them on the exit path). *)
  let cfg =
    {
      Vulfi.Campaign.experiments_per_campaign = 40;
      min_campaigns = 3;
      max_campaigns = 3;
      margin_target = 1.0;
      seed = 777;
    }
  in
  let run set =
    Vulfi.Campaign.run
      ~transform:(Overhead.transform set)
      ~hooks:Runtime.hooks cfg
      (vcopy_workload [ 19; 37 ])
      Vir.Target.Avx Analysis.Sites.Control
  in
  let base = run Overhead.paper_detectors in
  let strong = run Overhead.strengthened_detectors in
  Alcotest.(check bool)
    (Printf.sprintf "strengthened detects >= baseline (%d vs %d)"
       strong.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected
       base.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected)
    true
    (strong.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected
     >= base.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_detected)

let test_strengthened_no_false_positives () =
  List.iter
    (fun target ->
      List.iter
        (fun n ->
          let m = Minispc.Driver.compile target vcopy_src in
          ignore (Foreach_invariants.run ~strengthen:true m);
          let st = Interp.Machine.create (Interp.Compile.compile_module m) in
          let det = Runtime.create () in
          Runtime.attach det st;
          let mem = Interp.Machine.memory st in
          let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
          let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
          Interp.Memory.write_i32_array mem a1 (Array.init n (fun i -> i));
          ignore
            (Interp.Machine.run st "vcopy_ispc"
               [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
                 Interp.Vvalue.of_i32 n ]);
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d clean" (Vir.Target.name target) n)
            false (Runtime.flagged det))
        [ 0; 1; 7; 8; 16; 23 ])
    Vir.Target.all

let test_runtime_exact_invariant () =
  let det = Runtime.create () in
  let call nc ae =
    Runtime.reset det;
    ignore
      (Runtime.handle_check_foreach_exact det (Obj.magic ())
         [ Interp.Vvalue.of_i32 nc; Interp.Vvalue.of_i32 ae ]);
    Runtime.flagged det
  in
  Alcotest.(check bool) "equality holds" false (call 16 16);
  Alcotest.(check bool) "early exit flagged" true (call 8 16);
  Alcotest.(check bool) "overshoot flagged" true (call 24 16)

(* ---------------- uniform broadcast detector ---------------- *)

let broadcast_src =
  "export void scale(uniform float a[], uniform float s, uniform int n) \
   { foreach (i = 0 ... n) { a[i] = a[i] * s; } }"

let test_uniform_xor_inserts () =
  let m = Minispc.Driver.compile Vir.Target.Avx broadcast_src in
  let n = Uniform_xor.run m in
  Alcotest.(check bool)
    (Printf.sprintf "protected %d broadcasts" n)
    true (n > 0);
  let s = Vir.Pp.module_to_string m in
  Alcotest.(check bool) "calls uniform checker" true
    (Astring_contains.contains s Runtime.check_uniform_name)

let test_uniform_xor_no_false_positives () =
  List.iter
    (fun target ->
      let m = Minispc.Driver.compile target broadcast_src in
      ignore (Uniform_xor.run m);
      let st = Interp.Machine.create (Interp.Compile.compile_module m) in
      let det = Runtime.create () in
      Runtime.attach det st;
      let mem = Interp.Machine.memory st in
      let n = 13 in
      let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
      Interp.Memory.write_f32_array mem a (Array.init n float_of_int);
      let _ =
        Interp.Machine.run st "scale"
          [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_f32 2.5;
            Interp.Vvalue.of_i32 n ]
      in
      Alcotest.(check bool) "clean run not flagged" false
        (Runtime.flagged det))
    Vir.Target.all

let test_uniform_xor_detects_broadcast_corruption () =
  (* Inject faults into the broadcast vector's lanes (pure-data sites of
     the scale kernel include the broadcast shuffle Lvalue) and check
     that at least some corruptions are flagged. *)
  let w =
    {
      Vulfi.Workload.w_name = "scale";
      w_fn = "scale";
      w_out_tolerance = 0.0;
      w_inputs = 1;
      w_build = (fun t -> Minispc.Driver.compile t broadcast_src);
      w_setup =
        (fun ~input:_ st ->
          let mem = Interp.Machine.memory st in
          let n = 16 in
          let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
          Interp.Memory.write_f32_array mem a (Array.init n float_of_int);
          ( [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_f32 2.5;
              Interp.Vvalue.of_i32 n ],
            fun () ->
              {
                Vulfi.Outcome.empty_output with
                Vulfi.Outcome.o_f32 = [ Interp.Memory.read_f32_array mem a n ];
              } ));
    }
  in
  let hooks = Runtime.hooks () in
  let p =
    Vulfi.Experiment.prepare
      ~transform:(fun m ->
        ignore (Uniform_xor.run m);
        m)
      w Vir.Target.Avx Analysis.Sites.Pure_data
  in
  let g = Vulfi.Experiment.golden_run ~hooks p ~input:0 in
  let detected = ref 0 in
  for site = 1 to g.Vulfi.Experiment.g_dyn_sites do
    let r =
      Vulfi.Experiment.faulty_run ~hooks p ~golden:g ~dynamic_site:site
        ~seed:(777 + site)
    in
    if r.Vulfi.Experiment.r_detected then incr detected
  done;
  Alcotest.(check bool)
    (Printf.sprintf "broadcast corruptions detected (%d)" !detected)
    true (!detected > 0)


(* ---------------- source-level asserts ---------------- *)

let assert_src =
  "export void checked_copy(uniform int a1[], uniform int a2[],\n\
   uniform int n) {\n\
   foreach (i = 0 ... n) {\n\
   int v = a1[i];\n\
   assert(v == a1[i]);\n\
   a2[i] = v;\n\
   assert(a2[i] == v);\n\
   }\n\
   }"

let assert_workload lengths =
  {
    Vulfi.Workload.w_name = "checked_copy";
    w_fn = "checked_copy";
    w_out_tolerance = 0.0;
    w_inputs = List.length lengths;
    w_build = (fun target -> Minispc.Driver.compile target assert_src);
    w_setup =
      (fun ~input st ->
        let n = List.nth lengths input in
        let mem = Interp.Machine.memory st in
        let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
        let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
        Interp.Memory.write_i32_array mem a1 (Array.init n (fun i -> i * 5));
        ( [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
            Interp.Vvalue.of_i32 n ],
          fun () ->
            {
              Vulfi.Outcome.empty_output with
              Vulfi.Outcome.o_i32 = [ Interp.Memory.read_i32_array mem a2 n ];
            } ));
  }

let test_assert_clean_run_silent () =
  List.iter
    (fun target ->
      let m = Minispc.Driver.compile target assert_src in
      let det = Runtime.create () in
      let st = Interp.Machine.create (Interp.Compile.compile_module m) in
      Runtime.attach det st;
      let mem = Interp.Machine.memory st in
      let n = 19 in
      let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * n) in
      let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * n) in
      Interp.Memory.write_i32_array mem a1 (Array.init n (fun i -> i));
      ignore
        (Interp.Machine.run st "checked_copy"
           [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
             Interp.Vvalue.of_i32 n ]);
      Alcotest.(check bool)
        (Vir.Target.name target ^ " clean run silent")
        false (Runtime.flagged det))
    Vir.Target.all

let test_assert_catches_injected_faults () =
  (* Faults in the copied values (pure-data!) violate the equality
     asserts — detection coverage the foreach invariants cannot give. *)
  let hooks = Runtime.hooks () in
  let p =
    Vulfi.Experiment.prepare (assert_workload [ 19 ]) Vir.Target.Avx
      Analysis.Sites.Pure_data
  in
  let g = Vulfi.Experiment.golden_run ~hooks p ~input:0 in
  let detected = ref 0 and sdc = ref 0 in
  for site = 1 to g.Vulfi.Experiment.g_dyn_sites do
    let r =
      Vulfi.Experiment.faulty_run ~hooks p ~golden:g ~dynamic_site:site
        ~seed:(9000 + site)
    in
    if r.Vulfi.Experiment.r_outcome = Vulfi.Outcome.Sdc then incr sdc;
    if r.Vulfi.Experiment.r_detected then incr detected
  done;
  Alcotest.(check bool)
    (Printf.sprintf "asserts detect pure-data faults (%d detected, %d SDC)"
       !detected !sdc)
    true (!detected > 0)

let test_assert_runtime_handler () =
  let det = Runtime.create () in
  ignore (Runtime.handle_assert det (Obj.magic ()) [ Interp.Vvalue.of_bool true ]);
  Alcotest.(check bool) "ok not flagged" false (Runtime.flagged det);
  ignore (Runtime.handle_assert det (Obj.magic ()) [ Interp.Vvalue.of_bool false ]);
  Alcotest.(check bool) "violated flags" true (Runtime.flagged det);
  Alcotest.(check int) "count" 1 det.Runtime.assert_violations

(* ---------------- overhead ---------------- *)

let test_overhead_positive_and_small () =
  let w = vcopy_workload [ 64 ] in
  let m = Overhead.measure w Vir.Target.Avx ~input:0 in
  Alcotest.(check bool) "detector adds instructions" true
    (m.Overhead.detected_instrs > m.Overhead.plain_instrs);
  let frac = Overhead.overhead_fraction m in
  Alcotest.(check bool)
    (Printf.sprintf "exit-only overhead is small (%.2f%%)" (100. *. frac))
    true
    (frac > 0.0 && frac < 0.25)

let test_overhead_every_iteration_costs_more () =
  let w = vcopy_workload [ 64 ] in
  let exit_only =
    Overhead.measure ~set:Overhead.paper_detectors w Vir.Target.Avx ~input:0
  in
  let every =
    Overhead.measure
      ~set:
        {
          Overhead.with_foreach = true;
          with_uniform = false;
          placement = `Every_iteration;
          strengthen = false;
        }
      w Vir.Target.Avx ~input:0
  in
  Alcotest.(check bool) "per-iteration placement costs more" true
    (every.Overhead.detected_instrs > exit_only.Overhead.detected_instrs)

let test_overhead_zero_when_no_detectors () =
  let w = vcopy_workload [ 32 ] in
  let m =
    Overhead.measure
      ~set:
        {
          Overhead.with_foreach = false;
          with_uniform = false;
          placement = `Exit_only;
          strengthen = false;
        }
      w Vir.Target.Sse ~input:0
  in
  check Alcotest.int "no detectors inserted" 0 m.Overhead.detectors_inserted;
  check (Alcotest.float 0.0) "zero overhead" 0.0
    (Overhead.overhead_fraction m)

(* ---------------- properties ---------------- *)

(* Detector-equipped clean runs never flag, across sizes and targets. *)
let prop_no_false_positives =
  QCheck.Test.make ~name:"detectors have no false positives" ~count:40
    QCheck.(pair (int_range 0 64) bool)
    (fun (n, use_avx) ->
      let target = if use_avx then Vir.Target.Avx else Vir.Target.Sse in
      let m = Minispc.Driver.compile target vcopy_src in
      ignore (Foreach_invariants.run m);
      ignore (Uniform_xor.run m);
      let st = Interp.Machine.create (Interp.Compile.compile_module m) in
      let det = Runtime.create () in
      Runtime.attach det st;
      let mem = Interp.Machine.memory st in
      let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
      let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
      Interp.Memory.write_i32_array mem a1 (Array.init n (fun i -> i));
      let _ =
        Interp.Machine.run st "vcopy_ispc"
          [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
            Interp.Vvalue.of_i32 n ]
      in
      not (Runtime.flagged det))

let () =
  Alcotest.run "detectors"
    [
      ( "detect",
        [
          Alcotest.test_case "matches codegen metadata" `Quick
            test_detect_matches_codegen_meta;
          Alcotest.test_case "ignores plain loops" `Quick
            test_detect_ignores_plain_loops;
          Alcotest.test_case "multiple foreach" `Quick
            test_detect_multiple_foreach;
        ] );
      ( "foreach-pass",
        [
          Alcotest.test_case "inserts check block" `Quick
            test_pass_inserts_block;
          Alcotest.test_case "preserves semantics, no false positives"
            `Quick test_pass_preserves_semantics;
        ] );
      ( "runtime",
        [ Alcotest.test_case "Fig 8 invariants" `Quick test_runtime_invariants ]
      );
      ( "fault-injection",
        [
          Alcotest.test_case "fires on control faults" `Quick
            test_detectors_fire_on_control_faults;
          Alcotest.test_case "silent on pure-data faults" `Quick
            test_detectors_silent_on_pure_data;
        ] );
      ( "strengthened-invariant",
        [
          Alcotest.test_case "catches more than Fig 8" `Quick
            test_strengthened_detector_catches_more;
          Alcotest.test_case "no false positives" `Quick
            test_strengthened_no_false_positives;
          Alcotest.test_case "runtime equality check" `Quick
            test_runtime_exact_invariant;
        ] );
      ( "uniform-xor",
        [
          Alcotest.test_case "inserts checks" `Quick test_uniform_xor_inserts;
          Alcotest.test_case "no false positives" `Quick
            test_uniform_xor_no_false_positives;
          Alcotest.test_case "detects broadcast corruption" `Quick
            test_uniform_xor_detects_broadcast_corruption;
        ] );
      ( "source-asserts",
        [
          Alcotest.test_case "clean run silent" `Quick
            test_assert_clean_run_silent;
          Alcotest.test_case "catches injected pure-data faults" `Quick
            test_assert_catches_injected_faults;
          Alcotest.test_case "runtime handler" `Quick
            test_assert_runtime_handler;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "positive and small" `Quick
            test_overhead_positive_and_small;
          Alcotest.test_case "per-iteration costs more" `Quick
            test_overhead_every_iteration_costs_more;
          Alcotest.test_case "zero without detectors" `Quick
            test_overhead_zero_when_no_detectors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_no_false_positives ] );
    ]

(* Per-rule differential equivalence tests for the superblock fusion
   backend.

   For every peephole rule in Analysis.Chains, a minimal VIR kernel
   exhibiting exactly that chain is built and executed twice from the
   same module — once with fusion annotations cleared (per-instruction
   threading) and once annotated (fused kernel) — and the two runs must
   agree bit-for-bit: return value lanes, memory contents, dynamic
   instruction and vector counts, and trap outcome. Inputs are
   QCheck-generated and include NaN/infinity lanes (float rules),
   zero divisors (the trapping integer-divide consumer) and
   out-of-range indices (the gep chains), so trap ordering and
   lane-blend semantics are exercised, not just the happy path. A
   budget sweep pins the fuel accounting: a chain interrupted by
   Budget_exhausted must leave the same dynamic counts as unfused
   stepping. *)

open Vir

let vl = 8
let f32v = Vtype.vector vl Vtype.F32
let i32v = Vtype.vector vl Vtype.I32

let fvec xs = Interp.Vvalue.of_const (Const.Cvec (Array.map Const.f32 xs))
let ivec xs = Interp.Vvalue.of_const (Const.Cvec (Array.map Const.i32 xs))

(* Bit-exact rendering of a value (floats via their IEEE encoding). *)
let vstring v =
  String.concat ","
    (List.init (Interp.Vvalue.lanes v) (fun i ->
         Int64.to_string (Interp.Vvalue.lane_bits v i)))

type result = {
  r_ret : string option;
  r_trap : string option;
  r_dyn : int;
  r_vec : int;
  r_mem : string;
  r_fused : int;  (** chains the threading stage actually fused *)
}

let result_equal a b =
  a.r_ret = b.r_ret && a.r_trap = b.r_trap && a.r_dyn = b.r_dyn
  && a.r_vec = b.r_vec && a.r_mem = b.r_mem

(* Run [fn] on a fresh machine over [m], fused or not. [setup] builds
   the argument list (and optionally initialises memory), returning a
   closure that renders whatever memory the kernel may write. *)
let exec ?(budget = Interp.Machine.default_budget) (m : Vmodule.t) ~fused ~fn
    ~setup =
  if fused then ignore (Passes.Fuse.run_module m)
  else Passes.Fuse.clear_module m;
  let cm = Interp.Compile.compile_module m in
  let st = Interp.Machine.create ~budget cm in
  let args, read_mem = setup st in
  let ret, trap =
    match Interp.Machine.run st fn args with
    | v -> (Option.map vstring v, None)
    | exception Interp.Trap.Trap k -> (None, Some (Interp.Trap.to_string k))
  in
  {
    r_ret = ret;
    r_trap = trap;
    r_dyn = Interp.Machine.dyn_count st;
    r_vec = Interp.Machine.dyn_vector_count st;
    r_mem = read_mem ();
    r_fused = Interp.Compile.fused_chain_count cm;
  }

(* The differential property: unfused and fused agree, and the fused
   compile really lowered at least one chain (otherwise the test would
   silently degrade to comparing the unfused path against itself). *)
let differential ?budget m ~fn ~setup =
  let u = exec ?budget m ~fused:false ~fn ~setup in
  let f = exec ?budget m ~fused:true ~fn ~setup in
  if f.r_fused < 1 then QCheck.Test.fail_report "no chain was fused";
  if not (result_equal u f) then
    QCheck.Test.fail_reportf
      "fused run diverged:\n\
       unfused: ret=%s trap=%s dyn=%d vec=%d mem=%s\n\
       fused:   ret=%s trap=%s dyn=%d vec=%d mem=%s"
      (Option.value ~default:"-" u.r_ret)
      (Option.value ~default:"-" u.r_trap)
      u.r_dyn u.r_vec u.r_mem
      (Option.value ~default:"-" f.r_ret)
      (Option.value ~default:"-" f.r_trap)
      f.r_dyn f.r_vec f.r_mem;
  true

let no_mem st =
  ignore st;
  fun () -> ""

(* ---------------- kernels, one per rule ---------------- *)

let mk_fbinop_fbinop () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", f32v); ("b", f32v); ("c", f32v) ]
      ~ret_ty:f32v
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t = Builder.fmul b (Builder.param b "a") (Builder.param b "b") in
  Builder.ret b (Some (Builder.fadd b t (Builder.param b "c")));
  m

let mk_ibinop_ibinop_vec () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", i32v); ("b", i32v); ("c", i32v) ]
      ~ret_ty:i32v
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t = Builder.add b (Builder.param b "a") (Builder.param b "b") in
  Builder.ret b (Some (Builder.mul b t (Builder.param b "c")));
  m

(* Scalar chain whose consumer can trap: r = c / (x + y). *)
let mk_ibinop_div () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("x", Vtype.i32); ("y", Vtype.i32); ("c", Vtype.i32) ]
      ~ret_ty:Vtype.i32
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t = Builder.add b (Builder.param b "x") (Builder.param b "y") in
  Builder.ret b (Some (Builder.sdiv b (Builder.param b "c") t));
  m

let mk_icmp_select () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", i32v); ("b", i32v); ("x", i32v); ("y", i32v) ]
      ~ret_ty:i32v
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let c = Builder.icmp b Instr.Islt (Builder.param b "a") (Builder.param b "b") in
  Builder.ret b (Some (Builder.select b c (Builder.param b "x") (Builder.param b "y")));
  m

let mk_fcmp_select () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", f32v); ("b", f32v); ("x", f32v); ("y", f32v) ]
      ~ret_ty:f32v
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let c = Builder.fcmp b Instr.Folt (Builder.param b "a") (Builder.param b "b") in
  Builder.ret b (Some (Builder.select b c (Builder.param b "x") (Builder.param b "y")));
  m

let mk_cast_binop () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", i32v); ("c", f32v) ]
      ~ret_ty:f32v
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t = Builder.cast b Instr.Sitofp (Builder.param b "a") f32v in
  Builder.ret b (Some (Builder.fadd b t (Builder.param b "c")));
  m

let mk_gep_load () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("p", Vtype.ptr); ("i", Vtype.i32) ]
      ~ret_ty:Vtype.i32
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let g = Builder.gep b (Builder.param b "p") (Builder.param b "i") ~elem_bytes:4 in
  Builder.ret b (Some (Builder.load b Vtype.i32 g));
  m

let mk_gep_store () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("p", Vtype.ptr); ("i", Vtype.i32); ("v", Vtype.i32) ]
      ~ret_ty:Vtype.Void
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let g = Builder.gep b (Builder.param b "p") (Builder.param b "i") ~elem_bytes:4 in
  Builder.store b (Builder.param b "v") g;
  Builder.ret b None;
  m

let mk_load_binop () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("p", Vtype.ptr); ("c", Vtype.i32) ]
      ~ret_ty:Vtype.i32
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t = Builder.load b Vtype.i32 (Builder.param b "p") in
  Builder.ret b (Some (Builder.add b t (Builder.param b "c")));
  m

let mk_binop_store () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", Vtype.i32); ("b", Vtype.i32); ("p", Vtype.ptr) ]
      ~ret_ty:Vtype.Void
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t = Builder.add b (Builder.param b "a") (Builder.param b "b") in
  Builder.store b t (Builder.param b "p");
  Builder.ret b None;
  m

let mk_load_binop_store () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("p", Vtype.ptr); ("a", Vtype.i32); ("q", Vtype.ptr) ]
      ~ret_ty:Vtype.Void
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t = Builder.load b Vtype.i32 (Builder.param b "p") in
  let u = Builder.add b t (Builder.param b "a") in
  Builder.store b u (Builder.param b "q");
  Builder.ret b None;
  m

(* Arbitrary-length superblock: four linked fbinops, each intermediate
   read exactly once — the emitter segments this into fused pair
   kernels staged through the destination registers. *)
let mk_superblock () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:
        [
          ("a", f32v); ("b", f32v); ("c", f32v); ("d", f32v); ("e", f32v);
        ]
      ~ret_ty:f32v
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t1 = Builder.fmul b (Builder.param b "a") (Builder.param b "b") in
  let t2 = Builder.fadd b t1 (Builder.param b "c") in
  let t3 = Builder.fsub b t2 (Builder.param b "d") in
  Builder.ret b (Some (Builder.fdiv b t3 (Builder.param b "e")));
  m

(* Superblock with a trapping member: [gep -> load -> add -> sdiv],
   so mid-chain traps (OOB load, divide by zero) and fuel exhaustion
   inside the fused run are compared against unfused stepping. *)
let mk_superblock_int () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("p", Vtype.ptr); ("i", Vtype.i32); ("c", Vtype.i32) ]
      ~ret_ty:Vtype.i32
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let g = Builder.gep b (Builder.param b "p") (Builder.param b "i") ~elem_bytes:4 in
  let t = Builder.load b Vtype.i32 g in
  let u = Builder.add b t (Builder.param b "c") in
  Builder.ret b (Some (Builder.sdiv b (Builder.param b "c") u));
  m

(* Fused reduction tail: an elementwise fbinop feeding a cross-lane
   reduce intrinsic, lowered as one accumulate loop. *)
let mk_reduce_tail () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", f32v); ("b", f32v) ]
      ~ret_ty:Vtype.f32
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t = Builder.fmul b (Builder.param b "a") (Builder.param b "b") in
  Builder.ret b
    (Some (Builder.call b ~ret:Vtype.f32 "llvm.vector.reduce.fadd" [ t ]));
  m

(* A longer chain ending in a reduce: the fbinop prefix fuses pairwise
   and the tail still reduces from the staged register. *)
let mk_superblock_reduce () =
  let m = Vmodule.create "fuse" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", f32v); ("b", f32v); ("c", f32v) ]
      ~ret_ty:Vtype.f32
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t1 = Builder.fmul b (Builder.param b "a") (Builder.param b "b") in
  let t2 = Builder.fadd b t1 (Builder.param b "c") in
  Builder.ret b
    (Some (Builder.call b ~ret:Vtype.f32 "llvm.vector.reduce.fadd" [ t2 ]));
  m

(* Every kernel above must be annotated with the rule it was built
   for — otherwise the differential test exercises nothing — and,
   conversely, every rule the analysis can report must have at least
   one kernel here, so adding a rule without differential coverage
   fails this test. *)
let test_rules_match () =
  let cases =
    [
      ("fbinop_fbinop", mk_fbinop_fbinop ());
      ("ibinop_ibinop", mk_ibinop_ibinop_vec ());
      ("ibinop_ibinop", mk_ibinop_div ());
      ("icmp_select", mk_icmp_select ());
      ("fcmp_select", mk_fcmp_select ());
      ("cast_binop", mk_cast_binop ());
      ("gep_load", mk_gep_load ());
      ("gep_store", mk_gep_store ());
      ("load_binop", mk_load_binop ());
      ("binop_store", mk_binop_store ());
      ("load_binop_store", mk_load_binop_store ());
      ("superblock", mk_superblock ());
      ("superblock", mk_superblock_int ());
      ("reduce_tail", mk_reduce_tail ());
      ("reduce_tail", mk_superblock_reduce ());
    ]
  in
  List.iter
    (fun (expected, m) ->
      let stats = Passes.Fuse.rule_stats m in
      Alcotest.(check bool)
        (expected ^ " chain found") true
        (match List.assoc_opt expected stats with
        | Some n -> n >= 1
        | None -> false))
    cases;
  (* Reverse direction: every rule the analysis can report must appear
     in [cases] above.  A rule added to [Analysis.Chains.all_rules]
     without a kernel here has no differential coverage and fails. *)
  let covered = List.map fst cases in
  List.iter
    (fun rule ->
      let name = Analysis.Chains.rule_name rule in
      Alcotest.(check bool)
        (name ^ " has a differential kernel")
        true
        (List.mem name covered))
    Analysis.Chains.all_rules

(* ---------------- generators ---------------- *)

let float_gen =
  QCheck.Gen.(
    oneof
      [
        float_range (-1e6) 1e6;
        oneofl [ Float.nan; Float.infinity; Float.neg_infinity; 0.0; -0.0 ];
      ])

let fvec_gen = QCheck.Gen.(array_size (return vl) float_gen)
let ivec_gen = QCheck.Gen.(array_size (return vl) (int_range (-10000) 10000))

let arb gen print = QCheck.make gen ~print

let mem_words mem base n =
  String.concat ","
    (Array.to_list (Array.map string_of_int (Interp.Memory.read_i32_array mem base n)))

(* ---------------- per-rule properties ---------------- *)

let prop_fbinop =
  QCheck.Test.make ~name:"fused fmul->fadd matches unfused (incl. NaN/inf)"
    ~count:100
    (arb
       QCheck.Gen.(triple fvec_gen fvec_gen fvec_gen)
       QCheck.Print.(triple (array float) (array float) (array float)))
    (fun (a, b, c) ->
      differential (mk_fbinop_fbinop ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ([ fvec a; fvec b; fvec c ], fun () -> "")))

let prop_ibinop_vec =
  QCheck.Test.make ~name:"fused add->mul (vector) matches unfused" ~count:100
    (arb
       QCheck.Gen.(triple ivec_gen ivec_gen ivec_gen)
       QCheck.Print.(triple (array int) (array int) (array int)))
    (fun (a, b, c) ->
      differential (mk_ibinop_ibinop_vec ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ([ ivec a; ivec b; ivec c ], fun () -> "")))

let prop_ibinop_div =
  (* x + y is frequently zero here, so the trapping-consumer ordering
     (charge, add, charge, trap) is exercised for real. *)
  QCheck.Test.make ~name:"fused add->sdiv traps identically" ~count:200
    (arb
       QCheck.Gen.(triple (int_range (-3) 3) (int_range (-3) 3) (int_range (-100) 100))
       QCheck.Print.(triple int int int))
    (fun (x, y, c) ->
      differential (mk_ibinop_div ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ( [ Interp.Vvalue.of_i32 x; Interp.Vvalue.of_i32 y;
              Interp.Vvalue.of_i32 c ],
            fun () -> "" )))

let prop_icmp_select =
  QCheck.Test.make ~name:"fused icmp->select matches unfused" ~count:100
    (arb
       QCheck.Gen.(quad ivec_gen ivec_gen ivec_gen ivec_gen)
       QCheck.Print.(quad (array int) (array int) (array int) (array int)))
    (fun (a, b, x, y) ->
      differential (mk_icmp_select ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ([ ivec a; ivec b; ivec x; ivec y ], fun () -> "")))

let prop_fcmp_select =
  QCheck.Test.make ~name:"fused fcmp->select matches unfused (incl. NaN lanes)"
    ~count:100
    (arb
       QCheck.Gen.(quad fvec_gen fvec_gen fvec_gen fvec_gen)
       QCheck.Print.(quad (array float) (array float) (array float) (array float)))
    (fun (a, b, x, y) ->
      differential (mk_fcmp_select ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ([ fvec a; fvec b; fvec x; fvec y ], fun () -> "")))

let prop_cast_binop =
  QCheck.Test.make ~name:"fused sitofp->fadd matches unfused" ~count:100
    (arb
       QCheck.Gen.(pair ivec_gen fvec_gen)
       QCheck.Print.(pair (array int) (array float)))
    (fun (a, c) ->
      differential (mk_cast_binop ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ([ ivec a; fvec c ], fun () -> "")))

let n_slots = 16

let mem_setup st =
  let mem = Interp.Machine.memory st in
  let base = Interp.Memory.alloc mem ~name:"buf" ~bytes:(4 * n_slots) in
  Interp.Memory.write_i32_array mem base (Array.init n_slots (fun i -> 7 * i));
  (mem, base)

let prop_gep_load =
  (* Index range deliberately exceeds the allocation on both sides so
     the out-of-bounds trap path is compared too. *)
  QCheck.Test.make ~name:"fused gep->load matches unfused (incl. OOB trap)"
    ~count:150
    (arb QCheck.Gen.(int_range (-4) (n_slots + 4)) QCheck.Print.int)
    (fun i ->
      differential (mk_gep_load ()) ~fn:"f" ~setup:(fun st ->
          let mem, base = mem_setup st in
          ( [ Interp.Vvalue.of_ptr base; Interp.Vvalue.of_i32 i ],
            fun () -> mem_words mem base n_slots )))

let prop_gep_store =
  QCheck.Test.make ~name:"fused gep->store matches unfused (incl. OOB trap)"
    ~count:150
    (arb
       QCheck.Gen.(pair (int_range (-4) (n_slots + 4)) (int_range (-1000) 1000))
       QCheck.Print.(pair int int))
    (fun (i, v) ->
      differential (mk_gep_store ()) ~fn:"f" ~setup:(fun st ->
          let mem, base = mem_setup st in
          ( [ Interp.Vvalue.of_ptr base; Interp.Vvalue.of_i32 i;
              Interp.Vvalue.of_i32 v ],
            fun () -> mem_words mem base n_slots )))

let prop_load_binop =
  QCheck.Test.make ~name:"fused load->add matches unfused" ~count:100
    (arb QCheck.Gen.(int_range (-1000) 1000) QCheck.Print.int)
    (fun c ->
      differential (mk_load_binop ()) ~fn:"f" ~setup:(fun st ->
          let mem, base = mem_setup st in
          ( [ Interp.Vvalue.of_ptr base; Interp.Vvalue.of_i32 c ],
            fun () -> mem_words mem base n_slots )))

let prop_binop_store =
  QCheck.Test.make ~name:"fused add->store matches unfused" ~count:100
    (arb
       QCheck.Gen.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
       QCheck.Print.(pair int int))
    (fun (a, b) ->
      differential (mk_binop_store ()) ~fn:"f" ~setup:(fun st ->
          let mem, base = mem_setup st in
          ( [ Interp.Vvalue.of_i32 a; Interp.Vvalue.of_i32 b;
              Interp.Vvalue.of_ptr base ],
            fun () -> mem_words mem base n_slots )))

let prop_load_binop_store =
  QCheck.Test.make ~name:"fused load->add->store matches unfused" ~count:100
    (arb QCheck.Gen.(int_range (-1000) 1000) QCheck.Print.int)
    (fun a ->
      differential (mk_load_binop_store ()) ~fn:"f" ~setup:(fun st ->
          let mem, base = mem_setup st in
          ( [ Interp.Vvalue.of_ptr base; Interp.Vvalue.of_i32 a;
              Interp.Vvalue.of_ptr (Int64.add base 20L) ],
            fun () -> mem_words mem base n_slots )))

let prop_superblock =
  QCheck.Test.make
    ~name:"fused 4-member superblock matches unfused (incl. NaN/inf)"
    ~count:150
    (arb
       QCheck.Gen.(
         pair (pair fvec_gen fvec_gen) (triple fvec_gen fvec_gen fvec_gen))
       QCheck.Print.(
         pair
           (pair (array float) (array float))
           (triple (array float) (array float) (array float))))
    (fun ((a, b), (c, d, e)) ->
      differential (mk_superblock ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ([ fvec a; fvec b; fvec c; fvec d; fvec e ], fun () -> "")))

let prop_superblock_int =
  (* Narrow ranges make OOB loads and zero divisors common, so the
     mid-superblock trap ordering is exercised for real. *)
  QCheck.Test.make ~name:"fused gep->load->add->sdiv traps identically"
    ~count:200
    (arb
       QCheck.Gen.(pair (int_range (-4) (n_slots + 4)) (int_range (-3) 3))
       QCheck.Print.(pair int int))
    (fun (i, c) ->
      differential (mk_superblock_int ()) ~fn:"f" ~setup:(fun st ->
          let mem, base = mem_setup st in
          ( [ Interp.Vvalue.of_ptr base; Interp.Vvalue.of_i32 i;
              Interp.Vvalue.of_i32 c ],
            fun () -> mem_words mem base n_slots )))

let prop_reduce_tail =
  QCheck.Test.make
    ~name:"fused fmul->reduce_fadd matches unfused (incl. NaN/inf)"
    ~count:150
    (arb
       QCheck.Gen.(pair fvec_gen fvec_gen)
       QCheck.Print.(pair (array float) (array float)))
    (fun (a, b) ->
      differential (mk_reduce_tail ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ([ fvec a; fvec b ], fun () -> "")))

let prop_superblock_reduce =
  QCheck.Test.make
    ~name:"fused fmul->fadd->reduce_fadd matches unfused" ~count:150
    (arb
       QCheck.Gen.(triple fvec_gen fvec_gen fvec_gen)
       QCheck.Print.(triple (array float) (array float) (array float)))
    (fun (a, b, c) ->
      differential (mk_superblock_reduce ()) ~fn:"f" ~setup:(fun st ->
          ignore st;
          ([ fvec a; fvec b; fvec c ], fun () -> "")))

(* ---------------- fuel accounting across traps ---------------- *)

(* Sweep the budget through every prefix of each kernel: wherever the
   Budget_exhausted trap lands (before, inside or after a fused chain),
   the dynamic counters must match unfused stepping exactly. *)
let test_budget_sweep () =
  let cases =
    [
      ( "load_binop_store",
        mk_load_binop_store,
        fun st ->
          let mem, base = mem_setup st in
          ( [ Interp.Vvalue.of_ptr base; Interp.Vvalue.of_i32 3;
              Interp.Vvalue.of_ptr (Int64.add base 20L) ],
            fun () -> mem_words mem base n_slots ) );
      ( "ibinop_div",
        mk_ibinop_div,
        fun st ->
          ignore st;
          ( [ Interp.Vvalue.of_i32 1; Interp.Vvalue.of_i32 (-1);
              Interp.Vvalue.of_i32 5 ],
            fun () -> "" ) );
      ( "fbinop_fbinop",
        mk_fbinop_fbinop,
        fun st ->
          ignore st;
          ( [ fvec (Array.make vl 1.5); fvec (Array.make vl 2.5);
              fvec (Array.make vl 0.5) ],
            fun () -> "" ) );
      ( "superblock",
        mk_superblock,
        fun st ->
          ignore st;
          ( [ fvec (Array.make vl 1.5); fvec (Array.make vl 2.5);
              fvec (Array.make vl 0.5); fvec (Array.make vl 3.0);
              fvec (Array.make vl 4.0) ],
            fun () -> "" ) );
      ( "superblock_int",
        mk_superblock_int,
        fun st ->
          let mem, base = mem_setup st in
          ( [ Interp.Vvalue.of_ptr base; Interp.Vvalue.of_i32 3;
              Interp.Vvalue.of_i32 (-7) ],
            fun () -> mem_words mem base n_slots ) );
      ( "reduce_tail",
        mk_reduce_tail,
        fun st ->
          ignore st;
          ( [ fvec (Array.make vl 1.5); fvec (Array.make vl 2.5) ],
            fun () -> "" ) );
      ( "superblock_reduce",
        mk_superblock_reduce,
        fun st ->
          ignore st;
          ( [ fvec (Array.make vl 1.5); fvec (Array.make vl 2.5);
              fvec (Array.make vl 0.5) ],
            fun () -> "" ) );
    ]
  in
  List.iter
    (fun (name, mk, setup) ->
      for budget = 0 to 10 do
        let u = exec ~budget (mk ()) ~fused:false ~fn:"f" ~setup in
        let f = exec ~budget (mk ()) ~fused:true ~fn:"f" ~setup in
        Alcotest.(check bool)
          (Printf.sprintf "%s budget=%d identical" name budget)
          true
          (result_equal u f)
      done)
    cases

let () =
  ignore no_mem;
  Alcotest.run "fuse"
    [
      ( "structure",
        [
          Alcotest.test_case "each kernel matches its rule" `Quick
            test_rules_match;
          Alcotest.test_case "budget sweep over chains" `Quick
            test_budget_sweep;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fbinop;
            prop_ibinop_vec;
            prop_ibinop_div;
            prop_icmp_select;
            prop_fcmp_select;
            prop_cast_binop;
            prop_gep_load;
            prop_gep_store;
            prop_load_binop;
            prop_binop_store;
            prop_load_binop_store;
            prop_superblock;
            prop_superblock_int;
            prop_reduce_tail;
            prop_superblock_reduce;
          ] );
    ]

(* Tests for def-use chains, forward slices, the fault-site taxonomy
   (including the paper's Fig 3 example), and the instruction-mix census
   behind Fig 10. *)

open Analysis

let check = Alcotest.check

(* ---------------- Defuse ---------------- *)

let test_defuse_basic () =
  let m = Ir_samples.vadd8_module () in
  let f = Vir.Vmodule.find_func_exn m "vadd8" in
  let du = Defuse.build f in
  (* The fadd result (register 4: params 0-2, loads 3,4 -> fadd 5...) is
     found by scanning for the fadd instruction. *)
  let fadd =
    List.find
      (fun (i : Vir.Instr.t) ->
        match i.Vir.Instr.op with Vir.Instr.Fbinop _ -> true | _ -> false)
      (Vir.Func.all_instrs f)
  in
  (match Defuse.def du fadd.Vir.Instr.id with
  | Some i -> Alcotest.(check bool) "def found" true (i == fadd)
  | None -> Alcotest.fail "fadd def missing");
  let users = Defuse.uses_of du fadd.Vir.Instr.id in
  check Alcotest.int "fadd used once (by store)" 1 (List.length users);
  (match users with
  | [ u ] -> (
    match u.Defuse.u_instr.Vir.Instr.op with
    | Vir.Instr.Store _ -> ()
    | _ -> Alcotest.fail "fadd user should be the store")
  | _ -> assert false);
  (* loads are used by the fadd *)
  let loads =
    List.filter
      (fun (i : Vir.Instr.t) ->
        match i.Vir.Instr.op with Vir.Instr.Load _ -> true | _ -> false)
      (Vir.Func.all_instrs f)
  in
  List.iter
    (fun (ld : Vir.Instr.t) ->
      check Alcotest.int "load used once" 1
        (List.length (Defuse.uses_of du ld.Vir.Instr.id)))
    loads

let test_defuse_params_used () =
  let m = Ir_samples.vadd8_module () in
  let f = Vir.Vmodule.find_func_exn m "vadd8" in
  let du = Defuse.build f in
  (* params 0,1,2 are the three pointers; each used exactly once *)
  List.iter
    (fun p ->
      check Alcotest.int
        (Printf.sprintf "param %d uses" p.Vir.Func.preg)
        1
        (List.length (Defuse.uses_of du p.Vir.Func.preg)))
    f.Vir.Func.params

let test_defuse_dead_defs () =
  let m = Vir.Vmodule.create "dead" in
  let b = Vir.Builder.define m ~name:"f" ~params:[] ~ret_ty:Vir.Vtype.Void in
  let entry = Vir.Builder.new_block b "entry" in
  Vir.Builder.position_at_end b entry;
  let _unused =
    Vir.Builder.add b (Ir_samples.imm_i32 1) (Ir_samples.imm_i32 2)
  in
  Vir.Builder.ret b None;
  let f = Vir.Vmodule.find_func_exn m "f" in
  let du = Defuse.build f in
  check Alcotest.int "one dead def" 1 (List.length (Defuse.dead_defs du))

(* ---------------- Slice + Fig 3 taxonomy ---------------- *)

let test_fig3_taxonomy () =
  (* Paper Fig 3: i is both a control site and an address site; s is a
     pure-data site. *)
  let m, i_reg, s_reg, inext, snext = Ir_samples.fig3_foo_module () in
  let f = Vir.Vmodule.find_func_exn m "foo" in
  let du = Defuse.build f in
  let slice_i = Slice.forward_slice du i_reg in
  Alcotest.(check bool) "i slice has control flow" true
    (Slice.contains_control_flow slice_i);
  Alcotest.(check bool) "i slice has gep" true (Slice.contains_gep slice_i);
  let slice_s = Slice.forward_slice du s_reg in
  Alcotest.(check bool) "s slice has no control flow" false
    (Slice.contains_control_flow slice_s);
  Alcotest.(check bool) "s slice has no gep" false
    (Slice.contains_gep slice_s);
  (* The successors i' = i+1 and s' = s+i classify like their phis. *)
  let slice_inext = Slice.forward_slice du (Ir_samples.reg_of inext) in
  Alcotest.(check bool) "i+1 is control+address" true
    (Slice.contains_control_flow slice_inext
    && Slice.contains_gep slice_inext);
  let slice_snext = Slice.forward_slice du (Ir_samples.reg_of snext) in
  Alcotest.(check bool) "s+i is pure-data" true
    ((not (Slice.contains_control_flow slice_snext))
    && not (Slice.contains_gep slice_snext))

let test_slice_includes_self_gep () =
  (* A gep's own Lvalue must classify as an address site. *)
  let m = Ir_samples.scale_add_module () in
  let f = Vir.Vmodule.find_func_exn m "scale_add" in
  let du = Defuse.build f in
  let geps =
    List.filter Vir.Instr.is_gep (Vir.Func.all_instrs f)
  in
  Alcotest.(check bool) "has geps" true (geps <> []);
  List.iter
    (fun (g : Vir.Instr.t) ->
      let slice = Slice.forward_slice du g.Vir.Instr.id in
      Alcotest.(check bool) "gep Lvalue is address-classified" true
        (Slice.contains_gep slice))
    geps

let test_slice_store_is_terminal () =
  let m = Ir_samples.vadd8_module () in
  let f = Vir.Vmodule.find_func_exn m "vadd8" in
  let du = Defuse.build f in
  let store =
    List.find
      (fun (i : Vir.Instr.t) ->
        match i.Vir.Instr.op with Vir.Instr.Store _ -> true | _ -> false)
      (Vir.Func.all_instrs f)
  in
  let slice = Slice.forward_slice_of_instr du store in
  check Alcotest.int "store slice is only itself" 1 (List.length slice)

(* Regression: the slice visited-set keyed instructions by (id, op).
   Void instructions all share id = -1, so two structurally identical
   stores in different blocks collided and the second one silently
   dropped out of the slice. Dedup must be by physical identity. *)
let test_slice_identical_stores_both_kept () =
  let m = Vir.Vmodule.create "twin_stores" in
  let b =
    Vir.Builder.define m ~name:"f"
      ~params:[ ("p", Vir.Vtype.ptr); ("c", Vir.Vtype.bool_ty) ]
      ~ret_ty:Vir.Vtype.Void
  in
  let entry = Vir.Builder.new_block b "entry" in
  let bthen = Vir.Builder.new_block b "then" in
  let belse = Vir.Builder.new_block b "else" in
  Vir.Builder.position_at_end b entry;
  let v = Vir.Builder.add b (Ir_samples.imm_i32 1) (Ir_samples.imm_i32 2) in
  Vir.Builder.condbr b (Vir.Builder.param b "c") "then" "else";
  Vir.Builder.position_at_end b bthen;
  Vir.Builder.store b v (Vir.Builder.param b "p");
  Vir.Builder.ret b None;
  Vir.Builder.position_at_end b belse;
  (* identical in every structural field to the store in "then" *)
  Vir.Builder.store b v (Vir.Builder.param b "p");
  Vir.Builder.ret b None;
  let f = Vir.Vmodule.find_func_exn m "f" in
  let du = Defuse.build f in
  let slice = Slice.forward_slice du (Ir_samples.reg_of v) in
  check Alcotest.int "slice holds v and both stores" 3 (List.length slice);
  let stores =
    List.filter
      (fun (i : Vir.Instr.t) ->
        match i.Vir.Instr.op with Vir.Instr.Store _ -> true | _ -> false)
      slice
  in
  check Alcotest.int "both stores present" 2 (List.length stores)

(* ---------------- Sites ---------------- *)

let test_sites_fig2_relationship () =
  (* Fig 2: pure-data is disjoint from control and address; control and
     address may overlap. Check on the Fig 3 module. *)
  let m, _, _, _, _ = Ir_samples.fig3_foo_module () in
  let targets = Sites.targets_of_module m in
  List.iter
    (fun (t : Sites.target) ->
      if Sites.is_pure_data t then begin
        Alcotest.(check bool) "pure-data not control" false t.Sites.t_is_control;
        Alcotest.(check bool) "pure-data not address" false t.Sites.t_is_address
      end)
    targets;
  Alcotest.(check bool) "some control+address overlap exists" true
    (List.exists
       (fun (t : Sites.target) -> t.Sites.t_is_control && t.Sites.t_is_address)
       targets)

let test_sites_vector_lanes () =
  let m = Ir_samples.vadd8_module () in
  let targets = Sites.targets_of_module m in
  let vector_targets =
    List.filter (fun (t : Sites.target) -> t.Sites.t_lanes = 8) targets
  in
  (* loads, fadd, store value: all <8 x float> *)
  check Alcotest.int "four 8-lane targets" 4 (List.length vector_targets);
  Alcotest.(check bool) "site count multiplies lanes" true
    (Sites.total_sites targets >= 32)

let test_sites_store_value_target () =
  let m = Ir_samples.vadd8_module () in
  let targets = Sites.targets_of_module m in
  Alcotest.(check bool) "store value is a target" true
    (List.exists
       (fun (t : Sites.target) -> t.Sites.t_kind = Sites.Store_value)
       targets)

let test_sites_maskstore_value_target () =
  let m = Ir_samples.masked_copy_module Vir.Target.Avx in
  let targets = Sites.targets_of_module m in
  Alcotest.(check bool) "maskstore value is a target" true
    (List.exists
       (fun (t : Sites.target) -> t.Sites.t_kind = Sites.Maskstore_value)
       targets);
  (* the maskload Lvalue is also a target *)
  Alcotest.(check bool) "maskload Lvalue is a target" true
    (List.exists
       (fun (t : Sites.target) ->
         t.Sites.t_kind = Sites.Lvalue
         &&
         match t.Sites.t_instr.Vir.Instr.op with
         | Vir.Instr.Call (n, _) -> Vir.Intrinsics.is_masked n
         | _ -> false)
       targets)

let test_sites_exclude_vulfi_runtime () =
  let m = Vir.Vmodule.create "rt" in
  Vir.Vmodule.declare_extern m ~name:"__vulfi_inject_i32"
    ~arg_tys:[ Vir.Vtype.i32; Vir.Vtype.bool_ty; Vir.Vtype.i32 ]
    ~ret:Vir.Vtype.i32;
  let b = Vir.Builder.define m ~name:"f" ~params:[] ~ret_ty:Vir.Vtype.i32 in
  let entry = Vir.Builder.new_block b "entry" in
  Vir.Builder.position_at_end b entry;
  let x =
    Vir.Builder.call b ~ret:Vir.Vtype.i32 "__vulfi_inject_i32"
      [ Ir_samples.imm_i32 1; Ir_samples.imm_bool true; Ir_samples.imm_i32 0 ]
  in
  Vir.Builder.ret b (Some x);
  let targets = Sites.targets_of_module m in
  check Alcotest.int "runtime call is not a target" 0 (List.length targets)

let test_sites_category_select () =
  let m, _, _, _, _ = Ir_samples.fig3_foo_module () in
  let targets = Sites.targets_of_module m in
  let pd = Sites.select targets Sites.Pure_data in
  let ctl = Sites.select targets Sites.Control in
  let addr = Sites.select targets Sites.Address in
  Alcotest.(check bool) "each category non-empty" true
    (pd <> [] && ctl <> [] && addr <> []);
  List.iter
    (fun (t : Sites.target) ->
      Alcotest.(check bool) "select respects category" true
        (Sites.in_category t Sites.Control))
    ctl;
  check
    Alcotest.(option string)
    "category parsing" (Some "address")
    (Option.map Sites.category_name (Sites.category_of_string "addr"))

(* ---------------- Instmix (Fig 10 machinery) ---------------- *)

let vcopy_src =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int \
   n) { foreach (i = 0 ... n) { a2[i] = a1[i]; } }"

let test_instmix_vcopy () =
  List.iter
    (fun tgt ->
      let m = Minispc.Driver.compile tgt vcopy_src in
      let census = Instmix.census m in
      List.iter
        (fun (cat, mix) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s non-empty" (Vir.Target.name tgt)
               (Sites.category_name cat))
            true
            (Instmix.total mix > 0))
        census;
      (* pure-data in vcopy is dominated by the vector copy itself *)
      let pd = List.assoc Sites.Pure_data census in
      Alcotest.(check bool) "pure-data has vector instructions" true
        (pd.Instmix.vector_count > 0))
    Vir.Target.all

let test_instmix_scalar_only_module () =
  let m, _, _, _, _ = Ir_samples.fig3_foo_module () in
  let census = Instmix.census m in
  List.iter
    (fun (_, mix) ->
      check Alcotest.int "no vector instructions in scalar code" 0
        mix.Instmix.vector_count)
    census

let test_instmix_fraction () =
  check (Alcotest.float 0.0) "empty fraction" 0.0
    (Instmix.vector_fraction Instmix.empty);
  let m = { Instmix.scalar_count = 1; vector_count = 3 } in
  check (Alcotest.float 1e-9) "3/4 vector" 0.75 (Instmix.vector_fraction m)

(* ---------------- properties ---------------- *)

(* On any compiled program, categories partition as in Fig 2. *)
let prop_fig2_partition =
  QCheck.Test.make ~name:"pure-data disjoint from control/address (Fig 2)"
    ~count:20
    (QCheck.make (QCheck.Gen.oneofl [ 4; 8; 16; 32 ]))
    (fun _n ->
      let m = Minispc.Driver.compile Vir.Target.Avx vcopy_src in
      let targets = Sites.targets_of_module m in
      List.for_all
        (fun (t : Sites.target) ->
          if Sites.is_pure_data t then
            (not t.Sites.t_is_control) && not t.Sites.t_is_address
          else t.Sites.t_is_control || t.Sites.t_is_address)
        targets)

let prop_total_sites_geq_targets =
  QCheck.Test.make ~name:"total sites >= target count" ~count:10
    QCheck.unit
    (fun () ->
      let m = Minispc.Driver.compile Vir.Target.Sse vcopy_src in
      let targets = Sites.targets_of_module m in
      Sites.total_sites targets >= List.length targets)

let () =
  Alcotest.run "analysis"
    [
      ( "defuse",
        [
          Alcotest.test_case "def and uses" `Quick test_defuse_basic;
          Alcotest.test_case "params used" `Quick test_defuse_params_used;
          Alcotest.test_case "dead defs" `Quick test_defuse_dead_defs;
        ] );
      ( "slice",
        [
          Alcotest.test_case "Fig 3 taxonomy (i vs s)" `Quick
            test_fig3_taxonomy;
          Alcotest.test_case "gep Lvalue is address site" `Quick
            test_slice_includes_self_gep;
          Alcotest.test_case "store slice is terminal" `Quick
            test_slice_store_is_terminal;
          Alcotest.test_case "identical stores both kept" `Quick
            test_slice_identical_stores_both_kept;
        ] );
      ( "sites",
        [
          Alcotest.test_case "Fig 2 relationship" `Quick
            test_sites_fig2_relationship;
          Alcotest.test_case "vector lanes multiply sites" `Quick
            test_sites_vector_lanes;
          Alcotest.test_case "store value targeted" `Quick
            test_sites_store_value_target;
          Alcotest.test_case "maskstore value targeted" `Quick
            test_sites_maskstore_value_target;
          Alcotest.test_case "vulfi runtime excluded" `Quick
            test_sites_exclude_vulfi_runtime;
          Alcotest.test_case "category selection" `Quick
            test_sites_category_select;
        ] );
      ( "instmix",
        [
          Alcotest.test_case "vcopy census" `Quick test_instmix_vcopy;
          Alcotest.test_case "scalar module" `Quick
            test_instmix_scalar_only_module;
          Alcotest.test_case "vector fraction" `Quick test_instmix_fraction;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fig2_partition; prop_total_sites_geq_targets ] );
    ]

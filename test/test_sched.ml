(* Properties of the dependence-driven list scheduler.

   The scheduler's whole contract is legality: its output must be a
   permutation of the block body that keeps every fence (memory op,
   call, integer divide — every potential trap or injection point) at
   its exact index and orders every region-internal RAW edge
   producer-first ({!Analysis.Deps.respects}). The qcheck property
   below generates random straight-line programs mixing movable
   arithmetic with fences and checks that postcondition directly, plus
   determinism (same input, same output). A unit test pins the
   scheduler's purpose: a producer→consumer pair split by an unrelated
   instruction becomes physically adjacent, so {!Analysis.Chains} can
   fuse it. Finally, a campaign-level check runs one full (workload,
   category) cell with scheduling on and off and compares the traces
   byte-for-byte — the end-to-end statement that scheduling is
   unobservable in campaign results. *)

open Vir

let vl = 8
let i32v = Vtype.vector vl Vtype.I32
let f32v = Vtype.vector vl Vtype.F32

(* Build a single-block function from a step recipe: each step emits
   either a movable op over previously defined values or a fence
   (store / load / integer divide). The program is never executed —
   the scheduler is a static pass — so memory shape and div operands
   need not be safe. *)
let build_program (steps : int list) : Func.t =
  let m = Vmodule.create "sched" in
  let b =
    Builder.define m ~name:"f"
      ~params:
        [
          ("p", Vtype.ptr); ("a", i32v); ("b", i32v); ("x", f32v);
          ("y", f32v);
        ]
      ~ret_ty:i32v
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let ints = ref [ Builder.param b "a"; Builder.param b "b" ] in
  let floats = ref [ Builder.param b "x"; Builder.param b "y" ] in
  let p = Builder.param b "p" in
  let pick l n = List.nth l (abs n mod List.length l) in
  List.iter
    (fun s ->
      let c = abs s in
      match c mod 8 with
      | 0 -> ints := Builder.add b (pick !ints c) (pick !ints (c / 7)) :: !ints
      | 1 -> ints := Builder.mul b (pick !ints c) (pick !ints (c / 7)) :: !ints
      | 2 ->
        floats := Builder.fadd b (pick !floats c) (pick !floats (c / 7)) :: !floats
      | 3 ->
        floats := Builder.fmul b (pick !floats c) (pick !floats (c / 7)) :: !floats
      | 4 ->
        floats := Builder.fsub b (pick !floats c) (pick !floats (c / 7)) :: !floats
      | 5 -> Builder.store b (pick !ints c) p (* fence *)
      | 6 -> ints := Builder.load b i32v p :: !ints (* fence *)
      | _ ->
        (* fence: sdiv can trap, so it must never move *)
        ints := Builder.sdiv b (pick !ints c) (pick !ints (c / 7)) :: !ints)
    steps;
  Builder.ret b (Some (pick !ints 0));
  List.hd m.Vmodule.funcs

let body_and_terminator (f : Func.t) =
  let instrs = (List.hd f.Func.blocks).Block.instrs in
  let body, term =
    List.partition
      (fun (i : Instr.t) ->
        match i.Instr.op with
        | Instr.Phi _ | Instr.Br _ | Instr.Condbr _ | Instr.Ret _
        | Instr.Unreachable ->
          false
        | _ -> true)
      instrs
  in
  (Array.of_list body, List.hd term)

let steps_gen = QCheck.Gen.(list_size (int_range 2 24) (int_range 0 1000))

let prop_respects =
  QCheck.Test.make
    ~name:"scheduled body is a dependence-respecting permutation" ~count:300
    (QCheck.make steps_gen ~print:QCheck.Print.(list int))
    (fun steps ->
      let f = build_program steps in
      let du = Analysis.Defuse.build f in
      let body, term = body_and_terminator f in
      let sched, moves = Analysis.Sched.schedule_body du ~terminator:term body in
      if not (Analysis.Deps.respects body sched) then
        QCheck.Test.fail_report "scheduler output violates dependences";
      (* Determinism: scheduling the same body again is identical. *)
      let sched', moves' =
        Analysis.Sched.schedule_body du ~terminator:term body
      in
      if moves <> moves' || not (Array.for_all2 ( == ) sched sched') then
        QCheck.Test.fail_report "scheduler is nondeterministic";
      true)

(* The reason the pass exists: a single-use producer separated from its
   consumer by an unrelated instruction becomes adjacent, making the
   pair visible to the chain finder (no chain before, a chain after). *)
let test_makes_chains_adjacent () =
  let m = Vmodule.create "sched" in
  let b =
    Builder.define m ~name:"f"
      ~params:[ ("a", i32v); ("b", i32v); ("x", f32v); ("y", f32v) ]
      ~ret_ty:f32v
  in
  Builder.position_at_end b (Builder.new_block b "entry");
  let t1 = Builder.fmul b (Builder.param b "x") (Builder.param b "y") in
  (* unrelated int op splits the float chain *)
  let u = Builder.add b (Builder.param b "a") (Builder.param b "b") in
  let u2 = Builder.mul b u u in
  ignore u2;
  let t2 = Builder.fadd b t1 (Builder.param b "x") in
  Builder.ret b (Some t2);
  let f = List.hd m.Vmodule.funcs in
  let before = Analysis.Chains.find f in
  Alcotest.(check bool)
    "float pair not adjacent before scheduling" true
    (not
       (List.exists
          (fun (c : Analysis.Chains.chain) ->
            Analysis.Chains.rule_name c.Analysis.Chains.c_rule
            = "fbinop_fbinop")
          before));
  let moves = Passes.Schedule.run_module m in
  Alcotest.(check bool) "scheduler moved something" true (moves > 0);
  let after = Analysis.Chains.find f in
  Alcotest.(check bool)
    "float pair fusible after scheduling" true
    (List.exists
       (fun (c : Analysis.Chains.chain) ->
         Analysis.Chains.rule_name c.Analysis.Chains.c_rule = "fbinop_fbinop")
       after)

(* ---------------- campaign-level byte-identity ---------------- *)

let tiny_cfg =
  {
    Vulfi.Campaign.experiments_per_campaign = 25;
    min_campaigns = 3;
    max_campaigns = 3;
    margin_target = 1.0;
    seed = 20260808;
  }

let micro name =
  match Benchmarks.Registry.find name with
  | Some b -> b.Benchmarks.Harness.bench
  | None -> Alcotest.fail ("missing benchmark " ^ name)

(* Scheduling must be invisible end to end: the full campaign trace —
   every experiment record, every outcome, every dynamic count — is
   byte-identical with the scheduler on and off. *)
let test_campaign_trace_identity () =
  let traced on =
    let saved = !Vulfi.Experiment.schedule_enabled in
    Vulfi.Experiment.schedule_enabled := on;
    Fun.protect
      ~finally:(fun () -> Vulfi.Experiment.schedule_enabled := saved)
      (fun () ->
        let buf = Buffer.create 4096 in
        let sink = Vulfi.Trace.to_buffer buf in
        ignore
          (Vulfi.Campaign.run ~sink tiny_cfg (micro "dot product")
             Vir.Target.Avx Analysis.Sites.Pure_data);
        Vulfi.Trace.close sink;
        Buffer.contents buf)
  in
  let on = traced true and off = traced false in
  Alcotest.(check string) "schedule on == schedule off" on off

let () =
  Alcotest.run "sched"
    [
      ( "legality",
        [
          QCheck_alcotest.to_alcotest prop_respects;
          Alcotest.test_case "scheduling enables fusion" `Quick
            test_makes_chains_adjacent;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "campaign trace identical on/off" `Quick
            test_campaign_trace_identity;
        ] );
    ]

(* Tests for the checkpointed and fast-forward execution layers: Memory
   snapshot/restore (differential against a fresh replay), Machine.reset
   (including prefix accounting), masked access at region edges,
   full-machine checkpoint resume == fresh replay differentials,
   convergence-pruning soundness, and legacy == checkpointed ==
   fast-forward == converge-pruned campaign equivalence down to trace
   bytes, plus the small-sample stats and progress-line edges. *)

open QCheck

let check = Alcotest.check

(* ---------------- snapshot/restore: differential model ---------------- *)

(* A random program over the memory API. Region/offset picks are raw
   ints reduced modulo the live state at interpretation time, so every
   generated program is valid by construction. *)
type op =
  | Alloc of int  (** words *)
  | Store of int * int * int  (** region pick, word-offset pick, value *)

let op_gen =
  Gen.oneof
    [
      Gen.map (fun w -> Alloc w) (Gen.int_range 1 64);
      Gen.map
        (fun ((r, o), v) -> Store (r, o, v))
        Gen.(pair (pair (int_range 0 1000) (int_range 0 1000)) int);
    ]

let ops_gen = Gen.(pair (list_size (int_range 1 25) op_gen) (list_size (int_range 0 25) op_gen))

let print_op = function
  | Alloc w -> Printf.sprintf "Alloc %d" w
  | Store (r, o, v) -> Printf.sprintf "Store (%d, %d, %d)" r o v

let print_ops (pre, post) =
  Printf.sprintf "pre=[%s] post=[%s]"
    (String.concat "; " (List.map print_op pre))
    (String.concat "; " (List.map print_op post))

(* Interpret [ops] against [mem], appending each allocation's
   (base, words) to [regions]. *)
let apply mem regions ops =
  List.iter
    (fun op ->
      match op with
      | Alloc words ->
        let base =
          Interp.Memory.alloc mem
            ~name:(Printf.sprintf "r%d" (List.length !regions))
            ~bytes:(4 * words)
        in
        regions := !regions @ [ (base, words) ]
      | Store (r, o, v) -> (
        match !regions with
        | [] -> ()
        | rs ->
          let base, words = List.nth rs (r mod List.length rs) in
          let addr = Int64.add base (Int64.of_int (4 * (o mod words))) in
          Interp.Memory.store mem (Interp.Vvalue.of_i32 v) addr))
    ops

let observe mem regions =
  List.map
    (fun (base, words) -> Interp.Memory.read_i32_array mem base words)
    regions

(* restore(snapshot) after arbitrary further stores and allocations must
   be observationally equal to a fresh memory that only ran the prefix —
   same contents, and the same base for the next allocation (the bump
   pointer rolls back, so post-restore allocs replay at fresh-run
   addresses). *)
let prop_restore_equals_fresh_replay =
  Test.make ~name:"restore == fresh replay of the prefix" ~count:200
    (make ops_gen ~print:print_ops)
    (fun (pre, post) ->
      let m1 = Interp.Memory.create () in
      let rs1 = ref [] in
      apply m1 rs1 pre;
      let snap = Interp.Memory.snapshot m1 in
      apply m1 rs1 post;
      Interp.Memory.restore m1 snap;
      let m2 = Interp.Memory.create () in
      let rs2 = ref [] in
      apply m2 rs2 pre;
      let pre_regions = !rs2 in
      (* contents of every prefix region match the fresh replay *)
      observe m1 pre_regions = observe m2 pre_regions
      (* the bump pointer rolled back: the next alloc lands where the
         fresh replay's does *)
      && Interp.Memory.alloc m1 ~name:"probe" ~bytes:16
         = Interp.Memory.alloc m2 ~name:"probe" ~bytes:16)

(* Restoring the same snapshot repeatedly keeps working: the dirty-span
   fast path must re-arm after each restore. *)
let prop_double_restore =
  Test.make ~name:"restore is idempotent across faulty epochs" ~count:100
    (make ops_gen ~print:print_ops)
    (fun (pre, post) ->
      let m1 = Interp.Memory.create () in
      let rs1 = ref [] in
      apply m1 rs1 pre;
      let snap = Interp.Memory.snapshot m1 in
      let pre_regions = !rs1 in
      let obs0 = observe m1 pre_regions in
      (* two epochs of post-snapshot damage, each rolled back; each
         epoch starts from the snapshot's region list because restore
         drops the previous epoch's allocations *)
      apply m1 (ref pre_regions) post;
      Interp.Memory.restore m1 snap;
      apply m1 (ref pre_regions) (List.rev post);
      Interp.Memory.restore m1 snap;
      observe m1 pre_regions = obs0)

(* An older snapshot must still restore correctly after a newer one has
   been taken and used (the stale-generation full-copy path). *)
let test_stale_snapshot_restores () =
  let mem = Interp.Memory.create () in
  let a = Interp.Memory.alloc mem ~name:"a" ~bytes:64 in
  Interp.Memory.write_i32_array mem a (Array.init 16 (fun i -> i));
  let snap1 = Interp.Memory.snapshot mem in
  Interp.Memory.write_i32_array mem a (Array.make 16 111);
  let snap2 = Interp.Memory.snapshot mem in
  Interp.Memory.write_i32_array mem a (Array.make 16 222);
  Interp.Memory.restore mem snap2;
  check
    Alcotest.(array int)
    "newest snapshot restores" (Array.make 16 111)
    (Interp.Memory.read_i32_array mem a 16);
  (* snap1 is now a stale generation: full-copy fallback *)
  Interp.Memory.restore mem snap1;
  check
    Alcotest.(array int)
    "stale snapshot restores"
    (Array.init 16 (fun i -> i))
    (Interp.Memory.read_i32_array mem a 16);
  (* and the rolled-back state is fully functional again *)
  Interp.Memory.write_i32_array mem a (Array.make 16 7);
  Interp.Memory.restore mem snap1;
  check
    Alcotest.(array int)
    "re-restore after new damage"
    (Array.init 16 (fun i -> i))
    (Interp.Memory.read_i32_array mem a 16)

(* ---------------- masked access at region edges ---------------- *)

(* AVX maskload/maskstore semantics: a masked-off lane may point out of
   bounds without trapping. Generate an 8-lane access straddling the end
   of a region with exactly the out-of-bounds lanes masked off. *)
let prop_masked_oob_lanes_never_trap =
  Test.make
    ~name:"masked load/store: OOB masked-off lanes never trap" ~count:200
    (make
       Gen.(pair (int_range 8 32) (int_range 0 8))
       ~print:(fun (words, live) ->
         Printf.sprintf "words=%d live=%d" words live))
    (fun (words, live) ->
      let mem = Interp.Memory.create () in
      let base = Interp.Memory.alloc mem ~name:"edge" ~bytes:(4 * words) in
      Interp.Memory.write_f32_array mem base
        (Array.init words (fun i -> float_of_int i));
      (* the access starts [live] words before the end: lanes >= live
         point past the region and must be masked off *)
      let addr = Int64.add base (Int64.of_int (4 * (words - live))) in
      let mask =
        Interp.Vvalue.I
          ( Vir.Vtype.I1,
            Interp.Ilanes.init 8 (fun i -> if i < live then 1L else 0L) )
      in
      let loaded =
        Interp.Memory.masked_load mem (Vir.Vtype.vector 8 Vir.Vtype.F32) addr
          ~mask
      in
      let load_ok =
        Array.for_all Fun.id
          (Array.init 8 (fun i ->
               let got = Interp.Vvalue.float_lane loaded i in
               if i < live then got = float_of_int (words - live + i)
               else got = 0.0))
      in
      (* masked store through the same edge: enabled lanes written,
         disabled (OOB) lanes untouched and unchecked *)
      let v =
        Interp.Vvalue.F (Vir.Vtype.F32, Array.make 8 (-1.0))
      in
      Interp.Memory.store ~mask mem v addr;
      let back = Interp.Memory.read_f32_array mem base words in
      let store_ok =
        Array.for_all Fun.id
          (Array.init words (fun i ->
               if i >= words - live then back.(i) = -1.0
               else back.(i) = float_of_int i))
      in
      load_ok && store_ok)

(* ---------------- Machine.reset ---------------- *)

let reset_src =
  "export void scale(uniform float a[], uniform int n) { foreach (i = 0 \
   ... n) { a[i] = a[i] * 2.0 + 1.0; } }"

(* snapshot + reset turns one machine into many fresh runs: each rerun
   must reproduce the first run's output and dynamic counters. *)
let test_reset_rerun_equals_fresh () =
  let n = 19 in
  let m = Minispc.Driver.compile Vir.Target.Avx reset_src in
  let st = Interp.Machine.create (Interp.Compile.compile_module m) in
  let mem = Interp.Machine.memory st in
  let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
  Interp.Memory.write_f32_array mem a
    (Array.init n (fun i -> float_of_int i *. 0.5));
  let snap = Interp.Memory.snapshot mem in
  let args = [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_i32 n ] in
  ignore (Interp.Machine.run st "scale" args);
  let out1 = Interp.Memory.read_f32_array mem a n in
  let dyn1 = Interp.Machine.dyn_count st in
  let vec1 = Interp.Machine.dyn_vector_count st in
  for _epoch = 1 to 3 do
    Interp.Memory.restore mem snap;
    Interp.Machine.reset st;
    ignore (Interp.Machine.run st "scale" args);
    check
      Alcotest.(array (float 0.0))
      "rerun output identical" out1
      (Interp.Memory.read_f32_array mem a n);
    check Alcotest.int "dyn count restarts" dyn1 (Interp.Machine.dyn_count st);
    check Alcotest.int "vector count restarts" vec1
      (Interp.Machine.dyn_vector_count st)
  done

(* reset ~budget re-arms the fuel: a budget generous on the first run
   but exhausted mid-rerun would otherwise leak across epochs. *)
let test_reset_rearms_budget () =
  let n = 16 in
  let build () =
    let m = Minispc.Driver.compile Vir.Target.Avx reset_src in
    let st = Interp.Machine.create (Interp.Compile.compile_module m) in
    let mem = Interp.Machine.memory st in
    let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
    Interp.Memory.write_f32_array mem a (Array.make n 1.0);
    (st, [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_i32 n ])
  in
  let st, args = build () in
  ignore (Interp.Machine.run st "scale" args);
  let cost = Interp.Machine.dyn_count st in
  (* a fresh machine with budget < cost traps... *)
  let st2, args2 = build () in
  Interp.Machine.reset ~budget:(cost - 1) st2;
  (match Interp.Machine.run st2 "scale" args2 with
  | _ -> Alcotest.fail "expected budget trap"
  | exception Interp.Trap.Trap Interp.Trap.Budget_exhausted -> ());
  (* ...and reset ~budget back above cost makes it run again *)
  Interp.Machine.reset ~budget:(cost + 1) st2;
  ignore (Interp.Machine.run st2 "scale" args2);
  check Alcotest.int "rerun cost" cost (Interp.Machine.dyn_count st2)

(* reset ~budget ~spent pre-charges a skipped prefix: dyn_count keeps
   its whole-run meaning (prefix + executed suffix) and the prefix
   counts against the budget — a mid-epoch re-arm can't mint fuel. *)
let test_reset_spent_accounting () =
  let n = 16 in
  let m = Minispc.Driver.compile Vir.Target.Avx reset_src in
  let st = Interp.Machine.create (Interp.Compile.compile_module m) in
  let mem = Interp.Machine.memory st in
  let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
  Interp.Memory.write_f32_array mem a (Array.make n 1.0);
  let args = [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_i32 n ] in
  ignore (Interp.Machine.run st "scale" args);
  let cost = Interp.Machine.dyn_count st in
  Interp.Machine.reset ~budget:(cost + 100) ~spent:100 st;
  check Alcotest.int "spent prefix visible before running" 100
    (Interp.Machine.dyn_count st);
  ignore (Interp.Machine.run st "scale" args);
  check Alcotest.int "dyn_count = prefix + suffix" (cost + 100)
    (Interp.Machine.dyn_count st);
  (* the prefix consumes budget: remaining fuel below cost must trap *)
  Interp.Machine.reset ~budget:(cost + 100) ~spent:102 st;
  (match Interp.Machine.run st "scale" args with
  | _ -> Alcotest.fail "expected budget trap"
  | exception Interp.Trap.Trap Interp.Trap.Budget_exhausted -> ());
  (* and a plain reset afterwards clears the prefix entirely *)
  Interp.Machine.reset st;
  ignore (Interp.Machine.run st "scale" args);
  check Alcotest.int "plain reset clears prefix" cost
    (Interp.Machine.dyn_count st)

(* ---------------- faulty_run == faulty_run_checkpointed -------------- *)

let vcopy_src =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int \
   n) { foreach (i = 0 ... n) { a2[i] = a1[i]; } }"

let vcopy_workload lengths =
  {
    Vulfi.Workload.w_name = "vcopy";
    w_fn = "vcopy_ispc";
    w_out_tolerance = 0.0;
    w_inputs = List.length lengths;
    w_build = (fun target -> Minispc.Driver.compile target vcopy_src);
    w_setup =
      (fun ~input st ->
        let n = List.nth lengths input in
        let mem = Interp.Machine.memory st in
        let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
        let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
        Interp.Memory.write_i32_array mem a1
          (Array.init n (fun i -> (i * 37) - 11));
        ( [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
            Interp.Vvalue.of_i32 n ],
          fun () ->
            {
              Vulfi.Outcome.empty_output with
              Vulfi.Outcome.o_i32 = [ Interp.Memory.read_i32_array mem a2 n ];
            } ));
  }

(* Site-by-site: a prepared input, its machine reused across every
   (site, seed) pair, must reproduce the two-runs-per-experiment
   protocol exactly — outcome, injection record, dynamic instructions.
   Address faults make some epochs crash mid-run, so the next epoch also
   proves restore-after-trap. *)
let test_checkpointed_faulty_runs_match () =
  List.iter
    (fun category ->
      let w = vcopy_workload [ 24 ] in
      let p = Vulfi.Experiment.prepare w Vir.Target.Avx category in
      let g = Vulfi.Experiment.golden_run p ~input:0 in
      let pi = Vulfi.Experiment.prepare_input p ~input:0 in
      check Alcotest.int "golden dyn sites agree"
        g.Vulfi.Experiment.g_dyn_sites
        pi.Vulfi.Experiment.pi_golden.Vulfi.Experiment.g_dyn_sites;
      for k = 1 to min 25 g.Vulfi.Experiment.g_dyn_sites do
        let seed = 4000 + k in
        let legacy =
          Vulfi.Experiment.faulty_run p ~golden:g ~dynamic_site:k ~seed
        in
        let ckpt =
          Vulfi.Experiment.faulty_run_checkpointed p ~pi ~dynamic_site:k
            ~seed
        in
        let label fmt =
          Printf.sprintf "%s site %d: %s"
            (Analysis.Sites.category_name category)
            k fmt
        in
        check Alcotest.string (label "outcome")
          (Vulfi.Outcome.to_string legacy.Vulfi.Experiment.r_outcome)
          (Vulfi.Outcome.to_string ckpt.Vulfi.Experiment.r_outcome);
        check Alcotest.int (label "dyn instrs")
          legacy.Vulfi.Experiment.r_dyn_instrs
          ckpt.Vulfi.Experiment.r_dyn_instrs;
        match
          ( legacy.Vulfi.Experiment.r_injection,
            ckpt.Vulfi.Experiment.r_injection )
        with
        | Some a, Some b ->
          check Alcotest.int (label "bit") a.Vulfi.Runtime.inj_bit
            b.Vulfi.Runtime.inj_bit;
          Alcotest.(check bool)
            (label "corrupted value") true
            (Interp.Vvalue.equal a.Vulfi.Runtime.inj_after
               b.Vulfi.Runtime.inj_after)
        | None, None -> ()
        | _ -> Alcotest.failf "%s: injection records diverge" (label "")
      done)
    Analysis.Sites.all_categories

(* ---------------- fast-forward resume == fresh replay ---------------- *)

let check_runs_equal label (legacy : Vulfi.Experiment.run_result)
    (ff : Vulfi.Experiment.run_result) =
  check Alcotest.string (label ^ ": outcome")
    (Vulfi.Outcome.to_string legacy.Vulfi.Experiment.r_outcome)
    (Vulfi.Outcome.to_string ff.Vulfi.Experiment.r_outcome);
  check Alcotest.int (label ^ ": dyn instrs")
    legacy.Vulfi.Experiment.r_dyn_instrs ff.Vulfi.Experiment.r_dyn_instrs;
  match (legacy.Vulfi.Experiment.r_injection, ff.Vulfi.Experiment.r_injection)
  with
  | Some a, Some b ->
    check Alcotest.int (label ^ ": static site") a.Vulfi.Runtime.inj_static_site
      b.Vulfi.Runtime.inj_static_site;
    check Alcotest.int (label ^ ": bit") a.Vulfi.Runtime.inj_bit
      b.Vulfi.Runtime.inj_bit;
    Alcotest.(check bool)
      (label ^ ": corrupted value") true
      (Interp.Vvalue.equal a.Vulfi.Runtime.inj_after b.Vulfi.Runtime.inj_after)
  | None, None -> ()
  | _ -> Alcotest.failf "%s: injection records diverge" label

(* checkpoint_plan is a pure function: distinct positive sites,
   ascending; thinning keeps the rightmost site of each equal slice. *)
let test_checkpoint_plan () =
  check
    Alcotest.(array int)
    "dedup + sort + drop nonpositive" [| 1; 3; 7 |]
    (Vulfi.Experiment.checkpoint_plan [ 7; 3; 1; 3; 0; -2; 7 ]);
  check
    Alcotest.(array int)
    "thinned keeps rightmost per slice" [| 3; 6 |]
    (Vulfi.Experiment.checkpoint_plan ~max_checkpoints:2 [ 1; 2; 3; 4; 5; 6 ]);
  check Alcotest.(array int) "empty schedule" [||]
    (Vulfi.Experiment.checkpoint_plan [])

(* Site-by-site, every category: resuming from a full machine-state
   checkpoint must reproduce the two-runs-per-experiment protocol
   exactly. n = 19 leaves a masked 8-lane tail (straddle loads with OOB
   masked-off lanes), and the Address category makes epochs crash
   mid-suffix, so consecutive sites also prove resume-after-trap. A
   dense plan (every probed site has its own checkpoint) and a sparse
   thinned plan (most sites resume from an earlier checkpoint, sites
   below the first fall back to a full replay) must both match. *)
let test_ff_faulty_runs_match () =
  List.iter
    (fun category ->
      let w = vcopy_workload [ 19 ] in
      let p = Vulfi.Experiment.prepare w Vir.Target.Avx category in
      let pi = Vulfi.Experiment.prepare_input p ~input:0 in
      let g = pi.Vulfi.Experiment.pi_golden in
      let hi = min 25 g.Vulfi.Experiment.g_dyn_sites in
      let all_sites = List.init hi (fun i -> i + 1) in
      let plans =
        [
          ("dense", Vulfi.Experiment.checkpoint_plan all_sites);
          ( "sparse",
            Vulfi.Experiment.checkpoint_plan ~max_checkpoints:3
              (* drop site 1 so low sites exercise the no-checkpoint
                 fallback *)
              (List.filter (fun s -> s > hi / 3) all_sites) );
        ]
      in
      List.iter
        (fun (pname, plan) ->
          let ff = Vulfi.Experiment.lay_checkpoints p ~pi ~plan in
          check Alcotest.int
            (Printf.sprintf "%s %s: checkpoints laid"
               (Analysis.Sites.category_name category)
               pname)
            (Array.length plan)
            (Array.length ff.Vulfi.Experiment.ff_checkpoints);
          for k = 1 to hi do
            let seed = 7000 + k in
            let legacy =
              Vulfi.Experiment.faulty_run p ~golden:g ~dynamic_site:k ~seed
            in
            let ff_r =
              Vulfi.Experiment.faulty_run_ff p ~ff ~dynamic_site:k ~seed
            in
            check_runs_equal
              (Printf.sprintf "%s %s site %d"
                 (Analysis.Sites.category_name category)
                 pname k)
              legacy ff_r
          done)
        plans)
    Analysis.Sites.all_categories

(* Every fault kind through the resume path (the corruption draws its
   RNG in the executed suffix, so kind must not matter to equivalence). *)
let test_ff_fault_kinds_match () =
  let kinds =
    [
      Vulfi.Runtime.Single_bit_flip;
      Vulfi.Runtime.Multi_bit_flip 3;
      Vulfi.Runtime.Random_value;
      Vulfi.Runtime.Stuck_at_zero;
    ]
  in
  let w = vcopy_workload [ 19 ] in
  let p =
    Vulfi.Experiment.prepare w Vir.Target.Avx Analysis.Sites.Pure_data
  in
  let pi = Vulfi.Experiment.prepare_input p ~input:0 in
  let g = pi.Vulfi.Experiment.pi_golden in
  let hi = min 12 g.Vulfi.Experiment.g_dyn_sites in
  let plan =
    Vulfi.Experiment.checkpoint_plan ~max_checkpoints:4
      (List.init hi (fun i -> i + 1))
  in
  let ff = Vulfi.Experiment.lay_checkpoints p ~pi ~plan in
  List.iter
    (fun fault_kind ->
      for k = 1 to hi do
        let seed = 11000 + k in
        let legacy =
          Vulfi.Experiment.faulty_run ~fault_kind p ~golden:g ~dynamic_site:k
            ~seed
        in
        let ff_r =
          Vulfi.Experiment.faulty_run_ff ~fault_kind p ~ff ~dynamic_site:k
            ~seed
        in
        check_runs_equal
          (Printf.sprintf "%s site %d"
             (Vulfi.Runtime.fault_kind_name fault_kind)
             k)
          legacy ff_r
      done)
    kinds

(* Converge-pruned, site-by-site, every category: early termination at
   a matching checkpoint site must splice an outcome byte-identical to
   the full legacy protocol — including for crashes, SDCs and detected
   runs that never converge and run out through the detach path. The
   sparse plan exercises sites below the first checkpoint (fresh-start
   tracked run) and the pruning-disabled delegation. *)
let test_pruned_faulty_runs_match () =
  Vulfi.Experiment.reset_prune_stats ();
  List.iter
    (fun category ->
      let w = vcopy_workload [ 19 ] in
      let p = Vulfi.Experiment.prepare w Vir.Target.Avx category in
      let pi = Vulfi.Experiment.prepare_input p ~input:0 in
      let g = pi.Vulfi.Experiment.pi_golden in
      let hi = min 25 g.Vulfi.Experiment.g_dyn_sites in
      let all_sites = List.init hi (fun i -> i + 1) in
      let plans =
        [
          ("dense", Vulfi.Experiment.checkpoint_plan all_sites);
          ( "sparse",
            Vulfi.Experiment.checkpoint_plan ~max_checkpoints:3
              (List.filter (fun s -> s > hi / 3) all_sites) );
        ]
      in
      List.iter
        (fun (pname, plan) ->
          let ff = Vulfi.Experiment.lay_checkpoints p ~pi ~plan in
          for k = 1 to hi do
            let seed = 7000 + k in
            let legacy =
              Vulfi.Experiment.faulty_run p ~golden:g ~dynamic_site:k ~seed
            in
            let pr =
              Vulfi.Experiment.faulty_run_pruned p ~ff ~dynamic_site:k ~seed
            in
            check_runs_equal
              (Printf.sprintf "pruned %s %s site %d"
                 (Analysis.Sites.category_name category)
                 pname k)
              legacy pr
          done)
        plans)
    Analysis.Sites.all_categories;
  (* the equivalence must not be vacuous: across the sweep some runs
     actually compared states and some actually pruned *)
  let prunes, checks = Vulfi.Experiment.prune_stats () in
  Alcotest.(check bool) "state comparisons ran" true (checks > 0);
  Alcotest.(check bool) "some runs pruned" true (prunes > 0)

(* Every fault kind through the pruned path: convergence only splices
   when the post-injection state matches bit-for-bit, so the corruption
   shape must not matter to equivalence. *)
let test_pruned_fault_kinds_match () =
  let kinds =
    [
      Vulfi.Runtime.Single_bit_flip;
      Vulfi.Runtime.Multi_bit_flip 3;
      Vulfi.Runtime.Random_value;
      Vulfi.Runtime.Stuck_at_zero;
    ]
  in
  let w = vcopy_workload [ 19 ] in
  let p =
    Vulfi.Experiment.prepare w Vir.Target.Avx Analysis.Sites.Pure_data
  in
  let pi = Vulfi.Experiment.prepare_input p ~input:0 in
  let g = pi.Vulfi.Experiment.pi_golden in
  let hi = min 12 g.Vulfi.Experiment.g_dyn_sites in
  let plan =
    Vulfi.Experiment.checkpoint_plan ~max_checkpoints:4
      (List.init hi (fun i -> i + 1))
  in
  let ff = Vulfi.Experiment.lay_checkpoints p ~pi ~plan in
  List.iter
    (fun fault_kind ->
      for k = 1 to hi do
        let seed = 11000 + k in
        let legacy =
          Vulfi.Experiment.faulty_run ~fault_kind p ~golden:g ~dynamic_site:k
            ~seed
        in
        let pr =
          Vulfi.Experiment.faulty_run_pruned ~fault_kind p ~ff ~dynamic_site:k
            ~seed
        in
        check_runs_equal
          (Printf.sprintf "pruned %s site %d"
             (Vulfi.Runtime.fault_kind_name fault_kind)
             k)
          legacy pr
      done)
    kinds

(* QCheck differential: random (category, fault kind, plan density,
   site, seed) — resume-from-checkpoint == fresh replay. Prepared
   machines and laid checkpoints are cached per (category, density);
   the property itself only runs the two faulty executions. *)
let prop_ff_equals_legacy =
  let categories = Array.of_list Analysis.Sites.all_categories in
  let kinds =
    [|
      Vulfi.Runtime.Single_bit_flip;
      Vulfi.Runtime.Multi_bit_flip 2;
      Vulfi.Runtime.Random_value;
      Vulfi.Runtime.Stuck_at_zero;
    |]
  in
  let cache = Hashtbl.create 8 in
  let cell_for cat_i density =
    let key = (cat_i, density) in
    match Hashtbl.find_opt cache key with
    | Some c -> c
    | None ->
      let w = vcopy_workload [ 19 ] in
      let p =
        Vulfi.Experiment.prepare w Vir.Target.Avx categories.(cat_i)
      in
      let pi = Vulfi.Experiment.prepare_input p ~input:0 in
      let g = pi.Vulfi.Experiment.pi_golden in
      let hi = min 20 g.Vulfi.Experiment.g_dyn_sites in
      let plan =
        Vulfi.Experiment.checkpoint_plan ~max_checkpoints:density
          (List.init hi (fun i -> i + 1))
      in
      let ff = Vulfi.Experiment.lay_checkpoints p ~pi ~plan in
      let c = (p, g, ff, hi) in
      Hashtbl.add cache key c;
      c
  in
  Test.make ~name:"ff == legacy (random category/kind/plan/site/seed)"
    ~count:120
    (make
       Gen.(
         quad (int_range 0 (Array.length categories - 1))
           (int_range 0 (Array.length kinds - 1))
           (int_range 1 5) (pair (int_range 0 10_000) (int_range 0 10_000)))
       ~print:(fun (c, k, d, (site, seed)) ->
         Printf.sprintf "cat=%d kind=%d density=%d site_pick=%d seed=%d" c k
           d site seed))
    (fun (cat_i, kind_i, density, (site_pick, seed)) ->
      let p, g, ff, hi = cell_for cat_i density in
      let dynamic_site = 1 + (site_pick mod hi) in
      let fault_kind = kinds.(kind_i) in
      let legacy =
        Vulfi.Experiment.faulty_run ~fault_kind p ~golden:g ~dynamic_site
          ~seed
      in
      let ff_r =
        Vulfi.Experiment.faulty_run_ff ~fault_kind p ~ff ~dynamic_site ~seed
      in
      Vulfi.Outcome.to_string legacy.Vulfi.Experiment.r_outcome
      = Vulfi.Outcome.to_string ff_r.Vulfi.Experiment.r_outcome
      && legacy.Vulfi.Experiment.r_dyn_instrs
         = ff_r.Vulfi.Experiment.r_dyn_instrs
      &&
      match
        (legacy.Vulfi.Experiment.r_injection, ff_r.Vulfi.Experiment.r_injection)
      with
      | Some a, Some b ->
        a.Vulfi.Runtime.inj_static_site = b.Vulfi.Runtime.inj_static_site
        && a.Vulfi.Runtime.inj_bit = b.Vulfi.Runtime.inj_bit
        && Interp.Vvalue.equal a.Vulfi.Runtime.inj_after
             b.Vulfi.Runtime.inj_after
      | None, None -> true
      | _ -> false)

(* QCheck convergence-soundness differential: random (category, fault
   kind, plan density, site, seed) — the pruned executor, which may
   terminate a run early and splice the golden outcome, must be
   indistinguishable from the full legacy protocol on outcome, dynamic
   instruction count and injection record. This is the soundness
   property of the pruning: a splice is only allowed when provably
   byte-identical to running the suffix out. *)
let prop_pruned_equals_legacy =
  let categories = Array.of_list Analysis.Sites.all_categories in
  let kinds =
    [|
      Vulfi.Runtime.Single_bit_flip;
      Vulfi.Runtime.Multi_bit_flip 2;
      Vulfi.Runtime.Random_value;
      Vulfi.Runtime.Stuck_at_zero;
    |]
  in
  let cache = Hashtbl.create 8 in
  let cell_for cat_i density =
    let key = (cat_i, density) in
    match Hashtbl.find_opt cache key with
    | Some c -> c
    | None ->
      let w = vcopy_workload [ 19 ] in
      let p =
        Vulfi.Experiment.prepare w Vir.Target.Avx categories.(cat_i)
      in
      let pi = Vulfi.Experiment.prepare_input p ~input:0 in
      let g = pi.Vulfi.Experiment.pi_golden in
      let hi = min 20 g.Vulfi.Experiment.g_dyn_sites in
      let plan =
        Vulfi.Experiment.checkpoint_plan ~max_checkpoints:density
          (List.init hi (fun i -> i + 1))
      in
      let ff = Vulfi.Experiment.lay_checkpoints p ~pi ~plan in
      let c = (p, g, ff, hi) in
      Hashtbl.add cache key c;
      c
  in
  Test.make
    ~name:"convergence soundness: pruned == legacy (random cell/site/seed)"
    ~count:120
    (make
       Gen.(
         quad (int_range 0 (Array.length categories - 1))
           (int_range 0 (Array.length kinds - 1))
           (int_range 1 5) (pair (int_range 0 10_000) (int_range 0 10_000)))
       ~print:(fun (c, k, d, (site, seed)) ->
         Printf.sprintf "cat=%d kind=%d density=%d site_pick=%d seed=%d" c k
           d site seed))
    (fun (cat_i, kind_i, density, (site_pick, seed)) ->
      let p, g, ff, hi = cell_for cat_i density in
      let dynamic_site = 1 + (site_pick mod hi) in
      let fault_kind = kinds.(kind_i) in
      let legacy =
        Vulfi.Experiment.faulty_run ~fault_kind p ~golden:g ~dynamic_site
          ~seed
      in
      let pr =
        Vulfi.Experiment.faulty_run_pruned ~fault_kind p ~ff ~dynamic_site
          ~seed
      in
      Vulfi.Outcome.to_string legacy.Vulfi.Experiment.r_outcome
      = Vulfi.Outcome.to_string pr.Vulfi.Experiment.r_outcome
      && legacy.Vulfi.Experiment.r_dyn_instrs
         = pr.Vulfi.Experiment.r_dyn_instrs
      &&
      match
        (legacy.Vulfi.Experiment.r_injection, pr.Vulfi.Experiment.r_injection)
      with
      | Some a, Some b ->
        a.Vulfi.Runtime.inj_static_site = b.Vulfi.Runtime.inj_static_site
        && a.Vulfi.Runtime.inj_bit = b.Vulfi.Runtime.inj_bit
        && Interp.Vvalue.equal a.Vulfi.Runtime.inj_after
             b.Vulfi.Runtime.inj_after
      | None, None -> true
      | _ -> false)

(* ---------------- legacy == checkpointed campaigns ---------------- *)

let result_t : Vulfi.Campaign.result Alcotest.testable =
  Alcotest.testable
    (fun fmt (r : Vulfi.Campaign.result) ->
      Format.fprintf fmt "%s: %d campaigns, %d exps, margin %f"
        r.Vulfi.Campaign.c_workload r.Vulfi.Campaign.c_campaigns
        r.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_experiments
        r.Vulfi.Campaign.c_margin)
    ( = )

let tiny_config =
  {
    Vulfi.Campaign.experiments_per_campaign = 10;
    min_campaigns = 3;
    max_campaigns = 4;
    margin_target = 1.0;
    seed = 99;
  }

(* The acceptance bar of the PR: all four executors are bit-identical
   — result record and trace bytes — sequentially and across a domain
   pool. *)
let test_campaign_executors_match () =
  let w = vcopy_workload [ 8; 16; 19 ] in
  List.iter
    (fun category ->
      let run_with executor =
        let buf = Buffer.create 4096 in
        let sink = Vulfi.Trace.to_buffer buf in
        let r =
          Vulfi.Campaign.run ~sink ~executor tiny_config w Vir.Target.Avx
            category
        in
        Vulfi.Trace.close sink;
        (r, Buffer.contents buf)
      in
      let r_legacy, tr_legacy = run_with Vulfi.Campaign.Legacy in
      let r_ckpt, tr_ckpt = run_with Vulfi.Campaign.Checkpointed in
      let r_ff, tr_ff = run_with Vulfi.Campaign.Fast_forward in
      let r_pr, tr_pr = run_with Vulfi.Campaign.Converge_pruned in
      let name = Analysis.Sites.category_name category in
      check result_t (name ^ ": checkpointed results equal") r_legacy r_ckpt;
      check result_t (name ^ ": fast-forward results equal") r_legacy r_ff;
      check result_t (name ^ ": converge-pruned results equal") r_legacy r_pr;
      check Alcotest.string
        (name ^ ": checkpointed trace byte-identical")
        tr_legacy tr_ckpt;
      check Alcotest.string
        (name ^ ": fast-forward trace byte-identical")
        tr_legacy tr_ff;
      check Alcotest.string
        (name ^ ": converge-pruned trace byte-identical")
        tr_legacy tr_pr;
      (* the golden and fast-forward accounting is schedule-derived on
         every path — the legacy run reports it too *)
      check Alcotest.int (name ^ ": golden runs + reused = experiments")
        r_ckpt.Vulfi.Campaign.c_totals.Vulfi.Campaign.n_experiments
        (r_ckpt.Vulfi.Campaign.c_golden_runs
        + r_ckpt.Vulfi.Campaign.c_golden_reused);
      check Alcotest.int
        (name ^ ": legacy reports the same checkpoint count")
        r_ff.Vulfi.Campaign.c_checkpoints
        r_legacy.Vulfi.Campaign.c_checkpoints;
      (* pruning counters are schedule-derived too, and internally
         consistent: each prunable experiment has at least one
         schedule-possible check *)
      check Alcotest.int
        (name ^ ": legacy reports the same prunable count")
        r_pr.Vulfi.Campaign.c_pruned r_legacy.Vulfi.Campaign.c_pruned;
      Alcotest.(check bool)
        (name ^ ": prune checks >= prunable experiments")
        true
        (r_pr.Vulfi.Campaign.c_prune_checks >= r_pr.Vulfi.Campaign.c_pruned);
      if r_ff.Vulfi.Campaign.c_checkpoints > 0 then
        Alcotest.(check bool)
          (name ^ ": some experiments resume")
          true
          (r_ff.Vulfi.Campaign.c_ff_resumed > 0))
    Analysis.Sites.all_categories

let test_campaign_executors_parallel_match () =
  let w = vcopy_workload [ 8; 16; 19 ] in
  let trace_of f =
    let buf = Buffer.create 4096 in
    let sink = Vulfi.Trace.to_buffer buf in
    let r = f sink in
    Vulfi.Trace.close sink;
    (r, Buffer.contents buf)
  in
  let r_legacy, tr_legacy =
    trace_of (fun sink ->
        Vulfi.Campaign.run ~sink ~executor:Vulfi.Campaign.Legacy tiny_config
          w Vir.Target.Sse Analysis.Sites.Address)
  in
  let r_ckpt, tr_ckpt =
    trace_of (fun sink ->
        Vulfi.Campaign.run_parallel ~sink
          ~executor:Vulfi.Campaign.Checkpointed ~jobs:4 tiny_config w
          Vir.Target.Sse Analysis.Sites.Address)
  in
  let r_ff_seq, tr_ff_seq =
    trace_of (fun sink ->
        Vulfi.Campaign.run ~sink ~executor:Vulfi.Campaign.Fast_forward
          tiny_config w Vir.Target.Sse Analysis.Sites.Address)
  in
  let r_ff_par, tr_ff_par =
    trace_of (fun sink ->
        Vulfi.Campaign.run_parallel ~sink
          ~executor:Vulfi.Campaign.Fast_forward ~jobs:4 tiny_config w
          Vir.Target.Sse Analysis.Sites.Address)
  in
  let r_pr_seq, tr_pr_seq =
    trace_of (fun sink ->
        Vulfi.Campaign.run ~sink ~executor:Vulfi.Campaign.Converge_pruned
          tiny_config w Vir.Target.Sse Analysis.Sites.Address)
  in
  let r_pr_par, tr_pr_par =
    trace_of (fun sink ->
        Vulfi.Campaign.run_parallel ~sink
          ~executor:Vulfi.Campaign.Converge_pruned ~jobs:4 tiny_config w
          Vir.Target.Sse Analysis.Sites.Address)
  in
  check result_t "checkpointed -j4 == legacy sequential" r_legacy r_ckpt;
  check result_t "fast-forward sequential == legacy" r_legacy r_ff_seq;
  check result_t "fast-forward -j4 == legacy" r_legacy r_ff_par;
  check result_t "converge-pruned sequential == legacy" r_legacy r_pr_seq;
  check result_t "converge-pruned -j4 == legacy" r_legacy r_pr_par;
  check Alcotest.string "checkpointed -j4 trace byte-identical" tr_legacy
    tr_ckpt;
  check Alcotest.string "fast-forward trace byte-identical" tr_legacy
    tr_ff_seq;
  check Alcotest.string "fast-forward -j4 trace byte-identical" tr_legacy
    tr_ff_par;
  check Alcotest.string "converge-pruned trace byte-identical" tr_legacy
    tr_pr_seq;
  check Alcotest.string "converge-pruned -j4 trace byte-identical" tr_legacy
    tr_pr_par

(* Stateful detector hooks ride the cached machines: h_reset/h_attach
   run per experiment on every executor, so Fig 12 numbers agree too.
   Fast_forward and Converge_pruned must degrade to Checkpointed here —
   detector state lives outside the machine, so a resume would skip the
   prefix's detector activity (and a pruned splice its suffix's). The
   degradation is announced on stderr and recorded by
   [effective_executor]. *)
let test_campaign_executors_match_with_detectors () =
  let w = vcopy_workload [ 8; 16; 19 ] in
  let transform =
    Detectors.Overhead.transform Detectors.Overhead.paper_detectors
  in
  let run_with executor =
    Vulfi.Campaign.run ~transform ~hooks:Detectors.Runtime.hooks ~executor
      tiny_config w Vir.Target.Avx Analysis.Sites.Control
  in
  let legacy = run_with Vulfi.Campaign.Legacy in
  let ckpt = run_with Vulfi.Campaign.Checkpointed in
  let ff = run_with Vulfi.Campaign.Fast_forward in
  let pr = run_with Vulfi.Campaign.Converge_pruned in
  check result_t "detector campaign: checkpointed == legacy" legacy ckpt;
  check result_t "detector campaign: fast-forward (fallback) == legacy"
    legacy ff;
  check result_t "detector campaign: converge-pruned (fallback) == legacy"
    legacy pr

(* The degradation is visible, not silent: [effective_executor] maps the
   resume-based executors to Checkpointed exactly when detectors are
   attached, and leaves everything else alone. *)
let test_effective_executor () =
  let eff = Vulfi.Campaign.effective_executor in
  List.iter
    (fun e ->
      Alcotest.(check string)
        "no detectors: identity"
        (Vulfi.Campaign.executor_name e)
        (Vulfi.Campaign.executor_name (eff ~detectors:false e)))
    Vulfi.Campaign.
      [ Legacy; Checkpointed; Fast_forward; Converge_pruned ];
  Alcotest.(check string)
    "detectors degrade fast-forward" "checkpointed"
    (Vulfi.Campaign.executor_name
       (eff ~detectors:true Vulfi.Campaign.Fast_forward));
  Alcotest.(check string)
    "detectors degrade converge-pruned" "checkpointed"
    (Vulfi.Campaign.executor_name
       (eff ~detectors:true Vulfi.Campaign.Converge_pruned));
  Alcotest.(check string)
    "detectors leave legacy alone" "legacy"
    (Vulfi.Campaign.executor_name (eff ~detectors:true Vulfi.Campaign.Legacy))

(* ---------------- stats + progress-line edges ---------------- *)

(* Pin the small-sample confidence intervals: n < 2 must yield an
   infinite margin (never 0 or nan — a one-campaign cell must not pass
   the stopping rule), and n = 2 is the first finite interval, with
   df 1 and t = 12.706. *)
let test_confidence_small_samples () =
  let m0, e0 = Vulfi.Stats.confidence [] in
  check (Alcotest.float 0.0) "n=0 mean" 0.0 m0;
  Alcotest.(check bool) "n=0 margin infinite" true (e0 = infinity);
  let m1, e1 = Vulfi.Stats.confidence [ 0.25 ] in
  check (Alcotest.float 0.0) "n=1 mean" 0.25 m1;
  Alcotest.(check bool) "n=1 margin infinite" true (e1 = infinity);
  let m2, e2 = Vulfi.Stats.confidence [ 0.2; 0.4 ] in
  check (Alcotest.float 1e-12) "n=2 mean" 0.3 m2;
  (* s = 0.1*sqrt(2), margin = 12.706 * s / sqrt(2) = 1.2706 *)
  check (Alcotest.float 1e-9) "n=2 margin (t(1) = 12.706)" 1.2706 e2;
  check (Alcotest.float 0.0) "confidence == margin_of_error"
    (Vulfi.Stats.margin_of_error [ 0.2; 0.4 ])
    e2;
  Alcotest.(check bool)
    "n=1 margin_of_error infinite" true
    (Vulfi.Stats.margin_of_error [ 0.25 ] = infinity)

(* Regression for the fig11 stderr reporter: the degenerate first tick
   (nothing done yet and/or a zero elapsed reading from a coarse clock)
   must print clamped values, never inf/nan. *)
let test_progress_line_degenerate () =
  let line = Vulfi.Report.progress_line ~label:"fig11" in
  check Alcotest.string "first tick: nothing done, zero elapsed"
    "fig11: 0/12 cells done, 0 experiments/s, ETA --"
    (line ~done_cells:0 ~total_cells:12 ~done_exps:0 ~elapsed_s:0.0);
  check Alcotest.string "zero elapsed with work done"
    "fig11: 1/12 cells done, 0 experiments/s, ETA --"
    (line ~done_cells:1 ~total_cells:12 ~done_exps:40 ~elapsed_s:0.0);
  check Alcotest.string "normal tick"
    "fig11: 3/12 cells done, 400 experiments/s, ETA 9 s"
    (line ~done_cells:3 ~total_cells:12 ~done_exps:1200 ~elapsed_s:3.0);
  check Alcotest.string "last tick: ETA 0"
    "fig11: 12/12 cells done, 400 experiments/s, ETA 0 s"
    (line ~done_cells:12 ~total_cells:12 ~done_exps:4800 ~elapsed_s:12.0)

let () =
  Alcotest.run "checkpoint"
    [
      ( "memory",
        Alcotest.test_case "stale snapshot restores" `Quick
          test_stale_snapshot_restores
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_restore_equals_fresh_replay;
               prop_double_restore;
               prop_masked_oob_lanes_never_trap;
             ] );
      ( "machine",
        [
          Alcotest.test_case "reset rerun == fresh" `Quick
            test_reset_rerun_equals_fresh;
          Alcotest.test_case "reset re-arms budget" `Quick
            test_reset_rearms_budget;
          Alcotest.test_case "reset ~spent prefix accounting" `Quick
            test_reset_spent_accounting;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "checkpointed faulty runs match" `Quick
            test_checkpointed_faulty_runs_match;
          Alcotest.test_case "checkpoint plan" `Quick test_checkpoint_plan;
          Alcotest.test_case "ff faulty runs match (dense + sparse plans)"
            `Quick test_ff_faulty_runs_match;
          Alcotest.test_case "ff faulty runs match (all fault kinds)" `Quick
            test_ff_fault_kinds_match;
          Alcotest.test_case "pruned faulty runs match (dense + sparse plans)"
            `Quick test_pruned_faulty_runs_match;
          Alcotest.test_case "pruned faulty runs match (all fault kinds)"
            `Quick test_pruned_fault_kinds_match;
          QCheck_alcotest.to_alcotest prop_ff_equals_legacy;
          QCheck_alcotest.to_alcotest prop_pruned_equals_legacy;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "four executors match (all categories)" `Quick
            test_campaign_executors_match;
          Alcotest.test_case "four executors match (-j4)" `Quick
            test_campaign_executors_parallel_match;
          Alcotest.test_case "four executors match (detectors)" `Quick
            test_campaign_executors_match_with_detectors;
          Alcotest.test_case "effective executor under detectors" `Quick
            test_effective_executor;
        ] );
      ( "stats",
        [
          Alcotest.test_case "confidence small samples" `Quick
            test_confidence_small_samples;
          Alcotest.test_case "progress line degenerate ticks" `Quick
            test_progress_line_degenerate;
        ] );
    ]

(* Tests for the VULFI core: instrumentation pass (Figs 4/5), runtime
   injection API, experiment protocol, outcome classification, campaign
   statistics. *)

open Vulfi

let check = Alcotest.check

(* ---------------- helpers ---------------- *)

let vcopy_src =
  "export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int \
   n) { foreach (i = 0 ... n) { a2[i] = a1[i]; } }"

(* Workload: vcopy over int arrays; input k selects length. *)
let vcopy_workload lengths =
  {
    Workload.w_name = "vcopy";
    w_fn = "vcopy_ispc";
    w_out_tolerance = 0.0;
    w_inputs = List.length lengths;
    w_build =
      (fun target -> Minispc.Driver.compile target vcopy_src);
    w_setup =
      (fun ~input st ->
        let n = List.nth lengths input in
        let mem = Interp.Machine.memory st in
        let a1 = Interp.Memory.alloc mem ~name:"a1" ~bytes:(4 * max n 1) in
        let a2 = Interp.Memory.alloc mem ~name:"a2" ~bytes:(4 * max n 1) in
        Interp.Memory.write_i32_array mem a1
          (Array.init n (fun i -> (i * 37) - 11));
        ( [ Interp.Vvalue.of_ptr a1; Interp.Vvalue.of_ptr a2;
            Interp.Vvalue.of_i32 n ],
          fun () ->
            {
              Outcome.empty_output with
              Outcome.o_i32 = [ Interp.Memory.read_i32_array mem a2 n ];
            } ));
  }

let categories = Analysis.Sites.all_categories

(* ---------------- Instrumentation: semantics preserved ---------------- *)

(* An instrumented program with the runtime in Profile mode must produce
   exactly the output of the uninstrumented program. *)
let test_instrument_preserves_semantics () =
  List.iter
    (fun target ->
      List.iter
        (fun cat ->
          let w = vcopy_workload [ 19 ] in
          let p = Experiment.prepare w target cat in
          let g = Experiment.golden_run p ~input:0 in
          let expected =
            Array.init 19 (fun i -> (i * 37) - 11)
          in
          match g.Experiment.g_output.Outcome.o_i32 with
          | [ out ] ->
            check
              Alcotest.(array int)
              (Printf.sprintf "%s/%s output intact" (Vir.Target.name target)
                 (Analysis.Sites.category_name cat))
              expected out
          | _ -> Alcotest.fail "output shape")
        categories)
    Vir.Target.all

(* Instrumenting all categories of a varied program still verifies and
   preserves semantics. *)
let kitchen_src =
  "export float kitchen(uniform float a[], uniform int idx[], uniform int \
   n) {\n\
   varying float acc = 0.0;\n\
   foreach (i = 0 ... n) {\n\
   float x = a[idx[i]];\n\
   if (x > 0.5) { acc += x * 2.0; } else { acc += x; }\n\
   }\n\
   return reduce_add(acc);\n\
   }"

let kitchen_workload n =
  {
    Workload.w_name = "kitchen";
    w_fn = "kitchen";
    w_out_tolerance = 0.0;
    w_inputs = 1;
    w_build = (fun target -> Minispc.Driver.compile target kitchen_src);
    w_setup =
      (fun ~input:_ st ->
        let mem = Interp.Machine.memory st in
        let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
        let idx = Interp.Memory.alloc mem ~name:"idx" ~bytes:(4 * n) in
        Interp.Memory.write_f32_array mem a
          (Array.init n (fun i -> float_of_int (i mod 3) *. 0.4));
        Interp.Memory.write_i32_array mem idx
          (Array.init n (fun i -> (i * 7) mod n));
        ( [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_ptr idx;
            Interp.Vvalue.of_i32 n ],
          fun () -> Outcome.empty_output ));
  }

let test_instrument_kitchen_all_categories () =
  List.iter
    (fun target ->
      (* uninstrumented reference *)
      let w = kitchen_workload 21 in
      let m = w.Workload.w_build target in
      let st = Interp.Machine.create (Interp.Compile.compile_module m) in
      let args, _ = w.Workload.w_setup ~input:0 st in
      let reference =
        match Interp.Machine.run st "kitchen" args with
        | Some v -> Interp.Vvalue.as_float v
        | None -> Alcotest.fail "no return"
      in
      List.iter
        (fun cat ->
          let p = Experiment.prepare w target cat in
          let rt = Runtime.create Runtime.Profile in
          let st = Interp.Machine.create p.Experiment.p_code in
          Runtime.attach rt st;
          let args, _ = w.Workload.w_setup ~input:0 st in
          match Interp.Machine.run st "kitchen" args with
          | Some v ->
            check (Alcotest.float 0.0)
              (Printf.sprintf "%s/%s return value"
                 (Vir.Target.name target)
                 (Analysis.Sites.category_name cat))
              reference
              (Interp.Vvalue.as_float v)
          | None -> Alcotest.fail "no return")
        categories)
    Vir.Target.all

(* ---------------- Instrumentation: Fig 5 shape ---------------- *)

let test_instrument_fig5_shape () =
  (* Instrument the masked-copy module's pure-data sites and check the
     per-lane extract/call/insert chain with mask extraction. *)
  let m = Ir_samples.masked_copy_module Vir.Target.Avx in
  let targets = Analysis.Sites.targets_of_module m in
  let instr = Instrument.run m targets in
  let s = Vir.Pp.module_to_string instr.Instrument.instrumented in
  Alcotest.(check bool) "calls injection API" true
    (Astring_contains.contains s "__vulfi_inject_f32");
  let f = Vir.Vmodule.find_func_exn m "masked_copy" in
  let all = Vir.Func.all_instrs f in
  let count pred = List.length (List.filter pred all) in
  (* 8 lanes x 2 targets (maskload Lvalue + maskstore value operand) *)
  check Alcotest.int "16 injection calls"
    16
    (count (fun (i : Vir.Instr.t) ->
         match i.Vir.Instr.op with
         | Vir.Instr.Call (n, _) -> Fault_model.is_inject_fn n
         | _ -> false));
  (* mask lanes are extracted for each call: 16 mask extracts + 16 value
     extracts = 32 extractelement *)
  check Alcotest.int "32 extractelements" 32
    (count (fun (i : Vir.Instr.t) ->
         match i.Vir.Instr.op with
         | Vir.Instr.Extractelement _ -> true
         | _ -> false));
  check Alcotest.int "16 insertelements" 16
    (count (fun (i : Vir.Instr.t) ->
         match i.Vir.Instr.op with
         | Vir.Instr.Insertelement _ -> true
         | _ -> false));
  check Alcotest.int "site table has 16 sites" 16
    (Instrument.static_site_count instr)

let test_instrument_scalar_module () =
  (* The Fig 3 scalar module instruments with scalar (single-call)
     chains and verifies. *)
  let m, _, _, _, _ = Ir_samples.fig3_foo_module () in
  let targets = Analysis.Sites.targets_of_module m in
  let n_targets = List.length targets in
  let instr = Instrument.run m targets in
  check Alcotest.int "one site per scalar target" n_targets
    (Instrument.static_site_count instr);
  (* instrumented module still runs correctly *)
  let st =
    Interp.Machine.create
      (Interp.Compile.compile_module instr.Instrument.instrumented)
  in
  let rt = Runtime.create Runtime.Profile in
  Runtime.attach rt st;
  let mem = Interp.Machine.memory st in
  let a = Interp.Memory.alloc mem ~name:"a" ~bytes:24 in
  Interp.Memory.write_i32_array mem a (Array.make 6 1);
  let _ =
    Interp.Machine.run st "foo"
      [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_i32 6;
        Interp.Vvalue.of_i32 2 ]
  in
  check
    Alcotest.(array int)
    "fig3 semantics preserved" [| 2; 2; 3; 5; 8; 12 |]
    (Interp.Memory.read_i32_array mem a 6)

(* ---------------- Masked lanes are not live fault sites ------------- *)

let test_masked_lanes_not_counted () =
  let run_with_mask mask_pattern =
    let m = Ir_samples.masked_copy_module Vir.Target.Avx in
    let targets = Analysis.Sites.targets_of_module m in
    let instr = Instrument.run m targets in
    let rt = Runtime.create Runtime.Profile in
    let st =
      Interp.Machine.create
        (Interp.Compile.compile_module instr.Instrument.instrumented)
    in
    Runtime.attach rt st;
    let mem = Interp.Machine.memory st in
    let src = Interp.Memory.alloc mem ~name:"src" ~bytes:32 in
    let dst = Interp.Memory.alloc mem ~name:"dst" ~bytes:32 in
    Interp.Memory.write_f32_array mem src (Array.init 8 float_of_int);
    let mask =
      Interp.Vvalue.I (Vir.Vtype.I1, Interp.Ilanes.of_array mask_pattern)
    in
    let _ =
      Interp.Machine.run st "masked_copy"
        [ Interp.Vvalue.of_ptr src; Interp.Vvalue.of_ptr dst; mask ]
    in
    Runtime.dynamic_sites rt
  in
  (* full mask: 8 lanes x 2 targets = 16 live sites *)
  check Alcotest.int "full mask" 16 (run_with_mask (Array.make 8 1L));
  (* half mask: 4 lanes x 2 targets *)
  check Alcotest.int "half mask" 8
    (run_with_mask (Array.init 8 (fun i -> if i mod 2 = 0 then 1L else 0L)));
  (* empty mask: no live fault site at all *)
  check Alcotest.int "empty mask" 0 (run_with_mask (Array.make 8 0L))

(* ---------------- Injection mechanics ---------------- *)

let test_injection_exactly_one () =
  let w = vcopy_workload [ 16 ] in
  let p = Experiment.prepare w Vir.Target.Avx Analysis.Sites.Pure_data in
  let g = Experiment.golden_run p ~input:0 in
  Alcotest.(check bool) "sites exist" true (g.Experiment.g_dyn_sites > 0);
  let r =
    Experiment.faulty_run p ~golden:g ~dynamic_site:1 ~seed:42
  in
  (match r.Experiment.r_injection with
  | Some inj ->
    Alcotest.(check bool) "bit in range" true
      (inj.Runtime.inj_bit >= 0 && inj.Runtime.inj_bit < 64);
    Alcotest.(check bool) "value changed" false
      (Interp.Vvalue.equal inj.Runtime.inj_before inj.Runtime.inj_after)
  | None -> Alcotest.fail "no injection recorded");
  (* site index beyond the dynamic count -> no injection, benign *)
  let r2 =
    Experiment.faulty_run p ~golden:g
      ~dynamic_site:(g.Experiment.g_dyn_sites + 1000)
      ~seed:1
  in
  Alcotest.(check bool) "no injection" true (r2.Experiment.r_injection = None);
  check Alcotest.string "benign" "benign"
    (Outcome.name r2.Experiment.r_outcome)

let test_injection_deterministic () =
  let w = vcopy_workload [ 24 ] in
  let p = Experiment.prepare w Vir.Target.Sse Analysis.Sites.Pure_data in
  let g = Experiment.golden_run p ~input:0 in
  let r1 = Experiment.faulty_run p ~golden:g ~dynamic_site:5 ~seed:7 in
  let r2 = Experiment.faulty_run p ~golden:g ~dynamic_site:5 ~seed:7 in
  check Alcotest.string "same outcome"
    (Outcome.to_string r1.Experiment.r_outcome)
    (Outcome.to_string r2.Experiment.r_outcome);
  match (r1.Experiment.r_injection, r2.Experiment.r_injection) with
  | Some a, Some b ->
    check Alcotest.int "same bit" a.Runtime.inj_bit b.Runtime.inj_bit
  | _ -> Alcotest.fail "injections missing"

(* Pure-data faults in vcopy flow straight to the output: flipping a
   copied value must yield an SDC, never a crash. *)
let test_pure_data_faults_sdc_or_benign () =
  let w = vcopy_workload [ 16 ] in
  let p = Experiment.prepare w Vir.Target.Avx Analysis.Sites.Pure_data in
  let g = Experiment.golden_run p ~input:0 in
  let outcomes =
    List.init (min 40 g.Experiment.g_dyn_sites) (fun k ->
        (Experiment.faulty_run p ~golden:g ~dynamic_site:(k + 1)
           ~seed:(1000 + k)).Experiment.r_outcome)
  in
  Alcotest.(check bool) "no crashes from pure-data faults" true
    (List.for_all (function Outcome.Crash _ -> false | _ -> true) outcomes);
  Alcotest.(check bool) "some SDCs observed" true
    (List.exists (( = ) Outcome.Sdc) outcomes)

(* Address faults must produce crashes for some sites (bit flips in
   high address bits leave every allocation). *)
let test_address_faults_crash () =
  let w = vcopy_workload [ 32 ] in
  let p = Experiment.prepare w Vir.Target.Avx Analysis.Sites.Address in
  let g = Experiment.golden_run p ~input:0 in
  let crashes = ref 0 in
  let n = min 60 g.Experiment.g_dyn_sites in
  for k = 1 to n do
    match
      (Experiment.faulty_run p ~golden:g ~dynamic_site:k ~seed:(2000 + k))
        .Experiment.r_outcome
    with
    | Outcome.Crash _ -> incr crashes
    | _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "crashes observed (%d/%d)" !crashes n)
    true (!crashes > 0)

(* Control faults can produce hangs, observed as budget-exhaustion
   crashes. Use a loop whose trip count is fault-sensitive. *)
let test_control_fault_hang_detected () =
  let src =
    "export int spin(uniform int n) { uniform int i = 0; uniform int s = \
     0; while (i < n) { s = s + i; i = i + 1; } return s; }"
  in
  let w =
    {
      Workload.w_name = "spin";
      w_fn = "spin";
      w_out_tolerance = 0.0;
      w_inputs = 1;
      w_build = (fun t -> Minispc.Driver.compile t src);
      w_setup =
        (fun ~input:_ _st ->
          ( [ Interp.Vvalue.of_i32 50 ],
            fun () -> Outcome.empty_output ));
    }
  in
  let p = Experiment.prepare w Vir.Target.Avx Analysis.Sites.Control in
  let g = Experiment.golden_run p ~input:0 in
  let hangs = ref 0 and others = ref 0 in
  for k = 1 to min 200 g.Experiment.g_dyn_sites do
    match
      (Experiment.faulty_run p ~golden:g ~dynamic_site:k ~seed:(3000 + k))
        .Experiment.r_outcome
    with
    | Outcome.Crash Interp.Trap.Budget_exhausted -> incr hangs
    | _ -> incr others
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hangs detected (%d)" !hangs)
    true (!hangs > 0)


(* ---------------- extended fault models ---------------- *)

let test_fault_kind_multi_bit () =
  let w = vcopy_workload [ 16 ] in
  let p = Experiment.prepare w Vir.Target.Avx Analysis.Sites.Pure_data in
  let g = Experiment.golden_run p ~input:0 in
  let r =
    Experiment.faulty_run ~fault_kind:(Runtime.Multi_bit_flip 3) p
      ~golden:g ~dynamic_site:3 ~seed:5
  in
  match r.Experiment.r_injection with
  | Some inj ->
    let diff =
      Int64.logxor
        (Interp.Vvalue.lane_bits inj.Runtime.inj_before 0)
        (Interp.Vvalue.lane_bits inj.Runtime.inj_after 0)
    in
    (* population count of the xor must be exactly 3 *)
    let rec popcount x = if x = 0L then 0 else
      popcount (Int64.shift_right_logical x 1) + Int64.to_int (Int64.logand x 1L)
    in
    Alcotest.(check int) "three bits flipped" 3 (popcount diff)
  | None -> Alcotest.fail "no injection"

let test_fault_kind_stuck_at_zero () =
  let w = vcopy_workload [ 16 ] in
  let p = Experiment.prepare w Vir.Target.Avx Analysis.Sites.Pure_data in
  let g = Experiment.golden_run p ~input:0 in
  let r =
    Experiment.faulty_run ~fault_kind:Runtime.Stuck_at_zero p ~golden:g
      ~dynamic_site:2 ~seed:5
  in
  match r.Experiment.r_injection with
  | Some inj ->
    Alcotest.(check bool) "register cleared" true
      (Interp.Vvalue.lane_bits inj.Runtime.inj_after 0 = 0L)
  | None -> Alcotest.fail "no injection"

let test_fault_kind_random_value_changes () =
  let w = vcopy_workload [ 16 ] in
  let p = Experiment.prepare w Vir.Target.Sse Analysis.Sites.Pure_data in
  let g = Experiment.golden_run p ~input:0 in
  for seed = 0 to 9 do
    let r =
      Experiment.faulty_run ~fault_kind:Runtime.Random_value p ~golden:g
        ~dynamic_site:(1 + seed) ~seed
    in
    match r.Experiment.r_injection with
    | Some inj ->
      Alcotest.(check bool) "value changed" false
        (Interp.Vvalue.equal inj.Runtime.inj_before inj.Runtime.inj_after)
    | None -> Alcotest.fail "no injection"
  done

(* The injection record's bit must be the FIRST flipped bit in draw
   order (it used to be the minimum, which is order-nondeterministic in
   spirit and wrong for k > 1 whenever the first draw isn't the
   smallest). Pin it against an oracle replaying the same RNG. *)
let test_multi_bit_records_first_flipped () =
  let width = 32 in
  let expected_first seed k =
    let rng = Random.State.make [| seed |] in
    let rec draw chosen n =
      if n = 0 then List.rev chosen
      else
        let b = Random.State.int rng width in
        if List.mem b chosen then draw chosen n
        else draw (b :: chosen) (n - 1)
    in
    List.hd (draw [] k)
  in
  List.iter
    (fun seed ->
      let t =
        Runtime.create ~seed ~fault_kind:(Runtime.Multi_bit_flip 3)
          (Runtime.Inject { dynamic_site = 1 })
      in
      let v, bit = Runtime.corrupt t (Interp.Vvalue.of_i32 0) in
      check Alcotest.int
        (Printf.sprintf "seed %d records first drawn bit" seed)
        (expected_first seed 3) bit;
      let bits = Interp.Vvalue.lane_bits v 0 in
      Alcotest.(check bool) "recorded bit is flipped" true
        (Int64.logand (Int64.shift_right_logical bits bit) 1L = 1L))
    [ 1; 2; 3; 42; 12345 ]

(* Regression: Random_value drew [Random.State.int64 rng Int64.max_int]
   (63 uniform bits, bit 63 never set) plus a complement coin, and never
   truncated the pattern to the scalar's width. It must instead draw
   [width] independent uniform bits. Pin the exact pattern against an
   oracle replaying the same RNG — the old draw consumed the RNG
   differently, so this fails on it. *)
let test_random_value_draws_width_bits () =
  List.iter
    (fun seed ->
      let t =
        Runtime.create ~seed ~fault_kind:Runtime.Random_value
          (Runtime.Inject { dynamic_site = 1 })
      in
      let v, bit = Runtime.corrupt t (Interp.Vvalue.of_i32 0) in
      let expected =
        Int64.logand
          (Random.State.bits64 (Random.State.make [| seed |]))
          0xFFFF_FFFFL
      in
      (* all chosen seeds draw a nonzero pattern, so no fallback *)
      Alcotest.(check bool) "oracle pattern is nonzero" true (expected <> 0L);
      check Alcotest.int64
        (Printf.sprintf "seed %d: pattern = masked bits64" seed)
        expected
        (Interp.Vvalue.lane_bits v 0);
      check Alcotest.int "whole-register marker" (-1) bit)
    [ 1; 2; 3; 42; 12345 ]

(* Bit 63 of a 64-bit scalar must come up with frequency ~ 1/2 (the old
   63-bit draw reached it only through the complement coin). *)
let test_random_value_bit63_frequency () =
  let n = 2000 in
  let hits = ref 0 in
  for seed = 0 to n - 1 do
    let t =
      Runtime.create ~seed ~fault_kind:Runtime.Random_value
        (Runtime.Inject { dynamic_site = 1 })
    in
    let v, _ = Runtime.corrupt t (Interp.Vvalue.of_i64 0L) in
    if Int64.shift_right_logical (Interp.Vvalue.lane_bits v 0) 63 = 1L then
      incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "bit-63 frequency %.3f in [0.45, 0.55]" freq)
    true
    (freq > 0.45 && freq < 0.55)

(* Narrow scalars must never gain bits above their width. *)
let test_random_value_narrow_width () =
  for seed = 0 to 49 do
    let t =
      Runtime.create ~seed ~fault_kind:Runtime.Random_value
        (Runtime.Inject { dynamic_site = 1 })
    in
    let v, _ = Runtime.corrupt t (Interp.Vvalue.of_bool false) in
    let bits = Interp.Vvalue.lane_bits v 0 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: only the low bit may be set" seed)
      true
      (Int64.logand bits (Int64.lognot 1L) = 0L)
  done

let test_fault_kind_names () =
  Alcotest.(check string) "single" "single-bit-flip"
    (Runtime.fault_kind_name Runtime.Single_bit_flip);
  Alcotest.(check string) "multi" "4-bit-flip"
    (Runtime.fault_kind_name (Runtime.Multi_bit_flip 4));
  Alcotest.(check string) "random" "random-value"
    (Runtime.fault_kind_name Runtime.Random_value)

(* ---------------- Campaigns ---------------- *)

let tiny_config =
  {
    Campaign.experiments_per_campaign = 10;
    min_campaigns = 3;
    max_campaigns = 4;
    margin_target = 1.0;
    seed = 99;
  }

let test_campaign_runs () =
  let w = vcopy_workload [ 8; 16; 19 ] in
  let r =
    Campaign.run tiny_config w Vir.Target.Avx Analysis.Sites.Pure_data
  in
  check Alcotest.int "experiments" (10 * r.Campaign.c_campaigns)
    r.Campaign.c_totals.Campaign.n_experiments;
  Alcotest.(check bool) "campaign count in range" true
    (r.Campaign.c_campaigns >= 3 && r.Campaign.c_campaigns <= 4);
  let total =
    r.Campaign.c_totals.Campaign.n_sdc
    + r.Campaign.c_totals.Campaign.n_benign
    + r.Campaign.c_totals.Campaign.n_crash
  in
  check Alcotest.int "outcomes partition"
    r.Campaign.c_totals.Campaign.n_experiments total;
  check (Alcotest.float 1e-9) "rates sum to 1" 1.0
    (Campaign.sdc_rate r +. Campaign.benign_rate r +. Campaign.crash_rate r);
  Alcotest.(check bool) "avg dynamic sites positive" true
    (r.Campaign.c_avg_dynamic_sites > 0.0);
  Alcotest.(check bool) "static sites positive" true
    (r.Campaign.c_static_sites > 0)

let test_campaign_deterministic () =
  let w = vcopy_workload [ 8; 16 ] in
  let r1 =
    Campaign.run tiny_config w Vir.Target.Sse Analysis.Sites.Control
  in
  let r2 =
    Campaign.run tiny_config w Vir.Target.Sse Analysis.Sites.Control
  in
  check
    Alcotest.(list (float 0.0))
    "same per-campaign rates" r1.Campaign.c_sdc_rates r2.Campaign.c_sdc_rates

(* ---------------- seed schedule ---------------- *)

(* Regression: all cells of one workload used to share one random
   stream (the RNG was seeded from (seed, workload) only), correlating
   the AVX/SSE and category columns of Tables II/III. Every cell must
   now draw its own input sequence. *)
let test_seed_cells_uncorrelated () =
  let inputs cell =
    List.init 50 (fun e ->
        let ex = Seed.experiment cell ~campaign:0 ~experiment:e in
        Seed.uniform ex.Seed.input_key 1000)
  in
  let cell target category =
    Seed.cell ~seed:Campaign.quick_config.Campaign.seed ~workload:"vcopy"
      ~target ~category
  in
  let avx_data = inputs (cell Vir.Target.Avx Analysis.Sites.Pure_data) in
  let sse_data = inputs (cell Vir.Target.Sse Analysis.Sites.Pure_data) in
  let avx_ctrl = inputs (cell Vir.Target.Avx Analysis.Sites.Control) in
  Alcotest.(check bool) "target decorrelates the stream" false
    (avx_data = sse_data);
  Alcotest.(check bool) "category decorrelates the stream" false
    (avx_data = avx_ctrl)

let test_seed_injective_grid () =
  (* paper-scale grid: 40 campaigns x 100 experiments *)
  let cell =
    Seed.cell ~seed:0xC0FFEE ~workload:"blackscholes" ~target:Vir.Target.Avx
      ~category:Analysis.Sites.Pure_data
  in
  let seen = Hashtbl.create 4096 in
  for c = 0 to 39 do
    for e = 0 to 99 do
      let k = Seed.experiment_key cell ~campaign:c ~experiment:e in
      (match Hashtbl.find_opt seen k with
      | Some (c', e') ->
        Alcotest.failf "key collision: (%d,%d) vs (%d,%d)" c e c' e'
      | None -> ());
      Hashtbl.add seen k (c, e)
    done
  done;
  check Alcotest.int "4000 distinct keys" 4000 (Hashtbl.length seen)

(* ---------------- parallel campaigns ---------------- *)

let result_t : Campaign.result Alcotest.testable =
  Alcotest.testable
    (fun fmt (r : Campaign.result) ->
      Format.fprintf fmt "%s: %d campaigns, %d exps, margin %f"
        r.Campaign.c_workload r.Campaign.c_campaigns
        r.Campaign.c_totals.Campaign.n_experiments r.Campaign.c_margin)
    ( = )

(* The acceptance bar of the seed schedule: fanning experiments across
   4 domains yields a result record equal (totals, per-campaign rates,
   margin, averages) to the sequential run. *)
let test_parallel_matches_sequential () =
  List.iter
    (fun name ->
      let b =
        match Benchmarks.Registry.find name with
        | Some b -> b
        | None -> Alcotest.failf "no benchmark %S" name
      in
      let w = b.Benchmarks.Harness.bench in
      let seq =
        Campaign.run Campaign.quick_config w Vir.Target.Avx
          Analysis.Sites.Pure_data
      in
      let par =
        Campaign.run_parallel ~jobs:4 Campaign.quick_config w Vir.Target.Avx
          Analysis.Sites.Pure_data
      in
      check result_t (name ^ ": parallel == sequential") seq par)
    [ "vector copy"; "dot product" ]

(* Same determinism bar with stateful detector hooks attached: the
   hooks factory must isolate detector state per experiment. *)
let test_parallel_matches_sequential_with_detectors () =
  let w = vcopy_workload [ 8; 16; 19 ] in
  let transform =
    Detectors.Overhead.transform Detectors.Overhead.paper_detectors
  in
  let seq =
    Campaign.run ~transform ~hooks:Detectors.Runtime.hooks tiny_config w
      Vir.Target.Avx Analysis.Sites.Control
  in
  let par =
    Campaign.run_parallel ~transform ~hooks:Detectors.Runtime.hooks ~jobs:4
      tiny_config w Vir.Target.Avx Analysis.Sites.Control
  in
  check result_t "detector campaign parallel == sequential" seq par

let test_run_cells_matches_run () =
  let w = vcopy_workload [ 8; 16 ] in
  let cells =
    [
      (w, Vir.Target.Avx, Analysis.Sites.Pure_data);
      (w, Vir.Target.Sse, Analysis.Sites.Control);
    ]
  in
  let rs = Campaign.run_cells ~jobs:3 tiny_config cells in
  List.iter2
    (fun (w, t, c) r ->
      check result_t "cell driver == sequential" (Campaign.run tiny_config w t c) r)
    cells rs

(* ---------------- pool ---------------- *)

let test_pool_map_order_and_reuse () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let arr = Array.init 100 Fun.id in
      let out = Pool.map pool (fun i -> (i * i) - 7) arr in
      check
        Alcotest.(array int)
        "order preserved" (Array.map (fun i -> (i * i) - 7) arr) out;
      (* the pool survives across batches *)
      let out2 = Pool.map pool string_of_int (Array.init 17 Fun.id) in
      check
        Alcotest.(array string)
        "second batch" (Array.init 17 string_of_int) out2;
      check
        Alcotest.(array int)
        "empty batch" [||]
        (Pool.map pool (fun i -> i) [||]))

let test_pool_map_propagates_exceptions () =
  match
    Pool.with_pool ~jobs:3 (fun pool ->
        Pool.map pool
          (fun i -> if i = 5 then failwith "boom" else i)
          (Array.init 10 Fun.id))
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> check Alcotest.string "exn surfaced" "boom" msg

(* ---------------- Stats ---------------- *)

let test_stats_basics () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "stddev" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check bool) "margin infinite for n<2" true
    (Stats.margin_of_error [ 0.5 ] = infinity)

let test_stats_t_table () =
  check (Alcotest.float 1e-3) "t df=1" 12.706 (Stats.t95 ~df:1);
  check (Alcotest.float 1e-3) "t df=19" 2.093 (Stats.t95 ~df:19);
  check (Alcotest.float 1e-3) "t df=1000" 1.980 (Stats.t95 ~df:1000);
  (* t decreases with df *)
  Alcotest.(check bool) "monotone" true
    (Stats.t95 ~df:5 > Stats.t95 ~df:10 && Stats.t95 ~df:10 > Stats.t95 ~df:30)

(* Regression: the coarse buckets above the exact table used the t
   value of their LARGEST df (e.g. 31-40 -> t(40) = 2.021), understating
   the critical value — and hence the margin of error — for every other
   df in the bucket. Each bucket must use its smallest df's t value. *)
let test_stats_t_conservative_buckets () =
  check (Alcotest.float 1e-3) "df=31 bucket" 2.040 (Stats.t95 ~df:31);
  check (Alcotest.float 1e-3) "df=41 bucket" 2.020 (Stats.t95 ~df:41);
  check (Alcotest.float 1e-3) "df=61 bucket" 2.000 (Stats.t95 ~df:61);
  check (Alcotest.float 1e-3) "df=121 bucket" 1.980 (Stats.t95 ~df:121);
  (* never below the true critical value: reference t(40)=2.021,
     t(60)=2.000, t(120)=1.980 at the bucket ends *)
  Alcotest.(check bool) "df=40 not understated" true
    (Stats.t95 ~df:40 >= 2.021);
  Alcotest.(check bool) "df=60 not understated" true
    (Stats.t95 ~df:60 >= 2.000);
  Alcotest.(check bool) "df=120 not understated" true
    (Stats.t95 ~df:120 >= 1.980);
  (* monotone non-increasing across table and buckets *)
  for df = 1 to 299 do
    Alcotest.(check bool)
      (Printf.sprintf "t95 non-increasing at df=%d" df)
      true
      (Stats.t95 ~df >= Stats.t95 ~df:(df + 1))
  done

let test_stats_margin_known () =
  (* n=20 samples, all equal -> margin 0 *)
  check (Alcotest.float 1e-9) "degenerate margin" 0.0
    (Stats.margin_of_error (List.init 20 (fun _ -> 0.3)));
  (* hand-computed: samples 0.4/0.6 x10 each, s=0.10259..., t(19)=2.093 *)
  let xs = List.init 20 (fun i -> if i < 10 then 0.4 else 0.6) in
  let expected = 2.093 *. Stats.stddev xs /. sqrt 20.0 in
  check (Alcotest.float 1e-9) "hand margin" expected
    (Stats.margin_of_error xs)

let test_stats_normality () =
  Alcotest.(check bool) "symmetric sample is near normal" true
    (Stats.near_normal [ 0.1; 0.2; 0.3; 0.2; 0.2; 0.1; 0.3; 0.2 ]);
  Alcotest.(check bool) "tiny sample is not" false
    (Stats.near_normal [ 0.1; 0.2 ]);
  Alcotest.(check bool) "heavily skewed sample is not" false
    (Stats.near_normal
       [ 0.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0; 1.0 ])

(* ---------------- Outcome ---------------- *)

let test_outcome_classify () =
  let golden =
    { Outcome.o_f32 = [ [| 1.0; 2.0 |] ]; o_i32 = []; o_ret = None }
  in
  check Alcotest.string "benign" "benign"
    (Outcome.name (Outcome.classify ~golden ~faulty:(Ok golden) ()));
  let diff =
    { Outcome.o_f32 = [ [| 1.0; 2.5 |] ]; o_i32 = []; o_ret = None }
  in
  check Alcotest.string "sdc" "SDC"
    (Outcome.name (Outcome.classify ~golden ~faulty:(Ok diff) ()));
  check Alcotest.string "crash" "crash"
    (Outcome.name
       (Outcome.classify ~golden
          ~faulty:(Error Interp.Trap.Division_by_zero) ()))

(* Regression: a purely relative tolerance classified golden 0.0 vs a
   faulty denormal-sized 1e-30 as SDC at any [tol]; the absolute floor
   must treat them as equal while keeping real differences SDC. *)
let test_outcome_abs_tolerance_near_zero () =
  let out v = { Outcome.o_f32 = [ [| v |] ]; o_i32 = []; o_ret = None } in
  Alcotest.(check bool) "0.0 vs 1e-30 equal under tol" true
    (Outcome.output_equal ~tol:0.01 (out 0.0) (out 1e-30));
  Alcotest.(check bool) "bit-exact default stays strict" false
    (Outcome.output_equal (out 0.0) (out 1e-30));
  check Alcotest.string "benign near zero" "benign"
    (Outcome.name
       (Outcome.classify ~tol:0.01 ~golden:(out 0.0)
          ~faulty:(Ok (out 1e-30)) ()));
  check Alcotest.string "real difference still SDC" "SDC"
    (Outcome.name
       (Outcome.classify ~tol:0.01 ~golden:(out 0.0) ~faulty:(Ok (out 1.0))
          ()));
  Alcotest.(check bool) "custom floor is honoured" true
    (Outcome.output_equal ~tol:0.01 ~abs_tol:0.5 (out 0.0) (out 0.4))

let test_outcome_nan_bit_compare () =
  (* NaN == NaN bitwise: a NaN-producing fault that yields the same NaN
     pattern is benign, different patterns are SDC. *)
  let g = { Outcome.o_f32 = [ [| Float.nan |] ]; o_i32 = []; o_ret = None } in
  Alcotest.(check bool) "same NaN benign" true
    (Outcome.output_equal g
       { Outcome.o_f32 = [ [| Float.nan |] ]; o_i32 = []; o_ret = None })

(* ---------------- properties ---------------- *)

(* Instrumentation with profile-mode runtime never changes results. *)
let prop_profile_transparent =
  QCheck.Test.make ~name:"profile-mode instrumentation is transparent"
    ~count:25
    QCheck.(pair (int_range 0 30) (oneofl Analysis.Sites.all_categories))
    (fun (n, cat) ->
      let w = vcopy_workload [ n ] in
      let p = Experiment.prepare w Vir.Target.Avx cat in
      let g = Experiment.golden_run p ~input:0 in
      let expected = Array.init n (fun i -> (i * 37) - 11) in
      g.Experiment.g_output.Outcome.o_i32 = [ expected ])

(* A double flip cannot happen: one injection record max. *)
let prop_single_injection =
  QCheck.Test.make ~name:"at most one injection per run" ~count:30
    QCheck.(pair (int_range 1 50) int)
    (fun (site, seed) ->
      let w = vcopy_workload [ 16 ] in
      let p = Experiment.prepare w Vir.Target.Sse Analysis.Sites.Address in
      let g = Experiment.golden_run p ~input:0 in
      let site = 1 + (site mod max 1 g.Experiment.g_dyn_sites) in
      let r = Experiment.faulty_run p ~golden:g ~dynamic_site:site ~seed in
      match r.Experiment.r_injection with
      | Some inj -> inj.Runtime.inj_dynamic_site = site
      | None -> false)


(* Margin of error is monotone-decreasing in the sample count when the
   sample variance is held constant (alternating +/-spread, even sizes:
   m of each sign). *)
let prop_margin_monotone_in_n =
  QCheck.Test.make
    ~name:"margin of error monotone-decreasing in n (constant variance)"
    ~count:100
    QCheck.(triple (int_range 2 40) (int_range 1 40) (float_range 0.01 0.2))
    (fun (n, extra, spread) ->
      let mk m =
        List.init (2 * m) (fun i ->
            0.5 +. (if i mod 2 = 0 then spread else -.spread))
      in
      Stats.margin_of_error (mk (n + extra)) < Stats.margin_of_error (mk n))

(* Seed derivation is injective across (campaign, experiment) pairs
   within a cell. *)
let prop_seed_injective =
  QCheck.Test.make
    ~name:"seed schedule injective across (campaign, experiment)"
    ~count:300
    QCheck.(
      pair
        (pair (int_range 0 200) (int_range 0 1000))
        (pair (int_range 0 200) (int_range 0 1000)))
    (fun (((c1, e1) as p1), ((c2, e2) as p2)) ->
      QCheck.assume (p1 <> p2);
      let cell =
        Seed.cell ~seed:7 ~workload:"w" ~target:Vir.Target.Sse
          ~category:Analysis.Sites.Control
      in
      Seed.experiment_key cell ~campaign:c1 ~experiment:e1
      <> Seed.experiment_key cell ~campaign:c2 ~experiment:e2)

let prop_mean_bounds =
  QCheck.Test.make ~name:"mean lies within the sample range" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range 0.0 1.0))
    (fun xs ->
      let m = Stats.mean xs in
      List.for_all (fun _ -> true) xs
      && m >= List.fold_left min 1.0 xs -. 1e-9
      && m <= List.fold_left max 0.0 xs +. 1e-9)

let () =
  Alcotest.run "vulfi"
    [
      ( "instrument",
        [
          Alcotest.test_case "preserves semantics (vcopy)" `Quick
            test_instrument_preserves_semantics;
          Alcotest.test_case "preserves semantics (kitchen)" `Quick
            test_instrument_kitchen_all_categories;
          Alcotest.test_case "Fig 5 chain shape" `Quick
            test_instrument_fig5_shape;
          Alcotest.test_case "scalar module" `Quick
            test_instrument_scalar_module;
        ] );
      ( "mask-awareness",
        [
          Alcotest.test_case "masked lanes not counted" `Quick
            test_masked_lanes_not_counted;
        ] );
      ( "injection",
        [
          Alcotest.test_case "exactly one flip" `Quick
            test_injection_exactly_one;
          Alcotest.test_case "deterministic under seed" `Quick
            test_injection_deterministic;
          Alcotest.test_case "pure-data -> SDC/benign" `Quick
            test_pure_data_faults_sdc_or_benign;
          Alcotest.test_case "address -> crashes" `Quick
            test_address_faults_crash;
          Alcotest.test_case "control -> hang trapped" `Quick
            test_control_fault_hang_detected;
        ] );
      ( "fault-models",
        [
          Alcotest.test_case "multi-bit flip" `Quick test_fault_kind_multi_bit;
          Alcotest.test_case "multi-bit records first flipped bit" `Quick
            test_multi_bit_records_first_flipped;
          Alcotest.test_case "stuck-at-zero" `Quick
            test_fault_kind_stuck_at_zero;
          Alcotest.test_case "random value" `Quick
            test_fault_kind_random_value_changes;
          Alcotest.test_case "random value draws width bits" `Quick
            test_random_value_draws_width_bits;
          Alcotest.test_case "random value bit-63 frequency" `Quick
            test_random_value_bit63_frequency;
          Alcotest.test_case "random value narrow width" `Quick
            test_random_value_narrow_width;
          Alcotest.test_case "names" `Quick test_fault_kind_names;
        ] );
      ( "seed-schedule",
        [
          Alcotest.test_case "cells draw uncorrelated streams" `Quick
            test_seed_cells_uncorrelated;
          Alcotest.test_case "injective over the paper grid" `Quick
            test_seed_injective_grid;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "protocol" `Quick test_campaign_runs;
          Alcotest.test_case "deterministic" `Quick
            test_campaign_deterministic;
          Alcotest.test_case "parallel == sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "parallel == sequential (detectors)" `Quick
            test_parallel_matches_sequential_with_detectors;
          Alcotest.test_case "cell driver == sequential" `Quick
            test_run_cells_matches_run;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map order + reuse" `Quick
            test_pool_map_order_and_reuse;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_map_propagates_exceptions;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "t table" `Quick test_stats_t_table;
          Alcotest.test_case "t buckets conservative" `Quick
            test_stats_t_conservative_buckets;
          Alcotest.test_case "margin" `Quick test_stats_margin_known;
          Alcotest.test_case "normality" `Quick test_stats_normality;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "classification" `Quick test_outcome_classify;
          Alcotest.test_case "absolute tolerance near zero" `Quick
            test_outcome_abs_tolerance_near_zero;
          Alcotest.test_case "NaN bitwise compare" `Quick
            test_outcome_nan_bit_compare;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_profile_transparent;
            prop_single_injection;
            prop_margin_monotone_in_n;
            prop_seed_injective;
            prop_mean_bounds;
          ] );
    ]

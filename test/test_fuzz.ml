(* Differential fuzzing of the compiler pipeline.

   Random mini-ISPC kernels are generated as source text, pushed through
   the full production path (lexer -> parser -> typecheck -> codegen ->
   DCE -> verify -> VM) on both vector targets, and compared bit-for-bit
   against the independent AST-level SPMD evaluator in Spmd_ref. Any
   disagreement is a lowering bug (masking, phis, linearity detection,
   partial blocks, blending, ...). *)

open QCheck

let n_max = 37

(* ---------------- random kernel generation ---------------- *)

(* Expressions printed as source text. Magnitudes are kept small enough
   that f32 arithmetic cannot overflow to inf/nan at the given depth. *)
let const_gen =
  Gen.map
    (fun k -> Printf.sprintf "%.1f" (float_of_int k /. 2.0))
    (Gen.int_range (-8) 8)

let rec expr_gen ~vars depth =
  let open Gen in
  if depth = 0 then
    oneof
      [
        const_gen;
        oneofl [ "a[i]"; "b[i]"; "(float) i" ];
        (match vars with
        | [] -> const_gen
        | vs -> oneofl vs);
      ]
  else
    let sub = expr_gen ~vars (depth - 1) in
    oneof
      [
        map2 (fun x y -> Printf.sprintf "(%s + %s)" x y) sub sub;
        map2 (fun x y -> Printf.sprintf "(%s - %s)" x y) sub sub;
        map2 (fun x y -> Printf.sprintf "(%s * %s)" x y) sub sub;
        map2 (fun x y -> Printf.sprintf "min(%s, %s)" x y) sub sub;
        map2 (fun x y -> Printf.sprintf "max(%s, %s)" x y) sub sub;
        map (fun x -> Printf.sprintf "abs(%s)" x) sub;
        map (fun x -> Printf.sprintf "sqrt(abs(%s))" x) sub;
        sub;
      ]

(* Conditions always reference a (varying) local so that nested ifs stay
   varying — uniform control flow under a varying mask is rejected by
   the typechecker, as in ISPC's restrictions. *)
let cond_gen ~vars depth =
  let open Gen in
  let v = oneofl vars in
  let e = expr_gen ~vars depth in
  let base =
    oneof
      [
        map2 (fun x y -> Printf.sprintf "%s < %s" x y) v e;
        map2 (fun x y -> Printf.sprintf "%s > %s" x y) v e;
        map2 (fun x y -> Printf.sprintf "%s <= %s" x y) v e;
      ]
  in
  oneof
    [
      base;
      map2 (fun c1 c2 -> Printf.sprintf "(%s) && (%s)" c1 c2) base base;
      map2 (fun c1 c2 -> Printf.sprintf "(%s) || (%s)" c1 c2) base base;
    ]

(* Optional inner uniform for-loop, exercising the step-block lowering,
   loop-carried phis and uniform break/continue. *)
let inner_loop_gen =
  let open Gen in
  let* trip = int_range 1 6 in
  let* acc_e = expr_gen ~vars:[ "x"; "y" ] 1 in
  let* kind = int_range 0 2 in
  let body =
    match kind with
    | 0 -> Printf.sprintf "x = x + %s * 0.1;" acc_e
    | 1 ->
      Printf.sprintf
        "if (j > %d) { break; }\n x = x + %s * 0.1;" (trip / 2) acc_e
    | _ ->
      Printf.sprintf
        "if (j == %d) { continue; }\n x = x + %s * 0.1;" (trip / 2) acc_e
  in
  return
    (Printf.sprintf
       "for (uniform int j = 0; j < %d; j += 1) {\n %s\n}\n" trip body)

let kernel_gen =
  let open Gen in
  let* d1 = expr_gen ~vars:[] 2 in
  let* d2 = expr_gen ~vars:[ "x" ] 2 in
  let* with_if = bool in
  let* with_else = bool in
  let* cond = cond_gen ~vars:[ "x"; "y" ] 1 in
  let* then_e = expr_gen ~vars:[ "x"; "y" ] 2 in
  let* else_e = expr_gen ~vars:[ "x"; "y" ] 2 in
  let* nested = bool in
  let* nested_cond = cond_gen ~vars:[ "x"; "y" ] 0 in
  let* nested_e = expr_gen ~vars:[ "x"; "y" ] 1 in
  let* with_loop = bool in
  let* inner = inner_loop_gen in
  let* store_a = expr_gen ~vars:[ "x"; "y" ] 2 in
  let* with_store_b = bool in
  let* store_b = expr_gen ~vars:[ "x"; "y" ] 1 in
  let body = Buffer.create 256 in
  Buffer.add_string body (Printf.sprintf "float x = %s;\n" d1);
  Buffer.add_string body (Printf.sprintf "float y = %s;\n" d2);
  if with_if then begin
    Buffer.add_string body (Printf.sprintf "if (%s) {\n x = %s;\n" cond then_e);
    if nested then
      Buffer.add_string body
        (Printf.sprintf " if (%s) { y = %s; }\n" nested_cond nested_e);
    Buffer.add_string body "}";
    if with_else then
      Buffer.add_string body (Printf.sprintf " else {\n y = %s;\n}" else_e);
    Buffer.add_string body "\n"
  end;
  if with_loop then Buffer.add_string body inner;
  Buffer.add_string body (Printf.sprintf "a[i] = %s;\n" store_a);
  if with_store_b then
    Buffer.add_string body (Printf.sprintf "b[i] = %s;\n" store_b);
  return
    (Printf.sprintf
       "export void kernel(uniform float a[], uniform float b[], uniform \
        int n) {\nforeach (i = 0 ... n) {\n%s}\n}"
       (Buffer.contents body))

(* ---------------- execution on both paths ---------------- *)

let inputs seed =
  let rng = Benchmarks.Prng.create seed in
  ( Benchmarks.Prng.f32_array rng n_max (-4.0) 4.0,
    Benchmarks.Prng.f32_array rng n_max (-4.0) 4.0 )

let run_vm target src n seed =
  let m = Minispc.Driver.compile target src in
  let st = Interp.Machine.create (Interp.Compile.compile_module m) in
  let mem = Interp.Machine.memory st in
  let a0, b0 = inputs seed in
  let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n_max) in
  let b = Interp.Memory.alloc mem ~name:"b" ~bytes:(4 * n_max) in
  Interp.Memory.write_f32_array mem a a0;
  Interp.Memory.write_f32_array mem b b0;
  ignore
    (Interp.Machine.run st "kernel"
       [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_ptr b;
         Interp.Vvalue.of_i32 n ]);
  (Interp.Memory.read_f32_array mem a n_max,
   Interp.Memory.read_f32_array mem b n_max)

let run_ref vl src n seed =
  let prog = Minispc.Driver.frontend src in
  let a0, b0 = inputs seed in
  let a = Array.copy a0 and b = Array.copy b0 in
  Spmd_ref.run_func ~vl prog ~fn:"kernel"
    ~arrays:[ ("a", Spmd_ref.Farr a); ("b", Spmd_ref.Farr b) ]
    ~scalars:[ ("n", Spmd_ref.Ui (Int64.of_int n)) ];
  (a, b)

let bits = Array.map Int64.bits_of_float

let agree (a1, b1) (a2, b2) = bits a1 = bits a2 && bits b1 = bits b2

(* ---------------- properties ---------------- *)

let fuzz_case =
  make
    Gen.(triple kernel_gen (int_range 0 n_max) (int_range 0 1000))
    ~print:(fun (src, n, seed) ->
      Printf.sprintf "n=%d seed=%d\n%s" n seed src)

let prop_vm_matches_reference_avx =
  Test.make ~name:"compiled AVX matches SPMD reference (bit-exact)"
    ~count:120 fuzz_case (fun (src, n, seed) ->
      agree (run_vm Vir.Target.Avx src n seed) (run_ref 8 src n seed))

let prop_vm_matches_reference_sse =
  Test.make ~name:"compiled SSE matches SPMD reference (bit-exact)"
    ~count:120 fuzz_case (fun (src, n, seed) ->
      agree (run_vm Vir.Target.Sse src n seed) (run_ref 4 src n seed))

let prop_constfold_agrees =
  Test.make ~name:"constant folding preserves fuzzed kernels" ~count:60
    fuzz_case (fun (src, n, seed) ->
      let m = Minispc.Driver.compile Vir.Target.Avx src in
      ignore (Passes.Constfold.run_module m);
      let st = Interp.Machine.create (Interp.Compile.compile_module m) in
      let mem = Interp.Machine.memory st in
      let a0, b0 = inputs seed in
      let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n_max) in
      let b = Interp.Memory.alloc mem ~name:"b" ~bytes:(4 * n_max) in
      Interp.Memory.write_f32_array mem a a0;
      Interp.Memory.write_f32_array mem b b0;
      ignore
        (Interp.Machine.run st "kernel"
           [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_ptr b;
             Interp.Vvalue.of_i32 n ]);
      agree
        ( Interp.Memory.read_f32_array mem a n_max,
          Interp.Memory.read_f32_array mem b n_max )
        (run_vm Vir.Target.Avx src n seed))

let prop_pipeline_agrees =
  (* The full optimizing pipeline (constfold + fusion annotation) feeding
     the fused compile path must preserve every fuzzed kernel bit-exactly
     against the plain (unoptimized, unfused) run. *)
  Test.make ~name:"optimizing pipeline + fusion preserves fuzzed kernels"
    ~count:60 fuzz_case (fun (src, n, seed) ->
      let m = Minispc.Driver.compile Vir.Target.Avx src in
      ignore (Passes.Pipeline.run ~passes:Passes.Pipeline.optimizing m);
      let st = Interp.Machine.create (Interp.Compile.compile_module m) in
      let mem = Interp.Machine.memory st in
      let a0, b0 = inputs seed in
      let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n_max) in
      let b = Interp.Memory.alloc mem ~name:"b" ~bytes:(4 * n_max) in
      Interp.Memory.write_f32_array mem a a0;
      Interp.Memory.write_f32_array mem b b0;
      ignore
        (Interp.Machine.run st "kernel"
           [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_ptr b;
             Interp.Vvalue.of_i32 n ]);
      agree
        ( Interp.Memory.read_f32_array mem a n_max,
          Interp.Memory.read_f32_array mem b n_max )
        (run_vm Vir.Target.Avx src n seed))

let prop_instrumented_profile_agrees =
  (* profile-mode instrumentation must be transparent on any kernel *)
  Test.make ~name:"instrumented profile run matches plain run" ~count:40
    fuzz_case (fun (src, n, seed) ->
      let m = Minispc.Driver.compile Vir.Target.Avx src in
      let targets = Analysis.Sites.targets_of_module m in
      ignore (Vulfi.Instrument.run m targets);
      let rt = Vulfi.Runtime.create Vulfi.Runtime.Profile in
      let st = Interp.Machine.create (Interp.Compile.compile_module m) in
      Vulfi.Runtime.attach rt st;
      let mem = Interp.Machine.memory st in
      let a0, b0 = inputs seed in
      let a = Interp.Memory.alloc mem ~name:"a" ~bytes:(4 * n_max) in
      let b = Interp.Memory.alloc mem ~name:"b" ~bytes:(4 * n_max) in
      Interp.Memory.write_f32_array mem a a0;
      Interp.Memory.write_f32_array mem b b0;
      ignore
        (Interp.Machine.run st "kernel"
           [ Interp.Vvalue.of_ptr a; Interp.Vvalue.of_ptr b;
             Interp.Vvalue.of_i32 n ]);
      agree
        ( Interp.Memory.read_f32_array mem a n_max,
          Interp.Memory.read_f32_array mem b n_max )
        (run_vm Vir.Target.Avx src n seed))

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_vm_matches_reference_avx;
            prop_vm_matches_reference_sse;
            prop_constfold_agrees;
            prop_pipeline_agrees;
            prop_instrumented_profile_agrees;
          ] );
    ]

(* Tests for the interpreter substrate: bit manipulation, runtime
   values, memory, and the register VM. *)

open Vir
open Interp

let check = Alcotest.check

(* ---------------- Bits ---------------- *)

let test_truncate () =
  check Alcotest.int64 "i8 sign extend" (-1L) (Bits.truncate Vtype.I8 255L);
  check Alcotest.int64 "i8 positive" 127L (Bits.truncate Vtype.I8 127L);
  check Alcotest.int64 "i32 wrap" Int64.(of_int32 (Int32.of_string "-2147483648"))
    (Bits.truncate Vtype.I32 2147483648L);
  check Alcotest.int64 "i1 odd" 1L (Bits.truncate Vtype.I1 3L);
  check Alcotest.int64 "i64 identity" Int64.min_int
    (Bits.truncate Vtype.I64 Int64.min_int)

let test_to_unsigned () =
  check Alcotest.int64 "i8 -1 -> 255" 255L (Bits.to_unsigned Vtype.I8 (-1L));
  check Alcotest.int64 "i32 -1 -> 2^32-1" 0xFFFFFFFFL
    (Bits.to_unsigned Vtype.I32 (-1L))

let test_float_bits_roundtrip () =
  List.iter
    (fun x ->
      check (Alcotest.float 0.0) "f64 roundtrip" x
        (Bits.float_of_bits Vtype.F64 (Bits.bits_of_float Vtype.F64 x)))
    [ 0.0; 1.5; -3.25; 1e300; -0.0 ];
  let x32 = Bits.round_float Vtype.F32 3.14159 in
  check (Alcotest.float 0.0) "f32 roundtrip" x32
    (Bits.float_of_bits Vtype.F32 (Bits.bits_of_float Vtype.F32 x32))

let test_flip_int () =
  check Alcotest.int64 "flip bit 0" 1L (Bits.flip_int Vtype.I32 ~bit:0 0L);
  check Alcotest.int64 "flip sign bit of i32 zero" (Int64.of_int32 Int32.min_int)
    (Bits.flip_int Vtype.I32 ~bit:31 0L);
  check Alcotest.int64 "flip twice restores" 42L
    (Bits.flip_int Vtype.I32 ~bit:7 (Bits.flip_int Vtype.I32 ~bit:7 42L));
  Alcotest.check_raises "bit out of range"
    (Invalid_argument "Bits.flip_int: bit 32 out of range for i32") (fun () ->
      ignore (Bits.flip_int Vtype.I32 ~bit:32 0L))

let test_flip_float () =
  let x = 1.0 in
  let flipped = Bits.flip_float Vtype.F64 ~bit:63 x in
  check (Alcotest.float 0.0) "sign-bit flip negates" (-1.0) flipped;
  check (Alcotest.float 0.0) "involution" x
    (Bits.flip_float Vtype.F64 ~bit:63 flipped)

(* ---------------- Vvalue ---------------- *)

let test_vvalue_of_const () =
  let v = Vvalue.of_const (Const.iota Vtype.I32 4) in
  check Alcotest.int "lanes" 4 (Vvalue.lanes v);
  check Alcotest.int64 "lane 3" 3L (Vvalue.int_lane v 3);
  let z = Vvalue.of_const (Const.Cundef (Vtype.vector 4 Vtype.F32)) in
  check (Alcotest.float 0.0) "undef is deterministic zero" 0.0
    (Vvalue.float_lane z 2)

let test_vvalue_insert_extract () =
  let v = Vvalue.of_const (Const.splat 4 (Const.f32 1.0)) in
  let v' = Vvalue.insert v 2 (Vvalue.of_f32 9.0) in
  check (Alcotest.float 0.0) "inserted" 9.0 (Vvalue.float_lane v' 2);
  check (Alcotest.float 0.0) "others untouched" 1.0 (Vvalue.float_lane v' 1);
  (* insert is non-destructive *)
  check (Alcotest.float 0.0) "original untouched" 1.0 (Vvalue.float_lane v 2);
  let e = Vvalue.extract v' 2 in
  check (Alcotest.float 0.0) "extract" 9.0 (Vvalue.as_float e)

let test_vvalue_flip_bit () =
  let v = Vvalue.of_const (Const.splat 8 (Const.i32 0)) in
  let v' = Vvalue.flip_bit v ~lane:5 ~bit:3 in
  check Alcotest.int64 "flipped lane" 8L (Vvalue.int_lane v' 5);
  check Alcotest.int64 "other lanes" 0L (Vvalue.int_lane v' 4);
  Alcotest.(check bool) "equal after double flip" true
    (Vvalue.equal v (Vvalue.flip_bit v' ~lane:5 ~bit:3))

let test_vvalue_equal_nan () =
  let a = Vvalue.of_f64 Float.nan and b = Vvalue.of_f64 Float.nan in
  Alcotest.(check bool) "NaN bit-equal to itself" true (Vvalue.equal a b)

(* ---------------- Memory ---------------- *)

let test_memory_alloc_rw () =
  let m = Memory.create () in
  let base = Memory.alloc m ~name:"a" ~bytes:64 in
  Memory.write_f32_array m base [| 1.0; 2.0; 3.0 |];
  let back = Memory.read_f32_array m base 3 in
  check
    Alcotest.(array (float 0.0))
    "roundtrip" [| 1.0; 2.0; 3.0 |] back

let test_memory_i32 () =
  let m = Memory.create () in
  let base = Memory.alloc m ~name:"a" ~bytes:16 in
  Memory.write_i32_array m base [| -5; 0; 123456; 7 |];
  check
    Alcotest.(array int)
    "roundtrip" [| -5; 0; 123456; 7 |]
    (Memory.read_i32_array m base 4)

let test_memory_oob () =
  let m = Memory.create () in
  let base = Memory.alloc m ~name:"a" ~bytes:8 in
  Alcotest.(check bool) "oob traps" true
    (try
       ignore (Memory.load m Vtype.i32 (Int64.add base 6L));
       false
     with Trap.Trap (Trap.Out_of_bounds _) -> true);
  Alcotest.(check bool) "far address traps" true
    (try
       ignore (Memory.load m Vtype.i32 0xDEAD0000L);
       false
     with Trap.Trap (Trap.Out_of_bounds _) -> true)

let test_memory_guard_gaps () =
  let m = Memory.create () in
  let a = Memory.alloc m ~name:"a" ~bytes:100 in
  let b = Memory.alloc m ~name:"b" ~bytes:100 in
  Alcotest.(check bool) "allocations are far apart" true
    (Int64.sub b a >= 4096L)

let test_memory_vector_rw () =
  let m = Memory.create () in
  let base = Memory.alloc m ~name:"v" ~bytes:32 in
  let v = Vvalue.of_const (Const.iota Vtype.I32 8) in
  Memory.store m v base;
  let back = Memory.load m (Vtype.vector 8 Vtype.I32) base in
  Alcotest.(check bool) "vector roundtrip" true (Vvalue.equal v back)

let test_memory_masked () =
  let m = Memory.create () in
  let base = Memory.alloc m ~name:"v" ~bytes:32 in
  Memory.write_f32_array m base [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |];
  let mask =
    Vvalue.I
      (Vtype.I1, Interp.Ilanes.of_array [| 1L; 0L; 1L; 0L; 1L; 0L; 1L; 0L |])
  in
  let v = Vvalue.of_const (Const.splat 8 (Const.f32 0.0)) in
  Memory.store ~mask m v base;
  check
    Alcotest.(array (float 0.0))
    "masked store wrote even lanes only"
    [| 0.; 2.; 0.; 4.; 0.; 6.; 0.; 8. |]
    (Memory.read_f32_array m base 8);
  let loaded =
    Memory.masked_load m (Vtype.vector 8 Vtype.F32) base ~mask
  in
  check (Alcotest.float 0.0) "masked load disabled lane is 0" 0.0
    (Vvalue.float_lane loaded 1);
  check (Alcotest.float 0.0) "masked load enabled lane reads" 0.0
    (Vvalue.float_lane loaded 0)

(* A masked load where the disabled lanes point out of bounds must not
   trap: maskload semantics touch only enabled lanes. *)
let test_memory_masked_oob_disabled_lanes () =
  let m = Memory.create () in
  let base = Memory.alloc m ~name:"v" ~bytes:8 in
  (* only 2 f32 elements; lanes 2..7 would be OOB *)
  Memory.write_f32_array m base [| 5.0; 6.0 |];
  let mask =
    Vvalue.I
      (Vtype.I1, Interp.Ilanes.of_array [| 1L; 1L; 0L; 0L; 0L; 0L; 0L; 0L |])
  in
  let v = Memory.masked_load m (Vtype.vector 8 Vtype.F32) base ~mask in
  check (Alcotest.float 0.0) "lane 0" 5.0 (Vvalue.float_lane v 0);
  check (Alcotest.float 0.0) "lane 1" 6.0 (Vvalue.float_lane v 1);
  check (Alcotest.float 0.0) "disabled lane" 0.0 (Vvalue.float_lane v 7)

(* ---------------- Machine ---------------- *)

let run_scale_add n =
  let m = Ir_samples.scale_add_module () in
  Verify.check_module m;
  let st = Machine.create (Compile.compile_module m) in
  let mem = Machine.memory st in
  let a = Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
  let out = Memory.alloc mem ~name:"out" ~bytes:(4 * n) in
  Memory.write_f32_array mem a (Array.init n (fun i -> float_of_int i));
  let _ =
    Machine.run st "scale_add"
      [ Vvalue.of_ptr a; Vvalue.of_ptr out; Vvalue.of_i32 n; Vvalue.of_f32 2.0 ]
  in
  (st, Memory.read_f32_array mem out n)

let test_machine_scalar_loop () =
  let _, out = run_scale_add 10 in
  (* out[i] = i * 2.0 + i = 3i *)
  Array.iteri
    (fun i x ->
      check (Alcotest.float 1e-6) (Printf.sprintf "out[%d]" i)
        (3.0 *. float_of_int i)
        x)
    out

let test_machine_dyn_count_scales () =
  let st1, _ = run_scale_add 10 in
  let st2, _ = run_scale_add 20 in
  Alcotest.(check bool) "dynamic count grows with n" true
    (Machine.dyn_count st2 > Machine.dyn_count st1);
  Alcotest.(check bool) "count is positive" true (Machine.dyn_count st1 > 50)

let test_machine_vadd8 () =
  let m = Ir_samples.vadd8_module () in
  let st = Machine.create (Compile.compile_module m) in
  let mem = Machine.memory st in
  let a = Memory.alloc mem ~name:"a" ~bytes:32 in
  let b = Memory.alloc mem ~name:"b" ~bytes:32 in
  let out = Memory.alloc mem ~name:"out" ~bytes:32 in
  Memory.write_f32_array mem a (Array.init 8 float_of_int);
  Memory.write_f32_array mem b (Array.make 8 100.0);
  let _ =
    Machine.run st "vadd8" [ Vvalue.of_ptr a; Vvalue.of_ptr b; Vvalue.of_ptr out ]
  in
  check
    Alcotest.(array (float 0.0))
    "vector add" (Array.init 8 (fun i -> 100.0 +. float_of_int i))
    (Memory.read_f32_array mem out 8)

let test_machine_masked_intrinsics () =
  List.iter
    (fun tgt ->
      let vl = Target.vl tgt in
      let m = Ir_samples.masked_copy_module tgt in
      let st = Machine.create (Compile.compile_module m) in
      let mem = Machine.memory st in
      let src = Memory.alloc mem ~name:"src" ~bytes:(4 * vl) in
      let dst = Memory.alloc mem ~name:"dst" ~bytes:(4 * vl) in
      Memory.write_f32_array mem src
        (Array.init vl (fun i -> float_of_int (i + 1)));
      Memory.write_f32_array mem dst (Array.make vl (-1.0));
      let mask =
        Vvalue.I
          ( Vtype.I1,
            Interp.Ilanes.init vl (fun i -> if i mod 2 = 0 then 1L else 0L) )
      in
      let _ =
        Machine.run st "masked_copy"
          [ Vvalue.of_ptr src; Vvalue.of_ptr dst; mask ]
      in
      let out = Memory.read_f32_array mem dst vl in
      Array.iteri
        (fun i x ->
          let expected =
            if i mod 2 = 0 then float_of_int (i + 1) else -1.0
          in
          check (Alcotest.float 0.0)
            (Printf.sprintf "%s dst[%d]" (Target.name tgt) i)
            expected x)
        out)
    Target.all

let test_machine_budget () =
  (* n chosen so the loop exceeds a tiny budget: reports a hang. *)
  let m = Ir_samples.scale_add_module () in
  let st = Machine.create ~budget:100 (Compile.compile_module m) in
  let mem = Machine.memory st in
  let a = Memory.alloc mem ~name:"a" ~bytes:4000 in
  let out = Memory.alloc mem ~name:"out" ~bytes:4000 in
  Alcotest.(check bool) "budget trap" true
    (try
       ignore
         (Machine.run st "scale_add"
            [
              Vvalue.of_ptr a; Vvalue.of_ptr out; Vvalue.of_i32 1000;
              Vvalue.of_f32 1.0;
            ]);
       false
     with Trap.Trap Trap.Budget_exhausted -> true)

let test_machine_div_by_zero () =
  let m = Vmodule.create "div" in
  let b =
    Builder.define m ~name:"div"
      ~params:[ ("x", Vtype.i32); ("y", Vtype.i32) ]
      ~ret_ty:Vtype.i32
  in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let q = Builder.sdiv b (Builder.param b "x") (Builder.param b "y") in
  Builder.ret b (Some q);
  let st = Machine.create (Compile.compile_module m) in
  (match Machine.run st "div" [ Vvalue.of_i32 10; Vvalue.of_i32 3 ] with
  | Some v -> check Alcotest.int64 "10/3" 3L (Vvalue.as_int v)
  | None -> Alcotest.fail "expected value");
  Alcotest.(check bool) "div by zero traps" true
    (try
       ignore (Machine.run st "div" [ Vvalue.of_i32 1; Vvalue.of_i32 0 ]);
       false
     with Trap.Trap Trap.Division_by_zero -> true)

let test_machine_extern_and_unknown () =
  let m = Vmodule.create "ext" in
  Vmodule.declare_extern m ~name:"host_add" ~arg_tys:[ Vtype.i32; Vtype.i32 ]
    ~ret:Vtype.i32;
  let b = Builder.define m ~name:"go" ~params:[] ~ret_ty:Vtype.i32 in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let r =
    Builder.call b ~ret:Vtype.i32 "host_add"
      [ Ir_samples.imm_i32 2; Ir_samples.imm_i32 40 ]
  in
  Builder.ret b (Some r);
  Verify.check_module m;
  let st = Machine.create (Compile.compile_module m) in
  Alcotest.(check bool) "unknown extern traps" true
    (try
       ignore (Machine.run st "go" []);
       false
     with Trap.Trap (Trap.Unknown_function "host_add") -> true);
  Machine.register_extern st "host_add" (fun _ args ->
      match args with
      | [ a; b ] ->
        Some (Vvalue.of_i64 (Int64.add (Vvalue.as_int a) (Vvalue.as_int b)))
      | _ -> assert false);
  (* note: handler returns i64-kind value; make it i32 to be faithful *)
  Machine.register_extern st "host_add" (fun _ args ->
      match args with
      | [ a; b ] ->
        Some
          (Vvalue.of_i32
             (Int64.to_int (Int64.add (Vvalue.as_int a) (Vvalue.as_int b))))
      | _ -> assert false);
  match Machine.run st "go" [] with
  | Some v -> check Alcotest.int64 "extern result" 42L (Vvalue.as_int v)
  | None -> Alcotest.fail "expected value"

let test_machine_fig3 () =
  let m, _, _, _, _ = Ir_samples.fig3_foo_module () in
  let st = Machine.create (Compile.compile_module m) in
  let mem = Machine.memory st in
  let n = 6 in
  let a = Memory.alloc mem ~name:"a" ~bytes:(4 * n) in
  Memory.write_i32_array mem a (Array.make n 1);
  let _ =
    Machine.run st "foo" [ Vvalue.of_ptr a; Vvalue.of_i32 n; Vvalue.of_i32 2 ]
  in
  (* s starts at 2 and accumulates +i each iteration: a[i] = s_i *)
  (* s: 2,2,3,5,8,12 -> a[i] = 1 * s_i *)
  check
    Alcotest.(array int)
    "fig3 semantics" [| 2; 2; 3; 5; 8; 12 |]
    (Memory.read_i32_array mem a n)

let test_machine_call_between_funcs () =
  let m = Ir_samples.vadd8_module () in
  let b = Builder.define m ~name:"twice" ~params:[ ("a", Vtype.ptr); ("b", Vtype.ptr); ("out", Vtype.ptr) ] ~ret_ty:Vtype.Void in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  ignore
    (Builder.call b ~ret:Vtype.Void "vadd8"
       [ Builder.param b "a"; Builder.param b "b"; Builder.param b "out" ]);
  ignore
    (Builder.call b ~ret:Vtype.Void "vadd8"
       [ Builder.param b "out"; Builder.param b "b"; Builder.param b "out" ]);
  Builder.ret b None;
  Verify.check_module m;
  let st = Machine.create (Compile.compile_module m) in
  let mem = Machine.memory st in
  let a = Memory.alloc mem ~name:"a" ~bytes:32 in
  let bb = Memory.alloc mem ~name:"b" ~bytes:32 in
  let out = Memory.alloc mem ~name:"out" ~bytes:32 in
  Memory.write_f32_array mem a (Array.make 8 1.0);
  Memory.write_f32_array mem bb (Array.make 8 10.0);
  let _ =
    Machine.run st "twice"
      [ Vvalue.of_ptr a; Vvalue.of_ptr bb; Vvalue.of_ptr out ]
  in
  check
    Alcotest.(array (float 0.0))
    "nested call" (Array.make 8 21.0)
    (Memory.read_f32_array mem out 8)

(* f32 arithmetic must round to single precision at every step. *)
let test_machine_f32_rounding () =
  let m = Vmodule.create "round" in
  let b =
    Builder.define m ~name:"go" ~params:[ ("x", Vtype.f32) ] ~ret_ty:Vtype.f32
  in
  let entry = Builder.new_block b "entry" in
  Builder.position_at_end b entry;
  let y = Builder.fadd b (Builder.param b "x") (Ir_samples.imm_f32 1e-9) in
  Builder.ret b (Some y);
  let st = Machine.create (Compile.compile_module m) in
  match Machine.run st "go" [ Vvalue.of_f32 1.0 ] with
  | Some v ->
    (* 1.0 + 1e-9 rounds back to 1.0 in f32 *)
    check (Alcotest.float 0.0) "f32 rounding" 1.0 (Vvalue.as_float v)
  | None -> Alcotest.fail "expected value"

(* ---------------- qcheck properties ---------------- *)

let prop_flip_involution =
  QCheck.Test.make ~name:"bit flip is an involution (int lanes)" ~count:300
    QCheck.(triple int64 (int_range 0 31) (int_range 0 7))
    (fun (x, bit, lane) ->
      let v =
        Vvalue.I
          ( Vtype.I32,
            Interp.Ilanes.init 8 (fun i ->
                Bits.truncate Vtype.I32 (Int64.add x (Int64.of_int i))) )
      in
      let v' = Vvalue.flip_bit v ~lane ~bit in
      let v'' = Vvalue.flip_bit v' ~lane ~bit in
      Vvalue.equal v v''
      && (not (Vvalue.equal v v')))

let prop_flip_changes_only_lane =
  QCheck.Test.make ~name:"bit flip touches exactly one lane" ~count:300
    QCheck.(pair (int_range 0 7) (int_range 0 31))
    (fun (lane, bit) ->
      let v = Vvalue.I (Vtype.I32, Interp.Ilanes.make 8 7L) in
      let v' = Vvalue.flip_bit v ~lane ~bit in
      let ok = ref true in
      for i = 0 to 7 do
        let same = Vvalue.int_lane v i = Vvalue.int_lane v' i in
        if i = lane then (if same then ok := false)
        else if not same then ok := false
      done;
      !ok)

let prop_truncate_idempotent =
  QCheck.Test.make ~name:"truncate is idempotent" ~count:300
    QCheck.(pair (oneofl [ Vtype.I1; Vtype.I8; Vtype.I32; Vtype.I64 ]) int64)
    (fun (s, x) -> Bits.truncate s (Bits.truncate s x) = Bits.truncate s x)

let prop_memory_roundtrip =
  QCheck.Test.make ~name:"f32 array memory roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 64) (float_range (-1e6) 1e6))
    (fun xs ->
      let xs = Array.of_list (List.map (Bits.round_float Vtype.F32) xs) in
      let m = Memory.create () in
      let base = Memory.alloc m ~name:"p" ~bytes:(4 * Array.length xs) in
      Memory.write_f32_array m base xs;
      Memory.read_f32_array m base (Array.length xs) = xs)

let () =
  Alcotest.run "interp"
    [
      ( "bits",
        [
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "to_unsigned" `Quick test_to_unsigned;
          Alcotest.test_case "float bits roundtrip" `Quick
            test_float_bits_roundtrip;
          Alcotest.test_case "flip int" `Quick test_flip_int;
          Alcotest.test_case "flip float" `Quick test_flip_float;
        ] );
      ( "vvalue",
        [
          Alcotest.test_case "of_const" `Quick test_vvalue_of_const;
          Alcotest.test_case "insert/extract" `Quick
            test_vvalue_insert_extract;
          Alcotest.test_case "flip_bit" `Quick test_vvalue_flip_bit;
          Alcotest.test_case "NaN equality" `Quick test_vvalue_equal_nan;
        ] );
      ( "memory",
        [
          Alcotest.test_case "alloc + rw f32" `Quick test_memory_alloc_rw;
          Alcotest.test_case "alloc + rw i32" `Quick test_memory_i32;
          Alcotest.test_case "out of bounds" `Quick test_memory_oob;
          Alcotest.test_case "guard gaps" `Quick test_memory_guard_gaps;
          Alcotest.test_case "vector rw" `Quick test_memory_vector_rw;
          Alcotest.test_case "masked ops" `Quick test_memory_masked;
          Alcotest.test_case "masked load skips disabled OOB lanes" `Quick
            test_memory_masked_oob_disabled_lanes;
        ] );
      ( "machine",
        [
          Alcotest.test_case "scalar loop" `Quick test_machine_scalar_loop;
          Alcotest.test_case "dynamic count" `Quick
            test_machine_dyn_count_scales;
          Alcotest.test_case "vadd8" `Quick test_machine_vadd8;
          Alcotest.test_case "masked intrinsics" `Quick
            test_machine_masked_intrinsics;
          Alcotest.test_case "budget = hang trap" `Quick test_machine_budget;
          Alcotest.test_case "division by zero" `Quick
            test_machine_div_by_zero;
          Alcotest.test_case "externs" `Quick test_machine_extern_and_unknown;
          Alcotest.test_case "fig3 semantics" `Quick test_machine_fig3;
          Alcotest.test_case "function calls" `Quick
            test_machine_call_between_funcs;
          Alcotest.test_case "f32 rounding" `Quick test_machine_f32_rounding;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_flip_involution;
            prop_flip_changes_only_lane;
            prop_truncate_idempotent;
            prop_memory_roundtrip;
          ] );
    ]

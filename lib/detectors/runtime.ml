(** Runtime side of the compiler-derived error detectors.

    The detector passes splice calls to these externs into the IR; at
    run time a violated invariant raises a detection flag. Detection is
    recorded rather than aborting, so an experiment can report both the
    outcome (SDC/benign/crash) and whether a detector flagged it —
    exactly the measurement Fig 12 makes.

    Extern arguments are borrowed aliases of the interpreter's pinned
    register buffers: they are only valid for the duration of the call.
    These handlers read scalar lanes immediately and retain nothing, so
    no copies are needed; a handler that stores a value must
    [Interp.Vvalue.copy] it (see the VULFI injection runtime). *)

let check_foreach_name = "__vulfi_check_foreach"

let check_foreach_exact_name = "__vulfi_check_foreach_exact"

let check_uniform_name = "__vulfi_check_uniform"

let assert_name = "__vulfi_assert"

type t = {
  mutable foreach_violations : int;
  mutable uniform_violations : int;
  mutable assert_violations : int;
}

let create () =
  { foreach_violations = 0; uniform_violations = 0; assert_violations = 0 }

let flagged t =
  t.foreach_violations > 0 || t.uniform_violations > 0
  || t.assert_violations > 0

let reset t =
  t.foreach_violations <- 0;
  t.uniform_violations <- 0;
  t.assert_violations <- 0

(* checkInvariantsForeachFullBody(new_counter, aligned_end, Vl):
   Fig 8's three loop invariants, checked on loop exit. *)
let handle_check_foreach t _st (args : Interp.Vvalue.t list) =
  (match args with
  | [ nc; ae; vl ] ->
    let nc = Interp.Vvalue.as_int nc in
    let ae = Interp.Vvalue.as_int ae in
    let vl = Interp.Vvalue.as_int vl in
    let ok =
      Int64.compare nc 0L >= 0        (* Invariant 1: new_counter >= 0 *)
      && Int64.compare nc ae <= 0     (* Invariant 2: <= aligned_end *)
      && (Int64.equal vl 0L |> not)
      && Int64.equal (Int64.rem nc vl) 0L  (* Invariant 3: % Vl == 0 *)
    in
    if not ok then t.foreach_violations <- t.foreach_violations + 1
  | _ -> invalid_arg "__vulfi_check_foreach: bad arity");
  None

(* Strengthened exit invariant (an extension beyond the paper's Fig 8):
   on the normal exit path new_counter does not merely satisfy
   new_counter <= aligned_end — it must EQUAL aligned_end, which also
   traps fault-induced early exits that Fig 8's invariants admit. *)
let handle_check_foreach_exact t _st (args : Interp.Vvalue.t list) =
  (match args with
  | [ nc; ae ] ->
    if not (Int64.equal (Interp.Vvalue.as_int nc) (Interp.Vvalue.as_int ae))
    then t.foreach_violations <- t.foreach_violations + 1
  | _ -> invalid_arg "__vulfi_check_foreach_exact: bad arity");
  None

(* checkUniformBroadcast(or_reduced_xor): non-zero means some lane of a
   broadcast vector differed from lane 0 (§III-B). *)
let handle_check_uniform t _st (args : Interp.Vvalue.t list) =
  (match args with
  | [ diff ] ->
    if not (Int64.equal (Interp.Vvalue.as_int diff) 0L) then
      t.uniform_violations <- t.uniform_violations + 1
  | _ -> invalid_arg "__vulfi_check_uniform: bad arity");
  None

(* Source-level assert (mini-ISPC [assert(cond);]): argument is an
   all-active-lanes-ok flag; false flags the run. *)
let handle_assert t _st (args : Interp.Vvalue.t list) =
  (match args with
  | [ ok ] ->
    if not (Interp.Vvalue.as_bool ok) then
      t.assert_violations <- t.assert_violations + 1
  | _ -> invalid_arg "__vulfi_assert: bad arity");
  None

let attach t (st : Interp.Machine.state) =
  Interp.Machine.register_extern st check_foreach_name
    (handle_check_foreach t);
  Interp.Machine.register_extern st check_foreach_exact_name
    (handle_check_foreach_exact t);
  Interp.Machine.register_extern st check_uniform_name
    (handle_check_uniform t);
  Interp.Machine.register_extern st assert_name (handle_assert t)

(* Hooks for the experiment/campaign machinery. *)
let hooks () : Vulfi.Experiment.hooks =
  let t = create () in
  {
    Vulfi.Experiment.h_attach = attach t;
    h_flagged = (fun () -> flagged t);
    h_reset = (fun () -> reset t);
  }

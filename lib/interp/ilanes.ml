(** Flat, unboxed integer lane buffers.

    A plain [int64 array] stores one boxed [Int64.t] pointer per
    element, so every lane write allocates a 24-byte box and runs the
    GC write barrier ([caml_modify]) — profiled at up to a quarter of
    interpreter time on integer-heavy workloads. Packing the lanes
    into a [Bytes.t] (8 bytes per lane, native byte order) makes reads
    and writes single machine loads/stores through the compiler's
    unboxed 64-bit primitives: no allocation, no barrier, and
    whole-value copies become [memcpy]. *)

type t = Bytes.t

external b_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external b_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

let[@inline] length (t : t) = Bytes.length t lsr 3
let[@inline] unsafe_get (t : t) i : int64 = b_get t (i lsl 3)
let[@inline] unsafe_set (t : t) i (x : int64) = b_set t (i lsl 3) x

let get (t : t) i : int64 =
  if i < 0 || i >= length t then invalid_arg "Ilanes.get";
  unsafe_get t i

let set (t : t) i (x : int64) =
  if i < 0 || i >= length t then invalid_arg "Ilanes.set";
  unsafe_set t i x

let make n (x : int64) : t =
  let t = Bytes.create (n lsl 3) in
  for i = 0 to n - 1 do
    unsafe_set t i x
  done;
  t

let init n f : t =
  let t = Bytes.create (n lsl 3) in
  for i = 0 to n - 1 do
    unsafe_set t i (f i)
  done;
  t

let copy : t -> t = Bytes.copy

let blit (src : t) spos (dst : t) dpos len =
  Bytes.blit src (spos lsl 3) dst (dpos lsl 3) (len lsl 3)

let of_array (a : int64 array) : t =
  init (Array.length a) (Array.unsafe_get a)

let to_array (t : t) : int64 array =
  Array.init (length t) (unsafe_get t)

let fold_left f acc (t : t) =
  let acc = ref acc in
  for i = 0 to length t - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let iteri f (t : t) =
  for i = 0 to length t - 1 do
    f i (unsafe_get t i)
  done


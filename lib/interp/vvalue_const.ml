(* Conversion from runtime values back to IR constants, used by the
   constant-folding pass. Lives here (not in Vvalue) to keep the
   dependency on Vir.Const construction in one place. *)

let scalar_const (s : Vir.Vtype.scalar) ~(int_lane : int64)
    ~(float_lane : float) : Vir.Const.t =
  if Vir.Vtype.is_float_scalar s then Vir.Const.Cfloat (s, float_lane)
  else Vir.Const.Cint (s, int_lane)

let to_const (v : Vvalue.t) : Vir.Const.t =
  match v with
  | Vvalue.I (s, lanes) when Ilanes.length lanes = 1 ->
    Vir.Const.Cint (s, Ilanes.unsafe_get lanes 0)
  | Vvalue.F (s, [| x |]) -> Vir.Const.Cfloat (s, x)
  | Vvalue.I (s, lanes) ->
    Vir.Const.Cvec
      (Array.map
         (fun x -> Vir.Const.Cint (s, x))
         (Ilanes.to_array lanes))
  | Vvalue.F (s, lanes) ->
    Vir.Const.Cvec (Array.map (fun x -> Vir.Const.Cfloat (s, x)) lanes)

(** Two-stage lowering of VIR for the interpreter.

    Stage 1 (register form): operand lookups become O(1) — register
    operands become indices into a per-frame register file, constants
    become pre-evaluated {!Vvalue.t}s, block labels become indices.

    Stage 2 (closure threading, destination-passing): every instruction
    is lowered once, at [compile_module] time, into a pre-specialized
    [state -> unit] closure that has already matched on the opcode, the
    scalar kind, and the operand shape (register vs immediate).

    Register slots are *pinned buffers*: each frame carries one mutable
    {!Vvalue.t} per dense register slot, shaped from the register's
    static SSA type at compile time, and kernels write their result
    lanes in place into the destination register's buffer — the steady
    state allocates nothing. In-place writes are sound because the IR
    is verified SSA: a destination register is distinct from every
    operand register (its definition strictly dominates all uses), so a
    kernel never reads a buffer it is writing. The two places where
    that argument needs more care are handled explicitly:

    - phi resolution is a *parallel copy* into the phi registers' own
      buffers at block entry ({!thread_phis}: when one phi's source is
      another phi's destination, reads are materialized into fresh
      copies before any write);
    - every value that escapes the register file — call arguments and
      returns crossing frames, extern-call arguments and results, the
      top-level [run] result — is copied at the boundary, and shared
      immediates ([Cimm]) are only ever copied *from*, never handed
      out as writable buffers.

    Calls are pre-resolved into direct calls (the callee's compiled
    function captured), specialized intrinsic closures, or extern
    *slots* — the string-keyed hash lookups of the old interpreter
    happen once per module instead of once per dynamic call. The
    campaign semantics (fuel, dyn_count/dyn_vector accounting, traps,
    extern hook surface) are preserved exactly. *)

type coperand =
  | Creg of int
  | Cimm of Vvalue.t

type cinstr = {
  src : Vir.Instr.t;  (** original instruction, for reporting *)
  dst : int;          (** destination register slot; [-1] if void *)
  ops : coperand array;
  cvec : bool;        (** vector instruction (pre-computed for dynamic
                          instruction-mix profiling) *)
}

type cphi = {
  pdst : int;
  (* incoming value per predecessor block index *)
  incoming : (int * coperand) array;
}

type cterm =
  | Tbr of int
  | Tcondbr of coperand * int * int
  | Tret of coperand option
  | Tunreachable

type cblock = {
  clabel : string;
  cphis : cphi array;
  body : cinstr array;  (** non-phi, non-terminator instructions *)
  term : cterm;
  term_src : Vir.Instr.t;
}

(* ------------------------------------------------------------------ *)
(* Stage-2 (threaded) representation and the machine state it runs in.
   The types are mutually recursive: threaded closures take the state,
   the state holds the compiled module, the module holds the threaded
   functions. *)

type cfunc = {
  cf : Vir.Func.t;
  cblocks : cblock array;
  nregs : int;
  nparams : int;
  func_id : int;  (** dense module-wide index, keys the frame pool *)
  alloca_name : string;  (** "<fname>.alloca", precomputed *)
  mutable reg_tmpl : Vvalue.t array;
      (** per-register buffer template, shaped from each register's
          static SSA type; the threading stage may append scratch slots
          for hazardous phi moves. Frames are instantiated as deep
          copies, so the template's values are never written and are
          safe to share across machines and domains. *)
  mutable tblocks : tblock array;  (** threaded code; filled by stage 2 *)
}

and tblock = {
  (* Per-predecessor parallel phi move, indexed by [pred_index + 1]
     (entry comes in as predecessor -1). Empty array = block has no
     phis. *)
  t_phis : texec array;
  (* The whole straight-line body as one composed closure (see
     [compose_body]): every indirect call site inside it has a single
     target, so the branch predictor resolves the dispatch that a
     closure-per-slot loop would mispredict. *)
  t_body : texec;
  t_term : tterm;
  (* The same body closures, one per instruction, annotated with the
     call structure ([skind]). Only the tracked executor and the
     resume path walk this array; the hot path ([t_body]) never does. *)
  t_steps : tstep array;
}

and tstep = { s_exec : texec; s_kind : skind }

(* What a body instruction does to the call structure. [Kplain] covers
   everything that stays within the current activation (including
   intrinsics and arity-mismatched direct calls, which raise without
   entering the callee); [Kcall] is a resolved direct call, carrying
   enough of the call-site shape to re-enter the callee under position
   tracking; [Kextern] is an extern-slot call, the only place a fault
   can be injected and hence the only checkpoint site. *)
and skind =
  | Kplain
  | Kcall of {
      k_target : cfunc;
      k_gs : tgetter array;
      k_dst : int;
      k_chg : state -> unit;
      k_live : int array;
          (** registers live after the call minus the destination: the
              exact frame slots a convergence check must compare when
              this call is the pending step of an outer activation
              (pooled frames are never cleared, so dead slots hold
              unrelated garbage and must be skipped) *)
    }
  | Kextern of {
      x_slot : int;
      x_gs : tgetter array;
      x_live : int array;
          (** registers live before the call (including its arguments):
              the frame slots a convergence check compares when this
              extern is the interrupted step of the innermost
              activation *)
    }

and texec = state -> unit

and tgetter = Vvalue.t array -> Vvalue.t

and tterm =
  | Ct_br of int
  | Ct_condbr_reg of int * int * int  (** condition straight from a register *)
  | Ct_condbr of tgetter * int * int
  | Ct_ret of tgetter
  | Ct_ret_void
  | Ct_unreachable

and cmodule = {
  cm : Vir.Vmodule.t;
  cfuncs : (string, cfunc) Hashtbl.t;
  n_funcs : int;  (** bound on [func_id]s, sizes frame-pool rows *)
  (* Callee names that resolve neither to a module function nor to an
     intrinsic, mapped to a dense slot index; the per-state extern
     handler table is indexed by these slots. *)
  extern_index : (string, int) Hashtbl.t;
  n_extern_slots : int;
  mutable n_fused_chains : int;
      (** chains from [Func.fuse_chains] actually lowered as fused
          kernels by the threading stage (advisory annotations that
          fail the emitter's defensive re-checks are skipped) *)
  fused_hist : (int, int) Hashtbl.t;
      (** chain length -> count over the actually-fused chains; feeds
          the VULFI_FUSION_STATS / bench fusion report *)
}

and state = {
  code : cmodule;
  mem : Memory.t;
  mutable budget0 : int;
      (** initial budget; executed = budget0 - fuel. Mutable only so
          [Machine.reset] can re-arm a reused machine. *)
  mutable fuel : int;  (** remaining dynamic instructions; <0 = trap *)
  mutable dyn_vector : int;  (** executed vector instructions *)
  mutable depth : int;  (** current call depth; reset per [run] *)
  mutable regs : Vvalue.t array;
      (** register frame of the running activation. Threaded closures
          take only [state] (a one-argument application is a direct
          code-pointer call, where two arguments would go through the
          runtime's generic apply); [exec_cfunc] points this at the
          frame on entry and call sites restore it on return. *)
  frames : Vvalue.t array array array;
      (** per-(depth, func_id) register-frame pool: [frames.(d).(f)] is
          the pinned-buffer frame for function [f] at call depth [d],
          instantiated from the function's [reg_tmpl] on first use and
          reused (without clearing) forever after. Reuse is sound: the
          IR is verified SSA, so every register read is dominated by a
          write in the same activation — stale lanes from a finished
          call are never observable. Two live activations can never
          share a frame because a nested call always runs one depth
          deeper. *)
  extern_slots : extern_fn option array;
  max_depth : int;
}

and extern_fn = state -> Vvalue.t list -> Vvalue.t option

(* ------------------------------------------------------------------ *)
(* Stage 1: register form                                              *)

let compile_operand (o : Vir.Instr.operand) =
  match o with
  | Vir.Instr.Reg (r, _) -> Creg r
  | Vir.Instr.Imm c -> Cimm (Vvalue.of_const c)

(* Shared template filler for register slots without a static def
   (unreachable under verified SSA). Frames copy the template, so the
   shared value itself is never written. *)
let default_value = Vvalue.I (Vir.Vtype.I32, Ilanes.make 1 0L)

let compile_func ~(func_id : int) (f : Vir.Func.t) : cfunc =
  let blocks = Array.of_list f.Vir.Func.blocks in
  let index_of = Hashtbl.create (Array.length blocks) in
  Array.iteri
    (fun i b -> Hashtbl.replace index_of b.Vir.Block.label i)
    blocks;
  let block_index label =
    match Hashtbl.find_opt index_of label with
    | Some i -> i
    | None -> invalid_arg ("Compile: unknown label %" ^ label)
  in
  let compile_block (b : Vir.Block.t) : cblock =
    let phis = ref [] and body = ref [] and term = ref None in
    List.iter
      (fun (i : Vir.Instr.t) ->
        match i.Vir.Instr.op with
        | Vir.Instr.Phi incoming ->
          phis :=
            {
              pdst = i.Vir.Instr.id;
              incoming =
                Array.of_list
                  (List.map
                     (fun (l, v) -> (block_index l, compile_operand v))
                     incoming);
            }
            :: !phis
        | Vir.Instr.Br l -> term := Some (Tbr (block_index l), i)
        | Vir.Instr.Condbr (c, l1, l2) ->
          term :=
            Some
              ( Tcondbr (compile_operand c, block_index l1, block_index l2),
                i )
        | Vir.Instr.Ret v ->
          term := Some (Tret (Option.map compile_operand v), i)
        | Vir.Instr.Unreachable -> term := Some (Tunreachable, i)
        | _ ->
          body :=
            {
              src = i;
              dst = (if Vir.Instr.defines i then i.Vir.Instr.id else -1);
              ops =
                Array.of_list
                  (List.map compile_operand (Vir.Instr.operands i));
              cvec = Vir.Instr.is_vector_instr i;
            }
            :: !body)
      b.Vir.Block.instrs;
    let term, term_src =
      match !term with
      | Some (t, i) -> (t, i)
      | None ->
        invalid_arg
          (Printf.sprintf "Compile: block %%%s has no terminator"
             b.Vir.Block.label)
    in
    {
      clabel = b.Vir.Block.label;
      cphis = Array.of_list (List.rev !phis);
      body = Array.of_list (List.rev !body);
      term;
      term_src;
    }
  in
  let nregs = f.Vir.Func.next_reg in
  (* Buffer template: one zeroed value per register slot, shaped from
     the slot's static SSA type (parameter types for params, result
     types for defining instructions — phis included). *)
  let reg_tmpl = Array.make nregs default_value in
  List.iter
    (fun (p : Vir.Func.param) ->
      reg_tmpl.(p.Vir.Func.preg) <- Vvalue.zero_of_ty p.Vir.Func.pty)
    f.Vir.Func.params;
  List.iter
    (fun (b : Vir.Block.t) ->
      List.iter
        (fun (i : Vir.Instr.t) ->
          if Vir.Instr.defines i then
            reg_tmpl.(i.Vir.Instr.id) <- Vvalue.zero_of_ty i.Vir.Instr.ty)
        b.Vir.Block.instrs)
    f.Vir.Func.blocks;
  {
    cf = f;
    cblocks = Array.map compile_block blocks;
    nregs;
    nparams = List.length f.Vir.Func.params;
    func_id;
    alloca_name = f.Vir.Func.fname ^ ".alloca";
    reg_tmpl;
    tblocks = [||];
  }

(* ------------------------------------------------------------------ *)
(* Execution engine                                                    *)

(* The executed-instruction count is derived ([budget0 - fuel]) so the
   per-instruction prologue is a single decrement + branch. *)
let charge st =
  st.fuel <- st.fuel - 1;
  if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted

let charge_vec st =
  st.fuel <- st.fuel - 1;
  if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
  st.dyn_vector <- st.dyn_vector + 1

(* The pinned-buffer frame for [cf] at the state's current depth,
   instantiated from the template on first use and cached forever. *)
let frame_for (st : state) (cf : cfunc) : Vvalue.t array =
  let depth = st.depth in
  let row = Array.unsafe_get st.frames depth in
  let row =
    if Array.length row > 0 then row
    else begin
      let fresh = Array.make (max st.code.n_funcs 1) [||] in
      st.frames.(depth) <- fresh;
      fresh
    end
  in
  let fr = Array.unsafe_get row cf.func_id in
  if Array.length fr > 0 then fr
  else begin
    (* Gap slots (register numbers of void instructions) share the
       template's default value instead of getting a private buffer: no
       kernel ever writes a slot without a defining instruction, and
       under verified SSA none reads one either. *)
    let fresh =
      Array.map
        (fun v -> if v == default_value then v else Vvalue.copy v)
        cf.reg_tmpl
    in
    row.(cf.func_id) <- fresh;
    fresh
  end

(* Run one threaded function body over a prepared register file. A
   [Ct_ret] result is an *alias* of a frame buffer (or a shared
   immediate): callers must copy it out before the frame can run
   again — direct-call sites do so in [store_ret], and [Machine.run]
   deep-copies the value it hands to the host. *)
let exec_cfunc (st : state) (cf : cfunc) (regs : Vvalue.t array) :
    Vvalue.t option =
  st.regs <- regs;
  let blocks = cf.tblocks in
  let rec go prev cur =
    let b = Array.unsafe_get blocks cur in
    if Array.length b.t_phis <> 0 then b.t_phis.(prev + 1) st;
    b.t_body st;
    charge st;
    match b.t_term with
    | Ct_br next -> go cur next
    | Ct_condbr_reg (r, l1, l2) -> (
      match Array.unsafe_get regs r with
      | Vvalue.I (_, ba) -> if Ilanes.unsafe_get ba 0 <> 0L then go cur l1 else go cur l2
      | v -> if Vvalue.as_bool v then go cur l1 else go cur l2)
    | Ct_condbr (c, l1, l2) ->
      if Vvalue.as_bool (c regs) then go cur l1 else go cur l2
    | Ct_ret g -> Some (g regs)
    | Ct_ret_void -> None
    | Ct_unreachable -> Trap.raise_ Trap.Unreachable_executed
  in
  go (-1) 0

(* ------------------------------------------------------------------ *)
(* Tracked execution and full-machine checkpoints.

   [exec_tracked] runs the same threaded closures as [exec_cfunc] but
   walks [t_steps] one instruction at a time, maintaining a shadow call
   stack of (function, block, instruction) positions. At every extern
   call it offers the pending argument list to a caller-supplied probe;
   when the probe answers [true] it captures a [checkpoint]: the memory
   image (through {!Memory.snapshot}'s dirty-span machinery), a deep
   copy of every live register frame, the call-stack positions, and the
   dynamic counters. The capture happens *before* the extern call
   executes, so a resumed run re-executes that call — an injection
   planted at the probed site happens naturally on resume.

   [exec_resume] is the inverse: restore memory and counters, copy the
   saved registers back into the (machine-owned) pool frames, then
   unwind the recorded stack innermost-first, finishing each partial
   block from its saved instruction index and re-entering each caller
   just after its pending call instruction. Both functions are off the
   hot path: [t_body] and [exec_cfunc] are untouched. *)

type tracked_frame = {
  tf_func : cfunc;
  tf_regs : Vvalue.t array;
  mutable tf_block : int;
  mutable tf_instr : int;
}

type frame_ckpt = {
  fc_func : cfunc;
  fc_block : int;
  fc_instr : int;  (** index into [t_steps]; the step has NOT executed *)
  fc_frame : Vvalue.t array;
      (** the live pool frame, aliased — a checkpoint is bound to the
          machine that captured it *)
  fc_saved : Vvalue.t array;
      (** deep copies of the registers; gap slots physically share
          [default_value] and are skipped on restore *)
}

type checkpoint = {
  ck_mem : Memory.snapshot;
  ck_stack : frame_ckpt array;  (** outermost activation first *)
  ck_spent : int;  (** [budget0 - fuel] at capture *)
  ck_vec : int;  (** [dyn_vector] at capture *)
}

let checkpoint_spent (ck : checkpoint) = ck.ck_spent

let exec_tracked (st : state) (cf : cfunc) (regs : Vvalue.t array)
    ~(probe : state -> slot:int -> Vvalue.t list -> bool)
    ~(on_capture : checkpoint -> unit) : Vvalue.t option =
  let stack : tracked_frame list ref = ref [] in
  let capture () =
    let frames =
      Array.of_list
        (List.rev_map
           (fun tf ->
             {
               fc_func = tf.tf_func;
               fc_block = tf.tf_block;
               fc_instr = tf.tf_instr;
               fc_frame = tf.tf_regs;
               fc_saved =
                 Array.map
                   (fun v ->
                     if v == default_value then v else Vvalue.copy v)
                   tf.tf_regs;
             })
           !stack)
    in
    on_capture
      {
        ck_mem = Memory.snapshot st.mem;
        ck_stack = frames;
        ck_spent = st.budget0 - st.fuel;
        ck_vec = st.dyn_vector;
      }
  in
  let rec exec_tf (tf : tracked_frame) : Vvalue.t option =
    let blocks = tf.tf_func.tblocks in
    st.regs <- tf.tf_regs;
    let rec go prev cur =
      let b = Array.unsafe_get blocks cur in
      if Array.length b.t_phis <> 0 then b.t_phis.(prev + 1) st;
      tf.tf_block <- cur;
      let steps = b.t_steps in
      for k = 0 to Array.length steps - 1 do
        tf.tf_instr <- k;
        let s = Array.unsafe_get steps k in
        match s.s_kind with
        | Kplain -> s.s_exec st
        | Kextern { x_slot; x_gs; _ } ->
          let args =
            Array.to_list (Array.map (fun g -> g tf.tf_regs) x_gs)
          in
          if probe st ~slot:x_slot args then capture ();
          s.s_exec st
        | Kcall { k_target; k_gs; k_dst; k_chg; _ } ->
          (* Mirrors the direct-call closure built by [thread_call]
             step for step, with the callee run under tracking. *)
          k_chg st;
          st.depth <- st.depth + 1;
          if st.depth > st.max_depth then
            Trap.raise_ Trap.Stack_overflow_vm;
          let regs' = frame_for st k_target in
          for a = 0 to Array.length k_gs - 1 do
            Vvalue.copy_into
              ~dst:(Array.unsafe_get regs' a)
              ((Array.unsafe_get k_gs a) tf.tf_regs)
          done;
          let callee =
            { tf_func = k_target; tf_regs = regs'; tf_block = 0;
              tf_instr = 0 }
          in
          stack := callee :: !stack;
          let r = exec_tf callee in
          stack := List.tl !stack;
          st.regs <- tf.tf_regs;
          st.depth <- st.depth - 1;
          (match r with
          | Some v when k_dst >= 0 ->
            Vvalue.copy_into ~dst:(Array.unsafe_get tf.tf_regs k_dst) v
          | Some _ | None -> ())
      done;
      charge st;
      match b.t_term with
      | Ct_br next -> go cur next
      | Ct_condbr_reg (r, l1, l2) -> (
        match Array.unsafe_get tf.tf_regs r with
        | Vvalue.I (_, ba) -> if Ilanes.unsafe_get ba 0 <> 0L then go cur l1 else go cur l2
        | v -> if Vvalue.as_bool v then go cur l1 else go cur l2)
      | Ct_condbr (c, l1, l2) ->
        if Vvalue.as_bool (c tf.tf_regs) then go cur l1 else go cur l2
      | Ct_ret g -> Some (g tf.tf_regs)
      | Ct_ret_void -> None
      | Ct_unreachable -> Trap.raise_ Trap.Unreachable_executed
    in
    go (-1) 0
  in
  let tf0 = { tf_func = cf; tf_regs = regs; tf_block = 0; tf_instr = 0 } in
  stack := [ tf0 ];
  exec_tf tf0

(* Finish one activation from a saved position: run the remainder of
   the interrupted block step-by-step, then fall back to the composed
   [t_body] closures for every subsequent block (full speed — the
   resumed suffix pays the per-step walk only once). *)
let exec_cfunc_resume (st : state) (cf : cfunc) (regs : Vvalue.t array)
    ~(block : int) ~(instr : int) : Vvalue.t option =
  st.regs <- regs;
  let blocks = cf.tblocks in
  let rec go prev cur =
    let b = Array.unsafe_get blocks cur in
    if Array.length b.t_phis <> 0 then b.t_phis.(prev + 1) st;
    b.t_body st;
    charge st;
    match b.t_term with
    | Ct_br next -> go cur next
    | Ct_condbr_reg (r, l1, l2) -> (
      match Array.unsafe_get regs r with
      | Vvalue.I (_, ba) -> if Ilanes.unsafe_get ba 0 <> 0L then go cur l1 else go cur l2
      | v -> if Vvalue.as_bool v then go cur l1 else go cur l2)
    | Ct_condbr (c, l1, l2) ->
      if Vvalue.as_bool (c regs) then go cur l1 else go cur l2
    | Ct_ret g -> Some (g regs)
    | Ct_ret_void -> None
    | Ct_unreachable -> Trap.raise_ Trap.Unreachable_executed
  in
  let b = Array.unsafe_get blocks block in
  let steps = b.t_steps in
  for k = instr to Array.length steps - 1 do
    (Array.unsafe_get steps k).s_exec st
  done;
  charge st;
  match b.t_term with
  | Ct_br next -> go block next
  | Ct_condbr_reg (r, l1, l2) -> (
    match Array.unsafe_get regs r with
    | Vvalue.I (_, ba) -> if Ilanes.unsafe_get ba 0 <> 0L then go block l1 else go block l2
    | v -> if Vvalue.as_bool v then go block l1 else go block l2)
  | Ct_condbr (c, l1, l2) ->
    if Vvalue.as_bool (c regs) then go block l1 else go block l2
  | Ct_ret g -> Some (g regs)
  | Ct_ret_void -> None
  | Ct_unreachable -> Trap.raise_ Trap.Unreachable_executed

(* Resume a machine from a checkpoint it captured earlier: memory,
   counters and register frames roll back, then the recorded call stack
   unwinds innermost-first — the innermost frame restarts at its saved
   step (the probed extern call, which therefore re-executes), each
   outer frame consumes its callee's return value and continues just
   past its pending call instruction. [budget] re-arms the fuel epoch
   exactly like [Machine.reset ~budget] before a fresh run would:
   [dyn_count] after resume equals prefix + suffix. Traps unwind out of
   the resumed suffix exactly as they do out of a fresh run. *)
let exec_resume (st : state) ~(budget : int) (ck : checkpoint) :
    Vvalue.t option =
  Memory.restore st.mem ck.ck_mem;
  st.budget0 <- budget;
  st.fuel <- budget - ck.ck_spent;
  st.dyn_vector <- ck.ck_vec;
  Array.iter
    (fun fr ->
      let dst = fr.fc_frame and src = fr.fc_saved in
      for k = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst k in
        if d != default_value then
          Vvalue.copy_into ~dst:d (Array.unsafe_get src k)
      done)
    ck.ck_stack;
  let n = Array.length ck.ck_stack in
  if n = 0 then invalid_arg "Compile.exec_resume: empty checkpoint stack";
  let rec unwind level ret =
    let fr = ck.ck_stack.(level) in
    st.depth <- level;
    let r =
      if level = n - 1 then
        exec_cfunc_resume st fr.fc_func fr.fc_frame ~block:fr.fc_block
          ~instr:fr.fc_instr
      else begin
        (match
           fr.fc_func.tblocks.(fr.fc_block).t_steps.(fr.fc_instr).s_kind
         with
        | Kcall { k_dst; _ } -> (
          match ret with
          | Some v when k_dst >= 0 ->
            Vvalue.copy_into ~dst:fr.fc_frame.(k_dst) v
          | _ -> ())
        | _ -> assert false);
        exec_cfunc_resume st fr.fc_func fr.fc_frame ~block:fr.fc_block
          ~instr:(fr.fc_instr + 1)
      end
    in
    if level = 0 then r else unwind (level - 1) r
  in
  unwind (n - 1) None

(* ------------------------------------------------------------------ *)
(* Convergence-checked execution (the Converge_pruned executor's
   engine). [exec_converge] / [exec_converge_resume] mirror
   [exec_tracked] / [exec_resume], but instead of capturing checkpoints
   they offer every extern call to a [check] callback together with the
   current shadow stack; the callback typically calls [state_equal]
   against a golden checkpoint at the same dynamic site and raises to
   terminate the run early when the states match (the caller splices
   the golden outcome — see Experiment.faulty_run_pruned).

   [check] returns whether a future call can still matter. The first
   [false] answer *detaches* the run: tracking stops and the rest of
   the activation stack executes through the composed [t_body]
   closures at full speed (per-step tracking forgoes the fused
   superblock kernels, so a suffix that can no longer prune would
   otherwise pay the tracked-interpreter tax for nothing). *)

type converge_check =
  state -> tracked_frame list -> slot:int -> Vvalue.t list -> bool

(* Exact machine-state comparison against a checkpoint, restricted to
   what can influence the continuation: dynamic counters, the call
   stack's (function, block, instruction) positions, the *live*
   registers of each interrupted position (dead slots of pooled frames
   hold garbage from unrelated runs), and memory over the union of the
   golden run's accumulated dirty spans [since] and the faulty run's
   own live dirty spans (every byte outside both is untouched since the
   shared post-setup image). Equality here implies the two executions
   complete identically: the continuation reads only live registers,
   compared memory, and the counters — and fault injectors past the
   injection site never modify values or draw randomness. *)
let state_equal (st : state) (stack : tracked_frame list)
    (ck : checkpoint) ~(since : Memory.spans) : bool =
  st.budget0 - st.fuel = ck.ck_spent
  && st.dyn_vector = ck.ck_vec
  &&
  let n = Array.length ck.ck_stack in
  let frame_eq i (tf : tracked_frame) =
    let fc = ck.ck_stack.(i) in
    tf.tf_func == fc.fc_func
    && tf.tf_block = fc.fc_block
    && tf.tf_instr = fc.fc_instr
    &&
    let live =
      match
        fc.fc_func.tblocks.(fc.fc_block).t_steps.(fc.fc_instr).s_kind
      with
      | Kextern { x_live; _ } when i = n - 1 -> Some x_live
      | Kcall { k_live; _ } when i < n - 1 -> Some k_live
      | _ -> None
    in
    match live with
    | None -> false
    | Some live ->
      Array.for_all
        (fun r -> Vvalue.equal tf.tf_regs.(r) fc.fc_saved.(r))
        live
  in
  (* [stack] is innermost-first; [ck_stack] outermost-first. *)
  let rec frames_eq i = function
    | [] -> i < 0
    | tf :: rest -> i >= 0 && frame_eq i tf && frames_eq (i - 1) rest
  in
  frames_eq (n - 1) stack
  && Memory.equal_since st.mem ck.ck_mem ~since

(* Shared tracked interpreter for the convergence executors: runs one
   activation, firing [check] before every extern step. [resume_mid]
   starts the frame at its recorded (block, instr) position without
   re-running the block's phi moves (the resume entry); a fresh frame
   enters at block 0 with the entry phi move, exactly like
   [exec_tracked]. [live] is the shared detach latch: the first [false]
   from [check] (anywhere in the activation tree) clears it, the
   current block's remaining steps run through [exec_cfunc_resume]'s
   full-speed path, and every enclosing activation follows suit. *)
let rec converge_tf (st : state) (stack : tracked_frame list ref)
    ~(check : converge_check) ~(live : bool ref) (tf : tracked_frame)
    ~(resume_mid : bool) : Vvalue.t option =
  let blocks = tf.tf_func.tblocks in
  st.regs <- tf.tf_regs;
  let rec go ~run_phis ~instr0 prev cur =
    let b = Array.unsafe_get blocks cur in
    if run_phis && Array.length b.t_phis <> 0 then b.t_phis.(prev + 1) st;
    tf.tf_block <- cur;
    let steps = b.t_steps in
    let n = Array.length steps in
    (* Returns -1 when the block completed under tracking, or the index
       of the first unexecuted step after a detach. *)
    let rec step k =
      if k >= n then -1
      else begin
        tf.tf_instr <- k;
        let s = Array.unsafe_get steps k in
        match s.s_kind with
        | Kplain ->
          s.s_exec st;
          step (k + 1)
        | Kextern { x_slot; x_gs; _ } ->
          let args =
            Array.to_list (Array.map (fun g -> g tf.tf_regs) x_gs)
          in
          if not (check st !stack ~slot:x_slot args) then live := false;
          s.s_exec st;
          if !live then step (k + 1) else k + 1
        | Kcall { k_target; k_gs; k_dst; k_chg; _ } ->
          k_chg st;
          st.depth <- st.depth + 1;
          if st.depth > st.max_depth then Trap.raise_ Trap.Stack_overflow_vm;
          let regs' = frame_for st k_target in
          for a = 0 to Array.length k_gs - 1 do
            Vvalue.copy_into
              ~dst:(Array.unsafe_get regs' a)
              ((Array.unsafe_get k_gs a) tf.tf_regs)
          done;
          let callee =
            { tf_func = k_target; tf_regs = regs'; tf_block = 0;
              tf_instr = 0 }
          in
          stack := callee :: !stack;
          let r = converge_tf st stack ~check ~live callee ~resume_mid:false in
          stack := List.tl !stack;
          st.regs <- tf.tf_regs;
          st.depth <- st.depth - 1;
          (match r with
          | Some v when k_dst >= 0 ->
            Vvalue.copy_into ~dst:(Array.unsafe_get tf.tf_regs k_dst) v
          | Some _ | None -> ());
          if !live then step (k + 1) else k + 1
      end
    in
    let detached_at = step instr0 in
    if detached_at >= 0 then
      (* no further check can matter: finish this activation through
         the composed closures (fused superblock kernels and all) *)
      exec_cfunc_resume st tf.tf_func tf.tf_regs ~block:cur
        ~instr:detached_at
    else begin
      charge st;
      match b.t_term with
      | Ct_br next -> go ~run_phis:true ~instr0:0 cur next
      | Ct_condbr_reg (r, l1, l2) -> (
        match Array.unsafe_get tf.tf_regs r with
        | Vvalue.I (_, ba) ->
          if Ilanes.unsafe_get ba 0 <> 0L then
            go ~run_phis:true ~instr0:0 cur l1
          else go ~run_phis:true ~instr0:0 cur l2
        | v ->
          if Vvalue.as_bool v then go ~run_phis:true ~instr0:0 cur l1
          else go ~run_phis:true ~instr0:0 cur l2)
      | Ct_condbr (c, l1, l2) ->
        if Vvalue.as_bool (c tf.tf_regs) then
          go ~run_phis:true ~instr0:0 cur l1
        else go ~run_phis:true ~instr0:0 cur l2
      | Ct_ret g -> Some (g tf.tf_regs)
      | Ct_ret_void -> None
      | Ct_unreachable -> Trap.raise_ Trap.Unreachable_executed
    end
  in
  if resume_mid then go ~run_phis:false ~instr0:tf.tf_instr (-1) tf.tf_block
  else go ~run_phis:true ~instr0:0 (-1) 0

(* Fresh convergence run: [exec_tracked] with [check] instead of the
   capture probe. Used when the fault site precedes every checkpoint
   (nothing to resume from) but later checkpoint sites can still prune. *)
let exec_converge (st : state) (cf : cfunc) (regs : Vvalue.t array)
    ~(check : converge_check) : Vvalue.t option =
  let tf0 = { tf_func = cf; tf_regs = regs; tf_block = 0; tf_instr = 0 } in
  let stack = ref [ tf0 ] in
  converge_tf st stack ~check ~live:(ref true) tf0 ~resume_mid:false

(* [exec_resume] with the whole resumed suffix run under tracking so
   [check] fires at every extern along the way. The restore prologue
   and the innermost-first unwind are identical to [exec_resume]; each
   level's suffix just goes through [converge_tf] instead of the
   full-speed [exec_cfunc_resume]. *)
let exec_converge_resume (st : state) ~(budget : int) (ck : checkpoint)
    ~(check : converge_check) : Vvalue.t option =
  Memory.restore st.mem ck.ck_mem;
  st.budget0 <- budget;
  st.fuel <- budget - ck.ck_spent;
  st.dyn_vector <- ck.ck_vec;
  Array.iter
    (fun fr ->
      let dst = fr.fc_frame and src = fr.fc_saved in
      for k = 0 to Array.length dst - 1 do
        let d = Array.unsafe_get dst k in
        if d != default_value then
          Vvalue.copy_into ~dst:d (Array.unsafe_get src k)
      done)
    ck.ck_stack;
  let n = Array.length ck.ck_stack in
  if n = 0 then
    invalid_arg "Compile.exec_converge_resume: empty checkpoint stack";
  let tfs =
    Array.map
      (fun fr ->
        { tf_func = fr.fc_func; tf_regs = fr.fc_frame;
          tf_block = fr.fc_block; tf_instr = fr.fc_instr })
      ck.ck_stack
  in
  (* innermost-first shadow stack over the pending outer activations *)
  let stack = ref [] in
  for level = 0 to n - 1 do
    stack := tfs.(level) :: !stack
  done;
  let live = ref true in
  let rec unwind level ret =
    let tf = tfs.(level) in
    st.depth <- level;
    let r =
      if level = n - 1 then
        converge_tf st stack ~check ~live tf ~resume_mid:true
      else begin
        (match
           tf.tf_func.tblocks.(tf.tf_block).t_steps.(tf.tf_instr).s_kind
         with
        | Kcall { k_dst; _ } -> (
          match ret with
          | Some v when k_dst >= 0 ->
            Vvalue.copy_into ~dst:tf.tf_regs.(k_dst) v
          | _ -> ())
        | _ -> assert false);
        tf.tf_instr <- tf.tf_instr + 1;
        if !live then converge_tf st stack ~check ~live tf ~resume_mid:true
        else
          exec_cfunc_resume st tf.tf_func tf.tf_regs ~block:tf.tf_block
            ~instr:tf.tf_instr
      end
    in
    stack := List.tl !stack;
    if level = 0 then r else unwind (level - 1) r
  in
  unwind (n - 1) None

(* ------------------------------------------------------------------ *)
(* Stage 2: closure threading                                          *)

let getter : coperand -> tgetter = function
  | Creg r -> fun regs -> Array.unsafe_get regs r
  | Cimm v -> fun _ -> v

(* Hand-rolled destination-passing lane maps: results go straight into
   the destination buffer, no closure capture or Array.init dispatch on
   the dynamic path, no allocation. Safe indexing on the operands keeps
   the original failure mode on a shape-confused value. *)
let map2_int_into (f : int64 -> int64 -> int64) (a : Ilanes.t)
    (b : Ilanes.t) (o : Ilanes.t) : unit =
  for i = 0 to Ilanes.length o - 1 do
    Ilanes.unsafe_set o i (f (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
  done

let map2_float_into (f : float -> float -> float) (a : float array)
    (b : float array) (o : float array) : unit =
  for i = 0 to Array.length o - 1 do
    Array.unsafe_set o i (f a.(i) b.(i))
  done

let map2_float_int_into (f : float -> float -> int64) (a : float array)
    (b : float array) (o : Ilanes.t) : unit =
  for i = 0 to Ilanes.length o - 1 do
    Ilanes.unsafe_set o i (f a.(i) b.(i))
  done

(* Static element kind of an operand, for pre-specialization. The
   verifier guarantees runtime values match their static types; the
   threaded closures still match the value constructor (operands and
   destination buffer alike) so a kind-confused extern result fails
   loudly instead of corrupting. *)
let op_scalar (i : Vir.Instr.t) n =
  Vir.Vtype.elem (Vir.Instr.operand_ty (List.nth (Vir.Instr.operands i) n))

(* Threading of one non-phi, non-terminator instruction. [chg] is the
   fuel-accounting prologue (scalar or vector variant), pre-selected.
   Every kernel writes its result into the destination register's
   pinned buffer ([regs.(dst)]); under SSA the destination register is
   distinct from every operand register, so the writes never clobber an
   operand being read. *)
let rec thread_instr (cm : cmodule) (cf : cfunc) (ci : cinstr) : texec =
  let i = ci.src in
  let ops = ci.ops in
  let dst = ci.dst in
  let chg = if ci.cvec then charge_vec else charge in
  match i.Vir.Instr.op with
  | Vir.Instr.Ibinop (k, _, _) -> (
    let ik = Eval.ibinop_into_fn k (Vir.Vtype.elem i.Vir.Instr.ty) in
    let bad () = invalid_arg "Machine: ibinop on floats" in
    if Vir.Vtype.lanes i.Vir.Instr.ty = 1 then
      (* Scalar loop arithmetic is the single hottest instruction class;
         specialize on operand shape (register vs pre-extracted
         immediate payload) to drop the getter indirection. *)
      match (ops.(0), ops.(1)) with
      | Creg ra, Creg rb ->
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match
             ( Array.unsafe_get regs ra,
               Array.unsafe_get regs rb,
               Array.unsafe_get regs dst )
           with
          | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, o) -> ik a b o
          | _ -> bad ())
      | Creg ra, Cimm (Vvalue.I (_, __imm)) when Ilanes.length __imm = 1 ->
        (* The immediate payload lives in its own 1-lane buffer so the
           kernel sees only flat buffers: no per-call boxing. *)
        let ib = Ilanes.copy __imm in
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match (Array.unsafe_get regs ra, Array.unsafe_get regs dst) with
          | Vvalue.I (_, a), Vvalue.I (_, o) -> ik a ib o
          | _ -> bad ())
      | Cimm (Vvalue.I (_, __imm)), Creg rb when Ilanes.length __imm = 1 ->
        let ia = Ilanes.copy __imm in
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match (Array.unsafe_get regs rb, Array.unsafe_get regs dst) with
          | Vvalue.I (_, b), Vvalue.I (_, o) -> ik ia b o
          | _ -> bad ())
      | o1, o2 ->
        let ga = getter o1 and gb = getter o2 in
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match (ga regs, gb regs, Array.unsafe_get regs dst) with
          | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, o) -> ik a b o
          | _ -> bad ())
    else
      let ga = getter ops.(0) and gb = getter ops.(1) in
      fun st ->
        let regs = st.regs in
        st.fuel <- st.fuel - 1;
        if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
        st.dyn_vector <- st.dyn_vector + 1;
        (match (ga regs, gb regs, Array.unsafe_get regs dst) with
        | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, o) -> ik a b o
        | _ -> bad ()))
  | Vir.Instr.Fbinop (k, _, _) -> (
    let s = Vir.Vtype.elem i.Vir.Instr.ty in
    let f = Eval.fbinop_fn k s in
    let bad () = invalid_arg "Machine: fbinop on ints" in
    if Vir.Vtype.lanes i.Vir.Instr.ty = 1 then
      match (ops.(0), ops.(1)) with
      | Creg ra, Creg rb ->
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match
             ( Array.unsafe_get regs ra,
               Array.unsafe_get regs rb,
               Array.unsafe_get regs dst )
           with
          | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.F (_, o) ->
            Array.unsafe_set o 0
              (f (Array.unsafe_get a 0) (Array.unsafe_get b 0))
          | _ -> bad ())
      | Creg ra, Cimm (Vvalue.F (_, [| bv |])) ->
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match (Array.unsafe_get regs ra, Array.unsafe_get regs dst) with
          | Vvalue.F (_, a), Vvalue.F (_, o) ->
            Array.unsafe_set o 0 (f (Array.unsafe_get a 0) bv)
          | _ -> bad ())
      | Cimm (Vvalue.F (_, [| av |])), Creg rb ->
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match (Array.unsafe_get regs rb, Array.unsafe_get regs dst) with
          | Vvalue.F (_, b), Vvalue.F (_, o) ->
            Array.unsafe_set o 0 (f av (Array.unsafe_get b 0))
          | _ -> bad ())
      | o1, o2 ->
        let ga = getter o1 and gb = getter o2 in
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match (ga regs, gb regs, Array.unsafe_get regs dst) with
          | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.F (_, o) ->
            o.(0) <- f a.(0) b.(0)
          | _ -> bad ())
    else
      let ga = getter ops.(0) and gb = getter ops.(1) in
      let vmap =
        match Eval.fbinop_vec_into_fn k s with
        | Some vf -> vf
        | None -> map2_float_into f
      in
      fun st ->
        let regs = st.regs in
        st.fuel <- st.fuel - 1;
        if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
        st.dyn_vector <- st.dyn_vector + 1;
        (match (ga regs, gb regs, Array.unsafe_get regs dst) with
        | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.F (_, o) -> vmap a b o
        | _ -> bad ()))
  | Vir.Instr.Icmp (p, _, _) -> (
    let s = op_scalar i 0 in
    let ick = Eval.icmp_into_fn p s in
    let bad () = invalid_arg "Machine: icmp on floats" in
    let lanes =
      Vir.Vtype.lanes
        (Vir.Instr.operand_ty (List.hd (Vir.Instr.operands i)))
    in
    if lanes = 1 then
      match (ops.(0), ops.(1)) with
      | Creg ra, Creg rb ->
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match
             ( Array.unsafe_get regs ra,
               Array.unsafe_get regs rb,
               Array.unsafe_get regs dst )
           with
          | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, o) -> ick a b o
          | _ -> bad ())
      | Creg ra, Cimm (Vvalue.I (_, __imm)) when Ilanes.length __imm = 1 ->
        let ib = Ilanes.copy __imm in
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match (Array.unsafe_get regs ra, Array.unsafe_get regs dst) with
          | Vvalue.I (_, a), Vvalue.I (_, o) -> ick a ib o
          | _ -> bad ())
      | o1, o2 ->
        let ga = getter o1 and gb = getter o2 in
        fun st ->
        let regs = st.regs in
          st.fuel <- st.fuel - 1;
          if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
          (match (ga regs, gb regs, Array.unsafe_get regs dst) with
          | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, o) -> ick a b o
          | _ -> bad ())
    else
      let ga = getter ops.(0) and gb = getter ops.(1) in
      fun st ->
        let regs = st.regs in
        st.fuel <- st.fuel - 1;
        if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
        st.dyn_vector <- st.dyn_vector + 1;
        (match (ga regs, gb regs, Array.unsafe_get regs dst) with
        | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, o) -> ick a b o
        | _ -> bad ()))
  | Vir.Instr.Fcmp (p, _, _) -> (
    let fck = Eval.fcmp_into_fn p in
    let bad () = invalid_arg "Machine: fcmp on ints" in
    let lanes =
      Vir.Vtype.lanes
        (Vir.Instr.operand_ty (List.hd (Vir.Instr.operands i)))
    in
    if lanes = 1 then
      let ga = getter ops.(0) and gb = getter ops.(1) in
      fun st ->
        let regs = st.regs in
        st.fuel <- st.fuel - 1;
        if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
        (match (ga regs, gb regs, Array.unsafe_get regs dst) with
        | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.I (_, o) -> fck a b o
        | _ -> bad ())
    else
      let ga = getter ops.(0) and gb = getter ops.(1) in
      fun st ->
        let regs = st.regs in
        st.fuel <- st.fuel - 1;
        if st.fuel < 0 then Trap.raise_ Trap.Budget_exhausted;
        st.dyn_vector <- st.dyn_vector + 1;
        (match (ga regs, gb regs, Array.unsafe_get regs dst) with
        | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.I (_, o) -> fck a b o
        | _ -> bad ()))
  | Vir.Instr.Select _ ->
    let gc = getter ops.(0)
    and gx = getter ops.(1)
    and gy = getter ops.(2) in
    let cond_lanes =
      Vir.Vtype.lanes
        (Vir.Instr.operand_ty (List.hd (Vir.Instr.operands i)))
    in
    if cond_lanes = 1 then
      fun st ->
        let regs = st.regs in
        chg st;
        Vvalue.copy_into
          ~dst:(Array.unsafe_get regs dst)
          (if Vvalue.as_bool (gc regs) then gx regs else gy regs)
    else
      fun st ->
        let regs = st.regs in
        chg st;
        (match gc regs with
        | Vvalue.I (_, c) ->
          (match (gx regs, gy regs, Array.unsafe_get regs dst) with
          | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, o) ->
            for ix = 0 to Ilanes.length o - 1 do
              Ilanes.unsafe_set o ix
                (if Ilanes.unsafe_get c ix <> 0L then Ilanes.unsafe_get a ix
                 else Ilanes.unsafe_get b ix)
            done
          | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.F (_, o) ->
            for ix = 0 to Array.length o - 1 do
              o.(ix) <-
                (if Ilanes.unsafe_get c ix <> 0L then a.(ix) else b.(ix))
            done
          | _ -> invalid_arg "Machine: select arm kind mismatch")
        | Vvalue.F _ -> invalid_arg "Machine: select on float mask")
  | Vir.Instr.Cast (k, _) ->
    let f =
      Eval.cast_into_fn k ~src:(op_scalar i 0) ~dst_ty:i.Vir.Instr.ty
    in
    let g = getter ops.(0) in
    fun st ->
        let regs = st.regs in
      chg st;
      f (g regs) (Array.unsafe_get regs dst)
  | Vir.Instr.Alloca (elt, count) ->
    let bytes = Vir.Vtype.size_bytes elt * count in
    let name = cf.alloca_name in
    fun st ->
        let regs = st.regs in
      chg st;
      (match Array.unsafe_get regs dst with
      | Vvalue.I (_, o) ->
        Ilanes.unsafe_set o 0 (Memory.alloc st.mem ~name ~bytes)
      | _ -> invalid_arg "Machine: alloca destination kind mismatch")
  | Vir.Instr.Load _ -> (
    let ld = Memory.loader_into i.Vir.Instr.ty in
    match ops.(0) with
    | Creg rp ->
      fun st ->
        let regs = st.regs in
        chg st;
        let addr =
          match Array.unsafe_get regs rp with
          | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
          | v -> Vvalue.as_int v
        in
        ld st.mem addr (Array.unsafe_get regs dst)
    | o ->
      let g = getter o in
      fun st ->
        let regs = st.regs in
        chg st;
        ld st.mem (Vvalue.as_int (g regs)) (Array.unsafe_get regs dst))
  | Vir.Instr.Store _ -> (
    let stv =
      Memory.storer
        (Vir.Instr.operand_ty (List.hd (Vir.Instr.operands i)))
    in
    match (ops.(0), ops.(1)) with
    | Creg rv, Creg rp ->
      fun st ->
        let regs = st.regs in
        chg st;
        let addr =
          match Array.unsafe_get regs rp with
          | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
          | v -> Vvalue.as_int v
        in
        stv st.mem (Array.unsafe_get regs rv) addr
    | o1, o2 ->
      let gv = getter o1 and gp = getter o2 in
      fun st ->
        let regs = st.regs in
        chg st;
        stv st.mem (gv regs) (Vvalue.as_int (gp regs)))
  | Vir.Instr.Gep (_, _, elem_bytes) -> (
    let eb = Int64.of_int elem_bytes in
    let bad () = invalid_arg "Machine: gep destination kind mismatch" in
    match (ops.(0), ops.(1)) with
    | Creg rb, Creg ri ->
      fun st ->
        let regs = st.regs in
        chg st;
        let base =
          match Array.unsafe_get regs rb with
          | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
          | v -> Vvalue.as_int v
        and idx =
          match Array.unsafe_get regs ri with
          | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
          | v -> Vvalue.as_int v
        in
        (match Array.unsafe_get regs dst with
        | Vvalue.I (_, o) ->
          Ilanes.unsafe_set o 0 (Int64.add base (Int64.mul idx eb))
        | _ -> bad ())
    | Creg rb, Cimm iv ->
      let off = Int64.mul (Vvalue.as_int iv) eb in
      fun st ->
        let regs = st.regs in
        chg st;
        let base =
          match Array.unsafe_get regs rb with
          | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
          | v -> Vvalue.as_int v
        in
        (match Array.unsafe_get regs dst with
        | Vvalue.I (_, o) -> Ilanes.unsafe_set o 0 (Int64.add base off)
        | _ -> bad ())
    | o1, o2 ->
      let gb = getter o1 and gi = getter o2 in
      fun st ->
        let regs = st.regs in
        chg st;
        let p =
          Int64.add (Vvalue.as_int (gb regs))
            (Int64.mul (Vvalue.as_int (gi regs)) eb)
        in
        (match Array.unsafe_get regs dst with
        | Vvalue.I (_, o) -> Ilanes.unsafe_set o 0 p
        | _ -> bad ()))
  | Vir.Instr.Extractelement _ ->
    let gv = getter ops.(0) and gi = getter ops.(1) in
    fun st ->
        let regs = st.regs in
      chg st;
      let v = gv regs in
      let ix = Int64.to_int (Vvalue.as_int (gi regs)) in
      if ix < 0 || ix >= Vvalue.lanes v then Trap.raise_ (Trap.Invalid_lane ix)
      else (
        match (v, Array.unsafe_get regs dst) with
        | Vvalue.I (_, a), Vvalue.I (_, o) ->
          Ilanes.unsafe_set o 0 (Ilanes.get a ix)
        | Vvalue.F (_, a), Vvalue.F (_, o) -> o.(0) <- a.(ix)
        | _ -> invalid_arg "Machine: extractelement kind mismatch")
  | Vir.Instr.Insertelement _ ->
    let s = Vir.Vtype.elem i.Vir.Instr.ty in
    let gv = getter ops.(0) and ge = getter ops.(1) and gi = getter ops.(2) in
    fun st ->
        let regs = st.regs in
      chg st;
      let v = gv regs in
      let e = ge regs in
      let ix = Int64.to_int (Vvalue.as_int (gi regs)) in
      if ix < 0 || ix >= Vvalue.lanes v then Trap.raise_ (Trap.Invalid_lane ix)
      else (
        match (v, e, Array.unsafe_get regs dst) with
        | Vvalue.I (_, a), Vvalue.I (_, e), Vvalue.I (_, o) ->
          Ilanes.blit a 0 o 0 (Ilanes.length o);
          Ilanes.set o ix (Bits.truncate s (Ilanes.unsafe_get e 0))
        | Vvalue.F (_, a), Vvalue.F (_, [| x |]), Vvalue.F (_, o) ->
          Array.blit a 0 o 0 (Array.length o);
          o.(ix) <- Bits.round_float s x
        | _ -> invalid_arg "Vvalue.insert: kind mismatch")
  | Vir.Instr.Shufflevector (_, _, mask) ->
    let ga = getter ops.(0) and gb = getter ops.(1) in
    (* The verifier bounds every mask index by the operand lane counts,
       so validate once here against the static operand type and run
       the per-lane loop on unchecked accesses. *)
    let src_lanes =
      Vir.Vtype.lanes
        (Vir.Instr.operand_ty (List.hd (Vir.Instr.operands i)))
    in
    Array.iter
      (fun ix ->
        if ix < 0 || ix >= 2 * src_lanes then
          invalid_arg "Machine: shufflevector mask out of bounds")
      mask;
    fun st ->
        let regs = st.regs in
      chg st;
      (match (ga regs, gb regs, Array.unsafe_get regs dst) with
      | Vvalue.I (_, xa), Vvalue.I (_, xb), Vvalue.I (_, o) ->
        let n = Ilanes.length xa in
        for j = 0 to Ilanes.length o - 1 do
          let ix = Array.unsafe_get mask j in
          Ilanes.unsafe_set o j
            (if ix < n then Ilanes.unsafe_get xa ix
             else Ilanes.unsafe_get xb (ix - n))
        done
      | Vvalue.F (_, xa), Vvalue.F (_, xb), Vvalue.F (_, o) ->
        let n = Array.length xa in
        for j = 0 to Array.length o - 1 do
          let ix = Array.unsafe_get mask j in
          o.(j) <- (if ix < n then xa.(ix) else xb.(ix - n))
        done
      | _ -> assert false)
  | Vir.Instr.Call (callee, _) -> thread_call cm ci callee chg
  | Vir.Instr.Phi _ | Vir.Instr.Br _ | Vir.Instr.Condbr _ | Vir.Instr.Ret _
  | Vir.Instr.Unreachable ->
    assert false (* handled by the block structure *)

(* Pre-resolve a call site: module function (direct), intrinsic
   (specialized closure) or extern (slot). Resolution order matches the
   old per-dynamic-call lookup chain exactly. *)
and thread_call (cm : cmodule) (ci : cinstr) (callee : string)
    (chg : state -> unit) : texec =
  let i = ci.src in
  let ops = ci.ops in
  let dst = ci.dst in
  let gs = Array.map getter ops in
  let nargs = Array.length gs in
  (* Shared arg-list builder for list-based callees (externs). The list
     holds *aliases* of register buffers: handlers consume them during
     the call and must copy anything they retain (the VULFI runtime
     copies its injection record; see DESIGN.md). *)
  let mk_args : Vvalue.t array -> Vvalue.t list =
    match gs with
    | [||] -> fun _ -> []
    | [| g0 |] -> fun regs -> [ g0 regs ]
    | [| g0; g1 |] -> fun regs -> [ g0 regs; g1 regs ]
    | [| g0; g1; g2 |] -> fun regs -> [ g0 regs; g1 regs; g2 regs ]
    | gs -> fun regs -> Array.to_list (Array.map (fun g -> g regs) gs)
  in
  (* A callee's result (frame-buffer alias or extern-produced value) is
     copied into the caller's destination buffer: nothing escaping a
     frame is ever shared. *)
  let store_ret regs (r : Vvalue.t option) =
    match r with
    | Some v when dst >= 0 ->
      Vvalue.copy_into ~dst:(Array.unsafe_get regs dst) v
    | Some _ | None -> ()
  in
  match Hashtbl.find_opt cm.cfuncs callee with
  | Some target ->
    if nargs <> target.nparams then
      fun st ->
        chg st;
        invalid_arg
          (Printf.sprintf
             "Machine: call to @%s with %d argument(s), expects %d" callee
             nargs target.nparams)
    else
      fun st ->
        let regs = st.regs in
        chg st;
        st.depth <- st.depth + 1;
        if st.depth > st.max_depth then Trap.raise_ Trap.Stack_overflow_vm;
        let regs' = frame_for st target in
        for a = 0 to nargs - 1 do
          Vvalue.copy_into
            ~dst:(Array.unsafe_get regs' a)
            ((Array.unsafe_get gs a) regs)
        done;
        let r = exec_cfunc st target regs' in
        st.regs <- regs;
        st.depth <- st.depth - 1;
        store_ret regs r
  | None -> (
    match Vir.Intrinsics.lookup callee with
    | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Math m; _ } -> (
      let bad () =
        invalid_arg ("Machine: bad math intrinsic args for " ^ m)
      in
      (* An unknown math name keeps raising at run time, like the old
         per-call dispatch did. *)
      let fn = try Some (Eval.math_fn m) with Invalid_argument _ -> None in
      match (fn, gs) with
      | None, _ ->
        fun st ->
          chg st;
          invalid_arg ("Machine: unknown math intrinsic " ^ m)
      | Some (Eval.Unary f), [| g0 |] ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, Array.unsafe_get regs dst) with
          | Vvalue.F (s, lanes), Vvalue.F (_, o) ->
            for ix = 0 to Array.length o - 1 do
              o.(ix) <- Bits.round_float s (f lanes.(ix))
            done
          | _ -> bad ())
      | Some (Eval.Binary f), [| g0; g1 |] ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, g1 regs, Array.unsafe_get regs dst) with
          | Vvalue.F (s, a), Vvalue.F (_, b), Vvalue.F (_, o) ->
            for ix = 0 to Array.length o - 1 do
              o.(ix) <- Bits.round_float s (f a.(ix) b.(ix))
            done
          | _ -> bad ())
      | _ ->
        fun st ->
          chg st;
          bad ())
    | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Reduce r; _ } -> (
      let bad () = invalid_arg ("Machine: bad reduce intrinsic " ^ r) in
      let is_float =
        nargs = 1
        && Vir.Vtype.is_float_scalar (op_scalar i 0)
      in
      match (r, gs) with
      | "add", [| g0 |] when is_float ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, Array.unsafe_get regs dst) with
          | Vvalue.F (s, lanes), Vvalue.F (_, o) ->
            o.(0) <- Eval.reduce_fadd s lanes
          | _ -> bad ())
      | "add", [| g0 |] ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, Array.unsafe_get regs dst) with
          | Vvalue.I (s, lanes), Vvalue.I (_, o) ->
            Ilanes.unsafe_set o 0 (Eval.reduce_iadd s lanes)
          | _ -> bad ())
      | "or", [| g0 |] when not is_float ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, Array.unsafe_get regs dst) with
          | Vvalue.I (_, lanes), Vvalue.I (_, o) ->
            Ilanes.unsafe_set o 0 (Eval.reduce_or lanes)
          | _ -> bad ())
      | "min", [| g0 |] when is_float ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, Array.unsafe_get regs dst) with
          | Vvalue.F (_, lanes), Vvalue.F (_, o) ->
            o.(0) <- Eval.reduce_fmin lanes
          | _ -> bad ())
      | "max", [| g0 |] when is_float ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, Array.unsafe_get regs dst) with
          | Vvalue.F (_, lanes), Vvalue.F (_, o) ->
            o.(0) <- Eval.reduce_fmax lanes
          | _ -> bad ())
      | "min", [| g0 |] ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, Array.unsafe_get regs dst) with
          | Vvalue.I (_, lanes), Vvalue.I (_, o) ->
            Ilanes.unsafe_set o 0 (Eval.reduce_imin lanes)
          | _ -> bad ())
      | "max", [| g0 |] ->
        fun st ->
        let regs = st.regs in
          chg st;
          (match (g0 regs, Array.unsafe_get regs dst) with
          | Vvalue.I (_, lanes), Vvalue.I (_, o) ->
            Ilanes.unsafe_set o 0 (Eval.reduce_imax lanes)
          | _ -> bad ())
      | _ ->
        fun st ->
          chg st;
          bad ())
    | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Maskload; _ } ->
      if nargs <> 2 then
        fun st ->
          chg st;
          invalid_arg ("Machine: maskload arity @" ^ callee)
      else
        let ty = i.Vir.Instr.ty in
        let gp = gs.(0) and gm = gs.(1) in
        fun st ->
        let regs = st.regs in
          chg st;
          Memory.masked_load_into st.mem ty
            (Vvalue.as_int (gp regs))
            ~mask:(gm regs)
            (Array.unsafe_get regs dst)
    | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Maskstore; _ } ->
      if nargs <> 3 then
        fun st ->
          chg st;
          invalid_arg ("Machine: maskstore arity @" ^ callee)
      else
        let gp = gs.(0) and gm = gs.(1) and gv = gs.(2) in
        fun st ->
        let regs = st.regs in
          chg st;
          Memory.store ~mask:(gm regs) st.mem (gv regs)
            (Vvalue.as_int (gp regs))
    | None ->
      let slot = Hashtbl.find cm.extern_index callee in
      fun st ->
        let regs = st.regs in
        chg st;
        (match Array.unsafe_get st.extern_slots slot with
        | Some handler -> store_ret regs (handler st (mk_args regs))
        | None -> Trap.raise_ (Trap.Unknown_function callee)))

(* ------------------------------------------------------------------ *)
(* Per-register liveness over the register-form CFG. The convergence
   executor compares frames only over the live-in registers of each
   interrupted position: pooled frames are reused across runs without
   clearing, so dead slots hold garbage from unrelated experiments —
   comparing them would be sound but would make convergence near-never
   fire. Restricting to live registers stays exact: a register is live
   at p iff the continuation from p can read its current value, so
   equal live registers (plus memory and counters) imply an identical
   continuation. Standard backward dataflow; phi uses are attributed to
   the predecessor edge and phi defs kill at the successor's entry. *)

let instr_uses (ci : cinstr) (mark : int -> unit) : unit =
  Array.iter (function Creg r -> mark r | Cimm _ -> ()) ci.ops

let term_uses (t : cterm) (mark : int -> unit) : unit =
  match t with
  | Tcondbr (Creg r, _, _) -> mark r
  | Tret (Some (Creg r)) -> mark r
  | Tbr _ | Tcondbr (Cimm _, _, _) | Tret _ | Tunreachable -> ()

let block_succs (t : cterm) : int list =
  match t with
  | Tbr l -> [ l ]
  | Tcondbr (_, l1, l2) -> [ l1; l2 ]
  | Tret _ | Tunreachable -> []

(* live-out of block [bi] into [live]: every successor's live-in (which
   already excludes its phi defs) plus the phi sources those successors
   draw from this edge (first-match semantics, like [thread_phis]). *)
let live_out_into (cf : cfunc) (live_in : bool array array) (bi : int)
    (blk : cblock) (live : bool array) : unit =
  List.iter
    (fun s ->
      let sb = cf.cblocks.(s) in
      let sin = live_in.(s) in
      for r = 0 to Array.length sin - 1 do
        if sin.(r) then live.(r) <- true
      done;
      Array.iter
        (fun (p : cphi) ->
          match
            Array.find_opt (fun (pred, _) -> pred = bi) p.incoming
          with
          | Some (_, Creg r) -> live.(r) <- true
          | Some (_, Cimm _) | None -> ())
        sb.cphis)
    (block_succs blk.term)

(* Fixpoint live-in (at block entry, before the phi moves) per block. *)
let live_in_sets (cf : cfunc) : bool array array =
  let nb = Array.length cf.cblocks in
  let live_in = Array.init nb (fun _ -> Array.make cf.nregs false) in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = nb - 1 downto 0 do
      let blk = cf.cblocks.(bi) in
      let live = Array.make cf.nregs false in
      live_out_into cf live_in bi blk live;
      term_uses blk.term (fun r -> live.(r) <- true);
      for k = Array.length blk.body - 1 downto 0 do
        let ci = blk.body.(k) in
        if ci.dst >= 0 then live.(ci.dst) <- false;
        instr_uses ci (fun r -> live.(r) <- true)
      done;
      Array.iter (fun (p : cphi) -> live.(p.pdst) <- false) blk.cphis;
      if live <> live_in.(bi) then begin
        live_in.(bi) <- live;
        changed := true
      end
    done
  done;
  live_in

(* (live-before, live-after) register sets — sorted index arrays — for
   each call step of [blk]; non-call steps get empty arrays (only
   [Kcall]/[Kextern] annotations consume them). *)
let step_live_sets (cf : cfunc) (live_in : bool array array) (bi : int)
    (blk : cblock) : (int array * int array) array =
  let n = Array.length blk.body in
  let out = Array.make n ([||], [||]) in
  if n > 0 then begin
    let live = Array.make cf.nregs false in
    live_out_into cf live_in bi blk live;
    term_uses blk.term (fun r -> live.(r) <- true);
    let to_set () =
      let count = ref 0 in
      Array.iter (fun v -> if v then incr count) live;
      let a = Array.make !count 0 in
      let j = ref 0 in
      Array.iteri
        (fun r v ->
          if v then begin
            a.(!j) <- r;
            incr j
          end)
        live;
      a
    in
    for k = n - 1 downto 0 do
      let ci = blk.body.(k) in
      let is_call =
        match ci.src.Vir.Instr.op with
        | Vir.Instr.Call _ -> true
        | _ -> false
      in
      let after = if is_call then to_set () else [||] in
      if ci.dst >= 0 then live.(ci.dst) <- false;
      instr_uses ci (fun r -> live.(r) <- true);
      let before = if is_call then to_set () else [||] in
      out.(k) <- (before, after)
    done
  end;
  out

(* Call-structure annotation for [t_steps], resolved with exactly the
   same chain as [thread_call] (module functions, then intrinsics, then
   extern slots) so the tracked executor enters precisely the calls the
   fast closures enter. Arity-mismatched direct calls and intrinsics
   stay [Kplain]: their closures never run callee code under a deeper
   frame, so position tracking has nothing to record. *)
let step_kind (cm : cmodule) (ci : cinstr) ~(live_before : int array)
    ~(live_after : int array) : skind =
  match ci.src.Vir.Instr.op with
  | Vir.Instr.Call (callee, _) -> (
    match Hashtbl.find_opt cm.cfuncs callee with
    | Some target ->
      if Array.length ci.ops <> target.nparams then Kplain
      else
        Kcall
          {
            k_target = target;
            k_gs = Array.map getter ci.ops;
            k_dst = ci.dst;
            k_chg = (if ci.cvec then charge_vec else charge);
            k_live =
              (* the destination is overwritten by the callee's return
                 (itself determined by the compared callee state), so
                 its pre-call content is excluded from comparisons *)
              (if ci.dst >= 0 && Array.exists (fun r -> r = ci.dst) live_after
               then
                 Array.of_list
                   (List.filter
                      (fun r -> r <> ci.dst)
                      (Array.to_list live_after))
               else live_after);
          }
    | None -> (
      match Vir.Intrinsics.lookup callee with
      | Some _ -> Kplain
      | None ->
        Kextern
          {
            x_slot = Hashtbl.find cm.extern_index callee;
            x_gs = Array.map getter ci.ops;
            x_live = live_before;
          }))
  | _ -> Kplain

(* Per-predecessor parallel phi move: each phi charges one dynamic
   instruction during its read (like the old interpreter). With pinned
   buffers the move is a lane copy into each phi register's own buffer.
   When no phi's source register is another phi's destination (the
   overwhelmingly common case, detected at threading time) the copies
   can run in sequence directly; otherwise the reads are staged through
   *frame-pinned scratch slots* appended to the function's register
   template, preserving the parallel-copy semantics for swap/rotation
   cycles across a back edge without allocating (real loops hit this:
   conjugate gradient's x/r/p recurrences form exactly such a cycle).
   A predecessor with no incoming edge for a phi raises when (and only
   when) that phi's read is reached. *)
let thread_phis (cf : cfunc) (blk : cblock) (nblocks : int) : texec array =
  let phis = blk.cphis in
  let n = Array.length phis in
  if n = 0 then [||]
  else
    Array.init (nblocks + 1) (fun pi ->
        let prev = pi - 1 in
        (* first-match semantics of the old List.find *)
        let src_of (p : cphi) : coperand option =
          Option.map snd
            (Array.find_opt (fun (pred, _) -> pred = prev) p.incoming)
        in
        let read_of (p : cphi) : tgetter =
          match src_of p with
          | Some v -> getter v
          | None ->
            fun _ ->
              invalid_arg
                (Printf.sprintf "Machine: phi in %%%s has no edge from #%d"
                   blk.clabel prev)
        in
        let reads = Array.map read_of phis in
        let dsts = Array.map (fun p -> p.pdst) phis in
        if n = 1 then
          let g = reads.(0) and d = dsts.(0) in
          fun st ->
        let regs = st.regs in
            charge st;
            Vvalue.copy_into ~dst:(Array.unsafe_get regs d) (g regs)
        else
          let hazardous =
            Array.exists
              (fun (p : cphi) ->
                match src_of p with
                | Some (Creg r) ->
                  Array.exists (fun d -> d = r && d <> p.pdst) dsts
                | _ -> false)
              phis
          in
          if not hazardous then
            fun st ->
        let regs = st.regs in
              for k = 0 to n - 1 do
                charge st;
                Vvalue.copy_into
                  ~dst:(Array.unsafe_get regs (Array.unsafe_get dsts k))
                  ((Array.unsafe_get reads k) regs)
              done
          else begin
            (* One scratch slot per phi, shaped like its destination,
               appended to the frame template: the reads land in
               scratch before any destination is written. Scratch
               registers have no defining instruction so they can never
               alias an operand. *)
            let scratch_base = Array.length cf.reg_tmpl in
            cf.reg_tmpl <-
              Array.append cf.reg_tmpl
                (Array.map (fun d -> Vvalue.copy cf.reg_tmpl.(d)) dsts);
            fun st ->
              let regs = st.regs in
              for k = 0 to n - 1 do
                charge st;
                Vvalue.copy_into
                  ~dst:(Array.unsafe_get regs (scratch_base + k))
                  ((Array.unsafe_get reads k) regs)
              done;
              for k = 0 to n - 1 do
                Vvalue.copy_into
                  ~dst:(Array.unsafe_get regs (Array.unsafe_get dsts k))
                  (Array.unsafe_get regs (scratch_base + k))
              done
          end)

let nop_exec : texec = fun _ -> ()

(* Compose a block body into one closure. Runs of up to 8 instructions
   become a single closure with one *dedicated* (hence predictable)
   indirect call site per instruction; longer bodies become a balanced
   tree of such runs. *)
let rec compose_body (body : texec array) lo hi : texec =
  match hi - lo with
  | 0 -> nop_exec
  | 1 -> body.(lo)
  | 2 ->
    let f0 = body.(lo) and f1 = body.(lo + 1) in
    fun st ->
      f0 st;
      f1 st
  | 3 ->
    let f0 = body.(lo) and f1 = body.(lo + 1) and f2 = body.(lo + 2) in
    fun st ->
      f0 st;
      f1 st;
      f2 st
  | 4 ->
    let f0 = body.(lo)
    and f1 = body.(lo + 1)
    and f2 = body.(lo + 2)
    and f3 = body.(lo + 3) in
    fun st ->
      f0 st;
      f1 st;
      f2 st;
      f3 st
  | 5 ->
    let f0 = body.(lo)
    and f1 = body.(lo + 1)
    and f2 = body.(lo + 2)
    and f3 = body.(lo + 3)
    and f4 = body.(lo + 4) in
    fun st ->
      f0 st;
      f1 st;
      f2 st;
      f3 st;
      f4 st
  | 6 ->
    let f0 = body.(lo)
    and f1 = body.(lo + 1)
    and f2 = body.(lo + 2)
    and f3 = body.(lo + 3)
    and f4 = body.(lo + 4)
    and f5 = body.(lo + 5) in
    fun st ->
      f0 st;
      f1 st;
      f2 st;
      f3 st;
      f4 st;
      f5 st
  | 7 ->
    let f0 = body.(lo)
    and f1 = body.(lo + 1)
    and f2 = body.(lo + 2)
    and f3 = body.(lo + 3)
    and f4 = body.(lo + 4)
    and f5 = body.(lo + 5)
    and f6 = body.(lo + 6) in
    fun st ->
      f0 st;
      f1 st;
      f2 st;
      f3 st;
      f4 st;
      f5 st;
      f6 st
  | 8 ->
    let f0 = body.(lo)
    and f1 = body.(lo + 1)
    and f2 = body.(lo + 2)
    and f3 = body.(lo + 3)
    and f4 = body.(lo + 4)
    and f5 = body.(lo + 5)
    and f6 = body.(lo + 6)
    and f7 = body.(lo + 7) in
    fun st ->
      f0 st;
      f1 st;
      f2 st;
      f3 st;
      f4 st;
      f5 st;
      f6 st;
      f7 st
  | n ->
    let mid = lo + (n / 2) in
    let a = compose_body body lo mid and b = compose_body body mid hi in
    fun st ->
      a st;
      b st

(* ------------------------------------------------------------------ *)
(* Fused superblock kernels.

   [thread_chain] lowers a chain annotated by the fusion pass
   ([Func.fuse_chains], computed by [Analysis.Chains]) into ONE closure
   covering all members. The legality argument:

   - every intermediate register is single-use (its only reader is the
     next chain member), so skipping — or keeping, for load/store
     members — its buffer write is unobservable; fused kernels pass
     pure intermediates as OCaml locals instead;
   - fuel is still charged ONCE PER MEMBER, through the member's own
     scalar/vector variant, so [dyn_count]/[dyn_vector] and the
     [Budget_exhausted] trap point are bit-identical to unfused
     execution;
   - when the producer can trap (loads, the integer divide family),
     charges stay strictly interleaved with member execution so a trap
     leaves the same fuel as unfused stepping. Pure producers allow
     grouping the charges up front: the only state a reordered trap
     could expose is a partial register write, which is unobservable;
   - the tracked executor and the resume path use [t_steps], which is
     NEVER fused — fault sites and checkpoint positions stay per
     original instruction.

   The emitter re-checks every structural assumption (operand
   positions, lane counts, value kinds) and returns [None] when
   anything is off — annotations are advisory, and an unfused fallback
   is always correct. *)

let divlike = function
  | Vir.Instr.Sdiv | Vir.Instr.Srem | Vir.Instr.Udiv | Vir.Instr.Urem -> true
  | Vir.Instr.Add | Vir.Instr.Sub | Vir.Instr.Mul | Vir.Instr.And
  | Vir.Instr.Or | Vir.Instr.Xor | Vir.Instr.Shl | Vir.Instr.Lshr
  | Vir.Instr.Ashr ->
    false

let as_int_slot (v : Vvalue.t) : int64 =
  match v with
  | Vvalue.I (_, a) when Ilanes.length a = 1 -> Ilanes.unsafe_get a 0
  | v -> Vvalue.as_int v

let uses_creg (o : coperand) (r : int) =
  match o with Creg r' -> r' = r | Cimm _ -> false

(* An in-place binop kernel for the chain members that keep their
   destination buffer (the binop of load→op, op→store and
   load→op→store chains). *)
let binop_kernel (ci : cinstr) : (Vvalue.t -> Vvalue.t -> Vvalue.t -> unit)
    option =
  let i = ci.src in
  let scalar = Vir.Vtype.lanes i.Vir.Instr.ty = 1 in
  match i.Vir.Instr.op with
  | Vir.Instr.Ibinop (k, _, _) ->
    let ik = Eval.ibinop_into_fn k (Vir.Vtype.elem i.Vir.Instr.ty) in
    Some
      (fun va vb vo ->
        match (va, vb, vo) with
        | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, o) -> ik a b o
        | _ -> invalid_arg "Machine: fused ibinop kind mismatch")
  | Vir.Instr.Fbinop (k, _, _) ->
    let s = Vir.Vtype.elem i.Vir.Instr.ty in
    let f = Eval.fbinop_fn k s in
    let vmap =
      match Eval.fbinop_vec_into_fn k s with
      | Some vf -> vf
      | None -> map2_float_into f
    in
    Some
      (fun va vb vo ->
        match (va, vb, vo) with
        | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.F (_, o) ->
          if scalar then o.(0) <- f a.(0) b.(0) else vmap a b o
        | _ -> invalid_arg "Machine: fused fbinop kind mismatch")
  | _ -> None

let thread_chain (body : cinstr array) (s : int) (len : int) : texec option =
  let p = body.(s) and c = body.(s + 1) in
  let pi = p.src and ci = c.src in
  let chg1 = if p.cvec then charge_vec else charge in
  let chg2 = if c.cvec then charge_vec else charge in
  (* Which consumer operand reads the producer's register; exactly one
     must (two occurrences would mean two uses — not a legal chain). *)
  let puse k = k < Array.length c.ops && uses_creg c.ops.(k) p.dst in
  if len = 3 then (
    (* load → binop → store, buffers kept for the trappy endpoints *)
    let st3 = body.(s + 2) in
    let chg3 = if st3.cvec then charge_vec else charge in
    match (pi.Vir.Instr.op, st3.src.Vir.Instr.op, binop_kernel c) with
    | Vir.Instr.Load _, Vir.Instr.Store _, Some bk
      when (puse 0 || puse 1)
           && not (puse 0 && puse 1)
           && uses_creg st3.ops.(0) c.dst
           && not (uses_creg st3.ops.(1) c.dst) ->
      let ld = Memory.loader_into pi.Vir.Instr.ty in
      let stv =
        Memory.storer
          (Vir.Instr.operand_ty (List.hd (Vir.Instr.operands st3.src)))
      in
      let gp = getter p.ops.(0) in
      let g0 = getter c.ops.(0) and g1 = getter c.ops.(1) in
      let gsp = getter st3.ops.(1) in
      Some
        (fun st ->
          let regs = st.regs in
          chg1 st;
          ld st.mem (as_int_slot (gp regs)) (Array.unsafe_get regs p.dst);
          chg2 st;
          bk (g0 regs) (g1 regs) (Array.unsafe_get regs c.dst);
          chg3 st;
          stv st.mem (Array.unsafe_get regs c.dst) (as_int_slot (gsp regs)))
    | _ -> None)
  else
    let lanes_match =
      Vir.Vtype.lanes pi.Vir.Instr.ty = Vir.Vtype.lanes ci.Vir.Instr.ty
    in
    match (pi.Vir.Instr.op, ci.Vir.Instr.op) with
    | Vir.Instr.Fbinop (k1, _, _), Vir.Instr.Fbinop (k2, _, _)
      when (puse 0 || puse 1) && not (puse 0 && puse 1) && lanes_match -> (
      (* Only the op/kind combinations with a specialized allocation-free
         fused kernel are worth fusing; the generic closure-composed
         form boxes floats per lane and would regress both time and the
         allocation gate. *)
      match
        Eval.fbinop_fused_vec_into_fn
          (Vir.Vtype.elem ci.Vir.Instr.ty)
          ~k1 ~k2 ~first:(puse 0)
      with
      | None -> None
      | Some fk ->
        let ga = getter p.ops.(0) and gb = getter p.ops.(1) in
        let go = getter c.ops.(if puse 0 then 1 else 0) in
        let bad () = invalid_arg "Machine: fused fbinop kind mismatch" in
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            match (ga regs, gb regs, go regs, Array.unsafe_get regs c.dst) with
            | ( Vvalue.F (_, a),
                Vvalue.F (_, b),
                Vvalue.F (_, cc),
                Vvalue.F (_, o) ) ->
              fk a b cc o
            | _ -> bad ()))
    | Vir.Instr.Ibinop (k1, _, _), Vir.Instr.Ibinop (k2, _, _)
      when (puse 0 || puse 1) && not (puse 0 && puse 1) && lanes_match ->
      (* Both members run through their specialized destination-passing
         kernels, with the producer's own (single-use) register buffer
         as the intermediate -- the write there is unobservable, and no
         lane value ever crosses a closure boundary. *)
      let ik1 = Eval.ibinop_into_fn k1 (Vir.Vtype.elem pi.Vir.Instr.ty) in
      let ik2 = Eval.ibinop_into_fn k2 (Vir.Vtype.elem ci.Vir.Instr.ty) in
      let ga = getter p.ops.(0) and gb = getter p.ops.(1) in
      let go = getter c.ops.(if puse 0 then 1 else 0) in
      let first = puse 0 in
      let bad () = invalid_arg "Machine: fused ibinop kind mismatch" in
      if Vir.Vtype.lanes ci.Vir.Instr.ty = 1 then
        (* Interleaved charges: a trapping divide in the producer must
           leave the same fuel as unfused stepping. *)
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            match (ga regs, gb regs, Array.unsafe_get regs p.dst) with
            | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, t) -> (
              ik1 a b t;
              chg2 st;
              match (go regs, Array.unsafe_get regs c.dst) with
              | Vvalue.I (_, oo), Vvalue.I (_, o) ->
                if first then ik2 t oo o else ik2 oo t o
              | _ -> bad ())
            | _ -> bad ())
      else if divlike k1 then None
      else
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            match
              ( ga regs,
                gb regs,
                go regs,
                Array.unsafe_get regs p.dst,
                Array.unsafe_get regs c.dst )
            with
            | ( Vvalue.I (_, a),
                Vvalue.I (_, b),
                Vvalue.I (_, oo),
                Vvalue.I (_, t),
                Vvalue.I (_, o) ) ->
              ik1 a b t;
              if first then ik2 t oo o else ik2 oo t o
            | _ -> bad ())
    | Vir.Instr.Icmp (pr, _, _), Vir.Instr.Select _
      when puse 0 && not (puse 1) && not (puse 2) ->
      (* The compare runs through its specialized kernel into the
         producer's (single-use) register buffer; the select then reads
         the mask lanes straight out of that buffer. *)
      let ick = Eval.icmp_into_fn pr (op_scalar pi 0) in
      let ga = getter p.ops.(0) and gb = getter p.ops.(1) in
      let gx = getter c.ops.(1) and gy = getter c.ops.(2) in
      let bad () = invalid_arg "Machine: fused icmp kind mismatch" in
      if Vir.Vtype.lanes pi.Vir.Instr.ty = 1 then
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            match (ga regs, gb regs, Array.unsafe_get regs p.dst) with
            | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, t) ->
              ick a b t;
              chg2 st;
              Vvalue.copy_into
                ~dst:(Array.unsafe_get regs c.dst)
                (if Ilanes.unsafe_get t 0 <> 0L then gx regs else gy regs)
            | _ -> bad ())
      else
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            match (ga regs, gb regs, Array.unsafe_get regs p.dst) with
            | Vvalue.I (_, a), Vvalue.I (_, b), Vvalue.I (_, t) -> (
              ick a b t;
              match (gx regs, gy regs, Array.unsafe_get regs c.dst) with
              | Vvalue.I (_, x), Vvalue.I (_, y), Vvalue.I (_, o) ->
                for i = 0 to Ilanes.length o - 1 do
                  Ilanes.unsafe_set o i
                    (if Ilanes.unsafe_get t i <> 0L then Ilanes.unsafe_get x i
                     else Ilanes.unsafe_get y i)
                done
              | Vvalue.F (_, x), Vvalue.F (_, y), Vvalue.F (_, o) ->
                for i = 0 to Array.length o - 1 do
                  o.(i) <-
                    (if Ilanes.unsafe_get t i <> 0L then x.(i) else y.(i))
                done
              | _ -> invalid_arg "Machine: fused select arm kind mismatch")
            | _ -> bad ())
    | Vir.Instr.Fcmp (pr, _, _), Vir.Instr.Select _
      when puse 0 && not (puse 1) && not (puse 2) ->
      let fck = Eval.fcmp_into_fn pr in
      let ga = getter p.ops.(0) and gb = getter p.ops.(1) in
      let gx = getter c.ops.(1) and gy = getter c.ops.(2) in
      let bad () = invalid_arg "Machine: fused fcmp kind mismatch" in
      if Vir.Vtype.lanes pi.Vir.Instr.ty = 1 then
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            match (ga regs, gb regs, Array.unsafe_get regs p.dst) with
            | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.I (_, t) ->
              fck a b t;
              chg2 st;
              Vvalue.copy_into
                ~dst:(Array.unsafe_get regs c.dst)
                (if Ilanes.unsafe_get t 0 <> 0L then gx regs else gy regs)
            | _ -> bad ())
      else
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            match (ga regs, gb regs, Array.unsafe_get regs p.dst) with
            | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.I (_, t) -> (
              fck a b t;
              match (gx regs, gy regs, Array.unsafe_get regs c.dst) with
              | Vvalue.I (_, x), Vvalue.I (_, y), Vvalue.I (_, o) ->
                for i = 0 to Ilanes.length o - 1 do
                  Ilanes.unsafe_set o i
                    (if Ilanes.unsafe_get t i <> 0L then Ilanes.unsafe_get x i
                     else Ilanes.unsafe_get y i)
                done
              | Vvalue.F (_, x), Vvalue.F (_, y), Vvalue.F (_, o) ->
                for i = 0 to Array.length o - 1 do
                  o.(i) <-
                    (if Ilanes.unsafe_get t i <> 0L then x.(i) else y.(i))
                done
              | _ -> invalid_arg "Machine: fused select arm kind mismatch")
            | _ -> bad ())
    | Vir.Instr.Cast (k, _), (Vir.Instr.Ibinop _ | Vir.Instr.Fbinop _)
      when (puse 0 || puse 1) && not (puse 0 && puse 1) && lanes_match -> (
      (* The conversion runs through its specialized destination-passing
         kernel into the producer's (single-use) register buffer; the
         consumer's binop kernel then reads that register through its
         ordinary operand getter. Works at any lane count now that both
         halves are allocation-free. *)
      match binop_kernel c with
      | None -> None
      | Some bk ->
        let ck =
          Eval.cast_into_fn k ~src:(op_scalar pi 0) ~dst_ty:pi.Vir.Instr.ty
        in
        let gsrc = getter p.ops.(0) in
        let g0 = getter c.ops.(0) and g1 = getter c.ops.(1) in
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            ck (gsrc regs) (Array.unsafe_get regs p.dst);
            bk (g0 regs) (g1 regs) (Array.unsafe_get regs c.dst)))
    | Vir.Instr.Gep (_, _, elem_bytes), Vir.Instr.Load _ when puse 0 -> (
      let eb = Int64.of_int elem_bytes in
      let ld = Memory.loader_into ci.Vir.Instr.ty in
      (* Operand matches inlined like the unfused gep arm, so the
         address arithmetic never leaves int64 locals; the gep result
         register is skipped entirely. *)
      match (p.ops.(0), p.ops.(1)) with
      | Creg rb, Creg ri ->
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            let base =
              match Array.unsafe_get regs rb with
              | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
              | v -> Vvalue.as_int v
            and idx =
              match Array.unsafe_get regs ri with
              | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
              | v -> Vvalue.as_int v
            in
            ld st.mem
              (Int64.add base (Int64.mul idx eb))
              (Array.unsafe_get regs c.dst))
      | Creg rb, Cimm iv ->
        let off = Int64.mul (Vvalue.as_int iv) eb in
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            let base =
              match Array.unsafe_get regs rb with
              | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
              | v -> Vvalue.as_int v
            in
            ld st.mem (Int64.add base off) (Array.unsafe_get regs c.dst))
      | _ -> None)
    | Vir.Instr.Gep (_, _, elem_bytes), Vir.Instr.Store _
      when puse 1 && not (puse 0) -> (
      let eb = Int64.of_int elem_bytes in
      let stv =
        Memory.storer
          (Vir.Instr.operand_ty (List.hd (Vir.Instr.operands ci)))
      in
      let gv = getter c.ops.(0) in
      match (p.ops.(0), p.ops.(1)) with
      | Creg rb, Creg ri ->
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            let base =
              match Array.unsafe_get regs rb with
              | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
              | v -> Vvalue.as_int v
            and idx =
              match Array.unsafe_get regs ri with
              | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
              | v -> Vvalue.as_int v
            in
            stv st.mem (gv regs) (Int64.add base (Int64.mul idx eb)))
      | Creg rb, Cimm iv ->
        let off = Int64.mul (Vvalue.as_int iv) eb in
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            chg2 st;
            let base =
              match Array.unsafe_get regs rb with
              | Vvalue.I (_, ia) -> Ilanes.unsafe_get ia 0
              | v -> Vvalue.as_int v
            in
            stv st.mem (gv regs) (Int64.add base off))
      | _ -> None)
    | Vir.Instr.Load _, (Vir.Instr.Ibinop _ | Vir.Instr.Fbinop _)
      when (puse 0 || puse 1) && not (puse 0 && puse 1) -> (
      match binop_kernel c with
      | None -> None
      | Some bk ->
        let ld = Memory.loader_into pi.Vir.Instr.ty in
        let gp = getter p.ops.(0) in
        let g0 = getter c.ops.(0) and g1 = getter c.ops.(1) in
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            ld st.mem (as_int_slot (gp regs)) (Array.unsafe_get regs p.dst);
            chg2 st;
            bk (g0 regs) (g1 regs) (Array.unsafe_get regs c.dst)))
    | (Vir.Instr.Ibinop _ | Vir.Instr.Fbinop _), Vir.Instr.Store _
      when puse 0 && not (puse 1) -> (
      match binop_kernel p with
      | None -> None
      | Some bk ->
        let stv =
          Memory.storer
            (Vir.Instr.operand_ty (List.hd (Vir.Instr.operands ci)))
        in
        let g0 = getter p.ops.(0) and g1 = getter p.ops.(1) in
        let gp = getter c.ops.(1) in
        Some
          (fun st ->
            let regs = st.regs in
            chg1 st;
            bk (g0 regs) (g1 regs) (Array.unsafe_get regs p.dst);
            chg2 st;
            stv st.mem (Array.unsafe_get regs p.dst) (as_int_slot (gp regs))))
    | _ -> None

(* The fused reduction tail: an elementwise float binop whose (single
   use) result feeds a [reduce_add] intrinsic, lowered as ONE
   accumulate loop with no intermediate vector ([Eval.
   fbinop_reduce_fadd_fn] replicates the unfused rounding exactly).
   Both members are pure and non-trapping, so the charges group up
   front like the other pure pair kernels. *)
let reduce_tail_kernel (p : cinstr) (c : cinstr) : texec option =
  let pi = p.src and ci = c.src in
  match (pi.Vir.Instr.op, ci.Vir.Instr.op) with
  | Vir.Instr.Fbinop (k1, _, _), Vir.Instr.Call (callee, [ _ ])
    when Array.length c.ops = 1
         && uses_creg c.ops.(0) p.dst
         && c.dst >= 0
         && (match Vir.Intrinsics.lookup callee with
            | Some { Vir.Intrinsics.kind = Vir.Intrinsics.Reduce "add"; _ }
              ->
              true
            | _ -> false)
         && Vir.Vtype.is_float_scalar (Vir.Vtype.elem pi.Vir.Instr.ty) -> (
    match
      Eval.fbinop_reduce_fadd_fn (Vir.Vtype.elem pi.Vir.Instr.ty) k1
    with
    | None -> None
    | Some rk ->
      let chg1 = if p.cvec then charge_vec else charge in
      let chg2 = if c.cvec then charge_vec else charge in
      let ga = getter p.ops.(0) and gb = getter p.ops.(1) in
      Some
        (fun st ->
          let regs = st.regs in
          chg1 st;
          chg2 st;
          match (ga regs, gb regs, Array.unsafe_get regs c.dst) with
          | Vvalue.F (_, a), Vvalue.F (_, b), Vvalue.F (_, o) ->
            o.(0) <- rk a b
          | _ -> invalid_arg "Machine: fused reduce tail kind mismatch"))
  | _ -> None

(* Generalized superblock lowering: an arbitrary-length chain is walked
   left to right and collapsed segment by segment — the three-member
   load→binop→store kernel first, then the fused reduction tail, then
   any two-member peephole kernel ([thread_chain]); members no merged
   kernel covers keep their ordinary per-instruction closure
   ([body_tx]), which still stages the intermediate through the
   member's own register slot. The segments communicate ONLY through
   the frame's register buffers ([regs.(dst)]): a fused kernel may be
   shared by every machine (and every campaign pool domain) running
   this module, so the scratch an intermediate stages through must live
   in per-frame state, never in closure-captured buffers.

   Returns [None] when no segment merged — composing unmodified
   closures would only add dispatch layers over what [compose_body]
   already does. *)
let thread_superblock (body_tx : texec array) (body : cinstr array) (s : int)
    (len : int) : texec option =
  let e = s + len in
  let steps = ref [] in
  let merged = ref false in
  let k = ref s in
  while !k < e do
    let push fx n =
      steps := fx :: !steps;
      merged := true;
      k := !k + n
    in
    let try3 = if !k + 3 <= e then thread_chain body !k 3 else None in
    match try3 with
    | Some fx -> push fx 3
    | None -> (
      let try2 =
        if !k + 2 <= e then
          match reduce_tail_kernel body.(!k) body.(!k + 1) with
          | Some fx -> Some fx
          | None -> thread_chain body !k 2
        else None
      in
      match try2 with
      | Some fx -> push fx 2
      | None ->
        steps := body_tx.(!k) :: !steps;
        incr k)
  done;
  if not !merged then None
  else
    let arr = Array.of_list (List.rev !steps) in
    Some (compose_body arr 0 (Array.length arr))

let thread_term (t : cterm) : tterm =
  match t with
  | Tbr n -> Ct_br n
  | Tcondbr (Creg r, l1, l2) -> Ct_condbr_reg (r, l1, l2)
  | Tcondbr (c, l1, l2) -> Ct_condbr (getter c, l1, l2)
  | Tret (Some v) -> Ct_ret (getter v)
  | Tret None -> Ct_ret_void
  | Tunreachable -> Ct_unreachable

(* Hot-path body with annotated chains lowered to fused kernels. The
   per-instruction closures ([body]) always exist — they back
   [t_steps] — so a chain the emitter declines simply stays unfused. *)
let fuse_body (cm : cmodule) (cf : cfunc) (blk : cblock) (body : texec array)
    : texec array =
  let chains =
    List.filter
      (fun (ch : Vir.Func.fuse_chain) -> ch.Vir.Func.fc_block = blk.clabel)
      cf.cf.Vir.Func.fuse_chains
  in
  if chains = [] then body
  else begin
    let n = Array.length blk.body in
    (* Validate bounds and overlap; annotations are advisory input. *)
    let chain_at = Array.make (max n 1) None in
    let covered = Array.make (max n 1) false in
    List.iter
      (fun (ch : Vir.Func.fuse_chain) ->
        let s = ch.Vir.Func.fc_start and l = ch.Vir.Func.fc_len in
        if s >= 0 && l >= 2 && s + l <= n then begin
          let free = ref true in
          for k = s to s + l - 1 do
            if covered.(k) then free := false
          done;
          if !free then begin
            for k = s to s + l - 1 do
              covered.(k) <- true
            done;
            chain_at.(s) <- Some l
          end
        end)
      chains;
    let out = ref [] in
    let k = ref 0 in
    while !k < n do
      match chain_at.(!k) with
      | Some l -> (
        (* Two/three-member chains go through the PR 7 whole-chain
           peephole kernels; everything else (longer chains, reduction
           tails, unclassified shapes) through the segmenting
           superblock emitter. *)
        let fx =
          match if l <= 3 then thread_chain blk.body !k l else None with
          | Some fx -> Some fx
          | None -> thread_superblock body blk.body !k l
        in
        match fx with
        | Some fx ->
          out := fx :: !out;
          cm.n_fused_chains <- cm.n_fused_chains + 1;
          Hashtbl.replace cm.fused_hist l
            (1 + Option.value ~default:0 (Hashtbl.find_opt cm.fused_hist l));
          k := !k + l
        | None ->
          out := body.(!k) :: !out;
          incr k)
      | None ->
        out := body.(!k) :: !out;
        incr k
    done;
    Array.of_list (List.rev !out)
  end

let thread_func (cm : cmodule) (cf : cfunc) : unit =
  let nblocks = Array.length cf.cblocks in
  let live_in = live_in_sets cf in
  cf.tblocks <-
    Array.mapi
      (fun bi (blk : cblock) ->
        let body = Array.map (thread_instr cm cf) blk.body in
        let hot = fuse_body cm cf blk body in
        let lives = step_live_sets cf live_in bi blk in
        {
          t_phis = thread_phis cf blk nblocks;
          t_body = compose_body hot 0 (Array.length hot);
          t_term = thread_term blk.term;
          t_steps =
            Array.mapi
              (fun k ex ->
                let live_before, live_after = lives.(k) in
                {
                  s_exec = ex;
                  s_kind =
                    step_kind cm blk.body.(k) ~live_before ~live_after;
                })
              body;
        })
      cf.cblocks

(* ------------------------------------------------------------------ *)

let compile_module (m : Vir.Vmodule.t) : cmodule =
  let cfuncs = Hashtbl.create 16 in
  let n_funcs = ref 0 in
  List.iter
    (fun f ->
      Hashtbl.replace cfuncs f.Vir.Func.fname
        (compile_func ~func_id:!n_funcs f);
      incr n_funcs)
    m.Vir.Vmodule.funcs;
  (* Collect extern call targets (neither module functions nor
     intrinsics) into dense slots. *)
  let extern_index = Hashtbl.create 8 in
  let n_extern_slots = ref 0 in
  List.iter
    (fun (f : Vir.Func.t) ->
      List.iter
        (fun (b : Vir.Block.t) ->
          List.iter
            (fun (ins : Vir.Instr.t) ->
              match ins.Vir.Instr.op with
              | Vir.Instr.Call (callee, _)
                when (not (Hashtbl.mem cfuncs callee))
                     && Vir.Intrinsics.lookup callee = None
                     && not (Hashtbl.mem extern_index callee) ->
                Hashtbl.replace extern_index callee !n_extern_slots;
                incr n_extern_slots
              | _ -> ())
            b.Vir.Block.instrs)
        f.Vir.Func.blocks)
    m.Vir.Vmodule.funcs;
  let cm =
    {
      cm = m;
      cfuncs;
      n_funcs = !n_funcs;
      extern_index;
      n_extern_slots = !n_extern_slots;
      n_fused_chains = 0;
      fused_hist = Hashtbl.create 8;
    }
  in
  Hashtbl.iter (fun _ cf -> thread_func cm cf) cfuncs;
  cm

(* How many annotated chains the threading stage actually fused, for
   pipeline statistics and the bench coverage counters. *)
let fused_chain_count (cm : cmodule) : int = cm.n_fused_chains

(* (chain length, count) over the actually-fused chains, ascending by
   length — the chain-length histogram of the fusion-stats report. *)
let fused_length_hist (cm : cmodule) : (int * int) list =
  Hashtbl.fold (fun l n acc -> (l, n) :: acc) cm.fused_hist []
  |> List.sort compare

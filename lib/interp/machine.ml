(** The VIR virtual machine.

    Executes a compiled module with bounds-checked memory, a dynamic
    instruction budget (so a fault-induced endless loop is observed as a
    hang-crash rather than hanging the host), and a pluggable extern
    mechanism through which the VULFI runtime (fault injection, error
    detectors) and benchmark I/O are wired in.

    Since the closure-threading rewrite the execution engine itself
    lives in {!Compile} (the threaded closures are built at
    [compile_module] time and need the state type); this module is the
    public driver: state construction, extern registration, accounting
    accessors, and the [run] entry point. *)

type state = Compile.state

let default_budget = 200_000_000

let create ?(budget = default_budget) ?(max_depth = 512)
    (code : Compile.cmodule) : state =
  {
    Compile.code;
    mem = Memory.create ();
    budget0 = budget;
    fuel = budget;
    dyn_vector = 0;
    depth = 0;
    regs = [||];
    frames = Array.make (max_depth + 1) [||];
    extern_slots = Array.make (max code.Compile.n_extern_slots 1) None;
    max_depth;
  }

(* Re-arm an existing machine for another run: counters and budget come
   back to their just-created values while the expensive structures
   (memory image, frame pool, extern slots) are kept. Memory contents
   are NOT touched — pair with [Memory.restore] to roll those back.

   [spent] pre-charges the epoch: [dyn_count] right after the reset
   reads [spent] instead of 0. The executed count is derived
   ([budget0 - fuel]), so a mid-epoch [reset ~budget] used to silently
   rebase it to 0 — callers that re-arm the budget while crediting an
   already-executed prefix (the fast-forward resume path) pass the
   prefix length here and [dyn_count] stays an honest total. *)
let reset ?budget ?(spent = 0) (st : state) =
  let b = match budget with Some b -> b | None -> st.Compile.budget0 in
  st.Compile.budget0 <- b;
  st.Compile.fuel <- b - spent;
  st.Compile.dyn_vector <- 0;
  st.Compile.depth <- 0;
  st.Compile.regs <- [||]

(* Register (or replace) a handler for calls to an undefined function.
   Call sites were pre-resolved to extern slots at compile time, so a
   name no call site references has no slot — registering it is a no-op
   (it could never have been invoked anyway). *)
let register_extern (st : state) name handler =
  match Hashtbl.find_opt st.Compile.code.Compile.extern_index name with
  | Some slot -> st.Compile.extern_slots.(slot) <- Some handler
  | None -> ()

let memory (st : state) = st.Compile.mem

let dyn_count (st : state) = st.Compile.budget0 - st.Compile.fuel

(* Executed vector instructions (per the paper's definition: at least
   one vector operand or result); the dynamic counterpart of Fig 10. *)
let dyn_vector_count (st : state) = st.Compile.dyn_vector

(* Lane evaluators re-exported for the constant folder and the reference
   SPMD evaluator; the semantics live in {!Eval}. *)
let eval_ibinop_lane = Eval.eval_ibinop_lane

let eval_fbinop_lane = Eval.eval_fbinop_lane

let eval_icmp_lane = Eval.eval_icmp_lane

let eval_fcmp_lane = Eval.eval_fcmp_lane

let eval_cast = Eval.eval_cast

(* Run function [name] with [args]; returns its value (None for void).
   Raises {!Trap.Trap} on a crash, [Invalid_argument] on an arity
   mismatch (previously extra arguments were silently dropped and
   missing ones defaulted to i32 0).

   Buffer discipline at the host boundary: argument lanes are copied
   into the entry frame's pinned buffers (callers may reuse their arg
   values across runs — the campaign driver does), and the result is a
   deep copy, never an alias of a frame buffer the next run would
   overwrite. *)
let run (st : state) name (args : Vvalue.t list) : Vvalue.t option =
  match Hashtbl.find_opt st.Compile.code.Compile.cfuncs name with
  | Some cf ->
    let nargs = List.length args in
    if nargs <> cf.Compile.nparams then
      invalid_arg
        (Printf.sprintf
           "Machine: call to @%s with %d argument(s), expects %d" name nargs
           cf.Compile.nparams);
    (* A previous run may have unwound through a trap mid-call-stack;
       the depth counter restarts with the fresh activation. *)
    st.Compile.depth <- 0;
    let regs = Compile.frame_for st cf in
    List.iteri
      (fun i v -> Vvalue.copy_into ~dst:regs.(i) v)
      args;
    Option.map Vvalue.copy (Compile.exec_cfunc st cf regs)
  | None -> Trap.raise_ (Trap.Unknown_function name)

(* ------------------------------------------------------------------ *)
(* Full-machine checkpoints (fast-forward executor support).           *)

type checkpoint = Compile.checkpoint

let checkpoint_spent = Compile.checkpoint_spent

(* The extern slot a callee name was compiled to, if any call site
   references it. Lets checkpoint probes compare slots (ints) instead
   of names on the tracked path. *)
let extern_slot (st : state) name =
  Hashtbl.find_opt st.Compile.code.Compile.extern_index name

(* [run] with position tracking: same entry discipline, but every
   extern call is offered to [probe] first, and each [true] answer
   captures a full-machine checkpoint at that point (before the extern
   executes) and hands it to [on_capture]. Noticeably slower than
   [run] — meant for the one instrumented replay that lays a cell's
   checkpoints, never for the per-experiment path. *)
let run_tracked (st : state) name (args : Vvalue.t list)
    ~(probe : state -> slot:int -> Vvalue.t list -> bool)
    ~(on_capture : checkpoint -> unit) : Vvalue.t option =
  match Hashtbl.find_opt st.Compile.code.Compile.cfuncs name with
  | Some cf ->
    let nargs = List.length args in
    if nargs <> cf.Compile.nparams then
      invalid_arg
        (Printf.sprintf
           "Machine: call to @%s with %d argument(s), expects %d" name nargs
           cf.Compile.nparams);
    st.Compile.depth <- 0;
    let regs = Compile.frame_for st cf in
    List.iteri
      (fun i v -> Vvalue.copy_into ~dst:regs.(i) v)
      args;
    Option.map Vvalue.copy
      (Compile.exec_tracked st cf regs ~probe ~on_capture)
  | None -> Trap.raise_ (Trap.Unknown_function name)

(* Resume the machine from a checkpoint it captured earlier (the
   checkpoint's register frames alias this machine's frame pool, so
   cross-machine resume is meaningless). Memory, counters and frames
   roll back; [budget] re-arms the epoch like [reset ~budget] would, so
   [dyn_count] afterwards reads prefix + suffix. The result is a deep
   copy, exactly as [run] returns one. *)
let resume ~budget (st : state) (ck : checkpoint) : Vvalue.t option =
  Option.map Vvalue.copy (Compile.exec_resume st ~budget ck)

(* ------------------------------------------------------------------ *)
(* Convergence checks (converge-pruned executor support).              *)

type stack_view = Compile.tracked_frame list

type converge_check = state -> stack_view -> slot:int -> Vvalue.t list -> bool

(* Exact machine-state equality against a golden checkpoint captured at
   the same dynamic site: counters, call-stack positions, live
   registers, and memory restricted to the union of [since] (the golden
   run's accumulated dirty spans up to the checkpoint) and this
   machine's own live dirty spans. [true] implies the continuation of
   this machine is bit-identical to the golden run's continuation from
   the checkpoint (see DESIGN.md, convergence soundness). *)
let state_equal (st : state) (stack : stack_view) (ck : checkpoint)
    ~(since : Memory.spans) : bool =
  Compile.state_equal st stack ck ~since

(* [run] with every extern call offered to [check] (together with the
   current shadow call stack) before it executes. [check] terminates
   the run by raising; used by the converge-pruned executor when the
   fault site precedes every checkpoint. *)
let run_converge (st : state) name (args : Vvalue.t list)
    ~(check : converge_check) : Vvalue.t option =
  match Hashtbl.find_opt st.Compile.code.Compile.cfuncs name with
  | Some cf ->
    let nargs = List.length args in
    if nargs <> cf.Compile.nparams then
      invalid_arg
        (Printf.sprintf
           "Machine: call to @%s with %d argument(s), expects %d" name nargs
           cf.Compile.nparams);
    st.Compile.depth <- 0;
    let regs = Compile.frame_for st cf in
    List.iteri
      (fun i v -> Vvalue.copy_into ~dst:regs.(i) v)
      args;
    Option.map Vvalue.copy (Compile.exec_converge st cf regs ~check)
  | None -> Trap.raise_ (Trap.Unknown_function name)

(* [resume] with the whole resumed suffix run under position tracking
   so [check] fires at every extern along the way. Slower than [resume]
   per instruction; the converge-pruned executor buys that cost back by
   terminating at the first post-injection checkpoint site whose state
   matches the golden run's. *)
let resume_converge ~budget (st : state) (ck : checkpoint)
    ~(check : converge_check) : Vvalue.t option =
  Option.map Vvalue.copy (Compile.exec_converge_resume st ~budget ck ~check)

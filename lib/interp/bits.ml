(** Bit-level manipulation shared by the VM and the fault injector.

    All scalar values are ultimately bit patterns; a single-event upset
    is a XOR with a one-hot mask. Floats are flipped through their IEEE
    bit representation, matching how a CPU register fault manifests. *)

(* Truncate an int64 to the value range of a scalar type, preserving the
   two's-complement interpretation used by the VM (i1 -> 0/1, i8 signed
   byte, i32 signed 32-bit, i64/ptr full width). *)
let[@inline] truncate (s : Vir.Vtype.scalar) (x : int64) =
  match s with
  | I1 -> Int64.logand x 1L
  | I8 ->
    (* sign-extend the low byte *)
    Int64.shift_right (Int64.shift_left x 56) 56
  | I32 -> Int64.of_int32 (Int64.to_int32 x)
  | I64 | Ptr -> x
  | F32 | F64 -> invalid_arg "Bits.truncate: float scalar"

(* Two's-complement unsigned reinterpretation helpers for udiv/urem and
   unsigned comparisons at narrow widths. *)
let[@inline] to_unsigned (s : Vir.Vtype.scalar) (x : int64) =
  match s with
  | I1 -> Int64.logand x 1L
  | I8 -> Int64.logand x 0xFFL
  | I32 -> Int64.logand x 0xFFFFFFFFL
  | I64 | Ptr -> x
  | F32 | F64 -> invalid_arg "Bits.to_unsigned: float scalar"

let[@inline] bits_of_float (s : Vir.Vtype.scalar) (x : float) =
  match s with
  | F32 -> Int64.of_int32 (Int32.bits_of_float x)
  | F64 -> Int64.bits_of_float x
  | _ -> invalid_arg "Bits.bits_of_float: int scalar"

let[@inline] float_of_bits (s : Vir.Vtype.scalar) (b : int64) =
  match s with
  | F32 -> Int32.float_of_bits (Int64.to_int32 b)
  | F64 -> Int64.float_of_bits b
  | _ -> invalid_arg "Bits.float_of_bits: int scalar"

(* Round a double to float32 precision and back: one tiny C call in
   place of the two ([Int32.bits_of_float] + [Int32.float_of_bits])
   the portable spelling costs, with bit-identical results — the
   runtime's conversions are themselves plain [(float)] casts. The VM
   pays this on every f32 lane of every arithmetic op, so the call
   count is visible in profiles. *)
external round_f32 : float -> float = "vulfi_round_f32" "vulfi_round_f32_unboxed"
[@@unboxed] [@@noalloc]

(* Round a float to the storage precision of [s]. *)
let[@inline] round_float (s : Vir.Vtype.scalar) (x : float) =
  match s with F32 -> round_f32 x | _ -> x

(* Flip bit [bit] (0 = LSB) of an integer scalar value. The result is
   re-truncated so that e.g. flipping bit 31 of an i32 stays in range. *)
let flip_int (s : Vir.Vtype.scalar) ~bit (x : int64) =
  if bit < 0 || bit >= Vir.Vtype.scalar_bits s then
    invalid_arg
      (Printf.sprintf "Bits.flip_int: bit %d out of range for %s" bit
         (Vir.Vtype.scalar_name s));
  truncate s (Int64.logxor x (Int64.shift_left 1L bit))

(* Flip bit [bit] of a float value through its IEEE representation. *)
let flip_float (s : Vir.Vtype.scalar) ~bit (x : float) =
  if bit < 0 || bit >= Vir.Vtype.scalar_bits s then
    invalid_arg
      (Printf.sprintf "Bits.flip_float: bit %d out of range for %s" bit
         (Vir.Vtype.scalar_name s));
  float_of_bits s (Int64.logxor (bits_of_float s x) (Int64.shift_left 1L bit))

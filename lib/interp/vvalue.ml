(** Runtime values of the VM.

    A value is a typed array of lanes: scalars are 1-lane values, vectors
    are [Vl]-lane values. Integers (including booleans and pointers) are
    stored as sign-normalised [int64]s packed 8-bytes-per-lane in a flat
    {!Ilanes.t} buffer (no per-lane boxing, no GC write barrier on lane
    stores); floats as OCaml floats, with F32 lanes kept rounded to
    single precision. *)

type t =
  | I of Vir.Vtype.scalar * Ilanes.t  (** I1/I8/I32/I64/Ptr lanes *)
  | F of Vir.Vtype.scalar * float array  (** F32/F64 lanes *)

let ty = function
  | I (s, a) -> Vir.Vtype.with_lanes (Ilanes.length a) (Vir.Vtype.Scalar s)
  | F (s, a) -> Vir.Vtype.with_lanes (Array.length a) (Vir.Vtype.Scalar s)

let lanes = function I (_, a) -> Ilanes.length a | F (_, a) -> Array.length a

let scalar_kind = function I (s, _) -> s | F (s, _) -> s

let int_scalar s x = I (s, Ilanes.make 1 (Bits.truncate s x))

let of_bool b = I (I1, Ilanes.make 1 (if b then 1L else 0L))

let of_i32 x = I (I32, Ilanes.make 1 (Bits.truncate I32 (Int64.of_int x)))

let of_i64 x = I (I64, Ilanes.make 1 x)

let of_ptr x = I (Ptr, Ilanes.make 1 x)

let of_f32 x = F (F32, [| Bits.round_float F32 x |])

let of_f64 x = F (F64, [| x |])

(* Lane accessors; [lane] defaults to 0 for scalars. *)
let int_lane v i =
  match v with
  | I (_, a) -> Ilanes.get a i
  | F _ -> invalid_arg "Vvalue.int_lane: float value"

let float_lane v i =
  match v with
  | F (_, a) -> a.(i)
  | I _ -> invalid_arg "Vvalue.float_lane: int value"

let as_int v =
  match v with
  | I (_, a) when Ilanes.length a = 1 -> Ilanes.unsafe_get a 0
  | I _ -> invalid_arg "Vvalue.as_int: vector"
  | F _ -> invalid_arg "Vvalue.as_int: float"

let as_float v =
  match v with
  | F (_, [| x |]) -> x
  | F _ -> invalid_arg "Vvalue.as_float: vector"
  | I _ -> invalid_arg "Vvalue.as_float: int"

let as_bool v = as_int v <> 0L

let is_true_lane v i =
  match v with
  | I (_, a) -> Ilanes.get a i <> 0L
  | F (_, a) -> a.(i) <> 0.0

(* Build from a VIR constant. [undef] becomes zeros, which is
   deterministic and keeps fault-free runs reproducible. *)
let rec of_const (c : Vir.Const.t) =
  match c with
  | Vir.Const.Cint (s, x) -> I (s, Ilanes.make 1 (Bits.truncate s x))
  | Vir.Const.Cfloat (s, x) -> F (s, [| Bits.round_float s x |])
  | Vir.Const.Cundef t -> zero_of_ty t
  | Vir.Const.Cvec elems ->
    let first = of_const elems.(0) in
    let n = Array.length elems in
    (match first with
    | I (s, _) ->
      I (s, Ilanes.init n (fun i ->
          match of_const elems.(i) with
          | I (_, a) when Ilanes.length a = 1 -> Ilanes.unsafe_get a 0
          | _ -> invalid_arg "Vvalue.of_const: mixed vector"))
    | F (s, _) ->
      F (s, Array.init n (fun i ->
          match of_const elems.(i) with
          | F (_, [| x |]) -> x
          | _ -> invalid_arg "Vvalue.of_const: mixed vector")))

and zero_of_ty (t : Vir.Vtype.t) =
  match t with
  | Vir.Vtype.Void -> invalid_arg "Vvalue.zero_of_ty: void"
  | Vir.Vtype.Scalar s | Vir.Vtype.Vector (_, s) ->
    let n = Vir.Vtype.lanes t in
    if Vir.Vtype.is_float_scalar s then F (s, Array.make n 0.0)
    else I (s, Ilanes.make n 0L)

let splat t scalar_value =
  let n = Vir.Vtype.lanes t in
  match scalar_value with
  | I (s, a) when Ilanes.length a = 1 ->
    I (s, Ilanes.make n (Ilanes.unsafe_get a 0))
  | F (s, [| x |]) -> F (s, Array.make n x)
  | _ -> invalid_arg "Vvalue.splat: non-scalar seed"

let extract v i =
  match v with
  | I (s, a) -> I (s, Ilanes.make 1 (Ilanes.get a i))
  | F (s, a) -> F (s, [| a.(i) |])

let insert v i e =
  match (v, e) with
  | I (s, a), I (_, e) when Ilanes.length e = 1 ->
    let a' = Ilanes.copy a in
    Ilanes.set a' i (Bits.truncate s (Ilanes.unsafe_get e 0));
    I (s, a')
  | F (s, a), F (_, [| x |]) ->
    let a' = Array.copy a in
    a'.(i) <- Bits.round_float s x;
    F (s, a')
  | _ -> invalid_arg "Vvalue.insert: kind mismatch"

(* Raw bit pattern of a lane (floats via their IEEE encoding). *)
let lane_bits v lane =
  match v with
  | I (s, a) -> Bits.to_unsigned s (Ilanes.get a lane)
  | F (s, a) -> Bits.bits_of_float s a.(lane)

(* Replace one lane with the value encoded by [bits]. *)
let with_lane_bits v ~lane ~bits =
  match v with
  | I (s, a) ->
    let a' = Ilanes.copy a in
    Ilanes.set a' lane (Bits.truncate s bits);
    I (s, a')
  | F (s, a) ->
    let a' = Array.copy a in
    a'.(lane) <- Bits.float_of_bits s bits;
    F (s, a')

(* Flip one bit of one lane; the core fault-injection primitive. *)
let flip_bit v ~lane ~bit =
  match v with
  | I (s, a) ->
    let a' = Ilanes.copy a in
    Ilanes.set a' lane (Bits.flip_int s ~bit (Ilanes.get a lane));
    I (s, a')
  | F (s, a) ->
    let a' = Array.copy a in
    a'.(lane) <- Bits.flip_float s ~bit a.(lane);
    F (s, a')

(* ------------------------------------------------------------------ *)
(* Buffer discipline (destination-passing interpreter back end).

   The threaded interpreter pins one mutable value per register slot
   and lets kernels write lanes in place. Everything that leaves the
   register file must go through [copy] (fresh buffers) or [copy_into]
   (lane blit into a buffer the caller owns); see DESIGN.md. *)

(* Deep copy: fresh lane buffer, same kind and contents. *)
let copy = function
  | I (s, a) -> I (s, Ilanes.copy a)
  | F (s, a) -> F (s, Array.copy a)

(* Blit [src]'s lanes into [dst]'s buffer. The destination keeps its
   own constructor; only the payload moves. Shape mismatches (lane
   count or int/float kind) raise rather than silently reinterpreting —
   they can only come from a kind-confused extern result. *)
let copy_into ~(dst : t) (src : t) =
  match (dst, src) with
  | I (_, d), I (_, s) when Ilanes.length d = Ilanes.length s ->
    Ilanes.blit s 0 d 0 (Ilanes.length d)
  | F (_, d), F (_, s) when Array.length d = Array.length s ->
    Array.blit s 0 d 0 (Array.length d)
  | _ -> invalid_arg "Vvalue.copy_into: shape mismatch"

(* In-place fault-injection primitives: mutate one lane of a buffer the
   caller owns (the VULFI runtime applies them to a private [copy], so
   multi-bit fault kinds pay one allocation total instead of one per
   flipped bit). *)
let flip_bit_inplace v ~lane ~bit =
  match v with
  | I (s, a) -> Ilanes.set a lane (Bits.flip_int s ~bit (Ilanes.get a lane))
  | F (s, a) -> a.(lane) <- Bits.flip_float s ~bit a.(lane)

let set_lane_bits_inplace v ~lane ~bits =
  match v with
  | I (s, a) -> Ilanes.set a lane (Bits.truncate s bits)
  | F (s, a) -> a.(lane) <- Bits.float_of_bits s bits

let equal a b =
  match (a, b) with
  | I (sa, xa), I (sb, xb) ->
    sa = sb
    && Ilanes.length xa = Ilanes.length xb
    && (let ok = ref true in
        Ilanes.iteri
          (fun i x ->
            if not (Int64.equal x (Ilanes.unsafe_get xb i)) then ok := false)
          xa;
        !ok)
  | F (sa, xa), F (sb, xb) ->
    sa = sb
    && Array.length xa = Array.length xb
    && (let ok = ref true in
        Array.iteri
          (fun i x ->
            if Int64.bits_of_float x <> Int64.bits_of_float xb.(i) then
              ok := false)
          xa;
        !ok)
  | I _, F _ | F _, I _ -> false

let to_string v =
  let body =
    match v with
    | I (_, a) ->
      String.concat ", "
        (Array.to_list (Array.map Int64.to_string (Ilanes.to_array a)))
    | F (_, a) ->
      String.concat ", "
        (Array.to_list (Array.map (Printf.sprintf "%.6g") a))
  in
  if lanes v = 1 then body else "<" ^ body ^ ">"

(** Lane-level arithmetic of the VIR VM.

    Every operation comes as a *factory*: [ibinop_fn k s] matches the
    opcode and scalar kind once and returns a monomorphic per-lane
    closure, so the closure-threaded back end ({!Compile}) can hoist all
    dispatch out of the dynamic path. The legacy curried entry points
    ([eval_ibinop_lane] & co., re-exported through {!Machine} for the
    constant folder and the reference SPMD evaluator) are thin wrappers
    over the factories, so the semantics live in exactly one place. *)

(* ------------------------------------------------------------------ *)
(* Integer binary operations                                           *)

(* The truncation to the scalar's width is pre-selected per factory
   call: full-width (i64/ptr) operations skip it entirely and i32 gets
   the inline unboxed int32 round-trip, so the per-lane closure does no
   width dispatch. Semantics identical to [Bits.truncate]. *)
let ibinop_fn (k : Vir.Instr.ibinop) (s : Vir.Vtype.scalar) :
    int64 -> int64 -> int64 =
  let bits = Vir.Vtype.scalar_bits s in
  let shift_mask = bits - 1 in
  (* x86 idiv overflow (min_int / -1 at full width) raises #DE: a crash.
     At narrower widths the truncation absorbs the overflow. *)
  let div_overflows = s = Vir.Vtype.I64 in
  let full_width = match s with
    | Vir.Vtype.I64 | Vir.Vtype.Ptr -> true
    | _ -> false
  in
  if full_width then
    match k with
    | Vir.Instr.Add -> Int64.add
    | Vir.Instr.Sub -> Int64.sub
    | Vir.Instr.Mul -> Int64.mul
    | Vir.Instr.Sdiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else if div_overflows && a = Int64.min_int && b = -1L then
          Trap.raise_ Trap.Division_by_zero
        else Int64.div a b
    | Vir.Instr.Srem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else if div_overflows && a = Int64.min_int && b = -1L then
          Trap.raise_ Trap.Division_by_zero
        else Int64.rem a b
    | Vir.Instr.Udiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else Int64.unsigned_div a b
    | Vir.Instr.Urem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else Int64.unsigned_rem a b
    | Vir.Instr.And -> Int64.logand
    | Vir.Instr.Or -> Int64.logor
    | Vir.Instr.Xor -> Int64.logxor
    | Vir.Instr.Shl ->
      fun a b -> Int64.shift_left a (Int64.to_int b land 63)
    | Vir.Instr.Lshr ->
      fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63)
    | Vir.Instr.Ashr ->
      fun a b -> Int64.shift_right a (Int64.to_int b land 63)
  else if s = Vir.Vtype.I32 then
    let t x = Int64.of_int32 (Int64.to_int32 x) in
    let u x = Int64.logand x 0xFFFFFFFFL in
    match k with
    | Vir.Instr.Add -> fun a b -> t (Int64.add a b)
    | Vir.Instr.Sub -> fun a b -> t (Int64.sub a b)
    | Vir.Instr.Mul -> fun a b -> t (Int64.mul a b)
    | Vir.Instr.Sdiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.div a b)
    | Vir.Instr.Srem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.rem a b)
    | Vir.Instr.Udiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.unsigned_div (u a) (u b))
    | Vir.Instr.Urem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.unsigned_rem (u a) (u b))
    | Vir.Instr.And -> fun a b -> Int64.logand a b
    | Vir.Instr.Or -> fun a b -> Int64.logor a b
    | Vir.Instr.Xor -> fun a b -> Int64.logxor a b
    | Vir.Instr.Shl ->
      fun a b -> t (Int64.shift_left a (Int64.to_int b land 31))
    | Vir.Instr.Lshr ->
      fun a b -> Int64.shift_right_logical (u a) (Int64.to_int b land 31)
    | Vir.Instr.Ashr -> fun a b -> Int64.shift_right a (Int64.to_int b land 31)
  else
    let t x = Bits.truncate s x in
    match k with
    | Vir.Instr.Add -> fun a b -> t (Int64.add a b)
    | Vir.Instr.Sub -> fun a b -> t (Int64.sub a b)
    | Vir.Instr.Mul -> fun a b -> t (Int64.mul a b)
    | Vir.Instr.Sdiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.div a b)
    | Vir.Instr.Srem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.rem a b)
    | Vir.Instr.Udiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else
          t (Int64.unsigned_div (Bits.to_unsigned s a) (Bits.to_unsigned s b))
    | Vir.Instr.Urem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else
          t (Int64.unsigned_rem (Bits.to_unsigned s a) (Bits.to_unsigned s b))
    | Vir.Instr.And -> fun a b -> t (Int64.logand a b)
    | Vir.Instr.Or -> fun a b -> t (Int64.logor a b)
    | Vir.Instr.Xor -> fun a b -> t (Int64.logxor a b)
    | Vir.Instr.Shl ->
      (* x86 semantics: shift amount masked to the operand width. *)
      fun a b -> t (Int64.shift_left a (Int64.to_int b land shift_mask))
    | Vir.Instr.Lshr ->
      fun a b ->
        t
          (Int64.shift_right_logical (Bits.to_unsigned s a)
             (Int64.to_int b land shift_mask))
    | Vir.Instr.Ashr ->
      fun a b -> t (Int64.shift_right a (Int64.to_int b land shift_mask))

let eval_ibinop_lane k s a b = (ibinop_fn k s) a b

(* ------------------------------------------------------------------ *)
(* Float binary operations                                             *)

(* F32 rounding inlined (unboxed, noalloc externals); F64 needs none.
   Semantics identical to [Bits.round_float], minus a call + match per
   lane on the hot path. *)
let fbinop_fn (k : Vir.Instr.fbinop) (s : Vir.Vtype.scalar) :
    float -> float -> float =
  if s = Vir.Vtype.F32 then
    match k with
    | Vir.Instr.Fadd ->
      fun a b -> Int32.float_of_bits (Int32.bits_of_float (a +. b))
    | Vir.Instr.Fsub ->
      fun a b -> Int32.float_of_bits (Int32.bits_of_float (a -. b))
    | Vir.Instr.Fmul ->
      fun a b -> Int32.float_of_bits (Int32.bits_of_float (a *. b))
    | Vir.Instr.Fdiv ->
      fun a b -> Int32.float_of_bits (Int32.bits_of_float (a /. b))
    | Vir.Instr.Frem ->
      fun a b -> Int32.float_of_bits (Int32.bits_of_float (Float.rem a b))
  else
    match k with
    | Vir.Instr.Fadd -> fun a b -> a +. b
    | Vir.Instr.Fsub -> fun a b -> a -. b
    | Vir.Instr.Fmul -> fun a b -> a *. b
    | Vir.Instr.Fdiv -> fun a b -> a /. b (* IEEE: yields inf/nan *)
    | Vir.Instr.Frem -> fun a b -> Float.rem a b

let eval_fbinop_lane k s a b = (fbinop_fn k s) a b

(* Lane- and op-specialized vector float arithmetic in destination-
   passing style: the kernel writes each lane straight into the
   destination register's pinned buffer, so the loop body is unboxed
   primitives with no per-lane closure application and no result
   allocation at all. The f32 arms write the binary32 rounding
   round-trip inline because a call would re-box the float. [frem]
   falls back to the generic per-lane-closure path ([None]). *)
let fbinop_vec_into_fn (k : Vir.Instr.fbinop) (s : Vir.Vtype.scalar) :
    (float array -> float array -> float array -> unit) option =
  match (s, k) with
  | Vir.Vtype.F64, Vir.Instr.Fadd ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i (a.(i) +. b.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i (a.(i) -. b.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i (a.(i) *. b.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i (a.(i) /. b.(i))
        done)
  | Vir.Vtype.F32, Vir.Instr.Fadd ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (Int32.float_of_bits (Int32.bits_of_float (a.(i) +. b.(i))))
        done)
  | Vir.Vtype.F32, Vir.Instr.Fsub ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (Int32.float_of_bits (Int32.bits_of_float (a.(i) -. b.(i))))
        done)
  | Vir.Vtype.F32, Vir.Instr.Fmul ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (Int32.float_of_bits (Int32.bits_of_float (a.(i) *. b.(i))))
        done)
  | Vir.Vtype.F32, Vir.Instr.Fdiv ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (Int32.float_of_bits (Int32.bits_of_float (a.(i) /. b.(i))))
        done)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Comparisons                                                         *)

let icmp_fn (p : Vir.Instr.icmp_pred) (s : Vir.Vtype.scalar) :
    int64 -> int64 -> int64 =
  let u x = Bits.to_unsigned s x in
  let b r = if r then 1L else 0L in
  match p with
  | Vir.Instr.Ieq -> fun a b' -> b (Int64.equal a b')
  | Vir.Instr.Ine -> fun a b' -> b (not (Int64.equal a b'))
  | Vir.Instr.Islt -> fun a b' -> b (Int64.compare a b' < 0)
  | Vir.Instr.Isle -> fun a b' -> b (Int64.compare a b' <= 0)
  | Vir.Instr.Isgt -> fun a b' -> b (Int64.compare a b' > 0)
  | Vir.Instr.Isge -> fun a b' -> b (Int64.compare a b' >= 0)
  | Vir.Instr.Iult -> fun a b' -> b (Int64.unsigned_compare (u a) (u b') < 0)
  | Vir.Instr.Iule -> fun a b' -> b (Int64.unsigned_compare (u a) (u b') <= 0)
  | Vir.Instr.Iugt -> fun a b' -> b (Int64.unsigned_compare (u a) (u b') > 0)
  | Vir.Instr.Iuge -> fun a b' -> b (Int64.unsigned_compare (u a) (u b') >= 0)

let eval_icmp_lane p s a b = (icmp_fn p s) a b

let fcmp_fn (p : Vir.Instr.fcmp_pred) : float -> float -> int64 =
  let ord a b = not (Float.is_nan a || Float.is_nan b) in
  let b r = if r then 1L else 0L in
  match p with
  | Vir.Instr.Foeq -> fun x y -> b (ord x y && x = y)
  | Vir.Instr.Fone -> fun x y -> b (ord x y && x <> y)
  | Vir.Instr.Folt -> fun x y -> b (ord x y && x < y)
  | Vir.Instr.Fole -> fun x y -> b (ord x y && x <= y)
  | Vir.Instr.Fogt -> fun x y -> b (ord x y && x > y)
  | Vir.Instr.Foge -> fun x y -> b (ord x y && x >= y)
  | Vir.Instr.Ford -> fun x y -> b (ord x y)
  | Vir.Instr.Funo -> fun x y -> b (not (ord x y))

let eval_fcmp_lane p a b = (fcmp_fn p) a b

(* ------------------------------------------------------------------ *)
(* Casts                                                               *)

(* Specialized destination-passing cast: the cast opcode, source scalar
   kind and destination type are matched once; the returned kernel
   writes converted lanes into the destination value's own buffer. The
   kernel still checks both value constructors so a kind-confused
   extern result fails loudly rather than silently reinterpreting. *)
let cast_into_fn (k : Vir.Instr.cast_op) ~(src : Vir.Vtype.scalar)
    ~(dst_ty : Vir.Vtype.t) : Vvalue.t -> Vvalue.t -> unit =
  let ds = Vir.Vtype.elem dst_ty in
  let fail () =
    invalid_arg
      (Printf.sprintf "Machine: unsupported cast %s" (Vir.Instr.cast_name k))
  in
  let int_to_int (f : int64 -> int64) (v : Vvalue.t) (out : Vvalue.t) =
    match (v, out) with
    | Vvalue.I (_, a), Vvalue.I (_, o) ->
      for i = 0 to Array.length o - 1 do
        o.(i) <- f a.(i)
      done
    | _ -> fail ()
  in
  let float_to_int (f : float -> int64) (v : Vvalue.t) (out : Vvalue.t) =
    match (v, out) with
    | Vvalue.F (_, a), Vvalue.I (_, o) ->
      for i = 0 to Array.length o - 1 do
        o.(i) <- f a.(i)
      done
    | _ -> fail ()
  in
  let int_to_float (f : int64 -> float) (v : Vvalue.t) (out : Vvalue.t) =
    match (v, out) with
    | Vvalue.I (_, a), Vvalue.F (_, o) ->
      for i = 0 to Array.length o - 1 do
        o.(i) <- f a.(i)
      done
    | _ -> fail ()
  in
  let float_to_float (f : float -> float) (v : Vvalue.t) (out : Vvalue.t) =
    match (v, out) with
    | Vvalue.F (_, a), Vvalue.F (_, o) ->
      for i = 0 to Array.length o - 1 do
        o.(i) <- f a.(i)
      done
    | _ -> fail ()
  in
  match k with
  | Vir.Instr.Trunc | Vir.Instr.Sext | Vir.Instr.Ptrtoint
  | Vir.Instr.Inttoptr ->
    int_to_int (Bits.truncate ds)
  | Vir.Instr.Zext ->
    int_to_int (fun x -> Bits.truncate ds (Bits.to_unsigned src x))
  | Vir.Instr.Fptosi ->
    (* Out-of-range/NaN produce the x86 "integer indefinite" value. *)
    let bits = Vir.Vtype.scalar_bits ds in
    let indefinite = Int64.shift_left 1L (bits - 1) in
    let conv x =
      if Float.is_nan x then Bits.truncate ds indefinite
      else
        let lo = Int64.to_float Int64.min_int
        and hi = Int64.to_float Int64.max_int in
        if x < lo || x > hi then Bits.truncate ds indefinite
        else
          let i = Int64.of_float x in
          let tr = Bits.truncate ds i in
          if bits < 64 && tr <> i then Bits.truncate ds indefinite else tr
    in
    float_to_int conv
  | Vir.Instr.Sitofp ->
    int_to_float (fun x -> Bits.round_float ds (Int64.to_float x))
  | Vir.Instr.Fptrunc | Vir.Instr.Fpext -> float_to_float (Bits.round_float ds)
  | Vir.Instr.Bitcast ->
    if
      Vir.Vtype.is_float_scalar ds
      && Vir.Vtype.is_int_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then int_to_float (Bits.float_of_bits ds)
    else if
      Vir.Vtype.is_int_scalar ds
      && Vir.Vtype.is_float_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then float_to_int (Bits.bits_of_float src)
    else if
      Vir.Vtype.is_int_scalar ds
      && Vir.Vtype.is_int_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then int_to_int (Bits.truncate ds)
    else fun _ _ -> fail ()

(* Allocating wrapper over the destination-passing kernel, for the
   constant folder and the reference evaluator: one implementation of
   the conversion semantics. The result has the lane count of the
   input, exactly like the historical cast. *)
let cast_fn (k : Vir.Instr.cast_op) ~(src : Vir.Vtype.scalar)
    ~(dst_ty : Vir.Vtype.t) : Vvalue.t -> Vvalue.t =
  let into = cast_into_fn k ~src ~dst_ty in
  let ds = Vir.Vtype.elem dst_ty in
  let float_out =
    match k with
    | Vir.Instr.Trunc | Vir.Instr.Sext | Vir.Instr.Zext
    | Vir.Instr.Ptrtoint | Vir.Instr.Inttoptr | Vir.Instr.Fptosi ->
      false
    | Vir.Instr.Sitofp | Vir.Instr.Fptrunc | Vir.Instr.Fpext -> true
    | Vir.Instr.Bitcast -> Vir.Vtype.is_float_scalar ds
  in
  fun v ->
    let n = Vvalue.lanes v in
    let out =
      if float_out then Vvalue.F (ds, Array.make n 0.0)
      else Vvalue.I (ds, Array.make n 0L)
    in
    into v out;
    out

(* The legacy entry point dispatches on the runtime value, exactly like
   the pre-threading interpreter did. *)
let eval_cast (k : Vir.Instr.cast_op) (dst_ty : Vir.Vtype.t) (v : Vvalue.t) =
  (cast_fn k ~src:(Vvalue.scalar_kind v) ~dst_ty) v

(* ------------------------------------------------------------------ *)
(* Math intrinsics (lane-wise llvm.sqrt & co.)                         *)

type math = Unary of (float -> float) | Binary of (float -> float -> float)

(* Monomorphic float min/max with the *total-order* semantics of OCaml's
   polymorphic [min]/[max] (which the interpreter has always used), so
   campaign outputs stay bit-identical:
   - NaN sorts below every other float and is equal to itself,
   - hence a lane-wise or reduced [min] yields NaN as soon as any
     operand is NaN, while [max] yields NaN only if all operands are
     NaN. (IEEE minNum/maxNum would instead *ignore* quiet NaNs.)
   Documented & pinned by tests in test_threaded.ml. *)
let fmin (a : float) b = if Float.compare a b <= 0 then a else b

let fmax (a : float) b = if Float.compare a b >= 0 then a else b

let imin (a : int64) b = if Int64.compare a b <= 0 then a else b

let imax (a : int64) b = if Int64.compare a b >= 0 then a else b

let math_fn = function
  | "sqrt" -> Unary sqrt
  | "exp" -> Unary exp
  | "log" -> Unary log
  | "sin" -> Unary sin
  | "cos" -> Unary cos
  | "fabs" -> Unary abs_float
  | "floor" -> Unary floor
  | "pow" -> Binary ( ** )
  | "min" -> Binary fmin
  | "max" -> Binary fmax
  | name -> invalid_arg ("Machine: unknown math intrinsic " ^ name)

(* ------------------------------------------------------------------ *)
(* Cross-lane reductions                                               *)

let reduce_fadd (s : Vir.Vtype.scalar) (lanes : float array) =
  Array.fold_left (fun acc x -> Bits.round_float s (acc +. x)) 0.0 lanes

let reduce_iadd (s : Vir.Vtype.scalar) (lanes : int64 array) =
  Array.fold_left (fun acc x -> Bits.truncate s (Int64.add acc x)) 0L lanes

let reduce_or (lanes : int64 array) = Array.fold_left Int64.logor 0L lanes

(* Reductions fold from lanes.(0) over the whole array (re-visiting lane
   0 is harmless for min/max), mirroring the historical implementation. *)
let reduce_fmin (lanes : float array) = Array.fold_left fmin lanes.(0) lanes

let reduce_fmax (lanes : float array) = Array.fold_left fmax lanes.(0) lanes

let reduce_imin (lanes : int64 array) = Array.fold_left imin lanes.(0) lanes

let reduce_imax (lanes : int64 array) = Array.fold_left imax lanes.(0) lanes

(** Lane-level arithmetic of the VIR VM.

    Every operation comes as a *factory*: [ibinop_fn k s] matches the
    opcode and scalar kind once and returns a monomorphic per-lane
    closure, so the closure-threaded back end ({!Compile}) can hoist all
    dispatch out of the dynamic path. The legacy curried entry points
    ([eval_ibinop_lane] & co., re-exported through {!Machine} for the
    constant folder and the reference SPMD evaluator) are thin wrappers
    over the factories, so the semantics live in exactly one place. *)

(* ------------------------------------------------------------------ *)
(* Integer binary operations                                           *)

(* The truncation to the scalar's width is pre-selected per factory
   call: full-width (i64/ptr) operations skip it entirely and i32 gets
   the inline unboxed int32 round-trip, so the per-lane closure does no
   width dispatch. Semantics identical to [Bits.truncate]. *)
let ibinop_fn (k : Vir.Instr.ibinop) (s : Vir.Vtype.scalar) :
    int64 -> int64 -> int64 =
  let bits = Vir.Vtype.scalar_bits s in
  let shift_mask = bits - 1 in
  (* x86 idiv overflow (min_int / -1 at full width) raises #DE: a crash.
     At narrower widths the truncation absorbs the overflow. *)
  let div_overflows = s = Vir.Vtype.I64 in
  let full_width = match s with
    | Vir.Vtype.I64 | Vir.Vtype.Ptr -> true
    | _ -> false
  in
  if full_width then
    match k with
    | Vir.Instr.Add -> Int64.add
    | Vir.Instr.Sub -> Int64.sub
    | Vir.Instr.Mul -> Int64.mul
    | Vir.Instr.Sdiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else if div_overflows && a = Int64.min_int && b = -1L then
          Trap.raise_ Trap.Division_by_zero
        else Int64.div a b
    | Vir.Instr.Srem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else if div_overflows && a = Int64.min_int && b = -1L then
          Trap.raise_ Trap.Division_by_zero
        else Int64.rem a b
    | Vir.Instr.Udiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else Int64.unsigned_div a b
    | Vir.Instr.Urem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else Int64.unsigned_rem a b
    | Vir.Instr.And -> Int64.logand
    | Vir.Instr.Or -> Int64.logor
    | Vir.Instr.Xor -> Int64.logxor
    | Vir.Instr.Shl ->
      fun a b -> Int64.shift_left a (Int64.to_int b land 63)
    | Vir.Instr.Lshr ->
      fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63)
    | Vir.Instr.Ashr ->
      fun a b -> Int64.shift_right a (Int64.to_int b land 63)
  else if s = Vir.Vtype.I32 then
    let t x = Int64.of_int32 (Int64.to_int32 x) in
    let u x = Int64.logand x 0xFFFFFFFFL in
    match k with
    | Vir.Instr.Add -> fun a b -> t (Int64.add a b)
    | Vir.Instr.Sub -> fun a b -> t (Int64.sub a b)
    | Vir.Instr.Mul -> fun a b -> t (Int64.mul a b)
    | Vir.Instr.Sdiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.div a b)
    | Vir.Instr.Srem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.rem a b)
    | Vir.Instr.Udiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.unsigned_div (u a) (u b))
    | Vir.Instr.Urem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.unsigned_rem (u a) (u b))
    | Vir.Instr.And -> fun a b -> Int64.logand a b
    | Vir.Instr.Or -> fun a b -> Int64.logor a b
    | Vir.Instr.Xor -> fun a b -> Int64.logxor a b
    | Vir.Instr.Shl ->
      fun a b -> t (Int64.shift_left a (Int64.to_int b land 31))
    | Vir.Instr.Lshr ->
      fun a b -> Int64.shift_right_logical (u a) (Int64.to_int b land 31)
    | Vir.Instr.Ashr -> fun a b -> Int64.shift_right a (Int64.to_int b land 31)
  else
    let t x = Bits.truncate s x in
    match k with
    | Vir.Instr.Add -> fun a b -> t (Int64.add a b)
    | Vir.Instr.Sub -> fun a b -> t (Int64.sub a b)
    | Vir.Instr.Mul -> fun a b -> t (Int64.mul a b)
    | Vir.Instr.Sdiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.div a b)
    | Vir.Instr.Srem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else t (Int64.rem a b)
    | Vir.Instr.Udiv ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else
          t (Int64.unsigned_div (Bits.to_unsigned s a) (Bits.to_unsigned s b))
    | Vir.Instr.Urem ->
      fun a b ->
        if b = 0L then Trap.raise_ Trap.Division_by_zero
        else
          t (Int64.unsigned_rem (Bits.to_unsigned s a) (Bits.to_unsigned s b))
    | Vir.Instr.And -> fun a b -> t (Int64.logand a b)
    | Vir.Instr.Or -> fun a b -> t (Int64.logor a b)
    | Vir.Instr.Xor -> fun a b -> t (Int64.logxor a b)
    | Vir.Instr.Shl ->
      (* x86 semantics: shift amount masked to the operand width. *)
      fun a b -> t (Int64.shift_left a (Int64.to_int b land shift_mask))
    | Vir.Instr.Lshr ->
      fun a b ->
        t
          (Int64.shift_right_logical (Bits.to_unsigned s a)
             (Int64.to_int b land shift_mask))
    | Vir.Instr.Ashr ->
      fun a b -> t (Int64.shift_right a (Int64.to_int b land shift_mask))

let eval_ibinop_lane k s a b = (ibinop_fn k s) a b

(* ------------------------------------------------------------------ *)
(* Destination-passing integer kernels over flat lane buffers.

   Composing [ibinop_fn] with a generic lane loop pays three boxing
   allocations per lane: both operands box crossing the
   [int64 -> int64 -> int64] closure boundary and the result boxes
   coming back. These factories select one concrete loop per
   (opcode, width class) whose int64 locals never escape a single
   expression, so the native compiler keeps every lane in a register —
   no allocation on the arithmetic path at all. Semantics are
   bit-identical to [ibinop_fn]/[icmp_fn] applied lane by lane
   (including trap conditions and the per-width truncations); the rare
   narrow widths fall back to the closure composition. *)

let ibinop_into_fn (k : Vir.Instr.ibinop) (s : Vir.Vtype.scalar) :
    Ilanes.t -> Ilanes.t -> Ilanes.t -> unit =
  let full_width =
    match s with Vir.Vtype.I64 | Vir.Vtype.Ptr -> true | _ -> false
  in
  let div_overflows = s = Vir.Vtype.I64 in
  let fallback () =
    let f = ibinop_fn k s in
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (f (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
      done
  in
  if full_width then
    match k with
    | Vir.Instr.Add ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.add (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.Sub ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.sub (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.Mul ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.mul (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.And ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logand (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.Or ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logor (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.Xor ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logxor (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.Shl ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.shift_left (Ilanes.unsafe_get a i)
               (Int64.to_int (Ilanes.unsafe_get b i) land 63))
        done
    | Vir.Instr.Lshr ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.shift_right_logical (Ilanes.unsafe_get a i)
               (Int64.to_int (Ilanes.unsafe_get b i) land 63))
        done
    | Vir.Instr.Ashr ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.shift_right (Ilanes.unsafe_get a i)
               (Int64.to_int (Ilanes.unsafe_get b i) land 63))
        done
    | Vir.Instr.Sdiv ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          let x = Ilanes.unsafe_get a i and y = Ilanes.unsafe_get b i in
          if
            y = 0L || (div_overflows && x = Int64.min_int && y = -1L)
          then Trap.raise_ Trap.Division_by_zero;
          Ilanes.unsafe_set o i (Int64.div x y)
        done
    | Vir.Instr.Srem ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          let x = Ilanes.unsafe_get a i and y = Ilanes.unsafe_get b i in
          if
            y = 0L || (div_overflows && x = Int64.min_int && y = -1L)
          then Trap.raise_ Trap.Division_by_zero;
          Ilanes.unsafe_set o i (Int64.rem x y)
        done
    | Vir.Instr.Udiv ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          let x = Ilanes.unsafe_get a i and y = Ilanes.unsafe_get b i in
          if y = 0L then Trap.raise_ Trap.Division_by_zero;
          Ilanes.unsafe_set o i (Int64.unsigned_div x y)
        done
    | Vir.Instr.Urem ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          let x = Ilanes.unsafe_get a i and y = Ilanes.unsafe_get b i in
          if y = 0L then Trap.raise_ Trap.Division_by_zero;
          Ilanes.unsafe_set o i (Int64.unsigned_rem x y)
        done
  else if s = Vir.Vtype.I32 then
    match k with
    | Vir.Instr.Add ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.of_int32
               (Int64.to_int32
                  (Int64.add (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))))
        done
    | Vir.Instr.Sub ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.of_int32
               (Int64.to_int32
                  (Int64.sub (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))))
        done
    | Vir.Instr.Mul ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.of_int32
               (Int64.to_int32
                  (Int64.mul (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))))
        done
    | Vir.Instr.And ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logand (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.Or ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logor (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.Xor ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logxor (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
        done
    | Vir.Instr.Shl ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.of_int32
               (Int64.to_int32
                  (Int64.shift_left (Ilanes.unsafe_get a i)
                     (Int64.to_int (Ilanes.unsafe_get b i) land 31))))
        done
    | Vir.Instr.Lshr ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.shift_right_logical
               (Int64.logand (Ilanes.unsafe_get a i) 0xFFFFFFFFL)
               (Int64.to_int (Ilanes.unsafe_get b i) land 31))
        done
    | Vir.Instr.Ashr ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.shift_right (Ilanes.unsafe_get a i)
               (Int64.to_int (Ilanes.unsafe_get b i) land 31))
        done
    | Vir.Instr.Sdiv ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          let x = Ilanes.unsafe_get a i and y = Ilanes.unsafe_get b i in
          if y = 0L then Trap.raise_ Trap.Division_by_zero;
          Ilanes.unsafe_set o i
            (Int64.of_int32 (Int64.to_int32 (Int64.div x y)))
        done
    | Vir.Instr.Srem ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          let x = Ilanes.unsafe_get a i and y = Ilanes.unsafe_get b i in
          if y = 0L then Trap.raise_ Trap.Division_by_zero;
          Ilanes.unsafe_set o i
            (Int64.of_int32 (Int64.to_int32 (Int64.rem x y)))
        done
    | Vir.Instr.Udiv ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          let x = Ilanes.unsafe_get a i and y = Ilanes.unsafe_get b i in
          if y = 0L then Trap.raise_ Trap.Division_by_zero;
          Ilanes.unsafe_set o i
            (Int64.of_int32
               (Int64.to_int32
                  (Int64.unsigned_div (Int64.logand x 0xFFFFFFFFL)
                     (Int64.logand y 0xFFFFFFFFL))))
        done
    | Vir.Instr.Urem ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          let x = Ilanes.unsafe_get a i and y = Ilanes.unsafe_get b i in
          if y = 0L then Trap.raise_ Trap.Division_by_zero;
          Ilanes.unsafe_set o i
            (Int64.of_int32
               (Int64.to_int32
                  (Int64.unsigned_rem (Int64.logand x 0xFFFFFFFFL)
                     (Int64.logand y 0xFFFFFFFFL))))
        done
  else
    (* I1 masks combine with And/Or/Xor in predicated control flow, so
       those three get direct loops; other narrow ops are cold. *)
    match (k, s) with
    | Vir.Instr.And, Vir.Vtype.I1 ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logand
               (Int64.logand (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
               1L)
        done
    | Vir.Instr.Or, Vir.Vtype.I1 ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logand
               (Int64.logor (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
               1L)
        done
    | Vir.Instr.Xor, Vir.Vtype.I1 ->
      fun a b o ->
        for i = 0 to Ilanes.length o - 1 do
          Ilanes.unsafe_set o i
            (Int64.logand
               (Int64.logxor (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i))
               1L)
        done
    | _ -> fallback ()

(* ------------------------------------------------------------------ *)
(* Float binary operations                                             *)

(* F32 rounding inlined (unboxed, noalloc externals); F64 needs none.
   Semantics identical to [Bits.round_float], minus a call + match per
   lane on the hot path. *)
let fbinop_fn (k : Vir.Instr.fbinop) (s : Vir.Vtype.scalar) :
    float -> float -> float =
  if s = Vir.Vtype.F32 then
    match k with
    | Vir.Instr.Fadd ->
      fun a b -> Bits.round_f32 (a +. b)
    | Vir.Instr.Fsub ->
      fun a b -> Bits.round_f32 (a -. b)
    | Vir.Instr.Fmul ->
      fun a b -> Bits.round_f32 (a *. b)
    | Vir.Instr.Fdiv ->
      fun a b -> Bits.round_f32 (a /. b)
    | Vir.Instr.Frem ->
      fun a b -> Bits.round_f32 (Float.rem a b)
  else
    match k with
    | Vir.Instr.Fadd -> fun a b -> a +. b
    | Vir.Instr.Fsub -> fun a b -> a -. b
    | Vir.Instr.Fmul -> fun a b -> a *. b
    | Vir.Instr.Fdiv -> fun a b -> a /. b (* IEEE: yields inf/nan *)
    | Vir.Instr.Frem -> fun a b -> Float.rem a b

let eval_fbinop_lane k s a b = (fbinop_fn k s) a b

(* Whole-vector f32 kernels: one noalloc C call runs the op and the
   binary32 rounding over every lane ([lib/interp/round_stubs.c]),
   replacing a per-lane rounding round-trip that dominated f32-heavy
   profiles. Lane count comes from the destination buffer; in-place
   use (output aliased with an input) is per-lane safe. *)
external f32_fadd_arr : float array -> float array -> float array -> unit
  = "vulfi_f32_fadd_arr"
[@@noalloc]

external f32_fsub_arr : float array -> float array -> float array -> unit
  = "vulfi_f32_fsub_arr"
[@@noalloc]

external f32_fmul_arr : float array -> float array -> float array -> unit
  = "vulfi_f32_fmul_arr"
[@@noalloc]

external f32_fdiv_arr : float array -> float array -> float array -> unit
  = "vulfi_f32_fdiv_arr"
[@@noalloc]

(* Horizontal f32 reductions as single C calls: sequential accumulate
   with rounding after every step, exactly as the OCaml loop rounds.
   These box their float result, so they are plain externals. *)
external f32_reduce_fadd : float array -> float = "vulfi_f32_reduce_fadd"

external f32_fadd_reduce_fadd : float array -> float array -> float
  = "vulfi_f32_fadd_reduce_fadd"

external f32_fsub_reduce_fadd : float array -> float array -> float
  = "vulfi_f32_fsub_reduce_fadd"

external f32_fmul_reduce_fadd : float array -> float array -> float
  = "vulfi_f32_fmul_reduce_fadd"

external f32_fdiv_reduce_fadd : float array -> float array -> float
  = "vulfi_f32_fdiv_reduce_fadd"

let f32_arr_fn (k : Vir.Instr.fbinop) :
    (float array -> float array -> float array -> unit) option =
  match k with
  | Vir.Instr.Fadd -> Some f32_fadd_arr
  | Vir.Instr.Fsub -> Some f32_fsub_arr
  | Vir.Instr.Fmul -> Some f32_fmul_arr
  | Vir.Instr.Fdiv -> Some f32_fdiv_arr
  | Vir.Instr.Frem -> None

(* Lane- and op-specialized vector float arithmetic in destination-
   passing style: the kernel writes each lane straight into the
   destination register's pinned buffer, so the loop body is unboxed
   primitives with no per-lane closure application and no result
   allocation at all. The f32 arms are single C kernel calls. [frem]
   falls back to the generic per-lane-closure path ([None]). *)
let fbinop_vec_into_fn (k : Vir.Instr.fbinop) (s : Vir.Vtype.scalar) :
    (float array -> float array -> float array -> unit) option =
  match (s, k) with
  | Vir.Vtype.F64, Vir.Instr.Fadd ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i (a.(i) +. b.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i (a.(i) -. b.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i (a.(i) *. b.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv ->
    Some
      (fun a b o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i (a.(i) /. b.(i))
        done)
  | Vir.Vtype.F32, _ -> f32_arr_fn k
  | _ -> None

(* Fused producer->consumer float pairs, op- and kind-specialized with
   the same inline-rounding idiom as [fbinop_vec_into_fn]: the kernel
   computes [o.(i) <- k2 (k1 a.(i) b.(i)) c.(i)] when [first] (the
   producer's result is the consumer's first operand), or
   [o.(i) <- k2 c.(i) (k1 a.(i) b.(i))] otherwise, with F32 rounding
   after every operation exactly as the two unfused kernels would
   round. Every arm is a single allocation-free loop: floats stay
   unboxed lane to lane, which is the whole point -- the generic
   closure-composed form boxes three floats per lane. Length-generic,
   so scalar chains pass 1-lane arrays. [Frem] pairs fall back to the
   unfused path ([None]). *)
let fbinop_fused_vec_into_fn (s : Vir.Vtype.scalar) ~(k1 : Vir.Instr.fbinop)
    ~(k2 : Vir.Instr.fbinop) ~(first : bool) :
    (float array -> float array -> float array -> float array -> unit)
    option =
  match (s, k1, k2, first) with
  | Vir.Vtype.F64, Vir.Instr.Fadd, Vir.Instr.Fadd, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) +. b.(i)) +. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fadd, Vir.Instr.Fadd, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) +. (a.(i) +. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fadd, Vir.Instr.Fsub, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) +. b.(i)) -. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fadd, Vir.Instr.Fsub, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) -. (a.(i) +. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fadd, Vir.Instr.Fmul, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) +. b.(i)) *. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fadd, Vir.Instr.Fmul, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) *. (a.(i) +. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fadd, Vir.Instr.Fdiv, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) +. b.(i)) /. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fadd, Vir.Instr.Fdiv, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) /. (a.(i) +. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub, Vir.Instr.Fadd, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) -. b.(i)) +. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub, Vir.Instr.Fadd, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) +. (a.(i) -. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub, Vir.Instr.Fsub, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) -. b.(i)) -. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub, Vir.Instr.Fsub, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) -. (a.(i) -. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub, Vir.Instr.Fmul, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) -. b.(i)) *. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub, Vir.Instr.Fmul, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) *. (a.(i) -. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub, Vir.Instr.Fdiv, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) -. b.(i)) /. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fsub, Vir.Instr.Fdiv, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) /. (a.(i) -. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul, Vir.Instr.Fadd, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) *. b.(i)) +. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul, Vir.Instr.Fadd, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) +. (a.(i) *. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul, Vir.Instr.Fsub, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) *. b.(i)) -. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul, Vir.Instr.Fsub, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) -. (a.(i) *. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul, Vir.Instr.Fmul, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) *. b.(i)) *. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul, Vir.Instr.Fmul, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) *. (a.(i) *. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul, Vir.Instr.Fdiv, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) *. b.(i)) /. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fmul, Vir.Instr.Fdiv, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) /. (a.(i) *. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv, Vir.Instr.Fadd, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) /. b.(i)) +. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv, Vir.Instr.Fadd, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) +. (a.(i) /. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv, Vir.Instr.Fsub, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) /. b.(i)) -. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv, Vir.Instr.Fsub, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) -. (a.(i) /. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv, Vir.Instr.Fmul, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) /. b.(i)) *. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv, Vir.Instr.Fmul, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) *. (a.(i) /. b.(i)))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv, Vir.Instr.Fdiv, true ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            ((a.(i) /. b.(i)) /. c.(i))
        done)
  | Vir.Vtype.F64, Vir.Instr.Fdiv, Vir.Instr.Fdiv, false ->
    Some
      (fun a b c o ->
        for i = 0 to Array.length o - 1 do
          Array.unsafe_set o i
            (c.(i) /. (a.(i) /. b.(i)))
        done)
  | Vir.Vtype.F32, k1, k2, first -> (
    (* Two whole-vector C kernel calls staged through [o]: pass one
       writes the rounded producer lanes into [o], pass two combines
       them with [c] in place.  Per lane this computes exactly
       [round (k2 (round (k1 a b)) c)] (or the [c]-first mirror) -- the
       same rounding sequence as the unfused kernels.  In destination-
       passing style [o] never aliases an operand buffer (SSA: the
       consumer's register differs from every source register), so
       staging the producer lanes through [o] is safe. *)
    match (f32_arr_fn k1, f32_arr_fn k2) with
    | Some p1, Some p2 ->
      Some
        (if first then fun a b c o ->
           p1 a b o;
           p2 o c o
         else
           fun a b c o ->
           p1 a b o;
           p2 c o o)
    | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Comparisons                                                         *)

let icmp_fn (p : Vir.Instr.icmp_pred) (s : Vir.Vtype.scalar) :
    int64 -> int64 -> int64 =
  let u x = Bits.to_unsigned s x in
  let b r = if r then 1L else 0L in
  match p with
  | Vir.Instr.Ieq -> fun a b' -> b (Int64.equal a b')
  | Vir.Instr.Ine -> fun a b' -> b (not (Int64.equal a b'))
  | Vir.Instr.Islt -> fun a b' -> b (Int64.compare a b' < 0)
  | Vir.Instr.Isle -> fun a b' -> b (Int64.compare a b' <= 0)
  | Vir.Instr.Isgt -> fun a b' -> b (Int64.compare a b' > 0)
  | Vir.Instr.Isge -> fun a b' -> b (Int64.compare a b' >= 0)
  | Vir.Instr.Iult -> fun a b' -> b (Int64.unsigned_compare (u a) (u b') < 0)
  | Vir.Instr.Iule -> fun a b' -> b (Int64.unsigned_compare (u a) (u b') <= 0)
  | Vir.Instr.Iugt -> fun a b' -> b (Int64.unsigned_compare (u a) (u b') > 0)
  | Vir.Instr.Iuge -> fun a b' -> b (Int64.unsigned_compare (u a) (u b') >= 0)

let eval_icmp_lane p s a b = (icmp_fn p s) a b

(* Same unboxed-loop treatment for integer compares: signed predicates
   compare the sign-normalised lanes directly; unsigned ones mask to
   the width first ([Bits.to_unsigned] as a precomputed bit mask —
   identity at full width). *)
let icmp_into_fn (p : Vir.Instr.icmp_pred) (s : Vir.Vtype.scalar) :
    Ilanes.t -> Ilanes.t -> Ilanes.t -> unit =
  let um =
    match s with
    | Vir.Vtype.I1 -> 1L
    | Vir.Vtype.I8 -> 0xFFL
    | Vir.Vtype.I32 -> 0xFFFFFFFFL
    | _ -> -1L
  in
  match p with
  | Vir.Instr.Ieq ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if Int64.equal (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i)
           then 1L
           else 0L)
      done
  | Vir.Instr.Ine ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if Int64.equal (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i)
           then 0L
           else 1L)
      done
  | Vir.Instr.Islt ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if Int64.compare (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i) < 0
           then 1L
           else 0L)
      done
  | Vir.Instr.Isle ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if
             Int64.compare (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i) <= 0
           then 1L
           else 0L)
      done
  | Vir.Instr.Isgt ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if Int64.compare (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i) > 0
           then 1L
           else 0L)
      done
  | Vir.Instr.Isge ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if
             Int64.compare (Ilanes.unsafe_get a i) (Ilanes.unsafe_get b i) >= 0
           then 1L
           else 0L)
      done
  | Vir.Instr.Iult ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if
             Int64.unsigned_compare
               (Int64.logand (Ilanes.unsafe_get a i) um)
               (Int64.logand (Ilanes.unsafe_get b i) um)
             < 0
           then 1L
           else 0L)
      done
  | Vir.Instr.Iule ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if
             Int64.unsigned_compare
               (Int64.logand (Ilanes.unsafe_get a i) um)
               (Int64.logand (Ilanes.unsafe_get b i) um)
             <= 0
           then 1L
           else 0L)
      done
  | Vir.Instr.Iugt ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if
             Int64.unsigned_compare
               (Int64.logand (Ilanes.unsafe_get a i) um)
               (Int64.logand (Ilanes.unsafe_get b i) um)
             > 0
           then 1L
           else 0L)
      done
  | Vir.Instr.Iuge ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        Ilanes.unsafe_set o i
          (if
             Int64.unsigned_compare
               (Int64.logand (Ilanes.unsafe_get a i) um)
               (Int64.logand (Ilanes.unsafe_get b i) um)
             >= 0
           then 1L
           else 0L)
      done

let fcmp_fn (p : Vir.Instr.fcmp_pred) : float -> float -> int64 =
  let ord a b = not (Float.is_nan a || Float.is_nan b) in
  let b r = if r then 1L else 0L in
  match p with
  | Vir.Instr.Foeq -> fun x y -> b (ord x y && x = y)
  | Vir.Instr.Fone -> fun x y -> b (ord x y && x <> y)
  | Vir.Instr.Folt -> fun x y -> b (ord x y && x < y)
  | Vir.Instr.Fole -> fun x y -> b (ord x y && x <= y)
  | Vir.Instr.Fogt -> fun x y -> b (ord x y && x > y)
  | Vir.Instr.Foge -> fun x y -> b (ord x y && x >= y)
  | Vir.Instr.Ford -> fun x y -> b (ord x y)
  | Vir.Instr.Funo -> fun x y -> b (not (ord x y))

let eval_fcmp_lane p a b = (fcmp_fn p) a b

(* Destination-passing float compares: the predicate is matched once
   and each per-lane comparison is syntactically inside its loop (a
   [float -> float -> int64] closure would box both floats and the
   result on every lane). Same ordered-comparison semantics as
   [fcmp_fn]: any NaN operand makes the Fo* predicates false. *)
let fcmp_into_fn (p : Vir.Instr.fcmp_pred) :
    float array -> float array -> Ilanes.t -> unit =
  match p with
  | Vir.Instr.Foeq ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        Ilanes.unsafe_set o i
          (if (not (Float.is_nan x || Float.is_nan y)) && x = y then 1L
           else 0L)
      done
  | Vir.Instr.Fone ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        Ilanes.unsafe_set o i
          (if (not (Float.is_nan x || Float.is_nan y)) && x <> y then 1L
           else 0L)
      done
  | Vir.Instr.Folt ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        Ilanes.unsafe_set o i
          (if (not (Float.is_nan x || Float.is_nan y)) && x < y then 1L
           else 0L)
      done
  | Vir.Instr.Fole ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        Ilanes.unsafe_set o i
          (if (not (Float.is_nan x || Float.is_nan y)) && x <= y then 1L
           else 0L)
      done
  | Vir.Instr.Fogt ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        Ilanes.unsafe_set o i
          (if (not (Float.is_nan x || Float.is_nan y)) && x > y then 1L
           else 0L)
      done
  | Vir.Instr.Foge ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        Ilanes.unsafe_set o i
          (if (not (Float.is_nan x || Float.is_nan y)) && x >= y then 1L
           else 0L)
      done
  | Vir.Instr.Ford ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        Ilanes.unsafe_set o i
          (if not (Float.is_nan x || Float.is_nan y) then 1L else 0L)
      done
  | Vir.Instr.Funo ->
    fun a b o ->
      for i = 0 to Ilanes.length o - 1 do
        let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
        Ilanes.unsafe_set o i
          (if Float.is_nan x || Float.is_nan y then 1L else 0L)
      done

(* ------------------------------------------------------------------ *)
(* Casts                                                               *)

(* Per-lane cast semantics, pre-selected from the cast opcode and the
   source/destination scalar kinds. This is the single source of truth
   for conversion semantics: [cast_into_fn] (the threaded interpreter),
   [cast_fn] (the constant folder, reference evaluator) and the fused
   chain emitter in {!Compile} all build on the same lane converter, so
   a fused cast→op kernel cannot disagree with the unfused steps. The
   variant encodes the value-kind signature so callers can specialize
   on it once, at threading time. *)
type lane_conv =
  | Cii of (int64 -> int64)
  | Cfi of (float -> int64)
  | Cif of (int64 -> float)
  | Cff of (float -> float)

let cast_lane_fn (k : Vir.Instr.cast_op) ~(src : Vir.Vtype.scalar)
    ~(dst : Vir.Vtype.scalar) : lane_conv =
  let ds = dst in
  let fail () =
    invalid_arg
      (Printf.sprintf "Machine: unsupported cast %s" (Vir.Instr.cast_name k))
  in
  match k with
  | Vir.Instr.Trunc | Vir.Instr.Sext | Vir.Instr.Ptrtoint
  | Vir.Instr.Inttoptr ->
    Cii (Bits.truncate ds)
  | Vir.Instr.Zext ->
    Cii (fun x -> Bits.truncate ds (Bits.to_unsigned src x))
  | Vir.Instr.Fptosi ->
    (* Out-of-range/NaN produce the x86 "integer indefinite" value. *)
    let bits = Vir.Vtype.scalar_bits ds in
    let indefinite = Int64.shift_left 1L (bits - 1) in
    let conv x =
      if Float.is_nan x then Bits.truncate ds indefinite
      else
        let lo = Int64.to_float Int64.min_int
        and hi = Int64.to_float Int64.max_int in
        if x < lo || x > hi then Bits.truncate ds indefinite
        else
          let i = Int64.of_float x in
          let tr = Bits.truncate ds i in
          if bits < 64 && tr <> i then Bits.truncate ds indefinite else tr
    in
    Cfi conv
  | Vir.Instr.Sitofp ->
    Cif (fun x -> Bits.round_float ds (Int64.to_float x))
  | Vir.Instr.Fptrunc | Vir.Instr.Fpext -> Cff (Bits.round_float ds)
  | Vir.Instr.Bitcast ->
    if
      Vir.Vtype.is_float_scalar ds
      && Vir.Vtype.is_int_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then Cif (Bits.float_of_bits ds)
    else if
      Vir.Vtype.is_int_scalar ds
      && Vir.Vtype.is_float_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then Cfi (Bits.bits_of_float src)
    else if
      Vir.Vtype.is_int_scalar ds
      && Vir.Vtype.is_int_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then Cii (Bits.truncate ds)
    else fail ()

(* Specialized destination-passing cast: the cast opcode, source scalar
   kind and destination type are matched once; the returned kernel
   writes converted lanes into the destination value's own buffer. The
   per-lane arithmetic of every conversion the verifier admits is
   syntactically inside its loop, so lane values never cross a closure
   boundary (an [int64 -> int64] or [float -> int64] indirect call
   boxes its argument and result on every lane). The kernel still
   checks both value constructors so a kind-confused extern result
   fails loudly rather than silently reinterpreting. *)
let cast_into_fn (k : Vir.Instr.cast_op) ~(src : Vir.Vtype.scalar)
    ~(dst_ty : Vir.Vtype.t) : Vvalue.t -> Vvalue.t -> unit =
  let ds = Vir.Vtype.elem dst_ty in
  let fail () =
    invalid_arg
      (Printf.sprintf "Machine: unsupported cast %s" (Vir.Instr.cast_name k))
  in
  (* Per-lane fallback through [cast_lane_fn]'s closure, for the rare
     conversions without a specialized loop below (e.g. fptosi to i8). *)
  let generic () =
    match cast_lane_fn k ~src ~dst:ds with
    | exception Invalid_argument _ -> fun _ _ -> fail ()
    | Cii f -> (
      fun v out ->
        match (v, out) with
        | Vvalue.I (_, a), Vvalue.I (_, o) ->
          for i = 0 to Ilanes.length o - 1 do
            Ilanes.unsafe_set o i (f (Ilanes.unsafe_get a i))
          done
        | _ -> fail ())
    | Cfi f -> (
      fun v out ->
        match (v, out) with
        | Vvalue.F (_, a), Vvalue.I (_, o) ->
          for i = 0 to Ilanes.length o - 1 do
            Ilanes.unsafe_set o i (f a.(i))
          done
        | _ -> fail ())
    | Cif f -> (
      fun v out ->
        match (v, out) with
        | Vvalue.I (_, a), Vvalue.F (_, o) ->
          for i = 0 to Array.length o - 1 do
            o.(i) <- f (Ilanes.unsafe_get a i)
          done
        | _ -> fail ())
    | Cff f -> (
      fun v out ->
        match (v, out) with
        | Vvalue.F (_, a), Vvalue.F (_, o) ->
          for i = 0 to Array.length o - 1 do
            o.(i) <- f a.(i)
          done
        | _ -> fail ())
  in
  (* int -> int: pre-mask with [um] (the unsigned reinterpretation of
     the source for zext, the identity mask otherwise), then truncate
     to [ds]'s value range — the same composition as [Bits.truncate]
     after [Bits.to_unsigned], with both steps inlined per width. *)
  let ii (um : int64) : Vvalue.t -> Vvalue.t -> unit =
    match ds with
    | Vir.Vtype.I64 | Vir.Vtype.Ptr -> (
      fun v out ->
        match (v, out) with
        | Vvalue.I (_, a), Vvalue.I (_, o) ->
          for i = 0 to Ilanes.length o - 1 do
            Ilanes.unsafe_set o i (Int64.logand (Ilanes.unsafe_get a i) um)
          done
        | _ -> fail ())
    | Vir.Vtype.I32 -> (
      fun v out ->
        match (v, out) with
        | Vvalue.I (_, a), Vvalue.I (_, o) ->
          for i = 0 to Ilanes.length o - 1 do
            Ilanes.unsafe_set o i
              (Int64.of_int32
                 (Int64.to_int32 (Int64.logand (Ilanes.unsafe_get a i) um)))
          done
        | _ -> fail ())
    | Vir.Vtype.I8 -> (
      fun v out ->
        match (v, out) with
        | Vvalue.I (_, a), Vvalue.I (_, o) ->
          for i = 0 to Ilanes.length o - 1 do
            Ilanes.unsafe_set o i
              (Int64.shift_right
                 (Int64.shift_left
                    (Int64.logand (Ilanes.unsafe_get a i) um)
                    56)
                 56)
          done
        | _ -> fail ())
    | Vir.Vtype.I1 -> (
      fun v out ->
        match (v, out) with
        | Vvalue.I (_, a), Vvalue.I (_, o) ->
          for i = 0 to Ilanes.length o - 1 do
            Ilanes.unsafe_set o i (Int64.logand (Ilanes.unsafe_get a i) 1L)
          done
        | _ -> fail ())
    | Vir.Vtype.F32 | Vir.Vtype.F64 -> fun _ _ -> fail ()
  in
  match k with
  | Vir.Instr.Trunc | Vir.Instr.Sext | Vir.Instr.Ptrtoint
  | Vir.Instr.Inttoptr ->
    ii (-1L)
  | Vir.Instr.Zext -> (
    match src with
    | Vir.Vtype.I1 -> ii 1L
    | Vir.Vtype.I8 -> ii 0xFFL
    | Vir.Vtype.I32 -> ii 0xFFFFFFFFL
    | Vir.Vtype.I64 | Vir.Vtype.Ptr -> ii (-1L)
    | Vir.Vtype.F32 | Vir.Vtype.F64 -> fun _ _ -> fail ())
  | Vir.Instr.Fptosi -> (
    (* Same out-of-range/NaN semantics as [cast_lane_fn]: the x86
       "integer indefinite" value, with the range check against the
       float images of the int64 extremes. *)
    let lo = Int64.to_float Int64.min_int
    and hi = Int64.to_float Int64.max_int in
    match ds with
    | Vir.Vtype.I64 | Vir.Vtype.Ptr -> (
      fun v out ->
        match (v, out) with
        | Vvalue.F (_, a), Vvalue.I (_, o) ->
          for i = 0 to Ilanes.length o - 1 do
            let x = Array.unsafe_get a i in
            Ilanes.unsafe_set o i
              (if Float.is_nan x || x < lo || x > hi then Int64.min_int
               else Int64.of_float x)
          done
        | _ -> fail ())
    | Vir.Vtype.I32 -> (
      let ind = Int64.of_int32 Int32.min_int in
      fun v out ->
        match (v, out) with
        | Vvalue.F (_, a), Vvalue.I (_, o) ->
          for i = 0 to Ilanes.length o - 1 do
            let x = Array.unsafe_get a i in
            Ilanes.unsafe_set o i
              (if Float.is_nan x || x < lo || x > hi then ind
               else
                 let n = Int64.of_float x in
                 let tr = Int64.of_int32 (Int64.to_int32 n) in
                 if tr <> n then ind else tr)
          done
        | _ -> fail ())
    | _ -> generic ())
  | Vir.Instr.Sitofp -> (
    match ds with
    | Vir.Vtype.F64 -> (
      fun v out ->
        match (v, out) with
        | Vvalue.I (_, a), Vvalue.F (_, o) ->
          for i = 0 to Array.length o - 1 do
            Array.unsafe_set o i (Int64.to_float (Ilanes.unsafe_get a i))
          done
        | _ -> fail ())
    | Vir.Vtype.F32 -> (
      fun v out ->
        match (v, out) with
        | Vvalue.I (_, a), Vvalue.F (_, o) ->
          for i = 0 to Array.length o - 1 do
            Array.unsafe_set o i
              (Bits.round_f32 (Int64.to_float (Ilanes.unsafe_get a i)))
          done
        | _ -> fail ())
    | _ -> fun _ _ -> fail ())
  | Vir.Instr.Fptrunc | Vir.Instr.Fpext -> (
    match ds with
    | Vir.Vtype.F64 -> (
      fun v out ->
        match (v, out) with
        | Vvalue.F (_, a), Vvalue.F (_, o) ->
          Array.blit a 0 o 0 (Array.length o)
        | _ -> fail ())
    | Vir.Vtype.F32 -> (
      fun v out ->
        match (v, out) with
        | Vvalue.F (_, a), Vvalue.F (_, o) ->
          for i = 0 to Array.length o - 1 do
            Array.unsafe_set o i
              (Bits.round_f32 (Array.unsafe_get a i))
          done
        | _ -> fail ())
    | _ -> fun _ _ -> fail ())
  | Vir.Instr.Bitcast ->
    if
      Vir.Vtype.is_float_scalar ds
      && Vir.Vtype.is_int_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then
      match ds with
      | Vir.Vtype.F64 -> (
        fun v out ->
          match (v, out) with
          | Vvalue.I (_, a), Vvalue.F (_, o) ->
            for i = 0 to Array.length o - 1 do
              Array.unsafe_set o i
                (Int64.float_of_bits (Ilanes.unsafe_get a i))
            done
          | _ -> fail ())
      | Vir.Vtype.F32 -> (
        fun v out ->
          match (v, out) with
          | Vvalue.I (_, a), Vvalue.F (_, o) ->
            for i = 0 to Array.length o - 1 do
              Array.unsafe_set o i
                (Int32.float_of_bits (Int64.to_int32 (Ilanes.unsafe_get a i)))
            done
          | _ -> fail ())
      | _ -> fun _ _ -> fail ()
    else if
      Vir.Vtype.is_int_scalar ds
      && Vir.Vtype.is_float_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then
      match src with
      | Vir.Vtype.F64 -> (
        fun v out ->
          match (v, out) with
          | Vvalue.F (_, a), Vvalue.I (_, o) ->
            for i = 0 to Ilanes.length o - 1 do
              Ilanes.unsafe_set o i (Int64.bits_of_float (Array.unsafe_get a i))
            done
          | _ -> fail ())
      | Vir.Vtype.F32 -> (
        fun v out ->
          match (v, out) with
          | Vvalue.F (_, a), Vvalue.I (_, o) ->
            for i = 0 to Ilanes.length o - 1 do
              Ilanes.unsafe_set o i
                (Int64.of_int32 (Int32.bits_of_float (Array.unsafe_get a i)))
            done
          | _ -> fail ())
      | _ -> fun _ _ -> fail ()
    else if
      Vir.Vtype.is_int_scalar ds
      && Vir.Vtype.is_int_scalar src
      && Vir.Vtype.scalar_bits src = Vir.Vtype.scalar_bits ds
    then ii (-1L)
    else fun _ _ -> fail ()

(* Allocating wrapper over the destination-passing kernel, for the
   constant folder and the reference evaluator: one implementation of
   the conversion semantics. The result has the lane count of the
   input, exactly like the historical cast. *)
let cast_fn (k : Vir.Instr.cast_op) ~(src : Vir.Vtype.scalar)
    ~(dst_ty : Vir.Vtype.t) : Vvalue.t -> Vvalue.t =
  let into = cast_into_fn k ~src ~dst_ty in
  let ds = Vir.Vtype.elem dst_ty in
  let float_out =
    match k with
    | Vir.Instr.Trunc | Vir.Instr.Sext | Vir.Instr.Zext
    | Vir.Instr.Ptrtoint | Vir.Instr.Inttoptr | Vir.Instr.Fptosi ->
      false
    | Vir.Instr.Sitofp | Vir.Instr.Fptrunc | Vir.Instr.Fpext -> true
    | Vir.Instr.Bitcast -> Vir.Vtype.is_float_scalar ds
  in
  fun v ->
    let n = Vvalue.lanes v in
    let out =
      if float_out then Vvalue.F (ds, Array.make n 0.0)
      else Vvalue.I (ds, Ilanes.make n 0L)
    in
    into v out;
    out

(* The legacy entry point dispatches on the runtime value, exactly like
   the pre-threading interpreter did. *)
let eval_cast (k : Vir.Instr.cast_op) (dst_ty : Vir.Vtype.t) (v : Vvalue.t) =
  (cast_fn k ~src:(Vvalue.scalar_kind v) ~dst_ty) v

(* ------------------------------------------------------------------ *)
(* Math intrinsics (lane-wise llvm.sqrt & co.)                         *)

type math = Unary of (float -> float) | Binary of (float -> float -> float)

(* Monomorphic float min/max with the *total-order* semantics of OCaml's
   polymorphic [min]/[max] (which the interpreter has always used), so
   campaign outputs stay bit-identical:
   - NaN sorts below every other float and is equal to itself,
   - hence a lane-wise or reduced [min] yields NaN as soon as any
     operand is NaN, while [max] yields NaN only if all operands are
     NaN. (IEEE minNum/maxNum would instead *ignore* quiet NaNs.)
   Documented & pinned by tests in test_threaded.ml. *)
let[@inline] fmin (a : float) b = if Float.compare a b <= 0 then a else b

let[@inline] fmax (a : float) b = if Float.compare a b >= 0 then a else b

let[@inline] imin (a : int64) b = if Int64.compare a b <= 0 then a else b

let[@inline] imax (a : int64) b = if Int64.compare a b >= 0 then a else b

let math_fn = function
  | "sqrt" -> Unary sqrt
  | "exp" -> Unary exp
  | "log" -> Unary log
  | "sin" -> Unary sin
  | "cos" -> Unary cos
  | "fabs" -> Unary abs_float
  | "floor" -> Unary floor
  | "pow" -> Binary ( ** )
  | "min" -> Binary fmin
  | "max" -> Binary fmax
  | name -> invalid_arg ("Machine: unknown math intrinsic " ^ name)

(* ------------------------------------------------------------------ *)
(* Cross-lane reductions                                               *)

(* All reductions are written as direct loops (not fold_left): an
   accumulator threaded through a closure would be boxed on every lane,
   while the loop-local ref unboxes completely. The float-add reduction
   further resolves the storage precision *outside* the loop: a
   per-lane [Bits.round_float s] call would re-dispatch on [s] and box
   the float across the call on every lane. *)
let reduce_fadd (s : Vir.Vtype.scalar) (lanes : float array) =
  match s with
  | Vir.Vtype.F32 ->
    f32_reduce_fadd lanes
  | _ ->
    let acc = ref 0.0 in
    for i = 0 to Array.length lanes - 1 do
      acc := !acc +. Array.unsafe_get lanes i
    done;
    !acc

(* Fused elementwise-op -> add-reduction, the dot-product tail of a
   superblock chain: computes [reduce_fadd s (map2 k a b)] in ONE loop
   with no intermediate vector. F32 arms round after the elementwise op
   AND after every accumulate, exactly as the unfused pair
   ([fbinop_vec_into_fn] into a register, then [reduce_fadd] over it)
   rounds — the fused result is bit-identical, not merely close.
   [Frem] producers fall back to the unfused path ([None]). *)
let fbinop_reduce_fadd_fn (s : Vir.Vtype.scalar) (k : Vir.Instr.fbinop) :
    (float array -> float array -> float) option =
  match (s, k) with
  | Vir.Vtype.F64, Vir.Instr.Fmul ->
    Some
      (fun a b ->
        let acc = ref 0.0 in
        for i = 0 to Array.length a - 1 do
          acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
        done;
        !acc)
  | Vir.Vtype.F64, Vir.Instr.Fadd ->
    Some
      (fun a b ->
        let acc = ref 0.0 in
        for i = 0 to Array.length a - 1 do
          acc := !acc +. (Array.unsafe_get a i +. Array.unsafe_get b i)
        done;
        !acc)
  | Vir.Vtype.F64, Vir.Instr.Fsub ->
    Some
      (fun a b ->
        let acc = ref 0.0 in
        for i = 0 to Array.length a - 1 do
          acc := !acc +. (Array.unsafe_get a i -. Array.unsafe_get b i)
        done;
        !acc)
  | Vir.Vtype.F64, Vir.Instr.Fdiv ->
    Some
      (fun a b ->
        let acc = ref 0.0 in
        for i = 0 to Array.length a - 1 do
          acc := !acc +. (Array.unsafe_get a i /. Array.unsafe_get b i)
        done;
        !acc)
  | Vir.Vtype.F32, Vir.Instr.Fmul -> Some f32_fmul_reduce_fadd
  | Vir.Vtype.F32, Vir.Instr.Fadd -> Some f32_fadd_reduce_fadd
  | Vir.Vtype.F32, Vir.Instr.Fsub -> Some f32_fsub_reduce_fadd
  | Vir.Vtype.F32, Vir.Instr.Fdiv -> Some f32_fdiv_reduce_fadd
  | _ -> None

let reduce_iadd (s : Vir.Vtype.scalar) (lanes : Ilanes.t) =
  let acc = ref 0L in
  for i = 0 to Ilanes.length lanes - 1 do
    acc := Bits.truncate s (Int64.add !acc (Ilanes.unsafe_get lanes i))
  done;
  !acc

let reduce_or (lanes : Ilanes.t) =
  let acc = ref 0L in
  for i = 0 to Ilanes.length lanes - 1 do
    acc := Int64.logor !acc (Ilanes.unsafe_get lanes i)
  done;
  !acc

(* Reductions fold from lanes.(0) over the whole array (re-visiting lane
   0 is harmless for min/max), mirroring the historical implementation. *)
let reduce_fmin (lanes : float array) =
  let acc = ref lanes.(0) in
  for i = 0 to Array.length lanes - 1 do
    let x = Array.unsafe_get lanes i in
    if Float.compare x !acc < 0 then acc := x
  done;
  !acc

let reduce_fmax (lanes : float array) =
  let acc = ref lanes.(0) in
  for i = 0 to Array.length lanes - 1 do
    let x = Array.unsafe_get lanes i in
    if Float.compare x !acc > 0 then acc := x
  done;
  !acc

let reduce_imin (lanes : Ilanes.t) =
  let acc = ref (Ilanes.get lanes 0) in
  for i = 1 to Ilanes.length lanes - 1 do
    let x = Ilanes.unsafe_get lanes i in
    if Int64.compare x !acc < 0 then acc := x
  done;
  !acc

let reduce_imax (lanes : Ilanes.t) =
  let acc = ref (Ilanes.get lanes 0) in
  for i = 1 to Ilanes.length lanes - 1 do
    let x = Ilanes.unsafe_get lanes i in
    if Int64.compare x !acc > 0 then acc := x
  done;
  !acc

(** Bounds-checked flat memory. Allocations live at distinct bases with
    large guard gaps, so a bit flip in an address register most often
    lands outside every allocation and traps — reproducing the paper's
    observation that address-site faults predominantly crash, while
    low-order flips stay in-bounds and silently corrupt. *)

type t

val create : unit -> t

(** Allocate [bytes] (zero-initialised); returns the base address.
    [name] is kept for debugging. *)
val alloc : t -> name:string -> bytes:int -> int64

(** Checkpointing. [snapshot] captures the allocation state (region
    list, bump pointer) plus the contents of every region; [restore]
    rolls all of it back, so allocations made after the snapshot are
    dropped and replay at identical addresses. Dirty-span tracking makes
    restoring the {e most recent} snapshot cost proportional to the
    bytes written since it was taken; restoring an older snapshot falls
    back to a full copy. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

(** Accumulated dirty-span hulls for convergence checks. [diff_spans m
    acc] widens [acc] with every region's live dirty span (the bytes
    written since the last snapshot/restore event); [equal_since m snap
    ~since] compares the current memory against [snap] restricted to
    the union of [since] and the live spans — bytes outside that union
    are untouched since [snap] on both sides, so the restricted
    comparison equals a full comparison. Allocation-state divergence
    (regions allocated after [snap] still live) conservatively returns
    [false]. *)

type spans

val no_spans : spans
val diff_spans : t -> spans -> spans
val equal_since : t -> snapshot -> since:spans -> bool

(** Load a (possibly vector) value of [ty] from contiguous memory.
    @raise Trap.Trap on out-of-bounds access. *)
val load : t -> Vir.Vtype.t -> int64 -> Vvalue.t

(** Store a value contiguously; [mask] (lane booleans) disables lanes,
    matching AVX maskstore semantics. *)
val store : ?mask:Vvalue.t -> t -> Vvalue.t -> int64 -> unit

(** Pre-specialized access routines for a statically known access type;
    the closure-threading stage builds one per load/store site so the
    per-access work is region lookup plus raw byte moves, with the type
    dispatch done once at compile time. Semantics identical to [load]
    and unmasked [store]. *)

val loader : Vir.Vtype.t -> t -> int64 -> Vvalue.t
val storer : Vir.Vtype.t -> t -> Vvalue.t -> int64 -> unit

(** Destination-passing load: writes the loaded lanes into the given
    value's own buffer (the destination register's pinned buffer). A
    trapping access leaves the destination untouched.
    @raise Invalid_argument if the destination shape does not match. *)
val loader_into : Vir.Vtype.t -> t -> int64 -> Vvalue.t -> unit

(** Masked vector load: disabled lanes read as zero without touching
    memory (AVX maskload semantics — a masked-off lane may point out of
    bounds without trapping). *)
val masked_load : t -> Vir.Vtype.t -> int64 -> mask:Vvalue.t -> Vvalue.t

(** Destination-passing {!masked_load}: every destination lane is
    written (disabled lanes as zero), so no stale lane survives. *)
val masked_load_into :
  t -> Vir.Vtype.t -> int64 -> mask:Vvalue.t -> Vvalue.t -> unit

(** Typed bulk accessors for benchmark harnesses. *)

val write_i32_array : t -> int64 -> int array -> unit
val read_i32_array : t -> int64 -> int -> int array
val write_f32_array : t -> int64 -> float array -> unit
val read_f32_array : t -> int64 -> int -> float array
val write_f64_array : t -> int64 -> float array -> unit
val read_f64_array : t -> int64 -> int -> float array

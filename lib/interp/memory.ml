(** Bounds-checked flat memory.

    Each allocation lives at a distinct base address with large guard
    gaps between allocations, so a bit flip in an address register most
    often lands outside every allocation and traps — reproducing the
    paper's observation that address-site faults predominantly crash.
    Flips of low-order bits can stay inside the allocation and silently
    corrupt data instead, which is equally faithful. *)

type region = {
  base : int64;
  size : int;        (** bytes *)
  data : Bytes.t;
  rname : string;    (** for debugging *)
  mutable dlo : int;
  mutable dhi : int;
      (** dirty span [dlo, dhi): bytes written since the last
          snapshot/restore point (empty when [dlo >= dhi]). Every store
          path widens it, so [restore] only copies back what a run
          actually touched. *)
}

(* Sentinel for "no region": zero-sized, so [in_region] is false for
   every address and the lookup cache can be a plain (never-[option])
   field — a cache miss then neither allocates a [Some] nor follows an
   extra indirection on the hot path. *)
let no_region =
  { base = -1L; size = 0; data = Bytes.empty; rname = "<none>";
    dlo = max_int; dhi = 0 }

type t = {
  mutable regions : region list;  (** most recent first *)
  mutable next_base : int64;
  mutable last : region;
      (** one-entry lookup cache ([no_region] when empty): consecutive
          accesses overwhelmingly hit the same region. Purely an
          accelerator — hit or miss, the lookup result is unchanged. *)
  mutable cur_gen : int;
      (** generation of the snapshot the dirty spans are relative to *)
  mutable next_gen : int;  (** monotonic snapshot-id source *)
}

(* Bases start high and advance by the allocation size rounded up to a
   page plus a guard page, mimicking a sparse address space. *)
let create () =
  { regions = []; next_base = 0x1000_0000L; last = no_region;
    cur_gen = 0; next_gen = 0 }

let page = 4096

let round_up n k = (n + k - 1) / k * k

let alloc m ~name ~bytes =
  if bytes < 0 then invalid_arg "Memory.alloc: negative size";
  let size = max bytes 1 in
  let base = m.next_base in
  let region =
    { base; size; data = Bytes.make size '\000'; rname = name;
      dlo = max_int; dhi = 0 }
  in
  m.regions <- region :: m.regions;
  m.next_base <-
    Int64.add base (Int64.of_int (round_up size page + page));
  base

(* Widen a region's dirty span over [off, off + bytes). On the store
   hot path this is two compares and at most two int stores. *)
let[@inline] touch r off bytes =
  if off < r.dlo then r.dlo <- off;
  let e = off + bytes in
  if e > r.dhi then r.dhi <- e

(* ------------------------------------------------------------------ *)
(* Checkpointing. A snapshot captures the allocation state (region
   list, bump pointer) plus a full copy of every region's bytes; the
   copy is paid once per snapshot. Restoring the *current* snapshot
   copies back only each region's dirty span — cost proportional to the
   bytes written since the snapshot — and drops regions allocated after
   it (so in-run [alloca]s replay at identical addresses). Restoring an
   older snapshot falls back to a full copy, because the spans are
   relative to the latest snapshot only. *)

type snapshot = {
  snap_gen : int;
  snap_next_base : int64;
  snap_regions : region list;
  snap_saved : (region * Bytes.t) array;
}

let snapshot m =
  let saved =
    Array.of_list
      (List.map
         (fun r ->
           r.dlo <- max_int;
           r.dhi <- 0;
           (r, Bytes.copy r.data))
         m.regions)
  in
  m.next_gen <- m.next_gen + 1;
  m.cur_gen <- m.next_gen;
  {
    snap_gen = m.cur_gen;
    snap_next_base = m.next_base;
    snap_regions = m.regions;
    snap_saved = saved;
  }

let restore m snap =
  if snap.snap_gen = m.cur_gen then
    (* Latest snapshot: the dirty spans say exactly which bytes differ
       from the saved image. *)
    Array.iter
      (fun (r, saved) ->
        if r.dlo < r.dhi then begin
          let lo = r.dlo and hi = min r.dhi r.size in
          Bytes.blit saved lo r.data lo (hi - lo);
          r.dlo <- max_int;
          r.dhi <- 0
        end)
      snap.snap_saved
  else begin
    (* Stale snapshot: spans track a different baseline; copy whole
       regions and make this snapshot the span baseline. *)
    Array.iter
      (fun (r, saved) ->
        Bytes.blit saved 0 r.data 0 r.size;
        r.dlo <- max_int;
        r.dhi <- 0)
      snap.snap_saved;
    m.cur_gen <- snap.snap_gen
  end;
  m.regions <- snap.snap_regions;
  m.next_base <- snap.snap_next_base;
  m.last <- no_region

(* ------------------------------------------------------------------ *)
(* Dirty-span bookkeeping for convergence checks. A [spans] value is an
   accumulated per-region convex hull of dirty bytes, keyed by physical
   region identity; [diff_spans] folds the live spans (writes since the
   last snapshot/restore event) into an accumulator, and [equal_since]
   compares the current memory against a snapshot restricted to the
   union of the live spans and an accumulated hull — every byte outside
   that union is untouched since the snapshot on both sides, so the
   restricted comparison is exact (see DESIGN.md, convergence
   soundness). *)

type spans = (region * int * int) list

let no_spans : spans = []

let rec merge_span r lo hi = function
  | [] -> [ (r, lo, hi) ]
  | (r', lo', hi') :: rest when r' == r ->
    (r, min lo lo', max hi hi') :: rest
  | e :: rest -> e :: merge_span r lo hi rest

let diff_spans m acc =
  List.fold_left
    (fun acc r ->
      if r.dlo < r.dhi then merge_span r r.dlo (min r.dhi r.size) acc
      else acc)
    acc m.regions

(* Byte-range equality in 8-byte strides with a bytewise tail. *)
let bytes_equal_range a b lo hi =
  let i = ref lo in
  let ok = ref true in
  while !ok && !i + 8 <= hi do
    if Bytes.get_int64_ne a !i <> Bytes.get_int64_ne b !i then ok := false
    else i := !i + 8
  done;
  while !ok && !i < hi do
    if Bytes.unsafe_get a !i <> Bytes.unsafe_get b !i then ok := false
    else incr i
  done;
  !ok

(* Hull of region [r]'s entry in [since] and its live dirty span. *)
let[@inline] hull_for r (since : spans) =
  let rec find = function
    | [] -> (max_int, 0)
    | (r', lo, hi) :: rest -> if r' == r then (lo, hi) else find rest
  in
  let slo, shi = find since in
  let llo = r.dlo and lhi = min r.dhi r.size in
  (min slo llo, max shi lhi)

let equal_since m snap ~since =
  (* Any divergence in the allocation state (a region allocated after
     the snapshot that is still live, or a different bump pointer) is
     conservatively "not equal" — sound, and free to test. *)
  m.regions == snap.snap_regions
  && m.next_base = snap.snap_next_base
  && Array.for_all
       (fun (r, saved) ->
         let lo, hi = hull_for r since in
         lo >= hi || bytes_equal_range r.data saved lo (min hi r.size))
       snap.snap_saved

let[@inline] in_region r addr =
  addr >= r.base && Int64.sub addr r.base < Int64.of_int r.size

let rec region_list addr = function
  | [] -> no_region
  | r :: rest -> if in_region r addr then r else region_list addr rest

(* Region lookup returning [no_region] on miss. The cache-hit test is
   forced inline into every access closure, and neither hit nor miss
   allocates (the classic-compiler alternative — an [option] — costs a
   [Some] per cache refill and boxes on every return). *)
let[@inline] find_region m addr : region =
  let l = m.last in
  if in_region l addr then l
  else begin
    let r = region_list addr m.regions in
    if r != no_region then m.last <- r;
    r
  end

let find m addr =
  let r = find_region m addr in
  if r == no_region then None else Some r

let[@inline] reg_off r addr = Int64.to_int (Int64.sub addr r.base)

(* The whole range [addr, addr + bytes) inside one region, which is
   returned (the caller recomputes the offset with [reg_off] — two
   inlined int ops — instead of receiving an allocated tuple), or
   [no_region]: the caller falls back to the per-lane path, which
   reproduces the exact per-lane trap address. *)
let[@inline] range_region m addr ~bytes : region =
  let r = find_region m addr in
  if r != no_region && reg_off r addr + bytes <= r.size then r else no_region

(* In-bounds region for a [bytes]-wide access at [addr], or trap. *)
let[@inline] region_at m addr ~bytes : region =
  let r = range_region m addr ~bytes in
  if r == no_region then Trap.raise_ (Trap.Out_of_bounds addr);
  r

(* Scalar loads/stores by element kind. i1 occupies one byte. *)
let load_scalar m (s : Vir.Vtype.scalar) addr : Vvalue.t =
  let bytes = Vir.Vtype.scalar_bytes s in
  let r = region_at m addr ~bytes in
        let off = reg_off r addr in
  match s with
  | I1 ->
    Vvalue.I (I1, Ilanes.make 1 ((if Bytes.get r.data off = '\000' then 0L else 1L)))
  | I8 ->
    Vvalue.I (I8, Ilanes.make 1 (Int64.of_int (Char.code (Bytes.get r.data off) lsl 56 asr 56)))
  | I32 ->
    Vvalue.I (I32, Ilanes.make 1 (Int64.of_int32 (Bytes.get_int32_le r.data off)))
  | I64 -> Vvalue.I (I64, Ilanes.make 1 (Bytes.get_int64_le r.data off))
  | Ptr -> Vvalue.I (Ptr, Ilanes.make 1 (Bytes.get_int64_le r.data off))
  | F32 ->
    Vvalue.F
      (F32, [| Int32.float_of_bits (Bytes.get_int32_le r.data off) |])
  | F64 ->
    Vvalue.F (F64, [| Int64.float_of_bits (Bytes.get_int64_le r.data off) |])

(* Raw per-lane readers: same trap behaviour as [load_scalar] but the
   lane comes back unboxed, so the masked/gather loops neither allocate
   a value wrapper nor box the payload. *)
let load_scalar_int m (s : Vir.Vtype.scalar) addr : int64 =
  let bytes = Vir.Vtype.scalar_bytes s in
  let r = region_at m addr ~bytes in
        let off = reg_off r addr in
  match s with
  | I1 -> if Bytes.get r.data off = '\000' then 0L else 1L
  | I8 -> Int64.of_int (Char.code (Bytes.get r.data off) lsl 56 asr 56)
  | I32 -> Int64.of_int32 (Bytes.get_int32_le r.data off)
  | I64 | Ptr -> Bytes.get_int64_le r.data off
  | F32 | F64 -> invalid_arg "Memory.load_scalar_int: float scalar"

let load_scalar_float m (s : Vir.Vtype.scalar) addr : float =
  let bytes = Vir.Vtype.scalar_bytes s in
  let r = region_at m addr ~bytes in
        let off = reg_off r addr in
  match s with
  | F32 -> Int32.float_of_bits (Bytes.get_int32_le r.data off)
  | F64 -> Int64.float_of_bits (Bytes.get_int64_le r.data off)
  | _ -> invalid_arg "Memory.load_scalar_float: int scalar"

let store_scalar m (s : Vir.Vtype.scalar) addr (lane_int : int64)
    (lane_float : float) =
  let bytes = Vir.Vtype.scalar_bytes s in
  let r = region_at m addr ~bytes in
        let off = reg_off r addr in
  touch r off bytes;
  match s with
  | I1 -> Bytes.set r.data off (if lane_int = 0L then '\000' else '\001')
  | I8 -> Bytes.set r.data off (Char.chr (Int64.to_int lane_int land 0xFF))
  | I32 -> Bytes.set_int32_le r.data off (Int64.to_int32 lane_int)
  | I64 | Ptr -> Bytes.set_int64_le r.data off lane_int
  | F32 -> Bytes.set_int32_le r.data off (Int32.bits_of_float lane_float)
  | F64 -> Bytes.set_int64_le r.data off (Int64.bits_of_float lane_float)

(* Raw lane readers/writers against an already-resolved region; the
   fast vector paths below use them to avoid one region walk and one
   intermediate 1-lane value per lane. Byte-level encodings match
   [load_scalar]/[store_scalar] exactly. *)
let read_lane_int (s : Vir.Vtype.scalar) data off : int64 =
  match s with
  | Vir.Vtype.I1 -> if Bytes.get data off = '\000' then 0L else 1L
  | Vir.Vtype.I8 ->
    Int64.of_int (Char.code (Bytes.get data off) lsl 56 asr 56)
  | Vir.Vtype.I32 -> Int64.of_int32 (Bytes.get_int32_le data off)
  | Vir.Vtype.I64 | Vir.Vtype.Ptr -> Bytes.get_int64_le data off
  | Vir.Vtype.F32 | Vir.Vtype.F64 -> assert false

let read_lane_float (s : Vir.Vtype.scalar) data off : float =
  match s with
  | Vir.Vtype.F32 -> Int32.float_of_bits (Bytes.get_int32_le data off)
  | Vir.Vtype.F64 -> Int64.float_of_bits (Bytes.get_int64_le data off)
  | _ -> assert false

let write_lane_int (s : Vir.Vtype.scalar) data off (x : int64) =
  match s with
  | Vir.Vtype.I1 -> Bytes.set data off (if x = 0L then '\000' else '\001')
  | Vir.Vtype.I8 -> Bytes.set data off (Char.chr (Int64.to_int x land 0xFF))
  | Vir.Vtype.I32 -> Bytes.set_int32_le data off (Int64.to_int32 x)
  | Vir.Vtype.I64 | Vir.Vtype.Ptr -> Bytes.set_int64_le data off x
  | Vir.Vtype.F32 | Vir.Vtype.F64 -> assert false

let write_lane_float (s : Vir.Vtype.scalar) data off (x : float) =
  match s with
  | Vir.Vtype.F32 -> Bytes.set_int32_le data off (Int32.bits_of_float x)
  | Vir.Vtype.F64 -> Bytes.set_int64_le data off (Int64.bits_of_float x)
  | _ -> assert false

(* The whole range [addr, addr + bytes) inside one region, or None (the
   caller falls back to the per-lane path, which reproduces the exact
   per-lane trap address). *)
let range_in_region m addr ~bytes =
  match find m addr with
  | Some r when Int64.to_int (Int64.sub addr r.base) + bytes <= r.size ->
    Some (r, Int64.to_int (Int64.sub addr r.base))
  | _ -> None

(* Load a (possibly vector) value of type [ty] from contiguous memory. *)
let load m (ty : Vir.Vtype.t) addr : Vvalue.t =
  match ty with
  | Vir.Vtype.Void -> invalid_arg "Memory.load: void"
  | Vir.Vtype.Scalar s -> load_scalar m s addr
  | Vir.Vtype.Vector (n, s) ->
    let sb = Vir.Vtype.scalar_bytes s in
    let step = Int64.of_int sb in
    (let r = range_region m addr ~bytes:(n * sb) in
    let off = reg_off r addr in
    match r != no_region with
    | true ->
      if Vir.Vtype.is_float_scalar s then begin
        let out = Array.make n 0.0 in
        for i = 0 to n - 1 do
          Array.unsafe_set out i (read_lane_float s r.data (off + (i * sb)))
        done;
        Vvalue.F (s, out)
      end
      else begin
        let out = Ilanes.make n 0L in
        for i = 0 to n - 1 do
          Ilanes.unsafe_set out i (read_lane_int s r.data (off + (i * sb)))
        done;
        Vvalue.I (s, out)
      end
    | false ->
      if Vir.Vtype.is_float_scalar s then
        Vvalue.F
          ( s,
            Array.init n (fun i ->
                match
                  load_scalar m s
                    (Int64.add addr (Int64.mul step (Int64.of_int i)))
                with
                | Vvalue.F (_, [| x |]) -> x
                | _ -> assert false) )
      else
        Vvalue.I
          ( s,
            Ilanes.init n (fun i ->
                match
                  load_scalar m s
                    (Int64.add addr (Int64.mul step (Int64.of_int i)))
                with
                | Vvalue.I (_, a) -> Ilanes.unsafe_get a 0
                | _ -> assert false) ))

(* Store a value to contiguous memory; [mask] (if given) disables lanes.
   Masked stores whose whole vector span lies inside one region resolve
   the region once and write enabled lanes at integer offsets (disabled
   lanes untouched and — being in bounds along with the rest of the
   span — needing no bounds check); each enabled lane's span is dirtied
   individually, exactly like the per-lane path. Spans not contained in
   one region take the per-lane path, which bounds-checks only enabled
   lanes and reproduces exact per-lane trap addresses. *)
let store ?mask m (v : Vvalue.t) addr =
  let n = Vvalue.lanes v in
  let s = Vvalue.scalar_kind v in
  let sb = Vir.Vtype.scalar_bytes s in
  match mask with
  | None -> (
    let r = range_region m addr ~bytes:(n * sb) in
    let off = reg_off r addr in
    match r != no_region with
    | true -> (
      touch r off (n * sb);
      match v with
      | Vvalue.I (_, lanes) ->
        for i = 0 to n - 1 do
          write_lane_int s r.data (off + (i * sb)) (Ilanes.unsafe_get lanes i)
        done
      | Vvalue.F (_, lanes) ->
        for i = 0 to n - 1 do
          write_lane_float s r.data (off + (i * sb)) lanes.(i)
        done)
    | false ->
      let step = Int64.of_int sb in
      for i = 0 to n - 1 do
        let a = Int64.add addr (Int64.mul step (Int64.of_int i)) in
        match v with
        | Vvalue.I (_, lanes) ->
          store_scalar m s a (Ilanes.unsafe_get lanes i) 0.0
        | Vvalue.F (_, lanes) -> store_scalar m s a 0L lanes.(i)
      done)
  | Some mk -> (
    let r = range_region m addr ~bytes:(n * sb) in
    let off = reg_off r addr in
    match r != no_region with
    | true -> (
      let data = r.data in
      match v with
      | Vvalue.I (_, lanes) ->
        for i = 0 to n - 1 do
          if Vvalue.is_true_lane mk i then begin
            let lo = off + (i * sb) in
            touch r lo sb;
            write_lane_int s data lo (Ilanes.unsafe_get lanes i)
          end
        done
      | Vvalue.F (_, lanes) ->
        for i = 0 to n - 1 do
          if Vvalue.is_true_lane mk i then begin
            let lo = off + (i * sb) in
            touch r lo sb;
            write_lane_float s data lo (Array.unsafe_get lanes i)
          end
        done)
    | false ->
      let step = Int64.of_int sb in
      for i = 0 to n - 1 do
        if Vvalue.is_true_lane mk i then
          let a = Int64.add addr (Int64.mul step (Int64.of_int i)) in
          match v with
          | Vvalue.I (_, lanes) ->
            store_scalar m s a (Ilanes.unsafe_get lanes i) 0.0
          | Vvalue.F (_, lanes) -> store_scalar m s a 0L lanes.(i)
      done)

(* Pre-specialized load routine for a statically known access type: the
   threading stage builds one per load site, so the per-access work is
   region lookup + raw byte moves with no type dispatch. Semantics
   (including per-lane trap addresses on region-straddling vector
   accesses) are identical to [load]. *)
let loader (ty : Vir.Vtype.t) : t -> int64 -> Vvalue.t =
  match ty with
  | Vir.Vtype.Void -> invalid_arg "Memory.load: void"
  | Vir.Vtype.Scalar s -> (
    match s with
    | I1 ->
      fun m addr ->
        let r = region_at m addr ~bytes:1 in
        let off = reg_off r addr in
        Vvalue.I (I1, Ilanes.of_array [| (if Bytes.get r.data off = '\000' then 0L else 1L) |])
    | I8 ->
      fun m addr ->
        let r = region_at m addr ~bytes:1 in
        let off = reg_off r addr in
        Vvalue.I (I8, Ilanes.of_array [| Int64.of_int (Char.code (Bytes.get r.data off) lsl 56 asr 56) |])
    | I32 ->
      fun m addr ->
        let r = region_at m addr ~bytes:4 in
        let off = reg_off r addr in
        Vvalue.I (I32, Ilanes.make 1 (Int64.of_int32 (Bytes.get_int32_le r.data off)))
    | I64 ->
      fun m addr ->
        let r = region_at m addr ~bytes:8 in
        let off = reg_off r addr in
        Vvalue.I (I64, Ilanes.make 1 (Bytes.get_int64_le r.data off))
    | Ptr ->
      fun m addr ->
        let r = region_at m addr ~bytes:8 in
        let off = reg_off r addr in
        Vvalue.I (Ptr, Ilanes.make 1 (Bytes.get_int64_le r.data off))
    | F32 ->
      fun m addr ->
        let r = region_at m addr ~bytes:4 in
        let off = reg_off r addr in
        Vvalue.F
          (F32, [| Int32.float_of_bits (Bytes.get_int32_le r.data off) |])
    | F64 ->
      fun m addr ->
        let r = region_at m addr ~bytes:8 in
        let off = reg_off r addr in
        Vvalue.F
          (F64, [| Int64.float_of_bits (Bytes.get_int64_le r.data off) |]))
  | Vir.Vtype.Vector (n, s) -> (
    let sb = Vir.Vtype.scalar_bytes s in
    let bytes = n * sb in
    (* Common (kind, width) pairs get fully unrolled bodies with the
       result array allocated inline by the literal. *)
    match (s, n) with
    | Vir.Vtype.F32, 4 ->
      fun m addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true ->
          Vvalue.F
            ( F32,
              [|
                Int32.float_of_bits (Bytes.get_int32_le r.data off);
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 4));
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 8));
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 12));
              |] )
        | false -> load m ty addr)
    | Vir.Vtype.F32, 8 ->
      fun m addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true ->
          Vvalue.F
            ( F32,
              [|
                Int32.float_of_bits (Bytes.get_int32_le r.data off);
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 4));
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 8));
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 12));
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 16));
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 20));
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 24));
                Int32.float_of_bits (Bytes.get_int32_le r.data (off + 28));
              |] )
        | false -> load m ty addr)
    | Vir.Vtype.F64, 2 ->
      fun m addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true ->
          Vvalue.F
            ( F64,
              [|
                Int64.float_of_bits (Bytes.get_int64_le r.data off);
                Int64.float_of_bits (Bytes.get_int64_le r.data (off + 8));
              |] )
        | false -> load m ty addr)
    | Vir.Vtype.F64, 4 ->
      fun m addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true ->
          Vvalue.F
            ( F64,
              [|
                Int64.float_of_bits (Bytes.get_int64_le r.data off);
                Int64.float_of_bits (Bytes.get_int64_le r.data (off + 8));
                Int64.float_of_bits (Bytes.get_int64_le r.data (off + 16));
                Int64.float_of_bits (Bytes.get_int64_le r.data (off + 24));
              |] )
        | false -> load m ty addr)
    | Vir.Vtype.I32, 4 ->
      fun m addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true ->
          Vvalue.I (I32, Ilanes.of_array [|
                Int64.of_int32 (Bytes.get_int32_le r.data off);
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 4));
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 8));
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 12));
              |])
        | false -> load m ty addr)
    | Vir.Vtype.I32, 8 ->
      fun m addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true ->
          Vvalue.I (I32, Ilanes.of_array [|
                Int64.of_int32 (Bytes.get_int32_le r.data off);
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 4));
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 8));
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 12));
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 16));
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 20));
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 24));
                Int64.of_int32 (Bytes.get_int32_le r.data (off + 28));
              |])
        | false -> load m ty addr)
    | Vir.Vtype.I64, 2 ->
      fun m addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true ->
          Vvalue.I (I64, Ilanes.of_array [|
                Bytes.get_int64_le r.data off;
                Bytes.get_int64_le r.data (off + 8);
              |])
        | false -> load m ty addr)
    | Vir.Vtype.I64, 4 ->
      fun m addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true ->
          Vvalue.I (I64, Ilanes.of_array [|
                Bytes.get_int64_le r.data off;
                Bytes.get_int64_le r.data (off + 8);
                Bytes.get_int64_le r.data (off + 16);
                Bytes.get_int64_le r.data (off + 24);
              |])
        | false -> load m ty addr)
    | _ ->
      if Vir.Vtype.is_float_scalar s then
        fun m addr ->
          (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
          | true ->
            let out = Array.make n 0.0 in
            for i = 0 to n - 1 do
              Array.unsafe_set out i
                (read_lane_float s r.data (off + (i * sb)))
            done;
            Vvalue.F (s, out)
          | false -> load m ty addr)
      else
        fun m addr ->
          (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
          | true ->
            let out = Ilanes.make n 0L in
            for i = 0 to n - 1 do
              Ilanes.unsafe_set out i (read_lane_int s r.data (off + (i * sb)))
            done;
            Vvalue.I (s, out)
          | false -> load m ty addr))

(* Destination-passing variant of [loader]: writes the loaded lanes
   straight into the destination register's pinned buffer instead of
   allocating a fresh value. The bounds check happens before the first
   write (and the region-straddling fallback goes through [load], which
   traps before the copy), so a trapping load leaves the destination
   untouched. A shape-mismatched destination — only reachable through a
   kind-confused extern result — raises. *)
let bad_into () = invalid_arg "Memory.loader_into: shape mismatch"

let loader_into (ty : Vir.Vtype.t) : t -> int64 -> Vvalue.t -> unit =
  match ty with
  | Vir.Vtype.Void -> invalid_arg "Memory.load: void"
  | Vir.Vtype.Scalar s -> (
    match s with
    | I1 ->
      fun m addr out ->
        let r = region_at m addr ~bytes:1 in
        let off = reg_off r addr in
        (match out with
        | Vvalue.I (_, o) ->
          Ilanes.unsafe_set o 0
            (if Bytes.get r.data off = '\000' then 0L else 1L)
        | _ -> bad_into ())
    | I8 ->
      fun m addr out ->
        let r = region_at m addr ~bytes:1 in
        let off = reg_off r addr in
        (match out with
        | Vvalue.I (_, o) ->
          Ilanes.unsafe_set o 0
            (Int64.of_int (Char.code (Bytes.get r.data off) lsl 56 asr 56))
        | _ -> bad_into ())
    | I32 ->
      fun m addr out ->
        let r = region_at m addr ~bytes:4 in
        let off = reg_off r addr in
        (match out with
        | Vvalue.I (_, o) ->
          Ilanes.unsafe_set o 0 (Int64.of_int32 (Bytes.get_int32_le r.data off))
        | _ -> bad_into ())
    | I64 | Ptr ->
      fun m addr out ->
        let r = region_at m addr ~bytes:8 in
        let off = reg_off r addr in
        (match out with
        | Vvalue.I (_, o) -> Ilanes.unsafe_set o 0 (Bytes.get_int64_le r.data off)
        | _ -> bad_into ())
    | F32 ->
      fun m addr out ->
        let r = region_at m addr ~bytes:4 in
        let off = reg_off r addr in
        (match out with
        | Vvalue.F (_, o) ->
          o.(0) <- Int32.float_of_bits (Bytes.get_int32_le r.data off)
        | _ -> bad_into ())
    | F64 ->
      fun m addr out ->
        let r = region_at m addr ~bytes:8 in
        let off = reg_off r addr in
        (match out with
        | Vvalue.F (_, o) ->
          o.(0) <- Int64.float_of_bits (Bytes.get_int64_le r.data off)
        | _ -> bad_into ()))
  | Vir.Vtype.Vector (n, s) -> (
    let sb = Vir.Vtype.scalar_bytes s in
    let bytes = n * sb in
    (* Monomorphic per-kind lane loops: the byte decode is inlined, so
       the in-region fast path is region lookup plus raw byte moves. *)
    match s with
    | Vir.Vtype.F32 ->
      fun m addr out ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match out with
        | Vvalue.F (_, o) when r != no_region ->
          for i = 0 to n - 1 do
            o.(i) <-
              Int32.float_of_bits (Bytes.get_int32_le r.data (off + (i * 4)))
          done
        | _ when r == no_region -> Vvalue.copy_into ~dst:out (load m ty addr)
        | _ -> bad_into ())
    | Vir.Vtype.F64 ->
      fun m addr out ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match out with
        | Vvalue.F (_, o) when r != no_region ->
          for i = 0 to n - 1 do
            o.(i) <-
              Int64.float_of_bits (Bytes.get_int64_le r.data (off + (i * 8)))
          done
        | _ when r == no_region -> Vvalue.copy_into ~dst:out (load m ty addr)
        | _ -> bad_into ())
    | Vir.Vtype.I32 ->
      fun m addr out ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match out with
        | Vvalue.I (_, o) when r != no_region ->
          for i = 0 to n - 1 do
            Ilanes.unsafe_set o i
              (Int64.of_int32 (Bytes.get_int32_le r.data (off + (i * 4))))
          done
        | _ when r == no_region -> Vvalue.copy_into ~dst:out (load m ty addr)
        | _ -> bad_into ())
    | Vir.Vtype.I64 | Vir.Vtype.Ptr ->
      fun m addr out ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match out with
        | Vvalue.I (_, o) when r != no_region ->
          (* lane buffers are 8-byte little-endian words, same encoding
             as memory: a vector of I64/Ptr lanes is one byte blit *)
          Bytes.blit r.data off o 0 (n * 8)
        | _ when r == no_region -> Vvalue.copy_into ~dst:out (load m ty addr)
        | _ -> bad_into ())
    | Vir.Vtype.I1 | Vir.Vtype.I8 ->
      fun m addr out ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match out with
        | Vvalue.I (_, o) when r != no_region ->
          for i = 0 to n - 1 do
            Ilanes.unsafe_set o i (read_lane_int s r.data (off + (i * sb)))
          done
        | _ when r == no_region -> Vvalue.copy_into ~dst:out (load m ty addr)
        | _ -> bad_into ()))

(* Pre-specialized unmasked store for a statically known operand type
   (the VIR verifier guarantees the stored value has that type; masked
   stores go through [store ~mask]). Identical semantics to [store]. *)
let storer (ty : Vir.Vtype.t) : t -> Vvalue.t -> int64 -> unit =
  match ty with
  | Vir.Vtype.Void -> invalid_arg "Memory.storer: void"
  | Vir.Vtype.Scalar s -> (
    match s with
    | I32 ->
      fun m v addr ->
        let r = region_at m addr ~bytes:4 in
        let off = reg_off r addr in
        (match v with
        | Vvalue.I (_, a) when Ilanes.length a = 1 ->
          let x = Ilanes.unsafe_get a 0 in
          touch r off 4;
          Bytes.set_int32_le r.data off (Int64.to_int32 x)
        | _ -> store_scalar m I32 addr (Vvalue.as_int v) 0.0)
    | I64 ->
      fun m v addr ->
        let r = region_at m addr ~bytes:8 in
        let off = reg_off r addr in
        (match v with
        | Vvalue.I (_, a) when Ilanes.length a = 1 ->
          let x = Ilanes.unsafe_get a 0 in
          touch r off 8;
          Bytes.set_int64_le r.data off x
        | _ -> store_scalar m I64 addr (Vvalue.as_int v) 0.0)
    | Ptr ->
      fun m v addr ->
        let r = region_at m addr ~bytes:8 in
        let off = reg_off r addr in
        (match v with
        | Vvalue.I (_, a) when Ilanes.length a = 1 ->
          let x = Ilanes.unsafe_get a 0 in
          touch r off 8;
          Bytes.set_int64_le r.data off x
        | _ -> store_scalar m Ptr addr (Vvalue.as_int v) 0.0)
    | F32 ->
      fun m v addr ->
        let r = region_at m addr ~bytes:4 in
        let off = reg_off r addr in
        (match v with
        | Vvalue.F (_, [| x |]) ->
          touch r off 4;
          Bytes.set_int32_le r.data off (Int32.bits_of_float x)
        | _ -> store_scalar m F32 addr 0L (Vvalue.as_float v))
    | F64 ->
      fun m v addr ->
        let r = region_at m addr ~bytes:8 in
        let off = reg_off r addr in
        (match v with
        | Vvalue.F (_, [| x |]) ->
          touch r off 8;
          Bytes.set_int64_le r.data off (Int64.bits_of_float x)
        | _ -> store_scalar m F64 addr 0L (Vvalue.as_float v))
    | I1 | I8 ->
      fun m v addr ->
        (match v with
        | Vvalue.I (_, a) when Ilanes.length a = 1 ->
          store_scalar m s addr (Ilanes.unsafe_get a 0) 0.0
        | _ -> store_scalar m s addr (Vvalue.as_int v) 0.0))
  | Vir.Vtype.Vector (n, s) -> (
    let sb = Vir.Vtype.scalar_bytes s in
    let bytes = n * sb in
    match (s, n) with
    | Vir.Vtype.F32, 4 ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match v with
        | Vvalue.F (_, l) when r != no_region && Array.length l = 4 ->
          touch r off bytes;
          Bytes.set_int32_le r.data off (Int32.bits_of_float l.(0));
          Bytes.set_int32_le r.data (off + 4) (Int32.bits_of_float l.(1));
          Bytes.set_int32_le r.data (off + 8) (Int32.bits_of_float l.(2));
          Bytes.set_int32_le r.data (off + 12) (Int32.bits_of_float l.(3))
        | _ -> store m v addr)
    | Vir.Vtype.F32, 8 ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match v with
        | Vvalue.F (_, l) when r != no_region && Array.length l = 8 ->
          touch r off bytes;
          Bytes.set_int32_le r.data off (Int32.bits_of_float l.(0));
          Bytes.set_int32_le r.data (off + 4) (Int32.bits_of_float l.(1));
          Bytes.set_int32_le r.data (off + 8) (Int32.bits_of_float l.(2));
          Bytes.set_int32_le r.data (off + 12) (Int32.bits_of_float l.(3));
          Bytes.set_int32_le r.data (off + 16) (Int32.bits_of_float l.(4));
          Bytes.set_int32_le r.data (off + 20) (Int32.bits_of_float l.(5));
          Bytes.set_int32_le r.data (off + 24) (Int32.bits_of_float l.(6));
          Bytes.set_int32_le r.data (off + 28) (Int32.bits_of_float l.(7))
        | _ -> store m v addr)
    | Vir.Vtype.F64, 2 ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match v with
        | Vvalue.F (_, l) when r != no_region && Array.length l = 2 ->
          touch r off bytes;
          Bytes.set_int64_le r.data off (Int64.bits_of_float l.(0));
          Bytes.set_int64_le r.data (off + 8) (Int64.bits_of_float l.(1))
        | _ -> store m v addr)
    | Vir.Vtype.F64, 4 ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match v with
        | Vvalue.F (_, l) when r != no_region && Array.length l = 4 ->
          touch r off bytes;
          Bytes.set_int64_le r.data off (Int64.bits_of_float l.(0));
          Bytes.set_int64_le r.data (off + 8) (Int64.bits_of_float l.(1));
          Bytes.set_int64_le r.data (off + 16) (Int64.bits_of_float l.(2));
          Bytes.set_int64_le r.data (off + 24) (Int64.bits_of_float l.(3))
        | _ -> store m v addr)
    | Vir.Vtype.I32, 4 ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match v with
        | Vvalue.I (_, l) when r != no_region && Ilanes.length l = 4 ->
          touch r off bytes;
          Bytes.set_int32_le r.data off (Int64.to_int32 (Ilanes.unsafe_get l 0));
          Bytes.set_int32_le r.data (off + 4) (Int64.to_int32 (Ilanes.unsafe_get l 1));
          Bytes.set_int32_le r.data (off + 8) (Int64.to_int32 (Ilanes.unsafe_get l 2));
          Bytes.set_int32_le r.data (off + 12) (Int64.to_int32 (Ilanes.unsafe_get l 3))
        | _ -> store m v addr)
    | Vir.Vtype.I32, 8 ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match v with
        | Vvalue.I (_, l) when r != no_region && Ilanes.length l = 8 ->
          touch r off bytes;
          Bytes.set_int32_le r.data off (Int64.to_int32 (Ilanes.unsafe_get l 0));
          Bytes.set_int32_le r.data (off + 4) (Int64.to_int32 (Ilanes.unsafe_get l 1));
          Bytes.set_int32_le r.data (off + 8) (Int64.to_int32 (Ilanes.unsafe_get l 2));
          Bytes.set_int32_le r.data (off + 12) (Int64.to_int32 (Ilanes.unsafe_get l 3));
          Bytes.set_int32_le r.data (off + 16) (Int64.to_int32 (Ilanes.unsafe_get l 4));
          Bytes.set_int32_le r.data (off + 20) (Int64.to_int32 (Ilanes.unsafe_get l 5));
          Bytes.set_int32_le r.data (off + 24) (Int64.to_int32 (Ilanes.unsafe_get l 6));
          Bytes.set_int32_le r.data (off + 28) (Int64.to_int32 (Ilanes.unsafe_get l 7))
        | _ -> store m v addr)
    | Vir.Vtype.I64, 2 ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match v with
        | Vvalue.I (_, l) when r != no_region && Ilanes.length l = 2 ->
          touch r off bytes;
          Bytes.set_int64_le r.data off (Ilanes.unsafe_get l 0);
          Bytes.set_int64_le r.data (off + 8) (Ilanes.unsafe_get l 1)
        | _ -> store m v addr)
    | Vir.Vtype.I64, 4 ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match v with
        | Vvalue.I (_, l) when r != no_region && Ilanes.length l = 4 ->
          touch r off bytes;
          Bytes.set_int64_le r.data off (Ilanes.unsafe_get l 0);
          Bytes.set_int64_le r.data (off + 8) (Ilanes.unsafe_get l 1);
          Bytes.set_int64_le r.data (off + 16) (Ilanes.unsafe_get l 2);
          Bytes.set_int64_le r.data (off + 24) (Ilanes.unsafe_get l 3)
        | _ -> store m v addr)
    | _ ->
      fun m v addr ->
        (let r = range_region m addr ~bytes in
    let off = reg_off r addr in
    match r != no_region with
        | true -> (
          touch r off bytes;
          match v with
          | Vvalue.I (_, lanes) ->
            for i = 0 to n - 1 do
              write_lane_int s r.data (off + (i * sb)) (Ilanes.unsafe_get lanes i)
            done
          | Vvalue.F (_, lanes) ->
            for i = 0 to n - 1 do
              write_lane_float s r.data (off + (i * sb)) lanes.(i)
            done)
        | false -> store m v addr))

(* Masked load: disabled lanes read as zero without touching memory
   (matching AVX maskload semantics). *)
let masked_load m (ty : Vir.Vtype.t) addr ~mask : Vvalue.t =
  match ty with
  | Vir.Vtype.Vector (n, s) ->
    let step = Int64.of_int (Vir.Vtype.scalar_bytes s) in
    let lane_addr i = Int64.add addr (Int64.mul step (Int64.of_int i)) in
    if Vir.Vtype.is_float_scalar s then
      Vvalue.F
        ( s,
          Array.init n (fun i ->
              if Vvalue.is_true_lane mask i then
                match load_scalar m s (lane_addr i) with
                | Vvalue.F (_, [| x |]) -> x
                | _ -> assert false
              else 0.0) )
    else
      Vvalue.I
        ( s,
          Ilanes.init n (fun i ->
              if Vvalue.is_true_lane mask i then
                match load_scalar m s (lane_addr i) with
                | Vvalue.I (_, a) -> Ilanes.unsafe_get a 0
                | _ -> assert false
              else 0L) )
  | _ -> invalid_arg "Memory.masked_load: scalar type"

(* Destination-passing masked load: every lane of the destination is
   written (disabled lanes as zero, per AVX maskload), so no stale lane
   survives in the pinned buffer. Enabled lanes that point out of
   bounds trap exactly like [masked_load]. When the whole vector span
   lies inside one region (the common foreach-tail case) the region is
   resolved once and lanes are read at integer offsets, so the access
   neither boxes per-lane [int64] addresses nor allocates region/offset
   pairs; the per-lane fallback reproduces exact per-lane trap
   addresses for straddling or partially out-of-bounds spans. *)
let masked_load_into m (ty : Vir.Vtype.t) addr ~mask (out : Vvalue.t) =
  match (ty, out) with
  | Vir.Vtype.Vector (n, s), Vvalue.F (_, o)
    when Vir.Vtype.is_float_scalar s -> (
    let sb = Vir.Vtype.scalar_bytes s in
    let r = range_region m addr ~bytes:(n * sb) in
    let off = reg_off r addr in
    match r != no_region with
    | true ->
      let data = r.data in
      for i = 0 to n - 1 do
        Array.unsafe_set o i
          (if Vvalue.is_true_lane mask i then
             read_lane_float s data (off + (i * sb))
           else 0.0)
      done
    | false ->
      let step = Int64.of_int sb in
      for i = 0 to n - 1 do
        o.(i) <-
          (if Vvalue.is_true_lane mask i then
             load_scalar_float m s
               (Int64.add addr (Int64.mul step (Int64.of_int i)))
           else 0.0)
      done)
  | Vir.Vtype.Vector (n, s), Vvalue.I (_, o)
    when not (Vir.Vtype.is_float_scalar s) -> (
    let sb = Vir.Vtype.scalar_bytes s in
    let r = range_region m addr ~bytes:(n * sb) in
    let off = reg_off r addr in
    match r != no_region with
    | true ->
      let data = r.data in
      for i = 0 to n - 1 do
        Ilanes.unsafe_set o i
          (if Vvalue.is_true_lane mask i then
             read_lane_int s data (off + (i * sb))
           else 0L)
      done
    | false ->
      let step = Int64.of_int sb in
      for i = 0 to n - 1 do
        Ilanes.unsafe_set o i
          (if Vvalue.is_true_lane mask i then
             load_scalar_int m s
               (Int64.add addr (Int64.mul step (Int64.of_int i)))
           else 0L)
      done)
  | Vir.Vtype.Vector _, _ ->
    invalid_arg "Memory.masked_load_into: shape mismatch"
  | _ -> invalid_arg "Memory.masked_load: scalar type"

(* Typed bulk accessors used by the benchmark harness. Each resolves
   the region once when the whole range is in bounds (the usual case);
   otherwise the per-element path reproduces the per-element trap. *)

let write_i32_array m base (xs : int array) =
  let r = range_region m base ~bytes:(4 * Array.length xs) in
    let off = reg_off r base in
    match r != no_region with
  | true ->
    touch r off (4 * Array.length xs);
    Array.iteri
      (fun i x -> Bytes.set_int32_le r.data (off + (4 * i)) (Int32.of_int x))
      xs
  | false ->
    Array.iteri
      (fun i x ->
        store_scalar m I32 (Int64.add base (Int64.of_int (4 * i)))
          (Int64.of_int x) 0.0)
      xs

let read_i32_array m base n =
  let r = range_region m base ~bytes:(4 * n) in
    let off = reg_off r base in
    match r != no_region with
  | true ->
    Array.init n (fun i ->
        Int32.to_int (Bytes.get_int32_le r.data (off + (4 * i))))
  | false ->
    Array.init n (fun i ->
        match load_scalar m I32 (Int64.add base (Int64.of_int (4 * i))) with
        | Vvalue.I (_, a) -> Int64.to_int (Ilanes.unsafe_get a 0)
        | _ -> assert false)

let write_f32_array m base (xs : float array) =
  let r = range_region m base ~bytes:(4 * Array.length xs) in
    let off = reg_off r base in
    match r != no_region with
  | true ->
    touch r off (4 * Array.length xs);
    Array.iteri
      (fun i x ->
        Bytes.set_int32_le r.data (off + (4 * i)) (Int32.bits_of_float x))
      xs
  | false ->
    Array.iteri
      (fun i x ->
        store_scalar m F32 (Int64.add base (Int64.of_int (4 * i))) 0L x)
      xs

let read_f32_array m base n =
  let r = range_region m base ~bytes:(4 * n) in
    let off = reg_off r base in
    match r != no_region with
  | true ->
    Array.init n (fun i ->
        Int32.float_of_bits (Bytes.get_int32_le r.data (off + (4 * i))))
  | false ->
    Array.init n (fun i ->
        match load_scalar m F32 (Int64.add base (Int64.of_int (4 * i))) with
        | Vvalue.F (_, [| x |]) -> x
        | _ -> assert false)

let write_f64_array m base (xs : float array) =
  let r = range_region m base ~bytes:(8 * Array.length xs) in
    let off = reg_off r base in
    match r != no_region with
  | true ->
    touch r off (8 * Array.length xs);
    Array.iteri
      (fun i x ->
        Bytes.set_int64_le r.data (off + (8 * i)) (Int64.bits_of_float x))
      xs
  | false ->
    Array.iteri
      (fun i x ->
        store_scalar m F64 (Int64.add base (Int64.of_int (8 * i))) 0L x)
      xs

let read_f64_array m base n =
  let r = range_region m base ~bytes:(8 * n) in
    let off = reg_off r base in
    match r != no_region with
  | true ->
    Array.init n (fun i ->
        Int64.float_of_bits (Bytes.get_int64_le r.data (off + (8 * i))))
  | false ->
    Array.init n (fun i ->
        match load_scalar m F64 (Int64.add base (Int64.of_int (8 * i))) with
        | Vvalue.F (_, [| x |]) -> x
        | _ -> assert false)

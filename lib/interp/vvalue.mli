(** Runtime values of the VM: a typed array of lanes (scalars are
    1-lane). Integers (booleans, pointers) are sign-normalised [int64]s
    packed 8-bytes-per-lane in a flat {!Ilanes.t} buffer — lane writes
    are single stores with no boxing and no GC write barrier; floats are
    OCaml floats with F32 lanes kept rounded to single precision. *)

type t =
  | I of Vir.Vtype.scalar * Ilanes.t  (** I1/I8/I32/I64/Ptr lanes *)
  | F of Vir.Vtype.scalar * float array  (** F32/F64 lanes *)

val ty : t -> Vir.Vtype.t
val lanes : t -> int
val scalar_kind : t -> Vir.Vtype.scalar

(** Scalar constructors. *)

val int_scalar : Vir.Vtype.scalar -> int64 -> t
val of_bool : bool -> t
val of_i32 : int -> t
val of_i64 : int64 -> t
val of_ptr : int64 -> t
val of_f32 : float -> t
val of_f64 : float -> t

(** Lane accessors. *)

val int_lane : t -> int -> int64
val float_lane : t -> int -> float
val as_int : t -> int64
val as_float : t -> float
val as_bool : t -> bool
val is_true_lane : t -> int -> bool

(** Build from a VIR constant ([undef] becomes deterministic zeros). *)
val of_const : Vir.Const.t -> t

val zero_of_ty : Vir.Vtype.t -> t

(** Vector with every lane equal to the given scalar. *)
val splat : Vir.Vtype.t -> t -> t

(** Non-destructive lane extraction / replacement. *)

val extract : t -> int -> t
val insert : t -> int -> t -> t

(** Raw bit pattern of a lane (floats via their IEEE encoding). *)
val lane_bits : t -> int -> int64

(** Replace one lane with the value encoded by [bits]. *)
val with_lane_bits : t -> lane:int -> bits:int64 -> t

(** Flip one bit of one lane — the core fault-injection primitive. *)
val flip_bit : t -> lane:int -> bit:int -> t

(** Buffer discipline of the destination-passing interpreter: register
    slots hold pinned mutable values whose lane buffers kernels rewrite
    in place. A value escaping the register file must be copied. *)

(** Deep copy: fresh lane buffer, same kind and contents. *)
val copy : t -> t

(** Blit [src]'s lanes into [dst]'s own buffer (the destination keeps
    its constructor; only the payload moves).
    @raise Invalid_argument on a lane-count or int/float mismatch. *)
val copy_into : dst:t -> t -> unit

(** In-place single-lane mutation, for buffers the caller owns (the
    fault-injection runtime applies these to a private {!copy}). *)

val flip_bit_inplace : t -> lane:int -> bit:int -> unit
val set_lane_bits_inplace : t -> lane:int -> bits:int64 -> unit

(** Bitwise equality (NaN payloads compare equal to themselves). *)
val equal : t -> t -> bool

val to_string : t -> string

(** The VIR virtual machine: executes a compiled module with
    bounds-checked memory, a dynamic-instruction budget (a fault-induced
    endless loop becomes an observable hang trap), and a pluggable
    extern mechanism through which the VULFI runtime and benchmark I/O
    are wired in. *)

type state

(** Default budget: 200M dynamic instructions. *)
val default_budget : int

(** Fresh machine over compiled code. [budget] bounds dynamic
    instructions (exceeding it raises {!Interp.Trap.Budget_exhausted});
    [max_depth] bounds the call stack. *)
val create : ?budget:int -> ?max_depth:int -> Compile.cmodule -> state

(** Re-arm an existing machine for another run: resets the fuel budget
    (to [budget] when given, else to the machine's current budget) and
    the dynamic counters, while keeping the compiled code, memory,
    frame pool and extern registrations. Memory {e contents} are not
    touched — pair with {!Memory.restore} to roll those back.

    [spent] (default 0) pre-charges the new epoch: {!dyn_count}
    immediately after the reset reads [spent]. Pass the length of an
    already-executed prefix when re-arming the budget mid-run, so a
    mid-epoch [reset ~budget] cannot silently rebase the executed
    count to zero. *)
val reset : ?budget:int -> ?spent:int -> state -> unit

(** Register (or replace) a handler for calls to an undefined function.
    The handler returns [None] for void functions. *)
val register_extern :
  state -> string -> (state -> Vvalue.t list -> Vvalue.t option) -> unit

(** The machine's memory, for setting up inputs / reading outputs. *)
val memory : state -> Memory.t

(** Dynamic instructions executed so far. *)
val dyn_count : state -> int

(** Executed vector instructions (at least one vector operand or
    result) — the dynamic counterpart of the paper's Fig 10 census. *)
val dyn_vector_count : state -> int

(** Lane evaluators, exposed for reuse by constant folding and the
    reference SPMD evaluator so semantics cannot drift. *)

val eval_ibinop_lane : Vir.Instr.ibinop -> Vir.Vtype.scalar -> int64 -> int64 -> int64
val eval_fbinop_lane : Vir.Instr.fbinop -> Vir.Vtype.scalar -> float -> float -> float
val eval_icmp_lane : Vir.Instr.icmp_pred -> Vir.Vtype.scalar -> int64 -> int64 -> int64
val eval_fcmp_lane : Vir.Instr.fcmp_pred -> float -> float -> int64
val eval_cast : Vir.Instr.cast_op -> Vir.Vtype.t -> Vvalue.t -> Vvalue.t

(** Run function [name] with the given arguments; returns its value
    ([None] for void).
    @raise Trap.Trap on crash (bounds, division, budget, ...).
    @raise Invalid_argument if the argument count does not match the
      function's parameter count. *)
val run : state -> string -> Vvalue.t list -> Vvalue.t option

(** {1 Full-machine checkpoints}

    Support for the fault-point fast-forward executor: capture the
    complete machine state (memory image, live register frames, call
    stack positions, dynamic counters) at an extern-call boundary
    during one tracked replay, then resume faulty runs from the nearest
    checkpoint at or before their injection site so only the
    post-injection suffix executes. *)

(** An opaque full-machine checkpoint. It aliases the frame pool of the
    machine that captured it: resume it only on that machine. *)
type checkpoint

(** Dynamic instructions executed when the checkpoint was captured
    (the prefix length a resume skips). *)
val checkpoint_spent : checkpoint -> int

(** The extern slot index a callee name was compiled to, or [None] if
    no call site references it. Checkpoint probes compare these dense
    ints instead of names. *)
val extern_slot : state -> string -> int option

(** [run] with position tracking: before each extern call executes,
    [probe] sees the machine, the callee's extern slot and the
    argument values (register-buffer aliases — copy to retain);
    answering [true] captures a checkpoint at that point (the extern
    call itself re-executes on resume) and passes it to [on_capture].
    Slower than [run]; meant for the single instrumented replay that
    lays a cell's checkpoints.
    @raise Trap.Trap and [Invalid_argument] as {!run} does. *)
val run_tracked :
  state -> string -> Vvalue.t list ->
  probe:(state -> slot:int -> Vvalue.t list -> bool) ->
  on_capture:(checkpoint -> unit) ->
  Vvalue.t option

(** Resume from a checkpoint captured by this machine: memory,
    counters and register frames roll back, the recorded call stack is
    re-entered, and execution continues from the checkpointed extern
    call. [budget] re-arms the fuel epoch as [reset ~budget] would;
    {!dyn_count} afterwards reads prefix + suffix, exactly what a
    fresh run to the same point would report. Returns a deep copy of
    the function result, like {!run}.
    @raise Trap.Trap on a crash in the resumed suffix. *)
val resume : budget:int -> state -> checkpoint -> Vvalue.t option

(** {1 Convergence checks}

    Support for the converge-pruned executor: run (or resume) a faulty
    experiment with every extern call offered to a [check] callback,
    which compares the machine against the golden run's checkpoint at
    the same dynamic site via {!state_equal} and raises to terminate
    the run as soon as the states match — the suffix from that point is
    provably identical to the golden run's, so the caller splices the
    golden outcome. *)

(** The shadow call stack at a check point (innermost activation
    first); opaque outside {!state_equal}. *)
type stack_view

(** Callback fired before each extern call executes, with the machine,
    the current shadow stack, the callee's extern slot and the argument
    values. Terminate the run by raising. The return value says whether
    a future call could still matter: the first [false] detaches the
    run — tracking stops and the remaining suffix executes at full
    speed through the fused kernels, with no further [check] calls.
    Detaching is purely physical; the run's results and traces are
    unchanged. *)
type converge_check = state -> stack_view -> slot:int -> Vvalue.t list -> bool

(** [state_equal st stack ck ~since] — exact equality of the running
    machine against checkpoint [ck] (captured by the same machine at
    the same dynamic site): dynamic counters, call-stack positions, the
    live registers of each interrupted activation, and memory compared
    only over the union of [since] (the golden run's accumulated dirty
    spans up to [ck]) and this run's own live dirty spans. A [true]
    answer implies the continuation from here is bit-identical to the
    golden run's continuation from [ck]. *)
val state_equal :
  state -> stack_view -> checkpoint -> since:Memory.spans -> bool

(** [run] under position tracking with [check] fired before every
    extern call (no checkpoints are captured). Used when the fault site
    precedes every checkpoint, so the faulty run starts fresh but later
    checkpoint sites can still prune it.
    @raise Trap.Trap and [Invalid_argument] as {!run} does. *)
val run_converge :
  state -> string -> Vvalue.t list -> check:converge_check -> Vvalue.t option

(** {!resume} with the resumed suffix run under position tracking and
    [check] fired before every extern call along the way.
    @raise Trap.Trap on a crash in the resumed suffix. *)
val resume_converge :
  budget:int -> state -> checkpoint -> check:converge_check -> Vvalue.t option

(** The VIR virtual machine: executes a compiled module with
    bounds-checked memory, a dynamic-instruction budget (a fault-induced
    endless loop becomes an observable hang trap), and a pluggable
    extern mechanism through which the VULFI runtime and benchmark I/O
    are wired in. *)

type state

(** Default budget: 200M dynamic instructions. *)
val default_budget : int

(** Fresh machine over compiled code. [budget] bounds dynamic
    instructions (exceeding it raises {!Interp.Trap.Budget_exhausted});
    [max_depth] bounds the call stack. *)
val create : ?budget:int -> ?max_depth:int -> Compile.cmodule -> state

(** Re-arm an existing machine for another run: resets the fuel budget
    (to [budget] when given, else to the machine's current budget) and
    the dynamic counters, while keeping the compiled code, memory,
    frame pool and extern registrations. Memory {e contents} are not
    touched — pair with {!Memory.restore} to roll those back. *)
val reset : ?budget:int -> state -> unit

(** Register (or replace) a handler for calls to an undefined function.
    The handler returns [None] for void functions. *)
val register_extern :
  state -> string -> (state -> Vvalue.t list -> Vvalue.t option) -> unit

(** The machine's memory, for setting up inputs / reading outputs. *)
val memory : state -> Memory.t

(** Dynamic instructions executed so far. *)
val dyn_count : state -> int

(** Executed vector instructions (at least one vector operand or
    result) — the dynamic counterpart of the paper's Fig 10 census. *)
val dyn_vector_count : state -> int

(** Lane evaluators, exposed for reuse by constant folding and the
    reference SPMD evaluator so semantics cannot drift. *)

val eval_ibinop_lane : Vir.Instr.ibinop -> Vir.Vtype.scalar -> int64 -> int64 -> int64
val eval_fbinop_lane : Vir.Instr.fbinop -> Vir.Vtype.scalar -> float -> float -> float
val eval_icmp_lane : Vir.Instr.icmp_pred -> Vir.Vtype.scalar -> int64 -> int64 -> int64
val eval_fcmp_lane : Vir.Instr.fcmp_pred -> float -> float -> int64
val eval_cast : Vir.Instr.cast_op -> Vir.Vtype.t -> Vvalue.t -> Vvalue.t

(** Run function [name] with the given arguments; returns its value
    ([None] for void).
    @raise Trap.Trap on crash (bounds, division, budget, ...).
    @raise Invalid_argument if the argument count does not match the
      function's parameter count. *)
val run : state -> string -> Vvalue.t list -> Vvalue.t option

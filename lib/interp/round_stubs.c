/* Float32 lane kernels for the interpreter's hot loops.
 *
 * The VM stores f32 lanes as OCaml floats (IEEE double) and re-rounds
 * after every arithmetic op.  The runtime's own
 * caml_int32_bits_of_float / caml_int32_float_of_bits pair is just a
 * `(float)` cast read through a union, so a direct
 * double->float->double cast is bit-identical (same cvtsd2ss/cvtss2sd
 * instructions, same round-to-nearest-even, same subnormal, overflow
 * and NaN behaviour) at a fraction of the call count:
 *
 *   - vulfi_round_f32: one C call per rounding instead of two;
 *   - vulfi_f32_*_arr: one C call per *vector* op instead of one
 *     rounding round-trip per lane.  The whole 8-lane op + rounding
 *     runs as a single tight loop with no OCaml/C boundary inside.
 *
 * The array kernels take flat OCaml float arrays, never allocate and
 * never call back into the runtime, so they are [@@noalloc].  Lane
 * count comes from the destination (the register's pinned buffer);
 * operands are at least that long.  In-place use (o aliased with an
 * input) is safe: each iteration reads lane i before writing lane i.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

/* NaN-payload determinism.  x86 addsd/mulsd return the *destination*
 * operand's payload when both operands are NaN; ocamlopt always emits
 * the left operand as the destination, while a C compiler may commute
 * `+`/`*` and pick the other one.  Fault injection flips float bits,
 * so two distinct NaN payloads really can meet, and the digests and
 * traces pin ocamlopt's choice.  On x86-64, force the exact
 * instruction shape ocamlopt emits; elsewhere, branch to give the
 * left operand's NaN priority (quieted through + 0.0, as the hardware
 * would quiet a signalling dst).  Subtraction and division are not
 * commutative, so plain C expressions already fix the operand roles.
 */
#if defined(__x86_64__)
static inline double ml_fadd(double x, double y)
{
  __asm__("addsd %1, %0" : "+x"(x) : "x"(y));
  return x;
}
static inline double ml_fmul(double x, double y)
{
  __asm__("mulsd %1, %0" : "+x"(x) : "x"(y));
  return x;
}
#else
static inline double ml_fadd(double x, double y)
{
  return x != x ? x + 0.0 : x + y;
}
static inline double ml_fmul(double x, double y)
{
  return x != x ? x + 0.0 : x * y;
}
#endif

static inline double ml_fsub(double x, double y) { return x - y; }
static inline double ml_fdiv(double x, double y) { return x / y; }

double vulfi_round_f32_unboxed(double x) { return (double)(float)x; }

/* Boxed fallback for the rare closure-valued uses of the external. */
CAMLprim value vulfi_round_f32(value x)
{
  return caml_copy_double((double)(float)Double_val(x));
}

#define F32_BINOP_ARR(name, OP)                                          \
  CAMLprim value name(value a, value b, value o)                         \
  {                                                                      \
    mlsize_t n = Wosize_val(o) / Double_wosize;                          \
    for (mlsize_t i = 0; i < n; i++)                                     \
      Store_double_field(                                                \
          o, i, (double)(float)OP(Double_field(a, i), Double_field(b, i))); \
    return Val_unit;                                                     \
  }

F32_BINOP_ARR(vulfi_f32_fadd_arr, ml_fadd)
F32_BINOP_ARR(vulfi_f32_fsub_arr, ml_fsub)
F32_BINOP_ARR(vulfi_f32_fmul_arr, ml_fmul)
F32_BINOP_ARR(vulfi_f32_fdiv_arr, ml_fdiv)

/* Horizontal reductions: sequential accumulate with f32 rounding after
 * every step, exactly as the scalar OCaml loop rounds.  These allocate
 * the boxed float result (one box per whole vector), so no noalloc. */

CAMLprim value vulfi_f32_reduce_fadd(value a)
{
  mlsize_t n = Wosize_val(a) / Double_wosize;
  double acc = 0.0;
  for (mlsize_t i = 0; i < n; i++)
    acc = (double)(float)ml_fadd(acc, Double_field(a, i));
  return caml_copy_double(acc);
}

#define F32_BINOP_REDUCE(name, OP)                                       \
  CAMLprim value name(value a, value b)                                  \
  {                                                                      \
    mlsize_t n = Wosize_val(a) / Double_wosize;                          \
    double acc = 0.0;                                                    \
    for (mlsize_t i = 0; i < n; i++) {                                   \
      double t = (double)(float)OP(Double_field(a, i), Double_field(b, i)); \
      acc = (double)(float)ml_fadd(acc, t);                              \
    }                                                                    \
    return caml_copy_double(acc);                                        \
  }

F32_BINOP_REDUCE(vulfi_f32_fadd_reduce_fadd, ml_fadd)
F32_BINOP_REDUCE(vulfi_f32_fsub_reduce_fadd, ml_fsub)
F32_BINOP_REDUCE(vulfi_f32_fmul_reduce_fadd, ml_fmul)
F32_BINOP_REDUCE(vulfi_f32_fdiv_reduce_fadd, ml_fdiv)

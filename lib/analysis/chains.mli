(** Fusible straight-line chains inside basic blocks.

    A chain is a run of adjacent non-phi, non-terminator instructions
    whose intermediate results are each used exactly once, by the next
    member of the chain. The interpreter's threading stage may lower an
    annotated chain into one fused kernel; because every intermediate is
    single-use, skipping its register-buffer write (fused kernels stage
    intermediates through a private scratch array) is unobservable.

    Legality enforced here (the emitter re-checks shapes defensively):
    - members are physically adjacent in the block's non-phi,
      non-terminator body (the execution order of the threaded backend);
    - every intermediate register has exactly one textual use in the
      whole function, and that use is the next chain member (so
      [a * a] never links — it reads the register twice);
    - no allocas, lane-shuffling instructions or calls — except a
      trailing cross-lane [reduce_*] intrinsic, the fused reduction
      tail — participate, so a chain can neither swallow a
      fault-injection site nor reorder an allocation. *)

(** Member kinds of an [R_superblock] chain, first to last. *)
type member =
  | M_ibinop
  | M_fbinop
  | M_icmp
  | M_fcmp
  | M_select
  | M_cast
  | M_gep
  | M_load
  | M_store
  | M_reduce

val member_name : member -> string

(** Which rule a chain matched; names key the per-rule differential
    equivalence tests and the pipeline statistics. The ten fixed-shape
    peephole rules from PR 7 are kept for two/three-member chains (each
    has a specialized kernel); [R_superblock] covers every longer — or
    otherwise unclassified — linked run, including fused reduction
    tails (reported as ["reduce_tail"]). *)
type rule =
  | R_fbinop_fbinop  (** fmul→fadd style float chains *)
  | R_ibinop_ibinop  (** integer op chains (consumer may trap) *)
  | R_icmp_select
  | R_fcmp_select
  | R_cast_binop
  | R_gep_load
  | R_gep_store
  | R_load_binop
  | R_binop_store
  | R_load_binop_store  (** the three-member load→op→store chain *)
  | R_superblock of member list
      (** arbitrary-length linked run; trailing [M_reduce] = fused
          reduction tail *)

val rule_name : rule -> string

val all_rules : rule list
(** One representative per statistics bucket (the superblock entries
    are representatives — member lists vary per chain). *)

val member_of : Vir.Instr.t -> member option
(** [i]'s kind as a potential chain member; [None] = never fusible. *)

type chain = {
  c_block : string;  (** block label *)
  c_start : int;  (** index into the non-phi, non-terminator body *)
  c_len : int;  (** >= 2, arbitrary *)
  c_rule : rule;
}

(** Greedy left-to-right scan of every block: at each position the
    maximal linked run is taken (two/three-member runs classify as the
    PR 7 peephole rules, longer runs and reduction tails as
    [R_superblock]); chain members never overlap. *)
val find : Vir.Func.t -> chain list

(** Fusible straight-line chains inside basic blocks.

    A chain is a run of adjacent non-phi, non-terminator instructions
    whose intermediate results are each used exactly once, by the next
    member of the chain. The interpreter's threading stage may lower an
    annotated chain into one fused kernel; because every intermediate is
    single-use, skipping its register-buffer write is unobservable.

    Legality enforced here (the emitter re-checks shapes defensively):
    - members are physically adjacent in the block's non-phi,
      non-terminator body (the execution order of the threaded backend);
    - every intermediate register has exactly one textual use in the
      whole function, and that use is the next chain member (so
      [a * a] never links — it reads the register twice);
    - no calls, allocas or lane-shuffling instructions participate, so
      a chain can neither swallow a fault-injection site nor reorder an
      allocation. *)

(** Which peephole rule a chain matched; names key the per-rule
    differential equivalence tests and the pipeline statistics. *)
type rule =
  | R_fbinop_fbinop  (** fmul→fadd style float chains *)
  | R_ibinop_ibinop  (** integer op chains (consumer may trap) *)
  | R_icmp_select
  | R_fcmp_select
  | R_cast_binop
  | R_gep_load
  | R_gep_store
  | R_load_binop
  | R_binop_store
  | R_load_binop_store  (** the three-member load→op→store chain *)

val rule_name : rule -> string
val all_rules : rule list

type chain = {
  c_block : string;  (** block label *)
  c_start : int;  (** index into the non-phi, non-terminator body *)
  c_len : int;  (** 2 or 3 *)
  c_rule : rule;
}

(** Greedy left-to-right scan of every block: at each position the
    three-member rule is tried first, then the two-member rules; chain
    members never overlap. *)
val find : Vir.Func.t -> chain list

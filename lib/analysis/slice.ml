(** Forward slices over def-use chains.

    The forward slice of a register is the set of instructions reachable
    by following def-use edges from it, including the instructions that
    use it directly. The VULFI fault-site taxonomy (§II-C) is defined on
    these slices: a slice containing a [getelementptr] marks an address
    site, one containing conditional control flow marks a control site. *)

(* Forward slice of register [r]: every instruction that (transitively)
   consumes the value. The defining instruction itself is included,
   matching the intuition that a bit flip in a gep's Lvalue is an
   address-site fault even before the address is consumed. *)
let forward_slice (du : Defuse.t) (r : Vir.Instr.reg) : Vir.Instr.t list =
  let seen_regs = Hashtbl.create 16 in
  (* Dedup by physical identity: instruction records are shared with
     the def-use index, and all void instructions carry id = -1, so a
     structural key would make two identical stores (or branches) in
     different blocks collide and drop one from the slice. Slices are
     small; a linear [memq] scan is fine. *)
  let result = ref [] in
  let add_instr (i : Vir.Instr.t) =
    if List.memq i !result then false
    else begin
      result := i :: !result;
      true
    end
  in
  let rec visit_reg r =
    if not (Hashtbl.mem seen_regs r) then begin
      Hashtbl.replace seen_regs r ();
      (match Defuse.def du r with
      | Some i -> ignore (add_instr i)
      | None -> () (* function parameter *));
      List.iter
        (fun (u : Defuse.use_site) ->
          let i = u.Defuse.u_instr in
          if add_instr i then
            if Vir.Instr.defines i then visit_reg i.Vir.Instr.id)
        (Defuse.uses_of du r)
    end
  in
  visit_reg r;
  !result

(* Forward slice seeded at an instruction: for defining instructions the
   slice of their Lvalue; for stores, just the store itself (the value
   escapes to memory, which intra-procedural slicing does not track). *)
let forward_slice_of_instr (du : Defuse.t) (i : Vir.Instr.t) :
    Vir.Instr.t list =
  if Vir.Instr.defines i then forward_slice du i.Vir.Instr.id else [ i ]

let contains_gep slice = List.exists Vir.Instr.is_gep slice

let contains_control_flow slice =
  List.exists Vir.Instr.is_control_flow slice

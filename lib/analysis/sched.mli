(** Greedy list scheduler over {!Deps} regions: reorders pure
    instructions within fence-delimited runs so single-use
    producer→consumer chains become physically adjacent (and thus
    visible to {!Chains.find}), while every fence — loads, stores,
    calls (including [__vulfi_*] injection sites), allocas, integer
    divides — keeps its exact position. Deterministic; the output is
    checked against {!Deps.respects}. *)

val single_use : Defuse.t -> Vir.Instr.t -> Vir.Instr.t option
(** The unique in-function reader of an instruction's result, if it
    has exactly one textual use. *)

val schedule_body :
  Defuse.t ->
  ?terminator:Vir.Instr.t ->
  Vir.Instr.t array ->
  Vir.Instr.t array * int
(** Schedule one block body (non-phi, non-terminator instructions in
    execution order); [terminator] pins the trailing region's right
    edge. Returns the scheduled body and how many instructions changed
    position. Raises [Invalid_argument] if the result would violate
    {!Deps.respects} (a scheduler bug, not an input condition). *)

val schedule_func : Vir.Func.t -> int
(** Schedule every block of a function in place (phis stay at entry,
    the terminator stays last). Returns the total move count. *)
